
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/net/link.cc" "src/net/CMakeFiles/scio_net.dir/link.cc.o" "gcc" "src/net/CMakeFiles/scio_net.dir/link.cc.o.d"
  "/root/repo/src/net/listener.cc" "src/net/CMakeFiles/scio_net.dir/listener.cc.o" "gcc" "src/net/CMakeFiles/scio_net.dir/listener.cc.o.d"
  "/root/repo/src/net/net_stack.cc" "src/net/CMakeFiles/scio_net.dir/net_stack.cc.o" "gcc" "src/net/CMakeFiles/scio_net.dir/net_stack.cc.o.d"
  "/root/repo/src/net/port_allocator.cc" "src/net/CMakeFiles/scio_net.dir/port_allocator.cc.o" "gcc" "src/net/CMakeFiles/scio_net.dir/port_allocator.cc.o.d"
  "/root/repo/src/net/socket.cc" "src/net/CMakeFiles/scio_net.dir/socket.cc.o" "gcc" "src/net/CMakeFiles/scio_net.dir/socket.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/kernel/CMakeFiles/scio_kernel.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/scio_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
