file(REMOVE_RECURSE
  "CMakeFiles/scio_net.dir/link.cc.o"
  "CMakeFiles/scio_net.dir/link.cc.o.d"
  "CMakeFiles/scio_net.dir/listener.cc.o"
  "CMakeFiles/scio_net.dir/listener.cc.o.d"
  "CMakeFiles/scio_net.dir/net_stack.cc.o"
  "CMakeFiles/scio_net.dir/net_stack.cc.o.d"
  "CMakeFiles/scio_net.dir/port_allocator.cc.o"
  "CMakeFiles/scio_net.dir/port_allocator.cc.o.d"
  "CMakeFiles/scio_net.dir/socket.cc.o"
  "CMakeFiles/scio_net.dir/socket.cc.o.d"
  "libscio_net.a"
  "libscio_net.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/scio_net.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
