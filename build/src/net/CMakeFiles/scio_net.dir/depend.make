# Empty dependencies file for scio_net.
# This may be replaced when dependencies are built.
