file(REMOVE_RECURSE
  "libscio_net.a"
)
