file(REMOVE_RECURSE
  "CMakeFiles/scio_core.dir/devpoll.cc.o"
  "CMakeFiles/scio_core.dir/devpoll.cc.o.d"
  "CMakeFiles/scio_core.dir/interest_table.cc.o"
  "CMakeFiles/scio_core.dir/interest_table.cc.o.d"
  "CMakeFiles/scio_core.dir/poll_syscall.cc.o"
  "CMakeFiles/scio_core.dir/poll_syscall.cc.o.d"
  "CMakeFiles/scio_core.dir/rt_io.cc.o"
  "CMakeFiles/scio_core.dir/rt_io.cc.o.d"
  "CMakeFiles/scio_core.dir/sys.cc.o"
  "CMakeFiles/scio_core.dir/sys.cc.o.d"
  "libscio_core.a"
  "libscio_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/scio_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
