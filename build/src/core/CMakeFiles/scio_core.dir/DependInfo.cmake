
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/devpoll.cc" "src/core/CMakeFiles/scio_core.dir/devpoll.cc.o" "gcc" "src/core/CMakeFiles/scio_core.dir/devpoll.cc.o.d"
  "/root/repo/src/core/interest_table.cc" "src/core/CMakeFiles/scio_core.dir/interest_table.cc.o" "gcc" "src/core/CMakeFiles/scio_core.dir/interest_table.cc.o.d"
  "/root/repo/src/core/poll_syscall.cc" "src/core/CMakeFiles/scio_core.dir/poll_syscall.cc.o" "gcc" "src/core/CMakeFiles/scio_core.dir/poll_syscall.cc.o.d"
  "/root/repo/src/core/rt_io.cc" "src/core/CMakeFiles/scio_core.dir/rt_io.cc.o" "gcc" "src/core/CMakeFiles/scio_core.dir/rt_io.cc.o.d"
  "/root/repo/src/core/sys.cc" "src/core/CMakeFiles/scio_core.dir/sys.cc.o" "gcc" "src/core/CMakeFiles/scio_core.dir/sys.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/kernel/CMakeFiles/scio_kernel.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/scio_net.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/scio_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
