# Empty compiler generated dependencies file for scio_core.
# This may be replaced when dependencies are built.
