file(REMOVE_RECURSE
  "libscio_core.a"
)
