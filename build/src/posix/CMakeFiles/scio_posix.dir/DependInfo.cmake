
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/posix/epoll_backend.cc" "src/posix/CMakeFiles/scio_posix.dir/epoll_backend.cc.o" "gcc" "src/posix/CMakeFiles/scio_posix.dir/epoll_backend.cc.o.d"
  "/root/repo/src/posix/event_backend.cc" "src/posix/CMakeFiles/scio_posix.dir/event_backend.cc.o" "gcc" "src/posix/CMakeFiles/scio_posix.dir/event_backend.cc.o.d"
  "/root/repo/src/posix/poll_backend.cc" "src/posix/CMakeFiles/scio_posix.dir/poll_backend.cc.o" "gcc" "src/posix/CMakeFiles/scio_posix.dir/poll_backend.cc.o.d"
  "/root/repo/src/posix/rtsig_backend.cc" "src/posix/CMakeFiles/scio_posix.dir/rtsig_backend.cc.o" "gcc" "src/posix/CMakeFiles/scio_posix.dir/rtsig_backend.cc.o.d"
  "/root/repo/src/posix/select_backend.cc" "src/posix/CMakeFiles/scio_posix.dir/select_backend.cc.o" "gcc" "src/posix/CMakeFiles/scio_posix.dir/select_backend.cc.o.d"
  "/root/repo/src/posix/socketpair_rig.cc" "src/posix/CMakeFiles/scio_posix.dir/socketpair_rig.cc.o" "gcc" "src/posix/CMakeFiles/scio_posix.dir/socketpair_rig.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
