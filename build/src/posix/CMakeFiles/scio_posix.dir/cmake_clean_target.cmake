file(REMOVE_RECURSE
  "libscio_posix.a"
)
