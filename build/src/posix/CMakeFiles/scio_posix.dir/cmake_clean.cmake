file(REMOVE_RECURSE
  "CMakeFiles/scio_posix.dir/epoll_backend.cc.o"
  "CMakeFiles/scio_posix.dir/epoll_backend.cc.o.d"
  "CMakeFiles/scio_posix.dir/event_backend.cc.o"
  "CMakeFiles/scio_posix.dir/event_backend.cc.o.d"
  "CMakeFiles/scio_posix.dir/poll_backend.cc.o"
  "CMakeFiles/scio_posix.dir/poll_backend.cc.o.d"
  "CMakeFiles/scio_posix.dir/rtsig_backend.cc.o"
  "CMakeFiles/scio_posix.dir/rtsig_backend.cc.o.d"
  "CMakeFiles/scio_posix.dir/select_backend.cc.o"
  "CMakeFiles/scio_posix.dir/select_backend.cc.o.d"
  "CMakeFiles/scio_posix.dir/socketpair_rig.cc.o"
  "CMakeFiles/scio_posix.dir/socketpair_rig.cc.o.d"
  "libscio_posix.a"
  "libscio_posix.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/scio_posix.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
