# Empty compiler generated dependencies file for scio_posix.
# This may be replaced when dependencies are built.
