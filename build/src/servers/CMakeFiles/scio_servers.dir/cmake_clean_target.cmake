file(REMOVE_RECURSE
  "libscio_servers.a"
)
