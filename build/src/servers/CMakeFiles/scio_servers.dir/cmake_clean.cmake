file(REMOVE_RECURSE
  "CMakeFiles/scio_servers.dir/hybrid_server.cc.o"
  "CMakeFiles/scio_servers.dir/hybrid_server.cc.o.d"
  "CMakeFiles/scio_servers.dir/phhttpd.cc.o"
  "CMakeFiles/scio_servers.dir/phhttpd.cc.o.d"
  "CMakeFiles/scio_servers.dir/server_base.cc.o"
  "CMakeFiles/scio_servers.dir/server_base.cc.o.d"
  "CMakeFiles/scio_servers.dir/thttpd_devpoll.cc.o"
  "CMakeFiles/scio_servers.dir/thttpd_devpoll.cc.o.d"
  "CMakeFiles/scio_servers.dir/thttpd_poll.cc.o"
  "CMakeFiles/scio_servers.dir/thttpd_poll.cc.o.d"
  "libscio_servers.a"
  "libscio_servers.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/scio_servers.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
