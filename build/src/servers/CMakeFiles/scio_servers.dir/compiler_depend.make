# Empty compiler generated dependencies file for scio_servers.
# This may be replaced when dependencies are built.
