
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/servers/hybrid_server.cc" "src/servers/CMakeFiles/scio_servers.dir/hybrid_server.cc.o" "gcc" "src/servers/CMakeFiles/scio_servers.dir/hybrid_server.cc.o.d"
  "/root/repo/src/servers/phhttpd.cc" "src/servers/CMakeFiles/scio_servers.dir/phhttpd.cc.o" "gcc" "src/servers/CMakeFiles/scio_servers.dir/phhttpd.cc.o.d"
  "/root/repo/src/servers/server_base.cc" "src/servers/CMakeFiles/scio_servers.dir/server_base.cc.o" "gcc" "src/servers/CMakeFiles/scio_servers.dir/server_base.cc.o.d"
  "/root/repo/src/servers/thttpd_devpoll.cc" "src/servers/CMakeFiles/scio_servers.dir/thttpd_devpoll.cc.o" "gcc" "src/servers/CMakeFiles/scio_servers.dir/thttpd_devpoll.cc.o.d"
  "/root/repo/src/servers/thttpd_poll.cc" "src/servers/CMakeFiles/scio_servers.dir/thttpd_poll.cc.o" "gcc" "src/servers/CMakeFiles/scio_servers.dir/thttpd_poll.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/scio_core.dir/DependInfo.cmake"
  "/root/repo/build/src/http/CMakeFiles/scio_http.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/scio_net.dir/DependInfo.cmake"
  "/root/repo/build/src/kernel/CMakeFiles/scio_kernel.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/scio_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
