file(REMOVE_RECURSE
  "libscio_http.a"
)
