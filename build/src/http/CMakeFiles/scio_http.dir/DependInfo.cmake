
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/http/http_message.cc" "src/http/CMakeFiles/scio_http.dir/http_message.cc.o" "gcc" "src/http/CMakeFiles/scio_http.dir/http_message.cc.o.d"
  "/root/repo/src/http/request_parser.cc" "src/http/CMakeFiles/scio_http.dir/request_parser.cc.o" "gcc" "src/http/CMakeFiles/scio_http.dir/request_parser.cc.o.d"
  "/root/repo/src/http/response_reader.cc" "src/http/CMakeFiles/scio_http.dir/response_reader.cc.o" "gcc" "src/http/CMakeFiles/scio_http.dir/response_reader.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/net/CMakeFiles/scio_net.dir/DependInfo.cmake"
  "/root/repo/build/src/kernel/CMakeFiles/scio_kernel.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/scio_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
