# Empty dependencies file for scio_http.
# This may be replaced when dependencies are built.
