file(REMOVE_RECURSE
  "CMakeFiles/scio_http.dir/http_message.cc.o"
  "CMakeFiles/scio_http.dir/http_message.cc.o.d"
  "CMakeFiles/scio_http.dir/request_parser.cc.o"
  "CMakeFiles/scio_http.dir/request_parser.cc.o.d"
  "CMakeFiles/scio_http.dir/response_reader.cc.o"
  "CMakeFiles/scio_http.dir/response_reader.cc.o.d"
  "libscio_http.a"
  "libscio_http.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/scio_http.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
