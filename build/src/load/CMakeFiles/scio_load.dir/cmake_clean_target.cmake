file(REMOVE_RECURSE
  "libscio_load.a"
)
