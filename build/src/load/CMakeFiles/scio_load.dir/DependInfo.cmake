
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/load/active_client.cc" "src/load/CMakeFiles/scio_load.dir/active_client.cc.o" "gcc" "src/load/CMakeFiles/scio_load.dir/active_client.cc.o.d"
  "/root/repo/src/load/benchmark_run.cc" "src/load/CMakeFiles/scio_load.dir/benchmark_run.cc.o" "gcc" "src/load/CMakeFiles/scio_load.dir/benchmark_run.cc.o.d"
  "/root/repo/src/load/httperf.cc" "src/load/CMakeFiles/scio_load.dir/httperf.cc.o" "gcc" "src/load/CMakeFiles/scio_load.dir/httperf.cc.o.d"
  "/root/repo/src/load/inactive_pool.cc" "src/load/CMakeFiles/scio_load.dir/inactive_pool.cc.o" "gcc" "src/load/CMakeFiles/scio_load.dir/inactive_pool.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/servers/CMakeFiles/scio_servers.dir/DependInfo.cmake"
  "/root/repo/build/src/metrics/CMakeFiles/scio_metrics.dir/DependInfo.cmake"
  "/root/repo/build/src/http/CMakeFiles/scio_http.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/scio_core.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/scio_net.dir/DependInfo.cmake"
  "/root/repo/build/src/kernel/CMakeFiles/scio_kernel.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/scio_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
