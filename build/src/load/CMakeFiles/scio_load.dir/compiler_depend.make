# Empty compiler generated dependencies file for scio_load.
# This may be replaced when dependencies are built.
