file(REMOVE_RECURSE
  "CMakeFiles/scio_load.dir/active_client.cc.o"
  "CMakeFiles/scio_load.dir/active_client.cc.o.d"
  "CMakeFiles/scio_load.dir/benchmark_run.cc.o"
  "CMakeFiles/scio_load.dir/benchmark_run.cc.o.d"
  "CMakeFiles/scio_load.dir/httperf.cc.o"
  "CMakeFiles/scio_load.dir/httperf.cc.o.d"
  "CMakeFiles/scio_load.dir/inactive_pool.cc.o"
  "CMakeFiles/scio_load.dir/inactive_pool.cc.o.d"
  "libscio_load.a"
  "libscio_load.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/scio_load.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
