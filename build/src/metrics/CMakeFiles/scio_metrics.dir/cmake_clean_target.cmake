file(REMOVE_RECURSE
  "libscio_metrics.a"
)
