# Empty dependencies file for scio_metrics.
# This may be replaced when dependencies are built.
