file(REMOVE_RECURSE
  "CMakeFiles/scio_metrics.dir/percentile.cc.o"
  "CMakeFiles/scio_metrics.dir/percentile.cc.o.d"
  "CMakeFiles/scio_metrics.dir/table.cc.o"
  "CMakeFiles/scio_metrics.dir/table.cc.o.d"
  "libscio_metrics.a"
  "libscio_metrics.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/scio_metrics.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
