file(REMOVE_RECURSE
  "libscio_sim.a"
)
