file(REMOVE_RECURSE
  "CMakeFiles/scio_sim.dir/event_queue.cc.o"
  "CMakeFiles/scio_sim.dir/event_queue.cc.o.d"
  "CMakeFiles/scio_sim.dir/rng.cc.o"
  "CMakeFiles/scio_sim.dir/rng.cc.o.d"
  "CMakeFiles/scio_sim.dir/simulator.cc.o"
  "CMakeFiles/scio_sim.dir/simulator.cc.o.d"
  "libscio_sim.a"
  "libscio_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/scio_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
