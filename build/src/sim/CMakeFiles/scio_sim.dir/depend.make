# Empty dependencies file for scio_sim.
# This may be replaced when dependencies are built.
