file(REMOVE_RECURSE
  "libscio_kernel.a"
)
