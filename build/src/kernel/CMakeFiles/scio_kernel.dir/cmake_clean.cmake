file(REMOVE_RECURSE
  "CMakeFiles/scio_kernel.dir/fd_table.cc.o"
  "CMakeFiles/scio_kernel.dir/fd_table.cc.o.d"
  "CMakeFiles/scio_kernel.dir/file.cc.o"
  "CMakeFiles/scio_kernel.dir/file.cc.o.d"
  "CMakeFiles/scio_kernel.dir/kernel_stats.cc.o"
  "CMakeFiles/scio_kernel.dir/kernel_stats.cc.o.d"
  "CMakeFiles/scio_kernel.dir/process.cc.o"
  "CMakeFiles/scio_kernel.dir/process.cc.o.d"
  "CMakeFiles/scio_kernel.dir/sim_kernel.cc.o"
  "CMakeFiles/scio_kernel.dir/sim_kernel.cc.o.d"
  "CMakeFiles/scio_kernel.dir/wait_queue.cc.o"
  "CMakeFiles/scio_kernel.dir/wait_queue.cc.o.d"
  "libscio_kernel.a"
  "libscio_kernel.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/scio_kernel.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
