# Empty dependencies file for scio_kernel.
# This may be replaced when dependencies are built.
