
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/kernel/fd_table.cc" "src/kernel/CMakeFiles/scio_kernel.dir/fd_table.cc.o" "gcc" "src/kernel/CMakeFiles/scio_kernel.dir/fd_table.cc.o.d"
  "/root/repo/src/kernel/file.cc" "src/kernel/CMakeFiles/scio_kernel.dir/file.cc.o" "gcc" "src/kernel/CMakeFiles/scio_kernel.dir/file.cc.o.d"
  "/root/repo/src/kernel/kernel_stats.cc" "src/kernel/CMakeFiles/scio_kernel.dir/kernel_stats.cc.o" "gcc" "src/kernel/CMakeFiles/scio_kernel.dir/kernel_stats.cc.o.d"
  "/root/repo/src/kernel/process.cc" "src/kernel/CMakeFiles/scio_kernel.dir/process.cc.o" "gcc" "src/kernel/CMakeFiles/scio_kernel.dir/process.cc.o.d"
  "/root/repo/src/kernel/sim_kernel.cc" "src/kernel/CMakeFiles/scio_kernel.dir/sim_kernel.cc.o" "gcc" "src/kernel/CMakeFiles/scio_kernel.dir/sim_kernel.cc.o.d"
  "/root/repo/src/kernel/wait_queue.cc" "src/kernel/CMakeFiles/scio_kernel.dir/wait_queue.cc.o" "gcc" "src/kernel/CMakeFiles/scio_kernel.dir/wait_queue.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/sim/CMakeFiles/scio_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
