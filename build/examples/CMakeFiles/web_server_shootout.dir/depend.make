# Empty dependencies file for web_server_shootout.
# This may be replaced when dependencies are built.
