file(REMOVE_RECURSE
  "CMakeFiles/web_server_shootout.dir/web_server_shootout.cpp.o"
  "CMakeFiles/web_server_shootout.dir/web_server_shootout.cpp.o.d"
  "web_server_shootout"
  "web_server_shootout.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/web_server_shootout.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
