# Empty compiler generated dependencies file for hybrid_crossover.
# This may be replaced when dependencies are built.
