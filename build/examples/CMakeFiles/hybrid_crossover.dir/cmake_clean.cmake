file(REMOVE_RECURSE
  "CMakeFiles/hybrid_crossover.dir/hybrid_crossover.cpp.o"
  "CMakeFiles/hybrid_crossover.dir/hybrid_crossover.cpp.o.d"
  "hybrid_crossover"
  "hybrid_crossover.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hybrid_crossover.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
