file(REMOVE_RECURSE
  "CMakeFiles/echo_backends_posix.dir/echo_backends_posix.cpp.o"
  "CMakeFiles/echo_backends_posix.dir/echo_backends_posix.cpp.o.d"
  "echo_backends_posix"
  "echo_backends_posix.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/echo_backends_posix.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
