# Empty compiler generated dependencies file for echo_backends_posix.
# This may be replaced when dependencies are built.
