file(REMOVE_RECURSE
  "../bench/bench_fig12_phhttpd_load251"
  "../bench/bench_fig12_phhttpd_load251.pdb"
  "CMakeFiles/bench_fig12_phhttpd_load251.dir/bench_fig12_phhttpd_load251.cc.o"
  "CMakeFiles/bench_fig12_phhttpd_load251.dir/bench_fig12_phhttpd_load251.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig12_phhttpd_load251.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
