# Empty dependencies file for bench_fig12_phhttpd_load251.
# This may be replaced when dependencies are built.
