# Empty compiler generated dependencies file for bench_fig08_thttpd_poll_load501.
# This may be replaced when dependencies are built.
