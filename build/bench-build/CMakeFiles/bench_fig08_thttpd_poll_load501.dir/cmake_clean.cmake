file(REMOVE_RECURSE
  "../bench/bench_fig08_thttpd_poll_load501"
  "../bench/bench_fig08_thttpd_poll_load501.pdb"
  "CMakeFiles/bench_fig08_thttpd_poll_load501.dir/bench_fig08_thttpd_poll_load501.cc.o"
  "CMakeFiles/bench_fig08_thttpd_poll_load501.dir/bench_fig08_thttpd_poll_load501.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig08_thttpd_poll_load501.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
