# Empty dependencies file for bench_fig05_thttpd_devpoll_load1.
# This may be replaced when dependencies are built.
