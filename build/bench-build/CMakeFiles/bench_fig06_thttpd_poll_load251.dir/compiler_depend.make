# Empty compiler generated dependencies file for bench_fig06_thttpd_poll_load251.
# This may be replaced when dependencies are built.
