file(REMOVE_RECURSE
  "../tools/bench_diag"
  "../tools/bench_diag.pdb"
  "CMakeFiles/bench_diag.dir/bench_diag.cc.o"
  "CMakeFiles/bench_diag.dir/bench_diag.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_diag.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
