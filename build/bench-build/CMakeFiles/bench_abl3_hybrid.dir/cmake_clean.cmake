file(REMOVE_RECURSE
  "../bench/bench_abl3_hybrid"
  "../bench/bench_abl3_hybrid.pdb"
  "CMakeFiles/bench_abl3_hybrid.dir/bench_abl3_hybrid.cc.o"
  "CMakeFiles/bench_abl3_hybrid.dir/bench_abl3_hybrid.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_abl3_hybrid.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
