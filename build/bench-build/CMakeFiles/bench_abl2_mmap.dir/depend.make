# Empty dependencies file for bench_abl2_mmap.
# This may be replaced when dependencies are built.
