file(REMOVE_RECURSE
  "../bench/bench_abl2_mmap"
  "../bench/bench_abl2_mmap.pdb"
  "CMakeFiles/bench_abl2_mmap.dir/bench_abl2_mmap.cc.o"
  "CMakeFiles/bench_abl2_mmap.dir/bench_abl2_mmap.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_abl2_mmap.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
