# Empty compiler generated dependencies file for bench_fig13_phhttpd_load501.
# This may be replaced when dependencies are built.
