# CMAKE generated file: DO NOT EDIT!
# Timestamp file for compiler generated dependencies management for scio_figure_harness.
