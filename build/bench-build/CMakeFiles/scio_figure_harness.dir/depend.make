# Empty dependencies file for scio_figure_harness.
# This may be replaced when dependencies are built.
