file(REMOVE_RECURSE
  "libscio_figure_harness.a"
)
