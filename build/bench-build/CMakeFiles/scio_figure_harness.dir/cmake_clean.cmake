file(REMOVE_RECURSE
  "CMakeFiles/scio_figure_harness.dir/figure_harness.cc.o"
  "CMakeFiles/scio_figure_harness.dir/figure_harness.cc.o.d"
  "libscio_figure_harness.a"
  "libscio_figure_harness.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/scio_figure_harness.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
