# Empty compiler generated dependencies file for bench_fig07_thttpd_devpoll_load251.
# This may be replaced when dependencies are built.
