# Empty compiler generated dependencies file for bench_fig09_thttpd_devpoll_load501.
# This may be replaced when dependencies are built.
