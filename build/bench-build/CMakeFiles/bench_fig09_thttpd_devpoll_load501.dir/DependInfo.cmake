
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/bench_fig09_thttpd_devpoll_load501.cc" "bench-build/CMakeFiles/bench_fig09_thttpd_devpoll_load501.dir/bench_fig09_thttpd_devpoll_load501.cc.o" "gcc" "bench-build/CMakeFiles/bench_fig09_thttpd_devpoll_load501.dir/bench_fig09_thttpd_devpoll_load501.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/bench-build/CMakeFiles/scio_figure_harness.dir/DependInfo.cmake"
  "/root/repo/build/src/load/CMakeFiles/scio_load.dir/DependInfo.cmake"
  "/root/repo/build/src/servers/CMakeFiles/scio_servers.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/scio_core.dir/DependInfo.cmake"
  "/root/repo/build/src/http/CMakeFiles/scio_http.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/scio_net.dir/DependInfo.cmake"
  "/root/repo/build/src/kernel/CMakeFiles/scio_kernel.dir/DependInfo.cmake"
  "/root/repo/build/src/metrics/CMakeFiles/scio_metrics.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/scio_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
