file(REMOVE_RECURSE
  "../bench/bench_micro_posix"
  "../bench/bench_micro_posix.pdb"
  "CMakeFiles/bench_micro_posix.dir/bench_micro_posix.cc.o"
  "CMakeFiles/bench_micro_posix.dir/bench_micro_posix.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_micro_posix.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
