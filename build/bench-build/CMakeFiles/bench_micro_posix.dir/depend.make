# Empty dependencies file for bench_micro_posix.
# This may be replaced when dependencies are built.
