file(REMOVE_RECURSE
  "../bench/bench_fig10_error_rates"
  "../bench/bench_fig10_error_rates.pdb"
  "CMakeFiles/bench_fig10_error_rates.dir/bench_fig10_error_rates.cc.o"
  "CMakeFiles/bench_fig10_error_rates.dir/bench_fig10_error_rates.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig10_error_rates.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
