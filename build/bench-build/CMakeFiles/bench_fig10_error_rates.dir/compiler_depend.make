# Empty compiler generated dependencies file for bench_fig10_error_rates.
# This may be replaced when dependencies are built.
