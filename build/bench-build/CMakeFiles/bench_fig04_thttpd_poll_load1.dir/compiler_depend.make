# Empty compiler generated dependencies file for bench_fig04_thttpd_poll_load1.
# This may be replaced when dependencies are built.
