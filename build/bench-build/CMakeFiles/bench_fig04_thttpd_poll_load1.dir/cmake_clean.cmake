file(REMOVE_RECURSE
  "../bench/bench_fig04_thttpd_poll_load1"
  "../bench/bench_fig04_thttpd_poll_load1.pdb"
  "CMakeFiles/bench_fig04_thttpd_poll_load1.dir/bench_fig04_thttpd_poll_load1.cc.o"
  "CMakeFiles/bench_fig04_thttpd_poll_load1.dir/bench_fig04_thttpd_poll_load1.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig04_thttpd_poll_load1.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
