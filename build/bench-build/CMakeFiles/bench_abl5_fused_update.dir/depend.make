# Empty dependencies file for bench_abl5_fused_update.
# This may be replaced when dependencies are built.
