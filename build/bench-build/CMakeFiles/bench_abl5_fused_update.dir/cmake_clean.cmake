file(REMOVE_RECURSE
  "../bench/bench_abl5_fused_update"
  "../bench/bench_abl5_fused_update.pdb"
  "CMakeFiles/bench_abl5_fused_update.dir/bench_abl5_fused_update.cc.o"
  "CMakeFiles/bench_abl5_fused_update.dir/bench_abl5_fused_update.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_abl5_fused_update.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
