# Empty compiler generated dependencies file for bench_abl1_hints.
# This may be replaced when dependencies are built.
