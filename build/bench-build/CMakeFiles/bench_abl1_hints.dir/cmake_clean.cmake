file(REMOVE_RECURSE
  "../bench/bench_abl1_hints"
  "../bench/bench_abl1_hints.pdb"
  "CMakeFiles/bench_abl1_hints.dir/bench_abl1_hints.cc.o"
  "CMakeFiles/bench_abl1_hints.dir/bench_abl1_hints.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_abl1_hints.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
