# Empty dependencies file for bench_abl4_sigbatch.
# This may be replaced when dependencies are built.
