file(REMOVE_RECURSE
  "../bench/bench_abl4_sigbatch"
  "../bench/bench_abl4_sigbatch.pdb"
  "CMakeFiles/bench_abl4_sigbatch.dir/bench_abl4_sigbatch.cc.o"
  "CMakeFiles/bench_abl4_sigbatch.dir/bench_abl4_sigbatch.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_abl4_sigbatch.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
