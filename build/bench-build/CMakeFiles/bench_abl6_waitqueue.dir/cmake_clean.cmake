file(REMOVE_RECURSE
  "../bench/bench_abl6_waitqueue"
  "../bench/bench_abl6_waitqueue.pdb"
  "CMakeFiles/bench_abl6_waitqueue.dir/bench_abl6_waitqueue.cc.o"
  "CMakeFiles/bench_abl6_waitqueue.dir/bench_abl6_waitqueue.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_abl6_waitqueue.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
