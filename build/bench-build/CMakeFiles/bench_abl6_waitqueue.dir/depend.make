# Empty dependencies file for bench_abl6_waitqueue.
# This may be replaced when dependencies are built.
