file(REMOVE_RECURSE
  "../bench/bench_fig14_median_latency"
  "../bench/bench_fig14_median_latency.pdb"
  "CMakeFiles/bench_fig14_median_latency.dir/bench_fig14_median_latency.cc.o"
  "CMakeFiles/bench_fig14_median_latency.dir/bench_fig14_median_latency.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig14_median_latency.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
