file(REMOVE_RECURSE
  "../bench/bench_ext_docsize"
  "../bench/bench_ext_docsize.pdb"
  "CMakeFiles/bench_ext_docsize.dir/bench_ext_docsize.cc.o"
  "CMakeFiles/bench_ext_docsize.dir/bench_ext_docsize.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ext_docsize.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
