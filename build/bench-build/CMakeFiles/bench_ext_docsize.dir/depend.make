# Empty dependencies file for bench_ext_docsize.
# This may be replaced when dependencies are built.
