file(REMOVE_RECURSE
  "../bench/bench_micro_interest_table"
  "../bench/bench_micro_interest_table.pdb"
  "CMakeFiles/bench_micro_interest_table.dir/bench_micro_interest_table.cc.o"
  "CMakeFiles/bench_micro_interest_table.dir/bench_micro_interest_table.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_micro_interest_table.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
