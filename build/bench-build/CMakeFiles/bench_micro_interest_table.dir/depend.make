# Empty dependencies file for bench_micro_interest_table.
# This may be replaced when dependencies are built.
