file(REMOVE_RECURSE
  "../tools/bench_smoke"
  "../tools/bench_smoke.pdb"
  "CMakeFiles/bench_smoke.dir/bench_smoke.cc.o"
  "CMakeFiles/bench_smoke.dir/bench_smoke.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_smoke.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
