# Empty compiler generated dependencies file for bench_fig11_phhttpd_load1.
# This may be replaced when dependencies are built.
