# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/devpoll_test[1]_include.cmake")
include("/root/repo/build/tests/load_test[1]_include.cmake")
include("/root/repo/build/tests/http_test[1]_include.cmake")
include("/root/repo/build/tests/interest_table_test[1]_include.cmake")
include("/root/repo/build/tests/kernel_test[1]_include.cmake")
include("/root/repo/build/tests/metrics_test[1]_include.cmake")
include("/root/repo/build/tests/net_test[1]_include.cmake")
include("/root/repo/build/tests/posix_test[1]_include.cmake")
include("/root/repo/build/tests/servers_test[1]_include.cmake")
include("/root/repo/build/tests/poll_syscall_test[1]_include.cmake")
include("/root/repo/build/tests/rt_io_test[1]_include.cmake")
include("/root/repo/build/tests/sim_test[1]_include.cmake")
include("/root/repo/build/tests/sys_test[1]_include.cmake")
