file(REMOVE_RECURSE
  "CMakeFiles/devpoll_test.dir/devpoll_test.cc.o"
  "CMakeFiles/devpoll_test.dir/devpoll_test.cc.o.d"
  "devpoll_test"
  "devpoll_test.pdb"
  "devpoll_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/devpoll_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
