# Empty compiler generated dependencies file for devpoll_test.
# This may be replaced when dependencies are built.
