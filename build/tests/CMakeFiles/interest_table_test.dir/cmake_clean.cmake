file(REMOVE_RECURSE
  "CMakeFiles/interest_table_test.dir/interest_table_test.cc.o"
  "CMakeFiles/interest_table_test.dir/interest_table_test.cc.o.d"
  "interest_table_test"
  "interest_table_test.pdb"
  "interest_table_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/interest_table_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
