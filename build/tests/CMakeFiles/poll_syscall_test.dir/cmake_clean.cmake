file(REMOVE_RECURSE
  "CMakeFiles/poll_syscall_test.dir/poll_syscall_test.cc.o"
  "CMakeFiles/poll_syscall_test.dir/poll_syscall_test.cc.o.d"
  "poll_syscall_test"
  "poll_syscall_test.pdb"
  "poll_syscall_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/poll_syscall_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
