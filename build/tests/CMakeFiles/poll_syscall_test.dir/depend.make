# Empty dependencies file for poll_syscall_test.
# This may be replaced when dependencies are built.
