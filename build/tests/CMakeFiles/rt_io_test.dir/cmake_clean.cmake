file(REMOVE_RECURSE
  "CMakeFiles/rt_io_test.dir/rt_io_test.cc.o"
  "CMakeFiles/rt_io_test.dir/rt_io_test.cc.o.d"
  "rt_io_test"
  "rt_io_test.pdb"
  "rt_io_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rt_io_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
