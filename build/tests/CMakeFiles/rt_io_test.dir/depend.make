# Empty dependencies file for rt_io_test.
# This may be replaced when dependencies are built.
