// sciolint flow engine: function-granular control-flow and dataflow analysis
// on top of the token stream.
//
// Three layers, each deliberately small:
//
//   1. Function extraction — find `name (args) [modifiers] [: init-list] {`
//      definitions in the token stream (free functions, member definitions,
//      inline methods, TEST bodies). Lambdas are *not* extracted: a lambda's
//      tokens stay inside the statement that contains it and its events are
//      scanned linearly as part of that statement.
//   2. Statement trees + CFG — a recursive-descent parse of each body into
//      if/loop/switch/return/break/continue/block/simple statements, then a
//      per-function control-flow graph: branch joins, loop back edges,
//      `while (true)`/`for (;;)` with no exit edge, switch fallthrough
//      (goto-free), break/continue targets, every return wired to the exit.
//   3. Forward dataflow — per-rule transfer functions over node token spans,
//      iterated to a fixpoint with rule-specific merge operators.
//
// Rules implemented here (scopes chosen to match where each invariant lives):
//
//   F1  use-after-close (src/): an fd local that flowed into a Sys/SimKernel
//       `Close(fd)` (receiver chain names sys/fds/kernel) reaches another
//       syscall wrapper on a path after the close; likewise a slab index
//       passed to `At()` on a path after `ReleaseAt()` on the same receiver.
//       May-analysis (closed on any incoming path counts); reassignment and
//       `EmplaceAt()` revive the value; `Contains()`/`Get()` are validity
//       probes, not uses.
//   W1  waiter pairing (src/{kernel,core,smp}): every `Add`/`AddExclusive`
//       on a wait-queue receiver (chain names *wait*) must be matched by a
//       `Detach()`/`Remove()` of the same waiter token before every exit.
//       Merge is optimistic for removal (a clear on any path pairs the
//       registration) so pooled detach loops don't false-positive, while a
//       return reachable with no clear anywhere on the way is flagged.
//   H1  hot-path allocation ban: functions annotated `// sciolint: hotpath`
//       plus the built-in harvest/wait loops of the six event cores must not
//       contain `new`, `make_unique`, `make_shared` or `std::function`.
//   E2  errno discipline (src/kernel, src/posix): a `return -N;` error exit
//       must be dominated by an `errno = ...` assignment (must-analysis:
//       assigned on every path into the return). Returns of named `kErr*`
//       codes or expressions that read `errno` are already disciplined.
//   X1  exhaustive switch: a `switch` whose case labels qualify `ChargeCat::`
//       or `MemSys::` must cover every enumerator of the X-macro taxonomy;
//       a `default:` escape needs an allow(X1) annotation.

#ifndef TOOLS_SCIOLINT_FLOW_H_
#define TOOLS_SCIOLINT_FLOW_H_

#include <map>
#include <set>
#include <string>
#include <vector>

#include "tools/sciolint/lexer.h"

namespace scio::lint {

// Cross-file inputs the flow rules need: the X-macro enum taxonomies
// (enum name -> enumerator set), collected by the index pass.
struct FlowContext {
  std::map<std::string, std::set<std::string>> taxonomy_enums;
};

// A finding before suppression/baseline handling (Analysis::AddFinding owns
// that machinery).
struct FlowFinding {
  std::string rule;
  int line = 0;
  int col = 0;
  std::string message;
};

std::vector<FlowFinding> CheckFlowRules(const LexedFile& file,
                                        const FlowContext& ctx);

}  // namespace scio::lint

#endif  // TOOLS_SCIOLINT_FLOW_H_
