#include "tools/sciolint/lexer.h"

#include <cctype>

namespace scio::lint {
namespace {

bool IsIdentStart(char c) { return std::isalpha(static_cast<unsigned char>(c)) != 0 || c == '_'; }
bool IsIdentChar(char c) { return std::isalnum(static_cast<unsigned char>(c)) != 0 || c == '_'; }

// Parse the text of one comment; if it carries a `sciolint:` directive,
// append the structured annotation.
void ParseAnnotation(std::string_view comment, int line, std::vector<Annotation>* out) {
  const size_t tag = comment.find("sciolint:");
  if (tag == std::string_view::npos) {
    return;
  }
  Annotation ann;
  ann.line = line;
  ann.raw = std::string(comment.substr(tag));
  std::string_view rest = comment.substr(tag + 9);  // after "sciolint:"
  while (!rest.empty() && rest.front() == ' ') {
    rest.remove_prefix(1);
  }
  if (rest.rfind("hotpath", 0) == 0) {
    // `hotpath` takes no rule list; anything after it other than whitespace
    // or an optional `-- reason` tail is a malformed directive.
    std::string_view tail = rest.substr(7);
    while (!tail.empty() && (tail.front() == ' ' || tail.front() == '\n')) {
      tail.remove_prefix(1);
    }
    ann.hotpath = tail.empty() || tail.rfind("--", 0) == 0;
    ann.malformed = !ann.hotpath;
    out->push_back(std::move(ann));
    return;
  }
  if (rest.rfind("allow(", 0) != 0) {
    ann.malformed = true;
    out->push_back(std::move(ann));
    return;
  }
  rest.remove_prefix(6);
  const size_t close = rest.find(')');
  if (close == std::string_view::npos) {
    ann.malformed = true;
    out->push_back(std::move(ann));
    return;
  }
  std::string_view rule_list = rest.substr(0, close);
  std::string current;
  for (char c : rule_list) {
    if (c == ',' || c == ' ') {
      if (!current.empty()) {
        ann.rules.push_back(current);
        current.clear();
      }
    } else {
      current.push_back(c);
    }
  }
  if (!current.empty()) {
    ann.rules.push_back(current);
  }
  std::string_view after = rest.substr(close + 1);
  const size_t dash = after.find("--");
  if (dash != std::string_view::npos) {
    std::string_view reason = after.substr(dash + 2);
    while (!reason.empty() && reason.front() == ' ') {
      reason.remove_prefix(1);
    }
    while (!reason.empty() && (reason.back() == '\n' || reason.back() == ' ')) {
      reason.remove_suffix(1);
    }
    ann.reason = std::string(reason);
  }
  // An allow with no rules or no reason is itself a defect: the escape hatch
  // must say what it allows and why.
  if (ann.rules.empty() || ann.reason.empty()) {
    ann.malformed = true;
  }
  out->push_back(std::move(ann));
}

}  // namespace

LexedFile Lex(std::string path, std::string_view src) {
  LexedFile out;
  out.path = std::move(path);

  // Split raw lines for snippet reporting.
  {
    size_t start = 0;
    while (start <= src.size()) {
      size_t end = src.find('\n', start);
      if (end == std::string_view::npos) {
        out.lines.emplace_back(src.substr(start));
        break;
      }
      out.lines.emplace_back(src.substr(start, end - start));
      start = end + 1;
    }
  }

  size_t i = 0;
  int line = 1;
  int col = 1;
  const auto advance = [&](size_t n) {
    for (size_t k = 0; k < n && i < src.size(); ++k, ++i) {
      if (src[i] == '\n') {
        ++line;
        col = 1;
      } else {
        ++col;
      }
    }
  };

  while (i < src.size()) {
    const char c = src[i];
    // Whitespace.
    if (c == ' ' || c == '\t' || c == '\r' || c == '\n' || c == '\\') {
      advance(1);
      continue;
    }
    // Line comment.
    if (c == '/' && i + 1 < src.size() && src[i + 1] == '/') {
      const size_t end = src.find('\n', i);
      const size_t len = (end == std::string_view::npos ? src.size() : end) - i;
      ParseAnnotation(src.substr(i, len), line, &out.annotations);
      advance(len);
      continue;
    }
    // Block comment.
    if (c == '/' && i + 1 < src.size() && src[i + 1] == '*') {
      const size_t end = src.find("*/", i + 2);
      const size_t stop = end == std::string_view::npos ? src.size() : end + 2;
      ParseAnnotation(src.substr(i, stop - i), line, &out.annotations);
      advance(stop - i);
      continue;
    }
    // Raw string literal: R"delim( ... )delim".
    if (c == 'R' && i + 1 < src.size() && src[i + 1] == '"') {
      size_t j = i + 2;
      std::string delim;
      while (j < src.size() && src[j] != '(') {
        delim.push_back(src[j]);
        ++j;
      }
      const std::string closer = ")" + delim + "\"";
      const size_t end = src.find(closer, j);
      const size_t stop = end == std::string_view::npos ? src.size() : end + closer.size();
      out.tokens.push_back({Tok::kString, "R\"...\"", line, col});
      advance(stop - i);
      continue;
    }
    // String / char literal.
    if (c == '"' || c == '\'') {
      const char quote = c;
      size_t j = i + 1;
      while (j < src.size() && src[j] != quote) {
        if (src[j] == '\\' && j + 1 < src.size()) {
          ++j;
        }
        ++j;
      }
      const size_t stop = j < src.size() ? j + 1 : src.size();
      out.tokens.push_back(
          {Tok::kString, std::string(src.substr(i, stop - i)), line, col});
      advance(stop - i);
      continue;
    }
    // Identifier.
    if (IsIdentStart(c)) {
      size_t j = i;
      while (j < src.size() && IsIdentChar(src[j])) {
        ++j;
      }
      out.tokens.push_back({Tok::kIdent, std::string(src.substr(i, j - i)), line, col});
      advance(j - i);
      continue;
    }
    // Number (loose: digits plus the usual suffix/float characters).
    if (std::isdigit(static_cast<unsigned char>(c)) != 0) {
      size_t j = i;
      while (j < src.size() &&
             (IsIdentChar(src[j]) || src[j] == '.' ||
              ((src[j] == '+' || src[j] == '-') && j > i &&
               (src[j - 1] == 'e' || src[j - 1] == 'E')))) {
        ++j;
      }
      out.tokens.push_back({Tok::kNumber, std::string(src.substr(i, j - i)), line, col});
      advance(j - i);
      continue;
    }
    // Two-char punctuation the rules care about.
    if (c == ':' && i + 1 < src.size() && src[i + 1] == ':') {
      out.tokens.push_back({Tok::kPunct, "::", line, col});
      advance(2);
      continue;
    }
    if (c == '-' && i + 1 < src.size() && src[i + 1] == '>') {
      out.tokens.push_back({Tok::kPunct, "->", line, col});
      advance(2);
      continue;
    }
    out.tokens.push_back({Tok::kPunct, std::string(1, c), line, col});
    advance(1);
  }
  return out;
}

}  // namespace scio::lint
