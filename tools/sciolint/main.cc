// sciolint: repo-native static analysis for the scio tree.
//
//   sciolint [options] <path>...
//
// Paths are files or directories (walked recursively for .cc/.h/.cpp/.hpp;
// build trees and dot-directories are skipped). Exit code 0 when every
// finding is suppressed or baselined, 1 when unbaselined findings remain,
// 2 on usage or I/O errors.
//
// Options:
//   --baseline=FILE        suppress findings whose fingerprint is listed
//   --write-baseline=FILE  write the current findings' fingerprints and exit 0
//   --json[=FILE]          machine-readable report (stdout, or FILE)
//   --sarif=FILE           SARIF 2.1.0 report for code-scanning upload
//   --quiet                suppress the human-readable report

#include <algorithm>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "tools/sciolint/analysis.h"
#include "tools/sciolint/sarif.h"

namespace scio::lint {
namespace {

namespace fs = std::filesystem;

bool HasSourceExtension(const fs::path& p) {
  const std::string ext = p.extension().string();
  return ext == ".cc" || ext == ".h" || ext == ".cpp" || ext == ".hpp";
}

bool SkippedDir(const std::string& name) {
  return name.empty() || name[0] == '.' || name.rfind("build", 0) == 0;
}

std::vector<std::string> CollectFiles(const std::vector<std::string>& roots,
                                      std::string* error) {
  std::vector<std::string> files;
  for (const std::string& root : roots) {
    std::error_code ec;
    if (fs::is_regular_file(root, ec)) {
      files.push_back(root);
      continue;
    }
    if (!fs::is_directory(root, ec)) {
      *error = "path does not exist: " + root;
      return {};
    }
    fs::recursive_directory_iterator it(root, fs::directory_options::skip_permission_denied, ec);
    const fs::recursive_directory_iterator end;
    for (; it != end; it.increment(ec)) {
      if (ec) {
        break;
      }
      if (it->is_directory() && SkippedDir(it->path().filename().string())) {
        it.disable_recursion_pending();
        continue;
      }
      if (it->is_regular_file() && HasSourceExtension(it->path())) {
        files.push_back(it->path().generic_string());
      }
    }
  }
  std::sort(files.begin(), files.end());
  return files;
}

std::string JsonEscape(const std::string& s) {
  std::string out;
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

std::string ToJson(const std::vector<Finding>& findings) {
  std::ostringstream out;
  out << "{\n  \"findings\": [\n";
  for (size_t i = 0; i < findings.size(); ++i) {
    const Finding& f = findings[i];
    out << "    {\"rule\": \"" << f.rule << "\", \"path\": \"" << JsonEscape(f.path)
        << "\", \"line\": " << f.line << ", \"col\": " << f.col
        << ", \"message\": \"" << JsonEscape(f.message) << "\", \"snippet\": \""
        << JsonEscape(f.snippet) << "\", \"fingerprint\": \"" << Fingerprint(f)
        << "\", \"suppressed\": " << (f.suppressed ? "true" : "false")
        << ", \"baselined\": " << (f.baselined ? "true" : "false") << "}"
        << (i + 1 < findings.size() ? "," : "") << "\n";
  }
  out << "  ]\n}\n";
  return out.str();
}

int Main(int argc, char** argv) {
  std::string baseline_path;
  std::string write_baseline_path;
  std::string json_path;
  std::string sarif_path;
  bool want_json = false;
  bool quiet = false;
  std::vector<std::string> roots;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg.rfind("--baseline=", 0) == 0) {
      baseline_path = arg.substr(11);
    } else if (arg.rfind("--write-baseline=", 0) == 0) {
      write_baseline_path = arg.substr(17);
    } else if (arg == "--json") {
      want_json = true;
    } else if (arg.rfind("--json=", 0) == 0) {
      want_json = true;
      json_path = arg.substr(7);
    } else if (arg.rfind("--sarif=", 0) == 0) {
      sarif_path = arg.substr(8);
    } else if (arg == "--quiet") {
      quiet = true;
    } else if (arg.rfind("--", 0) == 0) {
      std::cerr << "sciolint: unknown option " << arg << "\n";
      return 2;
    } else {
      roots.push_back(arg);
    }
  }
  if (roots.empty()) {
    std::cerr << "usage: sciolint [--baseline=FILE] [--write-baseline=FILE] "
                 "[--json[=FILE]] [--sarif=FILE] [--quiet] <path>...\n";
    return 2;
  }

  std::string error;
  const std::vector<std::string> files = CollectFiles(roots, &error);
  if (!error.empty()) {
    std::cerr << "sciolint: " << error << "\n";
    return 2;
  }

  Analysis analysis;
  for (const std::string& path : files) {
    std::ifstream in(path, std::ios::binary);
    if (!in) {
      std::cerr << "sciolint: cannot read " << path << "\n";
      return 2;
    }
    std::ostringstream content;
    content << in.rdbuf();
    analysis.AddFile(path, content.str());
  }
  if (!baseline_path.empty()) {
    std::ifstream in(baseline_path, std::ios::binary);
    if (!in) {
      std::cerr << "sciolint: cannot read baseline " << baseline_path << "\n";
      return 2;
    }
    std::ostringstream content;
    content << in.rdbuf();
    analysis.LoadBaseline(content.str());
  }

  const std::vector<Finding> findings = analysis.Run();

  if (!write_baseline_path.empty()) {
    std::ofstream out(write_baseline_path, std::ios::binary);
    out << "# sciolint baseline: one fingerprint per line. Regenerate with\n"
           "#   sciolint --write-baseline=" << write_baseline_path << " <paths>\n";
    for (const Finding& f : findings) {
      if (!f.suppressed) {
        out << Fingerprint(f) << "  # " << f.rule << " " << f.path << ":" << f.line
            << "\n";
      }
    }
  }

  int active = 0;
  int suppressed = 0;
  int baselined = 0;
  for (const Finding& f : findings) {
    if (f.suppressed) {
      ++suppressed;
    } else if (f.baselined) {
      ++baselined;
    } else {
      ++active;
      if (!quiet) {
        std::cout << f.path << ":" << f.line << ":" << f.col << ": [" << f.rule
                  << "] " << f.message << "\n    " << f.snippet << "\n";
      }
    }
  }
  if (!quiet) {
    std::cout << "sciolint: " << files.size() << " files, " << active
              << " finding(s), " << suppressed << " suppressed, " << baselined
              << " baselined\n";
  }

  if (want_json) {
    const std::string json = ToJson(findings);
    if (json_path.empty()) {
      std::cout << json;
    } else {
      std::ofstream out(json_path, std::ios::binary);
      out << json;
    }
  }
  if (!sarif_path.empty()) {
    std::ofstream out(sarif_path, std::ios::binary);
    if (!out) {
      std::cerr << "sciolint: cannot write " << sarif_path << "\n";
      return 2;
    }
    out << ToSarif(findings);
  }
  if (!write_baseline_path.empty()) {
    return 0;
  }
  return active == 0 ? 0 : 1;
}

}  // namespace
}  // namespace scio::lint

int main(int argc, char** argv) { return scio::lint::Main(argc, argv); }
