// SARIF 2.1.0 emitter: renders sciolint findings as a static-analysis
// results interchange log so CI can surface them as code-scanning
// annotations. Suppressed (allow-annotated) and baselined findings are
// emitted with a `suppressions` entry rather than dropped, keeping the
// escape hatches auditable in the same report.

#ifndef TOOLS_SCIOLINT_SARIF_H_
#define TOOLS_SCIOLINT_SARIF_H_

#include <string>
#include <vector>

#include "tools/sciolint/analysis.h"

namespace scio::lint {

std::string ToSarif(const std::vector<Finding>& findings);

}  // namespace scio::lint

#endif  // TOOLS_SCIOLINT_SARIF_H_
