#include "tools/sciolint/flow.h"

#include <algorithm>
#include <cstddef>
#include <optional>
#include <sstream>

namespace scio::lint {
namespace {

// --- token helpers (mirrors of the analysis-pass helpers; both passes stay
// independently linkable) --------------------------------------------------

bool IsPunct(const Token& t, const char* text) {
  return t.kind == Tok::kPunct && t.text == text;
}

bool IsIdent(const Token& t, const char* text) {
  return t.kind == Tok::kIdent && t.text == text;
}

std::string Normalize(std::string_view s) {
  std::string out;
  for (char c : s) {
    if (c == '_') {
      continue;
    }
    out.push_back(static_cast<char>(std::tolower(static_cast<unsigned char>(c))));
  }
  return out;
}

// t[i] is an open bracket; return the index just past its match, or
// tokens.size() on imbalance.
size_t SkipBalanced(const std::vector<Token>& t, size_t i, const char* open,
                    const char* close) {
  int depth = 0;
  for (; i < t.size(); ++i) {
    if (IsPunct(t[i], open)) {
      ++depth;
    } else if (IsPunct(t[i], close)) {
      if (--depth == 0) {
        return i + 1;
      }
    }
  }
  return t.size();
}

// t[i] is a close bracket; return the index of its match, or `lo` on
// imbalance. Walks backwards.
size_t SkipBalancedBack(const std::vector<Token>& t, size_t i, const char* open,
                        const char* close, size_t lo) {
  int depth = 0;
  for (size_t k = i + 1; k-- > lo;) {
    if (IsPunct(t[k], close)) {
      ++depth;
    } else if (IsPunct(t[k], open)) {
      if (--depth == 0) {
        return k;
      }
    }
  }
  return lo;
}

bool Contains(const std::string& haystack, const char* needle) {
  return haystack.find(needle) != std::string::npos;
}

// --- function extraction ----------------------------------------------------

const std::set<std::string>& StmtKeywords() {
  static const std::set<std::string> kKw = {
      "if",     "for",     "while",    "switch",   "do",       "else",
      "return", "case",    "default",  "new",      "delete",   "sizeof",
      "alignof", "catch",  "static_assert",        "noexcept", "decltype",
      "operator", "requires", "throw", "template", "using",    "namespace",
      "asm",    "co_await", "co_return", "co_yield", "assert",
  };
  return kKw;
}

struct FuncDef {
  std::string name;
  int name_line = 0;
  int brace_line = 0;
  int end_line = 0;
  size_t body_begin = 0;  // index of '{'
  size_t body_end = 0;    // just past the matching '}'
  bool hot = false;
};

std::vector<FuncDef> ExtractFunctions(const LexedFile& file) {
  const std::vector<Token>& t = file.tokens;
  const size_t n = t.size();
  std::vector<FuncDef> out;

  for (size_t i = 0; i + 1 < n; ++i) {
    if (t[i].kind != Tok::kIdent || !IsPunct(t[i + 1], "(") ||
        StmtKeywords().count(t[i].text) != 0) {
      continue;
    }
    size_t j = SkipBalanced(t, i + 1, "(", ")");
    if (j >= n) {
      continue;
    }
    // Trailing modifiers and a possible trailing return type.
    bool reject = false;
    while (j < n && !reject) {
      if (t[j].kind == Tok::kIdent &&
          (t[j].text == "const" || t[j].text == "noexcept" ||
           t[j].text == "override" || t[j].text == "final")) {
        const bool was_noexcept = t[j].text == "noexcept";
        ++j;
        if (was_noexcept && j < n && IsPunct(t[j], "(")) {
          j = SkipBalanced(t, j, "(", ")");
        }
        continue;
      }
      if (IsPunct(t[j], "->")) {
        ++j;
        while (j < n) {
          if (t[j].kind == Tok::kIdent || IsPunct(t[j], "::") ||
              IsPunct(t[j], "*") || IsPunct(t[j], "&")) {
            ++j;
            continue;
          }
          if (IsPunct(t[j], "<")) {
            j = SkipBalanced(t, j, "<", ">");
            continue;
          }
          break;
        }
        continue;
      }
      break;
    }
    // Constructor member-initializer list: `: member(init), member{init} ... {`
    if (j < n && IsPunct(t[j], ":")) {
      ++j;
      bool ok = true;
      while (j < n) {
        const size_t name_start = j;
        while (j < n && (t[j].kind == Tok::kIdent || IsPunct(t[j], "::"))) {
          ++j;
        }
        if (j < n && IsPunct(t[j], "<")) {
          j = SkipBalanced(t, j, "<", ">");
        }
        if (j >= n || name_start == j) {
          ok = false;
          break;
        }
        if (IsPunct(t[j], "(")) {
          j = SkipBalanced(t, j, "(", ")");
        } else if (IsPunct(t[j], "{")) {
          j = SkipBalanced(t, j, "{", "}");
        } else {
          ok = false;
          break;
        }
        if (j < n && IsPunct(t[j], ",")) {
          ++j;
          continue;
        }
        break;
      }
      if (!ok) {
        continue;
      }
    }
    if (j >= n || !IsPunct(t[j], "{")) {
      continue;
    }
    FuncDef f;
    f.name = t[i].text;
    f.name_line = t[i].line;
    f.brace_line = t[j].line;
    f.body_begin = j;
    f.body_end = SkipBalanced(t, j, "{", "}");
    f.end_line = f.body_end > 0 && f.body_end <= n ? t[f.body_end - 1].line
                                                   : t[n - 1].line;
    out.push_back(std::move(f));
    i = f.body_end > 0 ? f.body_end - 1 : i;  // no nested functions; skip body
  }

  // Attach hotpath annotations: above the signature, on it, or inside the
  // body all mark the function.
  for (FuncDef& f : out) {
    for (const Annotation& ann : file.annotations) {
      if (ann.hotpath && ann.line >= f.name_line - 2 && ann.line <= f.end_line) {
        f.hot = true;
        break;
      }
    }
  }
  return out;
}

// --- statement trees --------------------------------------------------------

enum class StmtKind {
  kSimple,
  kReturn,
  kBreak,
  kContinue,
  kIf,
  kLoop,
  kSwitch,
  kBlock,
};

struct Stmt;

struct CaseGroup {
  // (enum qualifier, enumerator) per `case Enum::kValue:` label; the default
  // label is recorded via is_default/line.
  std::vector<std::pair<std::string, std::string>> labels;
  bool is_default = false;
  int line = 0;          // first label's line
  int default_line = 0;  // line of the `default:` label, if any
  std::vector<Stmt> stmts;
};

struct Stmt {
  StmtKind kind = StmtKind::kSimple;
  size_t head_begin = 0;  // token span scanned for dataflow events:
  size_t head_end = 0;    // condition for if/loop/switch, whole stmt otherwise
  int line = 0;
  bool infinite = false;  // while (true) / for (;;): no natural exit edge
  bool is_do = false;
  std::vector<Stmt> children;     // if: then[,else]; loop: body; block: stmts
  std::vector<CaseGroup> cases;   // switch
};

class StmtParser {
 public:
  explicit StmtParser(const std::vector<Token>& t) : t_(t) {}

  // Parse the statements of a `{ ... }` body. `begin` indexes the '{',
  // `end` is just past the matching '}'.
  std::vector<Stmt> ParseBody(size_t begin, size_t end) {
    size_t i = begin + 1;
    return ParseSeq(i, end > 0 ? end - 1 : end, /*in_switch=*/false);
  }

 private:
  std::vector<Stmt> ParseSeq(size_t& i, size_t end, bool in_switch) {
    std::vector<Stmt> out;
    while (i < end) {
      if (IsPunct(t_[i], "}")) {
        break;  // caller owns the close brace
      }
      if (in_switch &&
          (IsIdent(t_[i], "case") || IsIdent(t_[i], "default"))) {
        break;  // next case group
      }
      const size_t before = i;
      out.push_back(ParseOne(i, end, in_switch));
      if (i == before) {
        ++i;  // defensive: never stall on malformed input
      }
    }
    return out;
  }

  Stmt ParseOne(size_t& i, size_t end, bool in_switch) {
    Stmt s;
    s.line = t_[i].line;

    if (IsPunct(t_[i], ";")) {
      s.kind = StmtKind::kSimple;
      s.head_begin = i;
      s.head_end = ++i;
      return s;
    }
    if (IsPunct(t_[i], "{")) {
      const size_t close = SkipBalanced(t_, i, "{", "}");
      s.kind = StmtKind::kBlock;
      size_t inner = i + 1;
      s.children = ParseSeq(inner, close > 0 ? close - 1 : close, false);
      i = close;
      return s;
    }
    if (t_[i].kind == Tok::kIdent) {
      const std::string& kw = t_[i].text;
      if (kw == "if") {
        s.kind = StmtKind::kIf;
        s.head_begin = i;
        size_t j = i + 1;
        // `if constexpr (...)`
        if (j < end && IsIdent(t_[j], "constexpr")) {
          ++j;
        }
        j = j < end && IsPunct(t_[j], "(") ? SkipBalanced(t_, j, "(", ")") : j;
        s.head_end = j;
        i = j;
        s.children.push_back(ParseOne(i, end, in_switch));
        if (i < end && IsIdent(t_[i], "else")) {
          ++i;
          s.children.push_back(ParseOne(i, end, in_switch));
        }
        return s;
      }
      if (kw == "while") {
        s.kind = StmtKind::kLoop;
        s.head_begin = i;
        const size_t j =
            i + 1 < end && IsPunct(t_[i + 1], "(") ? SkipBalanced(t_, i + 1, "(", ")") : i + 1;
        s.head_end = j;
        // while (true) / while (1): no natural exit edge.
        s.infinite = j == i + 4 && (IsIdent(t_[i + 2], "true") ||
                                    (t_[i + 2].kind == Tok::kNumber &&
                                     t_[i + 2].text == "1"));
        i = j;
        s.children.push_back(ParseOne(i, end, in_switch));
        return s;
      }
      if (kw == "for") {
        s.kind = StmtKind::kLoop;
        s.head_begin = i;
        const size_t j =
            i + 1 < end && IsPunct(t_[i + 1], "(") ? SkipBalanced(t_, i + 1, "(", ")") : i + 1;
        s.head_end = j;
        // for (;;): the two top-level semicolons with an empty condition.
        int depth = 0;
        std::vector<size_t> semis;
        for (size_t k = i + 1; k < j; ++k) {
          if (IsPunct(t_[k], "(")) {
            ++depth;
          } else if (IsPunct(t_[k], ")")) {
            --depth;
          } else if (depth == 1 && IsPunct(t_[k], ";")) {
            semis.push_back(k);
          }
        }
        if (semis.size() == 2) {
          const size_t cond_len = semis[1] - semis[0] - 1;
          s.infinite = cond_len == 0 ||
                       (cond_len == 1 && (IsIdent(t_[semis[0] + 1], "true") ||
                                          (t_[semis[0] + 1].kind == Tok::kNumber &&
                                           t_[semis[0] + 1].text == "1")));
        }
        i = j;
        s.children.push_back(ParseOne(i, end, in_switch));
        return s;
      }
      if (kw == "do") {
        s.kind = StmtKind::kLoop;
        s.is_do = true;
        ++i;
        s.children.push_back(ParseOne(i, end, in_switch));
        if (i < end && IsIdent(t_[i], "while")) {
          s.head_begin = i;
          size_t j = i + 1 < end && IsPunct(t_[i + 1], "(")
                         ? SkipBalanced(t_, i + 1, "(", ")")
                         : i + 1;
          s.head_end = j;
          s.infinite = j == i + 4 && (IsIdent(t_[i + 2], "true") ||
                                      (t_[i + 2].kind == Tok::kNumber &&
                                       t_[i + 2].text == "1"));
          i = j;
          if (i < end && IsPunct(t_[i], ";")) {
            ++i;
          }
        }
        return s;
      }
      if (kw == "switch") {
        s.kind = StmtKind::kSwitch;
        s.head_begin = i;
        size_t j = i + 1 < end && IsPunct(t_[i + 1], "(")
                       ? SkipBalanced(t_, i + 1, "(", ")")
                       : i + 1;
        s.head_end = j;
        if (j < end && IsPunct(t_[j], "{")) {
          const size_t close = SkipBalanced(t_, j, "{", "}");
          size_t k = j + 1;
          const size_t inner_end = close > 0 ? close - 1 : close;
          while (k < inner_end) {
            if (!IsIdent(t_[k], "case") && !IsIdent(t_[k], "default")) {
              ++k;  // stray tokens before the first label
              continue;
            }
            CaseGroup group;
            group.line = t_[k].line;
            // Consecutive labels share one group.
            while (k < inner_end &&
                   (IsIdent(t_[k], "case") || IsIdent(t_[k], "default"))) {
              if (IsIdent(t_[k], "default")) {
                group.is_default = true;
                group.default_line = t_[k].line;
                ++k;
              } else {
                ++k;
                // `case Enum::kValue:` — remember the qualified pair.
                if (k + 2 < inner_end && t_[k].kind == Tok::kIdent &&
                    IsPunct(t_[k + 1], "::") && t_[k + 2].kind == Tok::kIdent) {
                  group.labels.emplace_back(t_[k].text, t_[k + 2].text);
                }
                while (k < inner_end && !IsPunct(t_[k], ":")) {
                  ++k;
                }
              }
              if (k < inner_end && IsPunct(t_[k], ":")) {
                ++k;
              }
            }
            group.stmts = ParseSeq(k, inner_end, /*in_switch=*/true);
            s.cases.push_back(std::move(group));
          }
          i = close;
        } else {
          i = j;
        }
        return s;
      }
      if (kw == "return") {
        s.kind = StmtKind::kReturn;
        s.head_begin = i;
        s.head_end = ConsumeToSemi(i, end);
        i = s.head_end;
        return s;
      }
      if (kw == "break" || kw == "continue") {
        s.kind = kw == "break" ? StmtKind::kBreak : StmtKind::kContinue;
        s.head_begin = i;
        ++i;
        if (i < end && IsPunct(t_[i], ";")) {
          ++i;
        }
        s.head_end = i;
        return s;
      }
      if (kw == "try") {
        ++i;
        return ParseOne(i, end, in_switch);  // exceptional edges not modelled
      }
      if (kw == "catch") {
        ++i;
        if (i < end && IsPunct(t_[i], "(")) {
          i = SkipBalanced(t_, i, "(", ")");
        }
        return ParseOne(i, end, in_switch);
      }
    }
    // Simple statement (declarations, expressions, calls — lambda bodies and
    // brace initializers are consumed balanced and scanned linearly).
    s.kind = StmtKind::kSimple;
    s.head_begin = i;
    s.head_end = ConsumeToSemi(i, end);
    i = s.head_end;
    return s;
  }

  // Consume from `i` to just past the terminating top-level ';', tracking
  // (), [], {} nesting. Stops before a top-level '}' (body end).
  size_t ConsumeToSemi(size_t i, size_t end) {
    int paren = 0, bracket = 0, brace = 0;
    for (; i < end; ++i) {
      const Token& tok = t_[i];
      if (tok.kind != Tok::kPunct) {
        continue;
      }
      if (tok.text == "(") {
        ++paren;
      } else if (tok.text == ")") {
        --paren;
      } else if (tok.text == "[") {
        ++bracket;
      } else if (tok.text == "]") {
        --bracket;
      } else if (tok.text == "{") {
        ++brace;
      } else if (tok.text == "}") {
        if (brace == 0) {
          return i;  // unterminated statement at body end
        }
        --brace;
      } else if (tok.text == ";" && paren == 0 && bracket == 0 && brace == 0) {
        return i + 1;
      }
    }
    return end;
  }

  const std::vector<Token>& t_;
};

// --- control-flow graph -----------------------------------------------------

struct CfgNode {
  const Stmt* stmt = nullptr;  // null for entry/exit/join markers
  size_t begin = 0, end = 0;   // token span scanned for events
  int line = 0;
  bool is_return = false;
  std::vector<int> succ;
};

struct Cfg {
  std::vector<CfgNode> nodes;
  int entry = 0;
  int exit = 1;
};

class CfgBuilder {
 public:
  Cfg Build(const std::vector<Stmt>& body, int end_line) {
    cfg_.nodes.clear();
    New(nullptr, 0);  // entry
    New(nullptr, 0);  // exit
    std::vector<int> open = LowerSeq(body, {cfg_.entry});
    if (!open.empty()) {
      // Falling off the end of the body is an exit path too (void returns):
      // model it as an implicit return at the closing brace.
      const int fin = New(nullptr, end_line);
      cfg_.nodes[fin].is_return = true;
      Connect(open, fin);
      Edge(fin, cfg_.exit);
    }
    return std::move(cfg_);
  }

 private:
  int New(const Stmt* s, int line) {
    CfgNode n;
    n.stmt = s;
    n.line = s != nullptr ? s->line : line;
    if (s != nullptr) {
      n.begin = s->head_begin;
      n.end = s->head_end;
    }
    cfg_.nodes.push_back(std::move(n));
    return static_cast<int>(cfg_.nodes.size()) - 1;
  }
  void Edge(int a, int b) { cfg_.nodes[static_cast<size_t>(a)].succ.push_back(b); }
  void Connect(const std::vector<int>& from, int to) {
    for (int f : from) {
      Edge(f, to);
    }
  }

  std::vector<int> LowerSeq(const std::vector<Stmt>& ss, std::vector<int> preds) {
    for (const Stmt& s : ss) {
      preds = LowerOne(s, std::move(preds));
    }
    return preds;
  }

  std::vector<int> LowerOne(const Stmt& s, std::vector<int> preds) {
    switch (s.kind) {
      case StmtKind::kSimple: {
        const int n = New(&s, 0);
        Connect(preds, n);
        return {n};
      }
      case StmtKind::kReturn: {
        const int n = New(&s, 0);
        cfg_.nodes[static_cast<size_t>(n)].is_return = true;
        Connect(preds, n);
        Edge(n, cfg_.exit);
        return {};
      }
      case StmtKind::kBreak: {
        const int n = New(&s, 0);
        Connect(preds, n);
        Edge(n, brk_ >= 0 ? brk_ : cfg_.exit);
        return {};
      }
      case StmtKind::kContinue: {
        const int n = New(&s, 0);
        Connect(preds, n);
        Edge(n, cont_ >= 0 ? cont_ : cfg_.exit);
        return {};
      }
      case StmtKind::kBlock:
        return LowerSeq(s.children, std::move(preds));
      case StmtKind::kIf: {
        const int c = New(&s, 0);
        Connect(preds, c);
        std::vector<int> out =
            s.children.empty() ? std::vector<int>{} : LowerOne(s.children[0], {c});
        if (s.children.size() > 1) {
          std::vector<int> other = LowerOne(s.children[1], {c});
          out.insert(out.end(), other.begin(), other.end());
        } else {
          out.push_back(c);  // condition-false path
        }
        return out;
      }
      case StmtKind::kLoop: {
        const int c = New(&s, 0);
        const int ex = New(nullptr, s.line);
        const int saved_brk = brk_;
        const int saved_cont = cont_;
        brk_ = ex;
        cont_ = c;
        if (s.is_do) {
          const int body_entry = New(nullptr, s.line);
          Connect(preds, body_entry);
          std::vector<int> body_out =
              s.children.empty() ? std::vector<int>{body_entry}
                                 : LowerOne(s.children[0], {body_entry});
          Connect(body_out, c);
          Edge(c, body_entry);  // back edge
        } else {
          Connect(preds, c);
          std::vector<int> body_out =
              s.children.empty() ? std::vector<int>{c} : LowerOne(s.children[0], {c});
          Connect(body_out, c);  // back edge
        }
        brk_ = saved_brk;
        cont_ = saved_cont;
        if (!s.infinite) {
          Edge(c, ex);
        }
        return {ex};
      }
      case StmtKind::kSwitch: {
        const int c = New(&s, 0);
        Connect(preds, c);
        const int ex = New(nullptr, s.line);
        const int saved_brk = brk_;
        brk_ = ex;
        bool has_default = false;
        std::vector<int> fall;  // goto-free fallthrough from the previous group
        for (const CaseGroup& g : s.cases) {
          has_default = has_default || g.is_default;
          std::vector<int> entry = fall;
          entry.push_back(c);
          fall = LowerSeq(g.stmts, std::move(entry));
        }
        Connect(fall, ex);
        if (!has_default) {
          Edge(c, ex);  // unmatched value skips the switch
        }
        brk_ = saved_brk;
        return {ex};
      }
    }
    return preds;
  }

  Cfg cfg_;
  int brk_ = -1;
  int cont_ = -1;
};

std::vector<std::vector<int>> Preds(const Cfg& cfg) {
  std::vector<std::vector<int>> preds(cfg.nodes.size());
  for (size_t i = 0; i < cfg.nodes.size(); ++i) {
    for (int s : cfg.nodes[i].succ) {
      preds[static_cast<size_t>(s)].push_back(static_cast<int>(i));
    }
  }
  return preds;
}

// --- event extraction helpers -----------------------------------------------

// For a member call whose method name sits at token index m (t[m-1] is '.' or
// '->'), collect the receiver-chain identifiers, nearest first:
// `proc_->fds().Close` yields {fds, proc_}; `waiter_pool_[i]->Detach` yields
// {waiter_pool_}.
std::vector<std::string> ReceiverChain(const std::vector<Token>& t, size_t m,
                                       size_t lo) {
  std::vector<std::string> chain;
  if (m == 0 || m <= lo) {
    return chain;
  }
  size_t k = m - 1;
  while (k > lo && (IsPunct(t[k], ".") || IsPunct(t[k], "->"))) {
    --k;
    if (IsPunct(t[k], ")")) {
      k = SkipBalancedBack(t, k, "(", ")", lo);
      if (k == lo) {
        break;
      }
      --k;
    }
    if (IsPunct(t[k], "]")) {
      k = SkipBalancedBack(t, k, "[", "]", lo);
      if (k == lo) {
        break;
      }
      --k;
    }
    if (t[k].kind != Tok::kIdent) {
      break;
    }
    chain.push_back(t[k].text);
    if (k == lo) {
      break;
    }
    --k;
  }
  return chain;
}

bool ChainHas(const std::vector<std::string>& chain, const char* needle) {
  for (const std::string& link : chain) {
    if (Contains(Normalize(link), needle)) {
      return true;
    }
  }
  return false;
}

// The base identifier of the first argument of a call: `p` indexes the '('.
// Skips &, *, std::move wrappers and C++ casts, so `&w`, `waiter_.get()`,
// `std::move(fd)` and `static_cast<size_t>(fd)` all yield the variable.
std::string ArgBaseIdent(const std::vector<Token>& t, size_t p) {
  const size_t close = SkipBalanced(t, p, "(", ")");
  size_t k = p + 1;
  while (k + 1 < close) {
    if (IsPunct(t[k], "&") || IsPunct(t[k], "*") || IsPunct(t[k], "(")) {
      ++k;
      continue;
    }
    if (t[k].kind == Tok::kIdent) {
      const std::string& id = t[k].text;
      if (id == "std" && k + 1 < close && IsPunct(t[k + 1], "::")) {
        k += 2;
        continue;
      }
      if (id == "move" && k + 1 < close && IsPunct(t[k + 1], "(")) {
        k += 2;
        continue;
      }
      if ((id == "static_cast" || id == "const_cast" ||
           id == "reinterpret_cast" || id == "dynamic_cast") &&
          k + 1 < close && IsPunct(t[k + 1], "<")) {
        k = SkipBalanced(t, k + 1, "<", ">");
        continue;
      }
      return id;
    }
    break;
  }
  return "";
}

// Is t[k] the left-hand side of a plain assignment `x = ...`? Compound and
// comparison operators (==, +=, <=, !=) never match: the lexer splits them
// into single-char puncts, so the token before '=' betrays them.
bool IsAssignedAt(const std::vector<Token>& t, size_t k, size_t hi) {
  if (t[k].kind != Tok::kIdent || k + 1 >= hi || !IsPunct(t[k + 1], "=")) {
    return false;
  }
  if (k + 2 < hi && IsPunct(t[k + 2], "=")) {
    return false;  // ==
  }
  return true;
}

struct Reporter {
  const LexedFile* file;
  std::vector<FlowFinding>* out;
  void Add(const std::string& rule, int line, int col, std::string message) const {
    out->push_back({rule, line, col, std::move(message)});
  }
};

// --- F1: use-after-close ----------------------------------------------------

// Syscall wrappers whose argument lists constitute a *use* of an fd.
const std::set<std::string>& FdUseMethods() {
  static const std::set<std::string> kUse = {
      "Read",    "Write",  "Accept",       "Poll",   "Ctl",
      "Wait",    "Kevent", "DevPollWrite", "ArmAsync", "SetSig",
      "Sendfile",
  };
  return kUse;
}

void CheckF1(const LexedFile& file, const Cfg& cfg, const Reporter& report) {
  const std::vector<Token>& t = file.tokens;
  // State: key -> line of the close/release. Keys: "fd|var" for descriptors,
  // "slab|recv|var" for slab indices. May-analysis: closed on any path in.
  using State = std::map<std::string, int>;

  const auto transfer = [&t](const CfgNode& node, State state,
                             const Reporter* rep) {
    for (size_t k = node.begin; k < node.end; ++k) {
      if (t[k].kind != Tok::kIdent) {
        continue;
      }
      // Reassignment revives the local.
      if (IsAssignedAt(t, k, node.end)) {
        for (auto it = state.begin(); it != state.end();) {
          const std::string& key = it->first;
          const size_t bar = key.rfind('|');
          if (key.substr(bar + 1) == t[k].text) {
            it = state.erase(it);
          } else {
            ++it;
          }
        }
        continue;
      }
      if (k + 1 >= node.end || !IsPunct(t[k + 1], "(") || k == node.begin ||
          (!IsPunct(t[k - 1], ".") && !IsPunct(t[k - 1], "->"))) {
        continue;
      }
      const std::string& name = t[k].text;
      const std::vector<std::string> chain = ReceiverChain(t, k, node.begin);
      const bool sys_recv = ChainHas(chain, "sys") || ChainHas(chain, "fds") ||
                            ChainHas(chain, "kernel");
      const std::string recv = chain.empty() ? "" : chain.front();
      if (name == "Close" && sys_recv) {
        const std::string var = ArgBaseIdent(t, k + 1);
        if (!var.empty()) {
          const std::string key = "fd|" + var;
          if (const auto it = state.find(key); it != state.end()) {
            if (rep != nullptr) {
              rep->Add("F1", t[k].line, t[k].col,
                       "fd '" + var + "' closed again after the Close on line " +
                           std::to_string(it->second) + " (double close)");
            }
          }
          state[key] = t[k].line;
        }
        continue;
      }
      if (name == "ReleaseAt" || name == "EmplaceAt") {
        const std::string var = ArgBaseIdent(t, k + 1);
        if (!var.empty() && !recv.empty()) {
          const std::string key = "slab|" + recv + "|" + var;
          if (name == "ReleaseAt") {
            state[key] = t[k].line;
          } else {
            state.erase(key);
          }
        }
        continue;
      }
      if (name == "At" && !recv.empty()) {
        const std::string var = ArgBaseIdent(t, k + 1);
        const std::string key = "slab|" + recv + "|" + var;
        if (const auto it = state.find(key); !var.empty() && it != state.end()) {
          if (rep != nullptr) {
            rep->Add("F1", t[k].line, t[k].col,
                     "slab index '" + var + "' passed to " + recv +
                         ".At() after the ReleaseAt on line " +
                         std::to_string(it->second) + " (use-after-release)");
          }
        }
        continue;
      }
      if (sys_recv && FdUseMethods().count(name) != 0) {
        const size_t close = SkipBalanced(t, k + 1, "(", ")");
        for (size_t a = k + 2; a + 1 < close; ++a) {
          if (t[a].kind != Tok::kIdent) {
            continue;
          }
          const auto it = state.find("fd|" + t[a].text);
          if (it != state.end() && rep != nullptr) {
            rep->Add("F1", t[a].line, t[a].col,
                     "fd '" + t[a].text + "' used in " + name +
                         "() after the Close on line " +
                         std::to_string(it->second) + " (use-after-close)");
          }
        }
        continue;
      }
    }
    return state;
  };

  // Fixpoint: union merge (closed on any incoming path).
  const std::vector<std::vector<int>> preds = Preds(cfg);
  std::vector<std::optional<State>> in(cfg.nodes.size());
  in[static_cast<size_t>(cfg.entry)] = State{};
  bool changed = true;
  int guard = 0;
  while (changed && guard++ < 64) {
    changed = false;
    for (size_t i = 0; i < cfg.nodes.size(); ++i) {
      State merged;
      bool any = false;
      for (int p : preds[i]) {
        const auto& pin = in[static_cast<size_t>(p)];
        if (!pin.has_value()) {
          continue;
        }
        State pout = transfer(cfg.nodes[static_cast<size_t>(p)], *pin, nullptr);
        for (const auto& [key, line] : pout) {
          const auto it = merged.find(key);
          if (it == merged.end() || line < it->second) {
            merged[key] = line;
          }
        }
        any = true;
      }
      if (static_cast<int>(i) == cfg.entry) {
        continue;
      }
      if (!any) {
        continue;  // unreachable so far
      }
      if (!in[i].has_value() || *in[i] != merged) {
        in[i] = std::move(merged);
        changed = true;
      }
    }
  }
  // Reporting pass: re-run transfers with the reporter attached.
  for (size_t i = 0; i < cfg.nodes.size(); ++i) {
    if (in[i].has_value()) {
      transfer(cfg.nodes[i], *in[i], &report);
    }
  }
}

// --- W1: waiter pairing -----------------------------------------------------

void CheckW1(const LexedFile& file, const Cfg& cfg, const Reporter& report) {
  const std::vector<Token>& t = file.tokens;
  // State per waiter token: R (registered, value = line) or C (cleared,
  // value = -1). Merge is optimistic for removal: a clear on any incoming
  // path pairs the registration (pooled detach loops stay clean), while a
  // registration with no clear anywhere on the way to an exit is flagged.
  using State = std::map<std::string, int>;
  constexpr int kCleared = -1;

  const auto transfer = [&t](const CfgNode& node, State state) {
    for (size_t k = node.begin; k < node.end; ++k) {
      if (t[k].kind != Tok::kIdent || k + 1 >= node.end ||
          !IsPunct(t[k + 1], "(") || k == node.begin ||
          (!IsPunct(t[k - 1], ".") && !IsPunct(t[k - 1], "->"))) {
        continue;
      }
      const std::string& name = t[k].text;
      if (name != "Add" && name != "AddExclusive" && name != "Remove" &&
          name != "Detach") {
        continue;
      }
      const std::vector<std::string> chain = ReceiverChain(t, k, node.begin);
      if (name == "Detach") {
        if (!chain.empty()) {
          state[chain.front()] = kCleared;
        }
        continue;
      }
      if (!ChainHas(chain, "wait")) {
        continue;  // Add/Remove on something that is not a wait queue
      }
      const std::string var = ArgBaseIdent(t, k + 1);
      if (var.empty()) {
        continue;
      }
      state[var] = name == "Remove" ? kCleared : t[k].line;
    }
    return state;
  };

  const std::vector<std::vector<int>> preds = Preds(cfg);
  std::vector<std::optional<State>> in(cfg.nodes.size());
  in[static_cast<size_t>(cfg.entry)] = State{};
  bool changed = true;
  int guard = 0;
  while (changed && guard++ < 64) {
    changed = false;
    for (size_t i = 0; i < cfg.nodes.size(); ++i) {
      if (static_cast<int>(i) == cfg.entry) {
        continue;
      }
      State merged;
      bool any = false;
      for (int p : preds[i]) {
        const auto& pin = in[static_cast<size_t>(p)];
        if (!pin.has_value()) {
          continue;
        }
        State pout = transfer(cfg.nodes[static_cast<size_t>(p)], *pin);
        for (const auto& [var, line] : pout) {
          const auto it = merged.find(var);
          if (it == merged.end()) {
            merged[var] = line;
          } else if (line == kCleared || it->second == kCleared) {
            it->second = kCleared;  // cleared on any path wins
          }
        }
        any = true;
      }
      if (!any) {
        continue;
      }
      if (!in[i].has_value() || *in[i] != merged) {
        in[i] = std::move(merged);
        changed = true;
      }
    }
  }
  for (size_t i = 0; i < cfg.nodes.size(); ++i) {
    const CfgNode& node = cfg.nodes[i];
    if (!node.is_return || !in[i].has_value()) {
      continue;
    }
    const State at_exit = transfer(node, *in[i]);
    for (const auto& [var, line] : at_exit) {
      if (line != kCleared) {
        report.Add("W1", node.line, 1,
                   "waiter '" + var + "' registered on line " +
                       std::to_string(line) +
                       " may still be enqueued at this exit — every "
                       "registration needs a Detach/Remove on every path");
      }
    }
  }
}

// --- E2: errno discipline ---------------------------------------------------

void CheckE2(const LexedFile& file, const Cfg& cfg, const Reporter& report) {
  const std::vector<Token>& t = file.tokens;
  // State: has an `errno = ...` assignment dominated this point?
  // Must-analysis: intersection at merges; `errno ==` comparisons and reads
  // never count.
  const auto transfer = [&t](const CfgNode& node, bool assigned) {
    for (size_t k = node.begin; k < node.end; ++k) {
      if (IsIdent(t[k], "errno") && IsAssignedAt(t, k, node.end)) {
        assigned = true;
      }
    }
    return assigned;
  };

  const std::vector<std::vector<int>> preds = Preds(cfg);
  // tri-state: unset / false / true
  std::vector<std::optional<bool>> in(cfg.nodes.size());
  in[static_cast<size_t>(cfg.entry)] = false;
  bool changed = true;
  int guard = 0;
  while (changed && guard++ < 64) {
    changed = false;
    for (size_t i = 0; i < cfg.nodes.size(); ++i) {
      if (static_cast<int>(i) == cfg.entry) {
        continue;
      }
      bool merged = true;
      bool any = false;
      for (int p : preds[i]) {
        const auto& pin = in[static_cast<size_t>(p)];
        if (!pin.has_value()) {
          continue;
        }
        merged = merged && transfer(cfg.nodes[static_cast<size_t>(p)], *pin);
        any = true;
      }
      if (!any) {
        continue;
      }
      if (!in[i].has_value() || *in[i] != merged) {
        in[i] = merged;
        changed = true;
      }
    }
  }
  for (size_t i = 0; i < cfg.nodes.size(); ++i) {
    const CfgNode& node = cfg.nodes[i];
    if (!node.is_return || node.stmt == nullptr || !in[i].has_value() ||
        *in[i]) {
      continue;
    }
    // Error exit shape: `return -N;` exactly. Named kErr* codes and
    // errno-reading expressions are disciplined by construction.
    size_t b = node.begin + 1;
    size_t e = node.end;
    if (e > b && IsPunct(t[e - 1], ";")) {
      --e;
    }
    if (e - b == 2 && IsPunct(t[b], "-") && t[b + 1].kind == Tok::kNumber) {
      report.Add("E2", node.line, t[node.begin].col,
                 "error exit returns -" + t[b + 1].text +
                     " with no errno assignment on this path — assign a "
                     "sys_errno.h code or return the named kErr* constant");
    }
  }
}

// --- H1: hot-path allocation ban --------------------------------------------

// (file basename, function name) pairs for the harvest/wait loops of the six
// event cores: poll, /dev/poll, RT signals, epoll, kqueue, and the hybrid
// policy. These are hot even without a `// sciolint: hotpath` annotation.
bool IsBuiltinHot(const std::string& base, const std::string& func) {
  static const std::set<std::pair<std::string, std::string>> kHot = {
      {"poll_syscall.cc", "Poll"},      {"poll_syscall.cc", "ScanOnce"},
      {"devpoll.cc", "PollInternal"},   {"devpoll.cc", "ScanOnce"},
      {"rt_io.cc", "SigWaitInfo"},      {"rt_io.cc", "SigTimedWait4"},
      {"rt_io.cc", "WaitForSignal"},    {"epoll_core.cc", "Wait"},
      {"epoll_core.cc", "HarvestOnce"}, {"kqueue_core.cc", "Kevent"},
      {"kqueue_core.cc", "HarvestOnce"}, {"kqueue_core.cc", "HarvestFilter"},
      {"hybrid_policy.h", "Update"},
  };
  return kHot.count({base, func}) != 0;
}

void CheckH1(const LexedFile& file, const FuncDef& fn, const Reporter& report) {
  const std::vector<Token>& t = file.tokens;
  for (size_t k = fn.body_begin; k < fn.body_end; ++k) {
    if (t[k].kind != Tok::kIdent) {
      continue;
    }
    std::string what;
    if (t[k].text == "new" && !(k > 0 && IsPunct(t[k - 1], "."))) {
      what = "new";
    } else if (t[k].text == "make_unique" || t[k].text == "make_shared") {
      what = t[k].text;
    } else if (t[k].text == "function" && k >= 2 && IsIdent(t[k - 2], "std") &&
               IsPunct(t[k - 1], "::")) {
      what = "std::function";
    }
    if (!what.empty()) {
      report.Add("H1", t[k].line, t[k].col,
                 "hot path '" + fn.name + "' reaches '" + what +
                     "' — harvest/wait loops must be allocation-free "
                     "(annotate allow(H1) only for bounded one-time pool "
                     "growth)");
    }
  }
}

// --- X1: exhaustive switch over the X-macro enums ----------------------------

std::string JoinNames(const std::vector<std::string>& names, size_t limit) {
  std::string out;
  for (size_t i = 0; i < names.size() && i < limit; ++i) {
    out += (i == 0 ? "" : ", ") + names[i];
  }
  if (names.size() > limit) {
    out += ", ...";
  }
  return out;
}

void CheckX1(const Stmt& s, const FlowContext& ctx, const Reporter& report) {
  if (s.kind == StmtKind::kSwitch) {
    // Which taxonomy enum do the labels qualify?
    std::string enum_name;
    std::set<std::string> covered;
    bool has_default = false;
    int default_line = 0;
    for (const CaseGroup& g : s.cases) {
      if (g.is_default) {
        has_default = true;
        default_line = g.default_line;
      }
      for (const auto& [qual, value] : g.labels) {
        if (ctx.taxonomy_enums.count(qual) != 0) {
          enum_name = qual;
          covered.insert(value);
        }
      }
    }
    // A label that is not a declared enumerator means the cases are
    // macro-generated (`case MemSys::name:` inside an X(name, str) body) —
    // exhaustive by construction, nothing to check.
    bool macro_generated = false;
    if (!enum_name.empty()) {
      for (const std::string& value : covered) {
        if (ctx.taxonomy_enums.at(enum_name).count(value) == 0) {
          macro_generated = true;
          break;
        }
      }
    }
    if (!enum_name.empty() && !macro_generated) {
      std::vector<std::string> missing;
      for (const std::string& value : ctx.taxonomy_enums.at(enum_name)) {
        if (covered.count(value) == 0) {
          missing.push_back(value);
        }
      }
      if (!missing.empty()) {
        report.Add(
            "X1", has_default ? default_line : s.line, 1,
            "switch over " + enum_name + " misses " +
                std::to_string(missing.size()) + " enumerator(s): " +
                JoinNames(missing, 4) +
                " — cover every X-macro entry, or annotate the default with "
                "allow(X1)");
      }
    }
  }
  for (const Stmt& child : s.children) {
    CheckX1(child, ctx, report);
  }
  for (const CaseGroup& g : s.cases) {
    for (const Stmt& child : g.stmts) {
      CheckX1(child, ctx, report);
    }
  }
}

std::string Basename(const std::string& path) {
  const size_t slash = path.find_last_of('/');
  return slash == std::string::npos ? path : path.substr(slash + 1);
}

bool PathHas(const std::string& path, const char* dir) {
  return path.find(dir) != std::string::npos;
}

}  // namespace

std::vector<FlowFinding> CheckFlowRules(const LexedFile& file,
                                        const FlowContext& ctx) {
  std::vector<FlowFinding> findings;
  const Reporter report{&file, &findings};
  const std::string base = Basename(file.path);
  const bool in_src =
      file.path.rfind("src/", 0) == 0 || PathHas(file.path, "/src/");
  const bool w1_scope = PathHas(file.path, "src/kernel") ||
                        PathHas(file.path, "src/core") ||
                        PathHas(file.path, "src/smp");
  const bool e2_scope =
      PathHas(file.path, "src/kernel") || PathHas(file.path, "src/posix");

  StmtParser parser(file.tokens);
  for (const FuncDef& fn : ExtractFunctions(file)) {
    if (fn.hot || IsBuiltinHot(base, fn.name)) {
      CheckH1(file, fn, report);
    }
    const std::vector<Stmt> body = parser.ParseBody(fn.body_begin, fn.body_end);
    // X1 applies everywhere a taxonomy switch can appear.
    for (const Stmt& s : body) {
      CheckX1(s, ctx, report);
    }
    if (!in_src && !w1_scope && !e2_scope) {
      continue;
    }
    CfgBuilder builder;
    const Cfg cfg = builder.Build(body, fn.end_line);
    if (in_src) {
      CheckF1(file, cfg, report);
    }
    if (w1_scope) {
      CheckW1(file, cfg, report);
    }
    if (e2_scope) {
      CheckE2(file, cfg, report);
    }
  }
  return findings;
}

}  // namespace scio::lint
