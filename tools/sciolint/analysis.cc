#include "tools/sciolint/analysis.h"

#include <algorithm>
#include <array>
#include <cstdint>
#include <sstream>

namespace scio::lint {
namespace {

const std::set<std::string>& KnownRules() {
  static const std::set<std::string> kRules = {"D1", "D2", "E1", "C1", "M1",
                                               "S1", "P1", "F1", "W1", "H1",
                                               "E2", "X1", "ANN"};
  return kRules;
}

// Identifiers that read wall clocks, environment or unseeded entropy. Any of
// these inside src/ makes a seeded run irreproducible.
const std::set<std::string>& BannedSources() {
  static const std::set<std::string> kBanned = {
      "rand",          "srand",         "drand48",       "lrand48",
      "mrand48",       "random_device", "system_clock",  "steady_clock",
      "high_resolution_clock",          "getenv",        "secure_getenv",
      "gettimeofday",  "clock_gettime", "timespec_get",  "localtime",
      "gmtime",
  };
  return kBanned;
}

std::string Basename(const std::string& path) {
  const size_t slash = path.find_last_of('/');
  return slash == std::string::npos ? path : path.substr(slash + 1);
}

bool InSrc(const std::string& path) {
  return path.rfind("src/", 0) == 0 || path.find("/src/") != std::string::npos;
}

// Layers where per-connection state lives; fd-keyed node containers here are
// a scalability bug (P1), not a style choice.
bool InP1Scope(const std::string& path) {
  static const char* const kDirs[] = {"src/kernel", "src/servers", "src/posix",
                                      "src/core", "src/transport"};
  for (const char* dir : kDirs) {
    if (path.find(dir) != std::string::npos) {
      return true;
    }
  }
  return false;
}

std::string Trim(const std::string& s) {
  size_t b = s.find_first_not_of(" \t");
  if (b == std::string::npos) {
    return "";
  }
  size_t e = s.find_last_not_of(" \t\r");
  return s.substr(b, e - b + 1);
}

uint64_t Fnv1a(std::string_view s) {
  uint64_t h = 1469598103934665603ull;
  for (char c : s) {
    h ^= static_cast<unsigned char>(c);
    h *= 1099511628211ull;
  }
  return h;
}

// Lowercase and drop underscores: "PollSyscall" and "poll_syscall_" both
// normalize to comparable forms.
std::string Normalize(std::string_view s) {
  std::string out;
  for (char c : s) {
    if (c == '_') {
      continue;
    }
    out.push_back(static_cast<char>(std::tolower(static_cast<unsigned char>(c))));
  }
  return out;
}

// Does receiver variable `recv` plausibly hold an instance of class `cls`?
// Matches `sys_`→Sys, `kernel()`→SimKernel, `rt_`→RtIo, `poll_`→PollSyscall.
bool ReceiverMatchesClass(const std::string& recv, const std::string& cls) {
  const std::string r = Normalize(recv);
  const std::string c = Normalize(cls);
  if (r.size() < 2 || c.empty()) {
    return false;
  }
  if (r == c) {
    return true;
  }
  if (c.size() > r.size() &&
      (c.compare(0, r.size(), r) == 0 || c.compare(c.size() - r.size(), r.size(), r) == 0)) {
    return true;
  }
  return false;
}

// tokens[i] is an open bracket; return the index just past its match, or
// tokens.size() on imbalance.
size_t SkipBalanced(const std::vector<Token>& t, size_t i, const char* open,
                    const char* close) {
  int depth = 0;
  for (; i < t.size(); ++i) {
    if (t[i].kind == Tok::kPunct && t[i].text == open) {
      ++depth;
    } else if (t[i].kind == Tok::kPunct && t[i].text == close) {
      if (--depth == 0) {
        return i + 1;
      }
    }
  }
  return t.size();
}

bool IsPunct(const Token& t, const char* text) {
  return t.kind == Tok::kPunct && t.text == text;
}

bool IsIdent(const Token& t, const char* text) {
  return t.kind == Tok::kIdent && t.text == text;
}

}  // namespace

std::string Fingerprint(const Finding& f) {
  std::ostringstream key;
  key << f.rule << '|' << Basename(f.path) << '|' << Trim(f.snippet);
  std::ostringstream hex;
  hex << std::hex << Fnv1a(key.str());
  return hex.str();
}

void Analysis::AddFile(const std::string& path, std::string_view source) {
  files_.push_back(Lex(path, source));
}

void Analysis::LoadBaseline(std::string_view text) {
  size_t start = 0;
  while (start <= text.size()) {
    size_t end = text.find('\n', start);
    std::string_view line =
        text.substr(start, (end == std::string_view::npos ? text.size() : end) - start);
    std::string trimmed = Trim(std::string(line));
    if (!trimmed.empty() && trimmed[0] != '#') {
      baseline_.insert(trimmed);
    }
    if (end == std::string_view::npos) {
      break;
    }
    start = end + 1;
  }
}

void Analysis::AddFinding(const LexedFile& file, const std::string& rule, int line,
                          int col, std::string message, std::vector<Finding>* out) {
  Finding f;
  f.rule = rule;
  f.path = file.path;
  f.line = line;
  f.col = col;
  f.message = std::move(message);
  if (line >= 1 && static_cast<size_t>(line) <= file.lines.size()) {
    f.snippet = Trim(file.lines[static_cast<size_t>(line) - 1]);
  }
  for (const Annotation& ann : file.annotations) {
    if (ann.malformed) {
      continue;
    }
    if (ann.line != line && ann.line != line - 1) {
      continue;
    }
    if (std::find(ann.rules.begin(), ann.rules.end(), rule) != ann.rules.end()) {
      f.suppressed = true;
      break;
    }
  }
  if (!f.suppressed && baseline_.count(Fingerprint(f)) != 0) {
    f.baselined = true;
  }
  out->push_back(std::move(f));
}

void Analysis::CollectIndex(const LexedFile& file) {
  const std::vector<Token>& t = file.tokens;
  const std::string base = Basename(file.path);

  // Class-context tracking (for [[nodiscard]] method ownership).
  std::vector<std::pair<std::string, int>> class_stack;  // (name, depth at push)
  int brace_depth = 0;
  std::string pending_class;

  for (size_t i = 0; i < t.size(); ++i) {
    const Token& tok = t[i];

    if (tok.kind == Tok::kPunct) {
      if (tok.text == "{") {
        if (!pending_class.empty()) {
          class_stack.emplace_back(pending_class, brace_depth);
          pending_class.clear();
        }
        ++brace_depth;
      } else if (tok.text == "}") {
        --brace_depth;
        if (!class_stack.empty() && class_stack.back().second == brace_depth) {
          class_stack.pop_back();
        }
      } else if (tok.text == ";" || tok.text == "(" || tok.text == ")" ||
                 tok.text == ">") {
        pending_class.clear();
      }
      continue;
    }
    if (tok.kind != Tok::kIdent) {
      continue;
    }

    if ((tok.text == "class" || tok.text == "struct") && i + 1 < t.size() &&
        t[i + 1].kind == Tok::kIdent) {
      pending_class = t[i + 1].text;
      continue;
    }

    // Variables of unordered container type: `unordered_map< ... > name ;/=/{`
    if ((tok.text == "unordered_map" || tok.text == "unordered_set") &&
        i + 1 < t.size() && IsPunct(t[i + 1], "<")) {
      size_t after = SkipBalanced(t, i + 1, "<", ">");
      while (after < t.size() && t[after].kind == Tok::kPunct &&
             (t[after].text == "&" || t[after].text == "*")) {
        ++after;
      }
      if (after < t.size() && t[after].kind == Tok::kIdent &&
          t[after].text != "const" && after + 1 < t.size()) {
        const Token& next = t[after + 1];
        if (next.kind == Tok::kPunct &&
            (next.text == ";" || next.text == "=" || next.text == "{" ||
             next.text == ")" || next.text == ",")) {
          unordered_vars_.insert(t[after].text);
        }
      }
      continue;
    }

    // [[nodiscard]] — record the next identifier that heads an argument list.
    if (tok.text == "nodiscard" && i >= 2 && IsPunct(t[i - 1], "[") &&
        IsPunct(t[i - 2], "[")) {
      for (size_t j = i + 1; j + 1 < t.size(); ++j) {
        if (t[j].kind == Tok::kPunct &&
            (t[j].text == ";" || t[j].text == "{" || t[j].text == "}")) {
          break;
        }
        if (t[j].kind == Tok::kIdent && IsPunct(t[j + 1], "(")) {
          const std::string cls = class_stack.empty() ? "" : class_stack.back().first;
          if (!cls.empty()) {
            nodiscard_methods_[t[j].text].insert(cls);
          }
          break;
        }
      }
      continue;
    }

    // Taxonomy X-macros.
    if (tok.text == "X" && i + 4 < t.size() && IsPunct(t[i + 1], "(") &&
        t[i + 2].kind == Tok::kIdent && IsPunct(t[i + 3], ",")) {
      if (base == "charge_category.h" && t[i + 2].text.rfind('k', 0) == 0 &&
          t[i + 4].kind == Tok::kIdent && i + 5 < t.size() && IsPunct(t[i + 5], ")")) {
        charge_cats_.emplace(t[i + 2].text, std::make_pair(file.path, t[i + 2].line));
      } else if (base == "mem_ledger.h" && t[i + 2].text.rfind('k', 0) == 0 &&
                 t[i + 4].kind == Tok::kIdent && i + 5 < t.size() &&
                 IsPunct(t[i + 5], ")")) {
        mem_sys_.insert(t[i + 2].text);
      } else if (base == "kernel_stats.h" && t[i + 4].kind == Tok::kString &&
                 i + 5 < t.size() && IsPunct(t[i + 5], ")")) {
        std::string row = t[i + 4].text;
        if (row.size() >= 2 && row.front() == '"' && row.back() == '"') {
          row = row.substr(1, row.size() - 2);
        }
        stat_fields_.push_back({t[i + 2].text, row, file.path, t[i + 2].line});
      }
      continue;
    }

    // ChargeCat::k* references inside a charge call's argument list. Only
    // these count toward C1 orphan coverage: a category that is merely
    // compared, looked up in the ledger, or printed in a report row is not
    // charged anywhere, and the orphan check must keep flagging it.
    if ((tok.text == "Charge" || tok.text == "ChargeDebt" ||
         tok.text == "ChargeLocal" || tok.text == "AccountSmp" ||
         tok.text == "Attribute") &&
        i + 1 < t.size() && IsPunct(t[i + 1], "(")) {
      const size_t close = SkipBalanced(t, i + 1, "(", ")");
      for (size_t j = i + 2; j + 2 < close; ++j) {
        if (IsIdent(t[j], "ChargeCat") && IsPunct(t[j + 1], "::") &&
            t[j + 2].kind == Tok::kIdent) {
          charge_cat_refs_.insert(t[j + 2].text);
        }
      }
      continue;
    }
  }
}

void Analysis::CheckFile(const LexedFile& file, std::vector<Finding>* out) {
  const std::vector<Token>& t = file.tokens;
  const bool in_src = InSrc(file.path);

  // ANN: malformed control comments and unknown rule ids.
  for (const Annotation& ann : file.annotations) {
    if (ann.malformed) {
      AddFinding(file, "ANN", ann.line, 1,
                 "malformed sciolint comment (expected `sciolint: allow(<rules>) -- "
                 "<reason>` or `sciolint: hotpath`): " + ann.raw,
                 out);
      continue;
    }
    for (const std::string& rule : ann.rules) {
      if (KnownRules().count(rule) == 0) {
        AddFinding(file, "ANN", ann.line, 1,
                   "sciolint allow() names unknown rule '" + rule + "'", out);
      }
    }
  }

  for (size_t i = 0; i < t.size(); ++i) {
    const Token& tok = t[i];
    if (tok.kind != Tok::kIdent) {
      continue;
    }

    // --- D1: nondeterminism sources (src/ only) --------------------------
    if (in_src && BannedSources().count(tok.text) != 0) {
      const bool member_access = i > 0 && (IsPunct(t[i - 1], ".") || IsPunct(t[i - 1], "->"));
      if (!member_access) {
        AddFinding(file, "D1", tok.line, tok.col,
                   "nondeterminism source '" + tok.text +
                       "' in src/ — seeded runs must not read wall clocks, "
                       "entropy or the environment",
                   out);
      }
      continue;
    }
    // D1: wall-clock time(nullptr/NULL/0).
    if (in_src && tok.text == "time" && i + 2 < t.size() && IsPunct(t[i + 1], "(") &&
        (IsIdent(t[i + 2], "nullptr") || IsIdent(t[i + 2], "NULL") ||
         (t[i + 2].kind == Tok::kNumber && t[i + 2].text == "0"))) {
      AddFinding(file, "D1", tok.line, tok.col,
                 "wall-clock time() call in src/ — use the simulated clock", out);
      continue;
    }

    // --- P1: fd-keyed node maps in per-connection layers ------------------
    // `map<int, ...>` / `unordered_map<int, ...>` in src/{kernel,servers,
    // posix,core} means a node allocation plus pointer chase per descriptor.
    // Per-connection state belongs in paged slabs indexed by fd with
    // intrusive lists for the sweep orders (src/kernel/paged_slab.h). Maps
    // keyed by something that is not an fd take an allow(P1) annotation.
    if ((tok.text == "map" || tok.text == "unordered_map") && InP1Scope(file.path) &&
        i + 3 < t.size() && IsPunct(t[i + 1], "<") && IsIdent(t[i + 2], "int") &&
        IsPunct(t[i + 3], ",")) {
      AddFinding(file, "P1", tok.line, tok.col,
                 "std::" + tok.text +
                     "<int, ...> in a per-connection layer — key per-fd state "
                     "into a paged slab (src/kernel/paged_slab.h) with "
                     "intrusive lists instead of a node-per-entry map; if the "
                     "key is not an fd, annotate with allow(P1)",
                 out);
      continue;
    }

    // --- D2: iteration over unordered containers -------------------------
    if (tok.text == "for" && i + 1 < t.size() && IsPunct(t[i + 1], "(")) {
      const size_t close = SkipBalanced(t, i + 1, "(", ")");
      int depth = 0;
      size_t colon = 0;
      for (size_t j = i + 1; j < close; ++j) {
        if (IsPunct(t[j], "(")) {
          ++depth;
        } else if (IsPunct(t[j], ")")) {
          --depth;
        } else if (depth == 1 && IsPunct(t[j], ":")) {
          colon = j;
          break;
        } else if (depth == 1 && IsPunct(t[j], ";")) {
          break;  // classic for loop, no range clause
        }
      }
      if (colon != 0) {
        const Token* last_ident = nullptr;
        for (size_t j = colon + 1; j + 1 < close; ++j) {
          if (t[j].kind == Tok::kIdent) {
            last_ident = &t[j];
          }
        }
        if (last_ident != nullptr && unordered_vars_.count(last_ident->text) != 0) {
          AddFinding(file, "D2", last_ident->line, last_ident->col,
                     "range-for over unordered container '" + last_ident->text +
                         "' — iteration order is implementation-defined; iterate "
                         "a sorted snapshot or use an ordered container",
                     out);
        }
      }
      continue;
    }
    if ((tok.text == "begin" || tok.text == "cbegin") && i >= 2 && i + 1 < t.size() &&
        IsPunct(t[i + 1], "(") &&
        (IsPunct(t[i - 1], ".") || IsPunct(t[i - 1], "->")) &&
        t[i - 2].kind == Tok::kIdent && unordered_vars_.count(t[i - 2].text) != 0) {
      AddFinding(file, "D2", tok.line, tok.col,
                 "iterator over unordered container '" + t[i - 2].text +
                     "' — iteration order is implementation-defined",
                 out);
      continue;
    }

    // --- C1: Charge()/ChargeDebt()/ChargeLocal() must name a ChargeCat ----
    // Charge/ChargeDebt are kernel methods (member calls); ChargeLocal is the
    // SMP scheduler's plain-call charge helper, so no member access required.
    const bool member_call =
        i >= 1 && (IsPunct(t[i - 1], ".") || IsPunct(t[i - 1], "->"));
    if ((((tok.text == "Charge" || tok.text == "ChargeDebt") && member_call) ||
         tok.text == "ChargeLocal") &&
        i + 1 < t.size() && IsPunct(t[i + 1], "(")) {
      const size_t close = SkipBalanced(t, i + 1, "(", ")");
      bool tagged = false;
      for (size_t j = i + 2; j + 1 < close; ++j) {
        if (IsIdent(t[j], "ChargeCat")) {
          tagged = true;
          break;
        }
      }
      if (!tagged && tok.line >= 1 &&
          static_cast<size_t>(tok.line) <= file.lines.size() &&
          file.lines[static_cast<size_t>(tok.line) - 1].find("ChargeCat") !=
              std::string::npos) {
        tagged = true;  // category threaded through a variable on this line
      }
      if (!tagged) {
        AddFinding(file, "C1", tok.line, tok.col,
                   tok.text + "() call without a ChargeCat — every charged "
                              "nanosecond must name its attribution category",
                   out);
      }
      continue;
    }

    // --- S1: SMP-adjacent code must name its wake semantics ---------------
    // WakeOne (wake_up: all non-exclusive + first exclusive) and WakeAll
    // (wake_up_all: the herd) behave identically until an exclusive waiter
    // exists, so a bare Wake() spelling would hide which semantics a worker
    // path relies on. Process::Wake (single process) is exempt outside the
    // scheduler layers; in src/smp and src/servers every wait-queue wake-up
    // must say which one it means.
    if (tok.text == "Wake" && member_call && i + 1 < t.size() &&
        IsPunct(t[i + 1], "(") &&
        (file.path.find("src/smp") != std::string::npos ||
         file.path.find("src/servers") != std::string::npos)) {
      AddFinding(file, "S1", tok.line, tok.col,
                 "bare Wake() call — name the intended wake semantics "
                 "(WakeOne or WakeAll)",
                 out);
      continue;
    }

    // --- E1: discarded [[nodiscard]] syscall-wrapper returns --------------
    const bool stmt_start =
        i == 0 || IsPunct(t[i - 1], ";") || IsPunct(t[i - 1], "{") ||
        IsPunct(t[i - 1], "}") ||
        (i >= 3 && IsPunct(t[i - 1], ")") && IsIdent(t[i - 2], "void") &&
         IsPunct(t[i - 3], "("));
    if (stmt_start) {
      // Parse a `unit (. unit | -> unit)* ;` chain where unit = ident [(...)].
      size_t j = i;
      std::string prev_unit;
      std::string last_unit;
      bool last_had_args = false;
      int units = 0;
      bool qualified = false;
      while (j < t.size() && t[j].kind == Tok::kIdent) {
        prev_unit = last_unit;
        last_unit = t[j].text;
        last_had_args = false;
        ++units;
        ++j;
        if (j < t.size() && IsPunct(t[j], "(")) {
          j = SkipBalanced(t, j, "(", ")");
          last_had_args = true;
        }
        if (j < t.size() && (IsPunct(t[j], ".") || IsPunct(t[j], "->"))) {
          ++j;
          continue;
        }
        if (j < t.size() && IsPunct(t[j], "::")) {
          qualified = true;
        }
        break;
      }
      if (!qualified && units >= 2 && last_had_args && j < t.size() &&
          IsPunct(t[j], ";")) {
        auto it = nodiscard_methods_.find(last_unit);
        if (it != nodiscard_methods_.end()) {
          for (const std::string& cls : it->second) {
            if (ReceiverMatchesClass(prev_unit, cls)) {
              AddFinding(file, "E1", tok.line, tok.col,
                         "discarded return value of [[nodiscard]] " + cls +
                             "::" + last_unit + "() — handle the result or add a "
                             "sciolint allow annotation",
                         out);
              break;
            }
          }
        }
      }
    }
  }

  // Flow-sensitive rules (F1/W1/H1/E2/X1): per-function CFG + dataflow.
  for (const FlowFinding& ff : CheckFlowRules(file, flow_ctx_)) {
    AddFinding(file, ff.rule, ff.line, ff.col, ff.message, out);
  }
}

void Analysis::CheckTaxonomies(std::vector<Finding>* out) {
  // C1 orphan categories: declared but never referenced at a charge site.
  for (const auto& [cat, where] : charge_cats_) {
    if (charge_cat_refs_.count(cat) != 0) {
      continue;
    }
    for (const LexedFile& file : files_) {
      if (file.path == where.first) {
        AddFinding(file, "C1", where.second, 1,
                   "charge category '" + cat +
                       "' is declared but never referenced at any charge site — "
                       "dead taxonomy or a charge site lost its tag",
                   out);
        break;
      }
    }
  }

  // M1: unique counter names, `subsystem.metric` shape.
  std::map<std::string, int> seen_rows;
  std::map<std::string, int> seen_fields;
  for (const StatField& f : stat_fields_) {
    const LexedFile* file = nullptr;
    for (const LexedFile& lf : files_) {
      if (lf.path == f.path) {
        file = &lf;
        break;
      }
    }
    if (file == nullptr) {
      continue;
    }
    if (auto [it, inserted] = seen_fields.emplace(f.field, f.line); !inserted) {
      AddFinding(*file, "M1", f.line, 1,
                 "KernelStats field '" + f.field + "' duplicates the field on line " +
                     std::to_string(it->second),
                 out);
    }
    if (auto [it, inserted] = seen_rows.emplace(f.row, f.line); !inserted) {
      AddFinding(*file, "M1", f.line, 1,
                 "KernelStats counter name '" + f.row +
                     "' duplicates the name on line " + std::to_string(it->second),
                 out);
    }
    // Shape: lowercase snake segments joined by at least one dot.
    bool ok = !f.row.empty() && f.row.find('.') != std::string::npos;
    if (ok) {
      bool prev_sep = true;
      for (char c : f.row) {
        if (c == '.') {
          if (prev_sep) {
            ok = false;
            break;
          }
          prev_sep = true;
        } else if ((c >= 'a' && c <= 'z') || (c >= '0' && c <= '9') || c == '_') {
          prev_sep = false;
        } else {
          ok = false;
          break;
        }
      }
      if (prev_sep) {
        ok = false;  // trailing dot
      }
    }
    if (!ok) {
      AddFinding(*file, "M1", f.line, 1,
                 "KernelStats counter name '" + f.row +
                     "' does not follow the `subsystem.metric` convention "
                     "(lowercase snake segments joined by '.')",
                 out);
    }
  }
}

std::vector<Finding> Analysis::Run() {
  unordered_vars_.clear();
  nodiscard_methods_.clear();
  charge_cats_.clear();
  charge_cat_refs_.clear();
  stat_fields_.clear();
  mem_sys_.clear();
  flow_ctx_.taxonomy_enums.clear();

  for (const LexedFile& file : files_) {
    CollectIndex(file);
  }
  for (const auto& [cat, where] : charge_cats_) {
    flow_ctx_.taxonomy_enums["ChargeCat"].insert(cat);
  }
  if (!mem_sys_.empty()) {
    flow_ctx_.taxonomy_enums["MemSys"] = mem_sys_;
  }
  std::vector<Finding> findings;
  for (const LexedFile& file : files_) {
    CheckFile(file, &findings);
  }
  CheckTaxonomies(&findings);
  std::sort(findings.begin(), findings.end(), [](const Finding& a, const Finding& b) {
    if (a.path != b.path) {
      return a.path < b.path;
    }
    if (a.line != b.line) {
      return a.line < b.line;
    }
    if (a.col != b.col) {
      return a.col < b.col;
    }
    return a.rule < b.rule;
  });
  return findings;
}

}  // namespace scio::lint
