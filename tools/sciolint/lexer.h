// sciolint lexer: a minimal C++ tokenizer, just rich enough for the rule
// passes. It distinguishes identifiers, literals and punctuation, skips
// comments and string/char literal *contents* (so a rule never fires on text
// inside a string), and extracts `sciolint:` control comments as structured
// annotations. Preprocessor lines are tokenized like ordinary code — the
// X-macro taxonomies the C1/M1 rules parse live inside #defines.

#ifndef TOOLS_SCIOLINT_LEXER_H_
#define TOOLS_SCIOLINT_LEXER_H_

#include <string>
#include <string_view>
#include <vector>

namespace scio::lint {

enum class Tok {
  kIdent,
  kNumber,
  kString,  // ordinary, raw and char literals; text() is the literal spelling
  kPunct,   // single char, except the two-char tokens "::" and "->"
};

struct Token {
  Tok kind;
  std::string text;
  int line = 0;  // 1-based
  int col = 0;   // 1-based
};

// One `// sciolint: ...` control comment. Two directives exist:
//   `allow(R1,R2) -- reason` — a finding of rule R on line L is suppressed
//       when an annotation allowing R sits on line L or on line L-1
//       (trailing comment or the dedicated line above);
//   `hotpath` — marks the enclosing function as a hot path for rule H1
//       (placed above the signature or inside the body).
struct Annotation {
  int line = 0;
  std::vector<std::string> rules;
  std::string reason;
  bool hotpath = false;    // `sciolint: hotpath` directive
  bool malformed = false;  // neither allow(<rules>) -- <reason> nor hotpath
  std::string raw;         // comment text, for diagnostics
};

struct LexedFile {
  std::string path;
  std::vector<Token> tokens;
  std::vector<Annotation> annotations;
  std::vector<std::string> lines;  // raw source lines, for snippets
};

LexedFile Lex(std::string path, std::string_view source);

}  // namespace scio::lint

#endif  // TOOLS_SCIOLINT_LEXER_H_
