// sciolint analysis: the repo's invariants as executable rules.
//
// The analyzer runs two passes over every file handed to it. Pass 1 builds a
// cross-file index (members declared with unordered containers, methods
// marked [[nodiscard]] and the classes declaring them, the ChargeCat and
// KernelStats X-macro taxonomies, every ChargeCat named inside a charge
// call's argument list). Pass 2 walks
// each token stream and reports findings:
//
//   D1  nondeterminism source in src/ (std::rand, random_device, wall
//       clocks, getenv, ...) — seeded runs must be bit-identical.
//   D2  range-for / begin() iteration over a std::unordered_map/set
//       variable — iteration order is implementation-defined, and
//       simulation state must never depend on it.
//   E1  discarded return value of a [[nodiscard]] syscall wrapper
//       (Sys::/RtIo::/PollSyscall::/SimKernel:: surface).
//   C1  Charge()/ChargeDebt()/ChargeLocal() call without a ChargeCat, or a
//       taxonomy category no charge site references (attribution coverage).
//   M1  KernelStats counter name duplicated or not of the
//       `subsystem.metric` shape.
//   S1  bare Wake() call in src/smp or src/servers — wait-queue wake-ups
//       there must name their semantics (WakeOne vs WakeAll), because the
//       two only diverge once exclusive waiters exist.
//   ANN malformed `sciolint:` control comment (allow() needs at least one
//       rule id, a known rule id, and a `-- reason`).
//
// Pass 2 also runs the flow engine (tools/sciolint/flow.h): per-function
// statement trees, a control-flow graph and forward dataflow, carrying the
// flow-sensitive rule families — F1 use-after-close, W1 waiter pairing,
// H1 hot-path allocation ban, E2 errno discipline, X1 exhaustive switch
// over the X-macro taxonomies. See flow.h for their exact semantics.
//
// Escape hatch: `// sciolint: allow(<rule>) -- <reason>` on the finding's
// line or the line above suppresses it; the finding is still reported as
// suppressed in the JSON output so escapes stay auditable.

#ifndef TOOLS_SCIOLINT_ANALYSIS_H_
#define TOOLS_SCIOLINT_ANALYSIS_H_

#include <map>
#include <set>
#include <string>
#include <vector>

#include "tools/sciolint/flow.h"
#include "tools/sciolint/lexer.h"

namespace scio::lint {

struct Finding {
  std::string rule;
  std::string path;
  int line = 0;
  int col = 0;
  std::string message;
  std::string snippet;      // the source line, trimmed
  bool suppressed = false;  // an allow() annotation covers it
  bool baselined = false;   // listed in the --baseline file
};

// Stable fingerprint used by baseline files: rule + file basename + the
// trimmed source line, FNV-1a hashed. Robust to the file moving between
// directories and to unrelated edits shifting line numbers.
std::string Fingerprint(const Finding& f);

class Analysis {
 public:
  // Register one source file. `source` is the full file content.
  void AddFile(const std::string& path, std::string_view source);

  // Run all rules over the registered files. Returns all findings, sorted by
  // (path, line); suppressed/baselined ones are included but flagged.
  std::vector<Finding> Run();

  // Load baseline fingerprints (one per line, '#' comments allowed).
  void LoadBaseline(std::string_view baseline_text);

 private:
  void CollectIndex(const LexedFile& file);
  void CheckFile(const LexedFile& file, std::vector<Finding>* out);
  void CheckTaxonomies(std::vector<Finding>* out);
  void AddFinding(const LexedFile& file, const std::string& rule, int line, int col,
                  std::string message, std::vector<Finding>* out);

  std::vector<LexedFile> files_;
  std::set<std::string> baseline_;

  // --- cross-file index (pass 1) ---
  // Variable names declared with std::unordered_map/unordered_set type.
  std::set<std::string> unordered_vars_;
  // [[nodiscard]] method name -> classes declaring it.
  std::map<std::string, std::set<std::string>> nodiscard_methods_;
  // Charge categories: enumerator -> (path, line) of declaration.
  std::map<std::string, std::pair<std::string, int>> charge_cats_;
  // ChargeCat::k* enumerators named inside the argument list of a charge
  // call (Charge/ChargeDebt/ChargeLocal/AccountSmp/Attribute). References
  // outside charge sites (ledger lookups, comparisons, report rows) do not
  // count: C1's orphan check asks "is this category ever charged?".
  std::set<std::string> charge_cat_refs_;
  // KernelStats counters: (field, row_name, path, line).
  struct StatField {
    std::string field;
    std::string row;
    std::string path;
    int line;
  };
  std::vector<StatField> stat_fields_;
  // MemSys enumerators (src/trace/mem_ledger.h X-macro), for X1.
  std::set<std::string> mem_sys_;
  // Taxonomy index handed to the flow engine (built after pass 1).
  FlowContext flow_ctx_;
};

}  // namespace scio::lint

#endif  // TOOLS_SCIOLINT_ANALYSIS_H_
