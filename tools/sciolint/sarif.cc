#include "tools/sciolint/sarif.h"

#include <map>
#include <sstream>

namespace scio::lint {
namespace {

struct RuleMeta {
  const char* id;
  const char* name;
  const char* description;
};

// One entry per rule family, in a stable order: `ruleIndex` in each result
// points into this table.
const std::vector<RuleMeta>& RuleCatalog() {
  static const std::vector<RuleMeta> kRules = {
      {"D1", "determinism-source",
       "Nondeterminism source in src/ — seeded runs must not read wall "
       "clocks, entropy or the environment."},
      {"D2", "unordered-iteration",
       "Iteration over an unordered container — order is "
       "implementation-defined and simulation state must not depend on it."},
      {"E1", "discarded-syscall-result",
       "Discarded return value of a [[nodiscard]] syscall wrapper."},
      {"C1", "charge-attribution",
       "Charge call without a ChargeCat, or a taxonomy category never "
       "referenced at a charge site."},
      {"M1", "metric-naming",
       "KernelStats counter name duplicated or not of the "
       "subsystem.metric shape."},
      {"S1", "wake-semantics",
       "Bare Wake() in SMP-adjacent code — name WakeOne or WakeAll."},
      {"P1", "per-fd-node-map",
       "std::map<int, ...> in a per-connection layer — use a paged slab."},
      {"F1", "fd-use-after-close",
       "An fd or slab index reaches a syscall wrapper on a path after "
       "Close()/ReleaseAt() (flow-sensitive)."},
      {"W1", "waiter-pairing",
       "A wait-queue registration has no matching Detach/Remove on some "
       "exit path (flow-sensitive)."},
      {"H1", "hotpath-allocation",
       "A hot-path function (annotated or a known harvest/wait loop) "
       "reaches new/make_unique/make_shared/std::function."},
      {"E2", "errno-discipline",
       "A `return -N;` error exit in src/kernel or src/posix with no "
       "errno assignment dominating the path."},
      {"X1", "exhaustive-taxonomy-switch",
       "A switch over an X-macro taxonomy enum (ChargeCat, MemSys) misses "
       "enumerators."},
      {"ANN", "annotation-hygiene",
       "Malformed sciolint control comment or unknown rule id."},
  };
  return kRules;
}

std::string Escape(const std::string& s) {
  std::string out;
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

}  // namespace

std::string ToSarif(const std::vector<Finding>& findings) {
  std::map<std::string, size_t> rule_index;
  for (size_t i = 0; i < RuleCatalog().size(); ++i) {
    rule_index[RuleCatalog()[i].id] = i;
  }

  std::ostringstream out;
  out << "{\n"
         "  \"$schema\": \"https://raw.githubusercontent.com/oasis-tcs/"
         "sarif-spec/master/Schemata/sarif-schema-2.1.0.json\",\n"
         "  \"version\": \"2.1.0\",\n"
         "  \"runs\": [\n"
         "    {\n"
         "      \"tool\": {\n"
         "        \"driver\": {\n"
         "          \"name\": \"sciolint\",\n"
         "          \"informationUri\": \"tools/sciolint\",\n"
         "          \"rules\": [\n";
  for (size_t i = 0; i < RuleCatalog().size(); ++i) {
    const RuleMeta& r = RuleCatalog()[i];
    out << "            {\"id\": \"" << r.id << "\", \"name\": \"" << r.name
        << "\", \"shortDescription\": {\"text\": \"" << Escape(r.description)
        << "\"}}" << (i + 1 < RuleCatalog().size() ? "," : "") << "\n";
  }
  out << "          ]\n"
         "        }\n"
         "      },\n"
         "      \"results\": [\n";
  for (size_t i = 0; i < findings.size(); ++i) {
    const Finding& f = findings[i];
    const auto idx = rule_index.find(f.rule);
    out << "        {\n"
           "          \"ruleId\": \"" << f.rule << "\",\n";
    if (idx != rule_index.end()) {
      out << "          \"ruleIndex\": " << idx->second << ",\n";
    }
    out << "          \"level\": \"" << (f.suppressed || f.baselined ? "note" : "error")
        << "\",\n"
           "          \"message\": {\"text\": \"" << Escape(f.message) << "\"},\n"
           "          \"locations\": [{\"physicalLocation\": {"
           "\"artifactLocation\": {\"uri\": \"" << Escape(f.path)
        << "\"}, \"region\": {\"startLine\": " << (f.line > 0 ? f.line : 1)
        << ", \"startColumn\": " << (f.col > 0 ? f.col : 1) << "}}}],\n"
           "          \"partialFingerprints\": {\"sciolintFingerprint/v1\": \""
        << Fingerprint(f) << "\"}";
    if (f.suppressed || f.baselined) {
      out << ",\n          \"suppressions\": [{\"kind\": \""
          << (f.suppressed ? "inSource" : "external") << "\"}]";
    }
    out << "\n        }" << (i + 1 < findings.size() ? "," : "") << "\n";
  }
  out << "      ]\n"
         "    }\n"
         "  ]\n"
         "}\n";
  return out.str();
}

}  // namespace scio::lint
