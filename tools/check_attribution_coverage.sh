#!/usr/bin/env bash
# Report-only drift check between the charge-category taxonomy and the
# actual Charge()/ChargeDebt() call sites.
#
# Two drifts are detected:
#   1. A category declared in SCIO_CHARGE_CATEGORIES that no charge site in
#      src/ references — dead taxonomy, or a charge site that lost its tag.
#   2. A Charge()/ChargeDebt() call site with no ChargeCat token nearby —
#      a new charge that silently lands in whatever the default is.
#
# Exits 1 when drift is found so CI can surface it; the CI step runs with
# continue-on-error because the nearby-token heuristic is textual, not
# compiled.

set -u
cd "$(dirname "$0")/.."

header=src/trace/charge_category.h
fail=0

declared=$(grep -oE '^  X\(k[A-Za-z0-9]+' "$header" | sed 's/^  X(//' | sort)
if [ -z "$declared" ]; then
  echo "error: could not parse SCIO_CHARGE_CATEGORIES from $header" >&2
  exit 2
fi

used=$(grep -rhoE 'ChargeCat::k[A-Za-z0-9]+' src bench tests --include='*.cc' --include='*.h' \
  | grep -v "^$header" | sed 's/ChargeCat:://' | sort -u)

unused=$(comm -23 <(echo "$declared") <(echo "$used"))
if [ -n "$unused" ]; then
  echo "categories declared but never referenced at any charge site:"
  echo "$unused" | sed 's/^/  /'
  fail=1
fi

# Call sites whose statement (this line + the next two, for wrapped
# multi-item charges) never mentions a ChargeCat.
untagged=$(grep -rn -A2 -E '(->|\.)Charge(Debt)?\(' src --include='*.cc' \
  | awk -v RS='--\n' '!/ChargeCat/ {print}' | grep -E '(->|\.)Charge(Debt)?\(' || true)
if [ -n "$untagged" ]; then
  echo "charge sites with no ChargeCat within 3 lines (check by hand):"
  echo "$untagged" | sed -E 's/-[0-9]+-.*$//' | sed 's/^/  /'
  fail=1
fi

if [ "$fail" -eq 0 ]; then
  count=$(echo "$declared" | wc -l)
  echo "attribution coverage OK: all $count categories referenced, no untagged charge sites"
fi
exit "$fail"
