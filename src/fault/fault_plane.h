// FaultPlane: seeded, deterministic fault injection for the simulated stack.
//
// The reproduction's robustness claims ("the server survives signal-queue
// overflow", "degrades gracefully under descriptor exhaustion") are only as
// good as our ability to produce those regimes on demand. A FaultSchedule is
// a list of time windows, each activating one fault kind; the FaultPlane
// evaluates them against the simulation clock and a seeded RNG, so the same
// seed + schedule always yields the identical fault sequence — failures are
// reproducible bit-for-bit, which is what makes torture runs debuggable.
//
// Injection points:
//   - SimKernel/Sys syscalls: EMFILE on accept()/open, ENOMEM on /dev/poll
//     interest-set growth, EINTR on blocking waits, and a forced RT signal
//     queue cap that triggers early SIGIO overflow;
//   - src/net Links: packet loss (transport-plane frames are dropped and
//     really retransmitted; legacy reliable pipes deliver late by a
//     retransmission penalty, keeping the byte stream intact as TCP
//     guarantees), latency spikes, and link flap windows during which
//     deliveries are held;
//   - src/load: abusive client profiles live in src/load/abusive_clients.h
//     and ride the same seeds.

#ifndef SRC_FAULT_FAULT_PLANE_H_
#define SRC_FAULT_FAULT_PLANE_H_

#include <cstdint>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "src/sim/rng.h"
#include "src/sim/simulator.h"
#include "src/trace/flight_recorder.h"

namespace scio {

enum class FaultKind {
  kAcceptEmfile,    // accept() fails with EMFILE
  kOpenEmfile,      // socket()/open("/dev/poll") fails with EMFILE
  kInterestEnomem,  // /dev/poll interest-set growth fails with ENOMEM
  kEintr,           // blocking waits return EINTR
  kRtQueueShrink,   // RT signal queue capped at `magnitude` entries
  kPacketLoss,      // frame dropped (transport plane); legacy pipes deliver
                    // late by the penalty instead
  kLatencySpike,    // extra one-way delay on every packet
  kLinkFlap,        // link down: deliveries held until the window closes
};

const char* FaultKindName(FaultKind kind);

// Which link direction a network fault applies to.
enum class LinkDir {
  kBoth,
  kToServer,
  kToClient,
};

struct FaultWindow {
  FaultKind kind = FaultKind::kEintr;
  // Half-open activity window [start, end) in absolute simulation time.
  SimTime start = 0;
  SimTime end = kSimTimeNever;
  // Chance that one opportunity (one syscall, one packet) is hit while the
  // window is active. Deterministic faults use 1.0.
  double probability = 1.0;
  // Kind-specific magnitude:
  //   kRtQueueShrink — the forced queue cap (entries);
  //   kPacketLoss    — legacy-pipe retransmission penalty in ns (delivery
  //                    delay; transport-plane frames drop regardless);
  //   kLatencySpike  — extra one-way delay in ns.
  double magnitude = 0;
  LinkDir dir = LinkDir::kBoth;
};

struct FaultSchedule {
  std::string name = "none";
  uint64_t seed = 1;
  std::vector<FaultWindow> windows;

  FaultSchedule& Add(FaultWindow window) {
    windows.push_back(window);
    return *this;
  }
  bool empty() const { return windows.empty(); }
};

// Everything the plane injected, for benchmark reports and determinism
// checks (identical seeds must produce identical rows).
struct FaultStats {
  uint64_t accept_emfile_injected = 0;
  uint64_t open_emfile_injected = 0;
  uint64_t interest_enomem_injected = 0;
  uint64_t eintr_injected = 0;
  uint64_t rt_signals_shed = 0;     // dropped by the forced queue cap
  uint64_t packets_lost = 0;        // frames hit by a loss window
  uint64_t packets_spiked = 0;      // hit by a latency spike
  uint64_t packets_flap_held = 0;   // held until a link flap window closed

  std::vector<std::pair<std::string, uint64_t>> ToRows() const;
};

class FaultPlane {
 public:
  FaultPlane(Simulator* sim, FaultSchedule schedule);
  FaultPlane(const FaultPlane&) = delete;
  FaultPlane& operator=(const FaultPlane&) = delete;

  // --- syscall-side queries (one call = one injection opportunity) ------------
  bool InjectAcceptEmfile();
  bool InjectOpenEmfile();
  bool InjectInterestEnomem();
  bool InjectEintr();

  // Active forced RT queue cap, or nullopt outside a shrink window.
  std::optional<size_t> RtQueueCap() const;
  void CountShedSignal() { ++stats_.rt_signals_shed; }

  // --- network-side query, one per Link::Transmit ------------------------------
  struct TransmitFault {
    SimDuration extra_delay = 0;   // spikes: added to the arrival time
    SimTime hold_until = 0;        // flap: not delivered before this time (0 = none)
    bool lost = false;             // a kPacketLoss window hit this frame
    SimDuration loss_penalty = 0;  // the window's magnitude, when lost
  };
  TransmitFault OnTransmit(bool toward_server);

  const FaultStats& stats() const { return stats_; }
  const FaultSchedule& schedule() const { return schedule_; }

  // True while any window of `kind` is active at the current sim time.
  bool Active(FaultKind kind) const { return ActiveWindow(kind) != nullptr; }

  // Optional flight recorder: every injection logs a kFault instant. Pure
  // observer — attaching one cannot change what gets injected.
  void set_recorder(FlightRecorder* recorder) { recorder_ = recorder; }

 private:
  const FaultWindow* ActiveWindow(FaultKind kind,
                                  LinkDir dir = LinkDir::kBoth) const;
  // One probabilistic draw against an active window (nullptr = no window).
  bool Roll(const FaultWindow* window);

  void RecordInjection(const char* name, int32_t arg0 = 0) {
    if constexpr (kFlightRecorderCompiledIn) {
      if (recorder_ != nullptr) {
        recorder_->Record(
            {sim_->now(), 0, 0, arg0, 0, TraceEventType::kFault, name});
      }
    }
  }

  Simulator* sim_;
  FaultSchedule schedule_;
  Rng rng_;
  FaultStats stats_;
  FlightRecorder* recorder_ = nullptr;
};

}  // namespace scio

#endif  // SRC_FAULT_FAULT_PLANE_H_
