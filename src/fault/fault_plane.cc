#include "src/fault/fault_plane.h"

namespace scio {

const char* FaultKindName(FaultKind kind) {
  switch (kind) {
    case FaultKind::kAcceptEmfile:
      return "accept-emfile";
    case FaultKind::kOpenEmfile:
      return "open-emfile";
    case FaultKind::kInterestEnomem:
      return "interest-enomem";
    case FaultKind::kEintr:
      return "eintr";
    case FaultKind::kRtQueueShrink:
      return "rt-queue-shrink";
    case FaultKind::kPacketLoss:
      return "packet-loss";
    case FaultKind::kLatencySpike:
      return "latency-spike";
    case FaultKind::kLinkFlap:
      return "link-flap";
  }
  return "unknown";
}

std::vector<std::pair<std::string, uint64_t>> FaultStats::ToRows() const {
  return {
      {"fault_accept_emfile_injected", accept_emfile_injected},
      {"fault_open_emfile_injected", open_emfile_injected},
      {"fault_interest_enomem_injected", interest_enomem_injected},
      {"fault_eintr_injected", eintr_injected},
      {"fault_rt_signals_shed", rt_signals_shed},
      {"fault_packets_lost", packets_lost},
      {"fault_packets_spiked", packets_spiked},
      {"fault_packets_flap_held", packets_flap_held},
  };
}

FaultPlane::FaultPlane(Simulator* sim, FaultSchedule schedule)
    : sim_(sim), schedule_(std::move(schedule)), rng_(schedule_.seed) {}

const FaultWindow* FaultPlane::ActiveWindow(FaultKind kind, LinkDir dir) const {
  const SimTime now = sim_->now();
  for (const FaultWindow& window : schedule_.windows) {
    if (window.kind != kind || now < window.start || now >= window.end) {
      continue;
    }
    if (dir != LinkDir::kBoth && window.dir != LinkDir::kBoth && window.dir != dir) {
      continue;
    }
    return &window;
  }
  return nullptr;
}

bool FaultPlane::Roll(const FaultWindow* window) {
  if (window == nullptr) {
    return false;
  }
  // The RNG is only consumed inside an active window, so an empty or
  // never-matching schedule is a pure no-op and perturbs nothing.
  if (window->probability >= 1.0) {
    return true;
  }
  return rng_.Bernoulli(window->probability);
}

bool FaultPlane::InjectAcceptEmfile() {
  if (Roll(ActiveWindow(FaultKind::kAcceptEmfile))) {
    ++stats_.accept_emfile_injected;
    RecordInjection("fault_accept_emfile");
    return true;
  }
  return false;
}

bool FaultPlane::InjectOpenEmfile() {
  if (Roll(ActiveWindow(FaultKind::kOpenEmfile))) {
    ++stats_.open_emfile_injected;
    RecordInjection("fault_open_emfile");
    return true;
  }
  return false;
}

bool FaultPlane::InjectInterestEnomem() {
  if (Roll(ActiveWindow(FaultKind::kInterestEnomem))) {
    ++stats_.interest_enomem_injected;
    RecordInjection("fault_interest_enomem");
    return true;
  }
  return false;
}

bool FaultPlane::InjectEintr() {
  if (Roll(ActiveWindow(FaultKind::kEintr))) {
    ++stats_.eintr_injected;
    RecordInjection("fault_eintr");
    return true;
  }
  return false;
}

std::optional<size_t> FaultPlane::RtQueueCap() const {
  const FaultWindow* window = ActiveWindow(FaultKind::kRtQueueShrink);
  if (window == nullptr || window->magnitude < 0) {
    return std::nullopt;
  }
  return static_cast<size_t>(window->magnitude);
}

FaultPlane::TransmitFault FaultPlane::OnTransmit(bool toward_server) {
  TransmitFault fault;
  const LinkDir dir = toward_server ? LinkDir::kToServer : LinkDir::kToClient;

  if (const FaultWindow* spike = ActiveWindow(FaultKind::kLatencySpike, dir);
      Roll(spike)) {
    fault.extra_delay += static_cast<SimDuration>(spike->magnitude);
    ++stats_.packets_spiked;
    RecordInjection("fault_latency_spike",
                    static_cast<int32_t>(spike->magnitude));
  }
  if (const FaultWindow* loss = ActiveWindow(FaultKind::kPacketLoss, dir);
      Roll(loss)) {
    // Two consumers: the legacy reliable-pipe path (Link::Transmit) delivers
    // the frame late by `loss_penalty` — in-order delivery keeps the byte
    // stream intact, which is TCP's contract under loss. The transport plane
    // (Link::TransmitSegment) drops the frame instead, and its own
    // retransmission machinery repairs the stream.
    fault.lost = true;
    fault.loss_penalty = static_cast<SimDuration>(loss->magnitude);
    ++stats_.packets_lost;
    RecordInjection("fault_packet_loss");
  }
  if (const FaultWindow* flap = ActiveWindow(FaultKind::kLinkFlap, dir)) {
    // Link down: traffic is queued and released when the window closes.
    fault.hold_until = flap->end;
    ++stats_.packets_flap_held;
    RecordInjection("fault_link_flap_hold");
  }
  return fault;
}

}  // namespace scio
