#include "src/metrics/percentile.h"

#include <algorithm>
#include <cmath>

namespace scio {

void PercentileTracker::EnsureSorted() {
  if (!sorted_) {
    std::sort(samples_.begin(), samples_.end());
    sorted_ = true;
  }
}

double PercentileTracker::Percentile(double p) {
  if (samples_.empty()) {
    return 0.0;
  }
  EnsureSorted();
  if (p <= 0.0) {
    return samples_.front();
  }
  if (p >= 100.0) {
    return samples_.back();
  }
  const double rank = p / 100.0 * static_cast<double>(samples_.size() - 1);
  const size_t lo = static_cast<size_t>(std::floor(rank));
  const size_t hi = static_cast<size_t>(std::ceil(rank));
  const double frac = rank - std::floor(rank);
  return samples_[lo] * (1.0 - frac) + samples_[hi] * frac;
}

}  // namespace scio
