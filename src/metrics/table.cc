#include "src/metrics/table.h"

#include <algorithm>
#include <fstream>
#include <iomanip>
#include <sstream>

namespace scio {

void Table::AddRow(const std::vector<double>& values, int precision) {
  std::vector<std::string> cells;
  cells.reserve(values.size());
  for (double v : values) {
    std::ostringstream os;
    os << std::fixed << std::setprecision(precision) << v;
    cells.push_back(os.str());
  }
  rows_.push_back(std::move(cells));
}

void Table::AddRow(std::vector<std::string> cells) { rows_.push_back(std::move(cells)); }

void Table::Print(std::ostream& out) const {
  std::vector<size_t> widths(headers_.size(), 0);
  for (size_t i = 0; i < headers_.size(); ++i) {
    widths[i] = headers_[i].size();
  }
  for (const auto& row : rows_) {
    for (size_t i = 0; i < row.size() && i < widths.size(); ++i) {
      widths[i] = std::max(widths[i], row[i].size());
    }
  }
  auto print_row = [&](const std::vector<std::string>& cells) {
    for (size_t i = 0; i < cells.size(); ++i) {
      out << std::setw(static_cast<int>(widths[std::min(i, widths.size() - 1)]) + 2)
          << cells[i];
    }
    out << "\n";
  };
  print_row(headers_);
  std::string rule;
  for (size_t w : widths) {
    rule += std::string(w + 2, '-');
  }
  out << rule << "\n";
  for (const auto& row : rows_) {
    print_row(row);
  }
}

void Table::WriteCsv(std::ostream& out) const {
  auto emit = [&](const std::vector<std::string>& cells) {
    for (size_t i = 0; i < cells.size(); ++i) {
      if (i != 0) {
        out << ",";
      }
      out << cells[i];
    }
    out << "\n";
  };
  emit(headers_);
  for (const auto& row : rows_) {
    emit(row);
  }
}

bool Table::WriteCsvFile(const std::string& path) const {
  std::ofstream out(path);
  if (!out) {
    return false;
  }
  WriteCsv(out);
  return static_cast<bool>(out);
}

}  // namespace scio
