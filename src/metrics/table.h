// Fixed-width console tables and CSV emission for benchmark output.

#ifndef SRC_METRICS_TABLE_H_
#define SRC_METRICS_TABLE_H_

#include <ostream>
#include <string>
#include <vector>

namespace scio {

class Table {
 public:
  explicit Table(std::vector<std::string> headers) : headers_(std::move(headers)) {}

  // Convenience: formats doubles with the given precision.
  void AddRow(const std::vector<double>& values, int precision = 1);
  void AddRow(std::vector<std::string> cells);

  // Render as an aligned console table.
  void Print(std::ostream& out) const;

  // Render as CSV (headers + rows).
  void WriteCsv(std::ostream& out) const;

  // Write CSV to a file; returns false on I/O failure.
  bool WriteCsvFile(const std::string& path) const;

  size_t row_count() const { return rows_.size(); }

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace scio

#endif  // SRC_METRICS_TABLE_H_
