// Exact percentile computation over a retained sample set.
//
// Benchmark runs record every response time (tens of thousands of samples),
// so exact order statistics are affordable; FIG 14 needs the median.

#ifndef SRC_METRICS_PERCENTILE_H_
#define SRC_METRICS_PERCENTILE_H_

#include <cstddef>
#include <vector>

namespace scio {

class PercentileTracker {
 public:
  void Add(double x) {
    samples_.push_back(x);
    sorted_ = false;
  }

  size_t count() const { return samples_.size(); }

  // p in [0, 100]; linear interpolation between closest ranks. Returns 0
  // when empty.
  double Percentile(double p);

  double Median() { return Percentile(50.0); }

 private:
  void EnsureSorted();

  std::vector<double> samples_;
  bool sorted_ = true;
};

}  // namespace scio

#endif  // SRC_METRICS_PERCENTILE_H_
