// Exact percentile computation over a retained sample set.
//
// Benchmark runs record every response time (tens of thousands of samples),
// so exact order statistics are affordable; FIG 14 needs the median.

#ifndef SRC_METRICS_PERCENTILE_H_
#define SRC_METRICS_PERCENTILE_H_

#include <cstddef>
#include <vector>

namespace scio {

class PercentileTracker {
 public:
  void Add(double x) {
    if (samples_.size() == samples_.capacity()) {
      // Grow in large steps: recording tens of thousands of samples should
      // not churn through a dozen small reallocations at the start.
      samples_.reserve(samples_.capacity() < kMinBlock ? kMinBlock
                                                       : samples_.capacity() * 2);
    }
    samples_.push_back(x);
    sorted_ = false;
  }

  // Pre-size for an expected sample count (callers usually know the request
  // budget up front).
  void Reserve(size_t n) { samples_.reserve(n); }

  size_t count() const { return samples_.size(); }

  // p in [0, 100]; linear interpolation between closest ranks. Returns 0
  // when empty.
  double Percentile(double p);

  double Median() { return Percentile(50.0); }

 private:
  static constexpr size_t kMinBlock = 1024;

  void EnsureSorted();

  std::vector<double> samples_;
  bool sorted_ = true;
};

}  // namespace scio

#endif  // SRC_METRICS_PERCENTILE_H_
