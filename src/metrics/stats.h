// Streaming summary statistics (Welford's online algorithm).

#ifndef SRC_METRICS_STATS_H_
#define SRC_METRICS_STATS_H_

#include <cmath>
#include <cstdint>
#include <limits>

namespace scio {

class StreamingStats {
 public:
  void Add(double x) {
    ++count_;
    const double delta = x - mean_;
    mean_ += delta / static_cast<double>(count_);
    m2_ += delta * (x - mean_);
    if (x < min_) {
      min_ = x;
    }
    if (x > max_) {
      max_ = x;
    }
  }

  uint64_t count() const { return count_; }
  double mean() const { return count_ == 0 ? 0.0 : mean_; }
  double min() const { return count_ == 0 ? 0.0 : min_; }
  double max() const { return count_ == 0 ? 0.0 : max_; }

  // Population variance; 0 for fewer than two samples.
  double variance() const { return count_ < 2 ? 0.0 : m2_ / static_cast<double>(count_); }
  double stddev() const { return std::sqrt(variance()); }

 private:
  uint64_t count_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = std::numeric_limits<double>::infinity();
  double max_ = -std::numeric_limits<double>::infinity();
};

}  // namespace scio

#endif  // SRC_METRICS_STATS_H_
