// Reply-rate time series: events bucketed by wall-clock interval.
//
// httperf samples reply rates periodically and reports their average,
// standard deviation, minimum and maximum — which is exactly what the
// paper's FIGS 4-9 and 11-13 plot (min hitting zero is how the paper shows
// connection starvation). RateSeries reproduces that reduction.

#ifndef SRC_METRICS_RATE_SERIES_H_
#define SRC_METRICS_RATE_SERIES_H_

#include <cstdint>
#include <vector>

#include "src/metrics/stats.h"
#include "src/sim/time.h"

namespace scio {

class RateSeries {
 public:
  // Events within [0, window) are counted in ceil(window/bucket_width)
  // buckets; when the window is not a multiple of the bucket width the final
  // bucket is partial and its rate is scaled by its true width. (The old
  // truncating bucket count silently dropped every event past the last full
  // bucket, biasing the min/avg of non-divisible windows.)
  RateSeries(SimDuration bucket_width, SimDuration window)
      : bucket_width_(bucket_width),
        window_(window),
        buckets_(static_cast<size_t>((window + bucket_width - 1) / bucket_width), 0) {}

  // Record one event at time t; events outside [0, window) are ignored.
  void Add(SimTime t) {
    if (t < 0 || t >= window_) {
      return;
    }
    const auto idx = static_cast<size_t>(t / bucket_width_);
    if (idx < buckets_.size()) {
      ++buckets_[idx];
    }
  }

  // Per-bucket rates in events/second. The last bucket may be partial; it is
  // divided by the width it actually covers, not the nominal bucket width.
  std::vector<double> Rates() const {
    std::vector<double> rates;
    rates.reserve(buckets_.size());
    const double seconds = ToSeconds(bucket_width_);
    for (size_t i = 0; i < buckets_.size(); ++i) {
      double width = seconds;
      if (i + 1 == buckets_.size()) {
        const SimDuration last_width =
            window_ - static_cast<SimDuration>(i) * bucket_width_;
        width = ToSeconds(last_width);
      }
      rates.push_back(static_cast<double>(buckets_[i]) / width);
    }
    return rates;
  }

  // Summary over the per-bucket rates (the httperf-style reduction).
  StreamingStats Summary() const {
    StreamingStats stats;
    for (double rate : Rates()) {
      stats.Add(rate);
    }
    return stats;
  }

  size_t bucket_count() const { return buckets_.size(); }
  uint64_t total() const {
    uint64_t sum = 0;
    for (uint64_t count : buckets_) {
      sum += count;
    }
    return sum;
  }

 private:
  SimDuration bucket_width_;
  SimDuration window_;
  std::vector<uint64_t> buckets_;
};

}  // namespace scio

#endif  // SRC_METRICS_RATE_SERIES_H_
