// phhttpd: Zach Brown's experimental RT-signal web server (paper §2, §5.2).
//
// Single-threaded configuration, as benchmarked in the paper:
//  - every socket is armed with fcntl(F_SETOWN) + fcntl(F_SETSIG) (plus an
//    O_NONBLOCK fcntl), all signals masked;
//  - the core loop collects one siginfo per sigwaitinfo() call and reacts to
//    it — the per-event syscall overhead the paper blames for FIG 11;
//  - stale signals for closed descriptors are tolerated (§2: "a server
//    application may receive and try to process previously queued read or
//    write events before it picks up the close event");
//  - on SIGIO (RT queue overflow) it flushes the queue and falls back to
//    poll(), rebuilding its pollfd array from scratch (§6) — and, like the
//    real phhttpd, *never switches back* to signal mode ("Brown never
//    implemented this logic").

#ifndef SRC_SERVERS_PHHTTPD_H_
#define SRC_SERVERS_PHHTTPD_H_

#include <vector>

#include "src/servers/server_base.h"

namespace scio {

// How the server recovers from an RT signal queue overflow (SIGIO).
enum class OverflowRecovery {
  // Single-threaded configuration: flush the queue, run one poll() pass over
  // everything to find the events the flush discarded, resume signal mode.
  // Under sustained overload this cycles: the queue refills, overflows
  // again, and every cycle pays a full flush + from-scratch poll — the
  // behaviour behind FIG 14's latency jump.
  kFlushPollResume,
  // Threaded phhttpd (§6): hand every connection one at a time to the poll
  // sibling and stay in polling mode forever ("Brown never implemented" the
  // switch back).
  kHandoffToPollSibling,
};

struct PhhttpdConfig {
  int rt_signo = kSigRtMin + 1;  // avoid signal 32, which LinuxThreads owns (§6)
  OverflowRecovery recovery = OverflowRecovery::kFlushPollResume;
};

class Phhttpd : public HttpServerBase {
 public:
  Phhttpd(Sys* sys, const StaticContent* content, ServerConfig config = ServerConfig{},
          PhhttpdConfig ph_config = PhhttpdConfig{});

  // Arms the listener for RT-signal delivery.
  void SetupSignals();

  int SetupEvents() override {
    SetupSignals();
    return 0;
  }

  void Run(SimTime until) override;

  bool in_poll_fallback() const { return poll_fallback_; }

 protected:
  void OnConnOpened(int fd) override;

 private:
  // Returns true if the signal was SIGIO (queue overflow).
  bool HandleSignal(const SigInfo& si);
  void EnterPollFallback();
  // One rebuild + poll() + dispatch pass. timeout_override_ms >= 0 forces a
  // non-blocking/short poll (recovery pass); -1 sleeps until work or sweep.
  void RunPollIteration(SimTime until, int timeout_override_ms = -1);

  PhhttpdConfig ph_config_;
  bool poll_fallback_ = false;
  std::vector<PollFd> pollfds_;
};

}  // namespace scio

#endif  // SRC_SERVERS_PHHTTPD_H_
