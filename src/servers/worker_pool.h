// WorkerPool: N server workers over the SMP scheduling plane.
//
// Recreates the three ways a multi-process Linux server of the era could
// share inbound connections, so bench_smp_scaling can compare them head on:
//
//  - kSharedWakeAll: every worker inherits one listener (fork-style) and
//    sleeps on its wait queue with ordinary waiters; every SYN wakes the
//    whole pool (the thundering herd, pre-2.3 semantics).
//  - kSharedWakeOne: same shared listener, but workers register exclusive
//    waiters (WQ_FLAG_EXCLUSIVE) and RT signals round-robin across the
//    subscribers, so each SYN wakes exactly one worker (the 2.3 wake-one
//    patch).
//  - kSharded: each worker binds its own SO_REUSEPORT-style listener and a
//    seeded flow hash spreads SYNs across the shards; no shared queue at
//    all.
//
// Each worker is its own Process (own descriptor table — a saturated worker
// cannot throttle a sibling), its own Sys, and its own server instance built
// by the caller's factory. Run() pins workers round-robin onto the
// SmpScheduler's virtual CPUs and drives them to completion.

#ifndef SRC_SERVERS_WORKER_POOL_H_
#define SRC_SERVERS_WORKER_POOL_H_

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "src/net/reuseport.h"
#include "src/servers/server_base.h"
#include "src/smp/smp_scheduler.h"

namespace scio {

enum class ListenerMode {
  kSharedWakeAll,   // one listener, plain waiters: herd wakeups
  kSharedWakeOne,   // one listener, exclusive waiters + round-robin signals
  kSharded,         // per-worker listeners behind a ReusePortGroup
};

std::string ListenerModeName(ListenerMode mode);

struct WorkerPoolConfig {
  int workers = 1;
  int cpus = 1;
  ListenerMode mode = ListenerMode::kSharedWakeAll;
  // Per-worker descriptor budget. Tables are per-process, so the budget
  // isolates workers from each other's saturation.
  int worker_max_fds = 8192;
  // Seeds both the scheduler's tie-breaking and the sharded flow hash.
  uint64_t seed = 0;
  size_t rt_queue_max = kDefaultRtQueueMax;
};

// Builds one server per worker. The factory must bake mode-appropriate
// options into the instance it returns (e.g. exclusive-wait /dev/poll or
// poll() options for kSharedWakeOne).
using ServerFactory =
    std::function<std::unique_ptr<HttpServerBase>(Sys* sys, int worker_index)>;

class WorkerPool {
 public:
  WorkerPool(SimKernel* kernel, NetStack* net, WorkerPoolConfig config,
             ServerFactory factory);

  // Creates processes and servers, binds/shares listeners per the mode, and
  // runs every worker's event-plane setup. Returns 0, or a negative
  // errno-style code from the first failing step.
  [[nodiscard]] int Setup();

  // Runs all workers to `until` on a fresh SmpScheduler. Call once.
  void Run(SimTime until);

  // The listener load generators should target. For kSharded this is shard 0;
  // the ReusePortGroup reroutes each SYN to its hashed member.
  const std::shared_ptr<SimListener>& head_listener() const { return head_listener_; }

  int workers() const { return static_cast<int>(workers_.size()); }
  HttpServerBase& server(int i) { return *workers_[i].server; }
  const HttpServerBase& server(int i) const { return *workers_[i].server; }
  Process& proc(int i) { return *workers_[i].proc; }
  Sys& sys(int i) { return *workers_[i].sys; }
  // Valid after Run().
  const SmpScheduler* scheduler() const { return sched_.get(); }

 private:
  struct Worker {
    Process* proc = nullptr;
    std::unique_ptr<Sys> sys;
    std::unique_ptr<HttpServerBase> server;
  };

  SimKernel* kernel_;
  NetStack* net_;
  WorkerPoolConfig config_;
  ServerFactory factory_;
  std::vector<Worker> workers_;
  std::shared_ptr<SimListener> head_listener_;
  std::unique_ptr<ReusePortGroup> reuseport_;
  std::unique_ptr<SmpScheduler> sched_;
};

}  // namespace scio

#endif  // SRC_SERVERS_WORKER_POOL_H_
