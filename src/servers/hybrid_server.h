// The hybrid server the paper imagines but could not build (§4, §6, §7).
//
// "To use either poll() or /dev/poll efficiently in phhttpd ... RT signal
// queue processing should maintain its pollfd array (or corresponding kernel
// state) concurrently with RT signal queue activity. This would allow
// switching between polling and signal queue mode with very little overhead."
//
// This server does exactly that:
//  - the /dev/poll interest set is maintained on every connection state
//    change regardless of mode (so a mode switch costs nothing);
//  - in signal mode, events drain in batches via the sigtimedwait4()
//    extension (§6 future work) for lower per-event syscall overhead;
//  - the HybridPolicy watches RT queue occupancy: past the high watermark —
//    or on an outright SIGIO overflow — it switches to DP_POLL, and switches
//    back once the queue stays calm (the logic Brown never implemented).

#ifndef SRC_SERVERS_HYBRID_SERVER_H_
#define SRC_SERVERS_HYBRID_SERVER_H_

#include <vector>

#include "src/core/hybrid_policy.h"
#include "src/servers/thttpd_devpoll.h"

namespace scio {

struct HybridServerConfig {
  int rt_signo = kSigRtMin + 1;
  int signal_batch = 32;  // sigtimedwait4 batch size
  HybridPolicyConfig policy;
};

class HybridServer : public ThttpdDevPoll {
 public:
  HybridServer(Sys* sys, const StaticContent* content, ServerConfig config = ServerConfig{},
               ThttpdDevPollConfig dp_config = ThttpdDevPollConfig{},
               HybridServerConfig hybrid_config = HybridServerConfig{});

  // Call after Setup() + SetupDevPoll(): arms the listener and creates the
  // policy sized to the process's RT queue limit.
  void SetupHybrid();

  int SetupEvents() override {
    if (SetupDevPoll() < 0) {
      return -1;
    }
    SetupHybrid();
    return 0;
  }

  void Run(SimTime until) override;

  EventMode mode() const { return policy_ ? policy_->mode() : EventMode::kSignals; }
  const HybridPolicy* policy() const { return policy_ ? &*policy_ : nullptr; }

 protected:
  void OnConnOpened(int fd) override;

 private:
  void RunSignalIteration(SimTime until);
  void UpdatePolicy(bool overflowed);

  HybridServerConfig hybrid_config_;
  std::optional<HybridPolicy> policy_;
  std::vector<SigInfo> signal_batch_;
};

}  // namespace scio

#endif  // SRC_SERVERS_HYBRID_SERVER_H_
