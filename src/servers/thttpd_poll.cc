#include "src/servers/thttpd_poll.h"

#include <algorithm>

namespace scio {

ThttpdPoll::ThttpdPoll(Sys* sys, const StaticContent* content, ServerConfig config,
                       PollSyscallOptions poll_options)
    : HttpServerBase(sys, content, config) {
  name_ = "thttpd-poll";
  sys->poll_syscall() = PollSyscall(&sys->kernel(), &sys->proc(), poll_options);
}

void ThttpdPoll::RebuildPollSet() {
  // clear() keeps the allocation, so after the connection count peaks the
  // per-iteration rebuild performs no heap traffic.
  pollfds_.clear();
  pollfds_.reserve(conns_.size() + 1);
  pollfds_.push_back(PollFd{listener_fd_, kPollIn, 0});
  conns_.ForEach([this](int fd, const Conn& conn) {
    pollfds_.push_back(
        PollFd{fd, conn.phase == Phase::kWriting ? kPollOut : kPollIn, 0});
  });
  kernel().Charge(kernel().cost().poll_userspace_rebuild_per_fd *
                      static_cast<SimDuration>(pollfds_.size()),
                  ChargeCat::kPollfdRebuild);
}

void ThttpdPoll::Run(SimTime until) {
  while (kernel().now() < until && !kernel().stopped()) {
    ++stats_.loop_iterations;
    kernel().Charge(kernel().cost().server_loop_overhead, ChargeCat::kServerLoop);
    MaybeSweep();

    RebuildPollSet();
    const SimTime wake_at = std::min(until, next_sweep_);
    const auto timeout_ms =
        static_cast<int>((wake_at - kernel().now() + Millis(1) - 1) / Millis(1));
    const int ready = sys().Poll(pollfds_, timeout_ms < 0 ? 0 : timeout_ms);
    if (ready == kErrIntr) {
      ++stats_.eintr_returns;  // interrupted; rebuild and retry
      continue;
    }
    if (ready <= 0) {
      continue;
    }
    for (const PollFd& pfd : pollfds_) {
      if (pfd.revents != 0) {
        DispatchEvent(pfd.fd, pfd.revents);
      }
    }
  }
}

}  // namespace scio
