// Slab-backed per-connection state for the HTTP servers.
//
// The servers used to keep connections in a `std::map<int, Conn>`: ~3 heap
// nodes' worth of red-black overhead per connection and O(open) walks for
// every idle sweep, deadline sweep, and pressure reap. At a million mostly-
// idle connections those walks dominate host time even though the *simulated*
// charge is a single multiplication. ConnTable keeps connections in a
// PagedStore slab indexed by fd and threads them on two intrusive lists:
//
//   activity list — ordered by last_activity. Every touch moves the node to
//     the back; since the clock is monotonic the list front is always the
//     least-recently-active connection, so an idle/pressure reap walks
//     exactly the expired prefix (expired + 1 nodes), never the full table.
//
//   reading list — connections still in Phase::kReading, in accept order.
//     opened_at is monotonic in accept order, so the deadline reap
//     (slowloris countermeasure) also walks only its expired prefix.
//
// Determinism: reaps collect the expired prefix and then sort the fds
// ascending, so connections close in exactly the order the old fd-ordered
// map scan produced — seeded baselines stay byte-identical. Plain iteration
// (poll-set rebuilds) uses the slab's ascending-fd bitmap walk.

#ifndef SRC_SERVERS_CONN_TABLE_H_
#define SRC_SERVERS_CONN_TABLE_H_

#include <algorithm>
#include <vector>

#include "src/http/request_parser.h"
#include "src/kernel/paged_slab.h"
#include "src/net/socket.h"
#include "src/sim/time.h"

namespace scio {

enum class ConnPhase {
  kReading,  // waiting for / parsing the request
  kWriting,  // response partially written, want POLLOUT
};

struct Conn {
  ConnPhase phase = ConnPhase::kReading;
  RequestParser parser;
  Chunk pending_write;
  SimTime last_activity = 0;
  // Accept time. An idle timer tracks *activity*, which a slowloris drip
  // refreshes forever; age since accept is the one clock it cannot touch.
  SimTime opened_at = 0;
  IndexLink activity_link;
  IndexLink reading_link;
};

class ConnTable {
 public:
  explicit ConnTable(size_t limit = 0)
      : store_(limit), activity_(&store_), reading_(&store_) {}

  // Must precede the first Open (sized to the process's fd-table limit so
  // fd indexes directly into the slab).
  void set_limit(size_t limit) { store_.set_limit(limit); }
  void set_mem_ledger(MemLedger* ledger) { store_.set_mem_ledger(ledger, MemSys::kConns); }
  size_t tracked_bytes() const { return store_.tracked_bytes(); }

  size_t size() const { return store_.size(); }
  bool Contains(int fd) const { return store_.Contains(static_cast<size_t>(fd)); }
  Conn* Get(int fd) {
    return fd < 0 ? nullptr : store_.Get(static_cast<size_t>(fd));
  }

  // Register a fresh connection under fd. The parked slot keeps its
  // heap capacity from the previous occupant; all logical state is reset.
  Conn& Open(int fd, SimTime now) {
    Conn& conn = store_.EmplaceAt(static_cast<size_t>(fd));
    conn.phase = ConnPhase::kReading;
    conn.parser.Reset();
    conn.pending_write = Chunk{};
    conn.last_activity = now;
    conn.opened_at = now;
    activity_.PushBack(fd);
    reading_.PushBack(fd);
    return conn;
  }

  // Record activity: update the stamp and keep the activity list sorted
  // (now is the global maximum, so move-to-back preserves order). O(1).
  void Touch(int fd, SimTime now) {
    Conn& conn = store_.At(static_cast<size_t>(fd));
    conn.last_activity = now;
    activity_.MoveToBack(fd);
  }

  // Phase transition. Only kReading→kWriting occurs today; leaving kReading
  // removes the conn from the deadline-reap list.
  void SetPhase(int fd, ConnPhase phase) {
    Conn& conn = store_.At(static_cast<size_t>(fd));
    if (conn.phase == phase) {
      return;
    }
    if (conn.phase == ConnPhase::kReading) {
      reading_.Unlink(fd);
    } else if (phase == ConnPhase::kReading) {
      reading_.PushBack(fd);
    }
    conn.phase = phase;
  }

  // Unlink and release. Heap capacity (parser buffer, pending chunk) stays
  // parked in the slot for the next occupant; owned content is dropped.
  void Close(int fd) {
    Conn& conn = store_.At(static_cast<size_t>(fd));
    activity_.Unlink(fd);
    if (conn.phase == ConnPhase::kReading) {
      reading_.Unlink(fd);
    }
    conn.parser.Reset();
    conn.pending_write = Chunk{};
    store_.ReleaseAt(static_cast<size_t>(fd));
  }

  // Fds whose last activity is strictly older than `timeout`, ascending.
  // Walks only the expired prefix of the activity list; the result lands in
  // the reusable scratch vector (no steady-state allocation).
  const std::vector<int>& CollectIdle(SimTime now, SimDuration timeout) {
    scratch_.clear();
    for (int32_t fd = activity_.front(); fd != kNilIndex;) {
      const int32_t next = activity_.NextOf(fd);
      if (now - store_.At(static_cast<size_t>(fd)).last_activity <= timeout) {
        break;  // list is activity-sorted: nothing further is expired
      }
      scratch_.push_back(fd);
      fd = next;
    }
    std::sort(scratch_.begin(), scratch_.end());
    return scratch_;
  }

  // Still-reading fds accepted more than `deadline` ago, ascending. Walks
  // only the expired prefix of the accept-ordered reading list.
  const std::vector<int>& CollectPastDeadline(SimTime now, SimDuration deadline) {
    scratch_.clear();
    for (int32_t fd = reading_.front(); fd != kNilIndex;) {
      const int32_t next = reading_.NextOf(fd);
      if (now - store_.At(static_cast<size_t>(fd)).opened_at <= deadline) {
        break;  // accept order == opened_at order: prefix is complete
      }
      scratch_.push_back(fd);
      fd = next;
    }
    std::sort(scratch_.begin(), scratch_.end());
    return scratch_;
  }

  // Visit every open connection in ascending fd order: fn(int fd, Conn&).
  // No Open/Close inside fn.
  template <typename Fn>
  void ForEach(Fn&& fn) {
    store_.ForEach([&fn](size_t i, Conn& c) { fn(static_cast<int>(i), c); });
  }

 private:
  PagedStore<Conn> store_;
  IndexList<Conn, &Conn::activity_link> activity_;
  IndexList<Conn, &Conn::reading_link> reading_;
  std::vector<int> scratch_;
};

}  // namespace scio

#endif  // SRC_SERVERS_CONN_TABLE_H_
