#include "src/servers/phhttpd_kqueue.h"

#include <algorithm>

namespace scio {

PhhttpdKqueue::PhhttpdKqueue(Sys* sys, const StaticContent* content, ServerConfig config,
                             PhhttpdKqueueConfig kq_config)
    : HttpServerBase(sys, content, config), kq_config_(kq_config) {
  name_ = "phhttpd-kqueue";
}

int PhhttpdKqueue::SetupKqueue() {
  kqfd_ = sys().OpenKqueue();
  if (kqfd_ < 0) {
    return kqfd_;
  }
  events_.resize(static_cast<size_t>(kq_config_.event_slots));
  armed_.assign(static_cast<size_t>(sys().proc().fds().max_fds()), 0);
  // The listener's knote is level-triggered: while the backlog is non-empty
  // every kevent re-reports it, so a truncated DrainAccepts can never strand
  // queued connections.
  QueueChange(listener_fd_, kFiltRead, kEvAdd);
  return kqfd_;
}

void PhhttpdKqueue::QueueChange(int fd, int16_t filter, uint16_t flags) {
  pending_changes_.push_back(KEvent{fd, filter, flags, 0});
}

void PhhttpdKqueue::OnConnOpened(int fd) {
  // Both knotes up front: read live, write parked. Later phase flips are
  // enable/disable — idempotent and allocation-free.
  QueueChange(fd, kFiltRead, kEvAdd | clear_flag());
  QueueChange(fd, kFiltWrite, kEvAdd | kEvDisable | clear_flag());
}

void PhhttpdKqueue::OnConnPhaseChanged(int fd, Phase phase) {
  if (phase == Phase::kWriting) {
    QueueChange(fd, kFiltWrite, kEvEnable);
  } else {
    QueueChange(fd, kFiltWrite, kEvDisable);
  }
  // The read knote stays enabled in both phases: a peer abort mid-response
  // must surface (DispatchEvent drains reads while writing).
}

void PhhttpdKqueue::OnConnClosing(int fd) {
  // The fd number may be reused by the very next accept: purge queued
  // changes for it so a later flush cannot install knotes on the new file.
  pending_changes_.erase(
      std::remove_if(pending_changes_.begin(), pending_changes_.end(),
                     [fd](const KEvent& change) { return change.ident == fd; }),
      pending_changes_.end());
  if (armed_[static_cast<size_t>(fd)] == 0) {
    return;  // its EV_ADDs never flushed; nothing installed
  }
  armed_[static_cast<size_t>(fd)] = 0;
  // Delete both knotes immediately (pure changelist, cannot ENOMEM).
  const KEvent deletes[] = {
      KEvent{fd, kFiltRead, kEvDelete, 0},
      KEvent{fd, kFiltWrite, kEvDelete, 0},
  };
  if (sys().Kevent(kqfd_, deletes, {}, 0) < 0) {
    // Both knotes were registered together; a failure here means the core
    // already dropped them as stale. Either way they are gone.
  }
}

int PhhttpdKqueue::KeventAndDispatch(SimTime until) {
  const SimTime wake_at = std::min(until, next_sweep_);
  auto timeout_ms =
      static_cast<int>((wake_at - kernel().now() + Millis(1) - 1) / Millis(1));
  if (timeout_ms < 0) {
    timeout_ms = 0;
  }
  // The fused call: changelist + harvest in ONE trap. On ENOMEM the batch
  // stays queued (idempotent entries, retried verbatim next pass) and the
  // stale-but-valid knote set keeps serving.
  const int ready = sys().Kevent(kqfd_, pending_changes_, events_, timeout_ms);
  if (ready == kErrNoMem) {
    ++stats_.devpoll_write_retries;
    return 0;
  }
  // Anything else (events, timeout, EINTR) means the changelist was applied.
  for (const KEvent& change : pending_changes_) {
    if ((change.flags & kEvAdd) != 0) {
      armed_[static_cast<size_t>(change.ident)] = 1;
    }
  }
  pending_changes_.clear();
  if (ready == kErrIntr) {
    ++stats_.eintr_returns;
    return 0;
  }
  if (ready <= 0) {
    return 0;
  }
  for (int i = 0; i < ready; ++i) {
    const KEvent& ev = events_[static_cast<size_t>(i)];
    PollEvents revents = ev.filter == kFiltRead ? kPollIn : kPollOut;
    if ((ev.flags & kEvEof) != 0) {
      revents |= kPollHup;
    }
    DispatchEvent(ev.ident, revents);
  }
  return ready;
}

void PhhttpdKqueue::Run(SimTime until) {
  while (kernel().now() < until && !kernel().stopped()) {
    ++stats_.loop_iterations;
    kernel().Charge(kernel().cost().server_loop_overhead, ChargeCat::kServerLoop);
    MaybeSweep();
    KeventAndDispatch(until);
  }
}

}  // namespace scio
