// thttpd, stock configuration: single-process, event-driven, classic poll().
//
// Faithful to the legacy-application behaviour the paper calls out (§6):
// "applications of this type often entirely rebuild their pollfd array each
// time they invoke poll()" — so every loop iteration pays a user-space
// rebuild over all connections plus poll()'s full copy-in and driver scan.

#ifndef SRC_SERVERS_THTTPD_POLL_H_
#define SRC_SERVERS_THTTPD_POLL_H_

#include <vector>

#include "src/servers/server_base.h"

namespace scio {

class ThttpdPoll : public HttpServerBase {
 public:
  ThttpdPoll(Sys* sys, const StaticContent* content, ServerConfig config = ServerConfig{},
             PollSyscallOptions poll_options = PollSyscallOptions{});

  void Run(SimTime until) override;

 private:
  // Rebuild the pollfd array from the connection table (charged).
  void RebuildPollSet();

  std::vector<PollFd> pollfds_;
};

}  // namespace scio

#endif  // SRC_SERVERS_THTTPD_POLL_H_
