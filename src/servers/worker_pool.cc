#include "src/servers/worker_pool.h"

#include "src/net/listener.h"

namespace scio {

std::string ListenerModeName(ListenerMode mode) {
  switch (mode) {
    case ListenerMode::kSharedWakeAll:
      return "shared-wake-all";
    case ListenerMode::kSharedWakeOne:
      return "shared-wake-one";
    case ListenerMode::kSharded:
      return "sharded";
  }
  return "unknown";
}

WorkerPool::WorkerPool(SimKernel* kernel, NetStack* net, WorkerPoolConfig config,
                       ServerFactory factory)
    : kernel_(kernel), net_(net), config_(config), factory_(std::move(factory)) {}

int WorkerPool::Setup() {
  for (int i = 0; i < config_.workers; ++i) {
    Process& proc =
        kernel_->CreateProcess("worker-" + std::to_string(i), config_.worker_max_fds);
    proc.set_rt_queue_max(config_.rt_queue_max);
    Worker w;
    w.proc = &proc;
    w.sys = std::make_unique<Sys>(kernel_, &proc, net_);
    w.server = factory_(w.sys.get(), i);
    workers_.push_back(std::move(w));
  }

  if (config_.mode == ListenerMode::kSharded) {
    reuseport_ = std::make_unique<ReusePortGroup>(config_.seed);
    for (Worker& w : workers_) {
      const int fd = w.server->Setup();
      if (fd < 0) {
        return fd;
      }
      reuseport_->Add(w.sys->listener(fd));
    }
    head_listener_ = reuseport_->member(0);
  } else {
    const int fd = workers_.front().server->Setup();
    if (fd < 0) {
      return fd;
    }
    head_listener_ = workers_.front().sys->listener(fd);
    // One SYN either signals every subscriber (the herd) or exactly one.
    head_listener_->SetAsyncDeliveryMode(config_.mode == ListenerMode::kSharedWakeOne
                                             ? AsyncDeliveryMode::kRoundRobin
                                             : AsyncDeliveryMode::kAll);
    for (size_t i = 1; i < workers_.size(); ++i) {
      const int fd_i = workers_[i].server->AdoptListener(head_listener_);
      if (fd_i < 0) {
        return fd_i;
      }
    }
  }

  for (Worker& w : workers_) {
    const int rc = w.server->SetupEvents();
    if (rc < 0) {
      return rc;
    }
  }
  return 0;
}

void WorkerPool::Run(SimTime until) {
  sched_ = std::make_unique<SmpScheduler>(kernel_, config_.cpus, config_.seed);
  for (Worker& w : workers_) {
    HttpServerBase* srv = w.server.get();
    sched_->AddWorker(w.proc, [srv, until] { srv->Run(until); });
  }
  sched_->Run();
}

}  // namespace scio
