#include "src/servers/server_base.h"

#include <cassert>
#include <vector>

#include "src/http/http_message.h"

namespace scio {

HttpServerBase::HttpServerBase(Sys* sys, const StaticContent* content, ServerConfig config)
    : sys_(sys), content_(content), config_(config) {}

int HttpServerBase::Setup() {
  listener_fd_ = sys_->Listen(config_.listen_backlog);
  assert(listener_fd_ >= 0);
  next_sweep_ = kernel().now() + config_.timer_sweep_interval;
  return listener_fd_;
}

int HttpServerBase::DrainAccepts() {
  int accepted = 0;
  while (true) {
    const int fd = sys_->Accept(listener_fd_);
    if (fd == -1) {
      break;  // backlog empty
    }
    if (fd < 0) {
      if (fd == -3) {
        ++stats_.accept_emfile;
      }
      break;
    }
    kernel().Charge(kernel().cost().server_conn_setup);
    Conn& conn = conns_[fd];
    conn.last_activity = kernel().now();
    ++stats_.connections_accepted;
    ++accepted;
    OnConnOpened(fd);
  }
  return accepted;
}

void HttpServerBase::StartResponse(int fd, Conn& conn) {
  kernel().Charge(kernel().cost().http_build_response);
  std::optional<size_t> size = content_->Lookup(conn.parser.path());
  if (size.has_value()) {
    conn.pending_write = BuildHttpOkResponse(*size);
    ++stats_.responses_sent;
  } else {
    conn.pending_write = BuildHttpNotFoundResponse();
    ++stats_.not_found_sent;
  }
  conn.phase = Phase::kWriting;
  // Attempt the write immediately; fall back to POLLOUT if it is short.
  HandleWritable(fd);
}

bool HttpServerBase::HandleReadable(int fd) {
  auto it = conns_.find(fd);
  if (it == conns_.end()) {
    ++stats_.stale_events;
    return false;
  }
  Conn& conn = it->second;
  conn.last_activity = kernel().now();

  const ReadResult r = sys_->Read(fd, config_.read_chunk);
  if (r.eof) {
    ++stats_.peer_closes;
    CloseConn(fd);
    return false;
  }
  if (r.n == 0) {
    return true;  // spurious wakeup / EAGAIN
  }
  if (conn.phase != Phase::kReading) {
    return true;  // pipelined bytes after the request; ignore
  }
  kernel().Charge(kernel().cost().http_parse_base +
                  kernel().cost().http_parse_per_byte * static_cast<SimDuration>(r.n));
  const RequestParser::State state = conn.parser.Feed(r.data);
  switch (state) {
    case RequestParser::State::kIncomplete:
      return true;
    case RequestParser::State::kError:
      ++stats_.bad_requests;
      CloseConn(fd);
      return false;
    case RequestParser::State::kComplete:
      StartResponse(fd, conn);
      return HasConn(fd);
  }
  return true;
}

bool HttpServerBase::HandleWritable(int fd) {
  auto it = conns_.find(fd);
  if (it == conns_.end()) {
    ++stats_.stale_events;
    return false;
  }
  Conn& conn = it->second;
  if (conn.phase != Phase::kWriting) {
    return true;
  }
  conn.last_activity = kernel().now();

  const long sent = sys_->Write(fd, conn.pending_write);
  if (sent < 0) {
    CloseConn(fd);
    return false;
  }
  // Trim what was accepted: real bytes first, then synthetic.
  size_t n = static_cast<size_t>(sent);
  const size_t from_data = n < conn.pending_write.data.size() ? n : conn.pending_write.data.size();
  conn.pending_write.data.erase(0, from_data);
  conn.pending_write.synthetic -= n - from_data;

  if (conn.pending_write.size() == 0) {
    // HTTP/1.0: response done, server closes.
    CloseConn(fd);
    return false;
  }
  OnConnPhaseChanged(fd, Phase::kWriting);
  return true;
}

void HttpServerBase::DispatchEvent(int fd, PollEvents revents) {
  if (fd == listener_fd_) {
    if ((revents & kPollIn) != 0) {
      DrainAccepts();
    }
    return;
  }
  auto it = conns_.find(fd);
  if (it == conns_.end()) {
    ++stats_.stale_events;
    return;
  }
  if ((revents & (kPollErr | kPollNval)) != 0) {
    CloseConn(fd);
    return;
  }
  if ((revents & (kPollIn | kPollHup)) != 0) {
    if (it->second.phase == Phase::kWriting) {
      // Data or FIN while we are writing: drain reads first (could be the
      // peer aborting), then continue the write.
      if (!HandleReadable(fd)) {
        return;
      }
      HandleWritable(fd);
      return;
    }
    HandleReadable(fd);
    return;
  }
  if ((revents & kPollOut) != 0) {
    HandleWritable(fd);
  }
}

void HttpServerBase::CloseConn(int fd) {
  auto it = conns_.find(fd);
  if (it == conns_.end()) {
    return;
  }
  OnConnClosing(fd);
  kernel().Charge(kernel().cost().server_conn_teardown);
  conns_.erase(it);
  sys_->Close(fd);
}

int HttpServerBase::SweepTimeouts() {
  const SimTime now = kernel().now();
  kernel().Charge(kernel().cost().server_timer_sweep_per_conn *
                  static_cast<SimDuration>(conns_.size()));
  std::vector<int> expired;
  for (const auto& [fd, conn] : conns_) {
    if (now - conn.last_activity > config_.idle_timeout) {
      expired.push_back(fd);
    }
  }
  for (int fd : expired) {
    ++stats_.idle_timeouts;
    CloseConn(fd);
  }
  return static_cast<int>(expired.size());
}

void HttpServerBase::MaybeSweep() {
  if (kernel().now() < next_sweep_) {
    return;
  }
  SweepTimeouts();
  next_sweep_ = kernel().now() + config_.timer_sweep_interval;
}

}  // namespace scio
