#include "src/servers/server_base.h"

#include <vector>

#include "src/http/http_message.h"
#include "src/servers/defense.h"

namespace scio {

HttpServerBase::HttpServerBase(Sys* sys, const StaticContent* content, ServerConfig config)
    : sys_(sys), content_(content), config_(config) {
  conns_.set_limit(static_cast<size_t>(sys_->proc().fds().max_fds()));
  conns_.set_mem_ledger(&sys_->kernel().mem());
}

int HttpServerBase::Setup() {
  listener_fd_ = sys_->Listen(config_.listen_backlog);
  if (listener_fd_ < 0) {
    return listener_fd_;  // EMFILE: the caller decides whether to retry
  }
  sys_->listener(listener_fd_)->ConfigureSynBacklog(config_.syn_backlog);
  next_sweep_ = kernel().now() + config_.timer_sweep_interval;
  return listener_fd_;
}

int HttpServerBase::AdoptListener(const std::shared_ptr<SimListener>& listener) {
  listener_fd_ = sys_->InstallFile(listener);
  if (listener_fd_ < 0) {
    return listener_fd_;
  }
  next_sweep_ = kernel().now() + config_.timer_sweep_interval;
  return listener_fd_;
}

bool HttpServerBase::UnderFdPressure() {
  const double used = static_cast<double>(sys_->proc().fds().open_count());
  const double capacity = static_cast<double>(sys_->proc().fds().max_fds());
  if (fd_pressure_) {
    if (used <= capacity * config_.fd_low_watermark) {
      fd_pressure_ = false;
    }
  } else if (used >= capacity * config_.fd_high_watermark) {
    fd_pressure_ = true;
  }
  return fd_pressure_;
}

int HttpServerBase::DrainAccepts() {
  int accepted = 0;
  accept_stalled_ = false;
  while (true) {
    if (UnderFdPressure()) {
      // Leave the rest of the backlog queued: accepting now would only push
      // the table into EMFILE. Reap idle conns so capacity comes back.
      ++stats_.accepts_throttled;
      PressureReap();
      accept_stalled_ = true;
      break;
    }
    const int fd = sys_->Accept(listener_fd_);
    if (fd == -1) {
      break;  // backlog empty
    }
    if (fd < 0) {
      if (fd == kErrMFile) {
        ++stats_.accept_emfile;
        PressureReap();  // shed idle conns so a later accept can succeed
      }
      accept_stalled_ = true;
      break;
    }
    kernel().Charge(kernel().cost().server_conn_setup, ChargeCat::kConnMgmt);
    conns_.Open(fd, kernel().now());
    ++stats_.connections_accepted;
    ++accepted;
    OnConnOpened(fd);
  }
  return accepted;
}

void HttpServerBase::StartResponse(int fd, Conn& conn) {
  kernel().Charge(kernel().cost().http_build_response, ChargeCat::kHttpRespond);
  std::optional<size_t> size = content_->Lookup(conn.parser.path());
  if (size.has_value()) {
    conn.pending_write = BuildHttpOkResponse(*size);
    ++stats_.responses_sent;
  } else {
    conn.pending_write = BuildHttpNotFoundResponse();
    ++stats_.not_found_sent;
  }
  conns_.SetPhase(fd, Phase::kWriting);
  // Attempt the write immediately; fall back to POLLOUT if it is short.
  HandleWritable(fd);
}

bool HttpServerBase::HandleReadable(int fd) {
  Conn* conn = conns_.Get(fd);
  if (conn == nullptr) {
    ++stats_.stale_events;
    return false;
  }
  conns_.Touch(fd, kernel().now());

  const ReadResult r = sys_->Read(fd, config_.read_chunk);
  if (r.err != 0) {
    // EBADF: our bookkeeping has a conn the fd table doesn't. Drop it.
    CloseConn(fd);
    return false;
  }
  if (r.eof) {
    ++stats_.peer_closes;
    CloseConn(fd);
    return false;
  }
  if (r.n == 0) {
    return true;  // spurious wakeup / EAGAIN
  }
  if (conn->phase != Phase::kReading) {
    return true;  // pipelined bytes after the request; ignore
  }
  kernel().Charge(kernel().cost().http_parse_base +
                      kernel().cost().http_parse_per_byte * static_cast<SimDuration>(r.n),
                  ChargeCat::kHttpParse);
  const RequestParser::State state = conn->parser.Feed(r.data);
  switch (state) {
    case RequestParser::State::kIncomplete:
      return true;
    case RequestParser::State::kError:
      ++stats_.bad_requests;
      CloseConn(fd);
      return false;
    case RequestParser::State::kComplete:
      StartResponse(fd, *conn);
      return HasConn(fd);
  }
  return true;
}

bool HttpServerBase::HandleWritable(int fd) {
  Conn* conn = conns_.Get(fd);
  if (conn == nullptr) {
    ++stats_.stale_events;
    return false;
  }
  if (conn->phase != Phase::kWriting) {
    return true;
  }
  conns_.Touch(fd, kernel().now());

  const long sent = sys_->Write(fd, conn->pending_write);
  if (sent < 0) {
    ++stats_.write_errors;  // EPIPE/EBADF: response can never complete
    CloseConn(fd);
    return false;
  }
  // Trim what was accepted: real bytes first, then synthetic.
  size_t n = static_cast<size_t>(sent);
  const size_t from_data =
      n < conn->pending_write.data.size() ? n : conn->pending_write.data.size();
  conn->pending_write.data.erase(0, from_data);
  conn->pending_write.synthetic -= n - from_data;

  if (conn->pending_write.size() == 0) {
    // HTTP/1.0: response done, server closes.
    CloseConn(fd);
    return false;
  }
  OnConnPhaseChanged(fd, Phase::kWriting);
  return true;
}

void HttpServerBase::DispatchEvent(int fd, PollEvents revents) {
  if (fd == listener_fd_) {
    if ((revents & kPollIn) != 0) {
      DrainAccepts();
    }
    return;
  }
  Conn* conn = conns_.Get(fd);
  if (conn == nullptr) {
    ++stats_.stale_events;
    return;
  }
  if ((revents & (kPollErr | kPollNval)) != 0) {
    CloseConn(fd);
    return;
  }
  if ((revents & (kPollIn | kPollHup)) != 0) {
    if (conn->phase == Phase::kWriting) {
      // Data or FIN while we are writing: drain reads first (could be the
      // peer aborting), then continue the write.
      if (!HandleReadable(fd)) {
        return;
      }
      HandleWritable(fd);
      return;
    }
    HandleReadable(fd);
    return;
  }
  if ((revents & kPollOut) != 0) {
    HandleWritable(fd);
  }
}

void HttpServerBase::CloseConn(int fd) {
  if (!conns_.Contains(fd)) {
    return;
  }
  OnConnClosing(fd);
  kernel().Charge(kernel().cost().server_conn_teardown, ChargeCat::kConnMgmt);
  conns_.Close(fd);
  // sciolint: allow(E1) -- conns_ held the fd, so EBADF is impossible here
  (void)sys_->Close(fd);
}

int HttpServerBase::ReapIdle(SimDuration timeout, bool pressure) {
  const SimTime now = kernel().now();
  // The simulated server still pays a per-connection sweep (that is the cost
  // model the paper measures); only the host-side walk below is confined to
  // the expired prefix of the activity list.
  kernel().Charge(kernel().cost().server_timer_sweep_per_conn *
                      static_cast<SimDuration>(conns_.size()),
                  ChargeCat::kTimerSweep);
  const std::vector<int>& expired = conns_.CollectIdle(now, timeout);
  for (int fd : expired) {
    if (pressure) {
      ++stats_.pressure_reaps;
    } else {
      ++stats_.idle_timeouts;
    }
    CloseConn(fd);
  }
  return static_cast<int>(expired.size());
}

int HttpServerBase::SweepTimeouts() {
  return ReapIdle(config_.idle_timeout, /*pressure=*/false);
}

int HttpServerBase::PressureReap() {
  return ReapIdle(config_.pressure_idle_timeout, /*pressure=*/true);
}

int HttpServerBase::DeadlineReap(SimDuration deadline) {
  const SimTime now = kernel().now();
  kernel().Charge(kernel().cost().server_timer_sweep_per_conn *
                      static_cast<SimDuration>(conns_.size()),
                  ChargeCat::kTimerSweep);
  // Only connections still fishing for a request: a conn that reached the
  // write phase proved itself; cutting it off mid-response helps nobody.
  const std::vector<int>& expired = conns_.CollectPastDeadline(now, deadline);
  for (int fd : expired) {
    ++stats_.deadline_reaps;
    CloseConn(fd);
  }
  return static_cast<int>(expired.size());
}

void HttpServerBase::MaybeSweep() {
  if (kernel().now() < next_sweep_) {
    return;
  }
  SweepTimeouts();
  // Under pressure, also shed anything idle past the aggressive timeout so
  // accepting can resume without waiting for EMFILE to force the issue.
  if (UnderFdPressure()) {
    PressureReap();
  }
  if (defense_ != nullptr) {
    const double capacity = static_cast<double>(sys_->proc().fds().max_fds());
    const double fd_frac =
        capacity > 0
            ? static_cast<double>(sys_->proc().fds().open_count()) / capacity
            : 0.0;
    defense_->Tick(fd_frac);
    if (defense_->tier() >= 1) {
      // Slowloris countermeasure: idle reaps never fire on a dripping
      // connection, but age since accept is immune to the drip.
      DeadlineReap(defense_->config().request_deadline);
    }
  }
  if (accept_stalled_) {
    // Connections stranded in the backlog by an earlier failed accept raise
    // no further notification (their edge already fired), so the sweep is
    // the only place a signal-driven server can pick them back up.
    ++stats_.accept_retries;
    DrainAccepts();
  }
  next_sweep_ = kernel().now() + config_.timer_sweep_interval;
}

}  // namespace scio
