#include "src/servers/thttpd_devpoll.h"

#include <algorithm>

namespace scio {

ThttpdDevPoll::ThttpdDevPoll(Sys* sys, const StaticContent* content, ServerConfig config,
                             ThttpdDevPollConfig dp_config)
    : HttpServerBase(sys, content, config), dp_config_(dp_config) {
  name_ = "thttpd-devpoll";
}

int ThttpdDevPoll::SetupDevPoll() {
  dpfd_ = sys().OpenDevPoll(dp_config_.devpoll);
  if (dpfd_ < 0) {
    return dpfd_;
  }
  if (dp_config_.use_mmap_results) {
    if (sys().DevPollAlloc(dpfd_, dp_config_.result_slots) != 0) {
      return -1;
    }
    result_area_ = sys().DevPollMmap(dpfd_);
    if (result_area_ == nullptr) {
      return -1;
    }
  } else {
    result_buffer_.resize(static_cast<size_t>(dp_config_.result_slots));
  }
  QueueUpdate(listener_fd_, kPollIn);
  return dpfd_;
}

void ThttpdDevPoll::QueueUpdate(int fd, PollEvents events) {
  pending_updates_.push_back(PollFd{fd, events, 0});
}

bool ThttpdDevPoll::FlushUpdates() {
  if (pending_updates_.empty()) {
    return true;
  }
  const long rc = sys().DevPollWrite(dpfd_, pending_updates_);
  if (rc < 0) {
    // ENOMEM under memory pressure: the write failed atomically, so keep the
    // batch queued and retry on the next loop pass. Meanwhile DP_POLL runs
    // with the previous (stale but valid) interest set.
    ++stats_.devpoll_write_retries;
    return false;
  }
  pending_updates_.clear();
  return true;
}

void ThttpdDevPoll::OnConnOpened(int fd) { QueueUpdate(fd, kPollIn); }

void ThttpdDevPoll::OnConnPhaseChanged(int fd, Phase phase) {
  QueueUpdate(fd, phase == Phase::kWriting ? kPollOut : kPollIn);
}

void ThttpdDevPoll::OnConnClosing(int fd) {
  // Remove the interest *before* close so no stale interest lingers (proper
  // /dev/poll usage; the stale path is exercised by tests instead).
  QueueUpdate(fd, kPollRemove);
  // The fd is about to be closed; purge any queued update for it first so a
  // later flush cannot resurrect an interest for a reused fd number.
  // Compacted in place: connection close is a hot path under abusive loads.
  PollFd removal{};
  bool have_removal = false;
  auto out = pending_updates_.begin();
  for (const PollFd& update : pending_updates_) {
    if (update.fd != fd) {
      *out++ = update;
    } else if ((update.events & kPollRemove) != 0) {
      removal = update;
      have_removal = true;
    }
  }
  pending_updates_.erase(out, pending_updates_.end());
  if (have_removal) {
    pending_updates_.push_back(removal);
  }
  // Flush immediately: after return the fd number may be reused by accept().
  FlushUpdates();
}

int ThttpdDevPoll::PollAndDispatch(SimTime until) {
  const SimTime wake_at = std::min(until, next_sweep_);
  const auto timeout_ms =
      static_cast<int>((wake_at - kernel().now() + Millis(1) - 1) / Millis(1));
  DvPoll args;
  args.dp_fds = dp_config_.use_mmap_results ? nullptr : result_buffer_.data();
  args.dp_nfds = dp_config_.result_slots;
  args.dp_timeout = timeout_ms < 0 ? 0 : timeout_ms;

  int ready;
  if (dp_config_.use_fused_ioctl && !pending_updates_.empty()) {
    ready = sys().DevPollWritePoll(dpfd_, pending_updates_, &args);
    if (ready == kErrNoMem) {
      // The write half failed before anything was applied: keep the batch
      // for the next pass (no poll happened either).
      ++stats_.devpoll_write_retries;
      return 0;
    }
    pending_updates_.clear();
  } else {
    FlushUpdates();
    ready = sys().DevPollPoll(dpfd_, &args);
  }
  if (ready == kErrIntr) {
    ++stats_.eintr_returns;
    return 0;
  }
  if (ready <= 0) {
    return 0;
  }
  const PollFd* results = dp_config_.use_mmap_results ? result_area_ : result_buffer_.data();
  for (int i = 0; i < ready; ++i) {
    DispatchEvent(results[i].fd, results[i].revents);
  }
  return ready;
}

void ThttpdDevPoll::Run(SimTime until) {
  while (kernel().now() < until && !kernel().stopped()) {
    ++stats_.loop_iterations;
    kernel().Charge(kernel().cost().server_loop_overhead, ChargeCat::kServerLoop);
    MaybeSweep();
    PollAndDispatch(until);
  }
}

}  // namespace scio
