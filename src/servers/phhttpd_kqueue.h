// phhttpd re-architected around the kqueue-style filter core.
//
// The RT-signal phhttpd (src/servers/phhttpd.cc) pays one sigwaitinfo() trap
// per event and needs a probe-after-arm dance against the edge race plus an
// overflow recovery ladder. The kqueue port keeps phhttpd's event-driven
// shape but gets all three problems solved by the core:
//   - batching: one kevent() flushes the accumulated changelist AND harvests
//     up to a bufferful of events in the same trap (the paper's §6 fused
//     ioctl, grown up);
//   - the arm race: EV_ADD runs the filter at registration, so readiness
//     that predates the knote is queued, never lost;
//   - overflow: the active lists are per-knote, not a fixed-depth signal
//     queue — nothing to overflow, no recovery ladder.
//
// Each connection keeps BOTH knotes registered (read enabled first, write
// added disabled); phase changes flip EV_ENABLE/EV_DISABLE, which are
// idempotent — so an ENOMEM-failed batch can be retried verbatim. EV_CLEAR
// (edge-like) is the default, matching how kqueue servers are written.

#ifndef SRC_SERVERS_PHHTTPD_KQUEUE_H_
#define SRC_SERVERS_PHHTTPD_KQUEUE_H_

#include <vector>

#include "src/servers/server_base.h"

namespace scio {

struct PhhttpdKqueueConfig {
  bool ev_clear = true;   // EV_CLEAR on connection knotes (edge-like)
  int event_slots = 4096; // kevent eventlist size
};

class PhhttpdKqueue : public HttpServerBase {
 public:
  PhhttpdKqueue(Sys* sys, const StaticContent* content, ServerConfig config = ServerConfig{},
                PhhttpdKqueueConfig kq_config = PhhttpdKqueueConfig{});

  // Opens the kqueue and registers the listener's read knote.
  int SetupKqueue();

  int SetupEvents() override { return SetupKqueue() < 0 ? -1 : 0; }

  void Run(SimTime until) override;

  int kqueue_fd() const { return kqfd_; }

 protected:
  void OnConnOpened(int fd) override;
  void OnConnPhaseChanged(int fd, Phase phase) override;
  void OnConnClosing(int fd) override;

  void QueueChange(int fd, int16_t filter, uint16_t flags);
  // One fused kevent (changelist + harvest) + dispatch pass. ENOMEM keeps
  // the batch queued; every entry the server emits is idempotent (EV_ADD
  // modifies in place, EV_ENABLE/EV_DISABLE are flag writes), so the
  // verbatim retry is safe.
  int KeventAndDispatch(SimTime until);

  uint16_t clear_flag() const { return kq_config_.ev_clear ? kEvClear : uint16_t{0}; }

  PhhttpdKqueueConfig kq_config_;
  int kqfd_ = -1;
  std::vector<KEvent> events_;
  std::vector<KEvent> pending_changes_;
  // Server-side bookkeeping: fds whose knotes have actually been installed
  // (their EV_ADD batch was applied). Close deletes knotes only for these;
  // a conn whose ADD is still queued just has the queue purged.
  std::vector<uint8_t> armed_;
};

}  // namespace scio

#endif  // SRC_SERVERS_PHHTTPD_KQUEUE_H_
