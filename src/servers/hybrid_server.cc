#include "src/servers/hybrid_server.h"

#include <algorithm>

namespace scio {

HybridServer::HybridServer(Sys* sys, const StaticContent* content, ServerConfig config,
                           ThttpdDevPollConfig dp_config, HybridServerConfig hybrid_config)
    : ThttpdDevPoll(sys, content, config, dp_config), hybrid_config_(hybrid_config) {
  name_ = "hybrid";
  signal_batch_.resize(static_cast<size_t>(hybrid_config_.signal_batch));
}

void HybridServer::SetupHybrid() {
  policy_.emplace(hybrid_config_.policy, sys().proc().rt_queue_max());
  // sciolint: allow(E1) -- Setup() has already validated listener_fd_
  (void)sys().ArmAsync(listener_fd_, hybrid_config_.rt_signo);
}

void HybridServer::OnConnOpened(int fd) {
  ThttpdDevPoll::OnConnOpened(fd);  // maintain the interest set concurrently
  // sciolint: allow(E1) -- fd was accepted this iteration; arming cannot fail
  (void)sys().ArmAsync(fd, hybrid_config_.rt_signo);
  // Same post-arm probe as phhttpd: data that raced ahead of the fcntl()
  // raised no signal (in polling mode the level-triggered scan would catch
  // it, but signal mode would starve the connection).
  HandleReadable(fd);
}

void HybridServer::UpdatePolicy(bool overflowed) {
  const EventMode before = policy_->mode();
  policy_->Update(sys().proc().rt_queue_length(), overflowed, kernel().now());
  if (policy_->mode() != before) {
    ++stats_.mode_switches;
    kernel().TraceInstant(
        TraceEventType::kModeSwitch,
        policy_->mode() == EventMode::kSignals ? "hybrid_to_signals"
                                               : "hybrid_to_polling",
        static_cast<int32_t>(sys().proc().rt_queue_length()),
        overflowed ? 1 : 0);
  }
}

void HybridServer::RunSignalIteration(SimTime until) {
  const SimTime wake_at = std::min(until, next_sweep_);
  const auto timeout_ms =
      static_cast<int>((wake_at - kernel().now() + Millis(1) - 1) / Millis(1));
  const int n = sys().SigTimedWait4(signal_batch_, timeout_ms < 0 ? 0 : timeout_ms);
  bool overflowed = false;
  for (int i = 0; i < n; ++i) {
    const SigInfo& si = signal_batch_[static_cast<size_t>(i)];
    if (si.signo == kSigIo) {
      // Overflow: events were lost. The interest set is already in the
      // kernel, so recovery is just "let DP_POLL tell us the truth".
      ++stats_.overflow_recoveries;
      overflowed = true;
      continue;
    }
    if (si.fd == listener_fd_) {
      DrainAccepts();
      continue;
    }
    DispatchEvent(si.fd, si.band == 0 ? kPollIn : si.band);
  }
  if (overflowed) {
    // sciolint: allow(E1) -- the flushed-signal count is irrelevant by design
    (void)sys().FlushRtSignals();
    UpdatePolicy(/*overflowed=*/true);
    PollAndDispatch(until);  // pick up everything the flush discarded
    return;
  }
  UpdatePolicy(/*overflowed=*/false);
}

void HybridServer::Run(SimTime until) {
  while (kernel().now() < until && !kernel().stopped()) {
    ++stats_.loop_iterations;
    MaybeSweep();
    FlushUpdates();  // interest set stays current in both modes

    if (policy_->mode() == EventMode::kSignals) {
      RunSignalIteration(until);
      continue;
    }
    // Polling mode: signals still accrue (connections stay armed) — discard
    // them cheaply and let the level-triggered scan find the work. Their
    // queue length still drives the switch-back decision.
    kernel().Charge(kernel().cost().server_loop_overhead, ChargeCat::kServerLoop);
    UpdatePolicy(/*overflowed=*/sys().proc().sigio_pending());
    if (sys().proc().rt_queue_length() > 0 || sys().proc().sigio_pending()) {
      // sciolint: allow(E1) -- discarding is the point; the scan finds the work
      (void)sys().FlushRtSignals();
    }
    PollAndDispatch(until);
  }
}

}  // namespace scio
