#include "src/servers/thttpd_epoll.h"

#include <algorithm>

namespace scio {

ThttpdEpoll::ThttpdEpoll(Sys* sys, const StaticContent* content, ServerConfig config,
                         ThttpdEpollConfig ep_config)
    : HttpServerBase(sys, content, config), ep_config_(ep_config) {
  name_ = ep_config_.edge_triggered ? "thttpd-epoll-et" : "thttpd-epoll";
}

int ThttpdEpoll::SetupEpoll() {
  epfd_ = sys().OpenEpoll();
  if (epfd_ < 0) {
    return epfd_;
  }
  events_.resize(static_cast<size_t>(ep_config_.event_slots));
  CtlOrQueue(EpollOp::kAdd, listener_fd_, kPollIn);
  return epfd_;
}

void ThttpdEpoll::CtlOrQueue(EpollOp op, int fd, PollEvents events) {
  const uint16_t flags = fd == listener_fd_ ? uint16_t{0} : conn_flags();
  if (sys().EpollCtl(epfd_, op, fd, events, flags) == kErrNoMem) {
    // Interest-slab growth failed: queue the mutation and retry before the
    // next wait. Only ADD can allocate, so the retry cannot double-apply.
    ++stats_.devpoll_write_retries;
    pending_ctls_.push_back(PendingCtl{op, fd, events});
  }
}

void ThttpdEpoll::RetryPending() {
  if (pending_ctls_.empty()) {
    return;
  }
  std::vector<PendingCtl> retry;
  retry.swap(pending_ctls_);
  for (const PendingCtl& ctl : retry) {
    if (ctl.fd != listener_fd_ && !HasConn(ctl.fd)) {
      continue;  // connection closed while the ctl was queued
    }
    CtlOrQueue(ctl.op, ctl.fd, ctl.events);
  }
}

void ThttpdEpoll::OnConnOpened(int fd) { CtlOrQueue(EpollOp::kAdd, fd, kPollIn); }

void ThttpdEpoll::OnConnPhaseChanged(int fd, Phase phase) {
  CtlOrQueue(EpollOp::kMod, fd, phase == Phase::kWriting ? kPollOut : kPollIn);
}

void ThttpdEpoll::OnConnClosing(int fd) {
  // Purge any queued mutation for the fd first: its number may be reused by
  // the very next accept, and a late-retried ADD would bind the wrong file.
  pending_ctls_.erase(
      std::remove_if(pending_ctls_.begin(), pending_ctls_.end(),
                     [fd](const PendingCtl& ctl) { return ctl.fd == fd; }),
      pending_ctls_.end());
  // DEL before close is proper usage; the core would also drop the interest
  // on its own at the next harvest (it follows the file, not the number).
  if (sys().EpollCtl(epfd_, EpollOp::kDel, fd, 0) != 0) {
    // Never registered (its ADD was still queued on ENOMEM): nothing to do.
  }
}

int ThttpdEpoll::PollAndDispatch(SimTime until) {
  RetryPending();
  const SimTime wake_at = std::min(until, next_sweep_);
  auto timeout_ms =
      static_cast<int>((wake_at - kernel().now() + Millis(1) - 1) / Millis(1));
  if (timeout_ms < 0) {
    timeout_ms = 0;
  }
  const int ready = sys().EpollWait(epfd_, events_.data(),
                                    static_cast<int>(events_.size()), timeout_ms);
  if (ready == kErrIntr) {
    ++stats_.eintr_returns;
    return 0;
  }
  if (ready <= 0) {
    return 0;
  }
  for (int i = 0; i < ready; ++i) {
    DispatchEvent(events_[static_cast<size_t>(i)].fd,
                  events_[static_cast<size_t>(i)].revents);
  }
  return ready;
}

void ThttpdEpoll::Run(SimTime until) {
  while (kernel().now() < until && !kernel().stopped()) {
    ++stats_.loop_iterations;
    kernel().Charge(kernel().cost().server_loop_overhead, ChargeCat::kServerLoop);
    MaybeSweep();
    PollAndDispatch(until);
  }
}

}  // namespace scio
