// AdaptiveDefense: server-side graceful degradation against ingress attacks.
//
// The seed servers already degrade gracefully under *resource* pressure
// (fd-watermark hysteresis, pressure reaps). This controller closes the loop
// against *adversarial* pressure: it watches cheap kernel signals — SYN-queue
// occupancy and overflows, refused-connection deltas, fd-table fill — and
// walks a small tier ladder:
//
//   tier 0  calm      no rules, no cookies; zero cost on the benign path.
//   tier 1  pressure  syncookies on; the hottest SYN source band (if one
//                     band dominates) gets a front-inserted RATE_LIMIT rule;
//                     servers reap connections that sit in the read phase
//                     past a request deadline (the slowloris killer: dripping
//                     bytes resets idle timers but cannot reset its age).
//   tier 2  sustained hot-band rules harden from RATE_LIMIT to DROP.
//
// De-escalation is hysteretic: a tier is shed only after `calm_ticks` quiet
// ticks, so the ladder doesn't flap at the attack edge. Every decision is a
// pure function of simulation state, so defended runs stay bit-identical.
//
// One defense instance can serve several workers (SMP): each worker reports
// its own fd fill through Tick(), and the controller acts on the worst one;
// listener shards are registered with AddListener so cookie toggles and
// occupancy checks cover the whole SO_REUSEPORT group.

#ifndef SRC_SERVERS_DEFENSE_H_
#define SRC_SERVERS_DEFENSE_H_

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "src/kernel/sim_kernel.h"
#include "src/net/filter_chain.h"
#include "src/net/listener.h"

namespace scio {

struct DefenseConfig {
  // Minimum spacing between control decisions; the effective cadence is the
  // slower of this and the callers' sweep interval (Tick rides MaybeSweep).
  SimDuration tick_interval = Millis(500);
  // Pressure signals (any one trips the tick):
  double synq_pressure_frac = 0.8;       // half-open queue fill fraction
  uint64_t refused_delta_threshold = 10; // refusals since the last tick
  double fd_pressure_frac = 0.9;         // worst reported fd-table fill
  uint64_t drop_delta_threshold = 50;    // chain drops since the last tick
  // A SYN source band is "hot" when it carried at least this share of the
  // SYNs seen since the last tick (and at least min_band_syns of them).
  double band_share = 0.5;
  uint64_t min_band_syns = 50;
  // Tier-1 rate limit applied to a hot band.
  double band_rate_per_sec = 200.0;
  double band_burst = 64.0;
  // Bands overlapping [0, protected_src_below) are never rule targets. That
  // is the real ephemeral range, where benign clients are indistinguishable
  // from in-band abuse (e.g. a slowloris herd): a band rule there would
  // blocklist the server's own legitimate address space. In-band pressure is
  // handled by cookies and the request-deadline reap instead.
  int protected_src_below = 1 << 16;
  // Consecutive calm ticks before shedding one tier.
  int calm_ticks = 4;
  // Pressure ticks at tier 1 before hardening hot bands to DROP.
  int sustain_ticks = 3;
  // Connections still reading their request after this long are reaped while
  // the defense is engaged (tier >= 1). Benign requests finish in
  // milliseconds; only drip-fed ones grow this old.
  SimDuration request_deadline = Seconds(2);
};

struct DefenseStats {
  uint64_t ticks = 0;
  uint64_t pressure_ticks = 0;
  uint64_t escalations = 0;
  uint64_t deescalations = 0;
  uint64_t band_rules_installed = 0;
  uint64_t band_rules_hardened = 0;  // RATE_LIMIT replaced by DROP
  uint64_t band_rules_removed = 0;
  uint64_t tier_peak = 0;

  std::vector<std::pair<std::string, uint64_t>> ToRows() const;
};

class AdaptiveDefense {
 public:
  AdaptiveDefense(SimKernel* kernel, IngressFilterChain* chain,
                  DefenseConfig config = DefenseConfig{});
  AdaptiveDefense(const AdaptiveDefense&) = delete;
  AdaptiveDefense& operator=(const AdaptiveDefense&) = delete;

  // Register a listener (one per SO_REUSEPORT shard) for cookie toggles and
  // SYN-queue occupancy checks.
  void AddListener(std::shared_ptr<SimListener> listener);

  // One control opportunity; callers invoke this from their timer sweep with
  // their own fd-table fill fraction. Cheaper than one rule traversal when
  // the interval hasn't elapsed (the worst fd report is still retained).
  void Tick(double fd_frac);

  int tier() const { return tier_; }
  const DefenseConfig& config() const { return config_; }
  const DefenseStats& stats() const { return stats_; }

 private:
  struct BandRule {
    int rule_id = 0;
    bool hardened = false;  // true once the rule is a DROP
  };

  bool ReadPressure();
  FilterRule MakeBandRule(int band, bool harden) const;
  // `bands` is the per-band SYN window taken at the top of the tick.
  void InstallBandRules(const std::vector<std::pair<int, uint64_t>>& bands,
                        bool harden);
  void Escalate();
  void Deescalate();
  void SetCookies(bool on);

  SimKernel* kernel_;
  IngressFilterChain* chain_;
  DefenseConfig config_;
  std::vector<std::shared_ptr<SimListener>> listeners_;
  SimTime next_tick_ = 0;
  double pending_fd_frac_ = 0.0;  // worst fd fill reported since the last tick
  int tier_ = 0;
  int calm_streak_ = 0;
  int pressure_streak_ = 0;
  uint64_t last_refused_ = 0;
  uint64_t last_overflows_ = 0;
  uint64_t last_filter_drops_ = 0;
  // Ordered by band so rule installation order is deterministic (D2).
  // sciolint: allow(P1) -- keyed by traffic band (handful of entries), not by fd
  std::map<int, BandRule> band_rules_;
  DefenseStats stats_;
};

}  // namespace scio

#endif  // SRC_SERVERS_DEFENSE_H_
