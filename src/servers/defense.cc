#include "src/servers/defense.h"

#include <algorithm>

namespace scio {

std::vector<std::pair<std::string, uint64_t>> DefenseStats::ToRows() const {
  return {
      {"defense.ticks", ticks},
      {"defense.pressure_ticks", pressure_ticks},
      {"defense.escalations", escalations},
      {"defense.deescalations", deescalations},
      {"defense.band_rules_installed", band_rules_installed},
      {"defense.band_rules_hardened", band_rules_hardened},
      {"defense.band_rules_removed", band_rules_removed},
      {"defense.tier_peak", tier_peak},
  };
}

AdaptiveDefense::AdaptiveDefense(SimKernel* kernel, IngressFilterChain* chain,
                                 DefenseConfig config)
    : kernel_(kernel), chain_(chain), config_(config) {}

void AdaptiveDefense::AddListener(std::shared_ptr<SimListener> listener) {
  listeners_.push_back(std::move(listener));
}

bool AdaptiveDefense::ReadPressure() {
  const KernelStats& stats = kernel_->stats();
  const uint64_t refused_delta = stats.connections_refused - last_refused_;
  const uint64_t overflow_delta = stats.net_syn_backlog_overflows - last_overflows_;
  const uint64_t drops_now = stats.filter_drops + stats.filter_rate_limit_drops;
  const uint64_t drop_delta = drops_now - last_filter_drops_;
  last_refused_ = stats.connections_refused;
  last_overflows_ = stats.net_syn_backlog_overflows;
  last_filter_drops_ = drops_now;

  double synq_frac = 0.0;
  for (const std::shared_ptr<SimListener>& listener : listeners_) {
    const double cap = static_cast<double>(listener->syn_config().max_half_open);
    if (cap > 0) {
      synq_frac = std::max(
          synq_frac, static_cast<double>(listener->syn_backlog_depth()) / cap);
    }
  }

  // Chain drops counting as pressure is what keeps the ladder engaged while
  // an attack is being successfully absorbed: without it, a working defense
  // makes the raw signals go quiet, the tier unwinds, and the attack storms
  // back in — a control-loop flap with the attacker as the oscillator.
  return synq_frac >= config_.synq_pressure_frac || overflow_delta > 0 ||
         refused_delta > config_.refused_delta_threshold ||
         pending_fd_frac_ >= config_.fd_pressure_frac ||
         drop_delta > config_.drop_delta_threshold;
}

void AdaptiveDefense::Tick(double fd_frac) {
  pending_fd_frac_ = std::max(pending_fd_frac_, fd_frac);
  if (kernel_->now() < next_tick_) {
    return;
  }
  next_tick_ = kernel_->now() + config_.tick_interval;
  ++stats_.ticks;
  kernel_->Charge(kernel_->cost().defense_tick, ChargeCat::kTimerSweep);
  // Decay half-open occupancy before reading it, so a queue the flood has
  // abandoned doesn't read as pressure forever.
  for (const std::shared_ptr<SimListener>& listener : listeners_) {
    listener->ReapHalfOpen();
  }

  // Consume the band window every tick, pressure or not: the hot-band signal
  // must be one tick-interval fresh, or the first pressure tick reads a
  // window stretching back to the last attack and sees mostly benign SYNs.
  const std::vector<std::pair<int, uint64_t>> bands =
      chain_ != nullptr ? chain_->TakeBandCounts()
                        : std::vector<std::pair<int, uint64_t>>{};
  const bool pressure = ReadPressure();
  pending_fd_frac_ = 0.0;

  if (pressure) {
    ++stats_.pressure_ticks;
    calm_streak_ = 0;
    ++pressure_streak_;
    if (tier_ == 0) {
      Escalate();
    } else if (tier_ == 1 && pressure_streak_ >= config_.sustain_ticks) {
      Escalate();
    }
    InstallBandRules(bands, /*harden=*/tier_ >= 2);
  } else {
    pressure_streak_ = 0;
    if (tier_ > 0 && ++calm_streak_ >= config_.calm_ticks) {
      Deescalate();
      calm_streak_ = 0;
    }
  }
}

void AdaptiveDefense::Escalate() {
  ++tier_;
  ++stats_.escalations;
  stats_.tier_peak = std::max<uint64_t>(stats_.tier_peak, static_cast<uint64_t>(tier_));
  if (tier_ == 1) {
    SetCookies(true);
  }
}

void AdaptiveDefense::Deescalate() {
  --tier_;
  ++stats_.deescalations;
  if (tier_ <= 1) {
    // Soften hardened bands back to rate limits; at tier 0 remove them all
    // and turn cookies off, restoring the zero-cost calm path.
    for (auto& [band, rule] : band_rules_) {
      if (chain_ == nullptr) {
        break;
      }
      chain_->Remove(rule.rule_id);
      if (tier_ >= 1) {
        rule = {chain_->InsertFront(MakeBandRule(band, /*harden=*/false)), false};
      } else {
        ++stats_.band_rules_removed;
      }
    }
    if (tier_ == 0) {
      band_rules_.clear();
      SetCookies(false);
    }
  }
}

FilterRule AdaptiveDefense::MakeBandRule(int band, bool harden) const {
  FilterRule rule;
  rule.label = harden ? "defense-drop" : "defense-limit";
  const int width = chain_ != nullptr ? chain_->band_width() : 4096;
  rule.src_lo = band * width;
  rule.src_hi = rule.src_lo + width;
  rule.on_connect = true;
  rule.on_packet = false;
  if (harden) {
    rule.verdict = FilterVerdict::kDrop;
  } else {
    rule.verdict = FilterVerdict::kRateLimit;
    rule.rate_per_sec = config_.band_rate_per_sec;
    rule.burst = config_.band_burst;
  }
  return rule;
}

void AdaptiveDefense::InstallBandRules(
    const std::vector<std::pair<int, uint64_t>>& bands, bool harden) {
  if (chain_ == nullptr) {
    return;
  }
  uint64_t total = 0;
  for (const auto& [band, count] : bands) {
    total += count;
  }
  const int width = chain_->band_width();
  for (const auto& [band, count] : bands) {
    // Never blocklist the protected (ephemeral) range: benign clients live
    // there, so a hot band below the floor means in-band abuse that only the
    // cookie/reap half of the ladder can handle.
    if (band * width < config_.protected_src_below) {
      continue;
    }
    if (count < config_.min_band_syns ||
        static_cast<double>(count) < config_.band_share * static_cast<double>(total)) {
      continue;
    }
    auto it = band_rules_.find(band);
    if (it == band_rules_.end()) {
      band_rules_[band] = {chain_->InsertFront(MakeBandRule(band, harden)), harden};
      ++stats_.band_rules_installed;
    } else if (harden && !it->second.hardened) {
      chain_->Remove(it->second.rule_id);
      it->second = {chain_->InsertFront(MakeBandRule(band, /*harden=*/true)), true};
      ++stats_.band_rules_hardened;
    }
  }
}

void AdaptiveDefense::SetCookies(bool on) {
  for (const std::shared_ptr<SimListener>& listener : listeners_) {
    listener->set_syncookies(on);
  }
}

}  // namespace scio
