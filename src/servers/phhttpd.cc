#include "src/servers/phhttpd.h"

#include <algorithm>

namespace scio {

Phhttpd::Phhttpd(Sys* sys, const StaticContent* content, ServerConfig config,
                 PhhttpdConfig ph_config)
    : HttpServerBase(sys, content, config), ph_config_(ph_config) {
  name_ = "phhttpd";
}

void Phhttpd::SetupSignals() {
  // sciolint: allow(E1) -- Setup() has already validated listener_fd_
  (void)sys().ArmAsync(listener_fd_, ph_config_.rt_signo);
}

void Phhttpd::OnConnOpened(int fd) {
  // fcntl(F_SETFL, O_NONBLOCK) — charged as one extra fcntl — plus
  // F_SETOWN/F_SETSIG inside ArmAsync.
  ++kernel().stats().syscalls;
  ++kernel().stats().fcntls;
  kernel().Charge(kernel().cost().syscall_entry + kernel().cost().fcntl_extra,
                  ChargeCat::kSyscallEntry);
  // sciolint: allow(E1) -- fd was accepted this iteration; arming cannot fail
  (void)sys().ArmAsync(fd, ph_config_.rt_signo);
  // Classic edge-notification race: bytes that arrived between the SYN and
  // the fcntl() raised no signal (nothing was armed yet), so a signal-driven
  // server must probe the socket once right after arming or those
  // connections starve.
  HandleReadable(fd);
}

bool Phhttpd::HandleSignal(const SigInfo& si) {
  if (si.signo == kSigIo) {
    return true;  // queue overflow; Run() drives the recovery
  }
  if (si.fd == listener_fd_) {
    DrainAccepts();
    return false;
  }
  // The siginfo carries the same information as a pollfd (band == revents),
  // but it is only a hint about a past state (§6) — the connection may have
  // moved on or closed. DispatchEvent tolerates both.
  DispatchEvent(si.fd, si.band == 0 ? kPollIn : si.band);
  return false;
}

void Phhttpd::EnterPollFallback() {
  poll_fallback_ = true;
  ++stats_.mode_switches;
  kernel().TraceInstant(TraceEventType::kModeSwitch, "phhttpd_poll_fallback",
                        static_cast<int32_t>(conns_.size()));
  // Flush pending RT signals by resetting handlers to SIG_DFL (§2); a full
  // poll() pass afterwards discovers any activity the flush discarded.
  // sciolint: allow(E1) -- the flushed-signal count is irrelevant by design
  (void)sys().FlushRtSignals();
  // §6: "the thread managing the RT signal queue passes all of its current
  // connections, including its listener socket, to its poll sibling, via a
  // special UNIX domain socket ... one at a time."
  kernel().Charge(kernel().cost().rt_overflow_handoff_per_conn *
                      static_cast<SimDuration>(conns_.size() + 1),
                  ChargeCat::kOverflowHandoff);
  // phhttpd's recovery "completely rebuilds its poll interest set ...
  // negating any benefit of maintaining interest set state" (§6); from here
  // on every loop iteration pays the rebuild. The sockets stay armed for RT
  // signals (nothing disarms them), so the queue keeps refilling and must be
  // re-flushed every iteration — see Run().
}

void Phhttpd::RunPollIteration(SimTime until, int timeout_override_ms) {
  // clear() keeps the allocation, so after the connection count peaks the
  // per-iteration rebuild performs no heap traffic.
  pollfds_.clear();
  pollfds_.reserve(conns_.size() + 1);
  pollfds_.push_back(PollFd{listener_fd_, kPollIn, 0});
  conns_.ForEach([this](int fd, const Conn& conn) {
    pollfds_.push_back(PollFd{fd, conn.phase == Phase::kWriting ? kPollOut : kPollIn, 0});
  });
  kernel().Charge(kernel().cost().poll_userspace_rebuild_per_fd *
                      static_cast<SimDuration>(pollfds_.size()),
                  ChargeCat::kPollfdRebuild);
  int timeout_ms = timeout_override_ms;
  if (timeout_ms < 0) {
    const SimTime wake_at = std::min(until, next_sweep_);
    timeout_ms = static_cast<int>((wake_at - kernel().now() + Millis(1) - 1) / Millis(1));
    if (timeout_ms < 0) {
      timeout_ms = 0;
    }
  }
  const int ready = sys().Poll(pollfds_, timeout_ms);
  if (ready == kErrIntr) {
    ++stats_.eintr_returns;  // next loop pass rebuilds and retries
    return;
  }
  if (ready <= 0) {
    return;
  }
  for (const PollFd& pfd : pollfds_) {
    if (pfd.revents != 0) {
      DispatchEvent(pfd.fd, pfd.revents);
    }
  }
}

void Phhttpd::Run(SimTime until) {
  while (kernel().now() < until && !kernel().stopped()) {
    ++stats_.loop_iterations;
    MaybeSweep();

    if (poll_fallback_) {
      kernel().Charge(kernel().cost().server_loop_overhead, ChargeCat::kServerLoop);
      // Every socket is still armed, so queued (and overflowing) signals
      // keep accumulating; drain them or SIGIO fires forever.
      if (sys().proc().HasPendingSignals()) {
        // sciolint: allow(E1) -- discarding is the point; poll() finds the work
        (void)sys().FlushRtSignals();
      }
      RunPollIteration(until);
      continue;
    }

    const SimTime wake_at = std::min(until, next_sweep_);
    const auto timeout_ms =
        static_cast<int>((wake_at - kernel().now() + Millis(1) - 1) / Millis(1));
    std::optional<SigInfo> si = sys().SigWaitInfo(timeout_ms < 0 ? 0 : timeout_ms);
    if (!si.has_value()) {
      continue;
    }
    if (!HandleSignal(*si)) {
      continue;
    }

    // SIGIO: the RT queue overflowed and events were lost (§2).
    ++stats_.overflow_recoveries;
    if (ph_config_.recovery == OverflowRecovery::kHandoffToPollSibling) {
      EnterPollFallback();
      continue;
    }
    // Single-threaded recovery: reset handlers to SIG_DFL (flushing the
    // queue), then one full poll() pass to discover everything the flush
    // discarded, then back to sigwaitinfo(). Under sustained overload this
    // whole cycle repeats.
    // sciolint: allow(E1) -- the flushed-signal count is irrelevant by design
    (void)sys().FlushRtSignals();
    RunPollIteration(until, /*timeout_override_ms=*/0);
  }
}

}  // namespace scio
