// thttpd ported to the epoll-style successor core.
//
// The /dev/poll port (thttpd_devpoll) batches interest updates into a
// userspace array and writes them before each poll. With the epoll-style
// core there is nothing to batch: epoll_ctl mutates exactly one kernel slab
// slot, so the server issues incremental ctls straight from the connection
// hooks. The wait harvests the kernel ready list — per-wait work is O(ready),
// which is the point fig15 demonstrates against the hinted scan.
//
// kEpollEdge on connection interests gives the edge-triggered variant
// (thttpd-epoll-et); the add/mod-time driver probe inside the core means an
// ET server needs no probe-after-arm dance.

#ifndef SRC_SERVERS_THTTPD_EPOLL_H_
#define SRC_SERVERS_THTTPD_EPOLL_H_

#include <vector>

#include "src/servers/server_base.h"

namespace scio {

struct ThttpdEpollConfig {
  bool edge_triggered = false;  // kEpollEdge on connection interests
  int event_slots = 4096;       // epoll_wait output buffer size
};

class ThttpdEpoll : public HttpServerBase {
 public:
  ThttpdEpoll(Sys* sys, const StaticContent* content, ServerConfig config = ServerConfig{},
              ThttpdEpollConfig ep_config = ThttpdEpollConfig{});

  // Opens the epoll device and registers the listener (level-triggered —
  // DrainAccepts drains the backlog fully either way).
  int SetupEpoll();

  int SetupEvents() override { return SetupEpoll() < 0 ? -1 : 0; }

  void Run(SimTime until) override;

  int epoll_fd() const { return epfd_; }

 protected:
  void OnConnOpened(int fd) override;
  void OnConnPhaseChanged(int fd, Phase phase) override;
  void OnConnClosing(int fd) override;

  // Issue one ctl; on ENOMEM the mutation is queued and retried before the
  // next wait (the interest set stays stale-but-valid meanwhile, like the
  // /dev/poll port's failed write batches).
  void CtlOrQueue(EpollOp op, int fd, PollEvents events);
  void RetryPending();
  // One epoll_wait + dispatch pass; returns number of events handled.
  int PollAndDispatch(SimTime until);

  uint16_t conn_flags() const { return ep_config_.edge_triggered ? kEpollEdge : 0; }

  ThttpdEpollConfig ep_config_;
  int epfd_ = -1;
  std::vector<PollFd> events_;
  struct PendingCtl {
    EpollOp op;
    int fd;
    PollEvents events;
  };
  std::vector<PendingCtl> pending_ctls_;  // ENOMEM retry queue
};

}  // namespace scio

#endif  // SRC_SERVERS_THTTPD_EPOLL_H_
