// thttpd modified to use /dev/poll (paper §5.1).
//
// The interest set lives in the kernel and is maintained *incrementally*:
// connection open/close/phase changes append pollfd updates that are flushed
// with a single write() before each DP_POLL (the re-architecture the paper
// says legacy servers need, §6). Results arrive through the mmap'ed result
// area by default; both the mmap area and the fused write+poll ioctl can be
// toggled for the ablation benches.

#ifndef SRC_SERVERS_THTTPD_DEVPOLL_H_
#define SRC_SERVERS_THTTPD_DEVPOLL_H_

#include <vector>

#include "src/servers/server_base.h"

namespace scio {

struct ThttpdDevPollConfig {
  DevPollOptions devpoll;
  bool use_mmap_results = true;   // ABL-2 off: DP_POLL copies results out
  bool use_fused_ioctl = false;   // ABL-5 on: single write+poll syscall
  int result_slots = 4096;        // DP_ALLOC size
};

class ThttpdDevPoll : public HttpServerBase {
 public:
  ThttpdDevPoll(Sys* sys, const StaticContent* content, ServerConfig config = ServerConfig{},
                ThttpdDevPollConfig dp_config = ThttpdDevPollConfig{});

  // Opens /dev/poll, sets up the result mapping, registers the listener.
  // Returns the device fd, or a negative errno-style code on failure.
  int SetupDevPoll();

  int SetupEvents() override { return SetupDevPoll() < 0 ? -1 : 0; }

  void Run(SimTime until) override;

  int devpoll_fd() const { return dpfd_; }

 protected:
  void OnConnOpened(int fd) override;
  void OnConnPhaseChanged(int fd, Phase phase) override;
  void OnConnClosing(int fd) override;

  void QueueUpdate(int fd, PollEvents events);
  // Returns false when the write failed (ENOMEM); the batch stays queued and
  // is retried before the next poll.
  bool FlushUpdates();
  // One DP_POLL + dispatch pass; returns number of events handled.
  int PollAndDispatch(SimTime until);

  ThttpdDevPollConfig dp_config_;
  int dpfd_ = -1;
  PollFd* result_area_ = nullptr;
  std::vector<PollFd> result_buffer_;   // used when mmap is disabled
  std::vector<PollFd> pending_updates_;
};

}  // namespace scio

#endif  // SRC_SERVERS_THTTPD_DEVPOLL_H_
