// Shared machinery for the simulated web servers.
//
// All three of the paper's servers (§5) serve static content over HTTP/1.0
// with the same per-connection state machine — accept, read+parse request,
// write response, close — and a periodic idle-connection timeout sweep. They
// differ only in how they learn about events, which each subclass provides.

#ifndef SRC_SERVERS_SERVER_BASE_H_
#define SRC_SERVERS_SERVER_BASE_H_

#include <cstdint>
#include <string>

#include "src/core/sys.h"
#include "src/http/request_parser.h"
#include "src/http/static_content.h"
#include "src/net/listener.h"
#include "src/servers/conn_table.h"

namespace scio {

class AdaptiveDefense;

struct ServerConfig {
  int listen_backlog = 128;
  size_t read_chunk = 4096;
  // Half-open (SYN) queue sizing for the listener this server creates via
  // Setup(). Shared listeners installed with AdoptListener keep whatever
  // their creator configured.
  SynBacklogConfig syn_backlog;
  // thttpd's default idle timeouts are in the minutes; inactive connections
  // are expected to survive (their clients trickle bytes to stay alive).
  SimDuration idle_timeout = Seconds(60);
  SimDuration timer_sweep_interval = Seconds(1);
  // Graceful degradation under descriptor pressure: above the high watermark
  // (fraction of the fd table) the server stops accepting and reaps idle
  // connections on the much shorter pressure timeout; accepting resumes only
  // below the low watermark (hysteresis, so it doesn't flap at the edge).
  double fd_high_watermark = 0.92;
  double fd_low_watermark = 0.85;
  SimDuration pressure_idle_timeout = Seconds(2);
};

struct ServerStats {
  uint64_t connections_accepted = 0;
  uint64_t responses_sent = 0;
  uint64_t not_found_sent = 0;
  uint64_t bad_requests = 0;
  uint64_t idle_timeouts = 0;
  uint64_t peer_closes = 0;
  uint64_t accept_emfile = 0;
  uint64_t stale_events = 0;     // events for already-closed connections
  uint64_t loop_iterations = 0;
  uint64_t overflow_recoveries = 0;  // RT signal queue overflows handled
  uint64_t mode_switches = 0;        // hybrid server transitions
  uint64_t accepts_throttled = 0;    // accepts skipped under fd pressure
  uint64_t pressure_reaps = 0;       // idle conns closed early under pressure
  uint64_t eintr_returns = 0;        // waits interrupted and retried
  uint64_t write_errors = 0;         // EPIPE/EBADF on response writes
  uint64_t devpoll_write_retries = 0;  // interest batches requeued on ENOMEM
  uint64_t accept_retries = 0;       // sweep-driven re-probes of a stalled backlog
  uint64_t deadline_reaps = 0;       // conns reaped for outliving the request deadline
};

class HttpServerBase {
 public:
  HttpServerBase(Sys* sys, const StaticContent* content, ServerConfig config);
  virtual ~HttpServerBase() = default;

  // Create the listening socket. Must be called once before Run().
  // Returns the listener fd, or a negative errno-style code on failure.
  int Setup();

  // Alternative to Setup() for worker processes: install an already-bound
  // shared listener (fork/SCM_RIGHTS inheritance) instead of creating one.
  // Returns the installed fd, or a negative errno-style code.
  int AdoptListener(const std::shared_ptr<SimListener>& listener);

  // Post-listener event-plane setup (open /dev/poll, arm signals, ...).
  // Servers whose RunBenchmark-era Run() does this lazily override it so a
  // WorkerPool can prepare every worker before any of them runs. Returns 0
  // or a negative errno-style code.
  virtual int SetupEvents() { return 0; }

  // Run the event loop until simulated time `until` (or kernel stop).
  virtual void Run(SimTime until) = 0;

  int listener_fd() const { return listener_fd_; }
  const ServerStats& stats() const { return stats_; }

  // Attach the shared graceful-degradation controller (borrowed; may be
  // null). The timer sweep reports fd pressure to it and, while it is
  // engaged, reaps connections that outlive its request deadline.
  void set_defense(AdaptiveDefense* defense) { defense_ = defense; }
  size_t open_connections() const { return conns_.size(); }
  // Bytes of slab storage the connection table holds (ledger cross-check).
  size_t conn_table_bytes() const { return conns_.tracked_bytes(); }
  const std::string& name() const { return name_; }

 protected:
  // Connection state lives in ConnTable's slab (src/servers/conn_table.h);
  // the aliases keep subclass code reading as before.
  using Phase = ConnPhase;
  using Conn = scio::Conn;

  // --- hooks for the event-acquisition subclasses -----------------------------
  virtual void OnConnOpened(int fd) { (void)fd; }
  virtual void OnConnPhaseChanged(int fd, Phase phase) {
    (void)fd;
    (void)phase;
  }
  virtual void OnConnClosing(int fd) { (void)fd; }

  // --- shared connection handling -----------------------------------------------
  // Accept every queued connection. Returns number accepted.
  int DrainAccepts();
  // Handle readability on a connection; returns false if the conn was closed.
  bool HandleReadable(int fd);
  // Continue a partial response write; returns false if the conn was closed.
  bool HandleWritable(int fd);
  // Dispatch one readiness report.
  void DispatchEvent(int fd, PollEvents revents);
  // Close and forget a connection.
  void CloseConn(int fd);
  // Close connections idle longer than the timeout. Charges per-connection
  // sweep costs. Returns number closed.
  int SweepTimeouts();
  // Run the sweep if the interval has elapsed.
  void MaybeSweep();
  // True while the fd table is too full to accept (hysteretic; see
  // ServerConfig watermarks). Updating the flag is a side effect.
  bool UnderFdPressure();
  // Shed idle connections using the aggressive pressure timeout.
  int PressureReap();
  // Close connections still reading their request `deadline` after accept.
  int DeadlineReap(SimDuration deadline);

  bool HasConn(int fd) const { return conns_.Contains(fd); }

  Sys& sys() { return *sys_; }
  SimKernel& kernel() { return sys_->kernel(); }

  std::string name_ = "http-server";
  Sys* sys_;
  const StaticContent* content_;
  ServerConfig config_;
  int listener_fd_ = -1;
  // Slab keyed by fd with intrusive activity/reading lists. Poll-set
  // rebuilds iterate ascending-fd; reaps walk only the expired list prefix
  // and close in ascending-fd order — simulation state never depends on
  // address order (sciolint D2), so seeded runs stay bit-identical.
  ConnTable conns_;
  ServerStats stats_;
  AdaptiveDefense* defense_ = nullptr;
  SimTime next_sweep_ = 0;
  bool fd_pressure_ = false;
  // True when DrainAccepts bailed out (EMFILE or fd pressure) with the
  // backlog possibly non-empty. Signal-driven servers never get another
  // listener edge for those queued connections — the enqueue-time signal was
  // already consumed — so MaybeSweep re-probes the backlog until it drains.
  bool accept_stalled_ = false;

 private:
  // Build and start sending the response for a completed request.
  void StartResponse(int fd, Conn& conn);
  // Close connections idle longer than `timeout`; `pressure` attributes the
  // closes to pressure_reaps instead of idle_timeouts.
  int ReapIdle(SimDuration timeout, bool pressure);
};

}  // namespace scio

#endif  // SRC_SERVERS_SERVER_BASE_H_
