// /dev/poll: the paper's primary contribution (§3).
//
// One DevPollDevice instance corresponds to one open of /dev/poll — a process
// may open the device several times to build independent interest sets. The
// three optimizations are individually toggleable so the ablation benches can
// attribute their effects:
//
//   §3.1  kernel-state interest sets — always on (that's the device);
//   §3.2  driver hints via backmapping lists — DevPollOptions::hints_enabled;
//   §3.3  mmap'ed result area           — DP_ALLOC + Mmap(), used by DP_POLL
//                                          when DvPoll::dp_fds is null.
//
// Extensions the paper proposes as future work (§6), also implemented:
//   - a fused interest-update + poll ioctl (IoctlDpWritePoll);
//   - hinted-first scanning: maintain an active list so a scan touches only
//     hinted or cached-ready interests instead of the whole set
//     (DevPollOptions::hinted_first_scan). This is the germ of epoll.

#ifndef SRC_CORE_DEVPOLL_H_
#define SRC_CORE_DEVPOLL_H_

#include <memory>
#include <span>
#include <vector>

#include "src/core/interest_table.h"
#include "src/kernel/file.h"
#include "src/kernel/poll_types.h"
#include "src/kernel/process.h"
#include "src/kernel/sim_kernel.h"
#include "src/kernel/wait_queue.h"

namespace scio {

struct DevPollOptions {
  bool hints_enabled = true;
  // Solaris OR's a written events field into the existing interest; the
  // paper's Linux implementation replaces it (§3.1). Off = replace.
  bool solaris_or_semantics = false;
  // §6 future work: scan only hinted / cached-ready interests.
  bool hinted_first_scan = false;
  // Wake-one sleep (WQ_FLAG_EXCLUSIVE, the 2.3 herd fix): DP_POLL sleeps as
  // an exclusive waiter on EVERY interest's wait queue — hintable ones too,
  // since the hint path's broadcast Wake() would otherwise rouse all sharers
  // of a file. The extra wait-queue churn is charged honestly; sharding is
  // the mode that avoids both the herd and the churn.
  bool exclusive_wait = false;
};

class DevPollDevice : public File {
 public:
  DevPollDevice(SimKernel* kernel, Process* owner, DevPollOptions options = DevPollOptions{});
  ~DevPollDevice() override;

  // --- the device's syscall surface -------------------------------------------
  // write(2): add / modify / remove (POLLREMOVE) interests. Returns the
  // number of bytes consumed (updates.size() * sizeof(PollFd)).
  long Write(std::span<const PollFd> updates);

  // ioctl(DP_ALLOC): reserve a result area able to hold `nfds` results.
  // Must precede Mmap(). Returns 0, or -1 if nfds is non-positive.
  int IoctlDpAlloc(int nfds);

  // mmap(2) of the result area. Returns nullptr unless DP_ALLOC succeeded.
  PollFd* Mmap();

  // munmap(2). Returns 0, or -1 if not mapped.
  int Munmap();

  // ioctl(DP_POLL): wait for events. With args->dp_fds == nullptr, results
  // are deposited in the mmap'ed area (no copy-out charge). Returns the
  // number of ready descriptors, 0 on timeout, -1 on bad arguments.
  int IoctlDpPoll(DvPoll* args);

  // Fused update+wait (§6 future work): one syscall charge for both.
  int IoctlDpWritePoll(std::span<const PollFd> updates, DvPoll* args);

  // --- File interface ----------------------------------------------------------
  // The device itself reports readable when a scan would find events — this
  // lets a /dev/poll fd be composed into other event loops.
  PollEvents PollMask() const override;
  void OnFdClose() override;

  // --- backmap side (driver context) -------------------------------------------
  void MarkHint(int fd, PollEvents mask);

  // --- introspection ------------------------------------------------------------
  size_t interest_count() const { return table_.size(); }
  size_t bucket_count() const { return table_.bucket_count(); }
  const DevPollOptions& options() const { return options_; }
  Process* owner() const { return owner_; }
  int result_capacity() const { return static_cast<int>(result_area_.size()); }
  bool mapped() const { return mapped_; }
  const Interest* FindInterest(int fd) const;

 private:
  // Syscall bodies without the trap charge, shared with the fused ioctl.
  long WriteInternal(std::span<const PollFd> updates);
  int PollInternal(DvPoll* args);

  // One pass over the interest set; appends up to `max` ready pollfds.
  // `charge_copyout` is false when writing to the shared mapping.
  int ScanOnce(PollFd* out, int max, bool charge_copyout);

  // Evaluate a single interest; returns its revents (0 if not ready).
  PollEvents EvaluateInterest(Interest& interest);

  // (Re)bind an interest to the file currently installed under its fd.
  void BindInterest(Interest& interest);

  void PushActive(Interest& interest);

  SimKernel* kernel_;
  Process* owner_;
  DevPollOptions options_;
  InterestHashTable table_;
  std::vector<PollFd> result_area_;
  bool alloc_done_ = false;
  bool mapped_ = false;
  bool closed_ = false;
  std::vector<int> active_list_;  // hinted-first mode scan worklist
  // Ping-pong partner of active_list_: ScanOnce drains into it so both
  // buffers keep their capacity across scans (no per-scan allocation).
  std::vector<int> scan_worklist_;
  // Pooled wait-queue entries for the non-hintable sleep path; grown on
  // demand, reused across sleep/wake cycles.
  std::vector<std::unique_ptr<Waiter>> waiter_pool_;
};

}  // namespace scio

#endif  // SRC_CORE_DEVPOLL_H_
