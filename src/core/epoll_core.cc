#include "src/core/epoll_core.h"

#include "src/kernel/fd_table.h"
#include "src/kernel/sys_errno.h"

namespace scio {

EpollDevice::EpollDevice(SimKernel* kernel, Process* owner)
    : File(kernel),
      owner_(owner),
      items_(),
      ready_(&items_),
      waiter_([proc = owner] { proc->Wake(); }) {
  items_.set_limit(static_cast<size_t>(owner->fds().max_fds()));
  items_.set_mem_ledger(&kernel->mem(), MemSys::kInterests);
}

EpollDevice::~EpollDevice() {
  if (!closed_) {
    OnFdClose();
  }
}

void EpollDevice::OnFdClose() {
  closed_ = true;
  waiter_.Detach();
  // Collect first: ForEach forbids releasing slots mid-walk.
  std::vector<size_t> live;
  items_.ForEach([&](size_t idx, EpollItem&) { live.push_back(idx); });
  for (size_t idx : live) {
    RemoveItem(idx);
  }
}

void EpollDevice::RemoveItem(size_t idx) {
  EpollItem& item = items_.At(idx);
  if (item.ready.linked()) {
    ready_.Unlink(static_cast<int32_t>(idx));
  }
  if (std::shared_ptr<File> file = item.file.lock()) {
    file->RemoveStatusListener(this);
  }
  item.file.reset();  // the parked slot must not pin the file
  items_.ReleaseAt(idx);
}

void EpollDevice::PushReady(size_t idx, bool interrupt) {
  EpollItem& item = items_.At(idx);
  if (item.disabled || item.ready.linked()) {
    return;  // dormant oneshot, or already pending — no re-queue
  }
  ready_.PushBack(static_cast<int32_t>(idx));
  ++kernel()->stats().epoll_ready_enqueues;
  if (interrupt) {
    kernel()->ChargeDebt(kernel()->cost().epoll_ready_enqueue, ChargeCat::kEpollReady);
  } else {
    kernel()->Charge(kernel()->cost().epoll_ready_enqueue, ChargeCat::kEpollReady);
  }
  // wake_up(): all composed pollers plus exactly one exclusive Wait sleeper.
  poll_wait().WakeOne();
}

void EpollDevice::ProbeAtRegister(size_t idx) {
  EpollItem& item = items_.At(idx);
  std::shared_ptr<File> file = item.file.lock();
  if (file == nullptr) {
    return;
  }
  // One driver poll at registration (process context): pre-existing
  // readiness seeds the ready list, so edge-triggered users never need the
  // probe-after-arm dance the RT-signal servers do.
  kernel()->Charge(kernel()->cost().poll_driver_poll_per_fd, ChargeCat::kDriverPoll);
  const PollEvents mask =
      file->PollMask() & (item.events | kPollAlwaysReported);
  if (mask != 0) {
    PushReady(idx, /*interrupt=*/false);
  }
}

int EpollDevice::Ctl(EpollOp op, int fd, PollEvents events, uint16_t flags) {
  SyscallTraceScope trace(kernel(), "epoll_ctl", fd);
  KernelStats& stats = kernel()->stats();
  ++stats.syscalls;
  ++stats.epoll_ctls;
  kernel()->Charge({{ChargeCat::kSyscallEntry, kernel()->cost().syscall_entry},
                    {ChargeCat::kEpollCtl, kernel()->cost().epoll_ctl_extra}});
  if (closed_ || fd < 0 || static_cast<size_t>(fd) >= items_.limit()) {
    return -1;
  }
  const size_t idx = static_cast<size_t>(fd);
  std::shared_ptr<File> current = owner_->fds().Get(fd);

  switch (op) {
    case EpollOp::kAdd: {
      if (current == nullptr || items_.Contains(idx)) {
        return -1;  // EBADF / EEXIST
      }
      // Interest-slab growth allocates kernel memory: fails under an
      // injected ENOMEM window, before any state changes.
      if (FaultPlane* fault = kernel()->fault();
          fault != nullptr && fault->InjectInterestEnomem()) {
        return kErrNoMem;
      }
      EpollItem& item = items_.EmplaceAt(idx);
      item.events = events;
      item.flags = flags;
      item.disabled = false;
      item.file = current;
      current->AddStatusListener(this);
      ProbeAtRegister(idx);
      return 0;
    }
    case EpollOp::kMod: {
      EpollItem* item = items_.Get(idx);
      if (item == nullptr) {
        return -1;  // ENOENT
      }
      if (current == nullptr || current != item->file.lock()) {
        // The fd no longer names the registered file: the stale interest is
        // dropped (it follows the dead file) and the MOD fails.
        ++stats.epoll_stale_drops;
        RemoveItem(idx);
        return -1;
      }
      item->events = events;
      item->flags = flags;
      item->disabled = false;  // MOD re-arms a fired oneshot
      ProbeAtRegister(idx);
      return 0;
    }
    case EpollOp::kDel: {
      if (!items_.Contains(idx)) {
        return -1;  // ENOENT
      }
      RemoveItem(idx);
      return 0;
    }
  }
  return -1;
}

int EpollDevice::HarvestOnce(PollFd* out, int max) {
  KernelStats& stats = kernel()->stats();
  const CostModel& cost = kernel()->cost();
  // Visit at most the entries present at entry: a level-triggered interest
  // moved to the back must not be revisited in the same harvest.
  size_t budget = ready_.size();
  int n = 0;
  int32_t cur = ready_.front();
  while (budget-- > 0 && cur != kNilIndex && n < max) {
    const int32_t next = ready_.NextOf(cur);  // capture before any unlink
    const size_t idx = static_cast<size_t>(cur);
    EpollItem& item = items_.At(idx);
    kernel()->Charge(cost.epoll_wait_per_event, ChargeCat::kEpollWait);

    std::shared_ptr<File> file = owner_->fds().Get(static_cast<int>(idx));
    if (file == nullptr || file != item.file.lock()) {
      // fd closed or reused since the enqueue: the interest dies with the
      // file it was bound to.
      ++stats.epoll_stale_drops;
      RemoveItem(idx);
      cur = next;
      continue;
    }
    // Revalidate against the driver — the ready list is a hint, not truth
    // (a previously queued fd may have been drained by another worker).
    kernel()->Charge(cost.poll_driver_poll_per_fd, ChargeCat::kDriverPoll);
    const PollEvents revents =
        file->PollMask() & (item.events | kPollAlwaysReported);
    if (revents == 0) {
      ++stats.epoll_spurious_ready;
      ready_.Unlink(cur);
      cur = next;
      continue;
    }

    out[n].fd = static_cast<int>(idx);
    out[n].events = item.events;
    out[n].revents = revents;
    ++n;
    ++stats.epoll_events_delivered;
    kernel()->Charge(cost.epoll_copyout_per_event, ChargeCat::kResultCopyout);

    if ((item.flags & kEpollOneshot) != 0) {
      // Delivered once; dormant until EPOLL_CTL_MOD re-arms it.
      item.disabled = true;
      ready_.Unlink(cur);
    } else if ((item.flags & kEpollEdge) != 0) {
      // Edge-triggered: consumed; only a fresh driver notification re-queues.
      ready_.Unlink(cur);
    } else {
      // Level-triggered: stays ready until the driver says otherwise. Move
      // to the back so a truncated harvest round-robins instead of starving
      // the tail.
      ready_.MoveToBack(cur);
    }
    cur = next;
  }
  kernel()->TraceInstant(TraceEventType::kScan, "epoll_harvest",
                         static_cast<int32_t>(ready_.size()), n);
  return n;
}

// sciolint: hotpath
int EpollDevice::Wait(PollFd* out, int max, int timeout_ms) {
  SyscallTraceScope trace(kernel(), "epoll_wait", max);
  KernelStats& stats = kernel()->stats();
  const CostModel& cost = kernel()->cost();
  ++stats.syscalls;
  ++stats.epoll_waits;
  kernel()->Charge(cost.syscall_entry, ChargeCat::kSyscallEntry);
  if (closed_ || out == nullptr || max <= 0) {
    return -1;
  }
  const SimTime deadline =
      timeout_ms < 0 ? kSimTimeNever : kernel()->now() + Millis(timeout_ms);
  while (true) {
    const int ready = HarvestOnce(out, max);
    if (ready > 0 || timeout_ms == 0 || kernel()->stopped()) {
      trace.set_result(ready);
      return ready;
    }
    if (kernel()->now() >= deadline) {
      trace.set_result(0);
      return 0;
    }
    // Sleep as ONE exclusive waiter on the device's own queue — this is the
    // structural win over poll(): one wait-queue registration per sleep,
    // regardless of interest-set size, and a wake_up() rouses one sharer.
    // The waiter is a pooled member (constructed with the device) so this
    // loop stays allocation-free.
    poll_wait().AddExclusive(&waiter_);
    ++stats.wait_exclusive_adds;
    ++stats.poll_waitqueue_adds;
    kernel()->Charge(cost.poll_waitqueue_add_per_fd, ChargeCat::kWaitqueue);
    // sciolint: allow(E1) -- woken-vs-timeout is re-derived from the reharvest
    (void)kernel()->BlockProcess(*owner_, deadline);
    waiter_.Detach();
    ++stats.poll_waitqueue_removes;
    kernel()->Charge(cost.poll_waitqueue_remove_per_fd, ChargeCat::kWaitqueue);
    if (FaultPlane* fault = kernel()->fault();
        fault != nullptr && fault->InjectEintr()) {
      trace.set_result(kErrIntr);
      return kErrIntr;
    }
  }
}

PollEvents EpollDevice::PollMask() const {
  // Composable: the epoll fd reads ready when a wait would return now.
  return ready_.empty() ? static_cast<PollEvents>(0) : kPollIn;
}

void EpollDevice::OnFileStatus(File& file, PollEvents mask) {
  if (closed_) {
    return;
  }
  const int fd = file.fd_number();
  if (fd < 0) {
    return;
  }
  EpollItem* item = items_.Get(static_cast<size_t>(fd));
  if (item == nullptr || item->file.lock().get() != &file) {
    return;  // fd number reused; not our registration
  }
  if ((mask & (item->events | kPollAlwaysReported)) == 0) {
    return;  // state change the interest doesn't care about
  }
  PushReady(static_cast<size_t>(fd), /*interrupt=*/true);
}

}  // namespace scio
