#include "src/core/poll_syscall.h"

#include <memory>
#include <vector>

#include "src/kernel/sys_errno.h"

namespace scio {

int PollSyscall::ScanOnce(std::span<PollFd> fds) {
  KernelStats& stats = kernel_->stats();
  const CostModel& cost = kernel_->cost();
  const uint64_t scanned_before = stats.poll_fds_scanned;
  int ready = 0;
  for (PollFd& pfd : fds) {
    ++stats.poll_fds_scanned;
    pfd.revents = 0;
    if (pfd.fd < 0) {
      continue;  // negative fds are ignored, as in poll(2)
    }
    std::shared_ptr<File> file = proc_->fds().Get(pfd.fd);
    if (file == nullptr) {
      pfd.revents = kPollNval;
      ++ready;
      continue;
    }
    // Stock poll() has no hints: the driver poll callback runs for every
    // descriptor on every scan, no matter how idle it is.
    ++stats.poll_driver_calls;
    kernel_->Charge(cost.poll_driver_poll_per_fd, ChargeCat::kDriverPoll);
    pfd.revents = file->PollMask() & (pfd.events | kPollAlwaysReported);
    if (pfd.revents != 0) {
      ++ready;
    }
  }
  kernel_->TraceInstant(TraceEventType::kScan, "poll_scan",
                        static_cast<int32_t>(stats.poll_fds_scanned - scanned_before),
                        ready);
  return ready;
}

int PollSyscall::Poll(std::span<PollFd> fds, int timeout_ms) {
  SyscallTraceScope trace(kernel_, "poll", static_cast<int32_t>(fds.size()));
  KernelStats& stats = kernel_->stats();
  const CostModel& cost = kernel_->cost();
  ++stats.syscalls;
  ++stats.poll_calls;
  // Copy the entire interest set into the kernel (§3.1's first complaint).
  kernel_->Charge({{ChargeCat::kSyscallEntry, cost.syscall_entry},
                   {ChargeCat::kPollfdCopyin,
                    cost.poll_copyin_per_fd * static_cast<SimDuration>(fds.size())}});

  const SimTime deadline =
      timeout_ms < 0 ? kSimTimeNever : kernel_->now() + Millis(timeout_ms);
  while (true) {
    const int ready = ScanOnce(fds);
    if (ready > 0 || timeout_ms == 0 || kernel_->stopped()) {
      stats.poll_results_copied += static_cast<uint64_t>(ready);
      kernel_->Charge(cost.poll_copyout_per_ready * static_cast<SimDuration>(ready),
                      ChargeCat::kResultCopyout);
      trace.set_result(ready);
      return ready;
    }
    if (kernel_->now() >= deadline) {
      return 0;
    }

    // Sleep: enqueue a waiter on every polled file, then tear them all down
    // on wake — the wait-queue churn of §6. The Waiter objects are pooled;
    // only the queue registrations churn, which is what the model charges.
    size_t used = 0;
    for (const PollFd& pfd : fds) {
      if (pfd.fd < 0) {
        continue;
      }
      std::shared_ptr<File> file = proc_->fds().Get(pfd.fd);
      if (file == nullptr) {
        continue;
      }
      if (used == waiter_pool_.size()) {
        // sciolint: allow(H1) -- bounded one-time pool growth to high-water
        waiter_pool_.push_back(std::make_unique<Waiter>(
            [proc = proc_] { proc->Wake(); }));
      }
      if (options_.exclusive_wait) {
        file->poll_wait().AddExclusive(waiter_pool_[used].get());
        ++stats.wait_exclusive_adds;
      } else {
        file->poll_wait().Add(waiter_pool_[used].get());
      }
      ++used;
      ++stats.poll_waitqueue_adds;
      if (options_.charge_waitqueue) {
        kernel_->Charge(cost.poll_waitqueue_add_per_fd, ChargeCat::kWaitqueue);
      }
    }
    // sciolint: allow(E1) -- woken-vs-timeout is re-derived from the rescan
    (void)kernel_->BlockProcess(*proc_, deadline);
    stats.poll_waitqueue_removes += used;
    if (options_.charge_waitqueue) {
      kernel_->Charge(cost.poll_waitqueue_remove_per_fd *
                          static_cast<SimDuration>(used),
                      ChargeCat::kWaitqueue);
    }
    for (size_t i = 0; i < used; ++i) {
      waiter_pool_[i]->Detach();
    }
    if (FaultPlane* fault = kernel_->fault();
        fault != nullptr && fault->InjectEintr()) {
      trace.set_result(kErrIntr);
      return kErrIntr;  // a signal interrupted the sleep; caller must retry
    }
  }
}

}  // namespace scio
