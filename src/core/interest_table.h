// The in-kernel interest set: a hash table of pollfd interests keyed by fd.
//
// Matches the paper's description (§3.1) exactly: open chaining, fast
// average-case lookup/insert/delete, and "for simplicity, when the average
// bucket size is two, the number of buckets in the hash table is doubled.
// The hash table is never shrunk."
//
// Each Interest also carries the §3.2 hint machinery: the hint bit set by the
// driver's backmap traversal, and the cached result of the last driver poll
// callback.
//
// Pointer stability: entries live in individually-owned nodes chained per
// bucket, so an `Interest*`/`Interest&` obtained from Find/FindOrInsert stays
// valid across later inserts — including ones that double the bucket count —
// until that fd is erased. (The previous layout stored Interest by value in
// bucket vectors, so any growth moved every entry and silently invalidated
// references held across a write() batch.)

#ifndef SRC_CORE_INTEREST_TABLE_H_
#define SRC_CORE_INTEREST_TABLE_H_

#include <cassert>
#include <cstdint>
#include <memory>
#include <utility>
#include <vector>

#include "src/core/backmap.h"
#include "src/kernel/file.h"
#include "src/kernel/poll_types.h"
#include "src/trace/mem_ledger.h"

namespace scio {

struct Interest {
  int fd = -1;
  PollEvents events = 0;

  // The file this interest was bound to at write() time. If the fd is closed
  // the pointer expires and DP_POLL reports POLLNVAL; if the fd number was
  // reused, DP_POLL rebinds to the new file.
  std::weak_ptr<File> file;

  // --- §3.2 hint state ---------------------------------------------------------
  bool hint = true;        // driver flagged a change; starts true (never polled)
  PollEvents cached = 0;   // last driver poll result
  bool queued = false;     // on the active scan list (hinted-first mode)
  bool hintable = false;   // the bound driver participates in hinting

  // Owns the registration of this interest on the file's listener list.
  std::unique_ptr<BackmapLink> link;
};

class InterestHashTable {
 public:
  explicit InterestHashTable(size_t initial_buckets = 8);

  ~InterestHashTable() {
    if (mem_ != nullptr) {
      mem_->Sub(MemSys::kInterests, tracked_bytes());
    }
  }

  InterestHashTable(InterestHashTable&& other) noexcept { *this = std::move(other); }
  InterestHashTable& operator=(InterestHashTable&& other) noexcept {
    if (this == &other) {
      return *this;
    }
    if (mem_ != nullptr) {
      mem_->Sub(MemSys::kInterests, tracked_bytes());
    }
    buckets_ = std::move(other.buckets_);
    slab_ = std::move(other.slab_);
    free_ = other.free_;
    size_ = other.size_;
    resize_count_ = other.resize_count_;
    mem_ = other.mem_;  // the moved-to table inherits the registered bytes
    other.buckets_.clear();
    other.slab_.clear();
    other.free_ = nullptr;
    other.size_ = 0;
    other.mem_ = nullptr;
    return *this;
  }

  // Returns the interest for fd, or nullptr. The pointer stays valid across
  // later inserts (see header comment) until Erase(fd).
  Interest* Find(int fd);

  // Returns the interest for fd, inserting a default one if absent.
  // `inserted` reports whether a new entry was created. The reference stays
  // valid across later inserts until Erase(fd).
  Interest& FindOrInsert(int fd, bool* inserted);

  // Returns true if an entry was removed.
  bool Erase(int fd);

  size_t size() const { return size_; }
  size_t bucket_count() const { return buckets_.size(); }
  uint64_t resize_count() const { return resize_count_; }

  // Bytes of node slab + bucket array — what the MemSys::kInterests ledger
  // row reports for this table.
  size_t tracked_bytes() const {
    return slab_.size() * sizeof(Node) + buckets_.size() * sizeof(Node*);
  }

  // Account this table's storage in the kernel byte ledger.
  void set_mem_ledger(MemLedger* ledger) {
    if (mem_ != nullptr) {
      mem_->Sub(MemSys::kInterests, tracked_bytes());
    }
    mem_ = ledger;
    if (mem_ != nullptr) {
      mem_->Add(MemSys::kInterests, tracked_bytes());
    }
  }

  // Visit every interest (scan order: bucket order, insertion order within a
  // bucket). The callback must not insert or erase — enforced by assert in
  // debug builds.
  template <typename Fn>
  void ForEach(Fn&& fn) {
    iterating_ = true;
    for (Node* node : buckets_) {
      for (; node != nullptr; node = node->next) {
        fn(node->interest);
      }
    }
    iterating_ = false;
  }

 private:
  // Nodes are owned by slab_ (never freed until the table dies) and chained
  // per bucket; erased nodes park on a free list for reuse.
  struct Node {
    Interest interest;
    Node* next = nullptr;
  };

  size_t BucketOf(int fd) const { return static_cast<size_t>(fd) & (buckets_.size() - 1); }
  Node* TakeNode();
  void MaybeGrow();

  std::vector<Node*> buckets_;  // bucket count is a power of two
  std::vector<std::unique_ptr<Node>> slab_;
  Node* free_ = nullptr;
  size_t size_ = 0;
  uint64_t resize_count_ = 0;
  bool iterating_ = false;  // ForEach reentrancy guard (asserted in debug)
  MemLedger* mem_ = nullptr;
};

}  // namespace scio

#endif  // SRC_CORE_INTEREST_TABLE_H_
