// Classic poll(2), as stock Linux 2.2 implemented it.
//
// This is the baseline the paper improves on (§3): every call copies the
// whole interest set into the kernel, invokes each file's driver poll
// callback, and — when it has to sleep — adds and removes a wait-queue entry
// per file per sleep/wake cycle (the churn Brown fingered in §6). Every one
// of those operations is charged to the cost model.

#ifndef SRC_CORE_POLL_SYSCALL_H_
#define SRC_CORE_POLL_SYSCALL_H_

#include <memory>
#include <span>
#include <vector>

#include "src/kernel/poll_types.h"
#include "src/kernel/process.h"
#include "src/kernel/sim_kernel.h"
#include "src/kernel/wait_queue.h"

namespace scio {

struct PollSyscallOptions {
  // ABL-6: disable to measure how much of poll()'s cost is wait-queue churn.
  bool charge_waitqueue = true;
  // Register sleep waiters as exclusive (WQ_FLAG_EXCLUSIVE): a wake_up() on
  // a shared file rouses only one sleeping poller instead of the whole herd.
  // The 2.3-era wake-one fix, off by default (2.2 semantics).
  bool exclusive_wait = false;
};

class PollSyscall {
 public:
  PollSyscall(SimKernel* kernel, Process* proc, PollSyscallOptions options = PollSyscallOptions{})
      : kernel_(kernel), proc_(proc), options_(options) {}

  // poll(2): fills revents for each entry; returns the number of entries
  // with non-zero revents (POLLNVAL counts, as in Linux), or 0 on timeout.
  // timeout_ms < 0 waits forever.
  [[nodiscard]] int Poll(std::span<PollFd> fds, int timeout_ms);

 private:
  // One scan over the set; returns the ready count.
  int ScanOnce(std::span<PollFd> fds);

  SimKernel* kernel_;
  Process* proc_;
  PollSyscallOptions options_;
  // Pooled wait-queue entries, reused across sleep/wake cycles. The wake
  // closures capture the Process* by value (PollSyscall objects get
  // move-assigned into SysCalls; the process they serve never moves).
  std::vector<std::unique_ptr<Waiter>> waiter_pool_;
};

}  // namespace scio

#endif  // SRC_CORE_POLL_SYSCALL_H_
