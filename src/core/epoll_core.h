// Epoll-style event core: what the paper's /dev/poll design became.
//
// History's answer to the paper's §6 future work was not a faster scan — it
// was removing the scan entirely. The epoll-style core keeps the kernel-state
// interest set (§3.1) but replaces the hinted *scan* with a kernel-resident
// **ready list**: the driver-side status callback links the interest straight
// onto a list, and a wait harvests only that list. Idle descriptors cost
// nothing per wait — the per-wait work is O(ready), not O(interest set).
//
//   - interest slots live in a PagedStore indexed by fd (the million-
//     connection storage plane), charged to MemSys::kInterests;
//   - the ready list is an intrusive IndexList through the slots (8 bytes
//     per membership, insertion-ordered — deterministic);
//   - level-triggered interests are revalidated while they stay ready
//     (exactly /dev/poll's "no ready->not-ready hint" rule, §3.2);
//     edge-triggered interests re-arm only on a fresh driver notification;
//   - kEpollOneshot disables the interest after one delivery until a
//     kEpollCtlMod re-arms it;
//   - a blocking wait sleeps as an *exclusive* waiter on the device's own
//     wait queue, so a driver notification wakes exactly one sleeper
//     (the SMP wake-one fix, applied at the event-core layer).

#ifndef SRC_CORE_EPOLL_CORE_H_
#define SRC_CORE_EPOLL_CORE_H_

#include <memory>
#include <vector>

#include "src/kernel/file.h"
#include "src/kernel/paged_slab.h"
#include "src/kernel/poll_types.h"
#include "src/kernel/process.h"
#include "src/kernel/sim_kernel.h"
#include "src/kernel/wait_queue.h"

namespace scio {

enum class EpollOp { kAdd, kMod, kDel };

// Per-interest behaviour flags (epoll_ctl's EPOLLET / EPOLLONESHOT).
inline constexpr uint16_t kEpollEdge = 0x1;
inline constexpr uint16_t kEpollOneshot = 0x2;

class EpollDevice : public File, public StatusListener {
 public:
  EpollDevice(SimKernel* kernel, Process* owner);
  ~EpollDevice() override;

  // --- the device's syscall surface -------------------------------------------
  // epoll_ctl(2). Returns 0; -1 on a bad fd / missing or duplicate interest;
  // kErrNoMem when an injected allocation failure hits an Add.
  int Ctl(EpollOp op, int fd, PollEvents events, uint16_t flags = 0);

  // epoll_wait(2): harvest up to `max` ready descriptors into `out`
  // (fd/events/revents, same shape the servers already dispatch). Returns
  // the count, 0 on timeout, kErrIntr when interrupted, -1 on bad args.
  int Wait(PollFd* out, int max, int timeout_ms);

  // --- File interface ----------------------------------------------------------
  // Readable when a wait would return immediately (composable, like the
  // /dev/poll device).
  PollEvents PollMask() const override;
  void OnFdClose() override;

  // --- driver side (interrupt context) -----------------------------------------
  void OnFileStatus(File& file, PollEvents mask) override;

  // --- introspection ------------------------------------------------------------
  size_t interest_count() const { return items_.size(); }
  size_t ready_count() const { return ready_.size(); }
  bool Watching(int fd) const { return items_.Contains(static_cast<size_t>(fd)); }
  Process* owner() const { return owner_; }

 private:
  struct EpollItem {
    PollEvents events = 0;
    uint16_t flags = 0;
    // Oneshot fired; interest dormant until a kEpollCtlMod re-arms it.
    bool disabled = false;
    std::weak_ptr<File> file;
    IndexLink ready;
  };

  // Link the item onto the ready list (idempotent) and wake one sleeper.
  // `interrupt` selects debt vs process-context charging.
  void PushReady(size_t idx, bool interrupt);
  // Evaluate the current driver mask at interest-registration time and seed
  // the ready list — epoll polls the file once at add/mod so pre-existing
  // readiness is never lost (the race the RT-signal servers probe around).
  void ProbeAtRegister(size_t idx);
  // Drop an interest whose fd no longer resolves to the bound file: epoll
  // interests follow the file, not the descriptor number.
  void RemoveItem(size_t idx);
  int HarvestOnce(PollFd* out, int max);

  Process* owner_;
  PagedStore<EpollItem> items_;
  IndexList<EpollItem, &EpollItem::ready> ready_;
  bool closed_ = false;
  // Pooled wait-queue entry for the blocking path; constructed eagerly so
  // Wait() never allocates (H1: the harvest/wait loop is a hot path).
  Waiter waiter_;
};

}  // namespace scio

#endif  // SRC_CORE_EPOLL_CORE_H_
