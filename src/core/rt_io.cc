#include "src/core/rt_io.h"

namespace scio {

int RtIo::ArmAsync(int fd, int signo) {
  KernelStats& stats = kernel_->stats();
  stats.syscalls += 2;
  stats.fcntls += 2;
  kernel_->Charge(2 * (kernel_->cost().syscall_entry + kernel_->cost().fcntl_extra));
  std::shared_ptr<File> file = proc_->fds().Get(fd);
  if (file == nullptr) {
    return -1;
  }
  file->SetAsyncSignal(signo == 0 ? nullptr : proc_, signo);
  return 0;
}

bool RtIo::WaitForSignal(int timeout_ms) {
  const SimTime deadline =
      timeout_ms < 0 ? kSimTimeNever : kernel_->now() + Millis(timeout_ms);
  while (!proc_->HasPendingSignals()) {
    if (kernel_->stopped() || kernel_->now() >= deadline) {
      return false;
    }
    kernel_->BlockProcess(*proc_, deadline);
    if (FaultPlane* fault = kernel_->fault();
        fault != nullptr && fault->InjectEintr()) {
      // A non-queued signal interrupted the wait: surfaces to the caller as
      // an empty wait result, which every signal loop already retries.
      return false;
    }
  }
  return true;
}

std::optional<SigInfo> RtIo::SigWaitInfo(int timeout_ms) {
  KernelStats& stats = kernel_->stats();
  ++stats.syscalls;
  kernel_->Charge(kernel_->cost().syscall_entry + kernel_->cost().rt_sigwaitinfo_extra);
  if (!WaitForSignal(timeout_ms)) {
    return std::nullopt;
  }
  std::optional<SigInfo> si = proc_->DequeueSignal();
  if (si.has_value()) {
    if (si->signo == kSigIo) {
      ++stats.sigio_deliveries;
    } else {
      ++stats.rt_signals_delivered;
    }
  }
  return si;
}

int RtIo::SigTimedWait4(std::span<SigInfo> out, int timeout_ms) {
  KernelStats& stats = kernel_->stats();
  ++stats.syscalls;
  kernel_->Charge(kernel_->cost().syscall_entry + kernel_->cost().rt_sigwaitinfo_extra);
  if (out.empty() || !WaitForSignal(timeout_ms)) {
    return 0;
  }
  int n = 0;
  while (n < static_cast<int>(out.size())) {
    std::optional<SigInfo> si = proc_->DequeueSignal();
    if (!si.has_value()) {
      break;
    }
    if (si->signo == kSigIo) {
      ++stats.sigio_deliveries;
    } else {
      ++stats.rt_signals_delivered;
    }
    out[n++] = *si;
    if (n > 1) {
      kernel_->Charge(kernel_->cost().rt_sigwait_per_extra_sig);
    }
  }
  return n;
}

size_t RtIo::FlushRtSignals() {
  ++kernel_->stats().syscalls;
  const size_t flushed = proc_->FlushRtSignals();
  // The kernel walks the pending queue freeing each siginfo.
  kernel_->Charge(kernel_->cost().syscall_entry +
                  kernel_->cost().rt_signal_flush_per_sig *
                      static_cast<SimDuration>(flushed));
  return flushed;
}

}  // namespace scio
