#include "src/core/rt_io.h"

namespace scio {

int RtIo::ArmAsync(int fd, int signo) {
  SyscallTraceScope trace(kernel_, "fcntl_setsig", fd);
  KernelStats& stats = kernel_->stats();
  stats.syscalls += 2;
  stats.fcntls += 2;
  kernel_->Charge(2 * (kernel_->cost().syscall_entry + kernel_->cost().fcntl_extra),
                  ChargeCat::kSyscallEntry);
  std::shared_ptr<File> file = proc_->fds().Get(fd);
  if (file == nullptr) {
    return -1;
  }
  file->SetAsyncSignal(signo == 0 ? nullptr : proc_, signo);
  return 0;
}

bool RtIo::WaitForSignal(int timeout_ms) {
  const SimTime deadline =
      timeout_ms < 0 ? kSimTimeNever : kernel_->now() + Millis(timeout_ms);
  while (!proc_->HasPendingSignals()) {
    if (kernel_->stopped() || kernel_->now() >= deadline) {
      return false;
    }
    // sciolint: allow(E1) -- loop re-checks HasPendingSignals and the deadline
    (void)kernel_->BlockProcess(*proc_, deadline);
    if (FaultPlane* fault = kernel_->fault();
        fault != nullptr && fault->InjectEintr()) {
      // A non-queued signal interrupted the wait: surfaces to the caller as
      // an empty wait result, which every signal loop already retries.
      return false;
    }
  }
  return true;
}

std::optional<SigInfo> RtIo::SigWaitInfo(int timeout_ms) {
  SyscallTraceScope trace(kernel_, "sigwaitinfo");
  KernelStats& stats = kernel_->stats();
  ++stats.syscalls;
  kernel_->Charge({{ChargeCat::kSyscallEntry, kernel_->cost().syscall_entry},
                   {ChargeCat::kSignalDequeue, kernel_->cost().rt_sigwaitinfo_extra}});
  if (!WaitForSignal(timeout_ms)) {
    return std::nullopt;
  }
  std::optional<SigInfo> si = proc_->DequeueSignal();
  if (si.has_value()) {
    trace.set_result(si->fd);
    if (si->signo == kSigIo) {
      ++stats.sigio_deliveries;
      kernel_->TraceInstant(TraceEventType::kSignal, "sigio_delivered", si->fd);
    } else {
      ++stats.rt_signals_delivered;
    }
  }
  return si;
}

int RtIo::SigTimedWait4(std::span<SigInfo> out, int timeout_ms) {
  SyscallTraceScope trace(kernel_, "sigtimedwait4");
  KernelStats& stats = kernel_->stats();
  ++stats.syscalls;
  kernel_->Charge({{ChargeCat::kSyscallEntry, kernel_->cost().syscall_entry},
                   {ChargeCat::kSignalDequeue, kernel_->cost().rt_sigwaitinfo_extra}});
  if (out.empty() || !WaitForSignal(timeout_ms)) {
    return 0;
  }
  int n = 0;
  while (n < static_cast<int>(out.size())) {
    std::optional<SigInfo> si = proc_->DequeueSignal();
    if (!si.has_value()) {
      break;
    }
    if (si->signo == kSigIo) {
      ++stats.sigio_deliveries;
      kernel_->TraceInstant(TraceEventType::kSignal, "sigio_delivered", si->fd);
    } else {
      ++stats.rt_signals_delivered;
    }
    out[n++] = *si;
    if (n > 1) {
      // The batch amortizes the trap, not the per-entry work: every entry
      // beyond the first pays the marginal dequeue plus its own siginfo
      // copyout (the first entry's copyout is inside rt_sigwaitinfo_extra).
      kernel_->Charge(kernel_->cost().rt_sigwait_per_extra_sig +
                          kernel_->cost().rt_siginfo_copyout,
                      ChargeCat::kSignalDequeue);
    }
  }
  trace.set_result(n);
  return n;
}

size_t RtIo::FlushRtSignals() {
  SyscallTraceScope trace(kernel_, "sig_flush");
  ++kernel_->stats().syscalls;
  const size_t flushed = proc_->FlushRtSignals();
  // The kernel walks the pending queue freeing each siginfo.
  kernel_->Charge({{ChargeCat::kSyscallEntry, kernel_->cost().syscall_entry},
                   {ChargeCat::kSignalFlush,
                    kernel_->cost().rt_signal_flush_per_sig *
                        static_cast<SimDuration>(flushed)}});
  kernel_->TraceInstant(TraceEventType::kSignal, "rt_flush",
                        static_cast<int32_t>(flushed));
  trace.set_result(static_cast<int32_t>(flushed));
  return flushed;
}

}  // namespace scio
