#include "src/core/interest_table.h"

#include <memory>
#include <utility>

namespace scio {

namespace {
size_t RoundUpPow2(size_t n) {
  size_t p = 1;
  while (p < n) {
    p <<= 1;
  }
  return p;
}
}  // namespace

InterestHashTable::InterestHashTable(size_t initial_buckets)
    : buckets_(RoundUpPow2(initial_buckets < 1 ? 1 : initial_buckets), nullptr) {}

Interest* InterestHashTable::Find(int fd) {
  for (Node* node = buckets_[BucketOf(fd)]; node != nullptr; node = node->next) {
    if (node->interest.fd == fd) {
      return &node->interest;
    }
  }
  return nullptr;
}

InterestHashTable::Node* InterestHashTable::TakeNode() {
  if (free_ != nullptr) {
    Node* node = free_;
    free_ = node->next;
    node->interest = Interest{};  // scrub state left by the previous tenant
    node->next = nullptr;
    return node;
  }
  slab_.push_back(std::make_unique<Node>());
  if (mem_ != nullptr) {
    mem_->Add(MemSys::kInterests, sizeof(Node));
  }
  return slab_.back().get();
}

Interest& InterestHashTable::FindOrInsert(int fd, bool* inserted) {
  if (Interest* found = Find(fd)) {
    *inserted = false;
    return *found;
  }
  assert(!iterating_ && "must not insert during InterestHashTable::ForEach");
  MaybeGrow();
  Node* node = TakeNode();
  node->interest.fd = fd;
  // Append at the tail to preserve insertion order within the bucket (the
  // scan order tests and seeded runs depend on it). Chains average <= 2
  // entries by the doubling rule, so the walk is constant time.
  Node** tail = &buckets_[BucketOf(fd)];
  while (*tail != nullptr) {
    tail = &(*tail)->next;
  }
  *tail = node;
  ++size_;
  *inserted = true;
  return node->interest;
}

bool InterestHashTable::Erase(int fd) {
  assert(!iterating_ && "must not erase during InterestHashTable::ForEach");
  Node** link = &buckets_[BucketOf(fd)];
  while (*link != nullptr) {
    Node* node = *link;
    if (node->interest.fd == fd) {
      *link = node->next;
      node->interest = Interest{};  // release File/BackmapLink refs promptly
      node->next = free_;
      free_ = node;
      --size_;
      return true;
    }
    link = &node->next;
  }
  return false;
}

void InterestHashTable::MaybeGrow() {
  // Paper §3.1: double the bucket count when the average bucket size reaches
  // two; never shrink.
  if (size_ + 1 < buckets_.size() * 2) {
    return;
  }
  std::vector<Node*> old = std::move(buckets_);
  buckets_.assign(old.size() * 2, nullptr);
  ++resize_count_;
  if (mem_ != nullptr) {
    mem_->Add(MemSys::kInterests, old.size() * sizeof(Node*));
  }
  // Rehash by walking old buckets in order and appending to new tails: the
  // relative order of entries sharing a new bucket is preserved, keeping the
  // post-resize scan order identical to the by-value implementation.
  std::vector<Node*> tails(buckets_.size(), nullptr);
  for (Node* node : old) {
    while (node != nullptr) {
      Node* next = node->next;
      const size_t b = BucketOf(node->interest.fd);
      node->next = nullptr;
      if (tails[b] == nullptr) {
        buckets_[b] = node;
      } else {
        tails[b]->next = node;
      }
      tails[b] = node;
      node = next;
    }
  }
}

}  // namespace scio
