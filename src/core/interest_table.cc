#include "src/core/interest_table.h"

#include <utility>

namespace scio {

namespace {
size_t RoundUpPow2(size_t n) {
  size_t p = 1;
  while (p < n) {
    p <<= 1;
  }
  return p;
}
}  // namespace

InterestHashTable::InterestHashTable(size_t initial_buckets)
    : buckets_(RoundUpPow2(initial_buckets < 1 ? 1 : initial_buckets)) {}

Interest* InterestHashTable::Find(int fd) {
  for (auto& interest : buckets_[BucketOf(fd)]) {
    if (interest.fd == fd) {
      return &interest;
    }
  }
  return nullptr;
}

Interest& InterestHashTable::FindOrInsert(int fd, bool* inserted) {
  if (Interest* found = Find(fd)) {
    *inserted = false;
    return *found;
  }
  MaybeGrow();
  auto& bucket = buckets_[BucketOf(fd)];
  bucket.emplace_back();
  bucket.back().fd = fd;
  ++size_;
  *inserted = true;
  return bucket.back();
}

bool InterestHashTable::Erase(int fd) {
  auto& bucket = buckets_[BucketOf(fd)];
  for (auto it = bucket.begin(); it != bucket.end(); ++it) {
    if (it->fd == fd) {
      bucket.erase(it);
      --size_;
      return true;
    }
  }
  return false;
}

void InterestHashTable::MaybeGrow() {
  // Paper §3.1: double the bucket count when the average bucket size reaches
  // two; never shrink.
  if (size_ + 1 < buckets_.size() * 2) {
    return;
  }
  std::vector<std::vector<Interest>> old = std::move(buckets_);
  buckets_.clear();
  buckets_.resize(old.size() * 2);
  ++resize_count_;
  for (auto& bucket : old) {
    for (auto& interest : bucket) {
      buckets_[BucketOf(interest.fd)].push_back(std::move(interest));
    }
  }
}

}  // namespace scio
