#include "src/core/kqueue_core.h"

#include "src/kernel/fd_table.h"
#include "src/kernel/sys_errno.h"

namespace scio {

namespace {
// The poll bits one filter watches (plus the always-reported error bits).
PollEvents FilterMask(int16_t filter) {
  return (filter == kFiltRead ? kPollIn : kPollOut) | kPollAlwaysReported;
}
}  // namespace

KqueueDevice::KqueueDevice(SimKernel* kernel, Process* owner)
    : File(kernel),
      owner_(owner),
      slots_(),
      read_active_(&slots_),
      write_active_(&slots_),
      waiter_([proc = owner] { proc->Wake(); }) {
  slots_.set_limit(static_cast<size_t>(owner->fds().max_fds()));
  slots_.set_mem_ledger(&kernel->mem(), MemSys::kInterests);
}

KqueueDevice::~KqueueDevice() {
  if (!closed_) {
    OnFdClose();
  }
}

void KqueueDevice::OnFdClose() {
  closed_ = true;
  waiter_.Detach();
  std::vector<size_t> live;
  slots_.ForEach([&](size_t idx, KnoteSlot&) { live.push_back(idx); });
  for (size_t idx : live) {
    RemoveSlot(idx);
  }
}

size_t KqueueDevice::knote_count() const {
  size_t n = 0;
  slots_.ForEach([&](size_t, const KnoteSlot& slot) {
    n += (slot.read.registered ? 1 : 0) + (slot.write.registered ? 1 : 0);
  });
  return n;
}

bool KqueueDevice::HasKnote(int fd, int16_t filter) const {
  const KnoteSlot* slot = slots_.Get(static_cast<size_t>(fd));
  if (slot == nullptr) {
    return false;
  }
  return filter == kFiltRead ? slot->read.registered : slot->write.registered;
}

void KqueueDevice::RemoveSlot(size_t idx) {
  KnoteSlot& slot = slots_.At(idx);
  if (slot.read_active.linked()) {
    read_active_.Unlink(static_cast<int32_t>(idx));
  }
  if (slot.write_active.linked()) {
    write_active_.Unlink(static_cast<int32_t>(idx));
  }
  if (std::shared_ptr<File> file = slot.file.lock()) {
    file->RemoveStatusListener(this);
  }
  slot.file.reset();
  slot.read = Knote{};
  slot.write = Knote{};
  slots_.ReleaseAt(idx);
}

void KqueueDevice::ListPushBack(size_t idx, int16_t filter) {
  if (filter == kFiltRead) {
    read_active_.PushBack(static_cast<int32_t>(idx));
  } else {
    write_active_.PushBack(static_cast<int32_t>(idx));
  }
}

void KqueueDevice::ListUnlink(size_t idx, int16_t filter) {
  if (filter == kFiltRead) {
    read_active_.Unlink(static_cast<int32_t>(idx));
  } else {
    write_active_.Unlink(static_cast<int32_t>(idx));
  }
}

void KqueueDevice::ListMoveToBack(size_t idx, int16_t filter) {
  if (filter == kFiltRead) {
    read_active_.MoveToBack(static_cast<int32_t>(idx));
  } else {
    write_active_.MoveToBack(static_cast<int32_t>(idx));
  }
}

void KqueueDevice::DeleteKnote(size_t idx, int16_t filter) {
  KnoteSlot& slot = slots_.At(idx);
  Knote& knote = KnoteFor(slot, filter);
  knote = Knote{};
  IndexLink& link = filter == kFiltRead ? slot.read_active : slot.write_active;
  if (link.linked()) {
    ListUnlink(idx, filter);
  }
  if (!slot.read.registered && !slot.write.registered) {
    RemoveSlot(idx);
  }
}

void KqueueDevice::Activate(size_t idx, int16_t filter, bool interrupt) {
  KnoteSlot& slot = slots_.At(idx);
  Knote& knote = KnoteFor(slot, filter);
  IndexLink& link = filter == kFiltRead ? slot.read_active : slot.write_active;
  if (!knote.registered || !knote.enabled || link.linked()) {
    return;
  }
  ListPushBack(idx, filter);
  ++kernel()->stats().kq_knote_activations;
  if (interrupt) {
    kernel()->ChargeDebt(kernel()->cost().kq_knote_activate, ChargeCat::kKqFilter);
  } else {
    kernel()->Charge(kernel()->cost().kq_knote_activate, ChargeCat::kKqFilter);
  }
  poll_wait().WakeOne();
}

void KqueueDevice::ProbeKnote(size_t idx, int16_t filter) {
  KnoteSlot& slot = slots_.At(idx);
  std::shared_ptr<File> file = slot.file.lock();
  if (file == nullptr) {
    return;
  }
  // One driver poll at registration: readiness that predates the knote is
  // never lost (no probe-after-arm race by construction).
  kernel()->Charge(kernel()->cost().poll_driver_poll_per_fd, ChargeCat::kDriverPoll);
  if ((file->PollMask() & FilterMask(filter)) != 0) {
    Activate(idx, filter, /*interrupt=*/false);
  }
}

int KqueueDevice::ApplyChange(const KEvent& change) {
  KernelStats& stats = kernel()->stats();
  ++stats.kq_changes_applied;
  kernel()->Charge(kernel()->cost().kq_change_per_entry, ChargeCat::kKqRegister);
  const int fd = change.ident;
  if (fd < 0 || static_cast<size_t>(fd) >= slots_.limit() ||
      (change.filter != kFiltRead && change.filter != kFiltWrite)) {
    return -1;
  }
  const size_t idx = static_cast<size_t>(fd);

  if ((change.flags & kEvDelete) != 0) {
    if (!HasKnote(fd, change.filter)) {
      return -1;  // ENOENT
    }
    DeleteKnote(idx, change.filter);
    return 0;
  }

  if ((change.flags & kEvAdd) != 0) {
    std::shared_ptr<File> current = owner_->fds().Get(fd);
    if (current == nullptr) {
      return -1;  // EBADF
    }
    KnoteSlot* slot = slots_.Get(idx);
    if (slot != nullptr && slot->file.lock() != current) {
      // fd reused under live knotes: the old registrations followed the old
      // file; drop them before rebinding.
      RemoveSlot(idx);
      slot = nullptr;
    }
    if (slot == nullptr) {
      if (FaultPlane* fault = kernel()->fault();
          fault != nullptr && fault->InjectInterestEnomem()) {
        return kErrNoMem;
      }
      slot = &slots_.EmplaceAt(idx);
      slot->file = current;
      current->AddStatusListener(this);
    }
    // EV_ADD on an existing knote modifies it in place (kqueue semantics).
    Knote& knote = KnoteFor(*slot, change.filter);
    knote.registered = true;
    knote.enabled = (change.flags & kEvDisable) == 0;
    knote.oneshot = (change.flags & kEvOneshot) != 0;
    knote.clear = (change.flags & kEvClear) != 0;
    if (knote.enabled) {
      ProbeKnote(idx, change.filter);
    }
    return 0;
  }

  // ENABLE / DISABLE without ADD: mutate an existing knote.
  if (!HasKnote(fd, change.filter)) {
    return -1;  // ENOENT
  }
  KnoteSlot& slot = slots_.At(idx);
  Knote& knote = KnoteFor(slot, change.filter);
  if ((change.flags & kEvDisable) != 0) {
    knote.enabled = false;
    IndexLink& link =
        change.filter == kFiltRead ? slot.read_active : slot.write_active;
    if (link.linked()) {
      ListUnlink(idx, change.filter);
    }
  } else if ((change.flags & kEvEnable) != 0) {
    knote.enabled = true;
    ProbeKnote(idx, change.filter);
  }
  return 0;
}

int KqueueDevice::HarvestFilter(int16_t filter, std::span<KEvent> out, int n) {
  KernelStats& stats = kernel()->stats();
  const CostModel& cost = kernel()->cost();
  const bool is_read = filter == kFiltRead;
  auto list_next = [&](int32_t i) {
    return is_read ? read_active_.NextOf(i) : write_active_.NextOf(i);
  };

  size_t budget = is_read ? read_active_.size() : write_active_.size();
  int32_t cur = is_read ? read_active_.front() : write_active_.front();
  while (budget-- > 0 && cur != kNilIndex && n < static_cast<int>(out.size())) {
    const int32_t next = list_next(cur);  // capture before any unlink
    const size_t idx = static_cast<size_t>(cur);
    KnoteSlot& slot = slots_.At(idx);
    Knote& knote = KnoteFor(slot, filter);

    std::shared_ptr<File> file = owner_->fds().Get(static_cast<int>(idx));
    if (file == nullptr || file != slot.file.lock()) {
      // Descriptor closed since activation: the knotes die with the file.
      ++stats.kq_spurious_active;
      kernel()->Charge(cost.kq_filter_eval, ChargeCat::kKqFilter);
      RemoveSlot(idx);
      cur = next;
      continue;
    }
    // Lazy evaluation: activation was a hint; re-run the filter now.
    kernel()->Charge({{ChargeCat::kKqFilter, cost.kq_filter_eval},
                      {ChargeCat::kDriverPoll, cost.poll_driver_poll_per_fd}});
    const PollEvents mask = file->PollMask() & FilterMask(filter);
    if (mask == 0) {
      ++stats.kq_spurious_active;
      ListUnlink(idx, filter);
      cur = next;
      continue;
    }

    KEvent& ev = out[static_cast<size_t>(n)];
    ev.ident = static_cast<int>(idx);
    ev.filter = filter;
    ev.flags = (mask & kPollHup) != 0 ? kEvEof : 0;
    ev.data = 0;
    ++n;
    ++stats.kq_events_delivered;
    kernel()->Charge(cost.kq_copyout_per_event, ChargeCat::kResultCopyout);

    if (knote.oneshot) {
      DeleteKnote(idx, filter);
    } else if (knote.clear) {
      // EV_CLEAR: delivered state is cleared; only a fresh driver
      // notification reactivates the knote.
      ListUnlink(idx, filter);
    } else {
      // Level-triggered: stays active while the filter holds; rotate so a
      // truncated eventlist round-robins instead of starving the tail.
      ListMoveToBack(idx, filter);
    }
    cur = next;
  }
  return n;
}

int KqueueDevice::HarvestOnce(std::span<KEvent> out) {
  int n = HarvestFilter(kFiltRead, out, 0);
  n = HarvestFilter(kFiltWrite, out, n);
  kernel()->TraceInstant(TraceEventType::kScan, "kq_harvest",
                         static_cast<int32_t>(active_count()), n);
  return n;
}

// sciolint: hotpath
int KqueueDevice::Kevent(std::span<const KEvent> changes,
                         std::span<KEvent> events, int timeout_ms) {
  SyscallTraceScope trace(kernel(), "kevent",
                          static_cast<int32_t>(changes.size()));
  KernelStats& stats = kernel()->stats();
  const CostModel& cost = kernel()->cost();
  ++stats.syscalls;
  ++stats.kq_kevents;
  // The paper's §6 fused update+wait, made first-class: ONE trap covers both
  // the changelist application and the harvest.
  kernel()->Charge({{ChargeCat::kSyscallEntry, cost.syscall_entry},
                    {ChargeCat::kSyscallEntry, cost.kq_kevent_extra}});
  if (closed_) {
    return -1;
  }
  for (const KEvent& change : changes) {
    if (const int rc = ApplyChange(change); rc != 0) {
      trace.set_result(rc);
      return rc;
    }
  }
  if (events.empty()) {
    trace.set_result(0);
    return 0;  // pure changelist application
  }

  const SimTime deadline =
      timeout_ms < 0 ? kSimTimeNever : kernel()->now() + Millis(timeout_ms);
  while (true) {
    const int ready = HarvestOnce(events);
    if (ready > 0 || timeout_ms == 0 || kernel()->stopped()) {
      trace.set_result(ready);
      return ready;
    }
    if (kernel()->now() >= deadline) {
      trace.set_result(0);
      return 0;
    }
    // One exclusive waiter on the kqueue's own queue (wake-one), same
    // structural win as the epoll core. The waiter is a pooled member
    // (constructed with the device) so this loop stays allocation-free.
    poll_wait().AddExclusive(&waiter_);
    ++stats.wait_exclusive_adds;
    ++stats.poll_waitqueue_adds;
    kernel()->Charge(cost.poll_waitqueue_add_per_fd, ChargeCat::kWaitqueue);
    // sciolint: allow(E1) -- woken-vs-timeout is re-derived from the reharvest
    (void)kernel()->BlockProcess(*owner_, deadline);
    waiter_.Detach();
    ++stats.poll_waitqueue_removes;
    kernel()->Charge(cost.poll_waitqueue_remove_per_fd, ChargeCat::kWaitqueue);
    if (FaultPlane* fault = kernel()->fault();
        fault != nullptr && fault->InjectEintr()) {
      trace.set_result(kErrIntr);
      return kErrIntr;
    }
  }
}

PollEvents KqueueDevice::PollMask() const {
  return active_count() == 0 ? static_cast<PollEvents>(0) : kPollIn;
}

void KqueueDevice::OnFileStatus(File& file, PollEvents mask) {
  if (closed_) {
    return;
  }
  const int fd = file.fd_number();
  if (fd < 0) {
    return;
  }
  KnoteSlot* slot = slots_.Get(static_cast<size_t>(fd));
  if (slot == nullptr || slot->file.lock().get() != &file) {
    return;
  }
  if ((mask & FilterMask(kFiltRead)) != 0) {
    Activate(static_cast<size_t>(fd), kFiltRead, /*interrupt=*/true);
  }
  if ((mask & FilterMask(kFiltWrite)) != 0) {
    Activate(static_cast<size_t>(fd), kFiltWrite, /*interrupt=*/true);
  }
}

}  // namespace scio
