#include "src/core/sys.h"

#include "src/kernel/sys_errno.h"

namespace scio {

int Sys::Listen(int backlog) {
  KernelStats& stats = kernel_->stats();
  // socket() + bind() + listen().
  stats.syscalls += 3;
  kernel_->Charge(3 * kernel_->cost().syscall_entry);
  if (FaultPlane* fault = kernel_->fault(); fault != nullptr && fault->InjectOpenEmfile()) {
    return kErrMFile;
  }
  auto listener = std::make_shared<SimListener>(kernel_, net_, backlog);
  return proc_->fds().Allocate(std::move(listener));
}

int Sys::Accept(int listener_fd) {
  KernelStats& stats = kernel_->stats();
  ++stats.syscalls;
  ++stats.accepts;
  kernel_->Charge(kernel_->cost().syscall_entry);
  auto listener = std::dynamic_pointer_cast<SimListener>(proc_->fds().Get(listener_fd));
  if (listener == nullptr) {
    return kErrBadF;
  }
  if (FaultPlane* fault = kernel_->fault(); fault != nullptr && fault->InjectAcceptEmfile()) {
    // Injected descriptor exhaustion: unlike the natural EMFILE below, the
    // connection stays queued in the backlog so the server can retry once it
    // has shed descriptors.
    return kErrMFile;
  }
  std::shared_ptr<SimSocket> conn = listener->Accept();
  if (conn == nullptr) {
    return -1;
  }
  kernel_->Charge(kernel_->cost().accept_extra);
  const int fd = proc_->fds().Allocate(conn);
  if (fd < 0) {
    // EMFILE: the kernel tears the connection down.
    conn->Close();
    return -3;
  }
  return fd;
}

ReadResult Sys::Read(int fd, size_t max_bytes) {
  KernelStats& stats = kernel_->stats();
  ++stats.syscalls;
  ++stats.reads;
  kernel_->Charge(kernel_->cost().syscall_entry + kernel_->cost().read_extra);
  auto socket = std::dynamic_pointer_cast<SimSocket>(proc_->fds().Get(fd));
  if (socket == nullptr) {
    ReadResult bad;
    bad.err = kErrBadF;
    return bad;
  }
  ReadResult result = socket->Read(max_bytes);
  stats.bytes_read += result.n;
  kernel_->Charge(kernel_->cost().read_per_byte * static_cast<SimDuration>(result.n));
  return result;
}

long Sys::Write(int fd, Chunk chunk) {
  KernelStats& stats = kernel_->stats();
  ++stats.syscalls;
  ++stats.writes;
  kernel_->Charge(kernel_->cost().syscall_entry + kernel_->cost().write_extra);
  auto socket = std::dynamic_pointer_cast<SimSocket>(proc_->fds().Get(fd));
  if (socket == nullptr) {
    return -1;
  }
  const SimSocket::State state = socket->state();
  if (state != SimSocket::State::kEstablished && state != SimSocket::State::kPeerClosed) {
    return kErrPipe;  // the connection can never carry these bytes
  }
  const size_t accepted = socket->Write(std::move(chunk));
  stats.bytes_written += accepted;
  kernel_->Charge(kernel_->cost().write_per_byte * static_cast<SimDuration>(accepted));
  return static_cast<long>(accepted);
}

int Sys::Close(int fd) {
  KernelStats& stats = kernel_->stats();
  ++stats.syscalls;
  ++stats.closes;
  kernel_->Charge(kernel_->cost().syscall_entry + kernel_->cost().close_extra);
  return proc_->fds().Close(fd);
}

int Sys::Poll(std::span<PollFd> fds, int timeout_ms) { return poll_.Poll(fds, timeout_ms); }

int Sys::OpenDevPoll(DevPollOptions options) {
  ++kernel_->stats().syscalls;
  kernel_->Charge(kernel_->cost().syscall_entry);
  if (FaultPlane* fault = kernel_->fault(); fault != nullptr && fault->InjectOpenEmfile()) {
    return kErrMFile;
  }
  auto device = std::make_shared<DevPollDevice>(kernel_, proc_, options);
  return proc_->fds().Allocate(std::move(device));
}

std::shared_ptr<DevPollDevice> Sys::devpoll(int dpfd) {
  return std::dynamic_pointer_cast<DevPollDevice>(proc_->fds().Get(dpfd));
}

long Sys::DevPollWrite(int dpfd, std::span<const PollFd> updates) {
  auto device = devpoll(dpfd);
  return device == nullptr ? -1 : device->Write(updates);
}

int Sys::DevPollAlloc(int dpfd, int nfds) {
  auto device = devpoll(dpfd);
  return device == nullptr ? -1 : device->IoctlDpAlloc(nfds);
}

PollFd* Sys::DevPollMmap(int dpfd) {
  auto device = devpoll(dpfd);
  return device == nullptr ? nullptr : device->Mmap();
}

int Sys::DevPollMunmap(int dpfd) {
  auto device = devpoll(dpfd);
  return device == nullptr ? -1 : device->Munmap();
}

int Sys::DevPollPoll(int dpfd, DvPoll* args) {
  auto device = devpoll(dpfd);
  return device == nullptr ? -1 : device->IoctlDpPoll(args);
}

int Sys::DevPollWritePoll(int dpfd, std::span<const PollFd> updates, DvPoll* args) {
  auto device = devpoll(dpfd);
  return device == nullptr ? -1 : device->IoctlDpWritePoll(updates, args);
}

std::shared_ptr<SimListener> Sys::listener(int fd) {
  return std::dynamic_pointer_cast<SimListener>(proc_->fds().Get(fd));
}

std::shared_ptr<SimSocket> Sys::socket(int fd) {
  return std::dynamic_pointer_cast<SimSocket>(proc_->fds().Get(fd));
}

}  // namespace scio
