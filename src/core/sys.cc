#include "src/core/sys.h"

#include "src/kernel/sys_errno.h"

namespace scio {

int Sys::Listen(int backlog) {
  SyscallTraceScope trace(kernel_, "listen");
  KernelStats& stats = kernel_->stats();
  // socket() + bind() + listen().
  stats.syscalls += 3;
  kernel_->Charge(3 * kernel_->cost().syscall_entry, ChargeCat::kSyscallEntry);
  if (FaultPlane* fault = kernel_->fault(); fault != nullptr && fault->InjectOpenEmfile()) {
    trace.set_result(kErrMFile);
    return kErrMFile;
  }
  auto listener = std::make_shared<SimListener>(kernel_, net_, backlog);
  const int fd = proc_->fds().Allocate(std::move(listener));
  trace.set_result(fd);
  return fd;
}

int Sys::Accept(int listener_fd) {
  SyscallTraceScope trace(kernel_, "accept", listener_fd);
  KernelStats& stats = kernel_->stats();
  ++stats.syscalls;
  ++stats.accepts;
  kernel_->Charge(kernel_->cost().syscall_entry, ChargeCat::kSyscallEntry);
  auto listener = std::dynamic_pointer_cast<SimListener>(proc_->fds().Get(listener_fd));
  if (listener == nullptr) {
    trace.set_result(kErrBadF);
    return kErrBadF;
  }
  if (FaultPlane* fault = kernel_->fault(); fault != nullptr && fault->InjectAcceptEmfile()) {
    // Injected descriptor exhaustion: unlike the natural EMFILE below, the
    // connection stays queued in the backlog so the server can retry once it
    // has shed descriptors.
    trace.set_result(kErrMFile);
    return kErrMFile;
  }
  std::shared_ptr<SimSocket> conn = listener->Accept();
  if (conn == nullptr) {
    trace.set_result(-1);
    return -1;
  }
  kernel_->Charge(kernel_->cost().accept_extra, ChargeCat::kAccept);
  const int fd = proc_->fds().Allocate(conn);
  if (fd < 0) {
    // EMFILE: the kernel tears the connection down.
    conn->Close();
    trace.set_result(-3);
    return -3;
  }
  trace.set_result(fd);
  return fd;
}

ReadResult Sys::Read(int fd, size_t max_bytes) {
  SyscallTraceScope trace(kernel_, "read", fd);
  KernelStats& stats = kernel_->stats();
  ++stats.syscalls;
  ++stats.reads;
  kernel_->Charge({{ChargeCat::kSyscallEntry, kernel_->cost().syscall_entry},
                   {ChargeCat::kReadCopy, kernel_->cost().read_extra}});
  auto socket = std::dynamic_pointer_cast<SimSocket>(proc_->fds().Get(fd));
  if (socket == nullptr) {
    ReadResult bad;
    bad.err = kErrBadF;
    trace.set_result(kErrBadF);
    return bad;
  }
  ReadResult result = socket->Read(max_bytes);
  stats.bytes_read += result.n;
  kernel_->Charge(kernel_->cost().read_per_byte * static_cast<SimDuration>(result.n),
                  ChargeCat::kReadCopy);
  trace.set_result(static_cast<int32_t>(result.n));
  return result;
}

long Sys::Write(int fd, Chunk chunk) {
  SyscallTraceScope trace(kernel_, "write", fd);
  KernelStats& stats = kernel_->stats();
  ++stats.syscalls;
  ++stats.writes;
  kernel_->Charge({{ChargeCat::kSyscallEntry, kernel_->cost().syscall_entry},
                   {ChargeCat::kSendBytes, kernel_->cost().write_extra}});
  auto socket = std::dynamic_pointer_cast<SimSocket>(proc_->fds().Get(fd));
  if (socket == nullptr) {
    trace.set_result(-1);
    return -1;
  }
  const SimSocket::State state = socket->state();
  if (state != SimSocket::State::kEstablished && state != SimSocket::State::kPeerClosed) {
    trace.set_result(kErrPipe);
    return kErrPipe;  // the connection can never carry these bytes
  }
  const size_t accepted = socket->Write(std::move(chunk));
  stats.bytes_written += accepted;
  kernel_->Charge(kernel_->cost().write_per_byte * static_cast<SimDuration>(accepted),
                  ChargeCat::kSendBytes);
  trace.set_result(static_cast<int32_t>(accepted));
  return static_cast<long>(accepted);
}

int Sys::Close(int fd) {
  SyscallTraceScope trace(kernel_, "close", fd);
  KernelStats& stats = kernel_->stats();
  ++stats.syscalls;
  ++stats.closes;
  kernel_->Charge({{ChargeCat::kSyscallEntry, kernel_->cost().syscall_entry},
                   {ChargeCat::kClose, kernel_->cost().close_extra}});
  const int rc = proc_->fds().Close(fd);
  trace.set_result(rc);
  return rc;
}

int Sys::Poll(std::span<PollFd> fds, int timeout_ms) { return poll_.Poll(fds, timeout_ms); }

int Sys::OpenDevPoll(DevPollOptions options) {
  SyscallTraceScope trace(kernel_, "open_devpoll");
  ++kernel_->stats().syscalls;
  kernel_->Charge(kernel_->cost().syscall_entry, ChargeCat::kSyscallEntry);
  if (FaultPlane* fault = kernel_->fault(); fault != nullptr && fault->InjectOpenEmfile()) {
    trace.set_result(kErrMFile);
    return kErrMFile;
  }
  auto device = std::make_shared<DevPollDevice>(kernel_, proc_, options);
  const int fd = proc_->fds().Allocate(std::move(device));
  trace.set_result(fd);
  return fd;
}

std::shared_ptr<DevPollDevice> Sys::devpoll(int dpfd) {
  return std::dynamic_pointer_cast<DevPollDevice>(proc_->fds().Get(dpfd));
}

long Sys::DevPollWrite(int dpfd, std::span<const PollFd> updates) {
  auto device = devpoll(dpfd);
  return device == nullptr ? -1 : device->Write(updates);
}

int Sys::DevPollAlloc(int dpfd, int nfds) {
  auto device = devpoll(dpfd);
  return device == nullptr ? -1 : device->IoctlDpAlloc(nfds);
}

PollFd* Sys::DevPollMmap(int dpfd) {
  auto device = devpoll(dpfd);
  return device == nullptr ? nullptr : device->Mmap();
}

int Sys::DevPollMunmap(int dpfd) {
  auto device = devpoll(dpfd);
  return device == nullptr ? -1 : device->Munmap();
}

int Sys::DevPollPoll(int dpfd, DvPoll* args) {
  auto device = devpoll(dpfd);
  return device == nullptr ? -1 : device->IoctlDpPoll(args);
}

int Sys::DevPollWritePoll(int dpfd, std::span<const PollFd> updates, DvPoll* args) {
  auto device = devpoll(dpfd);
  return device == nullptr ? -1 : device->IoctlDpWritePoll(updates, args);
}

int Sys::OpenEpoll() {
  SyscallTraceScope trace(kernel_, "epoll_create");
  ++kernel_->stats().syscalls;
  kernel_->Charge(kernel_->cost().syscall_entry, ChargeCat::kSyscallEntry);
  if (FaultPlane* fault = kernel_->fault(); fault != nullptr && fault->InjectOpenEmfile()) {
    trace.set_result(kErrMFile);
    return kErrMFile;
  }
  auto device = std::make_shared<EpollDevice>(kernel_, proc_);
  const int fd = proc_->fds().Allocate(std::move(device));
  trace.set_result(fd);
  return fd;
}

std::shared_ptr<EpollDevice> Sys::epoll_dev(int epfd) {
  return std::dynamic_pointer_cast<EpollDevice>(proc_->fds().Get(epfd));
}

int Sys::EpollCtl(int epfd, EpollOp op, int fd, PollEvents events, uint16_t flags) {
  auto device = epoll_dev(epfd);
  return device == nullptr ? -1 : device->Ctl(op, fd, events, flags);
}

int Sys::EpollWait(int epfd, PollFd* out, int max, int timeout_ms) {
  auto device = epoll_dev(epfd);
  return device == nullptr ? -1 : device->Wait(out, max, timeout_ms);
}

int Sys::OpenKqueue() {
  SyscallTraceScope trace(kernel_, "kqueue");
  ++kernel_->stats().syscalls;
  kernel_->Charge(kernel_->cost().syscall_entry, ChargeCat::kSyscallEntry);
  if (FaultPlane* fault = kernel_->fault(); fault != nullptr && fault->InjectOpenEmfile()) {
    trace.set_result(kErrMFile);
    return kErrMFile;
  }
  auto device = std::make_shared<KqueueDevice>(kernel_, proc_);
  const int fd = proc_->fds().Allocate(std::move(device));
  trace.set_result(fd);
  return fd;
}

std::shared_ptr<KqueueDevice> Sys::kqueue_dev(int kqfd) {
  return std::dynamic_pointer_cast<KqueueDevice>(proc_->fds().Get(kqfd));
}

int Sys::Kevent(int kqfd, std::span<const KEvent> changes, std::span<KEvent> events,
                int timeout_ms) {
  auto device = kqueue_dev(kqfd);
  return device == nullptr ? -1 : device->Kevent(changes, events, timeout_ms);
}

int Sys::InstallFile(std::shared_ptr<File> file) {
  SyscallTraceScope trace(kernel_, "install_fd");
  ++kernel_->stats().syscalls;
  kernel_->Charge(kernel_->cost().syscall_entry, ChargeCat::kSyscallEntry);
  const int fd = proc_->fds().Allocate(std::move(file));
  trace.set_result(fd);
  return fd;
}

std::shared_ptr<SimListener> Sys::listener(int fd) {
  return std::dynamic_pointer_cast<SimListener>(proc_->fds().Get(fd));
}

std::shared_ptr<SimSocket> Sys::socket(int fd) {
  return std::dynamic_pointer_cast<SimSocket>(proc_->fds().Get(fd));
}

}  // namespace scio
