#include "src/core/devpoll.h"

#include <algorithm>
#include <utility>

#include "src/kernel/sys_errno.h"

namespace scio {

DevPollDevice::DevPollDevice(SimKernel* kernel, Process* owner, DevPollOptions options)
    : File(kernel), owner_(owner), options_(options) {
  table_.set_mem_ledger(&kernel->mem());
}

DevPollDevice::~DevPollDevice() = default;

void DevPollDevice::OnFdClose() {
  closed_ = true;
  // Destroying the table unregisters every backmap link.
  table_ = InterestHashTable();
  active_list_.clear();
}

void DevPollDevice::BindInterest(Interest& interest) {
  std::shared_ptr<File> current = owner_->fds().Get(interest.fd);
  std::shared_ptr<File> bound = interest.file.lock();
  if (current == bound && bound != nullptr) {
    return;  // still bound to the right file
  }
  interest.link.reset();
  interest.file = current;
  interest.cached = 0;
  interest.hint = true;  // never polled this file yet
  interest.hintable = false;
  if (current == nullptr) {
    return;  // stale fd: EvaluateInterest reports POLLNVAL
  }
  interest.hintable = options_.hints_enabled && current->SupportsPollHints();
  if (interest.hintable) {
    interest.link = std::make_unique<BackmapLink>(
        [this](int fd, PollEvents mask) { MarkHint(fd, mask); }, interest.fd, interest.file);
  }
}

long DevPollDevice::Write(std::span<const PollFd> updates) {
  SyscallTraceScope trace(kernel(), "dp_write",
                          static_cast<int32_t>(updates.size()));
  ++kernel()->stats().syscalls;
  kernel()->Charge(kernel()->cost().syscall_entry, ChargeCat::kSyscallEntry);
  const long rc = WriteInternal(updates);
  trace.set_result(static_cast<int32_t>(rc));
  return rc;
}

long DevPollDevice::WriteInternal(std::span<const PollFd> updates) {
  KernelStats& stats = kernel()->stats();
  ++stats.devpoll_writes;
  stats.devpoll_interests_written += updates.size();
  // Interest-set mutation takes the backmap lock for writing (§3.2).
  ++stats.devpoll_lock_write_acquires;
  kernel()->Charge(
      {{ChargeCat::kInterestUpdate, kernel()->cost().devpoll_lock_acquire},
       {ChargeCat::kInterestUpdate,
        kernel()->cost().devpoll_write_per_fd *
            static_cast<SimDuration>(updates.size())}});

  // Interest-set growth allocates kernel memory; under an ENOMEM fault window
  // the whole write fails atomically, before any update is applied, so the
  // caller can retry the batch verbatim.
  bool grows = false;
  for (const PollFd& update : updates) {
    grows = grows || (update.events & kPollRemove) == 0;
  }
  if (grows) {
    if (FaultPlane* fault = kernel()->fault();
        fault != nullptr && fault->InjectInterestEnomem()) {
      return kErrNoMem;
    }
  }

  const uint64_t resizes_before = table_.resize_count();
  for (const PollFd& update : updates) {
    if (update.fd < 0) {
      return -1;
    }
    if ((update.events & kPollRemove) != 0) {
      table_.Erase(update.fd);
      continue;
    }
    bool inserted = false;
    Interest& interest = table_.FindOrInsert(update.fd, &inserted);
    if (inserted || !options_.solaris_or_semantics) {
      // Paper §3.1: "the contents of the events field replace the previous
      // interest, unlike the Solaris implementation".
      interest.events = update.events;
    } else {
      interest.events |= update.events;
    }
    BindInterest(interest);
    if (options_.hinted_first_scan) {
      PushActive(interest);
    }
  }
  kernel()->stats().devpoll_table_resizes += table_.resize_count() - resizes_before;
  return static_cast<long>(updates.size() * sizeof(PollFd));
}

int DevPollDevice::IoctlDpAlloc(int nfds) {
  SyscallTraceScope trace(kernel(), "dp_alloc", nfds);
  ++kernel()->stats().syscalls;
  kernel()->Charge(kernel()->cost().syscall_entry + kernel()->cost().devpoll_ioctl_extra,
                   ChargeCat::kSyscallEntry);
  if (nfds <= 0) {
    return -1;
  }
  result_area_.assign(static_cast<size_t>(nfds), PollFd{});
  alloc_done_ = true;
  return 0;
}

PollFd* DevPollDevice::Mmap() {
  SyscallTraceScope trace(kernel(), "dp_mmap");
  ++kernel()->stats().syscalls;
  kernel()->Charge(kernel()->cost().syscall_entry, ChargeCat::kSyscallEntry);
  if (!alloc_done_) {
    return nullptr;
  }
  mapped_ = true;
  return result_area_.data();
}

int DevPollDevice::Munmap() {
  SyscallTraceScope trace(kernel(), "dp_munmap");
  ++kernel()->stats().syscalls;
  kernel()->Charge(kernel()->cost().syscall_entry, ChargeCat::kSyscallEntry);
  if (!mapped_) {
    return -1;
  }
  mapped_ = false;
  return 0;
}

void DevPollDevice::PushActive(Interest& interest) {
  if (!interest.queued) {
    interest.queued = true;
    active_list_.push_back(interest.fd);
  }
}

void DevPollDevice::MarkHint(int fd, PollEvents mask) {
  (void)mask;
  KernelStats& stats = kernel()->stats();
  ++stats.devpoll_hints_set;
  // Hint marking takes the backmap lock for reading (§3.2: "hints require
  // only a read lock, so the lock itself is generally not contended").
  ++stats.devpoll_lock_read_acquires;
  kernel()->ChargeDebt(
      kernel()->cost().devpoll_hint_set + kernel()->cost().devpoll_lock_acquire,
      ChargeCat::kHintMark);
  Interest* interest = table_.Find(fd);
  if (interest == nullptr) {
    return;
  }
  interest->hint = true;
  if (options_.hinted_first_scan) {
    PushActive(*interest);
  }
  // Wake a sleeping DP_POLL (and let composed pollers see us readable). In
  // exclusive-wait mode the sleeper registered an exclusive waiter on the
  // hinted file's own queue instead, so the file's wake_up() — not this
  // broadcast — rouses exactly one sharer; the hint set above is still
  // observed by whichever sleeper scans next.
  if (!options_.exclusive_wait) {
    owner_->Wake();
    poll_wait().WakeAll();
  }
}

PollEvents DevPollDevice::EvaluateInterest(Interest& interest) {
  KernelStats& stats = kernel()->stats();
  const CostModel& cost = kernel()->cost();

  std::shared_ptr<File> file = interest.file.lock();
  std::shared_ptr<File> current = owner_->fds().Get(interest.fd);
  if (current == nullptr) {
    // fd closed while interest outstanding: no driver to call. Counted
    // separately so scanned == driver_calls + avoided + stale always holds.
    ++stats.devpoll_scan_stale_fd;
    return kPollNval;
  }
  if (file != current) {
    BindInterest(interest);  // fd number was reused; rebind
    file = current;
  }

  if (!interest.hintable) {
    // Driver doesn't hint (or hints disabled): poll it every scan.
    ++stats.devpoll_driver_calls;
    kernel()->Charge(cost.poll_driver_poll_per_fd, ChargeCat::kDriverPoll);
    interest.cached = file->PollMask();
  } else if (interest.hint) {
    // A hint invalidates the cache: call the driver and erase the hint.
    ++stats.devpoll_driver_calls;
    kernel()->Charge(cost.poll_driver_poll_per_fd, ChargeCat::kDriverPoll);
    interest.cached = file->PollMask();
    interest.hint = false;
  } else if ((interest.cached & (interest.events | kPollAlwaysReported)) != 0) {
    // §3.2: there is no ready->not-ready hint, so a cached result that
    // indicates readiness must be reevaluated every time.
    ++stats.devpoll_driver_calls;
    ++stats.devpoll_cached_ready_rechecks;
    kernel()->Charge(cost.poll_driver_poll_per_fd, ChargeCat::kDriverPoll);
    interest.cached = file->PollMask();
  } else {
    // Cached not-ready and no hint: trust the cache, skip the driver.
    ++stats.devpoll_driver_calls_avoided;
  }
  return interest.cached & (interest.events | kPollAlwaysReported);
}

int DevPollDevice::ScanOnce(PollFd* out, int max, bool charge_copyout) {
  KernelStats& stats = kernel()->stats();
  const CostModel& cost = kernel()->cost();
  const uint64_t scanned_before = stats.devpoll_interests_scanned;
  ++stats.devpoll_lock_read_acquires;
  kernel()->Charge(cost.devpoll_lock_acquire, ChargeCat::kDevpollScan);

  int ready = 0;
  auto emit = [&](Interest& interest, PollEvents revents) {
    if (ready >= max) {
      return;
    }
    out[ready].fd = interest.fd;
    out[ready].events = interest.events;
    out[ready].revents = revents;
    ++ready;
    if (charge_copyout) {
      ++stats.devpoll_results_copied;
      kernel()->Charge(cost.devpoll_copyout_per_ready, ChargeCat::kResultCopyout);
    } else {
      ++stats.devpoll_results_mapped;
    }
  };

  if (options_.hinted_first_scan && options_.hints_enabled) {
    // Future-work mode: visit only hinted / cached-ready interests.
    // PushActive during the walk appends to the (now empty) active_list_;
    // the swapped buffers both retain capacity across scans.
    scan_worklist_.clear();
    scan_worklist_.swap(active_list_);
    for (int fd : scan_worklist_) {
      Interest* interest = table_.Find(fd);
      if (interest == nullptr) {
        continue;  // removed since queued
      }
      interest->queued = false;
      ++stats.devpoll_interests_scanned;
      kernel()->Charge(cost.devpoll_scan_per_interest, ChargeCat::kDevpollScan);
      const PollEvents revents = EvaluateInterest(*interest);
      if (revents != 0) {
        // Ready results must be rechecked on the next scan (no
        // ready->not-ready hint), so keep the interest on the worklist.
        PushActive(*interest);
        emit(*interest, revents);
      }
    }
    kernel()->TraceInstant(
        TraceEventType::kScan, "dp_scan",
        static_cast<int32_t>(stats.devpoll_interests_scanned - scanned_before),
        ready);
    return ready;
  }

  table_.ForEach([&](Interest& interest) {
    ++stats.devpoll_interests_scanned;
    kernel()->Charge(cost.devpoll_scan_per_interest, ChargeCat::kDevpollScan);
    const PollEvents revents = EvaluateInterest(interest);
    if (revents != 0) {
      emit(interest, revents);
    }
  });
  kernel()->TraceInstant(
      TraceEventType::kScan, "dp_scan",
      static_cast<int32_t>(stats.devpoll_interests_scanned - scanned_before),
      ready);
  return ready;
}

int DevPollDevice::IoctlDpPoll(DvPoll* args) {
  SyscallTraceScope trace(kernel(), "dp_poll", args->dp_nfds);
  ++kernel()->stats().syscalls;
  kernel()->Charge(kernel()->cost().syscall_entry, ChargeCat::kSyscallEntry);
  const int rc = PollInternal(args);
  trace.set_result(rc);
  return rc;
}

int DevPollDevice::PollInternal(DvPoll* args) {
  KernelStats& stats = kernel()->stats();
  const CostModel& cost = kernel()->cost();
  ++stats.devpoll_polls;
  kernel()->Charge(cost.devpoll_ioctl_extra, ChargeCat::kSyscallEntry);

  const bool use_mapping = args->dp_fds == nullptr;
  PollFd* out = use_mapping ? result_area_.data() : args->dp_fds;
  int max = args->dp_nfds;
  if (use_mapping) {
    if (!mapped_) {
      return -1;
    }
    max = std::min(max, static_cast<int>(result_area_.size()));
  }
  if (max <= 0 || out == nullptr) {
    return -1;
  }

  const SimTime deadline = args->dp_timeout < 0
                               ? kSimTimeNever
                               : kernel()->now() + Millis(args->dp_timeout);
  while (true) {
    const int ready = ScanOnce(out, max, /*charge_copyout=*/!use_mapping);
    if (ready > 0 || args->dp_timeout == 0 || kernel()->stopped()) {
      return ready;
    }
    if (kernel()->now() >= deadline) {
      return 0;
    }

    // Sleep. Hintable interests wake us through MarkHint; anything else
    // needs classic per-file wait queue entries (with their churn costs).
    // The Waiter objects themselves are pooled; only the queue registration
    // churns, which is exactly what the cost model charges for.
    size_t used = 0;
    table_.ForEach([&](Interest& interest) {
      // Hintable interests wake us through MarkHint's broadcast — except in
      // exclusive-wait mode, where the broadcast is suppressed and every
      // file (hintable or not) gets an exclusive wait-queue entry so a
      // wake_up() rouses one sharer instead of the herd.
      if (interest.hintable && !options_.exclusive_wait) {
        return;
      }
      if (std::shared_ptr<File> file = interest.file.lock()) {
        if (used == waiter_pool_.size()) {
          // sciolint: allow(H1) -- bounded one-time pool growth to high-water
          waiter_pool_.push_back(std::make_unique<Waiter>(
              [proc = owner_] { proc->Wake(); }));
        }
        if (options_.exclusive_wait) {
          file->poll_wait().AddExclusive(waiter_pool_[used].get());
          ++stats.wait_exclusive_adds;
        } else {
          file->poll_wait().Add(waiter_pool_[used].get());
        }
        ++used;
        ++stats.poll_waitqueue_adds;
        kernel()->Charge(cost.poll_waitqueue_add_per_fd, ChargeCat::kWaitqueue);
      }
    });
    // sciolint: allow(E1) -- woken-vs-timeout is re-derived from the rescan
    (void)kernel()->BlockProcess(*owner_, deadline);
    if (used > 0) {
      stats.poll_waitqueue_removes += used;
      kernel()->Charge(cost.poll_waitqueue_remove_per_fd *
                           static_cast<SimDuration>(used),
                       ChargeCat::kWaitqueue);
      for (size_t i = 0; i < used; ++i) {
        waiter_pool_[i]->Detach();
      }
    }
    if (FaultPlane* fault = kernel()->fault();
        fault != nullptr && fault->InjectEintr()) {
      return kErrIntr;
    }
  }
}

int DevPollDevice::IoctlDpWritePoll(std::span<const PollFd> updates, DvPoll* args) {
  // §6 future work: "a single ioctl() that handles both operations at once
  // could improve efficiency" — one syscall entry covers both halves.
  SyscallTraceScope trace(kernel(), "dp_writepoll",
                          static_cast<int32_t>(updates.size()));
  ++kernel()->stats().syscalls;
  kernel()->Charge(kernel()->cost().syscall_entry, ChargeCat::kSyscallEntry);
  if (long rc = WriteInternal(updates); rc < 0) {
    trace.set_result(static_cast<int32_t>(rc));
    return static_cast<int>(rc);  // propagate kErrNoMem vs bad-args -1
  }
  const int rc = PollInternal(args);
  trace.set_result(rc);
  return rc;
}

PollEvents DevPollDevice::PollMask() const {
  // Heuristic readiness for composition: pending hints or cached-ready
  // entries mean a DP_POLL would likely return immediately.
  PollEvents mask = 0;
  auto* self = const_cast<DevPollDevice*>(this);
  self->table_.ForEach([&](Interest& interest) {
    if (interest.hint || (interest.cached & (interest.events | kPollAlwaysReported)) != 0) {
      mask = kPollIn;
    }
  });
  return mask;
}

const Interest* DevPollDevice::FindInterest(int fd) const {
  return const_cast<DevPollDevice*>(this)->table_.Find(fd);
}

}  // namespace scio
