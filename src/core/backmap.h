// BackmapLink: one entry of a socket's backmapping list (paper §3.2).
//
// "The /dev/poll implementation maintains this information in a backmapping
// list. When an event occurs, the driver marks the appropriate file
// descriptor for each process in its backmapping list."
//
// A link registers itself on the file's status-listener list and forwards
// state changes to its owner (a DevPollDevice marking a hint). It is owned
// by the Interest it serves and unregisters itself on destruction if the
// file is still alive; if the file dies first, the expired weak_ptr makes
// unregistration a no-op.

#ifndef SRC_CORE_BACKMAP_H_
#define SRC_CORE_BACKMAP_H_

#include <functional>
#include <memory>
#include <utility>

#include "src/kernel/file.h"

namespace scio {

class BackmapLink : public StatusListener {
 public:
  using Callback = std::function<void(int fd, PollEvents mask)>;

  BackmapLink(Callback on_status, int fd, std::weak_ptr<File> file)
      : on_status_(std::move(on_status)), fd_(fd), file_(std::move(file)) {
    if (auto f = file_.lock()) {
      f->AddStatusListener(this);
    }
  }

  ~BackmapLink() override {
    if (auto f = file_.lock()) {
      f->RemoveStatusListener(this);
    }
  }

  void OnFileStatus(File& file, PollEvents mask) override {
    (void)file;
    on_status_(fd_, mask);
  }

  int fd() const { return fd_; }

 private:
  Callback on_status_;
  int fd_;
  std::weak_ptr<File> file_;
};

}  // namespace scio

#endif  // SRC_CORE_BACKMAP_H_
