// POSIX RT signal I/O syscalls (paper §2).
//
// fcntl(F_SETOWN) + fcntl(F_SETSIG, signum) arm per-fd completion signals;
// the application keeps the signals masked and collects them synchronously
// with sigwaitinfo() — one siginfo per call, which is exactly the per-event
// syscall overhead the paper blames for phhttpd's behaviour under load (§5.2,
// FIG 11). sigtimedwait4() is the paper's proposed batch-dequeue extension
// (§6): "allow the kernel to return more than one siginfo struct per
// invocation".

#ifndef SRC_CORE_RT_IO_H_
#define SRC_CORE_RT_IO_H_

#include <optional>
#include <span>

#include "src/kernel/process.h"
#include "src/kernel/sim_kernel.h"

namespace scio {

class RtIo {
 public:
  RtIo(SimKernel* kernel, Process* proc) : kernel_(kernel), proc_(proc) {}

  // fcntl(fd, F_SETOWN, pid) + fcntl(fd, F_SETSIG, signo), charged as two
  // syscalls. signo == 0 disarms. Returns 0, or -1 on a bad fd.
  [[nodiscard]] int ArmAsync(int fd, int signo);

  // sigwaitinfo(): block until a signal is pending, dequeue the lowest-
  // numbered one. Returns nullopt on timeout (timeout_ms >= 0) or stop.
  // timeout_ms < 0 blocks forever (the real call always blocks; the timeout
  // exists so benchmark loops can wind down).
  [[nodiscard]] std::optional<SigInfo> SigWaitInfo(int timeout_ms = -1);

  // sigtimedwait4() extension: dequeue up to out.size() pending signals in
  // one call. Returns the count (>= 1 unless timeout/stop).
  [[nodiscard]] int SigTimedWait4(std::span<SigInfo> out, int timeout_ms = -1);

  // Overflow recovery step (paper §2): reset handlers to SIG_DFL, flushing
  // every queued RT signal. Returns the number flushed. One syscall.
  [[nodiscard]] size_t FlushRtSignals();

 private:
  bool WaitForSignal(int timeout_ms);

  SimKernel* kernel_;
  Process* proc_;
};

}  // namespace scio

#endif  // SRC_CORE_RT_IO_H_
