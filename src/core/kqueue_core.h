// Kqueue-style filter core: the other successor to the paper's /dev/poll.
//
// Where epoll kept /dev/poll's split between interest updates and waiting,
// kqueue made the paper's §6 "single ioctl() that handles both operations"
// idea the *only* entry point: one kevent() call applies a changelist and
// harvests an eventlist in the same trap. Per-(fd,filter) knotes replace the
// flat interest mask — a descriptor has an independent read knote and write
// knote, each activated from driver context onto its own active list and
// re-filtered at harvest time (lazy evaluation: activation is a hint, the
// filter is the truth).
//
//   - knote slots live in a PagedStore indexed by fd, charged to
//     MemSys::kInterests; the read/write active lists are intrusive
//     IndexLists through the same slots;
//   - EV_CLEAR gives edge-like behaviour (state is "cleared" after delivery;
//     only a fresh driver notification reactivates); without it a knote is
//     level-triggered and re-reports while the filter holds;
//   - EV_ONESHOT deletes the knote after one delivery;
//   - blocking waits sleep as one exclusive waiter on the kqueue's own wait
//     queue (wake-one, like the epoll core).

#ifndef SRC_CORE_KQUEUE_CORE_H_
#define SRC_CORE_KQUEUE_CORE_H_

#include <memory>
#include <span>
#include <vector>

#include "src/kernel/file.h"
#include "src/kernel/paged_slab.h"
#include "src/kernel/poll_types.h"
#include "src/kernel/process.h"
#include "src/kernel/sim_kernel.h"
#include "src/kernel/wait_queue.h"

namespace scio {

// Filters: which aspect of the descriptor the knote watches.
inline constexpr int16_t kFiltRead = -1;
inline constexpr int16_t kFiltWrite = -2;

// Changelist action / behaviour flags (kevent's EV_*).
inline constexpr uint16_t kEvAdd = 0x0001;
inline constexpr uint16_t kEvDelete = 0x0002;
inline constexpr uint16_t kEvEnable = 0x0004;
inline constexpr uint16_t kEvDisable = 0x0008;
inline constexpr uint16_t kEvOneshot = 0x0010;
inline constexpr uint16_t kEvClear = 0x0020;
// Set by the kernel on delivered events whose file saw EOF/hangup.
inline constexpr uint16_t kEvEof = 0x8000;

struct KEvent {
  int ident = -1;        // the fd
  int16_t filter = 0;    // kFiltRead / kFiltWrite
  uint16_t flags = 0;    // EV_* actions in a changelist, EV_EOF on output
  int64_t data = 0;      // filter-specific payload (unused by the sim drivers)
};

class KqueueDevice : public File, public StatusListener {
 public:
  KqueueDevice(SimKernel* kernel, Process* owner);
  ~KqueueDevice() override;

  // kevent(2): apply `changes`, then (if `events` is non-empty) wait up to
  // timeout_ms and harvest into `events`. Returns the number of events
  // delivered (0 on timeout or pure-changelist calls), kErrIntr when a
  // signal interrupts the wait, kErrNoMem under an injected allocation
  // failure, -1 on a malformed change.
  int Kevent(std::span<const KEvent> changes, std::span<KEvent> events,
             int timeout_ms);

  // --- File interface ----------------------------------------------------------
  PollEvents PollMask() const override;
  void OnFdClose() override;

  // --- driver side (interrupt context) -----------------------------------------
  void OnFileStatus(File& file, PollEvents mask) override;

  // --- introspection ------------------------------------------------------------
  size_t knote_count() const;          // registered (fd,filter) pairs
  size_t active_count() const { return read_active_.size() + write_active_.size(); }
  bool HasKnote(int fd, int16_t filter) const;
  Process* owner() const { return owner_; }

 private:
  struct Knote {
    bool registered = false;
    bool enabled = false;
    bool oneshot = false;
    bool clear = false;  // EV_CLEAR: edge-like re-arm
  };
  struct KnoteSlot {
    std::weak_ptr<File> file;
    Knote read;
    Knote write;
    // IndexList links must be direct members, so the two filters' active-list
    // links live beside the knotes rather than inside them.
    IndexLink read_active;
    IndexLink write_active;
  };

  Knote& KnoteFor(KnoteSlot& slot, int16_t filter) {
    return filter == kFiltRead ? slot.read : slot.write;
  }
  // The two active lists are distinct template instantiations (each links
  // through its own IndexLink member), so per-filter access goes through
  // these dispatch helpers instead of a ternary.
  void ListPushBack(size_t idx, int16_t filter);
  void ListUnlink(size_t idx, int16_t filter);
  void ListMoveToBack(size_t idx, int16_t filter);
  // Apply one changelist entry; returns 0 / -1 / kErrNoMem.
  int ApplyChange(const KEvent& change);
  // Evaluate the filter now (process context) and activate if it holds.
  void ProbeKnote(size_t idx, int16_t filter);
  void Activate(size_t idx, int16_t filter, bool interrupt);
  // Drop one knote; releases the slot and unregisters the listener when the
  // last filter on the fd goes.
  void DeleteKnote(size_t idx, int16_t filter);
  void RemoveSlot(size_t idx);
  // Harvest one filter's active list; appends to out, returns new count.
  int HarvestFilter(int16_t filter, std::span<KEvent> out, int n);
  int HarvestOnce(std::span<KEvent> out);

  Process* owner_;
  PagedStore<KnoteSlot> slots_;
  IndexList<KnoteSlot, &KnoteSlot::read_active> read_active_;
  IndexList<KnoteSlot, &KnoteSlot::write_active> write_active_;
  bool closed_ = false;
  // Pooled wait-queue entry for the blocking path; constructed eagerly so
  // Kevent() never allocates (H1: the harvest/wait loop is a hot path).
  Waiter waiter_;
};

}  // namespace scio

#endif  // SRC_CORE_KQUEUE_CORE_H_
