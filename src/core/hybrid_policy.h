// Mode-switching policy for the paper's hypothetical hybrid server (§4).
//
// "Such a server might use the RT signal queue maximum as a crossover point
// ... the queue length tracks server workload fairly well. Thus it becomes an
// obvious indicator to cause a workload-triggered switch between event-driven
// and polling modes."
//
// The policy is hysteretic: switch to polling when the signal queue
// occupancy crosses the high watermark (or overflows outright), and return
// to signals only after occupancy stays below the low watermark for a dwell
// period — the switch-back logic Brown never implemented (§6).

#ifndef SRC_CORE_HYBRID_POLICY_H_
#define SRC_CORE_HYBRID_POLICY_H_

#include <algorithm>
#include <cstddef>

#include "src/sim/time.h"

namespace scio {

enum class EventMode {
  kSignals,  // RT-signal driven, low latency
  kPolling,  // /dev/poll driven, high throughput
};

struct HybridPolicyConfig {
  // Fractions of the RT queue maximum.
  double high_watermark = 0.5;
  double low_watermark = 0.05;
  // Occupancy must stay below the low watermark this long before we switch
  // back to signal mode.
  SimDuration switch_back_dwell = Millis(250);
};

class HybridPolicy {
 public:
  // Watermarks are fractions of the queue maximum, truncated to whole
  // entries; small queues need clamping or the truncation degenerates.
  // high_ == 0 (queue_max 1) would read `queue_len >= 0` and pin the policy
  // in polling mode forever, so high_ is clamped to at least 1. low_ == 0
  // makes "calm" mean a perfectly empty queue, which background trickle
  // traffic never satisfies, so low_ is clamped to at least 1 — while
  // staying below high_ so hysteresis keeps a gap (at high_ == 1 only
  // low_ == 0 fits).
  HybridPolicy(HybridPolicyConfig config, size_t queue_max)
      : config_(config),
        queue_max_(queue_max),
        high_(std::max<size_t>(
            1, static_cast<size_t>(config.high_watermark *
                                   static_cast<double>(queue_max)))),
        low_(high_ > 1
                 ? std::clamp<size_t>(
                       static_cast<size_t>(config.low_watermark *
                                           static_cast<double>(queue_max)),
                       1, high_ - 1)
                 : 0) {}

  // Feed an observation; returns the mode the server should be in.
  EventMode Update(size_t queue_len, bool overflowed, SimTime now) {
    if (mode_ == EventMode::kSignals) {
      if (overflowed || queue_len >= high_) {
        mode_ = EventMode::kPolling;
        ++switches_to_polling_;
        below_low_since_ = kSimTimeNever;
      }
      return mode_;
    }
    // Polling mode: wait for sustained calm.
    if (queue_len > low_ || overflowed) {
      below_low_since_ = kSimTimeNever;
      return mode_;
    }
    if (below_low_since_ == kSimTimeNever) {
      below_low_since_ = now;
      return mode_;
    }
    if (now - below_low_since_ >= config_.switch_back_dwell) {
      mode_ = EventMode::kSignals;
      ++switches_to_signals_;
      below_low_since_ = kSimTimeNever;
    }
    return mode_;
  }

  EventMode mode() const { return mode_; }
  size_t high_watermark() const { return high_; }
  size_t low_watermark() const { return low_; }
  size_t queue_max() const { return queue_max_; }
  uint64_t switches_to_polling() const { return switches_to_polling_; }
  uint64_t switches_to_signals() const { return switches_to_signals_; }

 private:
  HybridPolicyConfig config_;
  size_t queue_max_;
  size_t high_;
  size_t low_;
  EventMode mode_ = EventMode::kSignals;
  SimTime below_low_since_ = kSimTimeNever;
  uint64_t switches_to_polling_ = 0;
  uint64_t switches_to_signals_ = 0;
};

}  // namespace scio

#endif  // SRC_CORE_HYBRID_POLICY_H_
