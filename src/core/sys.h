// Sys: the simulated syscall surface, as seen by server applications.
//
// This is the library's main public API for simulation users. It binds a
// Process to the SimKernel and NetStack and exposes the calls the paper's
// servers make — BSD sockets, classic poll(), the /dev/poll device, and the
// RT signal interface — with all cost-model charging and statistics handled
// internally. Server implementations (src/servers) are written purely
// against this class.

#ifndef SRC_CORE_SYS_H_
#define SRC_CORE_SYS_H_

#include <memory>
#include <optional>
#include <span>

#include "src/core/devpoll.h"
#include "src/core/epoll_core.h"
#include "src/core/kqueue_core.h"
#include "src/core/poll_syscall.h"
#include "src/core/rt_io.h"
#include "src/kernel/process.h"
#include "src/kernel/sim_kernel.h"
#include "src/kernel/sys_errno.h"
#include "src/net/listener.h"
#include "src/net/net_stack.h"
#include "src/net/socket.h"

namespace scio {

class Sys {
 public:
  Sys(SimKernel* kernel, Process* proc, NetStack* net)
      : kernel_(kernel), proc_(proc), net_(net), poll_(kernel, proc), rt_(kernel, proc) {}

  SimKernel& kernel() { return *kernel_; }
  Process& proc() { return *proc_; }
  NetStack& net() { return *net_; }
  SimTime now() const { return kernel_->now(); }

  // --- sockets ---------------------------------------------------------------
  // socket() + bind() + listen(): returns the listening fd, or -1 (EMFILE).
  [[nodiscard]] int Listen(int backlog = 128);

  // accept(): pops one established connection. Returns the new fd, -1 when
  // the backlog is empty (EAGAIN), -2 on a bad/closed listener fd (EBADF),
  // -3 when the fd table is full (EMFILE — the connection is dropped).
  [[nodiscard]] int Accept(int listener_fd);

  // read(): ReadResult.n == 0 with eof=false means EAGAIN; a bad fd sets
  // result.err = kErrBadF instead of asserting.
  [[nodiscard]] ReadResult Read(int fd, size_t max_bytes);

  // write(): returns bytes accepted (0 = would block), -1 on a bad fd, or
  // kErrPipe when the connection can no longer carry data.
  [[nodiscard]] long Write(int fd, Chunk chunk);

  // close(): returns 0 or -1 (EBADF).
  [[nodiscard]] int Close(int fd);

  // --- classic poll() -----------------------------------------------------------
  [[nodiscard]] int Poll(std::span<PollFd> fds, int timeout_ms);
  PollSyscall& poll_syscall() { return poll_; }

  // --- /dev/poll -----------------------------------------------------------------
  // open("/dev/poll"): returns the device fd, or -1.
  [[nodiscard]] int OpenDevPoll(DevPollOptions options = DevPollOptions{});
  [[nodiscard]] long DevPollWrite(int dpfd, std::span<const PollFd> updates);
  [[nodiscard]] int DevPollAlloc(int dpfd, int nfds);
  [[nodiscard]] PollFd* DevPollMmap(int dpfd);
  [[nodiscard]] int DevPollMunmap(int dpfd);
  [[nodiscard]] int DevPollPoll(int dpfd, DvPoll* args);
  [[nodiscard]] int DevPollWritePoll(int dpfd, std::span<const PollFd> updates, DvPoll* args);
  // Direct handle, for tests and introspection.
  std::shared_ptr<DevPollDevice> devpoll(int dpfd);

  // --- successor cores --------------------------------------------------------------
  // epoll_create(): returns the epoll fd, or -1 / kErrMFile.
  [[nodiscard]] int OpenEpoll();
  [[nodiscard]] int EpollCtl(int epfd, EpollOp op, int fd, PollEvents events,
                             uint16_t flags = 0);
  [[nodiscard]] int EpollWait(int epfd, PollFd* out, int max, int timeout_ms);
  std::shared_ptr<EpollDevice> epoll_dev(int epfd);

  // kqueue(): returns the kqueue fd, or -1 / kErrMFile.
  [[nodiscard]] int OpenKqueue();
  [[nodiscard]] int Kevent(int kqfd, std::span<const KEvent> changes,
                           std::span<KEvent> events, int timeout_ms);
  std::shared_ptr<KqueueDevice> kqueue_dev(int kqfd);

  // --- RT signals -----------------------------------------------------------------
  [[nodiscard]] int ArmAsync(int fd, int signo) { return rt_.ArmAsync(fd, signo); }
  [[nodiscard]] std::optional<SigInfo> SigWaitInfo(int timeout_ms = -1) {
    return rt_.SigWaitInfo(timeout_ms);
  }
  [[nodiscard]] int SigTimedWait4(std::span<SigInfo> out, int timeout_ms = -1) {
    return rt_.SigTimedWait4(out, timeout_ms);
  }
  [[nodiscard]] size_t FlushRtSignals() { return rt_.FlushRtSignals(); }

  // --- descriptor passing -----------------------------------------------------------
  // Install an existing kernel file object into this process's descriptor
  // table — how a worker inherits a shared listener (fork or SCM_RIGHTS
  // passing; one syscall either way). Returns the new fd, or -1 (EMFILE).
  [[nodiscard]] int InstallFile(std::shared_ptr<File> file);

  // --- helpers for harnesses --------------------------------------------------------
  std::shared_ptr<SimListener> listener(int fd);
  std::shared_ptr<SimSocket> socket(int fd);

 private:
  SimKernel* kernel_;
  Process* proc_;
  NetStack* net_;
  PollSyscall poll_;
  RtIo rt_;
};

}  // namespace scio

#endif  // SRC_CORE_SYS_H_
