// Wait queues: how sleeping processes learn that a file changed state.
//
// This mirrors the Linux wait_queue mechanism the paper discusses in §6:
// a blocking poll() adds one waiter per polled file, and every addition and
// removal has a cost (Brown postulated this churn is where RT signals gain
// their advantage; ABL-6 measures it). Waiters are intrusive and must outlive
// their registration; Remove() is idempotent.
//
// Waiters come in two flavours, mirroring the 2.3-era WQ_FLAG_EXCLUSIVE fix
// for the thundering-herd accept problem:
//  - normal waiters (Add) are woken by every wake-up;
//  - exclusive waiters (AddExclusive) are woken one per WakeOne() call, in
//    FIFO registration order.
// WakeOne() is Linux's wake_up(): all normal waiters plus the first
// exclusive one. WakeAll() (wake_up_all) ignores exclusivity and wakes
// everyone — this is the 2.2 herd behaviour the SMP benches reproduce.

#ifndef SRC_KERNEL_WAIT_QUEUE_H_
#define SRC_KERNEL_WAIT_QUEUE_H_

#include <cstddef>
#include <vector>

#include "src/sim/event_callback.h"

namespace scio {

class WaitQueue;

class Waiter {
 public:
  explicit Waiter(EventCallback on_wake) : on_wake_(std::move(on_wake)) {}
  Waiter(const Waiter&) = delete;
  Waiter& operator=(const Waiter&) = delete;
  ~Waiter();

  // Unregister from the current queue, if any. The waiter stays usable and
  // can be Add()ed again — this lets the poll sleep paths pool waiter
  // objects across sleep/wake cycles instead of reallocating them.
  void Detach();

  bool exclusive() const { return exclusive_; }

 private:
  friend class WaitQueue;
  EventCallback on_wake_;
  WaitQueue* queue_ = nullptr;  // non-null while registered
  bool exclusive_ = false;      // set by AddExclusive, cleared on removal
};

class WaitQueue {
 public:
  WaitQueue() = default;
  WaitQueue(const WaitQueue&) = delete;
  WaitQueue& operator=(const WaitQueue&) = delete;
  ~WaitQueue();

  void Add(Waiter* w);
  // Register as an exclusive waiter (WQ_FLAG_EXCLUSIVE): woken one-at-a-time
  // by WakeOne(), in FIFO registration order.
  void AddExclusive(Waiter* w);
  void Remove(Waiter* w);

  // wake_up(): invoke every non-exclusive waiter's callback plus the first
  // exclusive waiter's (FIFO). Returns the number of callbacks invoked.
  // Callbacks must not add or remove waiters on this queue re-entrantly
  // (ours only set wake flags).
  size_t WakeOne();

  // wake_up_all(): invoke every registered waiter's callback, exclusive or
  // not. Returns the number of callbacks invoked.
  size_t WakeAll();

  size_t size() const { return waiters_.size(); }
  size_t exclusive_count() const { return exclusive_count_; }

 private:
  std::vector<Waiter*> waiters_;
  size_t exclusive_count_ = 0;
};

}  // namespace scio

#endif  // SRC_KERNEL_WAIT_QUEUE_H_
