// Wait queues: how sleeping processes learn that a file changed state.
//
// This mirrors the Linux wait_queue mechanism the paper discusses in §6:
// a blocking poll() adds one waiter per polled file, and every addition and
// removal has a cost (Brown postulated this churn is where RT signals gain
// their advantage; ABL-6 measures it). Waiters are intrusive and must outlive
// their registration; Remove() is idempotent.

#ifndef SRC_KERNEL_WAIT_QUEUE_H_
#define SRC_KERNEL_WAIT_QUEUE_H_

#include <functional>
#include <vector>

namespace scio {

class WaitQueue;

class Waiter {
 public:
  explicit Waiter(std::function<void()> on_wake) : on_wake_(std::move(on_wake)) {}
  Waiter(const Waiter&) = delete;
  Waiter& operator=(const Waiter&) = delete;
  ~Waiter();

  // Unregister from the current queue, if any. The waiter stays usable and
  // can be Add()ed again — this lets the poll sleep paths pool waiter
  // objects across sleep/wake cycles instead of reallocating them.
  void Detach();

 private:
  friend class WaitQueue;
  std::function<void()> on_wake_;
  WaitQueue* queue_ = nullptr;  // non-null while registered
};

class WaitQueue {
 public:
  WaitQueue() = default;
  WaitQueue(const WaitQueue&) = delete;
  WaitQueue& operator=(const WaitQueue&) = delete;
  ~WaitQueue();

  void Add(Waiter* w);
  void Remove(Waiter* w);

  // Invoke every registered waiter's callback. Callbacks must not add or
  // remove waiters on this queue re-entrantly (ours only set wake flags).
  void WakeAll();

  size_t size() const { return waiters_.size(); }

 private:
  std::vector<Waiter*> waiters_;
};

}  // namespace scio

#endif  // SRC_KERNEL_WAIT_QUEUE_H_
