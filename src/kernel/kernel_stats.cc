#include "src/kernel/kernel_stats.h"

namespace scio {

std::vector<std::pair<std::string, uint64_t>> KernelStats::ToRows() const {
  return {
      {"syscalls", syscalls},
      {"accepts", accepts},
      {"reads", reads},
      {"writes", writes},
      {"closes", closes},
      {"fcntls", fcntls},
      {"bytes_read", bytes_read},
      {"bytes_written", bytes_written},
      {"poll.calls", poll_calls},
      {"poll.fds_scanned", poll_fds_scanned},
      {"poll.driver_calls", poll_driver_calls},
      {"poll.waitqueue_adds", poll_waitqueue_adds},
      {"poll.waitqueue_removes", poll_waitqueue_removes},
      {"poll.results_copied", poll_results_copied},
      {"devpoll.writes", devpoll_writes},
      {"devpoll.interests_written", devpoll_interests_written},
      {"devpoll.polls", devpoll_polls},
      {"devpoll.interests_scanned", devpoll_interests_scanned},
      {"devpoll.driver_calls", devpoll_driver_calls},
      {"devpoll.driver_calls_avoided", devpoll_driver_calls_avoided},
      {"devpoll.scan_stale_fd", devpoll_scan_stale_fd},
      {"devpoll.hints_set", devpoll_hints_set},
      {"devpoll.cached_ready_rechecks", devpoll_cached_ready_rechecks},
      {"devpoll.results_copied", devpoll_results_copied},
      {"devpoll.results_mapped", devpoll_results_mapped},
      {"devpoll.lock_read_acquires", devpoll_lock_read_acquires},
      {"devpoll.lock_write_acquires", devpoll_lock_write_acquires},
      {"devpoll.table_resizes", devpoll_table_resizes},
      {"rt.signals_queued", rt_signals_queued},
      {"rt.signals_dropped", rt_signals_dropped},
      {"rt.queue_overflows", rt_queue_overflows},
      {"rt.signals_delivered", rt_signals_delivered},
      {"rt.sigio_deliveries", sigio_deliveries},
      {"net.packets_delivered", packets_delivered},
      {"net.interrupts", interrupts},
      {"net.connections_refused", connections_refused},
  };
}

}  // namespace scio
