#include "src/kernel/kernel_stats.h"

namespace scio {

std::vector<std::pair<std::string, uint64_t>> KernelStats::ToRows() const {
  std::vector<std::pair<std::string, uint64_t>> rows;
  rows.reserve(kFieldCount);
#define SCIO_X(field, row_name) rows.emplace_back(row_name, field);
  SCIO_KERNEL_STATS_FIELDS(SCIO_X)
#undef SCIO_X
  return rows;
}

}  // namespace scio
