#include "src/kernel/wait_queue.h"

#include <algorithm>
#include <cassert>

namespace scio {

Waiter::~Waiter() {
  if (queue_ != nullptr) {
    queue_->Remove(this);
  }
}

void Waiter::Detach() {
  if (queue_ != nullptr) {
    queue_->Remove(this);
  }
}

WaitQueue::~WaitQueue() {
  // Orphan any still-registered waiters so their destructors don't touch us.
  for (Waiter* w : waiters_) {
    w->queue_ = nullptr;
    w->exclusive_ = false;
  }
}

void WaitQueue::Add(Waiter* w) {
  assert(w->queue_ == nullptr && "waiter already registered");
  w->queue_ = this;
  w->exclusive_ = false;
  waiters_.push_back(w);
}

void WaitQueue::AddExclusive(Waiter* w) {
  assert(w->queue_ == nullptr && "waiter already registered");
  w->queue_ = this;
  w->exclusive_ = true;
  waiters_.push_back(w);
  ++exclusive_count_;
}

void WaitQueue::Remove(Waiter* w) {
  if (w->queue_ != this) {
    return;
  }
  w->queue_ = nullptr;
  if (w->exclusive_) {
    w->exclusive_ = false;
    --exclusive_count_;
  }
  waiters_.erase(std::remove(waiters_.begin(), waiters_.end(), w), waiters_.end());
}

size_t WaitQueue::WakeOne() {
  // Copy: a wake callback may (indirectly) destroy a waiter.
  std::vector<Waiter*> snapshot = waiters_;
  size_t woken = 0;
  bool exclusive_woken = false;
  for (Waiter* w : snapshot) {
    if (w->queue_ != this) {
      continue;  // removed by an earlier callback in this pass
    }
    if (w->exclusive_) {
      if (exclusive_woken) {
        continue;  // one exclusive waiter per wake_up()
      }
      exclusive_woken = true;
    }
    w->on_wake_();
    ++woken;
  }
  return woken;
}

size_t WaitQueue::WakeAll() {
  // Copy: a wake callback may (indirectly) destroy a waiter.
  std::vector<Waiter*> snapshot = waiters_;
  size_t woken = 0;
  for (Waiter* w : snapshot) {
    if (w->queue_ == this) {
      w->on_wake_();
      ++woken;
    }
  }
  return woken;
}

}  // namespace scio
