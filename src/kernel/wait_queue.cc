#include "src/kernel/wait_queue.h"

#include <algorithm>
#include <cassert>

namespace scio {

Waiter::~Waiter() {
  if (queue_ != nullptr) {
    queue_->Remove(this);
  }
}

void Waiter::Detach() {
  if (queue_ != nullptr) {
    queue_->Remove(this);
  }
}

WaitQueue::~WaitQueue() {
  // Orphan any still-registered waiters so their destructors don't touch us.
  for (Waiter* w : waiters_) {
    w->queue_ = nullptr;
  }
}

void WaitQueue::Add(Waiter* w) {
  assert(w->queue_ == nullptr && "waiter already registered");
  w->queue_ = this;
  waiters_.push_back(w);
}

void WaitQueue::Remove(Waiter* w) {
  if (w->queue_ != this) {
    return;
  }
  w->queue_ = nullptr;
  waiters_.erase(std::remove(waiters_.begin(), waiters_.end(), w), waiters_.end());
}

void WaitQueue::WakeAll() {
  // Copy: a wake callback may (indirectly) destroy a waiter.
  std::vector<Waiter*> snapshot = waiters_;
  for (Waiter* w : snapshot) {
    if (w->queue_ == this) {
      w->on_wake_();
    }
  }
}

}  // namespace scio
