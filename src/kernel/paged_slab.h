// Paged slot storage and intrusive index-linked lists — the building blocks
// of the million-connection plane.
//
// Everything fd-shaped in the simulator (the descriptor table, server
// connection state, interest sets) used to live in containers whose constants
// stop working past ~10^5 entries: full-table vector copies on growth,
// per-entry heap nodes, O(open) snapshot scans. PagedStore replaces them
// with:
//
//   - fixed-size pages allocated on demand (a slot's page materializes the
//     first time any slot in it is used; the table itself is never copied —
//     the page-pointer directory is sized once from the limit);
//   - per-page occupancy bitmaps plus a page-level full bitmap, so
//     lowest-first allocation and ascending-index iteration both jump
//     straight to the next relevant slot with countr_zero instead of
//     scanning slots one by one;
//   - generation-tagged slots: releasing a slot bumps its generation, so a
//     stale handle (index, generation) from before a reuse can never resolve
//     to the new occupant;
//   - an optional MemLedger hookup that accounts every page under its
//     subsystem the moment it is allocated.
//
// IndexList threads nodes that live in a PagedStore onto intrusive lists
// whose links are slot *indices* stored inside the node — 8 bytes per list
// membership, no per-node allocation, O(1) push/unlink, and an iteration
// order that is an explicit function of insertion order (never of heap
// addresses), which is what keeps seeded runs bit-identical.

#ifndef SRC_KERNEL_PAGED_SLAB_H_
#define SRC_KERNEL_PAGED_SLAB_H_

#include <array>
#include <bit>
#include <cassert>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <vector>

#include "src/trace/mem_ledger.h"

namespace scio {

template <typename T, size_t kSlotsPerPage = 512>
class PagedStore {
  static_assert((kSlotsPerPage & (kSlotsPerPage - 1)) == 0 && kSlotsPerPage >= 64,
                "page size must be a power of two and at least one bitmap word");

 public:
  explicit PagedStore(size_t limit = 0) { set_limit(limit); }

  PagedStore(const PagedStore&) = delete;
  PagedStore& operator=(const PagedStore&) = delete;

  ~PagedStore() {
    if (mem_ != nullptr) {
      mem_->Sub(mem_sys_, tracked_bytes());
    }
  }

  // Must be called before any slot is used (the page directory is sized once
  // so it never reallocates mid-run).
  void set_limit(size_t limit) {
    assert(allocated_pages_ == 0 && "set_limit after pages exist");
    limit_ = limit;
    const size_t max_pages = (limit + kSlotsPerPage - 1) / kSlotsPerPage;
    pages_.resize(max_pages);
    full_bits_.assign((max_pages + 63) / 64, 0);
  }

  // Attach the byte ledger. Call before the first allocation; already-held
  // pages are recorded immediately so the ledger never undercounts.
  void set_mem_ledger(MemLedger* ledger, MemSys sys) {
    if (mem_ != nullptr) {
      mem_->Sub(mem_sys_, tracked_bytes());
    }
    mem_ = ledger;
    mem_sys_ = sys;
    if (mem_ != nullptr) {
      mem_->Add(mem_sys_, tracked_bytes());
    }
  }

  size_t limit() const { return limit_; }
  size_t size() const { return count_; }
  bool empty() const { return count_ == 0; }
  size_t allocated_pages() const { return allocated_pages_; }

  // Bytes of page storage currently held — what the MemLedger subsystem row
  // reports. Slot payloads' own heap (string capacity etc.) is not included;
  // parked slots deliberately retain it for reuse.
  size_t tracked_bytes() const { return allocated_pages_ * sizeof(Page); }

  bool Contains(size_t i) const {
    if (i >= limit_) {
      return false;
    }
    const Page* page = pages_[i / kSlotsPerPage].get();
    return page != nullptr && (page->bits[(i % kSlotsPerPage) / 64] &
                               (uint64_t{1} << (i % 64))) != 0;
  }

  // nullptr when the slot is absent.
  T* Get(size_t i) { return Contains(i) ? &pages_[i / kSlotsPerPage]->slots[i % kSlotsPerPage] : nullptr; }
  const T* Get(size_t i) const {
    return Contains(i) ? &pages_[i / kSlotsPerPage]->slots[i % kSlotsPerPage] : nullptr;
  }

  // Unchecked access to a slot known to be present (hot paths).
  T& At(size_t i) {
    assert(Contains(i));
    return pages_[i / kSlotsPerPage]->slots[i % kSlotsPerPage];
  }

  // Generation tag of slot i; bumped every release, so (index, generation)
  // pairs taken before a reuse can never resolve to the new occupant. Only
  // meaningful while Contains(i).
  uint32_t generation(size_t i) const {
    const Page* page = pages_[i / kSlotsPerPage].get();
    return page == nullptr ? 0 : page->gens[i % kSlotsPerPage];
  }

  // Mark slot i occupied and return its value object. The object is reused
  // across occupancies (default-constructed when the page materializes, then
  // parked on release), so callers reset the fields they care about — which
  // is exactly what lets churny slots keep their heap capacity.
  T& EmplaceAt(size_t i) {
    assert(i < limit_ && !Contains(i));
    Page* page = EnsurePage(i / kSlotsPerPage);
    const size_t s = i % kSlotsPerPage;
    page->bits[s / 64] |= uint64_t{1} << (s % 64);
    ++page->used;
    ++count_;
    UpdateFullBit(i / kSlotsPerPage, page);
    return page->slots[s];
  }

  // Mark slot i free and bump its generation. The value object stays parked
  // in place; the caller is responsible for resetting state it must not leak
  // (e.g. dropping a shared_ptr payload).
  void ReleaseAt(size_t i) {
    assert(Contains(i));
    Page* page = pages_[i / kSlotsPerPage].get();
    const size_t s = i % kSlotsPerPage;
    page->bits[s / 64] &= ~(uint64_t{1} << (s % 64));
    ++page->gens[s];
    --page->used;
    --count_;
    full_bits_[(i / kSlotsPerPage) / 64] &= ~(uint64_t{1} << ((i / kSlotsPerPage) % 64));
    if (i / kSlotsPerPage < lowest_maybe_free_page_) {
      lowest_maybe_free_page_ = i / kSlotsPerPage;
    }
  }

  // Occupy and return the lowest free slot, or -1 when every slot below the
  // limit is taken. O(1) amortized: the page-level full bitmap plus a
  // lowest-free hint jump straight to the first page with room, and the
  // page's own bitmap finds the slot with countr_zero.
  long AllocateLowest() {
    const size_t max_pages = pages_.size();
    size_t p = lowest_maybe_free_page_;
    size_t found = max_pages;
    for (size_t w = p / 64; w < full_bits_.size(); ++w) {
      uint64_t avail = ~full_bits_[w];
      if (w == p / 64) {
        avail &= ~uint64_t{0} << (p % 64);
      }
      if (avail != 0) {
        found = w * 64 + static_cast<size_t>(std::countr_zero(avail));
        break;
      }
    }
    if (found >= max_pages) {
      // sciolint: allow(E2) -- container full sentinel, not a syscall error
      return -1;
    }
    Page* page = EnsurePage(found);
    for (size_t pw = 0; pw < kWordsPerPage; ++pw) {
      const uint64_t free = ~page->bits[pw];
      if (free != 0) {
        const size_t s = pw * 64 + static_cast<size_t>(std::countr_zero(free));
        const size_t idx = found * kSlotsPerPage + s;
        assert(idx < limit_ && "full bitmap out of sync");
        page->bits[pw] |= uint64_t{1} << (s % 64);
        ++page->used;
        ++count_;
        UpdateFullBit(found, page);
        lowest_maybe_free_page_ = found;
        return static_cast<long>(idx);
      }
    }
    assert(false && "page marked non-full but no free slot");
    // sciolint: allow(E2) -- unreachable bitmap-desync sentinel, not a syscall
    return -1;
  }

  // Visit every occupied slot in ascending index order: fn(index, T&). The
  // callback must not insert or release (asserted in debug builds) —
  // deferred mutation is the contract, same as InterestHashTable::ForEach.
  template <typename Fn>
  void ForEach(Fn&& fn) {
    assert(!iterating_ && "re-entrant PagedStore::ForEach");
    iterating_ = true;
    for (size_t p = 0; p < pages_.size(); ++p) {
      Page* page = pages_[p].get();
      if (page == nullptr || page->used == 0) {
        continue;
      }
      for (size_t w = 0; w < kWordsPerPage; ++w) {
        uint64_t bits = page->bits[w];
        while (bits != 0) {
          const size_t s = w * 64 + static_cast<size_t>(std::countr_zero(bits));
          bits &= bits - 1;
          fn(p * kSlotsPerPage + s, page->slots[s]);
        }
      }
    }
    iterating_ = false;
  }

  template <typename Fn>
  void ForEach(Fn&& fn) const {
    for (size_t p = 0; p < pages_.size(); ++p) {
      const Page* page = pages_[p].get();
      if (page == nullptr || page->used == 0) {
        continue;
      }
      for (size_t w = 0; w < kWordsPerPage; ++w) {
        uint64_t bits = page->bits[w];
        while (bits != 0) {
          const size_t s = w * 64 + static_cast<size_t>(std::countr_zero(bits));
          bits &= bits - 1;
          fn(p * kSlotsPerPage + s, page->slots[s]);
        }
      }
    }
  }

 private:
  static constexpr size_t kWordsPerPage = kSlotsPerPage / 64;

  struct Page {
    std::array<T, kSlotsPerPage> slots{};
    std::array<uint32_t, kSlotsPerPage> gens{};
    uint64_t bits[kWordsPerPage] = {};
    uint32_t used = 0;
  };

  // Slots the page can legally hold: the last page may be partial.
  size_t PageCapacity(size_t p) const {
    const size_t base = p * kSlotsPerPage;
    return limit_ - base < kSlotsPerPage ? limit_ - base : kSlotsPerPage;
  }

  void UpdateFullBit(size_t p, const Page* page) {
    if (page->used == PageCapacity(p)) {
      full_bits_[p / 64] |= uint64_t{1} << (p % 64);
    }
  }

  Page* EnsurePage(size_t p) {
    if (pages_[p] == nullptr) {
      pages_[p] = std::make_unique<Page>();
      ++allocated_pages_;
      if (mem_ != nullptr) {
        mem_->Add(mem_sys_, sizeof(Page));
      }
    }
    return pages_[p].get();
  }

  std::vector<std::unique_ptr<Page>> pages_;
  std::vector<uint64_t> full_bits_;  // bit p: page p exists and is full
  size_t limit_ = 0;
  size_t count_ = 0;
  size_t allocated_pages_ = 0;
  size_t lowest_maybe_free_page_ = 0;
  bool iterating_ = false;
  MemLedger* mem_ = nullptr;
  MemSys mem_sys_ = MemSys::kOtherMem;
};

// --- intrusive index-linked lists ------------------------------------------

inline constexpr int32_t kNilIndex = -1;       // end of list
inline constexpr int32_t kDetachedIndex = -2;  // not on the list at all

struct IndexLink {
  int32_t prev = kDetachedIndex;
  int32_t next = kDetachedIndex;
  bool linked() const { return prev != kDetachedIndex; }
};

// Doubly-linked list over nodes living in a PagedStore, linked by slot index
// through an IndexLink member. Push order is the iteration order. Unlinking
// the node an iteration currently stands on is safe as long as the iteration
// reads `next` before invoking whatever unlinks (the walk helpers in
// ConnTable do exactly that).
template <typename Node, IndexLink Node::*Link, size_t kSlotsPerPage = 512>
class IndexList {
 public:
  explicit IndexList(PagedStore<Node, kSlotsPerPage>* store) : store_(store) {}

  bool empty() const { return size_ == 0; }
  size_t size() const { return size_; }
  int32_t front() const { return head_; }
  int32_t back() const { return tail_; }

  int32_t NextOf(int32_t i) const { return L(i).next; }
  bool Linked(int32_t i) const { return L(i).linked(); }

  void PushBack(int32_t i) {
    IndexLink& link = L(i);
    assert(!link.linked() && "PushBack on a linked node");
    link.prev = tail_;
    link.next = kNilIndex;
    if (tail_ != kNilIndex) {
      L(tail_).next = i;
    } else {
      head_ = i;
    }
    tail_ = i;
    ++size_;
  }

  void Unlink(int32_t i) {
    IndexLink& link = L(i);
    assert(link.linked() && "Unlink on a detached node");
    if (link.prev != kNilIndex) {
      L(link.prev).next = link.next;
    } else {
      head_ = link.next;
    }
    if (link.next != kNilIndex) {
      L(link.next).prev = link.prev;
    } else {
      tail_ = link.prev;
    }
    link.prev = kDetachedIndex;
    link.next = kDetachedIndex;
    --size_;
  }

  // Refresh a node's position to the back (most recent). The workhorse of
  // the activity-ordered expiry list: every touch is O(1), and the front of
  // the list is always the least recently active node.
  void MoveToBack(int32_t i) {
    if (tail_ == i) {
      return;
    }
    Unlink(i);
    PushBack(i);
  }

 private:
  IndexLink& L(int32_t i) { return store_->At(static_cast<size_t>(i)).*Link; }
  const IndexLink& L(int32_t i) const {
    return const_cast<PagedStore<Node, kSlotsPerPage>*>(store_)->At(static_cast<size_t>(i)).*Link;
  }

  PagedStore<Node, kSlotsPerPage>* store_;
  int32_t head_ = kNilIndex;
  int32_t tail_ = kNilIndex;
  size_t size_ = 0;
};

}  // namespace scio

#endif  // SRC_KERNEL_PAGED_SLAB_H_
