// Virtual-CPU cost model.
//
// Every simulated kernel or server operation charges a fixed number of
// nanoseconds of virtual CPU time to the (single) server CPU. The paper's
// scalability results are entirely about where CPU time goes as interest sets
// grow, so this table is the heart of the reproduction. Values are expressed
// on the paper's server hardware scale (400 MHz AMD K6-2): syscall traps cost
// tens of microseconds and a 6 KB response costs a few hundred microseconds
// of copy/checksum work, which saturates the server near 1000 replies/s as in
// the paper. EXPERIMENTS.md records the calibration.

#ifndef SRC_KERNEL_COST_MODEL_H_
#define SRC_KERNEL_COST_MODEL_H_

#include "src/sim/time.h"

namespace scio {

struct CostModel {
  // Uniform multiplier applied to every charge; lets a benchmark model a
  // faster or slower CPU without retuning individual entries.
  double cpu_scale = 1.0;

  // --- generic syscall costs -------------------------------------------------
  SimDuration syscall_entry = Micros(15);  // trap + kernel entry/exit

  // --- socket syscalls (charged on top of syscall_entry) ----------------------
  SimDuration accept_extra = Micros(40);  // socket + file allocation
  SimDuration read_extra = Micros(8);
  SimDuration read_per_byte = Nanos(40);
  SimDuration write_extra = Micros(8);
  SimDuration write_per_byte = Nanos(75);  // copy + checksum + driver queue
  SimDuration close_extra = Micros(10);
  SimDuration fcntl_extra = Micros(2);

  // --- classic poll() ---------------------------------------------------------
  // Stock poll copies the whole interest set in, invokes every file's driver
  // poll callback, manipulates a wait queue entry per fd when it blocks, and
  // copies results out.
  SimDuration poll_copyin_per_fd = Nanos(700);
  // The driver poll callback chain (fget, sock_poll -> tcp_poll, wait-queue
  // registration, cache misses across hundreds of cold sockets) on a
  // 400 MHz part: ~12000 cycles. This is the dominant per-idle-fd cost the
  // paper's /dev/poll hints eliminate.
  SimDuration poll_driver_poll_per_fd = Micros(30);
  SimDuration poll_waitqueue_add_per_fd = Nanos(2200);
  SimDuration poll_waitqueue_remove_per_fd = Nanos(1800);
  SimDuration poll_copyout_per_ready = Nanos(800);
  // User-space cost for legacy applications that rebuild their pollfd array
  // from scratch before every call (thttpd and phhttpd both do).
  SimDuration poll_userspace_rebuild_per_fd = Nanos(500);

  // --- /dev/poll --------------------------------------------------------------
  SimDuration devpoll_write_per_fd = Nanos(1200);   // copyin + hash update
  SimDuration devpoll_scan_per_interest = Nanos(270);  // touch entry, test hint
  SimDuration devpoll_copyout_per_ready = Nanos(800);  // skipped with mmap
  SimDuration devpoll_hint_set = Nanos(300);  // driver-side backmap mark (interrupt)
  SimDuration devpoll_ioctl_extra = Micros(1);
  SimDuration devpoll_lock_acquire = Nanos(120);  // backmap rwlock, counted

  // --- successor event cores (epoll-style / kqueue-style) ----------------------
  // The epoll-style core: interest mutations touch one slab slot, the driver
  // pushes ready descriptors onto a kernel ready list (interrupt context),
  // and a wait harvests only that list — never the full interest set.
  SimDuration epoll_ctl_extra = Nanos(1500);     // one interest-slab slot update
  SimDuration epoll_ready_enqueue = Nanos(250);  // driver-side ready-list link
  SimDuration epoll_wait_per_event = Nanos(350); // ready-list dequeue + revalidate
  SimDuration epoll_copyout_per_event = Nanos(800);
  // The kqueue-style filter core: one kevent() applies a changelist and
  // harvests an eventlist in the same trap; per-(fd,filter) knotes activate
  // from interrupt context and are re-filtered at harvest.
  SimDuration kq_kevent_extra = Micros(1);       // changelist/eventlist setup
  SimDuration kq_change_per_entry = Nanos(1300); // apply one changelist entry
  SimDuration kq_knote_activate = Nanos(250);    // knote -> active list (interrupt)
  SimDuration kq_filter_eval = Nanos(300);       // re-run one filter at harvest
  SimDuration kq_copyout_per_event = Nanos(800);

  // --- POSIX RT signals ---------------------------------------------------------
  // One sigwaitinfo() trap per event is the cost the paper blames for
  // phhttpd faltering under load (§5.2): dequeue, siginfo copyout, signal
  // mask manipulation.
  SimDuration rt_sigwaitinfo_extra = Micros(85);
  SimDuration rt_sigwait_per_extra_sig = Micros(3);  // batch dequeue marginal cost
  // Copying one additional siginfo to userspace during a sigtimedwait4 batch
  // dequeue. The batch amortizes the trap and the mask manipulation, but
  // every entry beyond the first (whose copyout rt_sigwaitinfo_extra already
  // covers) still pays its own copyout.
  SimDuration rt_siginfo_copyout = Micros(2);
  // Kernel-side enqueue: allocate the siginfo, walk the fasync list, queue —
  // charged as interrupt-context debt.
  SimDuration rt_signal_enqueue = Micros(25);
  // Discarding one queued siginfo during SIG_DFL flush (overflow recovery).
  SimDuration rt_signal_flush_per_sig = Micros(10);
  // phhttpd's overflow handoff (§6): each connection is passed one at a time
  // to the poll sibling over a UNIX domain socket.
  SimDuration rt_overflow_handoff_per_conn = Micros(120);

  // --- interrupt / network processing (charged as debt while busy) -------------
  SimDuration interrupt_per_packet = Micros(9);

  // --- ingress filter chain (netfilter-style; "Performance Evaluation of
  // netfilter" measures per-rule traversal as a first-class overhead) ----------
  SimDuration filter_match_per_rule = Nanos(300);  // test one rule, miss or hit
  SimDuration filter_drop_extra = Nanos(500);      // execute a DROP verdict
  // Stateless SYN-ACK generation when the SYN backlog saturates: hash compute
  // on a 400 MHz part, paid per cookie instead of per half-open slot.
  SimDuration syncookie_cost = Micros(6);
  SimDuration synq_reap_per_entry = Nanos(200);  // free one timed-out half-open
  // Graceful-degradation controller: one pressure scan per tick (process
  // context), plus a chain mutation when a rule is inserted or removed.
  SimDuration defense_tick = Micros(10);
  SimDuration filter_rule_update = Micros(2);

  // --- transport plane (opt-in TCP model; charged as interrupt-context debt
  // on the server side only — the client machine's CPU stays free) -------------
  SimDuration tcp_segment_cost = Micros(2);     // carve + header + queue one MSS
  SimDuration tcp_ack_generate = Micros(2);     // build cumulative ACK + SACK blocks
  SimDuration tcp_ack_process = Micros(3);      // scoreboard update per ACK received
  SimDuration tcp_retransmit_extra = Micros(4); // on top of tcp_segment_cost
  SimDuration tcp_pacing_release = Micros(1);   // pacing-timer fire + dequeue

  // --- SMP scheduling ------------------------------------------------------------
  // Charged when a virtual CPU switches which worker it runs: register/TLB
  // state plus the cold caches the incoming worker finds (2.2-era x86).
  SimDuration smp_context_switch = Micros(5);

  // --- application-level work ----------------------------------------------------
  SimDuration http_parse_base = Micros(25);     // per parser invocation
  SimDuration http_parse_per_byte = Nanos(600);  // per request byte fed
  SimDuration http_build_response = Micros(70);
  SimDuration server_loop_overhead = Micros(40);  // per event-loop iteration
  SimDuration server_timer_sweep_per_conn = Micros(8);  // periodic timeout scan
  SimDuration server_conn_setup = Micros(12);   // allocate + init conn state
  SimDuration server_conn_teardown = Micros(8);
};

}  // namespace scio

#endif  // SRC_KERNEL_COST_MODEL_H_
