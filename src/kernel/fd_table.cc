#include "src/kernel/fd_table.h"

#include <utility>

namespace scio {

int FdTable::Allocate(std::shared_ptr<File> file) {
  const long fd = slots_.AllocateLowest();
  if (fd < 0) {
    // sciolint: allow(E2) -- pinned -1 API; Sys::Accept maps this to kErrMFile
    return -1;
  }
  file->set_fd_number(static_cast<int>(fd));
  slots_.At(static_cast<size_t>(fd)) = std::move(file);
  return static_cast<int>(fd);
}

std::shared_ptr<File> FdTable::Get(int fd) const {
  if (fd < 0 || !slots_.Contains(static_cast<size_t>(fd))) {
    return nullptr;
  }
  return slots_.At(static_cast<size_t>(fd));
}

int FdTable::Close(int fd) {
  std::shared_ptr<File> file = Get(fd);
  if (file == nullptr) {
    // sciolint: allow(E2) -- pinned -1 API (EBADF); Sys layer owns errno codes
    return -1;
  }
  slots_.At(static_cast<size_t>(fd)).reset();
  slots_.ReleaseAt(static_cast<size_t>(fd));
  file->OnFdClose();
  return 0;
}

std::vector<int> FdTable::OpenFds() const {
  std::vector<int> fds;
  fds.reserve(slots_.size());
  ForEachOpenFd([&fds](int fd, const std::shared_ptr<File>&) { fds.push_back(fd); });
  return fds;
}

}  // namespace scio
