#include "src/kernel/fd_table.h"

#include <utility>

namespace scio {

int FdTable::Allocate(std::shared_ptr<File> file) {
  int fd;
  if (!free_fds_.empty()) {
    fd = free_fds_.top();
    free_fds_.pop();
  } else {
    if (static_cast<int>(slots_.size()) >= max_fds_) {
      return -1;
    }
    fd = static_cast<int>(slots_.size());
    slots_.emplace_back();
  }
  file->set_fd_number(fd);
  slots_[fd] = std::move(file);
  ++open_count_;
  return fd;
}

std::shared_ptr<File> FdTable::Get(int fd) const {
  if (fd < 0 || fd >= static_cast<int>(slots_.size())) {
    return nullptr;
  }
  return slots_[fd];
}

int FdTable::Close(int fd) {
  std::shared_ptr<File> file = Get(fd);
  if (file == nullptr) {
    return -1;
  }
  slots_[fd] = nullptr;
  free_fds_.push(fd);
  --open_count_;
  file->OnFdClose();
  return 0;
}

std::vector<int> FdTable::OpenFds() const {
  std::vector<int> fds;
  for (int fd = 0; fd < static_cast<int>(slots_.size()); ++fd) {
    if (slots_[fd] != nullptr) {
      fds.push_back(fd);
    }
  }
  return fds;
}

}  // namespace scio
