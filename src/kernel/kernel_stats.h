// Observability counters for the simulated kernel.
//
// Every interesting kernel-side operation increments a counter here, which is
// how benchmarks and the ablation studies attribute costs (driver poll calls
// avoided by hints, result copies eliminated by the mmap area, signal queue
// overflows, ...). Plain fields, not a map: counters are on hot paths.
//
// The field list is a single X-macro: the struct members and the ToRows()
// export are generated from it, so a new counter cannot be added to one
// without the other (the old hand-maintained row list silently drifted).
// A static_assert below additionally pins sizeof(KernelStats) to the field
// count, so a member added outside the macro fails to compile.

#ifndef SRC_KERNEL_KERNEL_STATS_H_
#define SRC_KERNEL_KERNEL_STATS_H_

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

namespace scio {

// X(field, row_name)
#define SCIO_KERNEL_STATS_FIELDS(X)                                            \
  /* Syscall surface. Row names follow the subsystem.metric convention        \
     (sciolint M1), same as every other group below. */                        \
  X(syscalls, "sys.syscalls")                                                  \
  X(accepts, "sys.accepts")                                                    \
  X(reads, "sys.reads")                                                        \
  X(writes, "sys.writes")                                                      \
  X(closes, "sys.closes")                                                      \
  X(fcntls, "sys.fcntls")                                                      \
  X(bytes_read, "sys.bytes_read")                                              \
  X(bytes_written, "sys.bytes_written")                                        \
  /* Classic poll(). */                                                        \
  X(poll_calls, "poll.calls")                                                  \
  X(poll_fds_scanned, "poll.fds_scanned")                                      \
  X(poll_driver_calls, "poll.driver_calls")                                    \
  X(poll_waitqueue_adds, "poll.waitqueue_adds")                                \
  X(poll_waitqueue_removes, "poll.waitqueue_removes")                          \
  X(poll_results_copied, "poll.results_copied")                                \
  /* /dev/poll. */                                                             \
  X(devpoll_writes, "devpoll.writes")                                          \
  X(devpoll_interests_written, "devpoll.interests_written")                    \
  X(devpoll_polls, "devpoll.polls")                                            \
  X(devpoll_interests_scanned, "devpoll.interests_scanned")                    \
  X(devpoll_driver_calls, "devpoll.driver_calls")                              \
  X(devpoll_driver_calls_avoided, "devpoll.driver_calls_avoided")              \
  /* Scanned interests whose fd was closed (POLLNVAL): no driver call          \
     happens. Invariant: interests_scanned == driver_calls + avoided +         \
     scan_stale_fd (pinned by DevPollTest). */                                 \
  X(devpoll_scan_stale_fd, "devpoll.scan_stale_fd")                            \
  X(devpoll_hints_set, "devpoll.hints_set")                                    \
  X(devpoll_cached_ready_rechecks, "devpoll.cached_ready_rechecks")            \
  X(devpoll_results_copied, "devpoll.results_copied")                          \
  X(devpoll_results_mapped, "devpoll.results_mapped")                          \
  X(devpoll_lock_read_acquires, "devpoll.lock_read_acquires")                  \
  X(devpoll_lock_write_acquires, "devpoll.lock_write_acquires")                \
  X(devpoll_table_resizes, "devpoll.table_resizes")                            \
  /* Epoll-style successor core. */                                            \
  X(epoll_ctls, "epoll.ctls")                                                  \
  X(epoll_waits, "epoll.waits")                                                \
  X(epoll_ready_enqueues, "epoll.ready_enqueues")                              \
  X(epoll_events_delivered, "epoll.events_delivered")                          \
  /* Ready-list entries revalidated whose driver mask no longer matches       \
     (LT recheck or consumed edge): unlinked, nothing delivered. */            \
  X(epoll_spurious_ready, "epoll.spurious_ready")                              \
  X(epoll_stale_drops, "epoll.stale_drops")                                    \
  /* Kqueue-style filter core. */                                              \
  X(kq_kevents, "kq.kevents")                                                  \
  X(kq_changes_applied, "kq.changes_applied")                                  \
  X(kq_knote_activations, "kq.knote_activations")                              \
  X(kq_events_delivered, "kq.events_delivered")                                \
  X(kq_spurious_active, "kq.spurious_active")                                  \
  /* RT signals. */                                                            \
  X(rt_signals_queued, "rt.signals_queued")                                    \
  X(rt_signals_dropped, "rt.signals_dropped")                                  \
  X(rt_queue_overflows, "rt.queue_overflows")                                  \
  X(rt_signals_delivered, "rt.signals_delivered")                              \
  X(sigio_deliveries, "rt.sigio_deliveries")                                   \
  /* Network / interrupts. */                                                  \
  X(packets_delivered, "net.packets_delivered")                                \
  X(interrupts, "net.interrupts")                                              \
  X(connections_refused, "net.connections_refused")                            \
  /* SYN backlog (half-open queue + syncookie fallback). */                    \
  X(net_raw_syns, "net.raw_syns")                                              \
  X(net_syn_backlog_overflows, "net.syn_backlog_overflows")                    \
  X(net_syncookies_sent, "net.syncookies_sent")                                \
  X(net_half_open_reaped, "net.half_open_reaped")                              \
  /* Ingress filter chain. */                                                  \
  X(filter_evals, "filter.evals")                                              \
  X(filter_rules_traversed, "filter.rules_traversed")                          \
  X(filter_drops, "filter.drops")                                              \
  X(filter_rate_limit_drops, "filter.rate_limit_drops")                        \
  /* Wait queues / SMP scheduling. */                                          \
  X(wait_listener_syn_wakeups, "wait.listener_syn_wakeups")                    \
  X(wait_exclusive_adds, "wait.exclusive_adds")                                \
  X(smp_context_switches, "smp.context_switches")

struct KernelStats {
#define SCIO_X(field, row_name) uint64_t field = 0;
  SCIO_KERNEL_STATS_FIELDS(SCIO_X)
#undef SCIO_X

  // Number of counters (== ToRows().size()).
  static constexpr size_t kFieldCount = []() constexpr {
    size_t n = 0;
#define SCIO_X(field, row_name) ++n;
    SCIO_KERNEL_STATS_FIELDS(SCIO_X)
#undef SCIO_X
    return n;
  }();

  // Export all counters as (name, value) pairs, for table printers.
  std::vector<std::pair<std::string, uint64_t>> ToRows() const;
};

// Drift guard: a counter added as a plain member (outside the X-macro) would
// grow the struct without growing the row export — refuse to compile.
static_assert(sizeof(KernelStats) == KernelStats::kFieldCount * sizeof(uint64_t),
              "add KernelStats counters via SCIO_KERNEL_STATS_FIELDS, not as "
              "plain members");

}  // namespace scio

#endif  // SRC_KERNEL_KERNEL_STATS_H_
