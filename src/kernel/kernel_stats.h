// Observability counters for the simulated kernel.
//
// Every interesting kernel-side operation increments a counter here, which is
// how benchmarks and the ablation studies attribute costs (driver poll calls
// avoided by hints, result copies eliminated by the mmap area, signal queue
// overflows, ...). Plain fields, not a map: counters are on hot paths.

#ifndef SRC_KERNEL_KERNEL_STATS_H_
#define SRC_KERNEL_KERNEL_STATS_H_

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

namespace scio {

struct KernelStats {
  // Syscall surface.
  uint64_t syscalls = 0;
  uint64_t accepts = 0;
  uint64_t reads = 0;
  uint64_t writes = 0;
  uint64_t closes = 0;
  uint64_t fcntls = 0;
  uint64_t bytes_read = 0;
  uint64_t bytes_written = 0;

  // Classic poll().
  uint64_t poll_calls = 0;
  uint64_t poll_fds_scanned = 0;
  uint64_t poll_driver_calls = 0;
  uint64_t poll_waitqueue_adds = 0;
  uint64_t poll_waitqueue_removes = 0;
  uint64_t poll_results_copied = 0;

  // /dev/poll.
  uint64_t devpoll_writes = 0;
  uint64_t devpoll_interests_written = 0;
  uint64_t devpoll_polls = 0;
  uint64_t devpoll_interests_scanned = 0;
  uint64_t devpoll_driver_calls = 0;
  uint64_t devpoll_driver_calls_avoided = 0;
  // Scanned interests whose fd was closed (POLLNVAL): no driver call happens.
  // Invariant: interests_scanned == driver_calls + driver_calls_avoided +
  // scan_stale_fd (pinned by DevPollTest).
  uint64_t devpoll_scan_stale_fd = 0;
  uint64_t devpoll_hints_set = 0;
  uint64_t devpoll_cached_ready_rechecks = 0;
  uint64_t devpoll_results_copied = 0;
  uint64_t devpoll_results_mapped = 0;
  uint64_t devpoll_lock_read_acquires = 0;
  uint64_t devpoll_lock_write_acquires = 0;
  uint64_t devpoll_table_resizes = 0;

  // RT signals.
  uint64_t rt_signals_queued = 0;
  uint64_t rt_signals_dropped = 0;
  uint64_t rt_queue_overflows = 0;
  uint64_t rt_signals_delivered = 0;
  uint64_t sigio_deliveries = 0;

  // Network / interrupts.
  uint64_t packets_delivered = 0;
  uint64_t interrupts = 0;
  uint64_t connections_refused = 0;

  // Export all counters as (name, value) pairs, for table printers.
  std::vector<std::pair<std::string, uint64_t>> ToRows() const;
};

}  // namespace scio

#endif  // SRC_KERNEL_KERNEL_STATS_H_
