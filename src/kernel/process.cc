#include "src/kernel/process.h"

namespace scio {

bool Process::QueueSignal(const SigInfo& si) {
  if (rt_queue_len_ >= rt_queue_max_) {
    RaiseSigIo();
    return false;
  }
  rt_queues_[si.signo].push_back(si);
  ++rt_queue_len_;
  if (rt_queue_len_ > rt_queue_peak_) {
    rt_queue_peak_ = rt_queue_len_;
  }
  Wake();
  return true;
}

std::optional<SigInfo> Process::DequeueSignal() {
  if (sigio_pending_) {
    sigio_pending_ = false;
    return SigInfo{kSigIo, -1, 0};
  }
  for (auto& [signo, queue] : rt_queues_) {
    if (!queue.empty()) {
      SigInfo si = queue.front();
      queue.pop_front();
      --rt_queue_len_;
      return si;
    }
  }
  return std::nullopt;
}

std::optional<SigInfo> Process::PeekSignal() const {
  if (sigio_pending_) {
    return SigInfo{kSigIo, -1, 0};
  }
  for (const auto& [signo, queue] : rt_queues_) {
    if (!queue.empty()) {
      return queue.front();
    }
  }
  return std::nullopt;
}

size_t Process::FlushRtSignals() {
  // SIG_DFL discards pending instances of the reset signals, including a
  // pending SIGIO — recovery code that flushed must rescan with poll().
  const size_t n = rt_queue_len_;
  rt_queues_.clear();
  rt_queue_len_ = 0;
  sigio_pending_ = false;
  return n;
}

}  // namespace scio
