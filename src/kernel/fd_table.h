// Per-process file descriptor table.
//
// POSIX semantics that matter for the paper's workloads: descriptors are
// allocated lowest-free-first, the table has a hard size limit (httperf had to
// be modified to cope with >1024 descriptors, §5), and a close() drops the
// table's reference while interest sets may keep the File alive — which is
// exactly how stale /dev/poll interests and stale RT signals arise.

#ifndef SRC_KERNEL_FD_TABLE_H_
#define SRC_KERNEL_FD_TABLE_H_

#include <memory>
#include <queue>
#include <vector>

#include "src/kernel/file.h"

namespace scio {

class FdTable {
 public:
  explicit FdTable(int max_fds = 8192) : max_fds_(max_fds) {}

  // Install a file under the lowest free descriptor. Returns the fd, or -1
  // if the table is full (EMFILE).
  int Allocate(std::shared_ptr<File> file);

  // nullptr if fd is out of range or closed.
  std::shared_ptr<File> Get(int fd) const;

  // Returns 0, or -1 if fd was not open (EBADF). Runs the file's OnFdClose
  // hook before releasing the slot.
  int Close(int fd);

  int max_fds() const { return max_fds_; }
  size_t open_count() const { return open_count_; }

  // Snapshot of all open descriptors in ascending order.
  std::vector<int> OpenFds() const;

 private:
  int max_fds_;
  size_t open_count_ = 0;
  std::vector<std::shared_ptr<File>> slots_;
  std::priority_queue<int, std::vector<int>, std::greater<int>> free_fds_;
};

}  // namespace scio

#endif  // SRC_KERNEL_FD_TABLE_H_
