// Per-process file descriptor table.
//
// POSIX semantics that matter for the paper's workloads: descriptors are
// allocated lowest-free-first, the table has a hard size limit (httperf had to
// be modified to cope with >1024 descriptors, §5), and a close() drops the
// table's reference while interest sets may keep the File alive — which is
// exactly how stale /dev/poll interests and stale RT signals arise.
//
// Storage is a PagedStore: pages of 512 slots materialize on first use, the
// page-level bitmaps give lowest-free-first allocation and ascending-fd
// iteration without scanning empty ranges, and the table is never copied as
// it grows — a 1M-fd process costs exactly the pages its descriptors touch.
// Slots carry generation tags: an FdHandle captured before a close/reuse
// cycle refuses to resolve against the descriptor's new occupant, the
// in-sim analogue of the stale-descriptor races the paper's interest sets
// suffer from.

#ifndef SRC_KERNEL_FD_TABLE_H_
#define SRC_KERNEL_FD_TABLE_H_

#include <memory>
#include <vector>

#include "src/kernel/file.h"
#include "src/kernel/paged_slab.h"

namespace scio {

// A generation-stamped descriptor reference. Resolve() yields the File only
// while the descriptor has not been closed and reused since the handle was
// taken.
struct FdHandle {
  int fd = -1;
  uint32_t gen = 0;
  bool valid() const { return fd >= 0; }
};

class FdTable {
 public:
  explicit FdTable(int max_fds = 8192) : slots_(static_cast<size_t>(max_fds)), max_fds_(max_fds) {}

  // Install a file under the lowest free descriptor. Returns the fd, or -1
  // if the table is full (EMFILE).
  int Allocate(std::shared_ptr<File> file);

  // nullptr if fd is out of range or closed.
  std::shared_ptr<File> Get(int fd) const;

  // Returns 0, or -1 if fd was not open (EBADF). Runs the file's OnFdClose
  // hook before releasing the slot.
  int Close(int fd);

  int max_fds() const { return max_fds_; }
  size_t open_count() const { return slots_.size(); }

  // Current generation tag of fd's slot (bumped on every close). 0 for
  // out-of-range fds.
  uint32_t generation(int fd) const {
    return fd < 0 ? 0 : slots_.generation(static_cast<size_t>(fd));
  }

  // Generation-stamped handle for an open fd; invalid handle otherwise.
  FdHandle Handle(int fd) const {
    std::shared_ptr<File> f = Get(fd);
    return f == nullptr ? FdHandle{} : FdHandle{fd, generation(fd)};
  }

  // The File behind a handle, or nullptr if the descriptor has been closed
  // (even if the fd number has since been reused by a different File).
  std::shared_ptr<File> Resolve(const FdHandle& h) const {
    if (!h.valid() || !slots_.Contains(static_cast<size_t>(h.fd)) ||
        slots_.generation(static_cast<size_t>(h.fd)) != h.gen) {
      return nullptr;
    }
    return slots_.At(static_cast<size_t>(h.fd));
  }

  // Allocation-free visit of every open descriptor in ascending fd order:
  // fn(int fd, const std::shared_ptr<File>&). No open/close inside fn.
  template <typename Fn>
  void ForEachOpenFd(Fn&& fn) const {
    slots_.ForEach([&fn](size_t i, const std::shared_ptr<File>& f) {
      fn(static_cast<int>(i), f);
    });
  }

  // Snapshot of all open descriptors in ascending order. Allocates; prefer
  // ForEachOpenFd on hot paths.
  std::vector<int> OpenFds() const;

  // Bytes of page storage currently held by the table.
  size_t tracked_bytes() const { return slots_.tracked_bytes(); }

  // Account this table's pages under MemSys::kFdTable.
  void set_mem_ledger(MemLedger* ledger) { slots_.set_mem_ledger(ledger, MemSys::kFdTable); }

 private:
  // At() on hot paths is safe: every caller has checked Contains first.
  mutable PagedStore<std::shared_ptr<File>> slots_;
  int max_fds_;
};

}  // namespace scio

#endif  // SRC_KERNEL_FD_TABLE_H_
