// SimKernel: the simulated machine.
//
// Binds the discrete-event simulator to a cost model and process contexts.
// Two time-accounting primitives drive everything:
//
//   Charge(ns)   — the running process consumes virtual CPU. The clock moves
//                  forward and any network/client events that fall inside the
//                  busy window execute first, so packets keep arriving while
//                  the server computes. Pending interrupt debt is folded in.
//
//   ChargeDebt() — interrupt-context work (packet processing, RT signal
//                  enqueueing, hint marking). It cannot advance the clock
//                  from inside an event callback, so it accrues as debt that
//                  the next Charge() pays. While the server is blocked, debt
//                  is absorbed by idle time instead (see BlockProcess).
//
// Every charge names a ChargeCat, and the TimeAttribution ledger keeps the
// hard invariant  attribution().Sum() == busy_time()  at every instant: a
// multi-part charge (one syscall trap plus per-byte copy work, say) passes
// one ChargeItem per category but is applied as a single charge, so the
// clock motion — and therefore every seeded run — is bit-identical to an
// untagged charge of the same total.
//
// BlockProcess() implements blocking syscalls: it runs simulation events
// until the process is woken (by a wait-queue wakeup or a signal) or a
// deadline passes.

#ifndef SRC_KERNEL_SIM_KERNEL_H_
#define SRC_KERNEL_SIM_KERNEL_H_

#include <initializer_list>
#include <memory>
#include <string>
#include <vector>

#include "src/fault/fault_plane.h"
#include "src/kernel/cost_model.h"
#include "src/kernel/kernel_stats.h"
#include "src/kernel/process.h"
#include "src/sim/simulator.h"
#include "src/trace/flight_recorder.h"
#include "src/trace/mem_ledger.h"
#include "src/trace/time_attribution.h"

namespace scio {

// One component of a (possibly multi-category) charge.
struct ChargeItem {
  ChargeCat cat;
  SimDuration d;
};

// Hook interface for the SMP scheduling plane (src/smp). When a plane is
// attached and the calling code runs in a worker's context, Charge() and
// BlockProcess() delegate clock motion to the plane: a worker's charge moves
// its *local* CPU clock (the global clock advances only when the scheduler
// runs simulation events up to the next runnable worker), and a blocked
// worker yields its CPU instead of stepping the simulator inline. With no
// plane attached — every pre-SMP configuration — both paths are untouched,
// so single-CPU runs stay bit-identical. Declared here (not in src/smp) so
// scio_kernel does not depend on the scheduler library.
class SmpPlane {
 public:
  virtual ~SmpPlane() = default;
  // True when called from a scheduled worker (as opposed to the main thread
  // assembling the world or an event callback).
  virtual bool InWorkerContext() const = 0;
  // The running worker consumed `total` ns of virtual CPU (debt included).
  virtual void OnCharge(SimDuration total) = 0;
  // Block the running worker until proc.Wake() or `deadline`. Returns the
  // wake flag's state on resume (false = timeout / simulation stop).
  virtual bool OnBlock(Process& proc, SimTime deadline) = 0;
  // Mirror of TimeAttribution::Add for the running worker's CPU ledger.
  virtual void OnAttribute(ChargeCat cat, SimDuration d) = 0;
};

class SimKernel {
 public:
  explicit SimKernel(Simulator* sim, CostModel cost = CostModel{})
      : sim_(sim), cost_(cost) {
    // Timer-wheel slabs count as kernel memory (MemSys::kTimers). The queue
    // reports through a plain function-pointer hook so scio_sim needs no
    // knowledge of the ledger.
    sim_->queue().set_mem_hook(&SimKernel::TimerMemHook, this);
  }
  ~SimKernel() {
    // The queue outlives this kernel in the usual declaration order; detach
    // so late pool growth cannot write into a dead ledger.
    sim_->queue().set_mem_hook(nullptr, nullptr);
  }
  SimKernel(const SimKernel&) = delete;
  SimKernel& operator=(const SimKernel&) = delete;

  Simulator& sim() { return *sim_; }
  SimTime now() const { return sim_->now(); }
  CostModel& cost() { return cost_; }
  const CostModel& cost() const { return cost_; }
  KernelStats& stats() { return stats_; }

  Process& CreateProcess(std::string name, int max_fds = 8192);

  // Scale a raw cost-model duration by cpu_scale.
  SimDuration Scaled(SimDuration d) const {
    return static_cast<SimDuration>(static_cast<double>(d) * cost_.cpu_scale);
  }

  // Consume virtual CPU in process context (see file comment), attributed to
  // `cat` in the ledger.
  void Charge(SimDuration d, ChargeCat cat) { Charge({{cat, d}}); }

  // Multi-category variant: applied as ONE charge of the summed duration
  // (identical clock motion), attributed per item. The scaled total is
  // attributed exactly; any cpu_scale rounding remainder lands on the last
  // item so the ledger invariant never drifts.
  void Charge(std::initializer_list<ChargeItem> items);

  // Record interrupt-context work to be paid by the next Charge().
  void ChargeDebt(SimDuration d, ChargeCat cat) {
    const SimDuration scaled = Scaled(d);
    interrupt_debt_ += scaled;
    debt_by_cat_[static_cast<size_t>(cat)] += scaled;
  }

  // Block `proc` until Wake() or `deadline`. Returns true if woken, false on
  // timeout or simulation stop. The process's wake flag is cleared on return.
  [[nodiscard]] bool BlockProcess(Process& proc, SimTime deadline);

  // Queue an RT signal on `proc`, charging interrupt-side costs and updating
  // overflow statistics.
  void QueueRtSignal(Process& proc, const SigInfo& si);

  // Optional fault-injection plane. Null (the default) means no faults; the
  // syscall layer and servers consult it through these accessors.
  void set_fault_plane(FaultPlane* plane) { fault_ = plane; }
  FaultPlane* fault() { return fault_; }

  // Ask server loops to wind down; blocking syscalls return early.
  void RequestStop() { stopped_ = true; }
  bool stopped() const { return stopped_; }

  // --- SMP scheduling plane ----------------------------------------------
  // Optional and borrowed; null (the default) means single-CPU semantics.
  void set_smp(SmpPlane* smp) { smp_ = smp; }
  SmpPlane* smp() { return smp_; }

  // Scheduler-side accounting for already-scaled charges applied to a
  // worker's local clock (context switches): the global ledger and busy time
  // must still cover them or the attribution invariant would break.
  void AccountSmp(ChargeCat cat, SimDuration scaled) {
    attribution_.Add(cat, scaled);
    busy_time_ += scaled;
  }

  // Lifetime sum of Process::Wake() calls across every process — the herd
  // metric's raw material (wakeups per accepted connection).
  uint64_t TotalProcessWakes() const {
    uint64_t total = 0;
    for (const auto& p : processes_) {
      total += p->wake_calls();
    }
    return total;
  }

  SimDuration pending_interrupt_debt() const { return interrupt_debt_; }

  // Total virtual CPU consumed via Charge() — busy_time()/now() is the
  // server CPU utilization.
  SimDuration busy_time() const { return busy_time_; }

  // Where every charged nanosecond went. Invariant (pinned by tests):
  // attribution().Sum() == busy_time() at all times.
  const TimeAttribution& attribution() const { return attribution_; }

  // Where every tracked byte lives: descriptor-table pages, connection
  // slabs, interest nodes, timer-wheel chunks, buffered payload. Structures
  // register themselves (CreateProcess wires the fd table automatically);
  // the ledger's Sum() == total() invariant is pinned by tests the same way
  // the time ledger's is.
  MemLedger& mem() { return mem_; }
  const MemLedger& mem() const { return mem_; }

  // --- flight recorder ---------------------------------------------------
  // Optional and borrowed; null (the default) records nothing. The recorder
  // is a pure observer — attaching one cannot perturb a seeded run.
  void set_recorder(FlightRecorder* recorder) { recorder_ = recorder; }
  FlightRecorder* recorder() { return recorder_; }

  // Record an instant event (no-op when no recorder is attached; compiled
  // out entirely under SCIO_NO_TRACE).
  void TraceInstant(TraceEventType type, const char* name, int32_t arg0 = 0,
                    int32_t arg1 = 0) {
    if constexpr (kFlightRecorderCompiledIn) {
      if (recorder_ != nullptr) {
        recorder_->Record({now(), 0, 0, arg0, arg1, type, name});
      }
    }
  }

 private:
  static void TimerMemHook(void* ctx, long delta_bytes) {
    auto* kernel = static_cast<SimKernel*>(ctx);
    if (delta_bytes >= 0) {
      kernel->mem_.Add(MemSys::kTimers, static_cast<size_t>(delta_bytes));
    } else {
      kernel->mem_.Sub(MemSys::kTimers, static_cast<size_t>(-delta_bytes));
    }
  }

  // Ledger write that also feeds the running worker's per-CPU ledger when an
  // SMP plane is attached and we are in worker context.
  void Attribute(ChargeCat cat, SimDuration d) {
    attribution_.Add(cat, d);
    if (smp_ != nullptr && smp_->InWorkerContext()) {
      smp_->OnAttribute(cat, d);
    }
  }

  Simulator* sim_;
  CostModel cost_;
  KernelStats stats_;
  // Declared before processes_: descriptor tables and sockets record ledger
  // traffic from their destructors, so the ledger must outlive them.
  MemLedger mem_;
  std::vector<std::unique_ptr<Process>> processes_;
  SimDuration interrupt_debt_ = 0;
  // Per-category breakdown of interrupt_debt_ (same scalar, attributed when
  // the debt is paid; discarded with it when idle time absorbs the debt).
  SimDuration debt_by_cat_[kChargeCatCount] = {};
  SimDuration busy_time_ = 0;
  TimeAttribution attribution_;
  bool stopped_ = false;
  FaultPlane* fault_ = nullptr;
  FlightRecorder* recorder_ = nullptr;
  SmpPlane* smp_ = nullptr;
};

// RAII scope that records one syscall as a complete trace slice: wall
// duration (including blocked time) plus the virtual CPU charged inside.
// `name` must have static lifetime. Costs one branch when no recorder is
// attached; compiles to nothing under SCIO_NO_TRACE.
class SyscallTraceScope {
 public:
  SyscallTraceScope(SimKernel* kernel, const char* name, int32_t arg0 = -1) {
    if constexpr (kFlightRecorderCompiledIn) {
      if (kernel->recorder() != nullptr) {
        kernel_ = kernel;
        name_ = name;
        arg0_ = arg0;
        begin_ = kernel->now();
        busy_begin_ = kernel->busy_time();
      }
    }
  }
  ~SyscallTraceScope() {
    if constexpr (kFlightRecorderCompiledIn) {
      if (kernel_ != nullptr) {
        kernel_->recorder()->Record({begin_, kernel_->now() - begin_,
                                     kernel_->busy_time() - busy_begin_, arg0_,
                                     result_, TraceEventType::kSyscall, name_});
      }
    }
  }
  SyscallTraceScope(const SyscallTraceScope&) = delete;
  SyscallTraceScope& operator=(const SyscallTraceScope&) = delete;

  void set_result(int32_t result) { result_ = result; }

 private:
  SimKernel* kernel_ = nullptr;  // null = inactive scope
  const char* name_ = "";
  SimTime begin_ = 0;
  SimDuration busy_begin_ = 0;
  int32_t arg0_ = -1;
  int32_t result_ = 0;
};

}  // namespace scio

#endif  // SRC_KERNEL_SIM_KERNEL_H_
