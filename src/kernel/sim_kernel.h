// SimKernel: the simulated machine.
//
// Binds the discrete-event simulator to a cost model and process contexts.
// Two time-accounting primitives drive everything:
//
//   Charge(ns)   — the running process consumes virtual CPU. The clock moves
//                  forward and any network/client events that fall inside the
//                  busy window execute first, so packets keep arriving while
//                  the server computes. Pending interrupt debt is folded in.
//
//   ChargeDebt() — interrupt-context work (packet processing, RT signal
//                  enqueueing, hint marking). It cannot advance the clock
//                  from inside an event callback, so it accrues as debt that
//                  the next Charge() pays. While the server is blocked, debt
//                  is absorbed by idle time instead (see BlockProcess).
//
// BlockProcess() implements blocking syscalls: it runs simulation events
// until the process is woken (by a wait-queue wakeup or a signal) or a
// deadline passes.

#ifndef SRC_KERNEL_SIM_KERNEL_H_
#define SRC_KERNEL_SIM_KERNEL_H_

#include <memory>
#include <string>
#include <vector>

#include "src/fault/fault_plane.h"
#include "src/kernel/cost_model.h"
#include "src/kernel/kernel_stats.h"
#include "src/kernel/process.h"
#include "src/sim/simulator.h"

namespace scio {

class SimKernel {
 public:
  explicit SimKernel(Simulator* sim, CostModel cost = CostModel{})
      : sim_(sim), cost_(cost) {}
  SimKernel(const SimKernel&) = delete;
  SimKernel& operator=(const SimKernel&) = delete;

  Simulator& sim() { return *sim_; }
  SimTime now() const { return sim_->now(); }
  CostModel& cost() { return cost_; }
  const CostModel& cost() const { return cost_; }
  KernelStats& stats() { return stats_; }

  Process& CreateProcess(std::string name, int max_fds = 8192);

  // Scale a raw cost-model duration by cpu_scale.
  SimDuration Scaled(SimDuration d) const {
    return static_cast<SimDuration>(static_cast<double>(d) * cost_.cpu_scale);
  }

  // Consume virtual CPU in process context (see file comment).
  void Charge(SimDuration d);

  // Record interrupt-context work to be paid by the next Charge().
  void ChargeDebt(SimDuration d) { interrupt_debt_ += Scaled(d); }

  // Block `proc` until Wake() or `deadline`. Returns true if woken, false on
  // timeout or simulation stop. The process's wake flag is cleared on return.
  bool BlockProcess(Process& proc, SimTime deadline);

  // Queue an RT signal on `proc`, charging interrupt-side costs and updating
  // overflow statistics.
  void QueueRtSignal(Process& proc, const SigInfo& si);

  // Optional fault-injection plane. Null (the default) means no faults; the
  // syscall layer and servers consult it through these accessors.
  void set_fault_plane(FaultPlane* plane) { fault_ = plane; }
  FaultPlane* fault() { return fault_; }

  // Ask server loops to wind down; blocking syscalls return early.
  void RequestStop() { stopped_ = true; }
  bool stopped() const { return stopped_; }

  SimDuration pending_interrupt_debt() const { return interrupt_debt_; }

  // Total virtual CPU consumed via Charge() — busy_time()/now() is the
  // server CPU utilization.
  SimDuration busy_time() const { return busy_time_; }

 private:
  Simulator* sim_;
  CostModel cost_;
  KernelStats stats_;
  std::vector<std::unique_ptr<Process>> processes_;
  SimDuration interrupt_debt_ = 0;
  SimDuration busy_time_ = 0;
  bool stopped_ = false;
  FaultPlane* fault_ = nullptr;
};

}  // namespace scio

#endif  // SRC_KERNEL_SIM_KERNEL_H_
