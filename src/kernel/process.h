// Process context: descriptor table, wake flag, and the POSIX RT signal queue.
//
// RT signal semantics follow the paper (§2, §6):
//  - signals carry a payload (simplified siginfo, Figure 2): si_fd and si_band;
//  - the queue has a maximum length (1024 by default); when it overflows the
//    kernel raises SIGIO instead of queueing, and the application must recover
//    with poll();
//  - pending signals dequeue lowest-signal-number first, FIFO within a number
//    ("activity on lower-numbered connections can cause longer delays for
//    activity reports on higher-numbered connections");
//  - events queued before a close stay queued, so applications can receive
//    signals for descriptors they have already closed (stale events).

#ifndef SRC_KERNEL_PROCESS_H_
#define SRC_KERNEL_PROCESS_H_

#include <cstddef>
#include <cstdint>
#include <deque>
#include <map>
#include <optional>
#include <string>

#include "src/kernel/fd_table.h"
#include "src/kernel/poll_types.h"

namespace scio {

// Classic SIGIO: numerically below the RT range, so it is always delivered
// ahead of any queued RT signal.
inline constexpr int kSigIo = 29;
// First POSIX real-time signal number on Linux.
inline constexpr int kSigRtMin = 32;
// glibc's LinuxThreads claimed signal 32 for itself; the paper (§6) notes the
// resulting conflict for applications that assign signal 32 to an fd.
inline constexpr int kSigPthreadRestart = 32;

// Simplified siginfo (paper Figure 2): the signal number plus the _sigpoll
// payload. fd/band mirror pollfd's fd/revents.
struct SigInfo {
  int signo = 0;
  int fd = -1;
  PollEvents band = 0;

  bool operator==(const SigInfo&) const = default;
};

inline constexpr size_t kDefaultRtQueueMax = 1024;

class Process {
 public:
  explicit Process(std::string name, int max_fds = 8192) : name_(std::move(name)), fds_(max_fds) {}
  Process(const Process&) = delete;
  Process& operator=(const Process&) = delete;

  const std::string& name() const { return name_; }
  FdTable& fds() { return fds_; }
  const FdTable& fds() const { return fds_; }

  // Route the descriptor table's page allocations into the kernel's byte
  // ledger. Called by SimKernel::CreateProcess.
  void set_mem_ledger(MemLedger* ledger) { fds_.set_mem_ledger(ledger); }

  // -- scheduling ------------------------------------------------------------
  void Wake() {
    woken_ = true;
    ++wake_calls_;
  }
  bool woken() const { return woken_; }
  void ClearWake() { woken_ = false; }
  // Lifetime count of Wake() calls, including redundant ones on an
  // already-woken process. The SMP benches use the sum across processes to
  // measure thundering-herd cost (wakeups per accepted connection).
  uint64_t wake_calls() const { return wake_calls_; }

  // -- RT signal queue ---------------------------------------------------------
  // Returns false when the queue is full: the signal is dropped and SIGIO is
  // raised instead (non-queued, level-style pending flag).
  bool QueueSignal(const SigInfo& si);

  // Next pending signal, lowest signal number first (SIGIO beats RT signals).
  // Does not block; blocking lives in the syscall layer.
  std::optional<SigInfo> DequeueSignal();

  // Non-destructive variant of DequeueSignal's selection rule.
  std::optional<SigInfo> PeekSignal() const;

  bool HasPendingSignals() const { return sigio_pending_ || rt_queue_len_ > 0; }
  size_t rt_queue_length() const { return rt_queue_len_; }
  size_t rt_queue_peak() const { return rt_queue_peak_; }
  size_t rt_queue_max() const { return rt_queue_max_; }
  void set_rt_queue_max(size_t m) { rt_queue_max_ = m; }
  bool sigio_pending() const { return sigio_pending_; }
  void RaiseSigIo() {
    sigio_pending_ = true;
    Wake();
  }

  // Overflow recovery step one (paper §2): the application flushes pending
  // RT signals by resetting their handler to SIG_DFL. Returns how many
  // signals were discarded.
  size_t FlushRtSignals();

 private:
  std::string name_;
  FdTable fds_;
  bool woken_ = false;
  uint64_t wake_calls_ = 0;

  // sciolint: allow(P1) -- keyed by signal number (bounded, ~32 entries), not by fd
  std::map<int, std::deque<SigInfo>> rt_queues_;  // keyed by signo, ascending
  size_t rt_queue_len_ = 0;
  size_t rt_queue_peak_ = 0;
  size_t rt_queue_max_ = kDefaultRtQueueMax;
  bool sigio_pending_ = false;
};

}  // namespace scio

#endif  // SRC_KERNEL_PROCESS_H_
