// Errno-style results for the simulated syscall surface.
//
// Simulated syscalls report failure the way the real ones do: a negative
// return the caller must branch on, never an assert. The constants below name
// the encodings used across Sys, PollSyscall, DevPollDevice and RtIo so
// servers (and tests) can handle each failure mode explicitly. The numeric
// values are part of the established API (-1 accept/EAGAIN, -2 EBADF,
// -3 EMFILE) and must not be renumbered.

#ifndef SRC_KERNEL_SYS_ERRNO_H_
#define SRC_KERNEL_SYS_ERRNO_H_

namespace scio {

// accept(): backlog empty / operation would block.
inline constexpr int kErrAgain = -1;
// Bad or closed file descriptor.
inline constexpr int kErrBadF = -2;
// Per-process descriptor table full (or injected descriptor exhaustion).
inline constexpr int kErrMFile = -3;
// Blocking wait interrupted by a signal; the caller must retry.
inline constexpr int kErrIntr = -4;
// Kernel allocation failed (interest-set growth under memory pressure).
inline constexpr int kErrNoMem = -5;
// Write on a connection whose local end is already closed.
inline constexpr int kErrPipe = -6;

}  // namespace scio

#endif  // SRC_KERNEL_SYS_ERRNO_H_
