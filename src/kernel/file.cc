#include "src/kernel/file.h"

#include <algorithm>

#include "src/kernel/process.h"
#include "src/kernel/sim_kernel.h"

namespace scio {

void File::NotifyStatus(PollEvents mask) {
  // 1. Backmap hints and other listeners run first (driver context).
  //    Snapshot: a listener callback must not mutate the list re-entrantly,
  //    but hint marking can wake processes whose reaction could.
  std::vector<StatusListener*> snapshot = listeners_;
  for (StatusListener* l : snapshot) {
    l->OnFileStatus(*this, mask);
  }
  // 2. Queue the RT signal, if armed (paper §2: the kernel raises the
  //    assigned signal whenever a read/write/close operation completes).
  //    kAll fans the event out to every subscriber (herd); kRoundRobin
  //    delivers it to exactly one, rotating in registration order.
  if (!async_subs_.empty()) {
    if (async_mode_ == AsyncDeliveryMode::kAll) {
      for (const AsyncSub& sub : async_subs_) {
        kernel_->QueueRtSignal(*sub.proc, SigInfo{sub.signo, fd_number_, mask});
      }
    } else {
      const AsyncSub& sub = async_subs_[async_rr_next_ % async_subs_.size()];
      async_rr_next_ = (async_rr_next_ + 1) % async_subs_.size();
      kernel_->QueueRtSignal(*sub.proc, SigInfo{sub.signo, fd_number_, mask});
    }
  }
  // 3. Wake blocked poll()/DP_POLL/sigwaitinfo sleepers. wake_up(), not
  //    wake_up_all(): with no exclusive waiters registered (every pre-SMP
  //    configuration) the two are identical; with exclusive waiters this is
  //    where the 2.3 wake-one fix takes effect.
  poll_wait_.WakeOne();
}

void File::AddStatusListener(StatusListener* listener) { listeners_.push_back(listener); }

void File::RemoveStatusListener(StatusListener* listener) {
  listeners_.erase(std::remove(listeners_.begin(), listeners_.end(), listener),
                   listeners_.end());
}

void File::SetAsyncSignal(Process* owner, int signo) {
  if (owner == nullptr) {
    // Legacy disarm: drop every subscription.
    async_subs_.clear();
    async_rr_next_ = 0;
    return;
  }
  for (auto it = async_subs_.begin(); it != async_subs_.end(); ++it) {
    if (it->proc == owner) {
      if (signo == 0) {
        async_subs_.erase(it);
        async_rr_next_ = 0;
      } else {
        it->signo = signo;
      }
      return;
    }
  }
  if (signo != 0) {
    async_subs_.push_back(AsyncSub{owner, signo});
  }
}

}  // namespace scio
