#include "src/kernel/file.h"

#include <algorithm>

#include "src/kernel/process.h"
#include "src/kernel/sim_kernel.h"

namespace scio {

void File::NotifyStatus(PollEvents mask) {
  // 1. Backmap hints and other listeners run first (driver context).
  //    Snapshot: a listener callback must not mutate the list re-entrantly,
  //    but hint marking can wake processes whose reaction could.
  std::vector<StatusListener*> snapshot = listeners_;
  for (StatusListener* l : snapshot) {
    l->OnFileStatus(*this, mask);
  }
  // 2. Queue the RT signal, if armed (paper §2: the kernel raises the
  //    assigned signal whenever a read/write/close operation completes).
  if (async_owner_ != nullptr && async_signo_ != 0) {
    kernel_->QueueRtSignal(*async_owner_, SigInfo{async_signo_, fd_number_, mask});
  }
  // 3. Wake blocked poll()/DP_POLL/sigwaitinfo sleepers.
  poll_wait_.WakeAll();
}

void File::AddStatusListener(StatusListener* listener) { listeners_.push_back(listener); }

void File::RemoveStatusListener(StatusListener* listener) {
  listeners_.erase(std::remove(listeners_.begin(), listeners_.end(), listener),
                   listeners_.end());
}

void File::SetAsyncSignal(Process* owner, int signo) {
  async_owner_ = owner;
  async_signo_ = signo;
}

}  // namespace scio
