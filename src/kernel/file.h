// File objects: anything a file descriptor can refer to.
//
// A File exposes its instantaneous readiness through PollMask() (the "driver
// poll callback" in the paper's terms — invoking it is charged as an
// expensive operation), and pushes state-change notifications through
// NotifyStatus(). Notifications fan out to:
//   1. registered StatusListeners — /dev/poll backmap links use these to set
//      hints (paper §3.2);
//   2. the owner's RT signal queue, if fcntl(F_SETSIG) armed one (paper §2);
//   3. the file's poll wait queue, waking blocked poll()/DP_POLL sleepers.
// Hints are set before sleepers wake, so a woken scan always observes them.

#ifndef SRC_KERNEL_FILE_H_
#define SRC_KERNEL_FILE_H_

#include <vector>

#include "src/kernel/poll_types.h"
#include "src/kernel/wait_queue.h"

namespace scio {

class File;
class Process;
class SimKernel;

class StatusListener {
 public:
  virtual ~StatusListener() = default;
  // `mask` is the subset of poll bits whose state just changed (to active).
  virtual void OnFileStatus(File& file, PollEvents mask) = 0;
};

// How NotifyStatus distributes the RT signal when several processes have
// armed async signals on the same file (N workers sharing one listener fd):
//  - kAll mirrors 2.2 SIGIO fan-out: every subscriber gets the signal — the
//    thundering herd, reproduced on purpose;
//  - kRoundRobin delivers each event to exactly one subscriber, rotating —
//    the signal-plane analogue of the wake-one wait-queue fix.
enum class AsyncDeliveryMode { kAll, kRoundRobin };

class File {
 public:
  explicit File(SimKernel* kernel) : kernel_(kernel) {}
  File(const File&) = delete;
  File& operator=(const File&) = delete;
  virtual ~File() = default;

  // Instantaneous readiness. This is the driver poll callback: callers that
  // model kernel scans must charge CostModel::*driver_poll* when calling it.
  virtual PollEvents PollMask() const = 0;

  // Whether this file's driver participates in the /dev/poll hinting scheme
  // (paper §3.2: only essential drivers are modified; others fall back to
  // being polled on every scan).
  virtual bool SupportsPollHints() const { return false; }

  // Invoked when the last fd reference is closed.
  virtual void OnFdClose() {}

  SimKernel* kernel() const { return kernel_; }
  WaitQueue& poll_wait() { return poll_wait_; }

  // Fan a state change out to listeners, signal owner, and sleepers.
  void NotifyStatus(PollEvents mask);

  void AddStatusListener(StatusListener* listener);
  void RemoveStatusListener(StatusListener* listener);
  size_t status_listener_count() const { return listeners_.size(); }

  // fcntl(F_SETOWN)/fcntl(F_SETSIG): arm async event signals. The owner list
  // supports one subscription per process so N workers can share a listener.
  // signo != 0 adds/updates `owner`'s subscription; signo == 0 with a non-null
  // owner removes only that process's subscription; a null owner disarms all
  // (the legacy single-owner disarm path).
  void SetAsyncSignal(Process* owner, int signo);
  Process* async_owner() const {
    return async_subs_.empty() ? nullptr : async_subs_.front().proc;
  }
  int async_signo() const { return async_subs_.empty() ? 0 : async_subs_.front().signo; }
  size_t async_sub_count() const { return async_subs_.size(); }

  void SetAsyncDeliveryMode(AsyncDeliveryMode mode) { async_mode_ = mode; }
  AsyncDeliveryMode async_delivery_mode() const { return async_mode_; }

  // The fd number this file is installed under (for signal payloads and
  // result reporting). Maintained by FdTable.
  void set_fd_number(int fd) { fd_number_ = fd; }
  int fd_number() const { return fd_number_; }

 private:
  struct AsyncSub {
    Process* proc = nullptr;
    int signo = 0;
  };

  SimKernel* kernel_;
  WaitQueue poll_wait_;
  std::vector<StatusListener*> listeners_;
  std::vector<AsyncSub> async_subs_;  // registration order
  AsyncDeliveryMode async_mode_ = AsyncDeliveryMode::kAll;
  size_t async_rr_next_ = 0;
  int fd_number_ = -1;
};

}  // namespace scio

#endif  // SRC_KERNEL_FILE_H_
