// Poll event bits and the pollfd structure, mirroring the paper's Figure 1.
//
// We define our own constants rather than including <poll.h>: the simulated
// kernel must not depend on host headers, and /dev/poll needs the extra
// POLLREMOVE flag that stock Linux lacked.

#ifndef SRC_KERNEL_POLL_TYPES_H_
#define SRC_KERNEL_POLL_TYPES_H_

#include <cstdint>

namespace scio {

using PollEvents = uint16_t;

inline constexpr PollEvents kPollIn = 0x0001;
inline constexpr PollEvents kPollPri = 0x0002;
inline constexpr PollEvents kPollOut = 0x0004;
inline constexpr PollEvents kPollErr = 0x0008;   // always reported, never requested
inline constexpr PollEvents kPollHup = 0x0010;   // always reported, never requested
inline constexpr PollEvents kPollNval = 0x0020;  // invalid fd in request
// /dev/poll extension (paper §3.1): writing an interest with POLLREMOVE set
// deletes that fd from the interest set.
inline constexpr PollEvents kPollRemove = 0x1000;

// Bits a file cannot suppress: error/hangup/invalid are always delivered.
inline constexpr PollEvents kPollAlwaysReported = kPollErr | kPollHup | kPollNval;

// Figure 1: standard pollfd struct.
struct PollFd {
  int fd = -1;
  PollEvents events = 0;
  PollEvents revents = 0;
};

// Figure 3: dvpoll struct, the DP_POLL ioctl argument. A null dp_fds directs
// results into the mmap'ed result area (paper §3.3).
struct DvPoll {
  PollFd* dp_fds = nullptr;
  int dp_nfds = 0;
  // Timeout in milliseconds; negative means wait forever, zero means
  // non-blocking, matching poll(2) semantics.
  int dp_timeout = 0;
};

}  // namespace scio

#endif  // SRC_KERNEL_POLL_TYPES_H_
