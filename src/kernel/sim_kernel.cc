#include "src/kernel/sim_kernel.h"

namespace scio {

Process& SimKernel::CreateProcess(std::string name, int max_fds) {
  processes_.push_back(std::make_unique<Process>(std::move(name), max_fds));
  processes_.back()->set_mem_ledger(&mem_);
  return *processes_.back();
}

void SimKernel::Charge(std::initializer_list<ChargeItem> items) {
  SimDuration raw = 0;
  for (const ChargeItem& item : items) {
    raw += item.d;
  }
  // One charge of the summed duration — the clock motion is identical to the
  // pre-attribution implementation, so seeded runs stay bit-identical.
  const SimDuration scaled = Scaled(raw);
  const SimDuration total = scaled + interrupt_debt_;

  // Attribute the process-context part per item. Each item is scaled
  // individually; the rounding remainder (only possible with a fractional
  // cpu_scale) lands on the last item so the ledger sums to exactly `scaled`.
  SimDuration attributed = 0;
  const ChargeItem* last = nullptr;
  for (const ChargeItem& item : items) {
    const SimDuration part = Scaled(item.d);
    Attribute(item.cat, part);
    attributed += part;
    last = &item;
  }
  if (last != nullptr) {
    Attribute(last->cat, scaled - attributed);
  }

  // Pay the interrupt debt: move its per-category breakdown into the ledger.
  if (interrupt_debt_ > 0) {
    for (size_t i = 0; i < kChargeCatCount; ++i) {
      if (debt_by_cat_[i] != 0) {
        Attribute(static_cast<ChargeCat>(i), debt_by_cat_[i]);
        debt_by_cat_[i] = 0;
      }
    }
  }
  interrupt_debt_ = 0;

  if (total <= 0) {
    return;
  }
  busy_time_ += total;
  if (smp_ != nullptr && smp_->InWorkerContext()) {
    // A worker's charge moves its local CPU clock; the scheduler decides when
    // the global clock catches up (and which events run in between).
    smp_->OnCharge(total);
    return;
  }
  sim_->AdvanceTo(sim_->now() + total);
}

bool SimKernel::BlockProcess(Process& proc, SimTime deadline) {
  bool woken;
  if (smp_ != nullptr && smp_->InWorkerContext()) {
    // Yield this worker's CPU; the scheduler runs other workers (and the
    // simulator) until the process is woken or the deadline passes.
    woken = smp_->OnBlock(proc, deadline);
  } else {
    woken =
        sim_->StepUntil([this, &proc] { return proc.woken() || stopped_; }, deadline) &&
        proc.woken();
  }
  proc.ClearWake();
  // Interrupt work performed while we were idle was absorbed by idle CPU; it
  // must not be billed to the next busy period (nor attributed).
  if (interrupt_debt_ != 0) {
    for (SimDuration& d : debt_by_cat_) {
      d = 0;
    }
  }
  interrupt_debt_ = 0;
  return woken;
}

void SimKernel::QueueRtSignal(Process& proc, const SigInfo& si) {
  ChargeDebt(cost_.rt_signal_enqueue, ChargeCat::kSignalEnqueue);
  if (fault_ != nullptr) {
    // A fault window may shrink the effective queue: signals beyond the
    // forced cap are shed exactly as a real overflow would shed them, which
    // drives the early-SIGIO recovery path on demand.
    if (std::optional<size_t> cap = fault_->RtQueueCap();
        cap.has_value() && proc.rt_queue_length() >= *cap) {
      fault_->CountShedSignal();
      ++stats_.rt_signals_dropped;
      ++stats_.rt_queue_overflows;
      proc.RaiseSigIo();
      TraceInstant(TraceEventType::kSignal, "rt_shed", si.fd,
                   static_cast<int32_t>(proc.rt_queue_length()));
      return;
    }
  }
  if (proc.QueueSignal(si)) {
    ++stats_.rt_signals_queued;
    TraceInstant(TraceEventType::kSignal, "rt_queued", si.fd,
                 static_cast<int32_t>(proc.rt_queue_length()));
  } else {
    ++stats_.rt_signals_dropped;
    ++stats_.rt_queue_overflows;
    TraceInstant(TraceEventType::kSignal, "rt_overflow", si.fd,
                 static_cast<int32_t>(proc.rt_queue_length()));
  }
}

}  // namespace scio
