#include "src/kernel/sim_kernel.h"

namespace scio {

Process& SimKernel::CreateProcess(std::string name, int max_fds) {
  processes_.push_back(std::make_unique<Process>(std::move(name), max_fds));
  return *processes_.back();
}

void SimKernel::Charge(SimDuration d) {
  SimDuration total = Scaled(d) + interrupt_debt_;
  interrupt_debt_ = 0;
  if (total <= 0) {
    return;
  }
  busy_time_ += total;
  sim_->AdvanceTo(sim_->now() + total);
}

bool SimKernel::BlockProcess(Process& proc, SimTime deadline) {
  const bool woken =
      sim_->StepUntil([this, &proc] { return proc.woken() || stopped_; }, deadline) &&
      proc.woken();
  proc.ClearWake();
  // Interrupt work performed while we were idle was absorbed by idle CPU; it
  // must not be billed to the next busy period.
  interrupt_debt_ = 0;
  return woken;
}

void SimKernel::QueueRtSignal(Process& proc, const SigInfo& si) {
  ChargeDebt(cost_.rt_signal_enqueue);
  if (fault_ != nullptr) {
    // A fault window may shrink the effective queue: signals beyond the
    // forced cap are shed exactly as a real overflow would shed them, which
    // drives the early-SIGIO recovery path on demand.
    if (std::optional<size_t> cap = fault_->RtQueueCap();
        cap.has_value() && proc.rt_queue_length() >= *cap) {
      fault_->CountShedSignal();
      ++stats_.rt_signals_dropped;
      ++stats_.rt_queue_overflows;
      proc.RaiseSigIo();
      return;
    }
  }
  if (proc.QueueSignal(si)) {
    ++stats_.rt_signals_queued;
  } else {
    ++stats_.rt_signals_dropped;
    ++stats_.rt_queue_overflows;
  }
}

}  // namespace scio
