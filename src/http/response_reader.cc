#include "src/http/response_reader.h"

#include <cstdlib>

namespace scio {

ResponseReader::State ResponseReader::Feed(std::string_view data, size_t synthetic) {
  if (state_ == State::kComplete || state_ == State::kError) {
    return state_;
  }
  if (state_ == State::kHeader) {
    header_.append(data);
    pending_synthetic_ += synthetic;
    if (ParseHeader() == State::kHeader) {
      if (pending_synthetic_ > 0) {
        // Synthetic bytes can only be body; a header that hasn't terminated
        // before synthetic data arrives is malformed.
        state_ = State::kError;
      }
      return state_;
    }
    if (state_ == State::kError) {
      return state_;
    }
    // Whatever trailed the header (real leftovers were moved to body in
    // ParseHeader) plus synthetic bytes count toward the body.
    body_received_ += pending_synthetic_;
    pending_synthetic_ = 0;
  } else {
    body_received_ += data.size() + synthetic;
  }
  if (body_received_ >= content_length_) {
    state_ = State::kComplete;
  }
  return state_;
}

ResponseReader::State ResponseReader::ParseHeader() {
  const size_t end = header_.find("\r\n\r\n");
  if (end == std::string::npos) {
    return state_;
  }
  // Status line: HTTP/x.y CODE REASON.
  if (header_.rfind("HTTP/", 0) != 0) {
    state_ = State::kError;
    return state_;
  }
  const size_t sp = header_.find(' ');
  if (sp == std::string::npos) {
    state_ = State::kError;
    return state_;
  }
  status_code_ = std::atoi(header_.c_str() + sp + 1);
  if (status_code_ < 100 || status_code_ > 599) {
    state_ = State::kError;
    return state_;
  }
  const size_t cl = header_.find("Content-Length:");
  if (cl != std::string::npos && cl < end) {
    content_length_ = static_cast<size_t>(std::atoll(header_.c_str() + cl + 15));
  } else {
    content_length_ = 0;
  }
  // Real bytes past the header belong to the body.
  body_received_ = header_.size() - (end + 4);
  header_.resize(end + 4);
  state_ = State::kBody;
  if (body_received_ >= content_length_) {
    state_ = State::kComplete;
  }
  return state_;
}

}  // namespace scio
