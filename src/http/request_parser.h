// Incremental HTTP/1.0 GET request parser.
//
// Connections deliver requests in arbitrary fragments (the inactive-client
// workload trickles a request one byte at a time, §5), so the parser keeps
// state across Feed() calls. Only the request line and the end-of-headers
// blank line matter to a static-content server; header fields are retained
// unparsed.

#ifndef SRC_HTTP_REQUEST_PARSER_H_
#define SRC_HTTP_REQUEST_PARSER_H_

#include <cstdint>
#include <string>
#include <string_view>

namespace scio {

class RequestParser {
 public:
  enum class State {
    kIncomplete,  // need more bytes
    kComplete,    // full request parsed; method/path/version valid
    kError,       // malformed request
  };

  // Consume the next fragment. Returns the resulting state; once kComplete
  // or kError is reached further Feed() calls are ignored.
  State Feed(std::string_view fragment);

  State state() const { return state_; }
  // Views into the internal buffer, valid until Reset(). Stored as
  // offset+length rather than owned strings: at a million parked parsers the
  // three std::strings were ~96 bytes per connection of pure duplication.
  std::string_view method() const { return View(0, method_len_); }
  std::string_view path() const { return View(path_off_, path_len_); }
  std::string_view version() const { return View(version_off_, version_len_); }
  size_t bytes_consumed() const { return buffer_.size(); }

  // Reset for the next request (keep-alive style reuse).
  void Reset();

 private:
  State Parse();
  std::string_view View(uint32_t off, uint32_t len) const {
    return std::string_view(buffer_).substr(off, len);
  }

  State state_ = State::kIncomplete;
  uint32_t method_len_ = 0;
  uint32_t path_off_ = 0;
  uint32_t path_len_ = 0;
  uint32_t version_off_ = 0;
  uint32_t version_len_ = 0;
  std::string buffer_;
};

}  // namespace scio

#endif  // SRC_HTTP_REQUEST_PARSER_H_
