// Incremental HTTP/1.0 GET request parser.
//
// Connections deliver requests in arbitrary fragments (the inactive-client
// workload trickles a request one byte at a time, §5), so the parser keeps
// state across Feed() calls. Only the request line and the end-of-headers
// blank line matter to a static-content server; header fields are retained
// unparsed.

#ifndef SRC_HTTP_REQUEST_PARSER_H_
#define SRC_HTTP_REQUEST_PARSER_H_

#include <string>
#include <string_view>

namespace scio {

class RequestParser {
 public:
  enum class State {
    kIncomplete,  // need more bytes
    kComplete,    // full request parsed; method/path/version valid
    kError,       // malformed request
  };

  // Consume the next fragment. Returns the resulting state; once kComplete
  // or kError is reached further Feed() calls are ignored.
  State Feed(std::string_view fragment);

  State state() const { return state_; }
  const std::string& method() const { return method_; }
  const std::string& path() const { return path_; }
  const std::string& version() const { return version_; }
  size_t bytes_consumed() const { return buffer_.size(); }

  // Reset for the next request (keep-alive style reuse).
  void Reset();

 private:
  State Parse();

  State state_ = State::kIncomplete;
  std::string buffer_;
  std::string method_;
  std::string path_;
  std::string version_;
};

}  // namespace scio

#endif  // SRC_HTTP_REQUEST_PARSER_H_
