// Client-side HTTP/1.0 response tracking.
//
// The benchmark client needs to know when a response is complete (to stamp
// the connection time) and whether it was well-formed. Headers arrive as
// real bytes; bodies may be partly synthetic, so the reader counts body
// bytes rather than inspecting them.

#ifndef SRC_HTTP_RESPONSE_READER_H_
#define SRC_HTTP_RESPONSE_READER_H_

#include <string>
#include <string_view>

namespace scio {

class ResponseReader {
 public:
  enum class State {
    kHeader,    // accumulating header bytes
    kBody,      // counting body bytes
    kComplete,  // Content-Length bytes received
    kError,     // malformed response
  };

  // `data` is the real prefix of this fragment; `synthetic` counts the rest.
  State Feed(std::string_view data, size_t synthetic);

  State state() const { return state_; }
  int status_code() const { return status_code_; }
  size_t content_length() const { return content_length_; }
  size_t body_received() const { return body_received_; }

 private:
  State ParseHeader();

  State state_ = State::kHeader;
  std::string header_;
  size_t pending_synthetic_ = 0;  // synthetic bytes seen while still in header
  int status_code_ = 0;
  size_t content_length_ = 0;
  size_t body_received_ = 0;
};

}  // namespace scio

#endif  // SRC_HTTP_RESPONSE_READER_H_
