#include "src/http/http_message.h"

namespace scio {

std::string BuildHttpRequest(const std::string& path) {
  return "GET " + path + " HTTP/1.0\r\nHost: bench.citi.umich.edu\r\nUser-Agent: httperf\r\n\r\n";
}

Chunk BuildHttpOkResponse(size_t body_bytes) {
  Chunk chunk;
  chunk.data = "HTTP/1.0 200 OK\r\nServer: thttpd-sim\r\nContent-Type: text/html\r\nContent-Length: " +
               std::to_string(body_bytes) + "\r\n\r\n";
  chunk.synthetic = body_bytes;
  return chunk;
}

Chunk BuildHttpNotFoundResponse() {
  Chunk chunk;
  const std::string body = "<html><body>404 Not Found</body></html>";
  chunk.data = "HTTP/1.0 404 Not Found\r\nServer: thttpd-sim\r\nContent-Type: text/html\r\n"
               "Content-Length: " +
               std::to_string(body.size()) + "\r\n\r\n" + body;
  return chunk;
}

}  // namespace scio
