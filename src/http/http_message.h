// HTTP/1.0 message construction helpers.
//
// The benchmark exchanges real request bytes and real response headers, so
// parsers execute genuine work; response bodies are synthetic byte counts
// (see Chunk) because their content never matters.

#ifndef SRC_HTTP_HTTP_MESSAGE_H_
#define SRC_HTTP_HTTP_MESSAGE_H_

#include <cstddef>
#include <string>

#include "src/net/socket.h"

namespace scio {

// "GET <path> HTTP/1.0\r\nHost: ...\r\n\r\n"
std::string BuildHttpRequest(const std::string& path);

// A 200 response carrying `body_bytes` of payload: real header + synthetic
// body.
Chunk BuildHttpOkResponse(size_t body_bytes);

// A 404 response (real bytes end to end; bodies are tiny).
Chunk BuildHttpNotFoundResponse();

}  // namespace scio

#endif  // SRC_HTTP_HTTP_MESSAGE_H_
