#include "src/http/request_parser.h"

namespace scio {

namespace {
// Guard against a malicious or broken client streaming unbounded headers.
constexpr size_t kMaxRequestBytes = 16 * 1024;
}  // namespace

void RequestParser::Reset() {
  state_ = State::kIncomplete;
  buffer_.clear();
  method_.clear();
  path_.clear();
  version_.clear();
}

RequestParser::State RequestParser::Feed(std::string_view fragment) {
  if (state_ != State::kIncomplete) {
    return state_;
  }
  buffer_.append(fragment);
  if (buffer_.size() > kMaxRequestBytes) {
    state_ = State::kError;
    return state_;
  }
  return Parse();
}

RequestParser::State RequestParser::Parse() {
  // A complete HTTP/1.0 GET ends with CRLFCRLF (or, leniently, LFLF).
  size_t end = buffer_.find("\r\n\r\n");
  if (end == std::string::npos) {
    end = buffer_.find("\n\n");
    if (end == std::string::npos) {
      return state_;
    }
  }

  // Request line: METHOD SP PATH SP VERSION.
  const size_t line_end = buffer_.find_first_of("\r\n");
  const std::string_view line(buffer_.data(), line_end);
  const size_t sp1 = line.find(' ');
  if (sp1 == std::string_view::npos) {
    state_ = State::kError;
    return state_;
  }
  const size_t sp2 = line.find(' ', sp1 + 1);
  if (sp2 == std::string_view::npos || sp2 == sp1 + 1) {
    state_ = State::kError;
    return state_;
  }
  method_.assign(line.substr(0, sp1));
  path_.assign(line.substr(sp1 + 1, sp2 - sp1 - 1));
  version_.assign(line.substr(sp2 + 1));
  if (method_.empty() || path_.empty() || path_[0] != '/' ||
      version_.rfind("HTTP/", 0) != 0) {
    state_ = State::kError;
    return state_;
  }
  state_ = State::kComplete;
  return state_;
}

}  // namespace scio
