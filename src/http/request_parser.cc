#include "src/http/request_parser.h"

namespace scio {

namespace {
// Guard against a malicious or broken client streaming unbounded headers.
constexpr size_t kMaxRequestBytes = 16 * 1024;
}  // namespace

void RequestParser::Reset() {
  state_ = State::kIncomplete;
  buffer_.clear();
  method_len_ = 0;
  path_off_ = 0;
  path_len_ = 0;
  version_off_ = 0;
  version_len_ = 0;
}

RequestParser::State RequestParser::Feed(std::string_view fragment) {
  if (state_ != State::kIncomplete) {
    return state_;
  }
  buffer_.append(fragment);
  if (buffer_.size() > kMaxRequestBytes) {
    state_ = State::kError;
    return state_;
  }
  return Parse();
}

RequestParser::State RequestParser::Parse() {
  // A complete HTTP/1.0 GET ends with CRLFCRLF (or, leniently, LFLF).
  size_t end = buffer_.find("\r\n\r\n");
  if (end == std::string::npos) {
    end = buffer_.find("\n\n");
    if (end == std::string::npos) {
      return state_;
    }
  }

  // Request line: METHOD SP PATH SP VERSION.
  const size_t line_end = buffer_.find_first_of("\r\n");
  const std::string_view line(buffer_.data(), line_end);
  const size_t sp1 = line.find(' ');
  if (sp1 == std::string_view::npos) {
    state_ = State::kError;
    return state_;
  }
  const size_t sp2 = line.find(' ', sp1 + 1);
  if (sp2 == std::string_view::npos || sp2 == sp1 + 1) {
    state_ = State::kError;
    return state_;
  }
  method_len_ = static_cast<uint32_t>(sp1);
  path_off_ = static_cast<uint32_t>(sp1 + 1);
  path_len_ = static_cast<uint32_t>(sp2 - sp1 - 1);
  version_off_ = static_cast<uint32_t>(sp2 + 1);
  version_len_ = static_cast<uint32_t>(line_end - sp2 - 1);
  if (method().empty() || path().empty() || path()[0] != '/' ||
      !version().starts_with("HTTP/")) {
    state_ = State::kError;
    return state_;
  }
  state_ = State::kComplete;
  return state_;
}

}  // namespace scio
