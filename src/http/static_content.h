// The static document store served by the benchmark web servers.
//
// The paper requests a single 6 KB document ("a typical index.html file from
// the CITI web site", §5). The store also supports arbitrary additional
// documents so extended workloads (heavy-tailed size distributions) can be
// benchmarked.

#ifndef SRC_HTTP_STATIC_CONTENT_H_
#define SRC_HTTP_STATIC_CONTENT_H_

#include <cstddef>
#include <optional>
#include <string>
#include <string_view>
#include <unordered_map>

namespace scio {

inline constexpr size_t kDefaultDocumentBytes = 6 * 1024;

class StaticContent {
 public:
  // Starts with /index.html at the paper's 6 KB.
  StaticContent() { documents_["/index.html"] = kDefaultDocumentBytes; }

  void AddDocument(const std::string& path, size_t bytes) { documents_[path] = bytes; }

  // Body size for the path, or nullopt (404). Heterogeneous lookup: parsers
  // hand in views into their receive buffers, which must not force a
  // per-request std::string allocation.
  std::optional<size_t> Lookup(std::string_view path) const {
    auto it = documents_.find(path);
    if (it == documents_.end()) {
      return std::nullopt;
    }
    return it->second;
  }

  size_t document_count() const { return documents_.size(); }

 private:
  struct StringHash {
    using is_transparent = void;
    size_t operator()(std::string_view s) const { return std::hash<std::string_view>{}(s); }
  };
  std::unordered_map<std::string, size_t, StringHash, std::equal_to<>> documents_;
};

}  // namespace scio

#endif  // SRC_HTTP_STATIC_CONTENT_H_
