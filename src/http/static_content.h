// The static document store served by the benchmark web servers.
//
// The paper requests a single 6 KB document ("a typical index.html file from
// the CITI web site", §5). The store also supports arbitrary additional
// documents so extended workloads (heavy-tailed size distributions) can be
// benchmarked.

#ifndef SRC_HTTP_STATIC_CONTENT_H_
#define SRC_HTTP_STATIC_CONTENT_H_

#include <cstddef>
#include <optional>
#include <string>
#include <unordered_map>

namespace scio {

inline constexpr size_t kDefaultDocumentBytes = 6 * 1024;

class StaticContent {
 public:
  // Starts with /index.html at the paper's 6 KB.
  StaticContent() { documents_["/index.html"] = kDefaultDocumentBytes; }

  void AddDocument(const std::string& path, size_t bytes) { documents_[path] = bytes; }

  // Body size for the path, or nullopt (404).
  std::optional<size_t> Lookup(const std::string& path) const {
    auto it = documents_.find(path);
    if (it == documents_.end()) {
      return std::nullopt;
    }
    return it->second;
  }

  size_t document_count() const { return documents_.size(); }

 private:
  std::unordered_map<std::string, size_t> documents_;
};

}  // namespace scio

#endif  // SRC_HTTP_STATIC_CONTENT_H_
