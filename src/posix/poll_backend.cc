#include "src/posix/poll_backend.h"

#include <cerrno>

namespace scio {

namespace {
short ToPollEvents(uint32_t interest) {
  short events = 0;
  if ((interest & kEvReadable) != 0) {
    events |= POLLIN;
  }
  if ((interest & kEvWritable) != 0) {
    events |= POLLOUT;
  }
  return events;
}

uint32_t FromPollEvents(short revents) {
  uint32_t events = 0;
  if ((revents & (POLLIN | POLLPRI)) != 0) {
    events |= kEvReadable;
  }
  if ((revents & POLLOUT) != 0) {
    events |= kEvWritable;
  }
  if ((revents & (POLLERR | POLLNVAL)) != 0) {
    events |= kEvError;
  }
  if ((revents & POLLHUP) != 0) {
    events |= kEvHangup;
  }
  return events;
}
}  // namespace

int PollBackend::Add(int fd, uint32_t interest) {
  if (fd < 0 || static_cast<size_t>(fd) >= index_.limit()) {
    errno = EINVAL;
    return -1;
  }
  if (index_.Contains(static_cast<size_t>(fd))) {
    errno = EEXIST;
    return -1;
  }
  index_.EmplaceAt(static_cast<size_t>(fd)) = static_cast<uint32_t>(fds_.size());
  fds_.push_back(pollfd{fd, ToPollEvents(interest), 0});
  return 0;
}

int PollBackend::Modify(int fd, uint32_t interest) {
  const uint32_t* slot = fd < 0 ? nullptr : index_.Get(static_cast<size_t>(fd));
  if (slot == nullptr) {
    errno = ENOENT;
    return -1;
  }
  fds_[*slot].events = ToPollEvents(interest);
  return 0;
}

int PollBackend::Remove(int fd) {
  const uint32_t* found = fd < 0 ? nullptr : index_.Get(static_cast<size_t>(fd));
  if (found == nullptr) {
    errno = ENOENT;
    return -1;
  }
  const size_t slot = *found;
  index_.ReleaseAt(static_cast<size_t>(fd));
  if (slot != fds_.size() - 1) {
    fds_[slot] = fds_.back();
    index_.At(static_cast<size_t>(fds_[slot].fd)) = static_cast<uint32_t>(slot);
  }
  fds_.pop_back();
  return 0;
}

int PollBackend::Wait(std::vector<PosixEvent>& out, int timeout_ms) {
  const int rc = ::poll(fds_.data(), fds_.size(), timeout_ms);
  if (rc <= 0) {
    return rc;
  }
  int produced = 0;
  for (const pollfd& pfd : fds_) {
    if (pfd.revents != 0) {
      out.push_back(PosixEvent{pfd.fd, FromPollEvents(pfd.revents)});
      ++produced;
    }
  }
  return produced;
}

}  // namespace scio
