#include "src/posix/poll_backend.h"

#include <cerrno>

namespace scio {

namespace {
short ToPollEvents(uint32_t interest) {
  short events = 0;
  if ((interest & kEvReadable) != 0) {
    events |= POLLIN;
  }
  if ((interest & kEvWritable) != 0) {
    events |= POLLOUT;
  }
  return events;
}

uint32_t FromPollEvents(short revents) {
  uint32_t events = 0;
  if ((revents & (POLLIN | POLLPRI)) != 0) {
    events |= kEvReadable;
  }
  if ((revents & POLLOUT) != 0) {
    events |= kEvWritable;
  }
  if ((revents & (POLLERR | POLLNVAL)) != 0) {
    events |= kEvError;
  }
  if ((revents & POLLHUP) != 0) {
    events |= kEvHangup;
  }
  return events;
}
}  // namespace

int PollBackend::Add(int fd, uint32_t interest) {
  if (index_.count(fd) != 0) {
    errno = EEXIST;
    return -1;
  }
  index_[fd] = fds_.size();
  fds_.push_back(pollfd{fd, ToPollEvents(interest), 0});
  return 0;
}

int PollBackend::Modify(int fd, uint32_t interest) {
  auto it = index_.find(fd);
  if (it == index_.end()) {
    errno = ENOENT;
    return -1;
  }
  fds_[it->second].events = ToPollEvents(interest);
  return 0;
}

int PollBackend::Remove(int fd) {
  auto it = index_.find(fd);
  if (it == index_.end()) {
    errno = ENOENT;
    return -1;
  }
  const size_t slot = it->second;
  index_.erase(it);
  if (slot != fds_.size() - 1) {
    fds_[slot] = fds_.back();
    index_[fds_[slot].fd] = slot;
  }
  fds_.pop_back();
  return 0;
}

int PollBackend::Wait(std::vector<PosixEvent>& out, int timeout_ms) {
  const int rc = ::poll(fds_.data(), fds_.size(), timeout_ms);
  if (rc <= 0) {
    return rc;
  }
  int produced = 0;
  for (const pollfd& pfd : fds_) {
    if (pfd.revents != 0) {
      out.push_back(PosixEvent{pfd.fd, FromPollEvents(pfd.revents)});
      ++produced;
    }
  }
  return produced;
}

}  // namespace scio
