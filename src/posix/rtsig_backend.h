// POSIX RT signal backend over the live kernel — the exact mechanism of the
// paper's §2: fcntl(F_SETOWN) + fcntl(F_SETSIG, SIGRTMIN+1) + O_ASYNC, the
// signal kept blocked and collected synchronously with sigtimedwait(2),
// SIGIO fielded as the queue-overflow indicator with a poll(2) recovery
// pass, exactly as the paper prescribes.

#ifndef SRC_POSIX_RTSIG_BACKEND_H_
#define SRC_POSIX_RTSIG_BACKEND_H_

#include <csignal>
#include <cstdint>

#include "src/posix/event_backend.h"
#include "src/posix/fd_interest_set.h"

namespace scio {

class RtSigBackend : public EventBackend {
 public:
  RtSigBackend();
  ~RtSigBackend() override;
  RtSigBackend(const RtSigBackend&) = delete;
  RtSigBackend& operator=(const RtSigBackend&) = delete;

  std::string name() const override { return "rtsig"; }
  int Add(int fd, uint32_t interest) override;
  int Modify(int fd, uint32_t interest) override;
  int Remove(int fd) override;
  int Wait(std::vector<PosixEvent>& out, int timeout_ms) override;
  size_t watched_count() const override { return interests_.size(); }

  uint64_t overflow_recoveries() const { return overflow_recoveries_; }

 private:
  // Overflow recovery: drain the queue, then poll() every registered fd.
  int RecoverWithPoll(std::vector<PosixEvent>& out);

  int signo_;
  sigset_t waitset_;
  sigset_t oldmask_;
  // Paged slab keyed by fd; the overflow-recovery poll() pass visits fds
  // (and emits its events) in ascending-fd order (sciolint D2).
  FdInterestSet interests_;
  uint64_t overflow_recoveries_ = 0;
};

}  // namespace scio

#endif  // SRC_POSIX_RTSIG_BACKEND_H_
