#include "src/posix/event_backend.h"

#include "src/posix/epoll_backend.h"
#include "src/posix/poll_backend.h"
#include "src/posix/rtsig_backend.h"
#include "src/posix/select_backend.h"

namespace scio {

std::unique_ptr<EventBackend> EventBackend::Create(BackendKind kind) {
  switch (kind) {
    case BackendKind::kPoll:
      return std::make_unique<PollBackend>();
    case BackendKind::kSelect:
      return std::make_unique<SelectBackend>();
    case BackendKind::kEpoll:
      return std::make_unique<EpollBackend>(/*edge_triggered=*/false);
    case BackendKind::kEpollEdge:
      return std::make_unique<EpollBackend>(/*edge_triggered=*/true);
    case BackendKind::kRtSig:
      return std::make_unique<RtSigBackend>();
  }
  return nullptr;
}

const char* EventBackend::KindName(BackendKind kind) {
  switch (kind) {
    case BackendKind::kPoll:
      return "poll";
    case BackendKind::kSelect:
      return "select";
    case BackendKind::kEpoll:
      return "epoll";
    case BackendKind::kEpollEdge:
      return "epoll-et";
    case BackendKind::kRtSig:
      return "rtsig";
  }
  return "unknown";
}

}  // namespace scio
