#include "src/posix/epoll_backend.h"

#include <errno.h>
#include <sys/epoll.h>
#include <unistd.h>

#include <array>
#include <chrono>

namespace scio {

namespace {
uint32_t ToEpoll(uint32_t interest, bool edge) {
  uint32_t events = 0;
  if ((interest & kEvReadable) != 0) {
    events |= EPOLLIN;
  }
  if ((interest & kEvWritable) != 0) {
    events |= EPOLLOUT;
  }
  if (edge) {
    events |= EPOLLET;
  }
  return events;
}

uint32_t FromEpoll(uint32_t events) {
  uint32_t out = 0;
  if ((events & (EPOLLIN | EPOLLPRI)) != 0) {
    out |= kEvReadable;
  }
  if ((events & EPOLLOUT) != 0) {
    out |= kEvWritable;
  }
  if ((events & EPOLLERR) != 0) {
    out |= kEvError;
  }
  if ((events & EPOLLHUP) != 0) {
    out |= kEvHangup;
  }
  return out;
}
}  // namespace

EpollBackend::EpollBackend(bool edge_triggered)
    : epfd_(::epoll_create1(0)), edge_(edge_triggered) {}

EpollBackend::~EpollBackend() {
  if (epfd_ >= 0) {
    ::close(epfd_);
  }
}

int EpollBackend::Add(int fd, uint32_t interest) {
  epoll_event ev{};
  ev.events = ToEpoll(interest, edge_);
  ev.data.fd = fd;
  const int rc = ::epoll_ctl(epfd_, EPOLL_CTL_ADD, fd, &ev);
  if (rc == 0) {
    ++watched_;
  }
  return rc;
}

int EpollBackend::Modify(int fd, uint32_t interest) {
  epoll_event ev{};
  ev.events = ToEpoll(interest, edge_);
  ev.data.fd = fd;
  return ::epoll_ctl(epfd_, EPOLL_CTL_MOD, fd, &ev);
}

int EpollBackend::Remove(int fd) {
  const int rc = ::epoll_ctl(epfd_, EPOLL_CTL_DEL, fd, nullptr);
  if (rc == 0) {
    --watched_;
  }
  return rc;
}

int EpollBackend::Wait(std::vector<PosixEvent>& out, int timeout_ms) {
  std::array<epoll_event, 256> events;
  // A signal that lands mid-wait makes epoll_wait fail with EINTR even when
  // the deadline has not passed. Retry with the *remaining* timeout so a
  // caller-visible 0 still means "the full timeout elapsed with no events"
  // — without this, a periodic timer starves the caller of its wait. This
  // backend wraps the real OS epoll, so the retry deadline must follow the
  // same real clock the kernel's timeout follows.
  // sciolint: allow(D1) -- real-OS backend; deadline tracks the real clock
  const auto deadline = std::chrono::steady_clock::now() +
                        std::chrono::milliseconds(timeout_ms < 0 ? 0 : timeout_ms);
  int remaining_ms = timeout_ms;
  while (true) {
    const int rc = ::epoll_wait(epfd_, events.data(), static_cast<int>(events.size()),
                                remaining_ms);
    if (rc < 0 && errno == EINTR) {
      if (timeout_ms >= 0) {
        const auto left = std::chrono::duration_cast<std::chrono::milliseconds>(
            // sciolint: allow(D1) -- see above; real-clock remaining time
            deadline - std::chrono::steady_clock::now());
        remaining_ms = static_cast<int>(left.count());
        if (remaining_ms <= 0) {
          return 0;  // the interruption consumed the whole timeout
        }
      }
      continue;  // timeout_ms < 0: retry the indefinite wait
    }
    for (int i = 0; i < rc; ++i) {
      out.push_back(PosixEvent{events[static_cast<size_t>(i)].data.fd,
                               FromEpoll(events[static_cast<size_t>(i)].events)});
    }
    return rc;
  }
}

}  // namespace scio
