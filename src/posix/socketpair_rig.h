// A rig of UNIX socketpairs for exercising the real-OS backends: N watched
// read ends, with writers we control — the loopback stand-in for the
// paper's "many inactive connections, few active" workload.

#ifndef SRC_POSIX_SOCKETPAIR_RIG_H_
#define SRC_POSIX_SOCKETPAIR_RIG_H_

#include <cstddef>
#include <vector>

#include "src/posix/event_backend.h"

namespace scio {

class SocketpairRig {
 public:
  // Creates `count` socketpairs; watch_end fds are non-blocking.
  explicit SocketpairRig(size_t count);
  ~SocketpairRig();
  SocketpairRig(const SocketpairRig&) = delete;
  SocketpairRig& operator=(const SocketpairRig&) = delete;

  bool ok() const { return ok_; }
  size_t size() const { return watch_fds_.size(); }
  int watch_fd(size_t i) const { return watch_fds_[i]; }

  // Make pair i readable by writing one byte into its far end.
  void Poke(size_t i);

  // Drain pair i's read end.
  void Drain(size_t i);

  // Register every watch fd with the backend (readable interest).
  int RegisterAll(EventBackend& backend) const;

 private:
  bool ok_ = true;
  std::vector<int> watch_fds_;
  std::vector<int> poke_fds_;
};

}  // namespace scio

#endif  // SRC_POSIX_SOCKETPAIR_RIG_H_
