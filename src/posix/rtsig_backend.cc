#include "src/posix/rtsig_backend.h"

#include <fcntl.h>
#include <poll.h>
#include <unistd.h>

#include <cerrno>
#include <ctime>
#include <vector>

namespace scio {

namespace {
uint32_t FromBand(long band) {
  uint32_t events = 0;
  if ((band & (POLLIN | POLLPRI)) != 0) {
    events |= kEvReadable;
  }
  if ((band & POLLOUT) != 0) {
    events |= kEvWritable;
  }
  if ((band & POLLERR) != 0) {
    events |= kEvError;
  }
  if ((band & POLLHUP) != 0) {
    events |= kEvHangup;
  }
  return events;
}
}  // namespace

RtSigBackend::RtSigBackend() : signo_(SIGRTMIN + 1) {
  sigemptyset(&waitset_);
  sigaddset(&waitset_, signo_);
  sigaddset(&waitset_, SIGIO);
  // Keep the signals blocked: we collect them synchronously (paper §2).
  pthread_sigmask(SIG_BLOCK, &waitset_, &oldmask_);
}

RtSigBackend::~RtSigBackend() { pthread_sigmask(SIG_SETMASK, &oldmask_, nullptr); }

int RtSigBackend::Add(int fd, uint32_t interest) {
  if (interests_.Contains(fd)) {
    errno = EEXIST;
    return -1;
  }
  if (::fcntl(fd, F_SETOWN, getpid()) < 0) {
    // sciolint: allow(E2) -- errno inherited from the failed fcntl
    return -1;
  }
  if (::fcntl(fd, F_SETSIG, signo_) < 0) {
    // sciolint: allow(E2) -- errno inherited from the failed fcntl
    return -1;
  }
  const int flags = ::fcntl(fd, F_GETFL);
  if (flags < 0 || ::fcntl(fd, F_SETFL, flags | O_ASYNC | O_NONBLOCK) < 0) {
    // sciolint: allow(E2) -- errno inherited from the failed fcntl
    return -1;
  }
  if (!interests_.Add(fd, interest)) {
    errno = EINVAL;  // out of the set's fd range
    return -1;
  }
  return 0;
}

int RtSigBackend::Modify(int fd, uint32_t interest) {
  // Filtering happens at delivery time.
  if (!interests_.Modify(fd, interest)) {
    errno = ENOENT;
    return -1;
  }
  return 0;
}

int RtSigBackend::Remove(int fd) {
  if (!interests_.Contains(fd)) {
    errno = ENOENT;
    return -1;
  }
  const int flags = ::fcntl(fd, F_GETFL);
  if (flags >= 0) {
    ::fcntl(fd, F_SETFL, flags & ~O_ASYNC);
  }
  interests_.Remove(fd);
  return 0;
}

int RtSigBackend::RecoverWithPoll(std::vector<PosixEvent>& out) {
  ++overflow_recoveries_;
  // Flush whatever is still queued; poll() below supersedes it.
  timespec zero{};
  siginfo_t si;
  while (sigtimedwait(&waitset_, &si, &zero) > 0) {
  }
  std::vector<pollfd> fds;
  fds.reserve(interests_.size());
  interests_.ForEach([&fds](int fd, uint32_t interest) {
    short events = 0;
    if ((interest & kEvReadable) != 0) {
      events |= POLLIN;
    }
    if ((interest & kEvWritable) != 0) {
      events |= POLLOUT;
    }
    fds.push_back(pollfd{fd, events, 0});
  });
  const int rc = ::poll(fds.data(), fds.size(), 0);
  if (rc <= 0) {
    return rc;
  }
  int produced = 0;
  for (const pollfd& pfd : fds) {
    if (pfd.revents != 0) {
      out.push_back(PosixEvent{pfd.fd, FromBand(pfd.revents)});
      ++produced;
    }
  }
  return produced;
}

int RtSigBackend::Wait(std::vector<PosixEvent>& out, int timeout_ms) {
  timespec ts;
  timespec* tsp = nullptr;
  if (timeout_ms >= 0) {
    ts.tv_sec = timeout_ms / 1000;
    ts.tv_nsec = static_cast<long>(timeout_ms % 1000) * 1000000;
    tsp = &ts;
  }
  siginfo_t si;
  const int sig = tsp != nullptr ? sigtimedwait(&waitset_, &si, tsp)
                                 : sigwaitinfo(&waitset_, &si);
  if (sig < 0) {
    return errno == EAGAIN ? 0 : -1;
  }
  if (sig == SIGIO) {
    // RT queue overflow (§2): flush and fall back to poll().
    return RecoverWithPoll(out);
  }
  const uint32_t* interest = interests_.Find(si.si_fd);
  if (interest == nullptr) {
    return 0;  // stale event for a closed/removed descriptor (§2)
  }
  const uint32_t events = FromBand(si.si_band);
  const uint32_t wanted = *interest | kEvError | kEvHangup;
  if ((events & wanted) == 0) {
    return 0;
  }
  out.push_back(PosixEvent{si.si_fd, events & wanted});
  return 1;
}

}  // namespace scio
