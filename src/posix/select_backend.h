// select(2) backend: the even older interface, for completeness of the
// MICRO-1 scaling comparison. Limited to FD_SETSIZE descriptors.

#ifndef SRC_POSIX_SELECT_BACKEND_H_
#define SRC_POSIX_SELECT_BACKEND_H_

#include <sys/select.h>

#include "src/posix/event_backend.h"
#include "src/posix/fd_interest_set.h"

namespace scio {

class SelectBackend : public EventBackend {
 public:
  std::string name() const override { return "select"; }
  int Add(int fd, uint32_t interest) override;
  int Modify(int fd, uint32_t interest) override;
  int Remove(int fd) override;
  int Wait(std::vector<PosixEvent>& out, int timeout_ms) override;
  size_t watched_count() const override { return interests_.size(); }

 private:
  // Paged slab keyed by fd, bounded at FD_SETSIZE; iteration is ascending so
  // the last visited fd is the select() nfds bound.
  FdInterestSet interests_{FD_SETSIZE};
};

}  // namespace scio

#endif  // SRC_POSIX_SELECT_BACKEND_H_
