// select(2) backend: the even older interface, for completeness of the
// MICRO-1 scaling comparison. Limited to FD_SETSIZE descriptors.

#ifndef SRC_POSIX_SELECT_BACKEND_H_
#define SRC_POSIX_SELECT_BACKEND_H_

#include <sys/select.h>

#include <map>

#include "src/posix/event_backend.h"

namespace scio {

class SelectBackend : public EventBackend {
 public:
  std::string name() const override { return "select"; }
  int Add(int fd, uint32_t interest) override;
  int Modify(int fd, uint32_t interest) override;
  int Remove(int fd) override;
  int Wait(std::vector<PosixEvent>& out, int timeout_ms) override;
  size_t watched_count() const override { return interests_.size(); }

 private:
  std::map<int, uint32_t> interests_;  // ordered: max fd is rbegin()
};

}  // namespace scio

#endif  // SRC_POSIX_SELECT_BACKEND_H_
