// epoll(7) backend: the mechanism the paper's /dev/poll work evolved into —
// kernel-state interest sets plus a ready list (the hinted-first scan of our
// ABL-6) made first-class. Supports level- and edge-triggered modes.

#ifndef SRC_POSIX_EPOLL_BACKEND_H_
#define SRC_POSIX_EPOLL_BACKEND_H_

#include <cstddef>

#include "src/posix/event_backend.h"

namespace scio {

class EpollBackend : public EventBackend {
 public:
  explicit EpollBackend(bool edge_triggered);
  ~EpollBackend() override;
  EpollBackend(const EpollBackend&) = delete;
  EpollBackend& operator=(const EpollBackend&) = delete;

  std::string name() const override { return edge_ ? "epoll-et" : "epoll"; }
  int Add(int fd, uint32_t interest) override;
  int Modify(int fd, uint32_t interest) override;
  int Remove(int fd) override;
  int Wait(std::vector<PosixEvent>& out, int timeout_ms) override;
  size_t watched_count() const override { return watched_; }

 private:
  int epfd_;
  bool edge_;
  size_t watched_ = 0;
};

}  // namespace scio

#endif  // SRC_POSIX_EPOLL_BACKEND_H_
