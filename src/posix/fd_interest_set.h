// Paged fd→interest set shared by the live-kernel event backends.
//
// select and the RT-signal backend both need the same thing: membership plus
// a 32-bit interest mask per descriptor, iterated in ascending-fd order when
// a recovery or wait pass rebuilds its pollfd/fd_set view. A `std::map`
// gives that with a heap node and three pointers per watched fd; at the
// million-descriptor scale the slab variant stores each interest in 8 bytes
// of paged slot storage and iterates via the occupancy bitmaps, touching
// only pages that contain watched descriptors. Iteration order is fd order
// by construction (sciolint D2: never address order).

#ifndef SRC_POSIX_FD_INTEREST_SET_H_
#define SRC_POSIX_FD_INTEREST_SET_H_

#include <cstdint>

#include "src/kernel/paged_slab.h"

namespace scio {

class FdInterestSet {
 public:
  // Descriptor numbers the set can hold; the page directory is sized once
  // from this, pages themselves materialize only for fd ranges in use.
  static constexpr size_t kDefaultFdLimit = 1 << 20;

  explicit FdInterestSet(size_t fd_limit = kDefaultFdLimit) : store_(fd_limit) {}

  size_t size() const { return store_.size(); }
  bool Contains(int fd) const {
    return fd >= 0 && store_.Contains(static_cast<size_t>(fd));
  }

  // False if fd is out of range or already present (caller sets errno).
  bool Add(int fd, uint32_t interest) {
    if (fd < 0 || static_cast<size_t>(fd) >= store_.limit() || Contains(fd)) {
      return false;
    }
    store_.EmplaceAt(static_cast<size_t>(fd)) = interest;
    return true;
  }

  // False if fd is not present.
  bool Modify(int fd, uint32_t interest) {
    if (!Contains(fd)) {
      return false;
    }
    store_.At(static_cast<size_t>(fd)) = interest;
    return true;
  }

  // False if fd is not present.
  bool Remove(int fd) {
    if (!Contains(fd)) {
      return false;
    }
    store_.ReleaseAt(static_cast<size_t>(fd));
    return true;
  }

  // Interest mask, or nullptr when fd is not watched.
  const uint32_t* Find(int fd) const {
    return fd < 0 ? nullptr : store_.Get(static_cast<size_t>(fd));
  }

  // Visit watched fds in ascending order: fn(int fd, uint32_t interest).
  template <typename Fn>
  void ForEach(Fn&& fn) const {
    store_.ForEach([&fn](size_t i, uint32_t interest) {
      fn(static_cast<int>(i), interest);
    });
  }

 private:
  PagedStore<uint32_t> store_;
};

}  // namespace scio

#endif  // SRC_POSIX_FD_INTEREST_SET_H_
