#include "src/posix/select_backend.h"

#include <cerrno>

namespace scio {

int SelectBackend::Add(int fd, uint32_t interest) {
  if (fd < 0 || fd >= FD_SETSIZE) {
    errno = EINVAL;
    return -1;
  }
  if (!interests_.Add(fd, interest)) {
    errno = EEXIST;
    return -1;
  }
  return 0;
}

int SelectBackend::Modify(int fd, uint32_t interest) {
  if (!interests_.Modify(fd, interest)) {
    errno = ENOENT;
    return -1;
  }
  return 0;
}

int SelectBackend::Remove(int fd) {
  if (!interests_.Remove(fd)) {
    errno = ENOENT;
    return -1;
  }
  return 0;
}

int SelectBackend::Wait(std::vector<PosixEvent>& out, int timeout_ms) {
  fd_set readset;
  fd_set writeset;
  fd_set errset;
  FD_ZERO(&readset);
  FD_ZERO(&writeset);
  FD_ZERO(&errset);
  int maxfd = -1;
  interests_.ForEach([&](int fd, uint32_t interest) {
    if ((interest & kEvReadable) != 0) {
      FD_SET(fd, &readset);
    }
    if ((interest & kEvWritable) != 0) {
      FD_SET(fd, &writeset);
    }
    FD_SET(fd, &errset);
    maxfd = fd;  // ascending iteration: the last fd is the max
  });
  timeval tv;
  timeval* tvp = nullptr;
  if (timeout_ms >= 0) {
    tv.tv_sec = timeout_ms / 1000;
    tv.tv_usec = (timeout_ms % 1000) * 1000;
    tvp = &tv;
  }
  const int rc = ::select(maxfd + 1, &readset, &writeset, &errset, tvp);
  if (rc <= 0) {
    return rc;
  }
  int produced = 0;
  interests_.ForEach([&](int fd, uint32_t interest) {
    (void)interest;
    uint32_t events = 0;
    if (FD_ISSET(fd, &readset)) {
      events |= kEvReadable;
    }
    if (FD_ISSET(fd, &writeset)) {
      events |= kEvWritable;
    }
    if (FD_ISSET(fd, &errset)) {
      events |= kEvError;
    }
    if (events != 0) {
      out.push_back(PosixEvent{fd, events});
      ++produced;
    }
  });
  return produced;
}

}  // namespace scio
