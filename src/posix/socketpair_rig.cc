#include "src/posix/socketpair_rig.h"

#include <fcntl.h>
#include <sys/socket.h>
#include <unistd.h>

namespace scio {

SocketpairRig::SocketpairRig(size_t count) {
  watch_fds_.reserve(count);
  poke_fds_.reserve(count);
  for (size_t i = 0; i < count; ++i) {
    int sv[2];
    if (::socketpair(AF_UNIX, SOCK_STREAM, 0, sv) != 0) {
      ok_ = false;
      break;
    }
    const int flags = ::fcntl(sv[0], F_GETFL);
    ::fcntl(sv[0], F_SETFL, flags | O_NONBLOCK);
    watch_fds_.push_back(sv[0]);
    poke_fds_.push_back(sv[1]);
  }
}

SocketpairRig::~SocketpairRig() {
  for (int fd : watch_fds_) {
    ::close(fd);
  }
  for (int fd : poke_fds_) {
    ::close(fd);
  }
}

void SocketpairRig::Poke(size_t i) {
  const char byte = 'x';
  [[maybe_unused]] ssize_t n = ::write(poke_fds_[i], &byte, 1);
}

void SocketpairRig::Drain(size_t i) {
  char buf[256];
  while (::read(watch_fds_[i], buf, sizeof buf) > 0) {
  }
}

int SocketpairRig::RegisterAll(EventBackend& backend) const {
  for (int fd : watch_fds_) {
    if (backend.Add(fd, kEvReadable) != 0) {
      // sciolint: allow(E2) -- errno inherited from the failed backend Add
      return -1;
    }
  }
  return 0;
}

}  // namespace scio
