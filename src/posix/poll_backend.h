// poll(2) backend: the stock interface the paper starts from. The pollfd
// array is maintained incrementally (not rebuilt per call), so Wait() cost
// is pure kernel-side scan — the quantity the paper attacks.

#ifndef SRC_POSIX_POLL_BACKEND_H_
#define SRC_POSIX_POLL_BACKEND_H_

#include <poll.h>

#include <vector>

#include "src/posix/event_backend.h"
#include "src/posix/fd_interest_set.h"

namespace scio {

class PollBackend : public EventBackend {
 public:
  std::string name() const override { return "poll"; }
  int Add(int fd, uint32_t interest) override;
  int Modify(int fd, uint32_t interest) override;
  int Remove(int fd) override;
  int Wait(std::vector<PosixEvent>& out, int timeout_ms) override;
  size_t watched_count() const override { return fds_.size(); }

 private:
  std::vector<pollfd> fds_;
  // fd -> slot in fds_, paged slab keyed by fd (swap-with-last on Remove).
  PagedStore<uint32_t> index_{FdInterestSet::kDefaultFdLimit};
};

}  // namespace scio

#endif  // SRC_POSIX_POLL_BACKEND_H_
