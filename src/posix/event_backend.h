// Real-OS event-notification backends behind one interface.
//
// The simulation reproduces the paper's *numbers*; this module keeps one
// foot in reality: the same API shapes (interest registration + wait) over
// the live kernel's poll(2), select(2), epoll(7), and the POSIX RT signal
// mechanism the paper studies (fcntl F_SETSIG + sigtimedwait). MICRO-1
// benchmarks their dispatch cost against watched-set size — the modern
// descendant of the paper's core measurement.

#ifndef SRC_POSIX_EVENT_BACKEND_H_
#define SRC_POSIX_EVENT_BACKEND_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

namespace scio {

// Interest / readiness bits (backend-neutral).
inline constexpr uint32_t kEvReadable = 0x1;
inline constexpr uint32_t kEvWritable = 0x2;
inline constexpr uint32_t kEvError = 0x4;
inline constexpr uint32_t kEvHangup = 0x8;

struct PosixEvent {
  int fd = -1;
  uint32_t events = 0;
};

enum class BackendKind {
  kPoll,
  kSelect,
  kEpoll,
  kEpollEdge,
  kRtSig,
};

class EventBackend {
 public:
  virtual ~EventBackend() = default;

  virtual std::string name() const = 0;

  // Register interest in fd. Returns 0, or -1 with errno set.
  virtual int Add(int fd, uint32_t interest) = 0;

  // Replace the interest set for an already-registered fd.
  virtual int Modify(int fd, uint32_t interest) = 0;

  // Deregister. Safe to call for unknown fds (returns -1).
  virtual int Remove(int fd) = 0;

  // Wait up to timeout_ms (0 = non-blocking, <0 = forever) and append ready
  // events. Returns the number of events, 0 on timeout, -1 on error.
  virtual int Wait(std::vector<PosixEvent>& out, int timeout_ms) = 0;

  virtual size_t watched_count() const = 0;

  static std::unique_ptr<EventBackend> Create(BackendKind kind);
  static const char* KindName(BackendKind kind);
};

}  // namespace scio

#endif  // SRC_POSIX_EVENT_BACKEND_H_
