#include "src/net/port_allocator.h"

namespace scio {

void PortAllocator::Reap(SimTime now) {
  while (!time_wait_ports_.empty() && time_wait_ports_.front().first <= now) {
    free_ports_.push_back(time_wait_ports_.front().second);
    time_wait_ports_.pop_front();
  }
}

int PortAllocator::Acquire(SimTime now) {
  Reap(now);
  int port = -1;
  if (!free_ports_.empty()) {
    port = free_ports_.front();
    free_ports_.pop_front();
  } else if (next_fresh_ < count_) {
    port = first_port_ + next_fresh_++;
  } else {
    return -1;
  }
  ++in_use_;
  return port;
}

void PortAllocator::ReleaseImmediate(int port) {
  --in_use_;
  free_ports_.push_back(port);
}

void PortAllocator::ReleaseTimeWait(int port, SimTime now) {
  --in_use_;
  time_wait_ports_.emplace_back(now + time_wait_, port);
}

int PortAllocator::in_time_wait(SimTime now) {
  Reap(now);
  return static_cast<int>(time_wait_ports_.size());
}

}  // namespace scio
