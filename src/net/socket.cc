#include "src/net/socket.h"

#include <algorithm>
#include <utility>

#include "src/kernel/sim_kernel.h"
#include "src/net/filter_chain.h"
#include "src/net/net_stack.h"
#include "src/net/transport_hook.h"

namespace scio {

SimSocket::SimSocket(SimKernel* kernel, NetStack* net, bool server_side)
    : File(kernel),
      net_(net),
      server_side_(server_side),
      state_(server_side ? State::kEstablished : State::kConnecting),
      sndbuf_(net->config().sndbuf) {}

SimSocket::~SimSocket() {
  if (transport_ != nullptr) {
    transport_->OnSocketDestroyed(this);
  }
  // Sockets dropped without Close (in-flight delivery teardown) still hold
  // buffered bytes; release them from the ledger here.
  if (recv_available_ > 0) {
    kernel()->mem().Sub(MemSys::kBuffers, recv_available_);
  }
  if (!server_side_ && port_ >= 0 && !port_released_) {
    net_->ports().ReleaseImmediate(port_);
  }
}

PollEvents SimSocket::PollMask() const {
  PollEvents mask = 0;
  if (recv_available_ > 0 || eof_received_) {
    mask |= kPollIn;
  }
  if (state_ == State::kEstablished && in_flight_ < sndbuf_) {
    mask |= kPollOut;
  }
  if (state_ == State::kPeerClosed) {
    mask |= kPollHup;
  }
  if (state_ == State::kRefused) {
    mask |= kPollErr;
  }
  return mask;
}

size_t SimSocket::Write(Chunk chunk) {
  if (state_ != State::kEstablished && state_ != State::kPeerClosed) {
    return 0;
  }
  const size_t budget = sndbuf_ > in_flight_ ? sndbuf_ - in_flight_ : 0;
  const size_t accepted = std::min(budget, chunk.size());
  if (accepted == 0) {
    return 0;
  }
  Chunk out;
  const size_t from_data = std::min(accepted, chunk.data.size());
  out.data = chunk.data.substr(0, from_data);
  out.synthetic = accepted - from_data;
  in_flight_ += accepted;

  if (transport_ != nullptr) {
    // The plane segments and (re)transmits; in_flight_ drains through
    // TransportAcked when the peer's cumulative ACK covers the bytes.
    transport_->Send(this, std::move(out));
    return accepted;
  }

  std::weak_ptr<SimSocket> self = weak_from_this();
  std::weak_ptr<SimSocket> peer = peer_;
  net_->LinkFor(/*toward_server=*/!server_side_)
      .Transmit(accepted, [self, peer, out = std::move(out), accepted]() mutable {
        if (auto s = self.lock()) {
          s->OnBytesAcked(accepted);
        }
        if (auto p = peer.lock()) {
          p->DeliverChunk(std::move(out));
        }
      });
  return accepted;
}

void SimSocket::OnBytesAcked(size_t n) {
  const bool was_blocked = in_flight_ >= sndbuf_;
  in_flight_ -= std::min(in_flight_, n);
  if (was_blocked && state_ == State::kEstablished && in_flight_ < sndbuf_) {
    NotifyStatus(kPollOut);
  }
}

void SimSocket::DeliverChunk(Chunk chunk) {
  if (state_ == State::kClosed || state_ == State::kRefused) {
    return;  // arrived after close; the real stack would RST
  }
  if (server_side_) {
    ++kernel()->stats().packets_delivered;
    ++kernel()->stats().interrupts;
    kernel()->ChargeDebt(kernel()->cost().interrupt_per_packet, ChargeCat::kInterrupt);
    // Packet-hook ingress filter: runs after the interrupt is taken (the
    // packet already cost its interrupt) but before any socket state changes.
    // A DROP discards the bytes in interrupt context; the sender's in-flight
    // accounting already ran at transmit completion, so nothing else moves.
    IngressFilterChain* filter = net_->filter();
    if (filter != nullptr &&
        filter->EvalPacket(remote_port_) == FilterVerdict::kDrop) {
      return;
    }
  }
  const size_t n = chunk.size();
  recv_available_ += n;
  kernel()->mem().Add(MemSys::kBuffers, n);
  recv_queue_.push_back(std::move(chunk));
  NotifyStatus(kPollIn);
  // Copy before invoking: the callback may Close() and drop the last strong
  // reference to this socket, destroying the member std::function mid-call.
  if (auto cb = on_data) {
    cb(n);
  }
}

void SimSocket::AcceptTransportBytes(Chunk chunk) {
  if (state_ == State::kClosed || state_ == State::kRefused) {
    return;  // arrived after close; the real stack would RST
  }
  const size_t n = chunk.size();
  recv_available_ += n;
  kernel()->mem().Add(MemSys::kBuffers, n);
  recv_queue_.push_back(std::move(chunk));
  NotifyStatus(kPollIn);
  // Copy before invoking: the callback may Close() and drop the last strong
  // reference to this socket, destroying the member std::function mid-call.
  if (auto cb = on_data) {
    cb(n);
  }
}

void SimSocket::DeliverEof() {
  if (state_ == State::kClosed || state_ == State::kRefused) {
    return;
  }
  eof_received_ = true;
  if (state_ == State::kEstablished || state_ == State::kConnecting) {
    state_ = State::kPeerClosed;
  }
  if (server_side_) {
    ++kernel()->stats().packets_delivered;
    ++kernel()->stats().interrupts;
    kernel()->ChargeDebt(kernel()->cost().interrupt_per_packet, ChargeCat::kInterrupt);
  }
  NotifyStatus(kPollIn | kPollHup);
  if (auto cb = on_eof) {
    cb();
  }
}

ReadResult SimSocket::Read(size_t max_bytes) {
  ReadResult result;
  while (result.n < max_bytes && !recv_queue_.empty()) {
    Chunk& front = recv_queue_.front();
    size_t want = max_bytes - result.n;
    // Real bytes first, then synthetic padding.
    const size_t from_data = std::min(want, front.data.size());
    result.data.append(front.data, 0, from_data);
    front.data.erase(0, from_data);
    want -= from_data;
    const size_t from_synth = std::min(want, front.synthetic);
    front.synthetic -= from_synth;
    result.n += from_data + from_synth;
    if (front.size() == 0) {
      recv_queue_.pop_front();
    }
  }
  recv_available_ -= result.n;
  kernel()->mem().Sub(MemSys::kBuffers, result.n);
  if (result.n == 0 && eof_received_) {
    result.eof = true;
  }
  return result;
}

void SimSocket::HandleConnected() {
  if (state_ == State::kConnecting) {
    state_ = State::kEstablished;
    if (auto cb = on_connected) {
      cb();
    }
  }
}

void SimSocket::HandleRefused() {
  if (state_ != State::kConnecting) {
    return;
  }
  state_ = State::kRefused;
  if (!server_side_ && port_ >= 0 && !port_released_) {
    // No TCB was established: the port is immediately reusable.
    net_->ports().ReleaseImmediate(port_);
    port_released_ = true;
  }
  if (auto cb = on_refused) {
    cb();
  }
}

void SimSocket::CloseInternal() {
  if (state_ == State::kClosed || state_ == State::kRefused) {
    return;
  }
  const State prev = state_;
  state_ = State::kClosed;
  recv_queue_.clear();
  kernel()->mem().Sub(MemSys::kBuffers, recv_available_);
  recv_available_ = 0;

  if (prev == State::kEstablished || prev == State::kPeerClosed) {
    if (transport_ != nullptr) {
      // The plane sequences the FIN behind any unacked data and keeps the
      // block retransmitting until it drains, even if this socket dies.
      transport_->OnSocketClose(this);
    } else {
      // Send our FIN.
      std::weak_ptr<SimSocket> peer = peer_;
      net_->LinkFor(/*toward_server=*/!server_side_)
          .Transmit(net_->config().control_packet_bytes, [peer] {
            if (auto p = peer.lock()) {
              p->DeliverEof();
            }
          });
    }
  }
  if (!server_side_ && port_ >= 0 && !port_released_) {
    if (prev == State::kEstablished || prev == State::kPeerClosed) {
      net_->ports().ReleaseTimeWait(port_, kernel()->now());
    } else {
      net_->ports().ReleaseImmediate(port_);
    }
    port_released_ = true;
  }
}

}  // namespace scio
