// ReusePortGroup: SO_REUSEPORT-style listener sharding.
//
// N listeners bind the same (address, port); the kernel picks one per
// incoming connection by hashing the flow. Here the flow is identified by
// the client's ephemeral port and the hash is seeded FNV-1a, so dispatch is
// deterministic per seed yet spreads connections evenly across shards. Each
// worker then accepts only from its own listener — no shared accept queue,
// no shared wait queue, and therefore no thundering herd to fix: this is the
// "scouting" paper's per-core accept answer, contrasted against the wake-one
// patch in bench_smp_scaling.

#ifndef SRC_NET_REUSEPORT_H_
#define SRC_NET_REUSEPORT_H_

#include <cstdint>
#include <memory>
#include <vector>

namespace scio {

class SimListener;

class ReusePortGroup {
 public:
  explicit ReusePortGroup(uint64_t seed) : seed_(seed) {}
  ReusePortGroup(const ReusePortGroup&) = delete;
  ReusePortGroup& operator=(const ReusePortGroup&) = delete;
  ~ReusePortGroup();

  // Join `listener` to the group. The listener keeps a back-pointer so
  // NetStack::Connect can route SYNs aimed at any member across the group.
  void Add(const std::shared_ptr<SimListener>& listener);

  // Flow-hash dispatch: which member receives a SYN from `client_port`.
  const std::shared_ptr<SimListener>& Route(int client_port) const;

  size_t size() const { return members_.size(); }
  const std::shared_ptr<SimListener>& member(size_t i) const { return members_[i]; }

 private:
  uint64_t seed_;
  std::vector<std::shared_ptr<SimListener>> members_;
};

}  // namespace scio

#endif  // SRC_NET_REUSEPORT_H_
