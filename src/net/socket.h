// SimSocket: one endpoint of a simulated TCP connection.
//
// TCP is modelled at the byte-stream level: connect and close handshakes cost
// one propagation latency, data serializes over the shared Link, receive
// buffers are finite, and a FIN makes the peer's socket readable (read()
// returns remaining data, then 0). Segment loss and retransmission are not
// modelled — the paper's testbed was a quiet switched LAN.
//
// A socket can live on either machine:
//  - the *server side* is installed in a Process fd table and participates in
//    the kernel machinery (poll masks, hints, RT signals, interrupt charges);
//  - the *client side* belongs to the load generator, which is pure
//    simulation: it reacts through the on_* callbacks, and its CPU is free
//    (the paper's four-way Xeon client is never the bottleneck).

#ifndef SRC_NET_SOCKET_H_
#define SRC_NET_SOCKET_H_

#include <cstddef>
#include <deque>
#include <functional>
#include <memory>
#include <string>

#include "src/kernel/file.h"
#include "src/kernel/poll_types.h"

namespace scio {

class NetStack;
class TcpTransportHook;

// A unit of transmitted data. `data` carries real bytes (HTTP requests and
// response headers are real so parsers can run); `synthetic` counts payload
// bytes whose content doesn't matter (response bodies), so we don't shuttle
// megabytes of zeroes through the simulator.
struct Chunk {
  std::string data;
  size_t synthetic = 0;
  size_t size() const { return data.size() + synthetic; }
};

struct ReadResult {
  size_t n = 0;        // bytes consumed (0 with eof=false means would-block)
  std::string data;    // real prefix of the consumed bytes
  bool eof = false;    // peer closed and no data remains
  int err = 0;         // 0, or an errno-style code (kErrBadF) from sys_errno.h
};

class SimSocket : public File, public std::enable_shared_from_this<SimSocket> {
 public:
  enum class State {
    kConnecting,   // client side, SYN in flight
    kEstablished,  // data may flow
    kPeerClosed,   // peer sent FIN; reads drain then return EOF
    kClosed,       // this side closed (fd gone or client Close())
    kRefused,      // client side, connect rejected
  };

  // Use NetStack::MakeSocket / SimListener::HandleSyn instead of constructing
  // directly, so peers and ports are wired consistently.
  SimSocket(SimKernel* kernel, NetStack* net, bool server_side);
  ~SimSocket() override;

  // --- File interface --------------------------------------------------------
  PollEvents PollMask() const override;
  bool SupportsPollHints() const override { return true; }
  void OnFdClose() override { CloseInternal(); }

  // --- data path ------------------------------------------------------------
  // Send; returns bytes accepted (may be short when the send buffer is full,
  // 0 if the connection is not writable). Accepted bytes are in flight until
  // delivery; while full, PollMask drops kPollOut.
  size_t Write(Chunk chunk);

  // Consume up to `max_bytes` from the receive queue.
  ReadResult Read(size_t max_bytes);

  size_t available() const { return recv_available_; }
  bool eof_received() const { return eof_received_; }
  State state() const { return state_; }
  bool server_side() const { return server_side_; }
  int port() const { return port_; }
  // Peer's ephemeral port, recorded on the server side at SYN time so the
  // ingress filter can classify data packets by source after accept().
  int remote_port() const { return remote_port_; }

  // Application-level close for client-side sockets (server side closes via
  // fd table close -> OnFdClose).
  void Close() { CloseInternal(); }

  // --- client-side callbacks ---------------------------------------------------
  std::function<void()> on_connected;
  std::function<void()> on_refused;
  std::function<void(size_t bytes)> on_data;
  std::function<void()> on_eof;

  // --- wiring (NetStack / SimListener internals) -------------------------------
  void WirePeer(std::shared_ptr<SimSocket> peer) { peer_ = std::move(peer); }
  void set_state(State s) { state_ = s; }
  void set_port(int port) { port_ = port; }
  void set_remote_port(int port) { remote_port_ = port; }
  std::shared_ptr<SimSocket> peer() const { return peer_.lock(); }

  // Remote-initiated events, scheduled by the peer through the link.
  void HandleConnected();
  void HandleRefused();
  void DeliverChunk(Chunk chunk);
  void DeliverEof();

  void set_sndbuf(size_t bytes) { sndbuf_ = bytes; }
  size_t sndbuf() const { return sndbuf_; }
  size_t in_flight() const { return in_flight_; }

  // --- transport plane (opt-in; see src/net/transport_hook.h) ------------------
  // Wired by TcpTransportHook::Attach: `index` is the plane's per-connection
  // block slot, so plane lookups from socket context are O(1).
  void WireTransport(TcpTransportHook* hook, int32_t index) {
    transport_ = hook;
    transport_index_ = index;
  }
  TcpTransportHook* transport() const { return transport_; }
  int32_t transport_index() const { return transport_index_; }

  // Plane-side delivery of in-order reassembled bytes. Interrupt charges and
  // the ingress packet filter already ran at segment arrival, so this only
  // enqueues into the receive buffer and fires readiness.
  void AcceptTransportBytes(Chunk chunk);

  // Plane-side acknowledgement: `n` bytes left the retransmit queue for good
  // (cumulatively acked by the peer), freeing send-buffer budget.
  void TransportAcked(size_t n) { OnBytesAcked(n); }

 private:
  void CloseInternal();
  void OnBytesAcked(size_t n);

  NetStack* net_;
  bool server_side_;
  State state_;
  int port_ = -1;
  int remote_port_ = -1;
  std::weak_ptr<SimSocket> peer_;

  std::deque<Chunk> recv_queue_;
  size_t recv_available_ = 0;
  bool eof_received_ = false;
  bool port_released_ = false;

  size_t sndbuf_;
  size_t in_flight_ = 0;

  TcpTransportHook* transport_ = nullptr;
  int32_t transport_index_ = -1;
};

}  // namespace scio

#endif  // SRC_NET_SOCKET_H_
