// Ephemeral port allocation with TIME-WAIT occupancy.
//
// The paper (§5) could keep only ~60000 sockets open at once because a closed
// socket spends sixty seconds in TIME-WAIT before its port can be reused, and
// had to pace benchmark runs around it. We reproduce that constraint: ports
// released into TIME-WAIT become reusable only after the configured hold
// time.

#ifndef SRC_NET_PORT_ALLOCATOR_H_
#define SRC_NET_PORT_ALLOCATOR_H_

#include <cstdint>
#include <deque>
#include <queue>

#include "src/sim/time.h"

namespace scio {

inline constexpr SimDuration kDefaultTimeWait = Seconds(60);

class PortAllocator {
 public:
  // Ports [first, first + count) are available.
  PortAllocator(int first_port, int count, SimDuration time_wait = kDefaultTimeWait)
      : first_port_(first_port), count_(count), time_wait_(time_wait) {}

  // Returns a free port, or -1 if every port is open or in TIME-WAIT.
  int Acquire(SimTime now);

  // Return a port without TIME-WAIT (e.g. connection refused: no TCB existed).
  void ReleaseImmediate(int port);

  // Return a port through TIME-WAIT: reusable at now + time_wait.
  void ReleaseTimeWait(int port, SimTime now);

  int in_use() const { return in_use_; }
  int in_time_wait(SimTime now);
  int capacity() const { return count_; }
  SimDuration time_wait() const { return time_wait_; }

 private:
  void Reap(SimTime now);

  int first_port_;
  int count_;
  SimDuration time_wait_;
  int next_fresh_ = 0;  // ports never used yet: first_port_ + next_fresh_
  int in_use_ = 0;
  std::deque<int> free_ports_;
  // FIFO by expiry: TIME-WAIT durations are constant so this stays sorted.
  std::deque<std::pair<SimTime, int>> time_wait_ports_;
};

}  // namespace scio

#endif  // SRC_NET_PORT_ALLOCATOR_H_
