#include "src/net/net_stack.h"

#include "src/net/listener.h"
#include "src/net/socket.h"

namespace scio {

std::shared_ptr<SimSocket> NetStack::Connect(const std::shared_ptr<SimListener>& listener) {
  const int port = ports_.Acquire(kernel_->now());
  if (port < 0) {
    return nullptr;
  }
  auto client = std::make_shared<SimSocket>(kernel_, this, /*server_side=*/false);
  client->set_port(port);
  to_server_.Transmit(config_.control_packet_bytes,
                      [listener, client] { listener->HandleSyn(client); });
  return client;
}

}  // namespace scio
