#include "src/net/net_stack.h"

#include "src/net/listener.h"
#include "src/net/reuseport.h"
#include "src/net/socket.h"
#include "src/net/transport_hook.h"

namespace scio {

std::shared_ptr<SimSocket> NetStack::Connect(const std::shared_ptr<SimListener>& listener) {
  const int port = ports_.Acquire(kernel_->now());
  if (port < 0) {
    return nullptr;
  }
  auto client = std::make_shared<SimSocket>(kernel_, this, /*server_side=*/false);
  client->set_port(port);
  if (transport_ != nullptr) {
    transport_->Attach(client.get());
  }
  // SO_REUSEPORT: if the listener shares its port with a shard group, the
  // flow hash — not the caller — picks which member receives the SYN.
  const std::shared_ptr<SimListener>& target =
      listener->reuseport_group() != nullptr ? listener->reuseport_group()->Route(port)
                                             : listener;
  to_server_.Transmit(config_.control_packet_bytes,
                      [target, client] { target->HandleSyn(client); });
  return client;
}

void NetStack::RawSyn(const std::shared_ptr<SimListener>& listener, int src_port) {
  // Spoofed SYNs ride the same flow hash as real ones: a sharded group sees
  // the flood spread across its members exactly as SO_REUSEPORT would.
  const std::shared_ptr<SimListener>& target =
      listener->reuseport_group() != nullptr ? listener->reuseport_group()->Route(src_port)
                                             : listener;
  to_server_.Transmit(config_.control_packet_bytes,
                      [target, src_port] { target->HandleRawSyn(src_port); });
}

}  // namespace scio
