// IngressFilterChain: a netfilter-style rule chain on the server's ingress
// path.
//
// Every inbound SYN (connect hook) and every inbound data packet (packet
// hook) traverses the chain in rule order until a rule matches; the first
// match decides ACCEPT, DROP, or RATE_LIMIT (token bucket: admit while
// tokens remain, drop beyond). An empty chain — and a missing one — accepts
// everything at zero cost, so the happy-path benches stay bit-identical.
//
// "Performance Evaluation of netfilter" measures per-rule traversal as a
// first-class overhead, so the chain charges filter_match_per_rule for every
// rule examined (and filter_drop_extra per executed drop) as
// interrupt-context debt under the kFilterMatch/kFilterDrop categories:
// filter CPU shows up in every attribution CSV and in the category-sum ==
// busy-time invariant like any other kernel work.
//
// Rules match on a source "address class" — a half-open port band
// [src_lo, src_hi). Real clients connect from the ephemeral allocator range;
// attack campaigns spoof sources from disjoint high bands, so a band is the
// model's equivalent of a CIDR block. The chain also counts SYN arrivals per
// fixed-width band (observation is part of filtering); AdaptiveDefense reads
// and resets those counts each tick to find the hot band.

#ifndef SRC_NET_FILTER_CHAIN_H_
#define SRC_NET_FILTER_CHAIN_H_

#include <cstdint>
#include <limits>
#include <map>
#include <string>
#include <utility>
#include <vector>

#include "src/kernel/sim_kernel.h"

namespace scio {

enum class FilterVerdict : uint8_t {
  kAccept,
  kDrop,
  kRateLimit,  // token bucket: ACCEPT while tokens remain, DROP beyond
};

const char* FilterVerdictName(FilterVerdict verdict);

// Default sustained admission rate for kRateLimit rules, in admissions per
// second (a token per admitted SYN or data packet, refilled continuously).
// 100/s holds a single abusive source band to ~1% of the paper's 10k-req/s
// saturation load while leaving interactive traffic untouched; tests pin
// this value, so changing it is an explicit decision, not a drive-by.
inline constexpr double kDefaultFilterRatePerSec = 100.0;

struct FilterRule {
  std::string label = "rule";
  // Source band [src_lo, src_hi); the defaults match every source.
  int src_lo = 0;
  int src_hi = std::numeric_limits<int>::max();
  // Which hooks the rule applies to. Connect-only rules are skipped (but
  // still traversed and charged) on the packet hook, and vice versa.
  bool on_connect = true;
  bool on_packet = false;
  FilterVerdict verdict = FilterVerdict::kAccept;
  // kRateLimit parameters: sustained admissions per second plus burst depth.
  double rate_per_sec = kDefaultFilterRatePerSec;
  double burst = 32.0;
};

// Chain-local observability (kernel-side counters live in KernelStats under
// filter.*; these are the per-run extras benchmark reports want).
struct FilterChainStats {
  uint64_t connect_evals = 0;
  uint64_t packet_evals = 0;
  uint64_t accepted = 0;
  uint64_t dropped = 0;             // explicit DROP verdicts
  uint64_t rate_limit_drops = 0;    // RATE_LIMIT buckets out of tokens
  uint64_t rules_inserted = 0;
  uint64_t rules_removed = 0;

  std::vector<std::pair<std::string, uint64_t>> ToRows() const;
};

class IngressFilterChain {
 public:
  // `band_width` is the granularity of the per-band SYN arrival counters.
  explicit IngressFilterChain(SimKernel* kernel, int band_width = 4096)
      : kernel_(kernel), band_width_(band_width < 1 ? 1 : band_width) {}
  IngressFilterChain(const IngressFilterChain&) = delete;
  IngressFilterChain& operator=(const IngressFilterChain&) = delete;

  // Add a rule at the tail / head of the chain. Returns the rule id (>= 1)
  // used by Remove(). Chain mutation is process-context work (an operator or
  // the defense controller editing the ruleset).
  int Append(FilterRule rule);
  int InsertFront(FilterRule rule);
  // Remove by id; false if the id is not in the chain.
  bool Remove(int id);
  size_t size() const { return entries_.size(); }

  // One SYN / one data packet hits the chain. Charges traversal (and drop)
  // costs as interrupt debt; returns kAccept or kDrop (a RATE_LIMIT match
  // resolves to one of the two).
  FilterVerdict EvalConnect(int src_port);
  FilterVerdict EvalPacket(int src_port);

  // Per-band SYN arrival counts accumulated since the last call, sorted by
  // band index; calling resets the window. Band b covers ports
  // [b*band_width, (b+1)*band_width).
  std::vector<std::pair<int, uint64_t>> TakeBandCounts();
  int band_width() const { return band_width_; }

  const FilterChainStats& stats() const { return stats_; }

 private:
  struct Entry {
    int id = 0;
    FilterRule rule;
    // Token-bucket state for kRateLimit rules, refilled lazily on sim time.
    double tokens = 0;
    SimTime last_refill = 0;
  };

  FilterVerdict Eval(int src_port, bool connect_hook);

  SimKernel* kernel_;
  int band_width_;
  int next_id_ = 1;
  std::vector<Entry> entries_;
  // Ordered map: the defense tick iterates bands, and simulation state must
  // not depend on hash-bucket order (sciolint D2).
  std::map<int, uint64_t> band_counts_;
  FilterChainStats stats_;
};

}  // namespace scio

#endif  // SRC_NET_FILTER_CHAIN_H_
