// TcpTransportHook: the seam between src/net and the opt-in transport plane.
//
// SimSocket and NetStack know only this interface; the concrete
// TransportPlane (src/transport) implements it. That keeps the dependency
// one-way — src/transport links against src/net, never the reverse — the
// same layering trick the kernel uses for the SMP plane. With no hook
// attached (the default), every socket runs the legacy reliable-pipe model
// and all checked-in baselines stay byte-identical.

#ifndef SRC_NET_TRANSPORT_HOOK_H_
#define SRC_NET_TRANSPORT_HOOK_H_

#include <cstddef>

namespace scio {

class SimSocket;
struct Chunk;

class TcpTransportHook {
 public:
  virtual ~TcpTransportHook() = default;

  // Give `sock` a per-connection TCP block (called at SYN time from
  // NetStack::Connect / SimListener::HandleSyn for both endpoints).
  virtual void Attach(SimSocket* sock) = 0;

  // Take ownership of bytes the socket accepted into its send buffer. The
  // plane segments, paces and (re)transmits them; it reports delivery back
  // through SimSocket::TransportAcked.
  virtual void Send(SimSocket* sock, Chunk chunk) = 0;

  // The socket closed: send a FIN once the retransmit queue drains, then
  // release the block. May outlive the socket (orphaned close).
  virtual void OnSocketClose(SimSocket* sock) = 0;

  // The socket object is being destroyed; the plane must drop its raw
  // pointer. Any still-unacked data keeps retransmitting for a bounded
  // number of backoffs, then the block is abandoned.
  virtual void OnSocketDestroyed(SimSocket* sock) = 0;
};

}  // namespace scio

#endif  // SRC_NET_TRANSPORT_HOOK_H_
