// NetStack: the simulated network between the client machine and the server.
//
// Mirrors the paper's testbed (§5): one client host and one server host on a
// 100 Mbit/s switch. Owns the two link directions, the client's ephemeral
// port space, and connection establishment.

#ifndef SRC_NET_NET_STACK_H_
#define SRC_NET_NET_STACK_H_

#include <memory>

#include "src/kernel/sim_kernel.h"
#include "src/net/link.h"
#include "src/net/port_allocator.h"

namespace scio {

class IngressFilterChain;
class SimListener;
class SimSocket;
class TcpTransportHook;

struct NetConfig {
  double bandwidth_bps = 100e6;          // 100 Mbit/s Ethernet
  SimDuration latency = Micros(150);     // one-way propagation + switch
  size_t sndbuf = 64 * 1024;             // per-socket send buffer
  size_t control_packet_bytes = 40;      // SYN / SYN-ACK / FIN on the wire
  SimDuration time_wait = kDefaultTimeWait;
  int first_client_port = 1024;
  int client_port_count = 59000;         // ~60000 sockets at once (§5)
};

class NetStack {
 public:
  explicit NetStack(SimKernel* kernel, NetConfig config = NetConfig{})
      : kernel_(kernel),
        config_(config),
        to_server_(&kernel->sim(), config.bandwidth_bps, config.latency),
        to_client_(&kernel->sim(), config.bandwidth_bps, config.latency),
        ports_(config.first_client_port, config.client_port_count, config.time_wait) {}
  NetStack(const NetStack&) = delete;
  NetStack& operator=(const NetStack&) = delete;

  SimKernel* kernel() { return kernel_; }
  const NetConfig& config() const { return config_; }
  PortAllocator& ports() { return ports_; }

  // Subject both link directions to a fault schedule (null to detach).
  void InstallFaultPlane(FaultPlane* plane) {
    to_server_.InstallFaultPlane(plane, /*toward_server=*/true);
    to_client_.InstallFaultPlane(plane, /*toward_server=*/false);
  }

  // Attach the server's ingress filter chain (borrowed; null to detach).
  // SimListener and server-side SimSockets consult it on SYN and data-packet
  // arrival; with no chain attached the ingress path is unchanged.
  void set_filter(IngressFilterChain* filter) { filter_ = filter; }
  IngressFilterChain* filter() const { return filter_; }

  // Attach the opt-in transport plane (borrowed; null to detach). With a
  // plane attached, every socket created from here on gets a per-connection
  // TCP block at SYN time; without one the legacy reliable-pipe model runs
  // and nothing changes.
  void set_transport(TcpTransportHook* transport) { transport_ = transport; }
  TcpTransportHook* transport() const { return transport_; }

  // Direction selector: traffic *from* the client flows toward the server.
  Link& LinkFor(bool toward_server) { return toward_server ? to_server_ : to_client_; }
  Link& to_server() { return to_server_; }
  Link& to_client() { return to_client_; }

  // Client-side connect: allocates an ephemeral port and launches the SYN.
  // Returns the (client-side) socket, or nullptr when the port space is
  // exhausted — the client-resource error the paper works around in §5.
  std::shared_ptr<SimSocket> Connect(const std::shared_ptr<SimListener>& listener);

  // Spoofed SYN: a 40-byte control packet from `src_port` (any int — spoofed
  // sources are not drawn from the ephemeral allocator) that will never be
  // ACKed. Consumes link bandwidth and server interrupt/SYN-queue resources;
  // no client-side socket exists. The campaign's SYN floods are made of these.
  void RawSyn(const std::shared_ptr<SimListener>& listener, int src_port);

 private:
  SimKernel* kernel_;
  NetConfig config_;
  Link to_server_;
  Link to_client_;
  PortAllocator ports_;
  IngressFilterChain* filter_ = nullptr;
  TcpTransportHook* transport_ = nullptr;
};

}  // namespace scio

#endif  // SRC_NET_NET_STACK_H_
