#include "src/net/link.h"

namespace scio {

void Link::Transmit(size_t bytes, std::function<void()> deliver) {
  const SimTime start = busy_until_ > sim_->now() ? busy_until_ : sim_->now();
  const auto tx_time =
      static_cast<SimDuration>(static_cast<double>(bytes) * 8.0 * 1e9 / bandwidth_bps_);
  busy_until_ = start + tx_time;
  bytes_carried_ += bytes;
  sim_->ScheduleAt(busy_until_ + latency_, std::move(deliver));
}

}  // namespace scio
