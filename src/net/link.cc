#include "src/net/link.h"

#include <algorithm>

#include "src/fault/fault_plane.h"

namespace scio {

void Link::Transmit(size_t bytes, EventCallback deliver) {
  const SimTime start = busy_until_ > sim_->now() ? busy_until_ : sim_->now();
  const auto tx_time =
      static_cast<SimDuration>(static_cast<double>(bytes) * 8.0 * 1e9 / bandwidth_bps_);
  busy_until_ = start + tx_time;
  bytes_carried_ += bytes;

  SimTime arrival = busy_until_ + latency_;
  if (fault_ != nullptr) {
    const FaultPlane::TransmitFault hit = fault_->OnTransmit(toward_server_);
    arrival += hit.extra_delay;
    if (hit.hold_until > 0) {
      // Link flap: the frame sits in the queue until the link comes back,
      // then still needs one propagation delay to cross.
      arrival = std::max(arrival, hit.hold_until + latency_);
    }
  }
  // TCP delivers in order: a delayed frame head-of-line blocks everything
  // behind it, so no frame may overtake an earlier one.
  arrival = std::max(arrival, last_arrival_);
  last_arrival_ = arrival;
  sim_->ScheduleAt(arrival, std::move(deliver));
}

}  // namespace scio
