#include "src/net/link.h"

#include <algorithm>

#include "src/fault/fault_plane.h"

namespace scio {

void Link::Transmit(size_t bytes, EventCallback deliver) {
  const SimTime start = busy_until_ > sim_->now() ? busy_until_ : sim_->now();
  const auto tx_time =
      static_cast<SimDuration>(static_cast<double>(bytes) * 8.0 * 1e9 / bandwidth_bps_);
  busy_until_ = start + tx_time;
  bytes_carried_ += bytes;

  SimTime arrival = busy_until_ + latency_;
  if (fault_ != nullptr) {
    const FaultPlane::TransmitFault hit = fault_->OnTransmit(toward_server_);
    arrival += hit.extra_delay;
    if (hit.lost) {
      // The reliable pipe has no retransmission machinery, so a "lost" frame
      // is delivered late by the window's penalty instead of being dropped.
      arrival += hit.loss_penalty;
    }
    if (hit.hold_until > 0) {
      // Link flap: the frame sits in the queue until the link comes back,
      // then still needs one propagation delay to cross.
      arrival = std::max(arrival, hit.hold_until + latency_);
    }
  }
  // TCP delivers in order: a delayed frame head-of-line blocks everything
  // behind it, so no frame may overtake an earlier one.
  arrival = std::max(arrival, last_arrival_);
  last_arrival_ = arrival;
  sim_->ScheduleAt(arrival, std::move(deliver));
}

bool Link::TransmitSegment(size_t bytes, SimDuration extra_delay, EventCallback deliver) {
  const SimTime start = busy_until_ > sim_->now() ? busy_until_ : sim_->now();
  const auto tx_time =
      static_cast<SimDuration>(static_cast<double>(bytes) * 8.0 * 1e9 / bandwidth_bps_);
  busy_until_ = start + tx_time;
  bytes_carried_ += bytes;

  SimTime arrival = busy_until_ + latency_ + extra_delay;
  if (fault_ != nullptr) {
    const FaultPlane::TransmitFault hit = fault_->OnTransmit(toward_server_);
    if (hit.lost) {
      // The wire time is already spent; the frame just never arrives. The
      // transport plane's retransmit queue takes it from here.
      return false;
    }
    arrival += hit.extra_delay;
    if (hit.hold_until > 0) {
      arrival = std::max(arrival, hit.hold_until + latency_);
    }
  }
  arrival = std::max(arrival, last_arrival_);
  last_arrival_ = arrival;
  sim_->ScheduleAt(arrival, std::move(deliver));
  return true;
}

}  // namespace scio
