#include "src/net/filter_chain.h"

#include <algorithm>

namespace scio {

const char* FilterVerdictName(FilterVerdict verdict) {
  switch (verdict) {
    case FilterVerdict::kAccept:
      return "accept";
    case FilterVerdict::kDrop:
      return "drop";
    case FilterVerdict::kRateLimit:
      return "rate_limit";
  }
  return "invalid";
}

std::vector<std::pair<std::string, uint64_t>> FilterChainStats::ToRows() const {
  return {
      {"chain.connect_evals", connect_evals},
      {"chain.packet_evals", packet_evals},
      {"chain.accepted", accepted},
      {"chain.dropped", dropped},
      {"chain.rate_limit_drops", rate_limit_drops},
      {"chain.rules_inserted", rules_inserted},
      {"chain.rules_removed", rules_removed},
  };
}

int IngressFilterChain::Append(FilterRule rule) {
  kernel_->Charge(kernel_->cost().filter_rule_update, ChargeCat::kFilterMatch);
  Entry entry;
  entry.id = next_id_++;
  entry.rule = std::move(rule);
  entry.tokens = entry.rule.burst;
  entry.last_refill = kernel_->now();
  entries_.push_back(std::move(entry));
  ++stats_.rules_inserted;
  return entries_.back().id;
}

int IngressFilterChain::InsertFront(FilterRule rule) {
  kernel_->Charge(kernel_->cost().filter_rule_update, ChargeCat::kFilterMatch);
  Entry entry;
  entry.id = next_id_++;
  entry.rule = std::move(rule);
  entry.tokens = entry.rule.burst;
  entry.last_refill = kernel_->now();
  entries_.insert(entries_.begin(), std::move(entry));
  ++stats_.rules_inserted;
  return entries_.front().id;
}

bool IngressFilterChain::Remove(int id) {
  for (auto it = entries_.begin(); it != entries_.end(); ++it) {
    if (it->id == id) {
      kernel_->Charge(kernel_->cost().filter_rule_update, ChargeCat::kFilterMatch);
      entries_.erase(it);
      ++stats_.rules_removed;
      return true;
    }
  }
  return false;
}

FilterVerdict IngressFilterChain::EvalConnect(int src_port) {
  ++stats_.connect_evals;
  // Band observation rides the connect hook: counting one SYN into its band
  // is part of the per-SYN work the chain already does.
  band_counts_[src_port / band_width_] += 1;
  return Eval(src_port, /*connect_hook=*/true);
}

FilterVerdict IngressFilterChain::EvalPacket(int src_port) {
  ++stats_.packet_evals;
  return Eval(src_port, /*connect_hook=*/false);
}

FilterVerdict IngressFilterChain::Eval(int src_port, bool connect_hook) {
  KernelStats& stats = kernel_->stats();
  ++stats.filter_evals;

  uint64_t traversed = 0;
  FilterVerdict verdict = FilterVerdict::kAccept;  // default chain policy
  bool rate_limited = false;
  for (Entry& entry : entries_) {
    ++traversed;
    const FilterRule& rule = entry.rule;
    if (connect_hook ? !rule.on_connect : !rule.on_packet) {
      continue;
    }
    if (src_port < rule.src_lo || src_port >= rule.src_hi) {
      continue;
    }
    if (rule.verdict == FilterVerdict::kRateLimit) {
      // Lazy token refill on the simulated clock; pure arithmetic on sim
      // time, so identical seeds refill identically.
      const SimTime now = kernel_->now();
      entry.tokens = std::min(
          rule.burst, entry.tokens + ToSeconds(now - entry.last_refill) * rule.rate_per_sec);
      entry.last_refill = now;
      if (entry.tokens >= 1.0) {
        entry.tokens -= 1.0;
        verdict = FilterVerdict::kAccept;
      } else {
        verdict = FilterVerdict::kDrop;
        rate_limited = true;
      }
    } else {
      verdict = rule.verdict;
    }
    break;  // first match decides
  }

  stats.filter_rules_traversed += traversed;
  // Ingress filtering runs in interrupt context: charge as debt, paid by the
  // next process-context charge (or absorbed by idle), like packet work.
  if (traversed > 0) {
    kernel_->ChargeDebt(
        kernel_->cost().filter_match_per_rule * static_cast<SimDuration>(traversed),
        ChargeCat::kFilterMatch);
  }
  if (verdict == FilterVerdict::kDrop) {
    kernel_->ChargeDebt(kernel_->cost().filter_drop_extra, ChargeCat::kFilterDrop);
    if (rate_limited) {
      ++stats.filter_rate_limit_drops;
      ++stats_.rate_limit_drops;
    } else {
      ++stats.filter_drops;
      ++stats_.dropped;
    }
  } else {
    ++stats_.accepted;
  }
  return verdict;
}

std::vector<std::pair<int, uint64_t>> IngressFilterChain::TakeBandCounts() {
  std::vector<std::pair<int, uint64_t>> out(band_counts_.begin(), band_counts_.end());
  band_counts_.clear();
  return out;
}

}  // namespace scio
