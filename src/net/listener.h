// SimListener: a listening TCP socket with a bounded accept backlog and a
// bounded SYN (half-open) backlog.
//
// A SYN that finds the accept backlog full is refused — one of the error
// sources the paper's httperf reports ("the server refuses connections for
// some reason", §5.1). Each queued-but-unaccepted connection is already
// established from the client's point of view, so clients may start sending
// before accept().
//
// The SYN backlog models listen()'s half-open queue. Well-behaved clients
// ACK within one RTT — instantly, at this model's resolution — so they hold
// a half-open slot for zero time and the benign path is unchanged. Spoofed
// SYNs (HandleRawSyn) never ACK: each occupies a slot until the syn_timeout
// reap, and once the queue saturates, benign SYNs are silently dropped (the
// flood's actual damage) unless syncookies are enabled, in which case every
// SYN is answered statelessly at per-SYN CPU cost and no slot is held.

#ifndef SRC_NET_LISTENER_H_
#define SRC_NET_LISTENER_H_

#include <deque>
#include <memory>

#include "src/kernel/file.h"
#include "src/net/socket.h"
#include "src/sim/time.h"

namespace scio {

class ReusePortGroup;

struct SynBacklogConfig {
  int max_half_open = 256;             // Linux tcp_max_syn_backlog, scaled down
  SimDuration syn_timeout = Seconds(3);  // half-open entries reaped after this
  bool syncookies = false;               // stateless fallback when saturated
};

class SimListener : public File {
 public:
  SimListener(SimKernel* kernel, NetStack* net, int backlog_max = 128)
      : File(kernel), net_(net), backlog_max_(backlog_max) {}

  // --- File interface --------------------------------------------------------
  PollEvents PollMask() const override { return backlog_.empty() ? 0 : kPollIn; }
  bool SupportsPollHints() const override { return true; }
  void OnFdClose() override;

  // SYN arrival (scheduled by NetStack::Connect through the link).
  void HandleSyn(const std::shared_ptr<SimSocket>& client);

  // Spoofed SYN arrival (scheduled by NetStack::RawSyn): no client socket
  // exists and no ACK will ever come, so the SYN either occupies a half-open
  // slot until the timeout reap or — under syncookies — costs a stateless
  // SYN-ACK and is forgotten.
  void HandleRawSyn(int src_port);

  // Pop the next established connection; nullptr when the backlog is empty.
  std::shared_ptr<SimSocket> Accept();

  size_t backlog_depth() const { return backlog_.size(); }
  int backlog_max() const { return backlog_max_; }
  bool closed() const { return closed_; }

  // --- SYN backlog -----------------------------------------------------------
  void ConfigureSynBacklog(const SynBacklogConfig& config) { syn_config_ = config; }
  void set_syncookies(bool on) { syn_config_.syncookies = on; }
  const SynBacklogConfig& syn_config() const { return syn_config_; }
  // Drop half-open entries whose timeout has passed (charges reap debt).
  // Called lazily on every SYN arrival; the defense tick also calls it so
  // occupancy readings decay even when no SYNs arrive.
  void ReapHalfOpen();
  size_t syn_backlog_depth() const { return half_open_.size(); }
  size_t syn_backlog_peak() const { return syn_backlog_peak_; }

  // SO_REUSEPORT sharding group, if this listener joined one (borrowed;
  // maintained by ReusePortGroup). NetStack::Connect consults it to route
  // the SYN to the flow-hashed member instead of this listener.
  void set_reuseport_group(ReusePortGroup* group) { reuseport_group_ = group; }
  ReusePortGroup* reuseport_group() const { return reuseport_group_; }

 private:
  struct HalfOpen {
    int src_port = 0;
    SimTime expires = 0;
  };

  // Interrupt-context arrival accounting + ingress filter traversal. Returns
  // false when the filter dropped the SYN.
  bool IngressSynAllowed(int src_port);

  NetStack* net_;
  int backlog_max_;
  bool closed_ = false;
  ReusePortGroup* reuseport_group_ = nullptr;
  std::deque<std::shared_ptr<SimSocket>> backlog_;
  // Half-open queue: entries share one timeout, so the deque stays ordered
  // by expiry and the reap pops from the front.
  SynBacklogConfig syn_config_;
  std::deque<HalfOpen> half_open_;
  size_t syn_backlog_peak_ = 0;
};

}  // namespace scio

#endif  // SRC_NET_LISTENER_H_
