// SimListener: a listening TCP socket with a bounded accept backlog.
//
// A SYN that finds the backlog full is refused — one of the error sources the
// paper's httperf reports ("the server refuses connections for some reason",
// §5.1). Each queued-but-unaccepted connection is already established from
// the client's point of view, so clients may start sending before accept().

#ifndef SRC_NET_LISTENER_H_
#define SRC_NET_LISTENER_H_

#include <deque>
#include <memory>

#include "src/kernel/file.h"
#include "src/net/socket.h"

namespace scio {

class ReusePortGroup;

class SimListener : public File {
 public:
  SimListener(SimKernel* kernel, NetStack* net, int backlog_max = 128)
      : File(kernel), net_(net), backlog_max_(backlog_max) {}

  // --- File interface --------------------------------------------------------
  PollEvents PollMask() const override { return backlog_.empty() ? 0 : kPollIn; }
  bool SupportsPollHints() const override { return true; }
  void OnFdClose() override;

  // SYN arrival (scheduled by NetStack::Connect through the link).
  void HandleSyn(const std::shared_ptr<SimSocket>& client);

  // Pop the next established connection; nullptr when the backlog is empty.
  std::shared_ptr<SimSocket> Accept();

  size_t backlog_depth() const { return backlog_.size(); }
  int backlog_max() const { return backlog_max_; }
  bool closed() const { return closed_; }

  // SO_REUSEPORT sharding group, if this listener joined one (borrowed;
  // maintained by ReusePortGroup). NetStack::Connect consults it to route
  // the SYN to the flow-hashed member instead of this listener.
  void set_reuseport_group(ReusePortGroup* group) { reuseport_group_ = group; }
  ReusePortGroup* reuseport_group() const { return reuseport_group_; }

 private:
  NetStack* net_;
  int backlog_max_;
  bool closed_ = false;
  ReusePortGroup* reuseport_group_ = nullptr;
  std::deque<std::shared_ptr<SimSocket>> backlog_;
};

}  // namespace scio

#endif  // SRC_NET_LISTENER_H_
