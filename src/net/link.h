// A unidirectional network link with finite bandwidth and fixed latency.
//
// The paper's testbed is two hosts on a 100 Mbit/s Ethernet switch; each
// direction is modelled as one Link. Transmissions serialize FIFO: a frame
// starts when the link finishes the previous one, takes bytes*8/bandwidth to
// clock out, and arrives one propagation latency later. At the paper's peak
// (~1000 replies/s of 6 KB documents ≈ 48 Mbit/s) the link runs near half
// utilization, so queueing here is a minor but real effect.

#ifndef SRC_NET_LINK_H_
#define SRC_NET_LINK_H_

#include <cstdint>

#include "src/sim/event_callback.h"
#include "src/sim/simulator.h"

namespace scio {

class FaultPlane;

class Link {
 public:
  Link(Simulator* sim, double bandwidth_bps, SimDuration latency)
      : sim_(sim), bandwidth_bps_(bandwidth_bps), latency_(latency) {}
  Link(const Link&) = delete;
  Link& operator=(const Link&) = delete;

  // Queue `bytes` for transmission; `deliver` runs at the arrival time.
  // EventCallback stores small captures inline, so delivery scheduling does
  // not allocate once the event pool has warmed up.
  void Transmit(size_t bytes, EventCallback deliver);

  // Transport-plane variant: a kPacketLoss fault hit DROPS the frame instead
  // of delaying it (the frame still occupies the wire — bandwidth is spent
  // either way). Returns false on a drop, in which case `deliver` never runs
  // and the caller's retransmission machinery repairs the stream.
  // `extra_delay` adds seeded one-way jitter to the arrival time; in-order
  // delivery is still enforced, so jitter stretches RTT without reordering.
  bool TransmitSegment(size_t bytes, SimDuration extra_delay, EventCallback deliver);

  // Subject this link to a fault schedule (loss, latency spikes, flaps).
  // `toward_server` tells the plane which direction this link carries.
  void InstallFaultPlane(FaultPlane* plane, bool toward_server) {
    fault_ = plane;
    toward_server_ = toward_server;
  }

  SimTime busy_until() const { return busy_until_; }
  uint64_t bytes_carried() const { return bytes_carried_; }
  SimDuration latency() const { return latency_; }

 private:
  Simulator* sim_;
  double bandwidth_bps_;
  SimDuration latency_;
  SimTime busy_until_ = 0;
  SimTime last_arrival_ = 0;  // enforces in-order delivery under faults
  uint64_t bytes_carried_ = 0;
  FaultPlane* fault_ = nullptr;
  bool toward_server_ = false;
};

}  // namespace scio

#endif  // SRC_NET_LINK_H_
