#include "src/net/listener.h"

#include <algorithm>

#include "src/kernel/sim_kernel.h"
#include "src/net/filter_chain.h"
#include "src/net/net_stack.h"
#include "src/net/transport_hook.h"

namespace scio {

void SimListener::OnFdClose() {
  closed_ = true;
  backlog_.clear();  // pending clients will time out, as on a real host
  half_open_.clear();
}

void SimListener::ReapHalfOpen() {
  const SimTime now = kernel()->now();
  size_t reaped = 0;
  while (!half_open_.empty() && half_open_.front().expires <= now) {
    half_open_.pop_front();
    ++reaped;
  }
  if (reaped > 0) {
    kernel()->stats().net_half_open_reaped += reaped;
    // Timer-context teardown of the stale connection-request blocks.
    kernel()->ChargeDebt(
        kernel()->cost().synq_reap_per_entry * static_cast<SimDuration>(reaped),
        ChargeCat::kConnMgmt);
  }
}

bool SimListener::IngressSynAllowed(int src_port) {
  // SYN processing happens in interrupt context on the server.
  ++kernel()->stats().packets_delivered;
  ++kernel()->stats().interrupts;
  kernel()->ChargeDebt(kernel()->cost().interrupt_per_packet, ChargeCat::kInterrupt);
  ReapHalfOpen();
  IngressFilterChain* filter = net_->filter();
  if (filter != nullptr &&
      filter->EvalConnect(src_port) == FilterVerdict::kDrop) {
    // iptables-style DROP: no RST, the sender just never hears back.
    return false;
  }
  return true;
}

void SimListener::HandleSyn(const std::shared_ptr<SimSocket>& client) {
  if (!IngressSynAllowed(client->port())) {
    return;
  }

  if (closed_ || backlog_.size() >= static_cast<size_t>(backlog_max_)) {
    ++kernel()->stats().connections_refused;
    net_->LinkFor(/*toward_server=*/false)
        .Transmit(net_->config().control_packet_bytes, [client] { client->HandleRefused(); });
    return;
  }

  // A benign client ACKs within one RTT — instantly here — so it holds a
  // half-open slot for zero time. But when the queue is already saturated by
  // never-ACKed SYNs, this SYN has nowhere to wait: Linux silently drops it
  // (the client times out and retries) unless syncookies take over, encoding
  // the connection state into the sequence number at per-SYN CPU cost.
  if (half_open_.size() >= static_cast<size_t>(syn_config_.max_half_open)) {
    if (!syn_config_.syncookies) {
      ++kernel()->stats().net_syn_backlog_overflows;
      return;
    }
    ++kernel()->stats().net_syncookies_sent;
    kernel()->ChargeDebt(kernel()->cost().syncookie_cost, ChargeCat::kSynCookie);
  }

  auto server = std::make_shared<SimSocket>(kernel(), net_, /*server_side=*/true);
  server->set_remote_port(client->port());
  if (TcpTransportHook* transport = net_->transport(); transport != nullptr) {
    transport->Attach(server.get());
  }
  server->WirePeer(client);
  client->WirePeer(server);
  backlog_.push_back(server);
  // Herd metric: every Process::Wake() triggered by this SYN's notification
  // fan-out (poll sleepers, devpoll owners via hint backmaps, RT-signal
  // deliveries) is a listener wakeup. wakeups/accept ≈ 1 is the wake-one
  // ideal; N sleeping workers woken per SYN is the 2.2 thundering herd.
  const uint64_t wakes_before = kernel()->TotalProcessWakes();
  NotifyStatus(kPollIn);
  kernel()->stats().wait_listener_syn_wakeups +=
      kernel()->TotalProcessWakes() - wakes_before;

  net_->LinkFor(/*toward_server=*/false)
      .Transmit(net_->config().control_packet_bytes, [client] { client->HandleConnected(); });
}

void SimListener::HandleRawSyn(int src_port) {
  ++kernel()->stats().net_raw_syns;
  if (!IngressSynAllowed(src_port)) {
    return;
  }
  if (closed_) {
    return;
  }
  if (syn_config_.syncookies) {
    // Stateless SYN-ACK into the void: CPU is spent, no state is held, and
    // the ACK that would complete the cookie handshake never arrives.
    ++kernel()->stats().net_syncookies_sent;
    kernel()->ChargeDebt(kernel()->cost().syncookie_cost, ChargeCat::kSynCookie);
    return;
  }
  if (half_open_.size() >= static_cast<size_t>(syn_config_.max_half_open)) {
    ++kernel()->stats().net_syn_backlog_overflows;
    return;
  }
  half_open_.push_back({src_port, kernel()->now() + syn_config_.syn_timeout});
  syn_backlog_peak_ = std::max(syn_backlog_peak_, half_open_.size());
}

std::shared_ptr<SimSocket> SimListener::Accept() {
  if (backlog_.empty()) {
    return nullptr;
  }
  std::shared_ptr<SimSocket> conn = backlog_.front();
  backlog_.pop_front();
  return conn;
}

}  // namespace scio
