#include "src/net/listener.h"

#include "src/kernel/sim_kernel.h"
#include "src/net/net_stack.h"

namespace scio {

void SimListener::OnFdClose() {
  closed_ = true;
  backlog_.clear();  // pending clients will time out, as on a real host
}

void SimListener::HandleSyn(const std::shared_ptr<SimSocket>& client) {
  // SYN processing happens in interrupt context on the server.
  ++kernel()->stats().packets_delivered;
  ++kernel()->stats().interrupts;
  kernel()->ChargeDebt(kernel()->cost().interrupt_per_packet, ChargeCat::kInterrupt);

  if (closed_ || backlog_.size() >= static_cast<size_t>(backlog_max_)) {
    ++kernel()->stats().connections_refused;
    net_->LinkFor(/*toward_server=*/false)
        .Transmit(net_->config().control_packet_bytes, [client] { client->HandleRefused(); });
    return;
  }

  auto server = std::make_shared<SimSocket>(kernel(), net_, /*server_side=*/true);
  server->WirePeer(client);
  client->WirePeer(server);
  backlog_.push_back(server);
  // Herd metric: every Process::Wake() triggered by this SYN's notification
  // fan-out (poll sleepers, devpoll owners via hint backmaps, RT-signal
  // deliveries) is a listener wakeup. wakeups/accept ≈ 1 is the wake-one
  // ideal; N sleeping workers woken per SYN is the 2.2 thundering herd.
  const uint64_t wakes_before = kernel()->TotalProcessWakes();
  NotifyStatus(kPollIn);
  kernel()->stats().wait_listener_syn_wakeups +=
      kernel()->TotalProcessWakes() - wakes_before;

  net_->LinkFor(/*toward_server=*/false)
      .Transmit(net_->config().control_packet_bytes, [client] { client->HandleConnected(); });
}

std::shared_ptr<SimSocket> SimListener::Accept() {
  if (backlog_.empty()) {
    return nullptr;
  }
  std::shared_ptr<SimSocket> conn = backlog_.front();
  backlog_.pop_front();
  return conn;
}

}  // namespace scio
