#include "src/net/reuseport.h"

#include <cassert>

#include "src/net/listener.h"

namespace scio {

ReusePortGroup::~ReusePortGroup() {
  for (const auto& member : members_) {
    member->set_reuseport_group(nullptr);
  }
}

void ReusePortGroup::Add(const std::shared_ptr<SimListener>& listener) {
  members_.push_back(listener);
  listener->set_reuseport_group(this);
}

const std::shared_ptr<SimListener>& ReusePortGroup::Route(int client_port) const {
  assert(!members_.empty());
  // Seeded FNV-1a over the flow identifier (the client's ephemeral port).
  uint64_t h = 14695981039346656037ULL ^ seed_;
  uint64_t key = static_cast<uint64_t>(static_cast<uint32_t>(client_port));
  for (int i = 0; i < 4; ++i) {
    h ^= (key >> (8 * i)) & 0xff;
    h *= 1099511628211ULL;
  }
  return members_[h % members_.size()];
}

}  // namespace scio
