#include "src/smp/smp_scheduler.h"

#include <cassert>

namespace scio {
namespace {

// Identifies the worker a thread belongs to. The scheduler's main (calling)
// thread and event callbacks executed while a worker steps the simulator all
// run on some thread, but only threads spawned by WorkerMain get an index.
thread_local int tls_worker = -1;

// Deterministic LCG for seeded tie-breaking (same constants as PCG's
// default multiplier; any full-period LCG works).
constexpr uint64_t kLcgMul = 6364136223846793005ULL;
constexpr uint64_t kLcgInc = 1442695040888963407ULL;

}  // namespace

SmpScheduler::SmpScheduler(SimKernel* kernel, int cpus, uint64_t seed)
    : kernel_(kernel),
      seed_(seed),
      rr_cursor_(seed * kLcgMul + kLcgInc),
      cpu_free_at_(static_cast<size_t>(cpus < 1 ? 1 : cpus), 0),
      cpu_last_worker_(static_cast<size_t>(cpus < 1 ? 1 : cpus), -1),
      cpu_ledgers_(static_cast<size_t>(cpus < 1 ? 1 : cpus)) {}

SmpScheduler::~SmpScheduler() {
  assert(!running_ && "destroying a scheduler mid-Run()");
  for (auto& ctx : ctxs_) {
    if (ctx->thread.joinable()) {
      ctx->thread.join();
    }
  }
}

void SmpScheduler::AddWorker(Process* proc, std::function<void()> body) {
  assert(!running_ && "workers must be added before Run()");
  auto ctx = std::make_unique<Ctx>();
  ctx->proc = proc;
  ctx->body = std::move(body);
  ctx->cpu = static_cast<int>(ctxs_.size()) % cpus();
  ctxs_.push_back(std::move(ctx));
}

void SmpScheduler::Run() {
  assert(tls_worker == -1 && "Run() must not be called from a worker");
  if (ctxs_.empty()) {
    return;
  }
  running_ = true;
  kernel_->set_smp(this);
  for (size_t i = 0; i < ctxs_.size(); ++i) {
    ctxs_[i]->thread = std::thread([this, i] { WorkerMain(static_cast<int>(i)); });
  }
  // Hand the baton to the first worker; we are granted it back only when
  // every worker body has returned.
  Reschedule(kMain);
  for (auto& ctx : ctxs_) {
    ctx->thread.join();
    assert(ctx->state == State::kDone);
  }
  kernel_->set_smp(nullptr);
  running_ = false;
}

bool SmpScheduler::InWorkerContext() const { return running_ && tls_worker >= 0; }

void SmpScheduler::OnCharge(SimDuration total) {
  Ctx& me = *ctxs_[tls_worker];
  me.local_time += total;
  if (cpu_free_at_[me.cpu] < me.local_time) {
    cpu_free_at_[me.cpu] = me.local_time;
  }
  // Yield: another worker whose CPU is free earlier may run first; the fast
  // path (we are still the earliest runnable) returns without a handoff.
  Reschedule(tls_worker);
}

bool SmpScheduler::OnBlock(Process& proc, SimTime deadline) {
  Ctx& me = *ctxs_[tls_worker];
  assert(me.proc == &proc && "a worker may only block its own process");
  (void)proc;
  me.state = State::kBlocked;
  me.block_deadline = deadline;
  Reschedule(tls_worker);
  // Granted again: either the wake flag is set, the deadline passed, or the
  // kernel stopped (flag stays false for the latter two).
  return me.proc->woken();
}

void SmpScheduler::OnAttribute(ChargeCat cat, SimDuration d) {
  cpu_ledgers_[ctxs_[tls_worker]->cpu].Add(cat, d);
}

void SmpScheduler::ChargeLocal(Ctx& ctx, ChargeCat cat, SimDuration d) {
  const SimDuration scaled = kernel_->Scaled(d);
  const SimTime at = RunnableAt(ctx);
  ctx.local_time = at + scaled;
  cpu_free_at_[ctx.cpu] = at + scaled;
  cpu_ledgers_[ctx.cpu].Add(cat, scaled);
  kernel_->AccountSmp(cat, scaled);
}

void SmpScheduler::PromoteWoken() {
  const SimTime now = kernel_->sim().now();
  for (auto& ctx : ctxs_) {
    if (ctx->state != State::kBlocked) {
      continue;
    }
    if (ctx->proc->woken() || now >= ctx->block_deadline || kernel_->stopped()) {
      ctx->state = State::kReady;
      if (ctx->local_time < now) {
        ctx->local_time = now;
      }
    }
  }
}

SimTime SmpScheduler::MinBlockedDeadline() const {
  SimTime min = kSimTimeNever;
  for (const auto& ctx : ctxs_) {
    if (ctx->state == State::kBlocked && ctx->block_deadline < min) {
      min = ctx->block_deadline;
    }
  }
  return min;
}

bool SmpScheduler::AnyBlockedWoken() const {
  for (const auto& ctx : ctxs_) {
    if (ctx->state == State::kBlocked && ctx->proc->woken()) {
      return true;
    }
  }
  return false;
}

void SmpScheduler::Reschedule(int cur) {
  Simulator& sim = kernel_->sim();
  while (true) {
    PromoteWoken();

    // Pick the ready worker whose CPU can run it earliest; seeded-LCG
    // tie-break so N workers ready at the same instant don't always run in
    // index order (a real SMP kernel gives no such guarantee, and the seed
    // gate proves the schedule is a function of the seed alone).
    int next = -1;
    SimTime next_at = kSimTimeNever;
    int ties = 0;
    for (size_t i = 0; i < ctxs_.size(); ++i) {
      if (ctxs_[i]->state != State::kReady) {
        continue;
      }
      const SimTime at = RunnableAt(*ctxs_[i]);
      if (at < next_at) {
        next = static_cast<int>(i);
        next_at = at;
        ties = 1;
      } else if (at == next_at) {
        ++ties;
      }
    }
    if (next >= 0 && ties > 1) {
      std::vector<int> tied;
      tied.reserve(static_cast<size_t>(ties));
      for (size_t i = 0; i < ctxs_.size(); ++i) {
        if (ctxs_[i]->state == State::kReady && RunnableAt(*ctxs_[i]) == next_at) {
          tied.push_back(static_cast<int>(i));
        }
      }
      rr_cursor_ = rr_cursor_ * kLcgMul + kLcgInc;
      next = tied[(rr_cursor_ >> 33) % tied.size()];
    }

    if (next < 0) {
      // Nobody is ready. Either everyone is done (hand the baton home) or
      // everyone is blocked (run simulation events toward the earliest
      // deadline, stopping early if an event wakes someone).
      bool all_done = true;
      for (const auto& ctx : ctxs_) {
        if (ctx->state != State::kDone) {
          all_done = false;
          break;
        }
      }
      if (all_done) {
        if (cur != kMain) {
          HandOff(cur, kMain);
        }
        return;
      }
      const SimTime step_to = MinBlockedDeadline();
      if (sim.pending_count() == 0) {
        if (step_to == kSimTimeNever) {
          // Nothing in the world can ever wake them: force a spurious
          // timeout so every blocked worker resumes (wake flag false) and
          // can observe shutdown conditions instead of deadlocking.
          for (auto& ctx : ctxs_) {
            if (ctx->state == State::kBlocked) {
              ctx->state = State::kReady;
              if (ctx->local_time < sim.now()) {
                ctx->local_time = sim.now();
              }
            }
          }
        } else {
          // No events left before the earliest deadline: jump straight to it
          // so the timed-out worker promotes on the next pass.
          sim.AdvanceTo(step_to);
        }
        continue;
      }
      (void)sim.StepUntil(
          [this, &sim] {
            return AnyBlockedWoken() || kernel_->stopped() || sim.pending_count() == 0;
          },
          step_to);
      continue;
    }

    // Run simulation events up to the next worker's resume point; an event
    // may wake a blocked worker first, in which case we re-pick. Once the
    // kernel is stopped, event fidelity no longer matters — grant directly
    // so shutdown can't spin on a permanently-true stop predicate.
    if (next_at > sim.now() && !kernel_->stopped()) {
      const bool interrupted = sim.StepUntil(
          [this] { return AnyBlockedWoken() || kernel_->stopped(); }, next_at);
      if (interrupted) {
        continue;
      }
    }

    // Charge the context switch before granting: it occupies the CPU, so it
    // pushes the worker's resume point out and the pick must be redone (a
    // worker on another CPU may now be earlier).
    Ctx& nc = *ctxs_[next];
    if (cpu_last_worker_[nc.cpu] != next) {
      cpu_last_worker_[nc.cpu] = next;
      ++kernel_->stats().smp_context_switches;
      ChargeLocal(nc, ChargeCat::kSmpSched, kernel_->cost().smp_context_switch);
      continue;
    }

    // Grant: the worker's local clock catches up to its CPU's availability.
    nc.local_time = next_at;
    if (next != cur) {
      HandOff(cur, next);
    }
    return;
  }
}

void SmpScheduler::HandOff(int cur, int next) {
  std::unique_lock<std::mutex> lk(mu_);
  active_ = next;
  cv_.notify_all();
  if (cur != kMain && ctxs_[cur]->state == State::kDone) {
    return;  // a finished worker hands the baton off and exits
  }
  cv_.wait(lk, [this, cur] { return active_ == cur; });
}

void SmpScheduler::WorkerMain(int index) {
  tls_worker = index;
  {
    std::unique_lock<std::mutex> lk(mu_);
    cv_.wait(lk, [this, index] { return active_ == index; });
  }
  ctxs_[index]->body();
  ctxs_[index]->state = State::kDone;
  // Pass the baton on (to another worker or back to Run()); does not wait.
  Reschedule(index);
}

}  // namespace scio
