// SmpScheduler: a deterministic round-robin scheduler for N virtual CPUs.
//
// The simulator stays single-threaded in spirit: worker bodies run on real
// std::threads only because each body is a deep blocking call stack (a server
// Run() loop inside simulated syscalls) that needs its own stack to suspend,
// but exactly ONE thread executes at any instant. The baton is handed off
// under a mutex/condvar pair, so there is no concurrency — only cooperative
// context switching, which keeps every seeded run bit-identical.
//
// Time model: each worker owns a local CPU clock (`local_time`). A worker's
// Charge() advances only its local clock; the global simulator clock advances
// when the scheduler runs simulation events up to the next runnable worker's
// resume point. A CPU can run one worker at a time (`cpu_free_at_`), so two
// workers pinned to one CPU serialize, while workers on distinct CPUs overlap
// in virtual time — that is the whole point of the plane. Scheduling is
// round-robin with a seeded rotating cursor breaking ready-time ties, so the
// schedule is deterministic but not trivially index-ordered.
//
// Context switches are charged (CostModel::smp_context_switch) to the
// incoming worker's CPU under ChargeCat::kSmpSched, and each CPU keeps its
// own TimeAttribution ledger; the global ledger invariant
// attribution().Sum() == busy_time() still holds.

#ifndef SRC_SMP_SMP_SCHEDULER_H_
#define SRC_SMP_SMP_SCHEDULER_H_

#include <condition_variable>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "src/kernel/sim_kernel.h"
#include "src/sim/time.h"
#include "src/trace/time_attribution.h"

namespace scio {

class SmpScheduler : public SmpPlane {
 public:
  // `cpus` virtual CPUs; `seed` perturbs only tie-breaking among workers that
  // become runnable at the same instant (two seeds give two valid SMP
  // serializations; one seed always gives the same one).
  SmpScheduler(SimKernel* kernel, int cpus, uint64_t seed);
  SmpScheduler(const SmpScheduler&) = delete;
  SmpScheduler& operator=(const SmpScheduler&) = delete;
  ~SmpScheduler() override;

  // Register a worker before Run(). Workers are pinned round-robin to CPUs
  // (worker i runs on CPU i % cpus). `body` is the worker's entire life: when
  // it returns, the worker is done.
  void AddWorker(Process* proc, std::function<void()> body);

  // Run every worker to completion. Attaches itself as the kernel's SMP
  // plane for the duration. Blocks the calling thread (which must not be a
  // worker) until all worker bodies have returned.
  void Run();

  // --- SmpPlane ------------------------------------------------------------
  bool InWorkerContext() const override;
  void OnCharge(SimDuration total) override;
  bool OnBlock(Process& proc, SimTime deadline) override;
  void OnAttribute(ChargeCat cat, SimDuration d) override;

  int cpus() const { return static_cast<int>(cpu_free_at_.size()); }
  int workers() const { return static_cast<int>(ctxs_.size()); }
  // Per-CPU attribution ledger (valid after Run()).
  const TimeAttribution& cpu_ledger(int cpu) const { return cpu_ledgers_[cpu]; }

 private:
  enum class State { kReady, kBlocked, kDone };
  static constexpr int kMain = -1;

  struct Ctx {
    Process* proc = nullptr;
    std::function<void()> body;
    std::thread thread;
    State state = State::kReady;
    SimTime local_time = 0;          // this worker's CPU clock
    SimTime block_deadline = 0;      // valid while kBlocked
    int cpu = 0;
  };

  // Scheduler-side charge applied to `ctx`'s local clock and CPU ledger
  // (already-running workers charge through SimKernel::Charge instead).
  void ChargeLocal(Ctx& ctx, ChargeCat cat, SimDuration d);

  // Move kBlocked workers whose wake flag is set / deadline passed / kernel
  // stopped to kReady at the current global time.
  void PromoteWoken();
  // Earliest moment a ctx could next occupy its CPU.
  SimTime RunnableAt(const Ctx& ctx) const {
    return ctx.local_time > cpu_free_at_[ctx.cpu] ? ctx.local_time
                                                  : cpu_free_at_[ctx.cpu];
  }
  SimTime MinBlockedDeadline() const;
  bool AnyBlockedWoken() const;
  // Pick the next worker and hand the baton over (or return immediately if
  // the caller keeps it). `cur` is the yielding context (kMain for Run()).
  void Reschedule(int cur);
  // Baton handoff: wake `next`'s thread, sleep until `cur` is granted again.
  void HandOff(int cur, int next);
  void WorkerMain(int index);

  SimKernel* kernel_;
  uint64_t seed_;
  uint64_t rr_cursor_;
  std::vector<std::unique_ptr<Ctx>> ctxs_;
  std::vector<SimTime> cpu_free_at_;
  std::vector<int> cpu_last_worker_;  // -1 = none yet
  std::vector<TimeAttribution> cpu_ledgers_;
  bool running_ = false;

  std::mutex mu_;
  std::condition_variable cv_;
  int active_ = kMain;  // which context may execute right now
};

}  // namespace scio

#endif  // SRC_SMP_SMP_SCHEDULER_H_
