// RACK-style stack: NewReno's cwnd dynamics with time-based loss detection
// (RFC 8985) instead of dupack counting. The plane's scoreboard marks a
// segment lost once something sent *after* it has been delivered for a full
// reorder window (srtt/4), and arms a tail-loss probe at 2*srtt so losses at
// the end of a flight — invisible to dupack counting — are discovered in a
// couple of RTTs instead of a full RTO. Patterned on FreeBSD
// tcp_stacks/rack.c.

#ifndef SRC_TRANSPORT_RACK_H_
#define SRC_TRANSPORT_RACK_H_

#include "src/transport/reno.h"

namespace scio {

class RackCc : public RenoCc {
 public:
  CcKind kind() const override { return CcKind::kRack; }
  const char* name() const override { return "rack"; }
  bool TimeBasedRecovery() const override { return true; }
};

}  // namespace scio

#endif  // SRC_TRANSPORT_RACK_H_
