#include "src/transport/transport_plane.h"

#include <algorithm>
#include <cassert>

#include "src/net/filter_chain.h"
#include "src/net/socket.h"

namespace scio {

namespace {

// Serial-number arithmetic (RFC 1982): the 4 GB sequence space wraps, so
// ordering is defined by the sign of the 32-bit difference.
inline bool SeqLt(uint32_t a, uint32_t b) {
  return static_cast<int32_t>(a - b) < 0;
}
inline bool SeqLe(uint32_t a, uint32_t b) {
  return static_cast<int32_t>(a - b) <= 0;
}
inline bool SeqGt(uint32_t a, uint32_t b) {
  return static_cast<int32_t>(a - b) > 0;
}
inline bool SeqGe(uint32_t a, uint32_t b) {
  return static_cast<int32_t>(a - b) >= 0;
}

}  // namespace

std::vector<std::pair<std::string, uint64_t>> TransportStats::ToRows() const {
  return {
      {"tp_blocks_attached", blocks_attached},
      {"tp_blocks_released", blocks_released},
      {"tp_attach_failed", attach_failed},
      {"tp_hot_activations", hot_activations},
      {"tp_hot_releases", hot_releases},
      {"tp_segments_sent", segments_sent},
      {"tp_segments_retransmitted", segments_retransmitted},
      {"tp_segments_dropped", segments_dropped},
      {"tp_segments_dropped_filter", segments_dropped_filter},
      {"tp_segments_stale", segments_stale},
      {"tp_dup_segments", dup_segments},
      {"tp_ooo_buffered", ooo_buffered},
      {"tp_acks_sent", acks_sent},
      {"tp_acks_received", acks_received},
      {"tp_rtt_samples", rtt_samples},
      {"tp_fast_retransmit_entries", fast_retransmit_entries},
      {"tp_rack_marked_lost", rack_marked_lost},
      {"tp_tlp_probes", tlp_probes},
      {"tp_rto_fires", rto_fires},
      {"tp_send_blocked_no_slab", send_blocked_no_slab},
      {"tp_fins_sent", fins_sent},
      {"tp_orphans_abandoned", orphans_abandoned},
  };
}

std::string TransportStats::Signature() const {
  std::string sig;
  for (const auto& [name, value] : ToRows()) {
    sig += name;
    sig += '=';
    sig += std::to_string(value);
    sig += ';';
  }
  return sig;
}

TransportPlane::TransportPlane(SimKernel* kernel, NetStack* net,
                               TransportConfig config)
    : kernel_(kernel), net_(net), config_(config), rng_(config.seed) {
  for (Side* s : {&srv_, &cli_}) {
    s->conns.set_limit(config_.max_connections);
    s->hot.set_limit(config_.max_connections);
    s->segs.set_limit(config_.max_segments);
  }
  // Only the server machine's memory is on the ledger; the client mirror is
  // out of scope, exactly as client CPU is never charged.
  srv_.conns.set_mem_ledger(&kernel_->mem(), MemSys::kTransport);
  srv_.hot.set_mem_ledger(&kernel_->mem(), MemSys::kTransport);
  srv_.segs.set_mem_ledger(&kernel_->mem(), MemSys::kTransport);
  net_->set_transport(this);
}

TransportPlane::~TransportPlane() {
  for (Side* s : {&srv_, &cli_}) {
    s->hot.ForEach([](size_t, TcpHot& h) {
      h.rto_timer.Cancel();
      h.loss_timer.Cancel();
      h.pace_timer.Cancel();
    });
    // Detach every still-wired socket so its destructor does not call back
    // into a dead plane. Sockets can outlive the plane (shared_ptrs held by
    // fd tables die with the kernel, declared before the plane in benches).
    s->conns.ForEach([s](size_t i, TcpConn&) {
      if (SimSocket* sock = s->socks[i]; sock != nullptr) {
        sock->WireTransport(nullptr, -1);
      }
    });
  }
  if (net_->transport() == this) {
    net_->set_transport(nullptr);
  }
  kernel_->mem().Sub(MemSys::kTransport, srv_sidecar_ledgered_);
  srv_sidecar_ledgered_ = 0;
}

size_t TransportPlane::tracked_bytes() const {
  return srv_.conns.tracked_bytes() + srv_.hot.tracked_bytes() +
         srv_.segs.tracked_bytes() + srv_sidecar_ledgered_;
}

void TransportPlane::GrowSidecar(bool server, size_t need) {
  Side& s = side(server);
  if (s.socks.size() < need) {
    s.socks.resize(need, nullptr);
  }
  if (server) {
    const size_t bytes = s.socks.capacity() * sizeof(SimSocket*);
    if (bytes > srv_sidecar_ledgered_) {
      kernel_->mem().Add(MemSys::kTransport, bytes - srv_sidecar_ledgered_);
      srv_sidecar_ledgered_ = bytes;
    }
  }
}

void TransportPlane::Attach(SimSocket* sock) {
  Side& s = side(sock->server_side());
  const long idx = s.conns.AllocateLowest();
  if (idx < 0) {
    // Cold slab full: the socket simply runs the legacy reliable-pipe path.
    ++stats_.attach_failed;
    return;
  }
  TcpConn& c = s.conns.At(idx);
  c = TcpConn{};
  c.set_cc_kind(config_.default_cc);
  GrowSidecar(sock->server_side(), static_cast<size_t>(idx) + 1);
  s.socks[idx] = sock;
  sock->WireTransport(this, static_cast<int32_t>(idx));
  ++stats_.blocks_attached;
}

void TransportPlane::SetCcKind(SimSocket* sock, CcKind kind) {
  if (sock == nullptr || sock->transport() != this) {
    return;
  }
  Side& s = side(sock->server_side());
  const int32_t ci = sock->transport_index();
  if (ci < 0 || !s.conns.Contains(ci)) {
    return;
  }
  s.conns.At(ci).set_cc_kind(kind);
}

TcpHot& TransportPlane::EnsureHot(Side& s, TcpConn& c) {
  if (c.hot != kNilIndex) {
    return s.hot.At(c.hot);
  }
  const long hi = s.hot.AllocateLowest();
  // Hot blocks only exist for live cold blocks and both slabs share a limit,
  // so allocation cannot fail here.
  assert(hi >= 0 && "hot slab exhausted with cold blocks live");
  TcpHot& h = s.hot.At(hi);
  // AllocateLowest parks objects without resetting them: clear every field,
  // keeping container capacity (deque / map nodes) for reuse.
  h.rto_timer.Cancel();
  h.loss_timer.Cancel();
  h.pace_timer.Cancel();
  h.peer_idx = kNilIndex;
  h.peer_gen = 0;
  h.peer_server = false;
  h.peer_known = false;
  h.rtx_head = h.rtx_tail = kNilIndex;
  h.rtx_count = 0;
  h.sacked_bytes = 0;
  h.lost_bytes = 0;
  h.dupacks = 0;
  h.recover_seq = 0;
  h.cwnd_acc = 0;
  h.in_recovery = false;
  h.tlp_out = false;
  h.backlog.clear();
  h.backlog_bytes = 0;
  h.delivered = 0;
  h.delivered_time = 0;
  h.next_round_delivered = 0;
  h.round_count = 0;
  h.btlbw_round = 0;
  h.btlbw_Bps = 0;
  h.full_bw = 0;
  h.full_bw_cnt = 0;
  h.bbr_mode = 0;
  h.cycle_idx = 0;
  h.min_rtt_us = 0;
  h.min_rtt_stamp = 0;
  h.cycle_stamp = 0;
  h.pace_next = 0;
  h.pace_armed = false;
  h.rack_mstamp = 0;
  h.loss_armed = false;
  h.tlp_armed = false;
  h.rto_armed = false;
  h.ooo.clear();
  h.ooo_bytes = 0;
  h.fin_rcvd = false;
  h.fin_seq = 0;
  c.hot = static_cast<int32_t>(hi);
  ++stats_.hot_activations;
  return h;
}

bool TransportPlane::ResolvePeer(TcpHot& h, SimSocket* sock) {
  if (h.peer_known) {
    return true;
  }
  if (sock == nullptr) {
    return false;
  }
  std::shared_ptr<SimSocket> p = sock->peer();
  if (p == nullptr || p->transport() != this || p->transport_index() < 0) {
    return false;
  }
  h.peer_server = p->server_side();
  h.peer_idx = p->transport_index();
  h.peer_gen = side(h.peer_server).conns.generation(h.peer_idx);
  h.peer_known = true;
  return true;
}

void TransportPlane::Send(SimSocket* sock, Chunk chunk) {
  const bool server = sock->server_side();
  Side& s = side(server);
  const int32_t ci = sock->transport_index();
  if (ci < 0 || !s.conns.Contains(ci)) {
    return;
  }
  TcpConn& c = s.conns.At(ci);
  TcpHot& h = EnsureHot(s, c);
  h.backlog_bytes += chunk.size();
  h.backlog.push_back(std::move(chunk));
  Pump(server, ci);
}

void TransportPlane::CarveSegment(TcpHot& h, TxSeg& seg, uint32_t budget) {
  uint32_t want = std::min(budget, kTcpMss);
  seg.payload = Chunk{};
  while (want > 0 && !h.backlog.empty()) {
    Chunk& front = h.backlog.front();
    const size_t from_data = std::min<size_t>(want, front.data.size());
    if (from_data > 0 && seg.payload.synthetic > 0) {
      // Never queue real bytes behind synthetic ones inside one segment:
      // reassembly appends in segment order and Read() drains data-first, so
      // a mixed segment would reorder the byte stream.
      break;
    }
    if (from_data > 0) {
      seg.payload.data.append(front.data, 0, from_data);
      front.data.erase(0, from_data);
      want -= static_cast<uint32_t>(from_data);
    }
    const size_t from_synth = std::min<size_t>(want, front.synthetic);
    front.synthetic -= from_synth;
    seg.payload.synthetic += from_synth;
    want -= static_cast<uint32_t>(from_synth);
    if (front.size() == 0) {
      h.backlog.pop_front();
    }
  }
  seg.len = static_cast<uint32_t>(seg.payload.size());
  h.backlog_bytes -= seg.len;
}

// sciolint: hotpath
void TransportPlane::Pump(bool server, int32_t ci) {
  Side& s = side(server);
  if (!s.conns.Contains(ci)) {
    return;
  }
  TcpConn& c = s.conns.At(ci);
  if (c.hot == kNilIndex) {
    return;
  }
  TcpHot& h = s.hot.At(c.hot);
  if (!ResolvePeer(h, s.socks[ci])) {
    return;
  }
  CongestionControl* cc = GetCongestionControl(c.cc_kind());
  const uint32_t cwnd_bytes = static_cast<uint32_t>(c.cwnd_mss) * kTcpMss;

  // Phase 1: repair. Segments the scoreboard marked lost go out first; the
  // head of line may always be retransmitted even with the window full, or a
  // zero-window recovery would deadlock.
  for (int32_t si = h.rtx_head; si != kNilIndex;) {
    TxSeg& seg = s.segs.At(si);
    const int32_t next = seg.next;
    if (seg.lost && !seg.sacked) {
      if (Pipe(c, h) + kTcpMss > cwnd_bytes && seg.seq != c.snd_una) {
        break;
      }
      RetransmitSeg(server, ci, c, h, si);
    }
    si = next;
  }

  // Phase 2: new data, window- and pacing-clocked.
  const double pace = cc->PacingBytesPerSec(c, h);
  while (h.backlog_bytes > 0) {
    if (Pipe(c, h) >= cwnd_bytes) {
      break;
    }
    if (pace > 0 && kernel_->now() < h.pace_next) {
      ArmPace(server, ci, h, h.pace_next);
      break;
    }
    const long si = s.segs.AllocateLowest();
    if (si < 0) {
      ++stats_.send_blocked_no_slab;
      if (h.rtx_count == 0) {
        // Nothing in flight to ACK-clock a retry: poll the slab on a short
        // timer instead of wedging the connection.
        ArmPace(server, ci, h, kernel_->now() + Millis(1));
      }
      break;
    }
    TxSeg& seg = s.segs.At(si);
    seg.seq = c.snd_nxt;
    seg.prev = h.rtx_tail;
    seg.next = kNilIndex;
    seg.retx = 0;
    seg.sacked = false;
    seg.lost = false;
    seg.app_limited = false;
    CarveSegment(h, seg, kTcpMss);
    seg.app_limited = h.backlog_bytes == 0;
    if (h.rtx_tail != kNilIndex) {
      s.segs.At(h.rtx_tail).next = static_cast<int32_t>(si);
    }
    h.rtx_tail = static_cast<int32_t>(si);
    if (h.rtx_head == kNilIndex) {
      h.rtx_head = static_cast<int32_t>(si);
    }
    ++h.rtx_count;
    c.snd_nxt += seg.len;
    TransmitSeg(server, ci, c, h, static_cast<int32_t>(si));
    if (pace > 0) {
      h.pace_next = std::max(kernel_->now(), h.pace_next) +
                    static_cast<SimDuration>(static_cast<double>(seg.len) /
                                             pace * 1e9);
    }
  }

  ArmRto(server, ci, c, h);
  if (cc->TimeBasedRecovery()) {
    ArmTlp(server, ci, c, h);
  }
  MaybeQuiesce(server, ci);
}

void TransportPlane::TransmitSeg(bool server, int32_t ci, TcpConn& /*c*/,
                                 TcpHot& h, int32_t si) {
  Side& s = side(server);
  TxSeg& seg = s.segs.At(si);
  const SimTime now = kernel_->now();
  seg.tx_time = now;
  seg.delivered_at_tx = h.delivered;
  seg.delivered_time_at_tx = h.delivered_time != 0 ? h.delivered_time : now;
  if (seg.retx == 0) {
    seg.first_tx = now;
    ++stats_.segments_sent;
    if (server) {
      kernel_->ChargeDebt(kernel_->cost().tcp_segment_cost,
                          ChargeCat::kTcpSegment);
    }
  }
  // Draw jitter before any drop decision so the jitter stream — and with it
  // every surviving segment's arrival time — does not depend on where losses
  // land.
  SimDuration jitter = 0;
  if (config_.delivery_jitter > 0) {
    jitter = rng_.UniformInt(0, config_.delivery_jitter);
  }
  if (loss_hook_ && loss_hook_(server, seg.seq, seg.retx)) {
    ++stats_.segments_dropped;
    return;
  }
  const bool ps = h.peer_server;
  const int32_t pi = h.peer_idx;
  const uint32_t pg = h.peer_gen;
  const uint32_t sgen = s.conns.generation(ci);
  const uint32_t seq = seg.seq;
  Chunk payload = seg.payload;  // copy: the original stays queued for repair
  const bool ok = net_->LinkFor(ps).TransmitSegment(
      seg.len + kTcpHeaderBytes, jitter,
      [this, ps, pi, pg, server, ci, sgen, seq,
       payload = std::move(payload)]() mutable {
        OnDataSegment(ps, pi, pg, server, ci, sgen, seq, std::move(payload));
      });
  if (!ok) {
    ++stats_.segments_dropped;  // the fault plane ate the frame
  }
}

void TransportPlane::RetransmitSeg(bool server, int32_t ci, TcpConn& c,
                                   TcpHot& h, int32_t si) {
  Side& s = side(server);
  TxSeg& seg = s.segs.At(si);
  seg.lost = false;
  h.lost_bytes -= seg.len;
  ++seg.retx;
  ++stats_.segments_retransmitted;
  if (server) {
    kernel_->ChargeDebt(kernel_->cost().tcp_segment_cost +
                            kernel_->cost().tcp_retransmit_extra,
                        ChargeCat::kTcpRetransmit);
  }
  TransmitSeg(server, ci, c, h, si);
}

void TransportPlane::OnDataSegment(bool rcv_server, int32_t ri, uint32_t rgen,
                                   bool snd_server, int32_t si, uint32_t sgen,
                                   uint32_t seq, Chunk chunk) {
  Side& r = side(rcv_server);
  if (!r.conns.Contains(ri) || r.conns.generation(ri) != rgen ||
      r.socks[ri] == nullptr) {
    ++stats_.segments_stale;
    return;
  }
  SimSocket* rsock = r.socks[ri];
  if (rcv_server) {
    // Interrupt parity with the legacy DeliverChunk path: every arriving
    // data segment costs an interrupt, then traverses the ingress filter.
    ++kernel_->stats().packets_delivered;
    ++kernel_->stats().interrupts;
    kernel_->ChargeDebt(kernel_->cost().interrupt_per_packet,
                        ChargeCat::kInterrupt);
    IngressFilterChain* filter = net_->filter();
    if (filter != nullptr &&
        filter->EvalPacket(rsock->remote_port()) == FilterVerdict::kDrop) {
      // No payload, no ACK: the sender retransmits into the filter until its
      // orphan/RTO bounds give up — dropped means dropped.
      ++stats_.segments_dropped_filter;
      return;
    }
  }
  TcpConn& rc = r.conns.At(ri);
  const uint32_t len = static_cast<uint32_t>(chunk.size());
  // Highest cumulative ACK this arrival justifies, tracked outside the block
  // so the ACK survives the delivery callback tearing the receiver down.
  uint32_t ack_seq = rc.rcv_nxt;
  if (SeqLe(seq + len, rc.rcv_nxt)) {
    ++stats_.dup_segments;  // spurious retransmission; re-ACK below
  } else if (seq == rc.rcv_nxt) {
    rc.rcv_nxt += len;
    ack_seq = rc.rcv_nxt;
    rsock->AcceptTransportBytes(std::move(chunk));
    // on_data may have closed or released anything: re-validate every lap,
    // then drain whatever out-of-order run became contiguous.
    while (r.conns.Contains(ri) && r.conns.generation(ri) == rgen) {
      TcpConn& rc2 = r.conns.At(ri);
      if (rc2.hot == kNilIndex) {
        break;
      }
      TcpHot& rh = r.hot.At(rc2.hot);
      auto it = rh.ooo.begin();
      if (it == rh.ooo.end() || SeqGt(it->first, rc2.rcv_nxt)) {
        // A parked FIN becomes deliverable once the stream reaches it.
        if (rh.fin_rcvd && SeqGe(rc2.rcv_nxt, rh.fin_seq)) {
          rh.fin_rcvd = false;
          if (SimSocket* sk = r.socks[ri]; sk != nullptr) {
            sk->DeliverEof();
          }
        }
        break;
      }
      const uint32_t nseq = it->first;
      Chunk next = std::move(it->second);
      const uint32_t nlen = static_cast<uint32_t>(next.size());
      rh.ooo.erase(it);
      rh.ooo_bytes -= nlen;
      if (SeqLe(nseq + nlen, rc2.rcv_nxt)) {
        ++stats_.dup_segments;  // duplicate that was parked out of order
        continue;
      }
      rc2.rcv_nxt = nseq + nlen;
      ack_seq = rc2.rcv_nxt;
      if (SimSocket* sk = r.socks[ri]; sk != nullptr) {
        sk->AcceptTransportBytes(std::move(next));
      }
    }
  } else {
    // Hole ahead of us: park the segment for SACK + later reassembly.
    TcpHot& rh = EnsureHot(r, rc);
    auto [it, inserted] = rh.ooo.try_emplace(seq, std::move(chunk));
    (void)it;
    if (inserted) {
      rh.ooo_bytes += len;
      ++stats_.ooo_buffered;
    } else {
      ++stats_.dup_segments;
    }
  }
  // Delivery callbacks may have torn the block down (an HTTP client that
  // received its content-length worth closes on the spot); re-validate, then
  // ACK. TCP acks received data regardless of what the application does with
  // it, so a dead receiver still sends the final cumulative ACK — without it
  // the sender can never drain, never FINs, and RTOs an orphan until the
  // backoff limit.
  if (r.conns.Contains(ri) && r.conns.generation(ri) == rgen) {
    SendAck(rcv_server, r.conns.At(ri), snd_server, si, sgen);
    MaybeQuiesce(rcv_server, ri);
    return;
  }
  if (rcv_server) {
    kernel_->ChargeDebt(kernel_->cost().tcp_ack_generate, ChargeCat::kTcpAck);
  }
  ++stats_.acks_sent;
  net_->LinkFor(snd_server)
      .Transmit(kTcpHeaderBytes, [this, snd_server, si, sgen, ack_seq]() {
        OnAckPacket(snd_server, si, sgen, ack_seq, {}, {}, 0);
      });
}

void TransportPlane::SendAck(bool rcv_server, TcpConn& rc, bool snd_server,
                             int32_t si, uint32_t sgen) {
  if (rcv_server) {
    kernel_->ChargeDebt(kernel_->cost().tcp_ack_generate, ChargeCat::kTcpAck);
  }
  ++stats_.acks_sent;
  std::array<uint32_t, 3> start{};
  std::array<uint32_t, 3> end{};
  uint8_t n = 0;
  if (rc.hot != kNilIndex) {
    // Up to three SACK ranges, merged while contiguous (the map is seq
    // ordered). The extension check runs before the capacity check so a run
    // touching the third range still grows it.
    const TcpHot& rh = side(rcv_server).hot.At(rc.hot);
    for (const auto& [seq, chunk] : rh.ooo) {
      const uint32_t len = static_cast<uint32_t>(chunk.size());
      if (n > 0 && seq == end[n - 1]) {
        end[n - 1] = seq + len;
        continue;
      }
      if (n == 3) {
        break;
      }
      start[n] = seq;
      end[n] = seq + len;
      ++n;
    }
  }
  const uint32_t ack = rc.rcv_nxt;
  net_->LinkFor(snd_server)
      .Transmit(kTcpHeaderBytes, [this, snd_server, si, sgen, ack, start, end,
                                  n]() {
        OnAckPacket(snd_server, si, sgen, ack, start, end, n);
      });
}

// sciolint: hotpath
void TransportPlane::OnAckPacket(bool server, int32_t ci, uint32_t gen,
                                 uint32_t ack,
                                 std::array<uint32_t, 3> sack_start,
                                 std::array<uint32_t, 3> sack_end,
                                 uint8_t sack_count) {
  Side& s = side(server);
  if (!s.conns.Contains(ci) || s.conns.generation(ci) != gen) {
    ++stats_.segments_stale;
    return;
  }
  ++stats_.acks_received;
  if (server) {
    kernel_->ChargeDebt(kernel_->cost().tcp_ack_process, ChargeCat::kTcpAck);
  }
  TcpConn& c = s.conns.At(ci);
  if (c.hot == kNilIndex) {
    return;  // pure re-ACK after the connection quiesced
  }
  TcpHot& h = s.hot.At(c.hot);
  const SimTime now = kernel_->now();
  const uint32_t newly_acked = SeqGt(ack, c.snd_una) ? ack - c.snd_una : 0;
  uint32_t newly_sacked = 0;
  uint32_t rtt_sample_us = 0;
  double rate_Bps = 0;
  bool rate_app_limited = false;
  bool round_start = false;

  // BBR-style delivery-rate sample from one delivered segment: bytes
  // delivered since it left over the time that took. Called after
  // h.delivered includes the segment itself; the last sample of this ACK
  // wins (the stack's max filter smooths across ACKs).
  auto sample_rate = [&](const TxSeg& seg) {
    if (seg.delivered_at_tx >= h.next_round_delivered) {
      round_start = true;
    }
    const SimDuration el = now - seg.delivered_time_at_tx;
    if (el > 0) {
      rate_Bps = static_cast<double>(h.delivered - seg.delivered_at_tx) *
                 1e9 / static_cast<double>(el);
      rate_app_limited = seg.app_limited;
    }
  };

  if (newly_acked > 0) {
    while (h.rtx_head != kNilIndex) {
      const int32_t head = h.rtx_head;
      TxSeg& seg = s.segs.At(head);
      if (!SeqLe(seg.seq + seg.len, ack)) {
        break;
      }
      if (seg.sacked) {
        h.sacked_bytes -= seg.len;  // already counted delivered at SACK time
      } else {
        h.delivered += seg.len;
      }
      if (seg.lost) {
        h.lost_bytes -= seg.len;
      }
      if (seg.retx == 0) {
        // Karn's rule: only never-retransmitted segments time the path.
        rtt_sample_us = static_cast<uint32_t>(
            std::max<SimDuration>(now - seg.first_tx, Micros(1)) / 1000);
      }
      h.rack_mstamp = std::max(h.rack_mstamp, seg.tx_time);
      sample_rate(seg);
      seg.payload = Chunk{};  // free the heap now, not at slot reuse
      const int32_t next = seg.next;
      if (next != kNilIndex) {
        s.segs.At(next).prev = kNilIndex;
      } else {
        h.rtx_tail = kNilIndex;
      }
      h.rtx_head = next;
      s.segs.ReleaseAt(head);
      --h.rtx_count;
    }
    c.snd_una = ack;
    c.rto_backoff = 0;
    h.delivered_time = now;
  }

  for (uint8_t k = 0; k < sack_count; ++k) {
    const uint32_t sb = sack_start[k];
    const uint32_t se = sack_end[k];
    for (int32_t si = h.rtx_head; si != kNilIndex;) {
      TxSeg& seg = s.segs.At(si);
      const int32_t next = seg.next;
      if (SeqGe(seg.seq, se)) {
        break;
      }
      if (!seg.sacked && SeqGe(seg.seq, sb) &&
          SeqLe(seg.seq + seg.len, se)) {
        seg.sacked = true;
        h.sacked_bytes += seg.len;
        h.delivered += seg.len;
        newly_sacked += seg.len;
        if (seg.lost) {
          seg.lost = false;
          h.lost_bytes -= seg.len;
        }
        h.rack_mstamp = std::max(h.rack_mstamp, seg.tx_time);
        sample_rate(seg);
      }
      si = next;
    }
  }
  if (newly_sacked > 0) {
    h.delivered_time = now;
  }

  if (newly_acked > 0) {
    h.dupacks = 0;
    h.tlp_out = false;
  } else if (c.snd_nxt != c.snd_una) {
    ++h.dupacks;
  }
  if (newly_sacked > 0) {
    h.tlp_out = false;  // the probe drew a SACK; the tail is alive
  }
  if (rtt_sample_us > 0) {
    UpdateRtt(c, rtt_sample_us);
    ++stats_.rtt_samples;
  }
  if (round_start) {
    h.next_round_delivered = h.delivered;
  }

  CongestionControl* cc = GetCongestionControl(c.cc_kind());
  if (cc->TimeBasedRecovery()) {
    RackDetect(server, ci, c, h);
  } else if (!h.in_recovery && h.dupacks >= 3) {
    // Classic fast retransmit: the first unsacked segment is the hole.
    for (int32_t si = h.rtx_head; si != kNilIndex; si = s.segs.At(si).next) {
      TxSeg& seg = s.segs.At(si);
      if (!seg.sacked && !seg.lost) {
        MarkLost(h, seg);
        break;
      }
    }
    EnterRecovery(c, h);
  } else if (!cc->TimeBasedRecovery() && h.in_recovery && newly_acked > 0 &&
             SeqLt(c.snd_una, h.recover_seq)) {
    // NewReno partial ACK: the next hole is lost too; repair it without
    // leaving recovery.
    for (int32_t si = h.rtx_head; si != kNilIndex; si = s.segs.At(si).next) {
      TxSeg& seg = s.segs.At(si);
      if (!seg.sacked && !seg.lost) {
        MarkLost(h, seg);
        break;
      }
    }
  }
  if (h.in_recovery && SeqGe(c.snd_una, h.recover_seq)) {
    h.in_recovery = false;
    cc->OnExitRecovery(c, h);
  }

  CcAck a;
  a.now = now;
  a.newly_acked = newly_acked;
  a.newly_sacked = newly_sacked;
  a.pipe = Pipe(c, h);
  a.rtt_sample_us = rtt_sample_us;
  a.delivery_rate_Bps = rate_Bps;
  a.app_limited = rate_app_limited;
  a.round_start = round_start;
  cc->OnAck(c, h, a);

  if (SimSocket* sock = s.socks[ci]; sock != nullptr && newly_acked > 0) {
    sock->TransportAcked(newly_acked);
  }
  // TransportAcked fires kPollOut readiness, which can re-enter the plane
  // with more writes (or a close); re-validate before the FIN check.
  if (!s.conns.Contains(ci) || s.conns.generation(ci) != gen) {
    return;
  }
  TcpConn& c2 = s.conns.At(ci);
  if (c2.flag(kTpFinPending) && !c2.flag(kTpFinSent) &&
      c2.snd_una == c2.snd_nxt &&
      (c2.hot == kNilIndex || (s.hot.At(c2.hot).backlog_bytes == 0 &&
                               s.hot.At(c2.hot).rtx_count == 0))) {
    if (FinishClose(server, ci)) {
      return;
    }
  }
  Pump(server, ci);
}

void TransportPlane::EnterRecovery(TcpConn& c, TcpHot& h) {
  h.in_recovery = true;
  h.recover_seq = c.snd_nxt;
  ++stats_.fast_retransmit_entries;
  GetCongestionControl(c.cc_kind())->OnEnterRecovery(c, h);
}

void TransportPlane::MarkLost(TcpHot& h, TxSeg& seg) {
  if (seg.lost || seg.sacked) {
    return;
  }
  seg.lost = true;
  h.lost_bytes += seg.len;
}

void TransportPlane::RackDetect(bool server, int32_t ci, TcpConn& c,
                                TcpHot& h) {
  if (h.rack_mstamp == 0) {
    return;  // nothing delivered yet; nothing can be time-ordered lost
  }
  Side& s = side(server);
  const SimTime now = kernel_->now();
  const SimDuration reo_wnd =
      std::max<SimDuration>(Micros(c.srtt_us / 4), Millis(1));
  bool newly_lost = false;
  SimDuration min_wait = 0;
  for (int32_t si = h.rtx_head; si != kNilIndex; si = s.segs.At(si).next) {
    TxSeg& seg = s.segs.At(si);
    if (seg.sacked || seg.lost || seg.tx_time >= h.rack_mstamp) {
      continue;  // delivered, already marked, or sent after the newest ACK
    }
    const SimDuration waited = now - seg.tx_time;
    if (waited >= reo_wnd) {
      MarkLost(h, seg);
      ++stats_.rack_marked_lost;
      newly_lost = true;
    } else {
      const SimDuration remain = reo_wnd - waited;
      if (min_wait == 0 || remain < min_wait) {
        min_wait = remain;
      }
    }
  }
  if (newly_lost && !h.in_recovery) {
    EnterRecovery(c, h);
  }
  if (min_wait > 0) {
    ArmLossRecheck(server, ci, h, min_wait);
  }
}

SimDuration TransportPlane::CurrentRto(const TcpConn& c) const {
  if (c.srtt_us == 0) {
    return std::max<SimDuration>(Seconds(1), config_.min_rto);
  }
  const SimDuration rto =
      Micros(c.srtt_us) + std::max<SimDuration>(4 * Micros(c.rttvar_us),
                                                Millis(1));
  return std::clamp(rto, config_.min_rto, config_.max_rto);
}

void TransportPlane::ArmRto(bool server, int32_t ci, TcpConn& c, TcpHot& h) {
  h.rto_timer.Cancel();
  h.rto_armed = false;
  if (h.rtx_count == 0) {
    return;
  }
  SimDuration rto = CurrentRto(c);
  for (uint8_t i = 0; i < c.rto_backoff && rto < config_.max_rto; ++i) {
    rto *= 2;
  }
  rto = std::min(rto, config_.max_rto);
  const uint32_t gen = side(server).conns.generation(ci);
  h.rto_timer =
      kernel_->sim().ScheduleAfter(rto, [this, server, ci, gen]() {
        OnRtoTimer(server, ci, gen);
      });
  h.rto_armed = true;
}

void TransportPlane::ArmTlp(bool server, int32_t ci, TcpConn& c, TcpHot& h) {
  // A RACK reorder recheck owns the timer; a pending TLP restarts below (the
  // probe timeout is measured from the most recent send or ACK, RFC 8985 §7).
  if ((h.loss_armed && !h.tlp_armed) || h.tlp_out || h.in_recovery ||
      h.rtx_count == 0) {
    return;
  }
  SimDuration delay =
      c.srtt_us > 0
          ? std::max<SimDuration>(2 * Micros(c.srtt_us), config_.min_tlp)
          : 2 * config_.min_rto;
  // The probe is only useful if it beats the retransmission timer (RFC 8985
  // §7.2; Linux substitutes the PTO for the RTO timer outright). At RTTs
  // near half the RTO floor 2*srtt ties with the RTO and the tie goes to
  // whichever timer armed first — undercut the RTO by one probe floor.
  delay = std::max<SimDuration>(std::min(delay, CurrentRto(c) - config_.min_tlp),
                                config_.min_tlp);
  const uint32_t gen = side(server).conns.generation(ci);
  h.loss_timer.Cancel();
  h.loss_timer =
      kernel_->sim().ScheduleAfter(delay, [this, server, ci, gen]() {
        OnLossTimer(server, ci, gen, /*tlp=*/true);
      });
  h.loss_armed = true;
  h.tlp_armed = true;
}

void TransportPlane::ArmLossRecheck(bool server, int32_t ci, TcpHot& h,
                                    SimDuration delay) {
  const uint32_t gen = side(server).conns.generation(ci);
  h.loss_timer.Cancel();
  h.loss_timer =
      kernel_->sim().ScheduleAfter(delay, [this, server, ci, gen]() {
        OnLossTimer(server, ci, gen, /*tlp=*/false);
      });
  h.loss_armed = true;
  h.tlp_armed = false;
}

void TransportPlane::ArmPace(bool server, int32_t ci, TcpHot& h, SimTime at) {
  if (h.pace_armed) {
    return;
  }
  const uint32_t gen = side(server).conns.generation(ci);
  const SimTime when = std::max(at, kernel_->now());
  h.pace_timer = kernel_->sim().ScheduleAt(when, [this, server, ci, gen]() {
    OnPaceTimer(server, ci, gen);
  });
  h.pace_armed = true;
}

void TransportPlane::OnRtoTimer(bool server, int32_t ci, uint32_t gen) {
  Side& s = side(server);
  if (!s.conns.Contains(ci) || s.conns.generation(ci) != gen) {
    return;
  }
  TcpConn& c = s.conns.At(ci);
  if (c.hot == kNilIndex) {
    return;
  }
  TcpHot& h = s.hot.At(c.hot);
  h.rto_armed = false;
  if (h.rtx_count == 0) {
    return;
  }
  ++stats_.rto_fires;
  if (c.rto_backoff < 12) {
    ++c.rto_backoff;  // exponential backoff, capped at min_rto << 12
  }
  if (s.socks[ci] == nullptr &&
      c.rto_backoff > static_cast<uint8_t>(config_.orphan_rto_limit)) {
    // An orphan (socket destroyed, data never acked) gives up: the peer is
    // not coming back, and the slab slots must not leak.
    ++stats_.orphans_abandoned;
    ReleaseConn(server, ci, nullptr);
    return;
  }
  GetCongestionControl(c.cc_kind())->OnRto(c, h);
  h.in_recovery = true;
  h.recover_seq = c.snd_nxt;
  h.dupacks = 0;
  h.tlp_out = false;
  for (int32_t si = h.rtx_head; si != kNilIndex; si = s.segs.At(si).next) {
    MarkLost(h, s.segs.At(si));  // skips sacked segments
  }
  Pump(server, ci);
}

void TransportPlane::OnLossTimer(bool server, int32_t ci, uint32_t gen,
                                 bool tlp) {
  Side& s = side(server);
  if (!s.conns.Contains(ci) || s.conns.generation(ci) != gen) {
    return;
  }
  TcpConn& c = s.conns.At(ci);
  if (c.hot == kNilIndex) {
    return;
  }
  TcpHot& h = s.hot.At(c.hot);
  h.loss_armed = false;
  h.tlp_armed = false;
  if (tlp) {
    if (h.tlp_out || h.in_recovery || h.rtx_count == 0) {
      return;
    }
    // Tail-loss probe: resend the newest unsacked segment to draw an ACK or
    // SACK out of the peer, converting an invisible tail loss into a RACK
    // detection two RTTs later instead of a full RTO.
    int32_t si = h.rtx_tail;
    while (si != kNilIndex && s.segs.At(si).sacked) {
      si = s.segs.At(si).prev;
    }
    if (si == kNilIndex) {
      return;
    }
    TxSeg& seg = s.segs.At(si);
    ++seg.retx;
    ++stats_.tlp_probes;
    ++stats_.segments_retransmitted;
    if (server) {
      kernel_->ChargeDebt(kernel_->cost().tcp_segment_cost +
                              kernel_->cost().tcp_retransmit_extra,
                          ChargeCat::kTcpRetransmit);
    }
    h.tlp_out = true;
    TransmitSeg(server, ci, c, h, si);
    ArmRto(server, ci, c, h);
    return;
  }
  RackDetect(server, ci, c, h);
  Pump(server, ci);
}

void TransportPlane::OnPaceTimer(bool server, int32_t ci, uint32_t gen) {
  Side& s = side(server);
  if (!s.conns.Contains(ci) || s.conns.generation(ci) != gen) {
    return;
  }
  TcpConn& c = s.conns.At(ci);
  if (c.hot == kNilIndex) {
    return;
  }
  s.hot.At(c.hot).pace_armed = false;
  if (server) {
    kernel_->ChargeDebt(kernel_->cost().tcp_pacing_release,
                        ChargeCat::kTcpPacing);
  }
  Pump(server, ci);
}

void TransportPlane::UpdateRtt(TcpConn& c, uint32_t sample_us) {
  if (c.srtt_us == 0) {
    c.srtt_us = sample_us;
    c.rttvar_us =
        static_cast<uint16_t>(std::min<uint32_t>(sample_us / 2, 0xffff));
    return;
  }
  const uint32_t diff = c.srtt_us > sample_us ? c.srtt_us - sample_us
                                              : sample_us - c.srtt_us;
  c.rttvar_us = static_cast<uint16_t>(
      std::min<uint32_t>((3u * c.rttvar_us + diff) / 4, 0xffff));
  c.srtt_us = (7u * c.srtt_us + sample_us) / 8;
}

void TransportPlane::SendFin(bool /*server*/, int32_t /*ci*/, TcpConn& c,
                             TcpHot& h) {
  if (c.flag(kTpFinSent) || !h.peer_known) {
    return;
  }
  c.set_flag(kTpFinSent);
  ++stats_.fins_sent;
  const uint32_t fin_seq = c.snd_nxt;
  const bool ps = h.peer_server;
  const int32_t pi = h.peer_idx;
  const uint32_t pg = h.peer_gen;
  // The FIN rides a legacy (non-droppable) control frame: teardown stays as
  // reliable as the pre-transport model so close()d connections cannot wedge
  // the load generator under loss. Sequencing still holds — the receiver
  // parks the FIN until rcv_nxt reaches fin_seq.
  net_->LinkFor(ps).Transmit(net_->config().control_packet_bytes,
                             [this, ps, pi, pg, fin_seq]() {
                               OnFinSegment(ps, pi, pg, fin_seq);
                             });
}

bool TransportPlane::FinishClose(bool server, int32_t ci) {
  Side& s = side(server);
  TcpConn& c = s.conns.At(ci);
  TcpHot& h = EnsureHot(s, c);
  SimSocket* sock = s.socks[ci];
  if (ResolvePeer(h, sock)) {
    SendFin(server, ci, c, h);
  }
  if (c.flag(kTpClosing)) {
    ReleaseConn(server, ci, sock);
    return true;
  }
  return false;
}

void TransportPlane::OnFinSegment(bool rcv_server, int32_t ri, uint32_t rgen,
                                  uint32_t fin_seq) {
  Side& r = side(rcv_server);
  if (!r.conns.Contains(ri) || r.conns.generation(ri) != rgen) {
    ++stats_.segments_stale;
    return;
  }
  TcpConn& rc = r.conns.At(ri);
  if (SeqGe(rc.rcv_nxt, fin_seq)) {
    // All data before the FIN already delivered; DeliverEof self-charges the
    // interrupt on the server side (legacy parity).
    if (SimSocket* sk = r.socks[ri]; sk != nullptr) {
      sk->DeliverEof();
    }
    return;
  }
  TcpHot& rh = EnsureHot(r, rc);
  rh.fin_rcvd = true;
  rh.fin_seq = fin_seq;
}

void TransportPlane::OnSocketClose(SimSocket* sock) {
  const bool server = sock->server_side();
  Side& s = side(server);
  const int32_t ci = sock->transport_index();
  if (ci < 0 || static_cast<size_t>(ci) >= s.socks.size() ||
      !s.conns.Contains(ci) || s.socks[ci] != sock) {
    return;
  }
  TcpConn& c = s.conns.At(ci);
  c.set_flag(kTpFinPending);
  c.set_flag(kTpClosing);
  const bool drained =
      c.snd_una == c.snd_nxt &&
      (c.hot == kNilIndex || (s.hot.At(c.hot).backlog_bytes == 0 &&
                              s.hot.At(c.hot).rtx_count == 0));
  if (drained) {
    FinishClose(server, ci);
  }
  // Otherwise the block lingers past the socket: OnAckPacket launches the
  // FIN and releases the slot once the retransmit queue drains (bounded by
  // the orphan RTO limit if the socket is destroyed meanwhile).
}

void TransportPlane::OnSocketDestroyed(SimSocket* sock) {
  const bool server = sock->server_side();
  Side& s = side(server);
  const int32_t ci = sock->transport_index();
  if (ci < 0 || static_cast<size_t>(ci) >= s.socks.size() ||
      !s.conns.Contains(ci) || s.socks[ci] != sock) {
    return;  // stale index from a reused slot; not ours to touch
  }
  s.socks[ci] = nullptr;
  TcpConn& c = s.conns.At(ci);
  if (!c.flag(kTpClosing)) {
    // Destroyed without close (simulation teardown): drop everything now.
    ReleaseConn(server, ci, nullptr);
  }
  // else: an orphan — keeps retransmitting until acked or the RTO limit.
}

void TransportPlane::ReleaseConn(bool server, int32_t ci, SimSocket* sock) {
  Side& s = side(server);
  TcpConn& c = s.conns.At(ci);
  if (c.hot != kNilIndex) {
    TcpHot& h = s.hot.At(c.hot);
    int32_t si = h.rtx_head;
    while (si != kNilIndex) {
      TxSeg& seg = s.segs.At(si);
      const int32_t next = seg.next;
      seg.payload = Chunk{};
      s.segs.ReleaseAt(si);
      si = next;
    }
    h.rtx_head = h.rtx_tail = kNilIndex;
    h.rtx_count = 0;
    ReleaseHot(s, c);
  }
  if (sock != nullptr) {
    sock->WireTransport(nullptr, -1);
  }
  s.socks[ci] = nullptr;
  s.conns.ReleaseAt(ci);
  ++stats_.blocks_released;
}

void TransportPlane::ReleaseHot(Side& s, TcpConn& c) {
  TcpHot& h = s.hot.At(c.hot);
  h.rto_timer.Cancel();
  h.loss_timer.Cancel();
  h.pace_timer.Cancel();
  h.rto_armed = h.loss_armed = h.tlp_armed = h.pace_armed = false;
  h.backlog.clear();
  h.backlog_bytes = 0;
  h.ooo.clear();
  h.ooo_bytes = 0;
  s.hot.ReleaseAt(c.hot);
  c.hot = kNilIndex;
  ++stats_.hot_releases;
}

void TransportPlane::MaybeQuiesce(bool server, int32_t ci) {
  Side& s = side(server);
  if (!s.conns.Contains(ci)) {
    return;
  }
  TcpConn& c = s.conns.At(ci);
  if (c.hot == kNilIndex) {
    return;
  }
  TcpHot& h = s.hot.At(c.hot);
  if (h.rtx_count == 0 && h.backlog_bytes == 0 && h.ooo.empty() &&
      !h.fin_rcvd && !c.flag(kTpFinPending) && c.snd_una == c.snd_nxt) {
    // Fully idle: give the hot block back; the 28-byte cold block can
    // resurrect it on the next write or out-of-order arrival.
    ReleaseHot(s, c);
  }
}

}  // namespace scio
