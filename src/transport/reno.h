// NewReno baseline: slow start + AIMD congestion avoidance, 3-dupack fast
// retransmit with partial-ack hole filling (RFC 6582, without inflation —
// the plane's SACK scoreboard already knows exactly what is outstanding).
// This is the reference stack the differential test pins against a
// from-the-RFC reimplementation (tests/transport_test.cc).

#ifndef SRC_TRANSPORT_RENO_H_
#define SRC_TRANSPORT_RENO_H_

#include "src/transport/congestion_control.h"

namespace scio {

class RenoCc : public CongestionControl {
 public:
  CcKind kind() const override { return CcKind::kReno; }
  const char* name() const override { return "reno"; }

  void OnAck(TcpConn& c, TcpHot& h, const CcAck& ack) override;
  void OnEnterRecovery(TcpConn& c, TcpHot& h) override;
  void OnExitRecovery(TcpConn& c, TcpHot& h) override;
  void OnRto(TcpConn& c, TcpHot& h) override;
};

}  // namespace scio

#endif  // SRC_TRANSPORT_RENO_H_
