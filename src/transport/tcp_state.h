// Per-connection TCP state for the opt-in transport plane.
//
// Two-tier layout, sized against the million-connection memory wall
// (PAPERS.md, "Scouting the Path to a Million-Client Server"): a *cold*
// TcpConn block — 28 bytes, always resident, enough to resume a quiescent
// connection — and a *hot* TcpHot block allocated only while data is in
// flight (backlog, retransmit queue, scoreboard, timers, reassembly) and
// released the moment the connection drains. A million idle connections with
// transport attached therefore cost ~40 B each (slot + generation tag +
// socket backpointer), which keeps bench_million_idle's ≤256 B/conn gate
// green; see the quiescent-footprint test in tests/transport_test.cc.

#ifndef SRC_TRANSPORT_TCP_STATE_H_
#define SRC_TRANSPORT_TCP_STATE_H_

#include <cstdint>
#include <deque>
#include <map>

#include "src/kernel/paged_slab.h"
#include "src/net/socket.h"
#include "src/sim/event_queue.h"
#include "src/sim/time.h"

namespace scio {

// Fixed MSS of the simulated path (Ethernet 1500 minus 40 bytes of
// IP+TCP header); segments on the wire carry payload + kTcpHeaderBytes.
inline constexpr uint32_t kTcpMss = 1460;
inline constexpr uint32_t kTcpHeaderBytes = 40;

// RFC 6928 initial window.
inline constexpr uint16_t kTcpInitialCwndMss = 10;
inline constexpr uint16_t kTcpMaxCwndMss = 0xffff;

// Pluggable congestion-control stacks, patterned on FreeBSD's
// tcp_stacks/{rack,bbr}: the functional setsockopt-selectable modules.
enum class CcKind : uint8_t {
  kReno = 0,  // NewReno AIMD, 3-dupack fast retransmit
  kRack = 1,  // NewReno cwnd dynamics + RACK time-based loss detection + TLP
  kBbr = 2,   // delivery-rate model: pacing from btlbw, cwnd from 2*BDP
};
const char* CcKindName(CcKind kind);

// TcpConn.meta: low two bits select the CcKind, the rest are flags.
inline constexpr uint8_t kTpFinPending = 1 << 2;  // close() ran; FIN owed
inline constexpr uint8_t kTpFinSent = 1 << 3;     // FIN launched
inline constexpr uint8_t kTpClosing = 1 << 4;     // release block once drained

// Cold block: one per attached connection, paged-slab resident for the whole
// connection lifetime. Kept at exactly 28 bytes — with the 4-byte generation
// tag and the 8-byte socket backpointer sidecar this is ~40 B/conn, the
// budget the bench_million_idle gate allows on top of the fd/conn/interest
// planes. rttvar saturates at u16 microseconds (65.5 ms); the RTO clamp
// makes anything larger irrelevant.
struct TcpConn {
  uint32_t snd_nxt = 0;   // next sequence byte to send
  uint32_t snd_una = 0;   // oldest unacknowledged byte
  uint32_t rcv_nxt = 0;   // next in-order byte expected
  uint32_t srtt_us = 0;   // RFC 6298 smoothed RTT; 0 = no sample yet
  int32_t hot = kNilIndex;  // TcpHot slot while active
  uint16_t rttvar_us = 0;
  uint16_t cwnd_mss = kTcpInitialCwndMss;
  uint16_t ssthresh_mss = 0xffff;
  uint8_t meta = 0;         // bits 0-1: CcKind; bits 2+: kTp* flags
  uint8_t rto_backoff = 0;  // consecutive RTOs without forward progress

  CcKind cc_kind() const { return static_cast<CcKind>(meta & 3); }
  void set_cc_kind(CcKind kind) {
    meta = static_cast<uint8_t>((meta & ~3) | static_cast<uint8_t>(kind));
  }
  bool flag(uint8_t f) const { return (meta & f) != 0; }
  void set_flag(uint8_t f) { meta |= f; }
};
static_assert(sizeof(TcpConn) == 28, "cold block budget is 28 bytes");

// One segment in a sender's retransmit queue, living on the plane's bounded
// TxSeg slab. prev/next link the per-connection queue in sequence order.
// The delivered_* snapshot fields implement BBR-style delivery-rate samples
// (rate = delivered bytes since this segment left / time elapsed).
struct TxSeg {
  uint32_t seq = 0;
  uint32_t len = 0;
  int32_t prev = kNilIndex;
  int32_t next = kNilIndex;
  SimTime tx_time = 0;   // most recent transmission (RACK orders by this)
  SimTime first_tx = 0;
  SimTime delivered_time_at_tx = 0;
  uint32_t delivered_at_tx = 0;
  uint16_t retx = 0;     // Karn's rule: only retx==0 segments yield RTT samples
  bool sacked = false;   // covered by a peer SACK range
  bool lost = false;     // marked by the scoreboard, awaiting retransmission
  bool app_limited = false;  // sender ran out of backlog when this left
  Chunk payload;
};

// Hot block: everything a connection needs only while data is in flight.
// Allocated from its own paged slab on first send (or out-of-order arrival)
// and released when the connection quiesces; parked slots keep container
// capacity for reuse, the plane resets fields on activation.
struct TcpHot {
  // Cached route to the peer's cold block (side, slot, generation) so data
  // and ACK deliveries resolve without shared_ptr traffic; a stale
  // generation means the peer is gone and the frame is dropped.
  int32_t peer_idx = kNilIndex;
  uint32_t peer_gen = 0;
  bool peer_server = false;
  bool peer_known = false;

  // --- sender ----------------------------------------------------------------
  int32_t rtx_head = kNilIndex;  // oldest in-flight segment
  int32_t rtx_tail = kNilIndex;
  uint32_t rtx_count = 0;
  uint32_t sacked_bytes = 0;
  uint32_t lost_bytes = 0;   // marked lost, not yet retransmitted
  uint32_t dupacks = 0;
  uint32_t recover_seq = 0;  // recovery episode ends when snd_una passes this
  uint32_t cwnd_acc = 0;     // congestion-avoidance byte accumulator
  bool in_recovery = false;
  bool tlp_out = false;      // one tail-loss probe per flight
  std::deque<Chunk> backlog;  // accepted, not yet segmented
  size_t backlog_bytes = 0;

  // --- delivery-rate bookkeeping (BBR) -----------------------------------------
  uint32_t delivered = 0;         // total bytes cumulatively acked or sacked
  SimTime delivered_time = 0;
  uint32_t next_round_delivered = 0;
  uint32_t round_count = 0;
  uint32_t btlbw_round = 0;
  double btlbw_Bps = 0;           // windowed-max bottleneck bandwidth estimate
  double full_bw = 0;
  uint8_t full_bw_cnt = 0;
  uint8_t bbr_mode = 0;           // 0 STARTUP, 1 DRAIN, 2 PROBE_BW
  uint8_t cycle_idx = 0;          // PROBE_BW pacing-gain phase
  uint32_t min_rtt_us = 0;
  SimTime min_rtt_stamp = 0;
  SimTime cycle_stamp = 0;

  // --- pacing ------------------------------------------------------------------
  SimTime pace_next = 0;      // earliest time the next paced segment may leave
  bool pace_armed = false;

  // --- RACK scoreboard ---------------------------------------------------------
  SimTime rack_mstamp = 0;    // tx_time of the most recently delivered segment
  bool loss_armed = false;    // reorder-window recheck or TLP pending
  bool tlp_armed = false;     // the pending loss timer is a TLP (restartable)
  bool rto_armed = false;

  EventHandle rto_timer{};
  EventHandle loss_timer{};   // RACK recheck / tail-loss probe
  EventHandle pace_timer{};

  // --- receiver ----------------------------------------------------------------
  std::map<uint32_t, Chunk> ooo;  // out-of-order segments keyed by seq
  uint32_t ooo_bytes = 0;
  bool fin_rcvd = false;     // peer FIN waiting for rcv_nxt to reach fin_seq
  uint32_t fin_seq = 0;
};

}  // namespace scio

#endif  // SRC_TRANSPORT_TCP_STATE_H_
