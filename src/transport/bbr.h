// BBR-style stack: a simplified BBR v1 model (STARTUP / DRAIN / PROBE_BW)
// driven by delivery-rate samples instead of loss. The plane feeds each ACK
// a rate sample (bytes delivered since the acked segment left / elapsed
// time); the stack keeps a windowed-max bottleneck-bandwidth estimate and a
// 10-second-windowed min RTT, paces at gain * btlbw, and sets cwnd to twice
// the bandwidth-delay product. Loss does not collapse the model — recovery
// retransmits are handled by the RACK scoreboard, which this stack shares.
// PROBE_RTT is omitted: the simulated path's min RTT cannot drift upward
// under a single flow, so the phase would never trigger. Patterned on
// FreeBSD tcp_stacks/bbr.c.

#ifndef SRC_TRANSPORT_BBR_H_
#define SRC_TRANSPORT_BBR_H_

#include "src/transport/congestion_control.h"

namespace scio {

class BbrCc : public CongestionControl {
 public:
  static constexpr uint8_t kStartup = 0;
  static constexpr uint8_t kDrain = 1;
  static constexpr uint8_t kProbeBw = 2;
  // 2/ln(2): doubles the sending rate every round during STARTUP.
  static constexpr double kHighGain = 2.885;

  CcKind kind() const override { return CcKind::kBbr; }
  const char* name() const override { return "bbr"; }
  bool TimeBasedRecovery() const override { return true; }

  void OnAck(TcpConn& c, TcpHot& h, const CcAck& ack) override;
  void OnEnterRecovery(TcpConn& /*c*/, TcpHot& /*h*/) override {}
  void OnRto(TcpConn& c, TcpHot& h) override;

  double PacingBytesPerSec(const TcpConn& c, const TcpHot& h) const override;

  // btlbw * min_rtt, in bytes; 0 until both estimates exist.
  static double BdpBytes(const TcpHot& h);
};

}  // namespace scio

#endif  // SRC_TRANSPORT_BBR_H_
