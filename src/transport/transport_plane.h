// TransportPlane: the opt-in per-connection TCP model.
//
// Implements TcpTransportHook (src/net/transport_hook.h). With a plane
// attached to the NetStack, every socket created at SYN time gets a cold
// TcpConn block; writes are segmented at kTcpMss, clocked out by the
// selected CongestionControl stack, carried by Link::TransmitSegment (where
// a kPacketLoss fault now *drops* the frame), SACK-scoreboarded, and
// repaired by fast retransmit / RACK marking / RTO. Without a plane nothing
// changes and every checked-in baseline stays byte-identical — the same
// opt-in pattern as the SMP plane.
//
// Memory: the server side's cold blocks, hot blocks, retransmit-segment slab
// and socket-backpointer sidecar are charged to MemSys::kTransport; the
// client machine's mirror structures are not ledgered, just as client CPU is
// never charged. CPU: segmentation, ACK generation/processing, retransmits
// and pacing releases are charged as interrupt-context debt under the
// kTcpSegment/kTcpAck/kTcpRetransmit/kTcpPacing categories — server side
// only.
//
// Determinism: all state lives in paged slabs (deterministic iteration), the
// only RNG is the plane's own seeded jitter stream, and timers resolve
// through (side, slot, generation) routes so stale fires are no-ops. The
// plane must outlive every moment the simulator *runs*; pending callbacks
// that are merely discarded at teardown (Simulator::DiscardPending) are
// harmless.

#ifndef SRC_TRANSPORT_TRANSPORT_PLANE_H_
#define SRC_TRANSPORT_TRANSPORT_PLANE_H_

#include <array>
#include <cstdint>
#include <functional>
#include <string>
#include <utility>
#include <vector>

#include "src/kernel/paged_slab.h"
#include "src/kernel/sim_kernel.h"
#include "src/net/net_stack.h"
#include "src/net/transport_hook.h"
#include "src/sim/rng.h"
#include "src/transport/congestion_control.h"
#include "src/transport/tcp_state.h"

namespace scio {

struct TransportConfig {
  CcKind default_cc = CcKind::kReno;
  uint64_t seed = 1;
  // Seeded one-way delivery jitter drawn per data segment, U[0, jitter];
  // exercises the RTT estimator. 0 draws nothing (pure no-op).
  SimDuration delivery_jitter = 0;
  SimDuration min_rto = Millis(200);   // RFC 6298 floor (Linux uses 200 ms)
  SimDuration max_rto = Seconds(4);
  SimDuration min_tlp = Millis(10);    // tail-loss probe floor
  size_t max_connections = 1 << 20;
  size_t max_segments = 1 << 16;       // bounded retransmit slab, per side
  // Orphaned blocks (socket destroyed, data unacked) give up after this many
  // consecutive RTO backoffs and release their slots.
  int orphan_rto_limit = 6;
};

// Plane-local counters; FaultStats still owns wire-level loss counts.
struct TransportStats {
  uint64_t blocks_attached = 0;
  uint64_t blocks_released = 0;
  uint64_t attach_failed = 0;        // cold slab full; socket ran legacy path
  uint64_t hot_activations = 0;
  uint64_t hot_releases = 0;
  uint64_t segments_sent = 0;        // first transmissions
  uint64_t segments_retransmitted = 0;
  uint64_t segments_dropped = 0;     // fault-plane drops + scripted-hook drops
  uint64_t segments_dropped_filter = 0;  // ingress filter ate the payload
  uint64_t segments_stale = 0;       // arrived after the block was released
  uint64_t dup_segments = 0;
  uint64_t ooo_buffered = 0;
  uint64_t acks_sent = 0;
  uint64_t acks_received = 0;
  uint64_t rtt_samples = 0;
  uint64_t fast_retransmit_entries = 0;  // recovery episodes entered
  uint64_t rack_marked_lost = 0;
  uint64_t tlp_probes = 0;
  uint64_t rto_fires = 0;
  uint64_t send_blocked_no_slab = 0;
  uint64_t fins_sent = 0;
  uint64_t orphans_abandoned = 0;

  std::vector<std::pair<std::string, uint64_t>> ToRows() const;
  // Stable digest for double-run bit-identical gates.
  std::string Signature() const;
};

class TransportPlane : public TcpTransportHook {
 public:
  // Registers itself on `net` (net->set_transport(this)); the destructor
  // deregisters and detaches every still-wired socket.
  TransportPlane(SimKernel* kernel, NetStack* net, TransportConfig config = {});
  ~TransportPlane() override;
  TransportPlane(const TransportPlane&) = delete;
  TransportPlane& operator=(const TransportPlane&) = delete;

  // --- TcpTransportHook --------------------------------------------------------
  void Attach(SimSocket* sock) override;
  void Send(SimSocket* sock, Chunk chunk) override;
  void OnSocketClose(SimSocket* sock) override;
  void OnSocketDestroyed(SimSocket* sock) override;

  // Per-socket stack selection (defaults to config.default_cc at attach).
  // Call before data flows; switching mid-flight keeps the scoreboard.
  void SetCcKind(SimSocket* sock, CcKind kind);

  // Scripted loss hook for tests and the recovery-time bench: return true to
  // drop this data-segment transmission. Runs before the fault plane and
  // consumes no RNG, so schedules stay deterministic.
  using LossHook = std::function<bool(bool server_sender, uint32_t seq,
                                      uint16_t retx)>;
  void set_loss_hook(LossHook hook) { loss_hook_ = std::move(hook); }

  const TransportConfig& config() const { return config_; }
  const TransportStats& stats() const { return stats_; }

  // --- accounting (bench_million_idle, leak crosschecks) ----------------------
  // Server-side bytes the plane holds — must equal the ledger's kTransport
  // row at all times.
  size_t tracked_bytes() const;
  size_t live_blocks() const { return srv_.conns.size() + cli_.conns.size(); }
  size_t live_hot() const { return srv_.hot.size() + cli_.hot.size(); }
  size_t live_segments() const { return srv_.segs.size() + cli_.segs.size(); }

 private:
  struct Side {
    PagedStore<TcpConn> conns;
    PagedStore<TcpHot> hot;
    PagedStore<TxSeg> segs;
    // Socket backpointers by cold-block slot (nullptr = orphaned). Sidecar,
    // not in the slab, so the cold block stays 28 bytes; the server side's
    // capacity is ledgered by hand.
    std::vector<SimSocket*> socks;
  };

  Side& side(bool server) { return server ? srv_ : cli_; }

  // --- block lifecycle ---------------------------------------------------------
  TcpHot& EnsureHot(Side& s, TcpConn& c);
  bool ResolvePeer(TcpHot& h, SimSocket* sock);
  void ReleaseHot(Side& s, TcpConn& c);
  void ReleaseConn(bool server, int32_t ci, SimSocket* sock);
  void MaybeQuiesce(bool server, int32_t ci);
  void GrowSidecar(bool server, size_t need);

  // --- send machinery ----------------------------------------------------------
  void Pump(bool server, int32_t ci);
  void CarveSegment(TcpHot& h, TxSeg& seg, uint32_t budget);
  void TransmitSeg(bool server, int32_t ci, TcpConn& c, TcpHot& h, int32_t si);
  void RetransmitSeg(bool server, int32_t ci, TcpConn& c, TcpHot& h,
                     int32_t si);
  void SendFin(bool server, int32_t ci, TcpConn& c, TcpHot& h);
  // FIN owed and the retransmit queue drained: launch the FIN, and release
  // the block when close() already ran. Returns true if the block died.
  bool FinishClose(bool server, int32_t ci);

  // --- receive / ack machinery -------------------------------------------------
  void OnDataSegment(bool rcv_server, int32_t ri, uint32_t rgen,
                     bool snd_server, int32_t si, uint32_t sgen, uint32_t seq,
                     Chunk chunk);
  void OnFinSegment(bool rcv_server, int32_t ri, uint32_t rgen,
                    uint32_t fin_seq);
  void SendAck(bool rcv_server, TcpConn& rc, bool snd_server, int32_t si,
               uint32_t sgen);
  void OnAckPacket(bool server, int32_t ci, uint32_t gen, uint32_t ack,
                   std::array<uint32_t, 3> sack_start,
                   std::array<uint32_t, 3> sack_end, uint8_t sack_count);

  // --- loss detection / timers -------------------------------------------------
  void EnterRecovery(TcpConn& c, TcpHot& h);
  void MarkLost(TcpHot& h, TxSeg& seg);
  void RackDetect(bool server, int32_t ci, TcpConn& c, TcpHot& h);
  void ArmRto(bool server, int32_t ci, TcpConn& c, TcpHot& h);
  void ArmTlp(bool server, int32_t ci, TcpConn& c, TcpHot& h);
  void ArmLossRecheck(bool server, int32_t ci, TcpHot& h, SimDuration delay);
  void ArmPace(bool server, int32_t ci, TcpHot& h, SimTime at);
  void OnRtoTimer(bool server, int32_t ci, uint32_t gen);
  void OnLossTimer(bool server, int32_t ci, uint32_t gen, bool tlp);
  void OnPaceTimer(bool server, int32_t ci, uint32_t gen);
  SimDuration CurrentRto(const TcpConn& c) const;

  uint32_t Pipe(const TcpConn& c, const TcpHot& h) const {
    return (c.snd_nxt - c.snd_una) - h.sacked_bytes - h.lost_bytes;
  }
  void UpdateRtt(TcpConn& c, uint32_t sample_us);

  SimKernel* kernel_;
  NetStack* net_;
  TransportConfig config_;
  Rng rng_;
  Side srv_;
  Side cli_;
  size_t srv_sidecar_ledgered_ = 0;  // bytes of srv_.socks capacity on ledger
  TransportStats stats_;
  LossHook loss_hook_;
};

}  // namespace scio

#endif  // SRC_TRANSPORT_TRANSPORT_PLANE_H_
