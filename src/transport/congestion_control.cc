#include "src/transport/congestion_control.h"

#include "src/transport/bbr.h"
#include "src/transport/rack.h"
#include "src/transport/reno.h"

namespace scio {

const char* CcKindName(CcKind kind) {
  switch (kind) {
    case CcKind::kReno:
      return "reno";
    case CcKind::kRack:
      return "rack";
    case CcKind::kBbr:
      return "bbr";
  }
  return "unknown";
}

CongestionControl* GetCongestionControl(CcKind kind) {
  static RenoCc reno;
  static RackCc rack;
  static BbrCc bbr;
  switch (kind) {
    case CcKind::kRack:
      return &rack;
    case CcKind::kBbr:
      return &bbr;
    case CcKind::kReno:
      break;
  }
  return &reno;
}

}  // namespace scio
