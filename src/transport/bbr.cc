#include "src/transport/bbr.h"

#include <algorithm>

namespace scio {

namespace {

// PROBE_BW pacing-gain cycle: one probing phase, one draining phase, six
// cruise phases. The phase index advances deterministically (no randomized
// start — seeded runs must replay bit-identically).
constexpr double kCycleGain[8] = {1.25, 0.75, 1.0, 1.0, 1.0, 1.0, 1.0, 1.0};

// Rounds the btlbw max-filter remembers a sample before letting it expire.
constexpr uint32_t kBwWindowRounds = 10;

}  // namespace

double BbrCc::BdpBytes(const TcpHot& h) {
  if (h.btlbw_Bps <= 0 || h.min_rtt_us == 0) {
    return 0;
  }
  return h.btlbw_Bps * static_cast<double>(h.min_rtt_us) * 1e-6;
}

void BbrCc::OnAck(TcpConn& c, TcpHot& h, const CcAck& ack) {
  if (ack.round_start) {
    ++h.round_count;
  }

  // min-RTT filter: 10-second window, refreshed by any equal-or-lower sample.
  if (ack.rtt_sample_us > 0 &&
      (h.min_rtt_us == 0 || ack.rtt_sample_us <= h.min_rtt_us ||
       ack.now - h.min_rtt_stamp > Seconds(10))) {
    h.min_rtt_us = ack.rtt_sample_us;
    h.min_rtt_stamp = ack.now;
  }

  // btlbw max filter. App-limited samples may only raise the estimate (they
  // under-measure the path); an expired window lets a genuine slowdown in.
  if (ack.delivery_rate_Bps > 0) {
    if (ack.delivery_rate_Bps >= h.btlbw_Bps) {
      h.btlbw_Bps = ack.delivery_rate_Bps;
      h.btlbw_round = h.round_count;
    } else if (!ack.app_limited &&
               h.round_count - h.btlbw_round > kBwWindowRounds) {
      h.btlbw_Bps = ack.delivery_rate_Bps;
      h.btlbw_round = h.round_count;
    }
  }

  // STARTUP exit: three rounds without ~25% bandwidth growth means the pipe
  // is full; DRAIN then bleeds the startup queue back down to one BDP.
  if (h.bbr_mode == kStartup && ack.round_start) {
    if (h.btlbw_Bps >= h.full_bw * 1.25) {
      h.full_bw = h.btlbw_Bps;
      h.full_bw_cnt = 0;
    } else if (++h.full_bw_cnt >= 3) {
      h.bbr_mode = kDrain;
    }
  }
  if (h.bbr_mode == kDrain &&
      static_cast<double>(ack.pipe) <= BdpBytes(h)) {
    h.bbr_mode = kProbeBw;
    h.cycle_idx = 0;
    h.cycle_stamp = ack.now;
  }
  if (h.bbr_mode == kProbeBw && h.min_rtt_us > 0 &&
      ack.now - h.cycle_stamp >= Micros(h.min_rtt_us)) {
    h.cycle_idx = static_cast<uint8_t>((h.cycle_idx + 1) % 8);
    h.cycle_stamp = ack.now;
  }

  // cwnd from the model: 2*BDP keeps the pipe full through delayed and
  // aggregated ACKs; 4 MSS floor keeps the ACK clock alive.
  const double bdp = BdpBytes(h);
  if (bdp > 0) {
    const double gain = h.bbr_mode == kStartup ? kHighGain : 2.0;
    const uint32_t target =
        static_cast<uint32_t>(gain * bdp / kTcpMss) + 1;
    c.cwnd_mss = static_cast<uint16_t>(
        std::clamp<uint32_t>(target, 4, kTcpMaxCwndMss));
  }
}

void BbrCc::OnRto(TcpConn& c, TcpHot& /*h*/) {
  // Conservation while the ACK clock restarts; the model (btlbw, min_rtt)
  // survives and OnAck restores cwnd as soon as samples flow again.
  c.cwnd_mss = 4;
}

double BbrCc::PacingBytesPerSec(const TcpConn& c, const TcpHot& h) const {
  if (h.btlbw_Bps <= 0) {
    // No bandwidth estimate yet: pace the initial window out over the only
    // RTT signal we have. Before the first sample, send unpaced.
    if (c.srtt_us == 0) {
      return 0;
    }
    const double cwnd_bytes = static_cast<double>(c.cwnd_mss) * kTcpMss;
    return kHighGain * cwnd_bytes / (static_cast<double>(c.srtt_us) * 1e-6);
  }
  double gain = 1.0;
  switch (h.bbr_mode) {
    case kStartup:
      gain = kHighGain;
      break;
    case kDrain:
      gain = 1.0 / kHighGain;
      break;
    default:
      gain = kCycleGain[h.cycle_idx % 8];
      break;
  }
  return gain * h.btlbw_Bps;
}

}  // namespace scio
