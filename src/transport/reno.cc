#include "src/transport/reno.h"

#include <algorithm>

namespace scio {

void RenoCc::OnAck(TcpConn& c, TcpHot& h, const CcAck& ack) {
  if (h.in_recovery || ack.newly_acked == 0) {
    // cwnd is frozen at ssthresh during recovery; growth resumes on exit.
    return;
  }
  h.cwnd_acc += ack.newly_acked;
  if (c.cwnd_mss < c.ssthresh_mss) {
    // Slow start: one MSS of cwnd per MSS acknowledged.
    while (h.cwnd_acc >= kTcpMss && c.cwnd_mss < kTcpMaxCwndMss) {
      h.cwnd_acc -= kTcpMss;
      ++c.cwnd_mss;
    }
  } else {
    // Congestion avoidance: one MSS per full window acknowledged.
    const uint32_t cwnd_bytes = static_cast<uint32_t>(c.cwnd_mss) * kTcpMss;
    if (h.cwnd_acc >= cwnd_bytes) {
      h.cwnd_acc -= cwnd_bytes;
      if (c.cwnd_mss < kTcpMaxCwndMss) {
        ++c.cwnd_mss;
      }
    }
  }
}

void RenoCc::OnEnterRecovery(TcpConn& c, TcpHot& h) {
  const uint32_t flight = c.snd_nxt - c.snd_una;
  c.ssthresh_mss = static_cast<uint16_t>(
      std::max<uint32_t>(flight / (2 * kTcpMss), 2));
  c.cwnd_mss = c.ssthresh_mss;
  h.cwnd_acc = 0;
}

void RenoCc::OnExitRecovery(TcpConn& c, TcpHot& h) {
  c.cwnd_mss = c.ssthresh_mss;
  h.cwnd_acc = 0;
}

void RenoCc::OnRto(TcpConn& c, TcpHot& h) {
  const uint32_t flight = c.snd_nxt - c.snd_una;
  c.ssthresh_mss = static_cast<uint16_t>(
      std::max<uint32_t>(flight / (2 * kTcpMss), 2));
  c.cwnd_mss = 1;
  h.cwnd_acc = 0;
}

}  // namespace scio
