// CongestionControl: the strategy interface behind the transport plane's
// pluggable stacks, mirroring FreeBSD's tcp_stacks function-pointer modules.
//
// Stacks are stateless singletons — all per-connection state lives in the
// TcpConn/TcpHot slabs — so selecting a stack per socket is a 2-bit field,
// not an allocation. The plane drives the scoreboard (what was acked, sacked,
// sampled); the stack only decides how cwnd/ssthresh move, whether loss
// detection is dupack-counting or RACK time-based, and at what rate to pace.

#ifndef SRC_TRANSPORT_CONGESTION_CONTROL_H_
#define SRC_TRANSPORT_CONGESTION_CONTROL_H_

#include <cstdint>

#include "src/sim/time.h"
#include "src/transport/tcp_state.h"

namespace scio {

// Everything one processed ACK tells a stack.
struct CcAck {
  SimTime now = 0;
  uint32_t newly_acked = 0;   // bytes the cumulative ACK advanced
  uint32_t newly_sacked = 0;  // bytes newly covered by SACK ranges
  uint32_t pipe = 0;          // outstanding bytes after this ACK
  uint32_t rtt_sample_us = 0;  // 0 = no sample (Karn's rule)
  double delivery_rate_Bps = 0;  // 0 = no sample
  bool app_limited = false;   // the sampled segment left an empty backlog
  bool round_start = false;   // this ACK opened a new round trip
};

class CongestionControl {
 public:
  virtual ~CongestionControl() = default;

  virtual CcKind kind() const = 0;
  virtual const char* name() const = 0;

  virtual void OnAck(TcpConn& c, TcpHot& h, const CcAck& ack) = 0;

  // First loss of an episode: fast retransmit is about to happen.
  virtual void OnEnterRecovery(TcpConn& c, TcpHot& h) = 0;
  // snd_una passed recover_seq: every byte outstanding at entry is repaired.
  virtual void OnExitRecovery(TcpConn& /*c*/, TcpHot& /*h*/) {}
  virtual void OnRto(TcpConn& c, TcpHot& h) = 0;

  // true: the plane runs the RACK scoreboard (reorder-window marking + tail
  // loss probes); false: classic 3-dupack counting + NewReno partial acks.
  virtual bool TimeBasedRecovery() const { return false; }

  // Pacing rate in bytes/sec; 0 disables pacing (window-limited bursts).
  virtual double PacingBytesPerSec(const TcpConn& /*c*/,
                                   const TcpHot& /*h*/) const {
    return 0;
  }
};

// The stateless singleton for `kind`; never null.
CongestionControl* GetCongestionControl(CcKind kind);

}  // namespace scio

#endif  // SRC_TRANSPORT_CONGESTION_CONTROL_H_
