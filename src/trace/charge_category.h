// Charge categories: the taxonomy of virtual-CPU time attribution.
//
// The paper's scalability argument is entirely about *where CPU time goes*
// as interest sets grow (O(n) copies and driver scans vs hinted scans vs
// per-event signal overhead). KernelStats counts operations; this file names
// the buckets that the nanoseconds themselves are attributed to. Every
// SimKernel::Charge()/ChargeDebt() call site names one of these categories,
// and the TimeAttribution ledger maintains the hard invariant that the
// per-category sum equals the total charged time.
//
// The list is a single X-macro so the enum, the name table and the count can
// never drift apart. CI additionally diffs this list against the charge
// sites (tools/check_attribution_coverage.sh).

#ifndef SRC_TRACE_CHARGE_CATEGORY_H_
#define SRC_TRACE_CHARGE_CATEGORY_H_

#include <cstddef>

namespace scio {

// X(enumerator, snake_case_name)
#define SCIO_CHARGE_CATEGORIES(X)                                              \
  /* --- syscall surface ---------------------------------------------------*/ \
  X(kSyscallEntry, syscall_entry)   /* traps, fcntl/ioctl entry overhead */    \
  X(kAccept, accept)                /* socket + file allocation */             \
  X(kReadCopy, read_copy)           /* read fixed + per-byte copyin */         \
  X(kSendBytes, send_bytes)         /* write fixed + copy/checksum/queue */    \
  X(kClose, close)                  /* descriptor teardown */                  \
  /* --- classic poll() ----------------------------------------------------*/ \
  X(kPollfdCopyin, pollfd_copyin)   /* whole interest set copied in */         \
  X(kDriverPoll, driver_poll)       /* per-fd driver poll callbacks */         \
  X(kWaitqueue, waitqueue)          /* wait-queue add/remove churn */          \
  X(kResultCopyout, result_copyout) /* ready results copied to userspace */    \
  /* --- /dev/poll ---------------------------------------------------------*/ \
  X(kInterestUpdate, interest_update) /* write(): copyin + hash update */      \
  X(kDevpollScan, devpoll_scan)       /* per-interest scan + scan lock */      \
  X(kHintMark, hint_mark)             /* driver-side backmap hint marking */   \
  /* --- successor cores (epoll-style ready list, kqueue-style knotes) ------*/ \
  X(kEpollCtl, epoll_ctl)     /* epoll_ctl interest-slab mutation */           \
  X(kEpollReady, epoll_ready) /* driver-side ready-list enqueue (debt) */      \
  X(kEpollWait, epoll_wait)   /* epoll_wait ready-list walk + dequeue */       \
  X(kKqRegister, kq_register) /* kevent changelist application */              \
  X(kKqFilter, kq_filter)     /* knote activation (debt) + filter re-eval */   \
  /* --- RT signals --------------------------------------------------------*/ \
  X(kSignalEnqueue, signal_enqueue)  /* kernel-side siginfo enqueue (debt) */  \
  X(kSignalDequeue, signal_dequeue)  /* sigwaitinfo dequeue + copyout */       \
  X(kSignalFlush, signal_flush)      /* SIG_DFL overflow flush */              \
  X(kOverflowHandoff, overflow_handoff) /* phhttpd conn handoff to sibling */  \
  /* --- interrupt / network -----------------------------------------------*/ \
  X(kInterrupt, interrupt) /* per-packet interrupt processing (debt) */        \
  /* --- ingress defense ---------------------------------------------------*/ \
  X(kFilterMatch, filter_match) /* rule-chain traversal per SYN/packet */      \
  X(kFilterDrop, filter_drop)   /* verdict execution on DROP/RATE_LIMIT */     \
  X(kSynCookie, syn_cookie)     /* stateless SYN-ACK when the SYN queue is full */ \
  /* --- application-level work --------------------------------------------*/ \
  X(kHttpParse, http_parse)         /* request parsing */                      \
  X(kHttpRespond, http_respond)     /* response construction */               \
  X(kServerLoop, server_loop)       /* per-iteration event-loop overhead */    \
  X(kPollfdRebuild, pollfd_rebuild) /* legacy userspace pollfd rebuild */      \
  X(kConnMgmt, conn_mgmt)           /* connection state setup/teardown */      \
  X(kTimerSweep, timer_sweep)       /* periodic timeout scans */               \
  /* --- SMP scheduling ----------------------------------------------------*/ \
  X(kSmpSched, smp_sched) /* virtual-CPU context switches */                   \
  /* --- transport plane (opt-in TCP model, src/transport) ------------------*/ \
  X(kTcpSegment, tcp_segment)       /* segmentation + first transmission */    \
  X(kTcpAck, tcp_ack)               /* ACK generation and ACK processing */    \
  X(kTcpRetransmit, tcp_retransmit) /* fast retransmit / RTO / TLP probes */   \
  X(kTcpPacing, tcp_pacing)         /* pacing-timer release of paced sends */  \
  /* --- fallback ----------------------------------------------------------*/ \
  X(kOther, other) /* tests and uncategorized charges */

enum class ChargeCat : unsigned char {
#define SCIO_X(enumerator, name) enumerator,
  SCIO_CHARGE_CATEGORIES(SCIO_X)
#undef SCIO_X
};

inline constexpr size_t kChargeCatCount = []() constexpr {
  size_t n = 0;
#define SCIO_X(enumerator, name) ++n;
  SCIO_CHARGE_CATEGORIES(SCIO_X)
#undef SCIO_X
  return n;
}();

inline const char* ChargeCatName(ChargeCat cat) {
  static constexpr const char* kNames[kChargeCatCount] = {
#define SCIO_X(enumerator, name) #name,
      SCIO_CHARGE_CATEGORIES(SCIO_X)
#undef SCIO_X
  };
  const auto idx = static_cast<size_t>(cat);
  return idx < kChargeCatCount ? kNames[idx] : "invalid";
}

}  // namespace scio

#endif  // SRC_TRACE_CHARGE_CATEGORY_H_
