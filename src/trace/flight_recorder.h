// FlightRecorder: a fixed-capacity ring buffer of kernel/server events.
//
// The recorder is a passive observer: recording an event never charges
// virtual CPU, never touches the RNG, and never schedules anything, so a
// seeded run is bit-identical with the recorder attached or absent. When the
// ring fills, the oldest events are overwritten (and counted as dropped) —
// like a real flight recorder it always holds the most recent history.
//
// Exports:
//   - Chrome trace-event JSON (loads in about:tracing / Perfetto): syscalls
//     as complete slices with wall + charged durations, everything else as
//     instants, benchmark phases as a separate track;
//   - a per-phase breakdown table (event counts and charged time binned by
//     the phase marks the benchmark laid down).
//
// Compile-time kill switch: building with -DSCIO_NO_TRACE (CMake option
// SCIO_DISABLE_TRACE) turns every recording helper in SimKernel into an
// inlined no-op, for a zero-overhead disabled path.

#ifndef SRC_TRACE_FLIGHT_RECORDER_H_
#define SRC_TRACE_FLIGHT_RECORDER_H_

#include <cstdint>
#include <ostream>
#include <string>
#include <vector>

#include "src/metrics/table.h"
#include "src/sim/time.h"

namespace scio {

#if defined(SCIO_NO_TRACE)
inline constexpr bool kFlightRecorderCompiledIn = false;
#else
inline constexpr bool kFlightRecorderCompiledIn = true;
#endif

enum class TraceEventType : unsigned char {
  kSyscall,     // complete slice: [ts, ts+wall), charged = busy-time delta
  kScan,        // poll()/DP_POLL scan: arg0 = entries scanned, arg1 = ready
  kSignal,      // RT signal queue transition: queued/dropped/sigio/flush
  kModeSwitch,  // hybrid or phhttpd notification-mode change
  kFault,       // fault-plane injection
  kPhase,       // benchmark phase mark
};

const char* TraceEventTypeName(TraceEventType type);

struct TraceEvent {
  SimTime ts = 0;
  SimDuration wall = 0;     // complete-event duration; 0 for instants
  SimDuration charged = 0;  // virtual CPU charged inside the event
  int32_t arg0 = 0;
  int32_t arg1 = 0;
  TraceEventType type = TraceEventType::kSyscall;
  const char* name = "";  // must point at static-lifetime storage
};

class FlightRecorder {
 public:
  static constexpr size_t kDefaultCapacity = 1 << 16;

  explicit FlightRecorder(size_t capacity = kDefaultCapacity);
  FlightRecorder(const FlightRecorder&) = delete;
  FlightRecorder& operator=(const FlightRecorder&) = delete;

  void Record(const TraceEvent& event) {
    buffer_[next_] = event;
    next_ = next_ + 1 == buffer_.size() ? 0 : next_ + 1;
    if (count_ < buffer_.size()) {
      ++count_;
    }
    ++total_recorded_;
  }

  // Lay down a phase boundary (also visible in the ring as a kPhase instant).
  // `name` must have static lifetime; marks must be recorded in time order.
  void MarkPhase(const char* name, SimTime at);

  size_t capacity() const { return buffer_.size(); }
  size_t size() const { return count_; }
  uint64_t total_recorded() const { return total_recorded_; }
  uint64_t dropped() const { return total_recorded_ - count_; }

  // Events oldest → newest (only what the ring still holds).
  std::vector<TraceEvent> Snapshot() const;

  // Chrome trace-event JSON (the "traceEvents" array format).
  void WriteChromeTrace(std::ostream& out) const;
  bool WriteChromeTraceFile(const std::string& path) const;

  // Event counts and charged time per benchmark phase. Events recorded
  // before the first mark fall into the "(pre)" phase. Only what the ring
  // still holds is binned; `dropped()` says how much history was lost.
  Table PhaseBreakdown() const;

  void Clear();

 private:
  struct PhaseMark {
    const char* name;
    SimTime at;
  };

  std::vector<TraceEvent> buffer_;
  size_t next_ = 0;
  size_t count_ = 0;
  uint64_t total_recorded_ = 0;
  std::vector<PhaseMark> phases_;
};

}  // namespace scio

#endif  // SRC_TRACE_FLIGHT_RECORDER_H_
