// MemLedger: the per-subsystem memory-accounting ledger.
//
// The million-connection experiments shift the bottleneck from scan cost to
// per-connection *memory* (PAPERS.md, "Scouting the Path to a Million-Client
// Server"), so alongside the virtual-CPU TimeAttribution ledger the kernel
// keeps a byte ledger: every slab page, interest node and buffered byte a
// tracked structure allocates is recorded under its subsystem, and the hard
// invariant
//
//     Sum() == total_tracked_bytes
//
// holds at every instant — a structure that frees without recording (or
// records without freeing) breaks the invariant, which the tests and the
// bench_million_idle gate both check against the structures' own
// tracked_bytes() self-reports. Like TimeAttribution it is plain array
// arithmetic: always on, one add per (de)allocation, no perturbation of
// seeded runs.

#ifndef SRC_TRACE_MEM_LEDGER_H_
#define SRC_TRACE_MEM_LEDGER_H_

#include <array>
#include <cstddef>
#include <cstdint>
#include <string>
#include <utility>
#include <vector>

namespace scio {

// X(enumerator, snake_case_name)
#define SCIO_MEM_SUBSYSTEMS(X)                                                \
  X(kFdTable, fd_table)     /* descriptor-table pages */                      \
  X(kConns, conns)          /* server per-connection slab pages */            \
  X(kInterests, interests)  /* interest-set nodes (/dev/poll, backends) */    \
  X(kTimers, timers)        /* event-engine timer-wheel slabs */              \
  X(kBuffers, buffers)      /* socket receive-queue payload bytes */          \
  X(kTransport, transport)  /* server-side TCP blocks + retransmit slab */    \
  X(kOtherMem, other_mem)   /* tests and uncategorized allocations */

enum class MemSys {
#define X(name, str) name,
  SCIO_MEM_SUBSYSTEMS(X)
#undef X
};

inline constexpr size_t kMemSysCount = 0
#define X(name, str) +1
    SCIO_MEM_SUBSYSTEMS(X)
#undef X
    ;

const char* MemSysName(MemSys sys);

class MemLedger {
 public:
  void Add(MemSys sys, size_t bytes) {
    bytes_[static_cast<size_t>(sys)] += bytes;
    total_ += bytes;
  }
  void Sub(MemSys sys, size_t bytes) {
    bytes_[static_cast<size_t>(sys)] -= bytes;
    total_ -= bytes;
  }

  uint64_t operator[](MemSys sys) const { return bytes_[static_cast<size_t>(sys)]; }

  // Total tracked bytes across all subsystems.
  uint64_t total() const { return total_; }

  // The ledger invariant: the per-subsystem sum equals the running total.
  // Add/Sub maintain both, so a false return means memory corruption or an
  // unbalanced raw write — the tests assert this after every torture run.
  uint64_t Sum() const {
    uint64_t sum = 0;
    for (uint64_t b : bytes_) {
      sum += b;
    }
    return sum;
  }
  bool Consistent() const { return Sum() == total_; }

  bool operator==(const MemLedger&) const = default;

  // All subsystems in declaration order, as (name, bytes) pairs.
  std::vector<std::pair<std::string, uint64_t>> ToRows() const;

  // Stable machine-readable digest (name=bytes;...) for determinism
  // signatures.
  std::string Signature() const;

 private:
  std::array<uint64_t, kMemSysCount> bytes_{};
  uint64_t total_ = 0;
};

}  // namespace scio

#endif  // SRC_TRACE_MEM_LEDGER_H_
