#include "src/trace/mem_ledger.h"

#include <sstream>

namespace scio {

const char* MemSysName(MemSys sys) {
  switch (sys) {
#define X(name, str)  \
  case MemSys::name:  \
    return #str;
    SCIO_MEM_SUBSYSTEMS(X)
#undef X
  }
  return "unknown";
}

std::vector<std::pair<std::string, uint64_t>> MemLedger::ToRows() const {
  std::vector<std::pair<std::string, uint64_t>> rows;
  rows.reserve(kMemSysCount);
  for (size_t i = 0; i < kMemSysCount; ++i) {
    rows.emplace_back(MemSysName(static_cast<MemSys>(i)), bytes_[i]);
  }
  return rows;
}

std::string MemLedger::Signature() const {
  std::ostringstream out;
  for (size_t i = 0; i < kMemSysCount; ++i) {
    out << MemSysName(static_cast<MemSys>(i)) << '=' << bytes_[i] << ';';
  }
  return out.str();
}

}  // namespace scio
