#include "src/trace/flight_recorder.h"

#include <algorithm>
#include <fstream>
#include <sstream>

namespace scio {

const char* TraceEventTypeName(TraceEventType type) {
  switch (type) {
    case TraceEventType::kSyscall:
      return "syscall";
    case TraceEventType::kScan:
      return "scan";
    case TraceEventType::kSignal:
      return "signal";
    case TraceEventType::kModeSwitch:
      return "mode";
    case TraceEventType::kFault:
      return "fault";
    case TraceEventType::kPhase:
      return "phase";
  }
  return "unknown";
}

FlightRecorder::FlightRecorder(size_t capacity)
    : buffer_(capacity == 0 ? 1 : capacity) {}

void FlightRecorder::MarkPhase(const char* name, SimTime at) {
  phases_.push_back({name, at});
  Record({at, 0, 0, 0, 0, TraceEventType::kPhase, name});
}

std::vector<TraceEvent> FlightRecorder::Snapshot() const {
  std::vector<TraceEvent> events;
  events.reserve(count_);
  const size_t start = count_ < buffer_.size() ? 0 : next_;
  for (size_t i = 0; i < count_; ++i) {
    events.push_back(buffer_[(start + i) % buffer_.size()]);
  }
  return events;
}

void FlightRecorder::Clear() {
  next_ = 0;
  count_ = 0;
  total_recorded_ = 0;
  phases_.clear();
}

namespace {

// Times in the JSON are microseconds (the trace-event convention).
void WriteJsonEvent(std::ostream& out, const TraceEvent& event, bool* first) {
  if (!*first) {
    out << ",\n";
  }
  *first = false;
  out << R"(  {"name":")" << event.name << R"(","cat":")"
      << TraceEventTypeName(event.type) << R"(","pid":1,"tid":1,"ts":)"
      << ToMicros(event.ts);
  if (event.wall > 0) {
    out << R"(,"ph":"X","dur":)" << ToMicros(event.wall);
  } else {
    out << R"(,"ph":"i","s":"t")";
  }
  out << R"(,"args":{"charged_us":)" << ToMicros(event.charged) << R"(,"arg0":)"
      << event.arg0 << R"(,"arg1":)" << event.arg1 << "}}";
}

}  // namespace

void FlightRecorder::WriteChromeTrace(std::ostream& out) const {
  out << "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[\n";
  bool first = true;
  // Phase slices on their own track (tid 0), spanning mark → next mark.
  for (size_t i = 0; i < phases_.size(); ++i) {
    const SimTime begin = phases_[i].at;
    const SimTime end = i + 1 < phases_.size()
                            ? phases_[i + 1].at
                            : std::max(begin, buffer_[(next_ + buffer_.size() - 1) %
                                                      buffer_.size()]
                                                  .ts);
    if (!first) {
      out << ",\n";
    }
    first = false;
    out << R"(  {"name":")" << phases_[i].name
        << R"(","cat":"phase","ph":"X","pid":1,"tid":0,"ts":)" << ToMicros(begin)
        << R"(,"dur":)" << ToMicros(end - begin) << "}";
  }
  for (const TraceEvent& event : Snapshot()) {
    if (event.type == TraceEventType::kPhase) {
      continue;  // already emitted as slices
    }
    WriteJsonEvent(out, event, &first);
  }
  out << "\n]}\n";
}

bool FlightRecorder::WriteChromeTraceFile(const std::string& path) const {
  std::ofstream out(path);
  if (!out) {
    return false;
  }
  WriteChromeTrace(out);
  return static_cast<bool>(out);
}

Table FlightRecorder::PhaseBreakdown() const {
  struct Bin {
    std::string name;
    SimTime begin;
    uint64_t events = 0;
    uint64_t syscalls = 0;
    uint64_t scans = 0;
    uint64_t signals = 0;
    uint64_t mode_switches = 0;
    uint64_t faults = 0;
    SimDuration charged = 0;
  };
  std::vector<Bin> bins;
  bins.push_back({"(pre)", INT64_MIN});
  for (const PhaseMark& mark : phases_) {
    bins.push_back({mark.name, mark.at});
  }

  for (const TraceEvent& event : Snapshot()) {
    if (event.type == TraceEventType::kPhase) {
      continue;
    }
    size_t bin = 0;
    for (size_t i = bins.size(); i-- > 0;) {
      if (event.ts >= bins[i].begin) {
        bin = i;
        break;
      }
    }
    Bin& b = bins[bin];
    ++b.events;
    b.charged += event.charged;
    switch (event.type) {
      case TraceEventType::kSyscall:
        ++b.syscalls;
        break;
      case TraceEventType::kScan:
        ++b.scans;
        break;
      case TraceEventType::kSignal:
        ++b.signals;
        break;
      case TraceEventType::kModeSwitch:
        ++b.mode_switches;
        break;
      case TraceEventType::kFault:
        ++b.faults;
        break;
      case TraceEventType::kPhase:
        break;
    }
  }

  Table table({"phase", "events", "syscalls", "scans", "signals", "mode_switches",
               "faults", "charged_ms"});
  for (const Bin& b : bins) {
    if (b.begin == INT64_MIN && b.events == 0) {
      continue;  // nothing before the first mark
    }
    std::ostringstream charged;
    charged.precision(3);
    charged << std::fixed << ToMillis(b.charged);
    table.AddRow({b.name, std::to_string(b.events), std::to_string(b.syscalls),
                  std::to_string(b.scans), std::to_string(b.signals),
                  std::to_string(b.mode_switches), std::to_string(b.faults),
                  charged.str()});
  }
  return table;
}

}  // namespace scio
