// TimeAttribution: the per-category virtual-CPU time ledger.
//
// SimKernel adds every nanosecond it charges (process-context work and paid
// interrupt debt alike) to exactly one category, so the hard invariant
//
//     Sum() == SimKernel::busy_time()
//
// holds at every instant of a run. Debt absorbed by idle time while the
// process is blocked is never attributed, exactly as it is never added to
// busy_time(). The ledger is plain array arithmetic — it is always on and
// costs one add per charge, so enabling tracing cannot perturb determinism.

#ifndef SRC_TRACE_TIME_ATTRIBUTION_H_
#define SRC_TRACE_TIME_ATTRIBUTION_H_

#include <array>
#include <string>
#include <utility>
#include <vector>

#include "src/sim/time.h"
#include "src/trace/charge_category.h"

namespace scio {

class TimeAttribution {
 public:
  void Add(ChargeCat cat, SimDuration d) { ns_[static_cast<size_t>(cat)] += d; }

  SimDuration operator[](ChargeCat cat) const { return ns_[static_cast<size_t>(cat)]; }

  // Total attributed time; equals SimKernel::busy_time() by construction.
  SimDuration Sum() const {
    SimDuration sum = 0;
    for (SimDuration d : ns_) {
      sum += d;
    }
    return sum;
  }

  bool operator==(const TimeAttribution&) const = default;

  // All categories in declaration order, as (name, nanoseconds) pairs.
  std::vector<std::pair<std::string, SimDuration>> ToRows() const;

  // Stable machine-readable digest (name=ns;...) for determinism signatures.
  std::string Signature() const;

 private:
  std::array<SimDuration, kChargeCatCount> ns_{};
};

}  // namespace scio

#endif  // SRC_TRACE_TIME_ATTRIBUTION_H_
