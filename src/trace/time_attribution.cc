#include "src/trace/time_attribution.h"

#include <sstream>

namespace scio {

std::vector<std::pair<std::string, SimDuration>> TimeAttribution::ToRows() const {
  std::vector<std::pair<std::string, SimDuration>> rows;
  rows.reserve(kChargeCatCount);
  for (size_t i = 0; i < kChargeCatCount; ++i) {
    rows.emplace_back(ChargeCatName(static_cast<ChargeCat>(i)), ns_[i]);
  }
  return rows;
}

std::string TimeAttribution::Signature() const {
  std::ostringstream out;
  for (size_t i = 0; i < kChargeCatCount; ++i) {
    out << ChargeCatName(static_cast<ChargeCat>(i)) << '=' << ns_[i] << ';';
  }
  return out.str();
}

}  // namespace scio
