// Simulated time representation.
//
// All simulated clocks in scio count integer nanoseconds from the start of a
// run. Nanosecond resolution matters because the cost model charges sub-
// microsecond amounts (e.g. 50 ns per pollfd copied in); with int64_t ticks a
// run can still span ~292 years of simulated time before overflow.

#ifndef SRC_SIM_TIME_H_
#define SRC_SIM_TIME_H_

#include <cstdint>

namespace scio {

// A point in simulated time, in nanoseconds since the simulation epoch.
using SimTime = int64_t;

// A span of simulated time, in nanoseconds.
using SimDuration = int64_t;

// Sentinel meaning "never": later than any reachable simulation time.
inline constexpr SimTime kSimTimeNever = INT64_MAX;

constexpr SimDuration Nanos(int64_t n) { return n; }
constexpr SimDuration Micros(int64_t us) { return us * 1000; }
constexpr SimDuration Millis(int64_t ms) { return ms * 1000 * 1000; }
constexpr SimDuration Seconds(int64_t s) { return s * 1000 * 1000 * 1000; }

// Fractional constructors, for cost-model entries expressed in microseconds.
constexpr SimDuration MicrosF(double us) { return static_cast<SimDuration>(us * 1e3); }
constexpr SimDuration MillisF(double ms) { return static_cast<SimDuration>(ms * 1e6); }
constexpr SimDuration SecondsF(double s) { return static_cast<SimDuration>(s * 1e9); }

constexpr double ToMicros(SimDuration d) { return static_cast<double>(d) / 1e3; }
constexpr double ToMillis(SimDuration d) { return static_cast<double>(d) / 1e6; }
constexpr double ToSeconds(SimDuration d) { return static_cast<double>(d) / 1e9; }

}  // namespace scio

#endif  // SRC_SIM_TIME_H_
