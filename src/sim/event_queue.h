// Pending-event scheduler for the discrete-event simulator.
//
// Events are (time, sequence, callback) triples ordered by time, with the
// insertion sequence number breaking ties so that same-time events run in
// schedule order — a requirement for deterministic replays. That ordering
// contract is identical to the original priority-queue engine; only the
// mechanics changed.
//
// Implementation: a hierarchical timer wheel (Varghese/Lauck; the same shape
// as the Linux kernel's timer wheel) backed by a slab of pooled event nodes.
//
//   - kLevels levels of 64 slots each; level l has a granularity of 64^l
//     nanosecond ticks, so the wheel spans 64^kLevels ns (> 1000 years of
//     simulated time) before the farthest-slot clamp engages.
//   - Scheduling appends an intrusive node to one slot: O(1), no allocation
//     once the slab has warmed up. Callbacks live inline in the node
//     (EventCallback), so the steady state performs zero heap traffic.
//   - Advancing cascades far slots toward level 0 using per-level occupancy
//     bitmaps to jump straight to the next occupied slot — no tick-at-a-time
//     stepping, which matters because simulated time moves in irregular
//     nanosecond leaps.
//   - When the earliest slot reaches level 0 its events all share one exact
//     tick; they are drained into a scratch buffer and sorted by sequence
//     number, which restores global FIFO order for same-time events even
//     when some of them cascaded down from far levels.
//   - Slot lists are singly linked and push-front: scheduling touches only
//     the new node and the slot-head array, never another (cold) node. The
//     resulting arbitrary intra-slot order is harmless because the due-buffer
//     sort is what establishes firing order.
//   - Cancellation is an index + generation counter: EventHandle stays
//     copyable and trivially destructible, Cancel() after the event fired
//     (or on an empty handle, or twice) is a safe no-op, and freed nodes are
//     recycled through a free list. Cancelled nodes are unlinked lazily, when
//     the wheel next visits their slot (same discipline the old engine used
//     for its heap).
//
// Lifetime: handles weakly reference the queue by pointer, so a handle must
// not be cancelled/queried after its EventQueue is destroyed. Every holder
// in the tree (client timers) dies before the Simulator, which is always
// declared first.

#ifndef SRC_SIM_EVENT_QUEUE_H_
#define SRC_SIM_EVENT_QUEUE_H_

#include <cstddef>
#include <cstdint>
#include <memory>
#include <vector>

#include "src/sim/event_callback.h"
#include "src/sim/time.h"

namespace scio {

class EventQueue;

// Handle to a scheduled event; allows cancellation. Copyable and cheap.
// A default-constructed handle refers to nothing and Cancel() is a no-op.
class EventHandle {
 public:
  EventHandle() = default;

  // Prevent the event from firing. Safe to call multiple times, after the
  // event has fired, or on an empty handle.
  void Cancel();

  // True if the event is still scheduled (not fired, not cancelled).
  bool pending() const;

 private:
  friend class EventQueue;
  EventHandle(EventQueue* queue, uint32_t index, uint32_t gen)
      : queue_(queue), index_(index), gen_(gen) {}

  EventQueue* queue_ = nullptr;
  uint32_t index_ = 0;
  uint32_t gen_ = 0;
};

class EventQueue {
 public:
  using Callback = EventCallback;

  EventQueue();
  EventQueue(const EventQueue&) = delete;
  EventQueue& operator=(const EventQueue&) = delete;
  ~EventQueue();

  // Schedule `cb` at absolute time `when`. Returns a cancellation handle.
  // `when` earlier than every already-executed event is clamped forward so
  // the new event simply fires next.
  EventHandle Schedule(SimTime when, Callback cb);

  bool empty() const { return live_count_ == 0; }

  // Number of scheduled (non-cancelled, non-fired) events.
  size_t size() const { return live_count_; }

  // Time of the earliest live event; kSimTimeNever when empty.
  SimTime NextTime();

  // Pop and run the earliest live event. Returns false if the queue is empty.
  bool RunNext();

  // Drop every pending event without running it. Callbacks (and anything they
  // own, e.g. sockets captured by in-flight packet deliveries) are destroyed
  // here, so call this while the objects they reference are still alive.
  // Pooled nodes are retained for reuse.
  void Clear();

  // Total events ever executed; useful for progress accounting in tests.
  uint64_t executed_count() const { return executed_count_; }

  // Pool introspection (benchmarks assert the zero-alloc steady state).
  size_t pool_capacity() const { return chunks_.size() * kChunkSize; }

  // Bytes of pooled node + callback storage currently held.
  size_t tracked_bytes() const {
    return chunks_.size() * kChunkSize * (sizeof(Node) + sizeof(EventCallback));
  }

  // Byte-accounting hook: called with the signed delta whenever the pool
  // grows (and with -tracked_bytes() when the hook is swapped out). A plain
  // function pointer, not MemLedger, so scio_sim stays below scio_trace in
  // the library graph; SimKernel registers a thunk into its ledger.
  using MemHook = void (*)(void* ctx, long delta_bytes);
  void set_mem_hook(MemHook hook, void* ctx) {
    if (mem_hook_ != nullptr) {
      mem_hook_(mem_ctx_, -static_cast<long>(tracked_bytes()));
    }
    mem_hook_ = hook;
    mem_ctx_ = ctx;
    if (mem_hook_ != nullptr) {
      mem_hook_(mem_ctx_, static_cast<long>(tracked_bytes()));
    }
  }

 private:
  friend class EventHandle;

  static constexpr int kLevelBits = 6;
  static constexpr int kSlotsPerLevel = 1 << kLevelBits;         // 64
  static constexpr int kLevels = 10;                             // spans 2^60 ns
  static constexpr uint32_t kNil = UINT32_MAX;
  static constexpr size_t kChunkSize = 1024;                     // nodes per slab chunk

  enum class NodeState : uint8_t { kFree, kInSlot, kInDue };

  // Hot routing metadata only — exactly 32 bytes, two per cache line. The
  // callback lives in a parallel array (cb_chunks_): cascades re-route nodes
  // many times but only Schedule and RunNext ever touch the callback, so
  // keeping it out of Node shrinks the cascade working set ~4.5x.
  struct Node {
    SimTime when = 0;
    uint64_t seq = 0;
    uint32_t gen = 0;         // bumped every time the node is freed
    uint32_t next = kNil;     // slot chain link; doubles as the free-list link
    NodeState state = NodeState::kFree;
    bool cancelled = false;   // lazily reaped when the slot is next visited
  };
  static_assert(sizeof(Node) == 32, "keep the hot node at half a cache line");

  Node& node(uint32_t idx) { return chunks_[idx / kChunkSize][idx % kChunkSize]; }
  const Node& node(uint32_t idx) const { return chunks_[idx / kChunkSize][idx % kChunkSize]; }
  EventCallback& cb(uint32_t idx) { return cb_chunks_[idx / kChunkSize][idx % kChunkSize]; }

  uint32_t AllocNode();
  void FreeNode(uint32_t idx);  // destroys the callback, bumps the generation

  // Place a node into the wheel according to its `when` and current_tick_.
  void Route(uint32_t idx);
  void PushSlot(int level, int index, uint32_t idx);

  // Detach a whole slot list (returns the head; bitmap bit cleared).
  uint32_t DetachSlot(int level, int index);

  // Find the occupied slot with the smallest lower-bound time. Returns false
  // when the wheel is empty. Ties prefer higher levels so far slots cascade
  // before a same-time level-0 slot drains (required for seq ordering).
  bool FindNextSlot(int* level, int* index, SimTime* lower_bound) const;

  // Move every node of slot (level, index) down the wheel after advancing
  // current_tick_ to the slot's lower bound.
  void Cascade(int level, int index);

  // Pull every event with time == current_tick_ out of its level-0 slot into
  // the due buffer, sorted by sequence number.
  void CollectDue();

  // Re-insert unfired due-buffer events into the wheel (rollback path: a new
  // event was scheduled earlier than the buffered tick).
  void FlushDueIntoWheel();

  bool DueBufferActive() const { return due_pos_ < due_.size(); }

  void CancelAt(uint32_t idx, uint32_t gen);
  bool PendingAt(uint32_t idx, uint32_t gen) const;

  // --- storage -----------------------------------------------------------------
  std::vector<std::unique_ptr<Node[]>> chunks_;
  std::vector<std::unique_ptr<EventCallback[]>> cb_chunks_;  // parallel to chunks_
  uint32_t free_head_ = kNil;

  uint32_t slot_head_[kLevels * kSlotsPerLevel];
  uint64_t occupied_[kLevels] = {};

  // Earliest-tick drain buffer: node indices, sorted by seq, consumed by
  // RunNext. Persistent capacity.
  std::vector<uint32_t> due_;
  size_t due_pos_ = 0;
  SimTime due_tick_ = 0;

  SimTime current_tick_ = 0;  // wheel origin; <= every live event's time
  uint64_t next_seq_ = 0;
  size_t live_count_ = 0;
  uint64_t executed_count_ = 0;
  MemHook mem_hook_ = nullptr;
  void* mem_ctx_ = nullptr;
};

}  // namespace scio

#endif  // SRC_SIM_EVENT_QUEUE_H_
