// Pending-event priority queue for the discrete-event simulator.
//
// Events are (time, sequence, callback) triples ordered by time, with the
// insertion sequence number breaking ties so that same-time events run in
// schedule order — a requirement for deterministic replays.

#ifndef SRC_SIM_EVENT_QUEUE_H_
#define SRC_SIM_EVENT_QUEUE_H_

#include <cstdint>
#include <functional>
#include <memory>
#include <queue>
#include <vector>

#include "src/sim/time.h"

namespace scio {

// Handle to a scheduled event; allows cancellation. Copyable and cheap.
// A default-constructed handle refers to nothing and Cancel() is a no-op.
class EventHandle {
 public:
  EventHandle() = default;

  // Prevent the event from firing. Safe to call multiple times, after the
  // event has fired, or on an empty handle.
  void Cancel();

  // True if the event is still scheduled (not fired, not cancelled).
  bool pending() const;

 private:
  friend class EventQueue;
  struct State {
    bool cancelled = false;
    bool fired = false;
  };
  explicit EventHandle(std::shared_ptr<State> state) : state_(std::move(state)) {}
  std::shared_ptr<State> state_;
};

class EventQueue {
 public:
  using Callback = std::function<void()>;

  // Schedule `cb` at absolute time `when`. Returns a cancellation handle.
  EventHandle Schedule(SimTime when, Callback cb);

  bool empty() const { return live_count_ == 0; }

  // Number of scheduled (non-cancelled, non-fired) events.
  size_t size() const { return live_count_; }

  // Time of the earliest live event; kSimTimeNever when empty.
  SimTime NextTime();

  // Pop and run the earliest live event. Returns false if the queue is empty.
  bool RunNext();

  // Drop every pending event without running it. Callbacks (and anything they
  // own, e.g. sockets captured by in-flight packet deliveries) are destroyed
  // here, so call this while the objects they reference are still alive.
  void Clear();

  // Total events ever executed; useful for progress accounting in tests.
  uint64_t executed_count() const { return executed_count_; }

 private:
  struct Entry {
    SimTime when;
    uint64_t seq;
    Callback cb;
    std::shared_ptr<EventHandle::State> state;
  };
  struct Later {
    bool operator()(const Entry& a, const Entry& b) const {
      if (a.when != b.when) {
        return a.when > b.when;
      }
      return a.seq > b.seq;
    }
  };

  // Drop cancelled entries from the front of the heap.
  void SkipCancelled();

  std::priority_queue<Entry, std::vector<Entry>, Later> heap_;
  uint64_t next_seq_ = 0;
  size_t live_count_ = 0;
  uint64_t executed_count_ = 0;
};

}  // namespace scio

#endif  // SRC_SIM_EVENT_QUEUE_H_
