// Deterministic random number generation for simulations.
//
// Benchmarks must be exactly reproducible from a seed, so we carry our own
// generator (xoshiro256**) instead of relying on std:: distributions, whose
// output is implementation-defined.

#ifndef SRC_SIM_RNG_H_
#define SRC_SIM_RNG_H_

#include <cstdint>

#include "src/sim/time.h"

namespace scio {

// xoshiro256** 1.0 by Blackman & Vigna (public domain reference algorithm),
// seeded through SplitMix64 so that any 64-bit seed yields a good state.
class Rng {
 public:
  explicit Rng(uint64_t seed = 0x9e3779b97f4a7c15ull);

  // Uniform bits.
  uint64_t NextU64();

  // Uniform in [0, 1).
  double NextDouble();

  // Uniform integer in [lo, hi] inclusive. Requires lo <= hi.
  int64_t UniformInt(int64_t lo, int64_t hi);

  // Uniform real in [lo, hi).
  double UniformReal(double lo, double hi);

  // Exponential with the given mean (> 0). Used for Poisson arrival gaps.
  double Exponential(double mean);

  // Bounded Pareto on [lo, hi] with shape alpha; used for heavy-tailed
  // document-size workloads (an extension beyond the paper's fixed 6 KB).
  double BoundedPareto(double alpha, double lo, double hi);

  // True with probability p (clamped to [0,1]).
  bool Bernoulli(double p);

  // Derive an independent stream (for per-component generators).
  Rng Fork();

 private:
  uint64_t s_[4];
};

}  // namespace scio

#endif  // SRC_SIM_RNG_H_
