#include "src/sim/event_queue.h"

#include <algorithm>
#include <bit>
#include <cassert>
#include <utility>

namespace scio {

namespace {
inline void Prefetch(const void* p) {
#if defined(__GNUC__) || defined(__clang__)
  __builtin_prefetch(p);
#else
  (void)p;
#endif
}
}  // namespace

void EventHandle::Cancel() {
  if (queue_ != nullptr) {
    queue_->CancelAt(index_, gen_);
  }
}

bool EventHandle::pending() const {
  return queue_ != nullptr && queue_->PendingAt(index_, gen_);
}

EventQueue::EventQueue() {
  std::fill(std::begin(slot_head_), std::end(slot_head_), kNil);
}

EventQueue::~EventQueue() = default;

uint32_t EventQueue::AllocNode() {
  if (free_head_ == kNil) {
    const uint32_t base = static_cast<uint32_t>(chunks_.size() * kChunkSize);
    chunks_.push_back(std::make_unique<Node[]>(kChunkSize));
    cb_chunks_.push_back(std::make_unique<EventCallback[]>(kChunkSize));
    if (mem_hook_ != nullptr) {
      mem_hook_(mem_ctx_,
                static_cast<long>(kChunkSize * (sizeof(Node) + sizeof(EventCallback))));
    }
    // Thread the fresh chunk onto the free list, lowest index on top.
    for (size_t i = kChunkSize; i > 0; --i) {
      Node& n = chunks_.back()[i - 1];
      n.next = free_head_;
      free_head_ = base + static_cast<uint32_t>(i - 1);
    }
  }
  const uint32_t idx = free_head_;
  free_head_ = node(idx).next;
  return idx;
}

void EventQueue::FreeNode(uint32_t idx) {
  Node& n = node(idx);
  cb(idx).Reset();
  ++n.gen;  // invalidate every outstanding handle to the old event
  n.state = NodeState::kFree;
  n.cancelled = false;
  n.next = free_head_;
  free_head_ = idx;
}

void EventQueue::PushSlot(int level, int index, uint32_t idx) {
  // Push-front: touches only the new node (warm) and the slot-head array.
  const int s = level * kSlotsPerLevel + index;
  Node& n = node(idx);
  n.state = NodeState::kInSlot;
  n.next = slot_head_[s];
  slot_head_[s] = idx;
  occupied_[level] |= uint64_t{1} << index;
}

uint32_t EventQueue::DetachSlot(int level, int index) {
  const int s = level * kSlotsPerLevel + index;
  const uint32_t head = slot_head_[s];
  slot_head_[s] = kNil;
  occupied_[level] &= ~(uint64_t{1} << index);
  return head;
}

void EventQueue::Route(uint32_t idx) {
  Node& n = node(idx);
  assert(n.when >= current_tick_ && "live events never precede the wheel origin");
  const uint64_t when = static_cast<uint64_t>(n.when);
  const uint64_t cur = static_cast<uint64_t>(current_tick_);
  const uint64_t delta = when - cur;
  int level = delta == 0 ? 0 : (63 - std::countl_zero(delta)) / kLevelBits;
  if (level >= kLevels) {
    level = kLevels - 1;
  }
  // A level's 64 slots only disambiguate times within one rotation of the
  // cursor; if the delta straddles a rotation boundary, bump up a level.
  while (level < kLevels - 1 &&
         (when >> (level * kLevelBits)) - (cur >> (level * kLevelBits)) >=
             static_cast<uint64_t>(kSlotsPerLevel)) {
    ++level;
  }
  const int shift = level * kLevelBits;
  int index;
  if ((when >> shift) - (cur >> shift) >= static_cast<uint64_t>(kSlotsPerLevel)) {
    // Beyond even the top level's horizon (> 64^kLevels ns out): park in the
    // farthest slot; each visit of that slot re-routes the node closer.
    index = static_cast<int>(((cur >> shift) + (kSlotsPerLevel - 1)) &
                             (kSlotsPerLevel - 1));
  } else {
    index = static_cast<int>((when >> shift) & (kSlotsPerLevel - 1));
  }
  PushSlot(level, index, idx);
}

EventHandle EventQueue::Schedule(SimTime when, Callback cb) {
  if (when < 0) {
    when = 0;
  }
  if (when < current_tick_) {
    // The wheel origin overshot (NextTime resolves the next tick eagerly,
    // and the clock owner may sit before it). Roll the origin back so the
    // new event still fires in exact time order.
    if (DueBufferActive()) {
      FlushDueIntoWheel();
    }
    due_.clear();
    due_pos_ = 0;
    current_tick_ = when;
  }
  const uint32_t idx = AllocNode();
  Node& n = node(idx);
  n.when = when;
  n.seq = next_seq_++;
  n.cancelled = false;
  this->cb(idx) = std::move(cb);
  Route(idx);
  ++live_count_;
  return EventHandle(this, idx, n.gen);
}

void EventQueue::CancelAt(uint32_t idx, uint32_t gen) {
  Node& n = node(idx);
  if (n.gen != gen || n.cancelled) {
    return;  // already fired, cancelled, or the node was recycled
  }
  // Lazy unlink: the node stays chained (and its callback alive) until the
  // wheel next visits its slot or the due buffer reaches it.
  n.cancelled = true;
  --live_count_;
}

bool EventQueue::PendingAt(uint32_t idx, uint32_t gen) const {
  const Node& n = node(idx);
  return n.gen == gen && !n.cancelled;
}

void EventQueue::FlushDueIntoWheel() {
  for (size_t i = due_pos_; i < due_.size(); ++i) {
    const uint32_t idx = due_[i];
    if (node(idx).cancelled) {
      FreeNode(idx);  // live_count_ already dropped at Cancel time
    } else {
      Route(idx);
    }
  }
  due_.clear();
  due_pos_ = 0;
}

void EventQueue::CollectDue() {
  const int index = static_cast<int>(current_tick_ & (kSlotsPerLevel - 1));
  uint32_t it = DetachSlot(0, index);
  due_.clear();
  due_pos_ = 0;
  while (it != kNil) {
    const uint32_t next = node(it).next;
    if (next != kNil) {
      Prefetch(&node(next));
    }
    Node& n = node(it);
    if (n.cancelled) {
      FreeNode(it);  // live_count_ already dropped at Cancel time
    } else if (n.when == current_tick_) {
      n.state = NodeState::kInDue;
      due_.push_back(it);
    } else {
      // Residue collision (possible after an origin rollback): send the node
      // to its true position so the slot no longer misleads the search.
      Route(it);
    }
    it = next;
  }
  // Same-time events fire in schedule order no matter which wheel level they
  // arrived from — this sort is what makes the wheel replay-identical to the
  // old (time, seq) priority queue.
  if (due_.size() > 1) {
    std::sort(due_.begin(), due_.end(),
              [this](uint32_t a, uint32_t b) { return node(a).seq < node(b).seq; });
  }
  due_tick_ = current_tick_;
}

bool EventQueue::FindNextSlot(int* level, int* index, SimTime* lower_bound) const {
  SimTime best = kSimTimeNever;
  bool found = false;
  const uint64_t cur = static_cast<uint64_t>(current_tick_);
  for (int l = 0; l < kLevels; ++l) {
    const uint64_t occ = occupied_[l];
    if (occ == 0) {
      continue;
    }
    const int shift = l * kLevelBits;
    const uint64_t pos = cur >> shift;
    const int cursor = static_cast<int>(pos & (kSlotsPerLevel - 1));
    uint64_t cand_pos;
    int idx;
    if (const uint64_t ahead = occ >> cursor; ahead != 0) {
      const int off = std::countr_zero(ahead);
      idx = cursor + off;
      cand_pos = pos + static_cast<uint64_t>(off);
    } else {
      // Occupied slots before the cursor belong to the next rotation.
      idx = std::countr_zero(occ);
      cand_pos = pos - static_cast<uint64_t>(cursor) +
                 static_cast<uint64_t>(kSlotsPerLevel + idx);
    }
    const uint64_t t64 = cand_pos << shift;
    SimTime t = t64 > static_cast<uint64_t>(kSimTimeNever) ? kSimTimeNever
                                                           : static_cast<SimTime>(t64);
    if (t < current_tick_) {
      t = current_tick_;  // cursor slot of a coarse level: lower bound is "now"
    }
    // `<=`: on ties a higher level wins, so far slots cascade down before the
    // level-0 slot drains — required for same-time seq ordering.
    if (!found || t <= best) {
      best = t;
      *level = l;
      *index = idx;
      found = true;
    }
  }
  *lower_bound = best;
  return found;
}

void EventQueue::Cascade(int level, int index) {
  uint32_t it = DetachSlot(level, index);
  while (it != kNil) {
    const uint32_t next = node(it).next;
    if (next != kNil) {
      Prefetch(&node(next));  // chain nodes are scattered across the slab
    }
    if (node(it).cancelled) {
      FreeNode(it);
    } else {
      Route(it);
    }
    it = next;
  }
}

SimTime EventQueue::NextTime() {
  // Drop cancelled events parked at the head of the due buffer.
  while (DueBufferActive() && node(due_[due_pos_]).cancelled) {
    FreeNode(due_[due_pos_]);
    ++due_pos_;
  }
  if (DueBufferActive()) {
    return due_tick_;
  }
  due_.clear();
  due_pos_ = 0;
  if (live_count_ == 0) {
    return kSimTimeNever;
  }
  while (true) {
    int level = 0;
    int index = 0;
    SimTime lower_bound = kSimTimeNever;
    if (!FindNextSlot(&level, &index, &lower_bound)) {
      return kSimTimeNever;  // unreachable while live_count_ > 0
    }
    current_tick_ = lower_bound;
    if (level == 0) {
      CollectDue();
      if (DueBufferActive()) {
        return due_tick_;
      }
      // The slot only held residue-colliding future nodes; they have been
      // re-routed, so the search now makes progress.
    } else {
      Cascade(level, index);
    }
  }
}

bool EventQueue::RunNext() {
  if (NextTime() == kSimTimeNever) {
    return false;
  }
  // NextTime() leaves a live event at the head of the due buffer.
  const uint32_t idx = due_[due_pos_++];
  EventCallback callback = std::move(cb(idx));
  --live_count_;
  ++executed_count_;
  FreeNode(idx);  // before the callback runs: Cancel/pending from inside it
                  // see a consistent "already fired" state
  callback();
  return true;
}

void EventQueue::Clear() {
  for (size_t i = due_pos_; i < due_.size(); ++i) {
    FreeNode(due_[i]);
  }
  due_.clear();
  due_pos_ = 0;
  for (int l = 0; l < kLevels; ++l) {
    uint64_t occ = occupied_[l];
    while (occ != 0) {
      const int index = std::countr_zero(occ);
      occ &= occ - 1;
      uint32_t it = DetachSlot(l, index);
      while (it != kNil) {
        const uint32_t next = node(it).next;
        FreeNode(it);
        it = next;
      }
    }
  }
  live_count_ = 0;
}

}  // namespace scio
