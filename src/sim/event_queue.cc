#include "src/sim/event_queue.h"

#include <utility>

namespace scio {

void EventHandle::Cancel() {
  if (state_ && !state_->fired) {
    state_->cancelled = true;
  }
}

bool EventHandle::pending() const { return state_ && !state_->fired && !state_->cancelled; }

EventHandle EventQueue::Schedule(SimTime when, Callback cb) {
  auto state = std::make_shared<EventHandle::State>();
  heap_.push(Entry{when, next_seq_++, std::move(cb), state});
  ++live_count_;
  return EventHandle(std::move(state));
}

void EventQueue::SkipCancelled() {
  while (!heap_.empty() && heap_.top().state->cancelled) {
    heap_.pop();
    --live_count_;
  }
}

void EventQueue::Clear() {
  while (!heap_.empty()) {
    heap_.pop();
  }
  live_count_ = 0;
}

SimTime EventQueue::NextTime() {
  SkipCancelled();
  return heap_.empty() ? kSimTimeNever : heap_.top().when;
}

bool EventQueue::RunNext() {
  SkipCancelled();
  if (heap_.empty()) {
    return false;
  }
  // Move the entry out before running: the callback may schedule new events.
  Entry entry = std::move(const_cast<Entry&>(heap_.top()));
  heap_.pop();
  --live_count_;
  entry.state->fired = true;
  ++executed_count_;
  entry.cb();
  return true;
}

}  // namespace scio
