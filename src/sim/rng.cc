#include "src/sim/rng.h"

#include <cmath>

namespace scio {

namespace {

uint64_t SplitMix64(uint64_t& x) {
  x += 0x9e3779b97f4a7c15ull;
  uint64_t z = x;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
  return z ^ (z >> 31);
}

uint64_t Rotl(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }

}  // namespace

Rng::Rng(uint64_t seed) {
  uint64_t sm = seed;
  for (auto& s : s_) {
    s = SplitMix64(sm);
  }
}

uint64_t Rng::NextU64() {
  const uint64_t result = Rotl(s_[1] * 5, 7) * 9;
  const uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = Rotl(s_[3], 45);
  return result;
}

double Rng::NextDouble() {
  // 53 high bits -> uniform double in [0,1).
  return static_cast<double>(NextU64() >> 11) * 0x1.0p-53;
}

int64_t Rng::UniformInt(int64_t lo, int64_t hi) {
  const uint64_t span = static_cast<uint64_t>(hi - lo) + 1;
  if (span == 0) {
    return static_cast<int64_t>(NextU64());  // full 64-bit range requested
  }
  // Rejection sampling to remove modulo bias.
  const uint64_t limit = UINT64_MAX - UINT64_MAX % span;
  uint64_t v = NextU64();
  while (v >= limit) {
    v = NextU64();
  }
  return lo + static_cast<int64_t>(v % span);
}

double Rng::UniformReal(double lo, double hi) { return lo + (hi - lo) * NextDouble(); }

double Rng::Exponential(double mean) {
  double u = NextDouble();
  // Avoid log(0).
  if (u <= 0.0) {
    u = 0x1.0p-53;
  }
  return -mean * std::log(u);
}

double Rng::BoundedPareto(double alpha, double lo, double hi) {
  const double u = NextDouble();
  const double la = std::pow(lo, alpha);
  const double ha = std::pow(hi, alpha);
  return std::pow(-(u * ha - u * la - ha) / (ha * la), -1.0 / alpha);
}

bool Rng::Bernoulli(double p) {
  if (p <= 0.0) {
    return false;
  }
  if (p >= 1.0) {
    return true;
  }
  return NextDouble() < p;
}

Rng Rng::Fork() { return Rng(NextU64()); }

}  // namespace scio
