// FuncRef: a non-owning, allocation-free callable reference.
//
// Used where a callback is invoked strictly within the callee's dynamic
// extent (e.g. Simulator::StepUntil's stop predicate, called thousands of
// times per blocking syscall). Unlike std::function it never allocates and
// never copies the callable — it is two words: an object pointer and an
// invoke thunk. The referenced callable must outlive the call, which a
// function argument temporary always does.

#ifndef SRC_SIM_FUNC_REF_H_
#define SRC_SIM_FUNC_REF_H_

#include <type_traits>
#include <utility>

namespace scio {

template <typename Sig>
class FuncRef;

template <typename R, typename... Args>
class FuncRef<R(Args...)> {
 public:
  template <typename F,
            typename = std::enable_if_t<
                !std::is_same_v<std::decay_t<F>, FuncRef> &&
                std::is_invocable_r_v<R, std::decay_t<F>&, Args...>>>
  FuncRef(F&& f)  // NOLINT(google-explicit-constructor)
      : obj_(const_cast<void*>(static_cast<const void*>(std::addressof(f)))),
        invoke_([](void* obj, Args... args) -> R {
          return (*static_cast<std::decay_t<F>*>(obj))(std::forward<Args>(args)...);
        }) {}

  R operator()(Args... args) const { return invoke_(obj_, std::forward<Args>(args)...); }

 private:
  void* obj_;
  R (*invoke_)(void*, Args...);
};

}  // namespace scio

#endif  // SRC_SIM_FUNC_REF_H_
