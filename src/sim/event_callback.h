// EventCallback: the event engine's callable type.
//
// A move-only, type-erased `void()` callable with a fixed-size inline buffer.
// Callables that fit (every hot-path lambda in the simulator: packet
// deliveries capture two weak_ptrs plus a small chunk, timers capture a
// pointer and an index) are stored in place — scheduling an event performs no
// heap allocation. Larger callables fall back to a single heap cell, so the
// type stays fully general.
//
// This replaces std::function on the Schedule() hot path, where the
// std::function control block plus the shared_ptr cancellation state used to
// account for two allocations per scheduled event.

#ifndef SRC_SIM_EVENT_CALLBACK_H_
#define SRC_SIM_EVENT_CALLBACK_H_

#include <cstddef>
#include <new>
#include <type_traits>
#include <utility>

namespace scio {

class EventCallback {
 public:
  // Sized to hold the largest hot-path capture (socket delivery lambdas:
  // two weak_ptrs + a Chunk + a count ≈ 88 bytes) without heap fallback.
  static constexpr size_t kInlineCapacity = 96;

  EventCallback() = default;

  template <typename F,
            typename = std::enable_if_t<
                !std::is_same_v<std::decay_t<F>, EventCallback> &&
                std::is_invocable_r_v<void, std::decay_t<F>&>>>
  EventCallback(F&& f) {  // NOLINT(google-explicit-constructor)
    using Fn = std::decay_t<F>;
    if constexpr (sizeof(Fn) <= kInlineCapacity &&
                  alignof(Fn) <= alignof(std::max_align_t) &&
                  std::is_nothrow_move_constructible_v<Fn>) {
      ::new (static_cast<void*>(storage_)) Fn(std::forward<F>(f));
      ops_ = InlineOps<Fn>();
    } else {
      *reinterpret_cast<Fn**>(storage_) = new Fn(std::forward<F>(f));
      ops_ = HeapOps<Fn>();
    }
  }

  EventCallback(EventCallback&& other) noexcept { MoveFrom(other); }

  EventCallback& operator=(EventCallback&& other) noexcept {
    if (this != &other) {
      Reset();
      MoveFrom(other);
    }
    return *this;
  }

  EventCallback(const EventCallback&) = delete;
  EventCallback& operator=(const EventCallback&) = delete;

  ~EventCallback() { Reset(); }

  void operator()() { ops_->invoke(storage_); }

  explicit operator bool() const { return ops_ != nullptr; }

  // Destroy the held callable (if any) and return to the empty state.
  void Reset() {
    if (ops_ != nullptr) {
      ops_->destroy(storage_);
      ops_ = nullptr;
    }
  }

 private:
  struct Ops {
    void (*invoke)(void*);
    void (*relocate)(void* dst, void* src);  // move-construct dst, destroy src
    void (*destroy)(void*);
  };

  template <typename Fn>
  static const Ops* InlineOps() {
    static constexpr Ops ops = {
        [](void* p) { (*std::launder(reinterpret_cast<Fn*>(p)))(); },
        [](void* dst, void* src) {
          Fn* from = std::launder(reinterpret_cast<Fn*>(src));
          ::new (dst) Fn(std::move(*from));
          from->~Fn();
        },
        [](void* p) { std::launder(reinterpret_cast<Fn*>(p))->~Fn(); },
    };
    return &ops;
  }

  template <typename Fn>
  static const Ops* HeapOps() {
    static constexpr Ops ops = {
        [](void* p) { (**reinterpret_cast<Fn**>(p))(); },
        [](void* dst, void* src) {
          *reinterpret_cast<Fn**>(dst) = *reinterpret_cast<Fn**>(src);
        },
        [](void* p) { delete *reinterpret_cast<Fn**>(p); },
    };
    return &ops;
  }

  void MoveFrom(EventCallback& other) {
    ops_ = other.ops_;
    if (ops_ != nullptr) {
      ops_->relocate(storage_, other.storage_);
      other.ops_ = nullptr;
    }
  }

  alignas(std::max_align_t) unsigned char storage_[kInlineCapacity];
  const Ops* ops_ = nullptr;
};

}  // namespace scio

#endif  // SRC_SIM_EVENT_CALLBACK_H_
