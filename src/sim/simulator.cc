#include "src/sim/simulator.h"

namespace scio {

bool Simulator::StepUntil(FuncRef<bool()> stop, SimTime deadline) {
  while (true) {
    if (stop()) {
      return true;
    }
    const SimTime next = queue_.NextTime();
    if (next > deadline) {
      if (deadline != kSimTimeNever && deadline > now_) {
        now_ = deadline;
      }
      return stop();
    }
    if (next > now_) {
      now_ = next;
    }
    queue_.RunNext();
  }
}

void Simulator::AdvanceTo(SimTime target) {
  while (queue_.NextTime() <= target) {
    const SimTime next = queue_.NextTime();
    if (next > now_) {
      now_ = next;
    }
    queue_.RunNext();
  }
  if (target > now_) {
    now_ = target;
  }
}

uint64_t Simulator::RunAll(uint64_t limit) {
  uint64_t n = 0;
  while (n < limit && !queue_.empty()) {
    const SimTime next = queue_.NextTime();
    if (next == kSimTimeNever) {
      break;
    }
    if (next > now_) {
      now_ = next;
    }
    if (!queue_.RunNext()) {
      break;
    }
    ++n;
  }
  return n;
}

}  // namespace scio
