// The discrete-event simulator: a virtual clock plus an event queue.
//
// The simulator is single-threaded and cooperative. Server code runs *inside*
// blocking syscalls: when the simulated kernel needs to wait for an event, it
// calls StepUntil(), which executes pending events (packet arrivals, client
// timers, ...) until a wake condition is met or a deadline passes. When server
// code consumes virtual CPU, the kernel calls AdvanceTo(), which executes any
// events that fall inside the busy window before moving the clock forward —
// so network activity correctly overlaps server computation.

#ifndef SRC_SIM_SIMULATOR_H_
#define SRC_SIM_SIMULATOR_H_

#include <utility>

#include "src/sim/event_queue.h"
#include "src/sim/func_ref.h"
#include "src/sim/time.h"

namespace scio {

class Simulator {
 public:
  Simulator() = default;
  Simulator(const Simulator&) = delete;
  Simulator& operator=(const Simulator&) = delete;

  SimTime now() const { return now_; }

  // Schedule a callback at an absolute time (>= now).
  EventHandle ScheduleAt(SimTime when, EventQueue::Callback cb) {
    return queue_.Schedule(when < now_ ? now_ : when, std::move(cb));
  }

  // Schedule a callback `delay` from now.
  EventHandle ScheduleAfter(SimDuration delay, EventQueue::Callback cb) {
    return ScheduleAt(now_ + (delay < 0 ? 0 : delay), std::move(cb));
  }

  // Run events (advancing the clock) until `stop()` returns true or the clock
  // would pass `deadline`. Returns true if `stop` was satisfied, false on
  // deadline/queue exhaustion. On a deadline return, now() == deadline.
  // `stop` is a non-owning reference: it is only invoked within this call.
  bool StepUntil(FuncRef<bool()> stop, SimTime deadline);

  // Execute all events with time <= target, then set now() = target.
  void AdvanceTo(SimTime target);

  // Execute everything in the queue (bounded by `limit` events, as a runaway
  // guard). Returns the number of events executed.
  uint64_t RunAll(uint64_t limit = UINT64_MAX);

  // Drop all pending events without running them. The simulator's queue can
  // outlive the world it simulates (it is typically declared first, destroyed
  // last), and pending callbacks often own world objects — e.g. in-flight
  // packet deliveries holding sockets that release ports on destruction. Call
  // this during teardown, while the kernel and net stack are still alive.
  void DiscardPending() { queue_.Clear(); }

  uint64_t executed_count() const { return queue_.executed_count(); }
  size_t pending_count() const { return queue_.size(); }

  // Direct queue access (byte-ledger hookup, pool introspection).
  EventQueue& queue() { return queue_; }

 private:
  SimTime now_ = 0;
  EventQueue queue_;
};

}  // namespace scio

#endif  // SRC_SIM_SIMULATOR_H_
