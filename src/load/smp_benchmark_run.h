// SmpBenchmarkRun: one point on the SMP scaling figure.
//
// The multi-worker sibling of BenchmarkRun: assembles simulator, kernel,
// network, an N-worker pool over the SMP scheduling plane, the inactive
// pool, and the httperf generator, then reduces the records plus the
// SMP-specific observables — herd wakeups per accepted connection, virtual
// context switches, and per-CPU attribution ledgers.

#ifndef SRC_LOAD_SMP_BENCHMARK_RUN_H_
#define SRC_LOAD_SMP_BENCHMARK_RUN_H_

#include <string>
#include <vector>

#include "src/kernel/cost_model.h"
#include "src/kernel/kernel_stats.h"
#include "src/load/benchmark_run.h"
#include "src/load/workload.h"
#include "src/net/net_stack.h"
#include "src/servers/worker_pool.h"
#include "src/trace/time_attribution.h"

namespace scio {

struct SmpBenchmarkConfig {
  // Only kThttpdDevPoll and kPhhttpd are meaningful worker bodies here;
  // other kinds fall back to their plain single-listener setup.
  ServerKind server = ServerKind::kThttpdDevPoll;
  ListenerMode mode = ListenerMode::kSharedWakeAll;
  int workers = 1;
  int cpus = 1;
  uint64_t seed = 0;
  int worker_max_fds = 8192;

  ActiveWorkload active;
  InactiveWorkload inactive;
  size_t document_bytes = 6 * 1024;

  // Torture knobs, mirroring BenchmarkRunConfig: empty schedules and all-off
  // filtering (the defaults) leave existing SMP benches bit-identical.
  FaultSchedule faults;
  AttackSchedule attack;
  bool filter_enabled = false;
  std::vector<FilterRule> static_rules;
  bool adaptive_defense = false;
  DefenseConfig defense;
  int filter_band_width = 1 << 16;

  SimDuration warmup = Seconds(2);
  SimDuration drain = Seconds(4);
  SimDuration sample_width = Seconds(1);

  CostModel cost;
  NetConfig net;
  ServerConfig server_config;
  ThttpdDevPollConfig devpoll_config;
  PhhttpdConfig phhttpd_config;
  size_t rt_queue_max = kDefaultRtQueueMax;
};

struct SmpBenchmarkResult {
  // Offered load / topology.
  double target_rate = 0;
  int inactive = 0;
  int workers = 0;
  int cpus = 0;
  std::string mode;

  // Reply-rate reduction, as in BenchmarkResult.
  double reply_avg = 0;
  double reply_min = 0;
  double reply_max = 0;
  double reply_stddev = 0;
  uint64_t attempts = 0;
  uint64_t successes = 0;
  uint64_t errors = 0;
  uint64_t pending = 0;
  double error_pct = 0;
  double median_conn_ms = 0;
  double p90_conn_ms = 0;
  std::vector<double> reply_series;

  // SMP observables.
  uint64_t total_accepted = 0;
  // Process wakes triggered by listener SYN notifications; the herd metric.
  uint64_t listener_syn_wakeups = 0;
  double wakeups_per_accept = 0;
  uint64_t context_switches = 0;
  uint64_t exclusive_adds = 0;

  KernelStats kernel_stats;
  std::vector<ServerStats> worker_stats;
  TimeAttribution attribution;
  SimDuration busy_time = 0;
  // Per-CPU ledger sums; their total equals busy time spent under workers.
  std::vector<SimDuration> cpu_busy;
  // busy_time / (wall * cpus): >1 is impossible, ~1/cpus on one busy worker.
  double cpu_utilization = 0;

  bool setup_ok = true;

  // Ingress attack & defense observability (all zero when unused).
  FaultStats fault_stats;
  AttackStats attack_stats;
  FilterChainStats chain_stats;
  DefenseStats defense_stats;
  uint64_t syn_backlog_peak = 0;  // worst shard

  // Everything that must be bit-identical across two runs of the same seed.
  std::string signature;
};

SmpBenchmarkResult RunSmpBenchmark(const SmpBenchmarkConfig& config);

}  // namespace scio

#endif  // SRC_LOAD_SMP_BENCHMARK_RUN_H_
