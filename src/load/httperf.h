// HttperfGenerator: open-loop request generation, httperf style (§5).
//
// Connections are initiated at the target rate regardless of completions —
// that is what drives a saturated server into overload instead of politely
// backing off. Arrivals are evenly spaced with a small deterministic jitter
// (seeded) to avoid phase-locking with the server's loop.

#ifndef SRC_LOAD_HTTPERF_H_
#define SRC_LOAD_HTTPERF_H_

#include <deque>
#include <memory>
#include <vector>

#include "src/load/active_client.h"
#include "src/load/workload.h"
#include "src/sim/rng.h"

namespace scio {

class HttperfGenerator {
 public:
  HttperfGenerator(NetStack* net, std::shared_ptr<SimListener> listener,
                   ActiveWorkload workload);

  // Schedule every arrival in [start_at, start_at + duration).
  void Start(SimTime start_at);

  // All connection records (valid after the run completes; records of
  // connections still in flight stay kPending).
  const std::deque<ConnRecord>& records() const { return records_; }
  size_t attempts() const { return records_.size(); }
  uint64_t retries() const { return retries_; }

 private:
  void Launch(ConnRecord* record);
  void MaybeRetry(ConnRecord* record, ConnOutcome outcome);

  NetStack* net_;
  std::shared_ptr<SimListener> listener_;
  ActiveWorkload workload_;
  Rng rng_;
  // Deque: push_back never invalidates the record pointers clients hold.
  std::deque<ConnRecord> records_;
  std::vector<std::unique_ptr<ActiveClient>> clients_;
  uint64_t retries_ = 0;
};

}  // namespace scio

#endif  // SRC_LOAD_HTTPERF_H_
