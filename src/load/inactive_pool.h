// InactivePool: the constant population of high-latency connections (§5).
//
// "We add client programs that do not complete an http request. To keep the
// number of high-latency clients constant, these clients reopen their
// connection if the server times them out."
//
// Each member connects and then dribbles an eternally-unfinished request one
// byte at a time (modem-grade behaviour, per the Banga/Druschel workloads
// the paper cites): the connection stays alive, occupies an interest-set
// slot, and generates a steady stream of kernel events the server must
// triage. With trickling disabled the member just sits silent until the
// server's idle timeout kills it, then reconnects.

#ifndef SRC_LOAD_INACTIVE_POOL_H_
#define SRC_LOAD_INACTIVE_POOL_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "src/load/workload.h"
#include "src/net/listener.h"
#include "src/net/net_stack.h"
#include "src/net/socket.h"
#include "src/sim/rng.h"

namespace scio {

class InactivePool {
 public:
  InactivePool(NetStack* net, std::shared_ptr<SimListener> listener,
               InactiveWorkload workload);
  ~InactivePool();

  // Open the population. Members connect immediately (staggered a little so
  // the server doesn't see one giant accept burst).
  void Start();

  // Stop reconnecting and close everything (end of run).
  void Shutdown();

  int target_population() const { return workload_.connections; }
  int connected_now() const;
  uint64_t reconnects() const { return reconnects_; }
  uint64_t trickle_bytes_sent() const { return trickle_bytes_; }

 private:
  struct Member {
    std::shared_ptr<SimSocket> socket;
    size_t next_byte = 0;  // offset into the never-ending request
    EventHandle trickle_timer;
    EventHandle reconnect_timer;
  };

  void ConnectMember(size_t idx);
  void ScheduleReconnect(size_t idx);
  void ScheduleTrickle(size_t idx);
  void SendTrickleByte(size_t idx);

  NetStack* net_;
  std::shared_ptr<SimListener> listener_;
  InactiveWorkload workload_;
  Rng rng_;
  std::string eternal_request_;  // header that never terminates
  std::vector<Member> members_;
  bool shutdown_ = false;
  uint64_t reconnects_ = 0;
  uint64_t trickle_bytes_ = 0;
};

}  // namespace scio

#endif  // SRC_LOAD_INACTIVE_POOL_H_
