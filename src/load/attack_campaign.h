// AttackCampaign: scripted, seeded ingress-attack schedules.
//
// A FaultSchedule injects *infrastructure* failures (EMFILE, link flap); an
// AttackSchedule injects *adversarial traffic*. Each wave activates one
// attack kind over a half-open window [start, end), and every timing and
// source-port decision comes from the schedule's seeded RNG, so a campaign
// replays bit-for-bit — the property that makes defense regressions
// debuggable.
//
// Wave kinds:
//  - kSynFlood: spoofed SYNs (NetStack::RawSyn) at a Poisson rate from a
//    source-port band outside the real ephemeral range. They are never ACKed,
//    so each one pins a half-open slot until the SYN timeout; once the queue
//    saturates, benign SYNs are silently dropped.
//  - kSlowloris / kAbortChurn: real connections from an AbusiveFleet (they
//    need ports and a full handshake); the campaign owns one fleet per wave.
//  - kRuleBlowup: the operator-side failure mode of filtering itself — a
//    reactive blocklist balloons with narrow per-source DROP rules that
//    benign traffic must traverse without matching. The wave front-inserts
//    `rules` junk rules into the attached chain at `start` and removes them
//    at `end`; with no chain attached the wave is inert (an unfiltered server
//    has no rule set to bloat).

#ifndef SRC_LOAD_ATTACK_CAMPAIGN_H_
#define SRC_LOAD_ATTACK_CAMPAIGN_H_

#include <cstdint>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "src/load/abusive_clients.h"
#include "src/net/listener.h"
#include "src/net/net_stack.h"
#include "src/sim/rng.h"
#include "src/sim/time.h"

namespace scio {

enum class AttackKind {
  kSynFlood,    // spoofed SYNs, never ACKed
  kSlowloris,   // real connections dribbling a request that never completes
  kAbortChurn,  // connect, then slam shut after the handshake
  kRuleBlowup,  // junk DROP rules front-inserted into the filter chain
};

const char* AttackKindName(AttackKind kind);

struct AttackWave {
  AttackKind kind = AttackKind::kSynFlood;
  // Half-open activity window [start, end) in absolute simulation time.
  SimTime start = 0;
  SimTime end = 0;
  // kSynFlood: spoofed SYNs per second; kAbortChurn: connects per second.
  double rate = 0.0;
  // kSlowloris: concurrent connections to hold.
  int population = 0;
  // kSynFlood: spoofed source-port band [src_lo, src_hi). Keep it outside the
  // real ephemeral range so the band profile separates attack from benign.
  int src_lo = 1u << 20;
  int src_hi = (1u << 20) + (1u << 16);
  // kRuleBlowup: number of junk rules to front-insert.
  int rules = 0;
  // kSlowloris pacing (see AbusiveWorkload).
  SimDuration write_interval = Millis(400);
  SimDuration reconnect_delay = Millis(800);
  // kAbortChurn dwell between connect and abort.
  SimDuration abort_after = Millis(5);
};

struct AttackSchedule {
  std::string name = "calm";
  uint64_t seed = 7;
  std::vector<AttackWave> waves;

  AttackSchedule& Add(AttackWave wave) {
    waves.push_back(wave);
    return *this;
  }
  bool empty() const { return waves.empty(); }
};

// What the campaign actually launched, for reports and determinism gates.
struct AttackStats {
  uint64_t syns_sent = 0;             // spoofed SYNs put on the wire
  uint64_t slowloris_reconnects = 0;
  uint64_t slowloris_bytes = 0;
  uint64_t aborts_completed = 0;
  uint64_t junk_rules_installed = 0;
  uint64_t junk_rules_removed = 0;

  std::vector<std::pair<std::string, uint64_t>> ToRows() const;
};

class AttackCampaign {
 public:
  AttackCampaign(NetStack* net, std::shared_ptr<SimListener> listener,
                 AttackSchedule schedule);
  ~AttackCampaign();
  AttackCampaign(const AttackCampaign&) = delete;
  AttackCampaign& operator=(const AttackCampaign&) = delete;

  // Pre-schedules every wave. Call once, before the run starts.
  void Start();

  // Stop all fleets and withdraw any junk rules still installed (end of run;
  // idempotent — waves that already ended are unaffected).
  void Shutdown();

  bool enabled() const { return !schedule_.empty(); }
  const AttackSchedule& schedule() const { return schedule_; }

  // Fleet counters are folded in lazily so stats() is accurate whether or not
  // the waves have ended.
  AttackStats stats() const;

 private:
  void ScheduleSynFlood(const AttackWave& wave);
  void ScheduleRuleBlowup(const AttackWave& wave);
  void RemoveJunkRules();

  NetStack* net_;
  std::shared_ptr<SimListener> listener_;
  AttackSchedule schedule_;
  Rng rng_;
  std::vector<std::unique_ptr<AbusiveFleet>> fleets_;
  std::vector<int> junk_rule_ids_;  // installed and not yet withdrawn
  bool shutdown_ = false;
  AttackStats stats_;
};

}  // namespace scio

#endif  // SRC_LOAD_ATTACK_CAMPAIGN_H_
