#include "src/load/active_client.h"

#include <utility>

#include "src/http/http_message.h"

namespace scio {

ActiveClient::ActiveClient(NetStack* net, std::shared_ptr<SimListener> listener,
                           std::string path, SimDuration timeout, ConnRecord* record)
    : net_(net),
      listener_(std::move(listener)),
      request_(BuildHttpRequest(path)),
      timeout_(timeout),
      record_(record) {}

ActiveClient::~ActiveClient() { timeout_timer_.Cancel(); }

void ActiveClient::Start() {
  if (record_->attempts == 0) {
    record_->start = net_->kernel()->now();
  }
  ++record_->attempts;
  socket_ = net_->Connect(listener_);
  if (socket_ == nullptr) {
    Finish(ConnOutcome::kNoPorts);
    return;
  }
  socket_->on_connected = [this] { OnConnected(); };
  socket_->on_refused = [this] { Finish(ConnOutcome::kRefused); };
  socket_->on_data = [this](size_t) { OnData(); };
  socket_->on_eof = [this] { OnEof(); };
  timeout_timer_ = net_->kernel()->sim().ScheduleAfter(timeout_, [this] {
    if (!done_) {
      Finish(ConnOutcome::kTimeout);
    }
  });
}

void ActiveClient::OnConnected() {
  if (done_) {
    return;
  }
  socket_->Write(Chunk{request_, 0});
}

void ActiveClient::OnData() {
  if (done_) {
    return;
  }
  const ReadResult r = socket_->Read(SIZE_MAX);
  const ResponseReader::State state = reader_.Feed(r.data, r.n - r.data.size());
  if (state == ResponseReader::State::kComplete) {
    Finish(reader_.status_code() == 200 ? ConnOutcome::kOk : ConnOutcome::kBadReply);
  } else if (state == ResponseReader::State::kError) {
    Finish(ConnOutcome::kBadReply);
  }
}

void ActiveClient::OnEof() {
  if (done_) {
    return;
  }
  // FIN with the response incomplete: the server (or its queue) dropped us.
  Finish(ConnOutcome::kReset);
}

void ActiveClient::Finish(ConnOutcome outcome) {
  if (done_) {
    return;
  }
  done_ = true;
  timeout_timer_.Cancel();
  record_->outcome = outcome;
  record_->end = net_->kernel()->now();
  if (socket_ != nullptr) {
    socket_->on_connected = nullptr;
    socket_->on_refused = nullptr;
    socket_->on_data = nullptr;
    socket_->on_eof = nullptr;
    socket_->Close();
  }
  if (on_done) {
    on_done(outcome);
  }
}

}  // namespace scio
