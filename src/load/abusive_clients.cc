#include "src/load/abusive_clients.h"

namespace scio {

AbusiveFleet::AbusiveFleet(NetStack* net, std::shared_ptr<SimListener> listener,
                           AbusiveWorkload workload)
    : net_(net), listener_(std::move(listener)), workload_(workload), rng_(workload.seed) {
  drip_request_ = "GET /index.html HTTP/1.0\r\nX-Slowloris-Padding: ";
  slowloris_.resize(static_cast<size_t>(workload_.slowloris_connections));
}

AbusiveFleet::~AbusiveFleet() { Shutdown(); }

void AbusiveFleet::Start(SimTime start_at, SimDuration duration) {
  Simulator& sim = net_->kernel()->sim();
  for (size_t i = 0; i < slowloris_.size(); ++i) {
    // Stagger connects over ~500ms so the attack ramps rather than bursts.
    const SimDuration delay = Nanos(rng_.UniformInt(0, Millis(500)));
    slowloris_[i].reconnect_timer = sim.ScheduleAt(
        start_at + delay, [this, i] { ConnectSlowloris(i); });
  }
  if (workload_.abort_churn_rate > 0) {
    const double gap_ns = 1e9 / workload_.abort_churn_rate;
    double clock = rng_.Exponential(gap_ns);
    while (clock < static_cast<double>(duration)) {
      sim.ScheduleAt(start_at + static_cast<SimTime>(clock),
                     [this] { LaunchAborter(); });
      clock += rng_.Exponential(gap_ns);
    }
  }
  // The attack clears when the window closes (Shutdown is idempotent, so the
  // end-of-run call is still safe).
  sim.ScheduleAt(start_at + duration, [this] { Shutdown(); });
}

void AbusiveFleet::Shutdown() {
  shutdown_ = true;
  for (Slowloris& member : slowloris_) {
    member.write_timer.Cancel();
    member.reconnect_timer.Cancel();
    if (member.socket != nullptr) {
      member.socket->on_connected = nullptr;
      member.socket->on_refused = nullptr;
      member.socket->on_eof = nullptr;
      member.socket->Close();
      member.socket = nullptr;
    }
  }
  for (std::unique_ptr<Aborter>& aborter : aborters_) {
    aborter->abort_timer.Cancel();
    if (aborter->socket != nullptr) {
      aborter->socket->on_connected = nullptr;
      aborter->socket->on_refused = nullptr;
      aborter->socket->on_eof = nullptr;
      aborter->socket->Close();
      aborter->socket = nullptr;
    }
  }
}

void AbusiveFleet::ConnectSlowloris(size_t idx) {
  if (shutdown_) {
    return;
  }
  Slowloris& member = slowloris_[idx];
  member.next_byte = 0;
  member.socket = net_->Connect(listener_);
  if (member.socket == nullptr) {
    ++slowloris_reconnects_;
    member.reconnect_timer = net_->kernel()->sim().ScheduleAfter(
        workload_.slowloris_reconnect_delay, [this, idx] { ConnectSlowloris(idx); });
    return;
  }
  member.socket->on_connected = [this, idx] {
    if (!shutdown_) {
      ScheduleSlowlorisWrite(idx);
    }
  };
  auto reopen = [this, idx] {
    // Reaped or refused: come straight back, like the real attack tool.
    Slowloris& m = slowloris_[idx];
    m.write_timer.Cancel();
    if (m.socket != nullptr) {
      // This lambda *is* the socket's on_eof/on_refused. Detach every
      // callback before Close() so no further event re-enters us, and so
      // dropping our strong reference below never destroys a std::function
      // that is still on the call stack (the dispatch sites also invoke a
      // local copy, but teardown should not lean on that alone).
      m.socket->on_connected = nullptr;
      m.socket->on_refused = nullptr;
      m.socket->on_eof = nullptr;
      m.socket->Close();
      m.socket = nullptr;
    }
    if (!shutdown_) {
      ++slowloris_reconnects_;
      m.reconnect_timer = net_->kernel()->sim().ScheduleAfter(
          workload_.slowloris_reconnect_delay, [this, idx] { ConnectSlowloris(idx); });
    }
  };
  member.socket->on_refused = reopen;
  member.socket->on_eof = reopen;
}

void AbusiveFleet::ScheduleSlowlorisWrite(size_t idx) {
  // +/-25% jitter so thousands of drips don't phase-lock into a comb.
  const auto base = static_cast<double>(workload_.slowloris_write_interval);
  const auto interval = static_cast<SimDuration>(base * rng_.UniformReal(0.75, 1.25));
  slowloris_[idx].write_timer =
      net_->kernel()->sim().ScheduleAfter(interval, [this, idx] {
        if (shutdown_) {
          return;
        }
        Slowloris& member = slowloris_[idx];
        if (member.socket == nullptr ||
            member.socket->state() != SimSocket::State::kEstablished) {
          return;
        }
        const char byte = member.next_byte < drip_request_.size()
                              ? drip_request_[member.next_byte]
                              : 'z';
        ++member.next_byte;
        member.socket->Write(Chunk{std::string(1, byte), 0});
        ++slowloris_bytes_;
        ScheduleSlowlorisWrite(idx);
      });
}

void AbusiveFleet::LaunchAborter() {
  if (shutdown_) {
    return;
  }
  aborters_.push_back(std::make_unique<Aborter>());
  Aborter* aborter = aborters_.back().get();
  aborter->socket = net_->Connect(listener_);
  if (aborter->socket == nullptr) {
    return;  // out of ports; the churn stream just thins out
  }
  aborter->socket->on_refused = [this, aborter] { FinishAborter(aborter); };
  aborter->socket->on_eof = [this, aborter] { FinishAborter(aborter); };
  aborter->socket->on_connected = [this, aborter] {
    if (shutdown_) {
      return;
    }
    aborter->abort_timer = net_->kernel()->sim().ScheduleAfter(
        workload_.abort_after, [this, aborter] {
          ++aborts_completed_;
          FinishAborter(aborter);
        });
  };
}

void AbusiveFleet::FinishAborter(Aborter* aborter) {
  aborter->abort_timer.Cancel();
  if (aborter->socket != nullptr) {
    aborter->socket->on_connected = nullptr;
    aborter->socket->on_refused = nullptr;
    aborter->socket->on_eof = nullptr;
    aborter->socket->Close();
    aborter->socket = nullptr;
  }
}

}  // namespace scio
