#include "src/load/benchmark_run.h"

#include <memory>

#include "src/load/abusive_clients.h"
#include "src/load/httperf.h"
#include "src/load/inactive_pool.h"
#include "src/metrics/percentile.h"
#include "src/metrics/rate_series.h"

namespace scio {

std::string ServerKindName(ServerKind kind) {
  switch (kind) {
    case ServerKind::kThttpdPoll:
      return "thttpd-poll";
    case ServerKind::kThttpdDevPoll:
      return "thttpd-devpoll";
    case ServerKind::kPhhttpd:
      return "phhttpd";
    case ServerKind::kHybrid:
      return "hybrid";
    case ServerKind::kThttpdEpoll:
      return "thttpd-epoll";
    case ServerKind::kThttpdEpollEt:
      return "thttpd-epoll-et";
    case ServerKind::kPhhttpdKqueue:
      return "phhttpd-kqueue";
  }
  return "unknown";
}

BenchmarkResult RunBenchmark(const BenchmarkRunConfig& config) {
  Simulator sim;
  SimKernel kernel(&sim, config.cost);
  FaultPlane fault_plane(&sim, config.faults);
  kernel.set_fault_plane(&fault_plane);
  if (config.recorder != nullptr) {
    kernel.set_recorder(config.recorder);
    fault_plane.set_recorder(config.recorder);
    config.recorder->MarkPhase("warmup", 0);
    config.recorder->MarkPhase("generate", config.warmup);
    config.recorder->MarkPhase("drain", config.warmup + config.active.duration);
  }
  NetStack net(&kernel, config.net);
  net.InstallFaultPlane(&fault_plane);
  const bool filter_on = config.filter_enabled || !config.static_rules.empty() ||
                         config.adaptive_defense;
  std::unique_ptr<IngressFilterChain> chain;
  if (filter_on) {
    chain = std::make_unique<IngressFilterChain>(&kernel, config.filter_band_width);
    net.set_filter(chain.get());
    for (const FilterRule& rule : config.static_rules) {
      chain->Append(rule);
    }
  }
  // Declared after `net`: the plane detaches its sockets and deregisters
  // from the stack before either dies on unwind.
  std::unique_ptr<TransportPlane> transport;
  if (config.transport_enabled) {
    transport = std::make_unique<TransportPlane>(&kernel, &net, config.transport);
  }
  Process& proc = kernel.CreateProcess("server", config.server_max_fds);
  proc.set_rt_queue_max(config.rt_queue_max);
  Sys sys(&kernel, &proc, &net);
  StaticContent content;
  content.AddDocument("/index.html", config.document_bytes);

  bool setup_ok = true;
  std::unique_ptr<HttpServerBase> server;
  switch (config.server) {
    case ServerKind::kThttpdPoll:
      server = std::make_unique<ThttpdPoll>(&sys, &content, config.server_config,
                                            config.poll_options);
      setup_ok = server->Setup() >= 0;
      break;
    case ServerKind::kThttpdDevPoll: {
      auto s = std::make_unique<ThttpdDevPoll>(&sys, &content, config.server_config,
                                               config.devpoll_config);
      setup_ok = s->Setup() >= 0 && s->SetupDevPoll() >= 0;
      server = std::move(s);
      break;
    }
    case ServerKind::kPhhttpd: {
      auto s = std::make_unique<Phhttpd>(&sys, &content, config.server_config,
                                         config.phhttpd_config);
      setup_ok = s->Setup() >= 0;
      if (setup_ok) {
        s->SetupSignals();
      }
      server = std::move(s);
      break;
    }
    case ServerKind::kHybrid: {
      auto s = std::make_unique<HybridServer>(&sys, &content, config.server_config,
                                              config.devpoll_config, config.hybrid_config);
      setup_ok = s->Setup() >= 0 && s->SetupDevPoll() >= 0;
      if (setup_ok) {
        s->SetupHybrid();
      }
      server = std::move(s);
      break;
    }
    case ServerKind::kThttpdEpoll:
    case ServerKind::kThttpdEpollEt: {
      ThttpdEpollConfig ep = config.epoll_config;
      ep.edge_triggered =
          config.server == ServerKind::kThttpdEpollEt || ep.edge_triggered;
      auto s = std::make_unique<ThttpdEpoll>(&sys, &content, config.server_config, ep);
      setup_ok = s->Setup() >= 0 && s->SetupEpoll() >= 0;
      server = std::move(s);
      break;
    }
    case ServerKind::kPhhttpdKqueue: {
      auto s = std::make_unique<PhhttpdKqueue>(&sys, &content, config.server_config,
                                               config.kqueue_config);
      setup_ok = s->Setup() >= 0 && s->SetupKqueue() >= 0;
      server = std::move(s);
      break;
    }
  }
  if (!setup_ok) {
    BenchmarkResult failed;
    failed.setup_ok = false;
    failed.target_rate = config.active.request_rate;
    failed.inactive = config.inactive.connections;
    failed.fault_stats = fault_plane.stats();
    return failed;
  }

  auto listener = sys.listener(server->listener_fd());
  std::unique_ptr<AdaptiveDefense> defense;
  if (config.adaptive_defense) {
    defense = std::make_unique<AdaptiveDefense>(&kernel, chain.get(), config.defense);
    defense->AddListener(listener);
    server->set_defense(defense.get());
  }
  InactivePool pool(&net, listener, config.inactive);
  HttperfGenerator generator(&net, listener, config.active);
  AbusiveFleet abusive(&net, listener, config.abusive);
  AttackCampaign attack(&net, listener, config.attack);

  attack.Start();
  pool.Start();
  if (abusive.enabled()) {
    const SimTime abusive_start = config.abusive.start_at;
    const SimDuration abusive_for =
        config.abusive.active_for > 0
            ? config.abusive.active_for
            : config.warmup + config.active.duration - abusive_start;
    abusive.Start(abusive_start, abusive_for);
  }
  generator.Start(config.warmup);
  const SimTime until = config.warmup + config.active.duration + config.drain;
  server->Run(until);
  pool.Shutdown();
  abusive.Shutdown();
  attack.Shutdown();
  kernel.RequestStop();

  // --- reduction ---------------------------------------------------------------
  BenchmarkResult result;
  result.target_rate = config.active.request_rate;
  result.inactive = config.inactive.connections;

  RateSeries replies(config.sample_width, config.active.duration + config.drain);
  PercentileTracker conn_times;
  conn_times.Reserve(generator.records().size());
  for (const ConnRecord& record : generator.records()) {
    ++result.attempts;
    switch (record.outcome) {
      case ConnOutcome::kOk:
        ++result.successes;
        replies.Add(record.end - config.warmup);
        conn_times.Add(ToMillis(record.ConnTime()));
        break;
      case ConnOutcome::kPending:
        ++result.pending;
        break;
      default:
        ++result.errors;
        break;
    }
  }
  // Only samples inside the generation window count (the drain tail would
  // drag the average down even for a perfect server).
  RateSeries window(config.sample_width, config.active.duration);
  for (const ConnRecord& record : generator.records()) {
    if (record.outcome == ConnOutcome::kOk) {
      window.Add(record.end - config.warmup);
    }
  }
  const StreamingStats rate_stats = window.Summary();
  result.reply_series = window.Rates();
  result.reply_avg = rate_stats.mean();
  result.reply_min = rate_stats.min();
  result.reply_max = rate_stats.max();
  result.reply_stddev = rate_stats.stddev();
  const uint64_t resolved = result.successes + result.errors;
  result.error_pct =
      resolved == 0 ? 0.0
                    : 100.0 * static_cast<double>(result.errors) / static_cast<double>(resolved);
  result.median_conn_ms = conn_times.Median();
  result.p90_conn_ms = conn_times.Percentile(90.0);

  result.kernel_stats = kernel.stats();
  result.server_stats = server->stats();
  result.attribution = kernel.attribution();
  result.busy_time = kernel.busy_time();
  result.cpu_utilization =
      kernel.now() == 0 ? 0.0
                        : static_cast<double>(kernel.busy_time()) / static_cast<double>(kernel.now());
  result.rt_queue_peak = proc.rt_queue_peak();
  result.inactive_reconnects = pool.reconnects();
  result.trickle_bytes = pool.trickle_bytes_sent();
  if (auto* ph = dynamic_cast<Phhttpd*>(server.get())) {
    result.phhttpd_fell_back_to_poll = ph->in_poll_fallback();
  }
  result.hybrid_mode_switches = result.server_stats.mode_switches;
  if (auto* hybrid = dynamic_cast<HybridServer*>(server.get())) {
    result.hybrid_in_signal_mode = hybrid->mode() == EventMode::kSignals;
  }
  result.fault_stats = fault_plane.stats();
  result.client_retries = generator.retries();
  result.abusive_aborts = abusive.aborts_completed();
  result.slowloris_reconnects = abusive.slowloris_reconnects();
  result.attack_stats = attack.stats();
  if (chain != nullptr) {
    result.chain_stats = chain->stats();
  }
  if (defense != nullptr) {
    result.defense_stats = defense->stats();
  }
  if (transport != nullptr) {
    result.transport_stats = transport->stats();
  }
  result.syn_backlog_peak = listener->syn_backlog_peak();

  // `sim` outlives `net` on unwind; drop undelivered events (which hold
  // sockets that release ports on destruction) while the stack is alive.
  sim.DiscardPending();
  return result;
}

}  // namespace scio
