// Workload definitions and per-connection outcome records.
//
// The paper's load (§5) has two components:
//  - an httperf-style open-loop stream of real requests at a target rate;
//  - a constant population of "inactive" high-latency connections that never
//    complete a request, and reopen if the server drops them.

#ifndef SRC_LOAD_WORKLOAD_H_
#define SRC_LOAD_WORKLOAD_H_

#include <cstdint>
#include <string>

#include "src/sim/time.h"

namespace scio {

struct ActiveWorkload {
  double request_rate = 500.0;           // connections (= requests) per second
  SimDuration duration = Seconds(10);    // generation window
  std::string path = "/index.html";
  SimDuration client_timeout = Millis(500);  // httperf --timeout equivalent
  // Poisson arrivals model the bursty, unpredictable load the paper says
  // high-latency Internet clients induce (§5); false = evenly spaced with
  // +/- arrival_jitter, like an unmodified httperf.
  bool poisson_arrivals = true;
  double arrival_jitter = 0.1;           // +/- fraction of the inter-arrival gap
  uint64_t seed = 1;
};

struct InactiveWorkload {
  int connections = 0;
  // A high-latency client dribbles its request; each trickle byte arrives at
  // this interval and keeps the connection alive (and the server busy).
  // Zero disables trickling (connections are then closed by the server's
  // idle timeout and reopened by the client, as the paper describes).
  SimDuration trickle_interval = Millis(400);
  SimDuration reconnect_delay = Millis(100);
  uint64_t seed = 2;
};

enum class ConnOutcome {
  kPending,   // still in flight when the run ended
  kOk,        // full response received
  kTimeout,   // client gave up waiting
  kRefused,   // connection refused (backlog overflow)
  kReset,     // connection closed before the response completed
  kBadReply,  // malformed or non-200 response
  kNoPorts,   // client out of ephemeral ports
};

struct ConnRecord {
  SimTime start = 0;
  SimTime end = 0;
  ConnOutcome outcome = ConnOutcome::kPending;

  // Connection time (connect -> full response), the FIG 14 metric.
  SimDuration ConnTime() const { return end - start; }
  bool IsError() const {
    return outcome != ConnOutcome::kOk && outcome != ConnOutcome::kPending;
  }
};

}  // namespace scio

#endif  // SRC_LOAD_WORKLOAD_H_
