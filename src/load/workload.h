// Workload definitions and per-connection outcome records.
//
// The paper's load (§5) has two components:
//  - an httperf-style open-loop stream of real requests at a target rate;
//  - a constant population of "inactive" high-latency connections that never
//    complete a request, and reopen if the server drops them.

#ifndef SRC_LOAD_WORKLOAD_H_
#define SRC_LOAD_WORKLOAD_H_

#include <cstdint>
#include <string>

#include "src/sim/time.h"

namespace scio {

struct ActiveWorkload {
  double request_rate = 500.0;           // connections (= requests) per second
  SimDuration duration = Seconds(10);    // generation window
  std::string path = "/index.html";
  SimDuration client_timeout = Millis(500);  // httperf --timeout equivalent
  // Poisson arrivals model the bursty, unpredictable load the paper says
  // high-latency Internet clients induce (§5); false = evenly spaced with
  // +/- arrival_jitter, like an unmodified httperf.
  bool poisson_arrivals = true;
  double arrival_jitter = 0.1;           // +/- fraction of the inter-arrival gap
  uint64_t seed = 1;
  // Real clients retry refused/timed-out/reset requests with capped
  // exponential backoff, which is exactly what prolongs an overload episode
  // after the original fault clears. 0 disables retries (the seed behaviour).
  int max_retries = 0;
  SimDuration retry_backoff = Millis(50);      // first retry delay
  SimDuration retry_backoff_cap = Millis(800); // delay never exceeds this
  // Seeded multiplicative jitter on each retry delay: the delay is scaled by
  // a uniform draw from [1 - retry_jitter, 1 + retry_jitter]. Real clients
  // jitter their backoff so a refused cohort doesn't retry in lockstep and
  // re-overload the server on a synchronized beat. 0 (the default) draws
  // nothing from the RNG, so un-jittered runs are byte-identical to builds
  // that predate the knob.
  double retry_jitter = 0.0;
};

// Pathological-client load: clients that consume server resources while
// contributing nothing. These are the "abusive" profiles the torture bench
// turns on; zero populations (the default) disable the fleet entirely.
struct AbusiveWorkload {
  // Slowloris writers: hold a connection open forever by dribbling one
  // request byte per write_interval — they pin fds and interest-set slots.
  int slowloris_connections = 0;
  SimDuration slowloris_write_interval = Millis(200);
  SimDuration slowloris_reconnect_delay = Millis(100);
  // Connect-and-abort churn: complete the handshake, then slam the
  // connection shut — the server pays accept + close for nothing.
  double abort_churn_rate = 0.0;      // connects per second
  SimDuration abort_after = Millis(5);  // dwell between connect and abort
  // Activity window, relative to run start. active_for == 0 means "until the
  // load-generation window ends"; a finite window makes the attack clear so
  // recovery can be measured.
  SimDuration start_at = 0;
  SimDuration active_for = 0;
  uint64_t seed = 3;
};

struct InactiveWorkload {
  int connections = 0;
  // A high-latency client dribbles its request; each trickle byte arrives at
  // this interval and keeps the connection alive (and the server busy).
  // Zero disables trickling (connections are then closed by the server's
  // idle timeout and reopened by the client, as the paper describes).
  SimDuration trickle_interval = Millis(400);
  SimDuration reconnect_delay = Millis(100);
  uint64_t seed = 2;
};

enum class ConnOutcome {
  kPending,   // still in flight when the run ended
  kOk,        // full response received
  kTimeout,   // client gave up waiting
  kRefused,   // connection refused (backlog overflow)
  kReset,     // connection closed before the response completed
  kBadReply,  // malformed or non-200 response
  kNoPorts,   // client out of ephemeral ports
};

struct ConnRecord {
  SimTime start = 0;
  SimTime end = 0;
  ConnOutcome outcome = ConnOutcome::kPending;
  int attempts = 0;  // connection attempts, 1 + retries taken

  // Connection time (connect -> full response), the FIG 14 metric.
  SimDuration ConnTime() const { return end - start; }
  bool IsError() const {
    return outcome != ConnOutcome::kOk && outcome != ConnOutcome::kPending;
  }
};

}  // namespace scio

#endif  // SRC_LOAD_WORKLOAD_H_
