#include "src/load/inactive_pool.h"

namespace scio {

InactivePool::InactivePool(NetStack* net, std::shared_ptr<SimListener> listener,
                           InactiveWorkload workload)
    : net_(net), listener_(std::move(listener)), workload_(workload), rng_(workload.seed) {
  eternal_request_ = "GET /index.html HTTP/1.0\r\nX-Slow-Client-Padding: ";
  members_.resize(static_cast<size_t>(workload_.connections));
}

InactivePool::~InactivePool() { Shutdown(); }

void InactivePool::Start() {
  for (size_t i = 0; i < members_.size(); ++i) {
    // Stagger initial connects across ~1s so setup doesn't arrive as one
    // giant burst (the paper establishes its inactive load before measuring).
    const SimDuration delay = Nanos(rng_.UniformInt(0, Seconds(1)));
    members_[i].reconnect_timer =
        net_->kernel()->sim().ScheduleAfter(delay, [this, i] { ConnectMember(i); });
  }
}

void InactivePool::Shutdown() {
  shutdown_ = true;
  for (Member& member : members_) {
    member.trickle_timer.Cancel();
    member.reconnect_timer.Cancel();
    if (member.socket != nullptr) {
      member.socket->on_connected = nullptr;
      member.socket->on_refused = nullptr;
      member.socket->on_eof = nullptr;
      member.socket->Close();
      member.socket = nullptr;
    }
  }
}

int InactivePool::connected_now() const {
  int n = 0;
  for (const Member& member : members_) {
    if (member.socket != nullptr &&
        member.socket->state() == SimSocket::State::kEstablished) {
      ++n;
    }
  }
  return n;
}

void InactivePool::ConnectMember(size_t idx) {
  if (shutdown_) {
    return;
  }
  Member& member = members_[idx];
  member.next_byte = 0;
  member.socket = net_->Connect(listener_);
  if (member.socket == nullptr) {
    ScheduleReconnect(idx);  // out of ports; try again later
    return;
  }
  member.socket->on_connected = [this, idx] {
    if (!shutdown_ && workload_.trickle_interval > 0) {
      ScheduleTrickle(idx);
    }
  };
  member.socket->on_refused = [this, idx] { ScheduleReconnect(idx); };
  member.socket->on_eof = [this, idx] {
    // Server timed us out or dropped us: reopen (§5).
    Member& m = members_[idx];
    m.trickle_timer.Cancel();
    if (m.socket != nullptr) {
      m.socket->Close();
      m.socket = nullptr;
    }
    ScheduleReconnect(idx);
  };
}

void InactivePool::ScheduleReconnect(size_t idx) {
  if (shutdown_) {
    return;
  }
  ++reconnects_;
  members_[idx].reconnect_timer = net_->kernel()->sim().ScheduleAfter(
      workload_.reconnect_delay, [this, idx] { ConnectMember(idx); });
}

void InactivePool::ScheduleTrickle(size_t idx) {
  // Jitter the interval +/-25% so the trickle stream isn't a phase-locked comb.
  const auto base = static_cast<double>(workload_.trickle_interval);
  const auto interval = static_cast<SimDuration>(base * rng_.UniformReal(0.75, 1.25));
  members_[idx].trickle_timer =
      net_->kernel()->sim().ScheduleAfter(interval, [this, idx] { SendTrickleByte(idx); });
}

void InactivePool::SendTrickleByte(size_t idx) {
  if (shutdown_) {
    return;
  }
  Member& member = members_[idx];
  if (member.socket == nullptr ||
      member.socket->state() != SimSocket::State::kEstablished) {
    return;
  }
  const char byte = member.next_byte < eternal_request_.size()
                        ? eternal_request_[member.next_byte]
                        : 'a';  // pad the header field forever
  ++member.next_byte;
  member.socket->Write(Chunk{std::string(1, byte), 0});
  ++trickle_bytes_;
  ScheduleTrickle(idx);
}

}  // namespace scio
