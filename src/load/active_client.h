// One httperf connection: connect, send GET, await the full response.
//
// Entirely event-driven on the simulated client host (whose CPU is free —
// the paper's 4-way Xeon client is never the bottleneck). The outcome lands
// in the ConnRecord owned by the generator.

#ifndef SRC_LOAD_ACTIVE_CLIENT_H_
#define SRC_LOAD_ACTIVE_CLIENT_H_

#include <functional>
#include <memory>
#include <string>

#include "src/http/response_reader.h"
#include "src/load/workload.h"
#include "src/net/listener.h"
#include "src/net/net_stack.h"
#include "src/net/socket.h"

namespace scio {

class ActiveClient {
 public:
  ActiveClient(NetStack* net, std::shared_ptr<SimListener> listener, std::string path,
               SimDuration timeout, ConnRecord* record);
  ActiveClient(const ActiveClient&) = delete;
  ActiveClient& operator=(const ActiveClient&) = delete;
  ~ActiveClient();

  // Initiate the connection; fills the record immediately on kNoPorts.
  // Counts one attempt; the record's start time is set on the first attempt
  // only, so ConnTime spans retries.
  void Start();

  bool done() const { return done_; }

  // Invoked once, after the outcome is recorded; the generator uses it to
  // decide whether to retry this record on a fresh connection.
  std::function<void(ConnOutcome)> on_done;

 private:
  void Finish(ConnOutcome outcome);
  void OnConnected();
  void OnData();
  void OnEof();

  NetStack* net_;
  std::shared_ptr<SimListener> listener_;
  std::string request_;
  SimDuration timeout_;
  ConnRecord* record_;

  std::shared_ptr<SimSocket> socket_;
  ResponseReader reader_;
  EventHandle timeout_timer_;
  bool done_ = false;
};

}  // namespace scio

#endif  // SRC_LOAD_ACTIVE_CLIENT_H_
