// BenchmarkRun: one point on a paper figure.
//
// Assembles the whole testbed — simulator, kernel, network, server process,
// inactive pool, httperf generator — runs it, and reduces the records to the
// quantities the paper plots: average/min/max/stddev reply rate over
// periodic samples (FIGS 4-9, 11-13), error percentage (FIG 10), and median
// connection time (FIG 14).

#ifndef SRC_LOAD_BENCHMARK_RUN_H_
#define SRC_LOAD_BENCHMARK_RUN_H_

#include <string>
#include <vector>

#include "src/fault/fault_plane.h"
#include "src/kernel/cost_model.h"
#include "src/kernel/kernel_stats.h"
#include "src/load/attack_campaign.h"
#include "src/load/workload.h"
#include "src/net/filter_chain.h"
#include "src/net/net_stack.h"
#include "src/servers/defense.h"
#include "src/servers/hybrid_server.h"
#include "src/servers/phhttpd.h"
#include "src/servers/phhttpd_kqueue.h"
#include "src/servers/thttpd_devpoll.h"
#include "src/servers/thttpd_epoll.h"
#include "src/servers/thttpd_poll.h"
#include "src/trace/flight_recorder.h"
#include "src/trace/time_attribution.h"
#include "src/transport/transport_plane.h"

namespace scio {

enum class ServerKind {
  kThttpdPoll,
  kThttpdDevPoll,
  kPhhttpd,
  kHybrid,
  kThttpdEpoll,    // epoll-style successor core, level-triggered
  kThttpdEpollEt,  // same server, edge-triggered interests
  kPhhttpdKqueue,  // kqueue-style filter core, EV_CLEAR knotes
};

std::string ServerKindName(ServerKind kind);

struct BenchmarkRunConfig {
  ServerKind server = ServerKind::kThttpdPoll;
  ActiveWorkload active;
  InactiveWorkload inactive;
  // Torture-run knobs: an empty schedule and zero abusive populations (the
  // defaults) leave the happy-path benches bit-identical to before.
  FaultSchedule faults;
  AbusiveWorkload abusive;
  // Scripted ingress attacks; an empty schedule (the default) launches none.
  AttackSchedule attack;
  // Ingress filtering and defense. Installing static rules or enabling the
  // adaptive defense implies a chain; filter_enabled alone attaches an empty
  // chain (pure hook cost). All off (the defaults) leaves the ingress path
  // untouched and every existing bench bit-identical.
  bool filter_enabled = false;
  std::vector<FilterRule> static_rules;
  bool adaptive_defense = false;
  DefenseConfig defense;
  int filter_band_width = 1 << 16;
  int server_max_fds = 8192;

  // Opt-in transport plane (src/transport): per-connection TCP with real
  // segmentation, SACK loss recovery, and a selectable congestion-control
  // stack. Off (the default) keeps every socket on the legacy reliable-pipe
  // model and every existing bench bit-identical.
  bool transport_enabled = false;
  TransportConfig transport;

  // Size of the served document. The paper uses a 6 KB index.html (§5);
  // larger documents keep sockets active longer and exercise partial writes.
  size_t document_bytes = 6 * 1024;

  SimDuration warmup = Seconds(2);   // inactive pool established, server settled
  SimDuration drain = Seconds(4);    // let in-flight connections resolve
  SimDuration sample_width = Seconds(1);  // reply-rate sample buckets

  CostModel cost;
  NetConfig net;
  ServerConfig server_config;
  ThttpdDevPollConfig devpoll_config;
  PollSyscallOptions poll_options;
  PhhttpdConfig phhttpd_config;
  HybridServerConfig hybrid_config;
  ThttpdEpollConfig epoll_config;   // edge_triggered forced on for kThttpdEpollEt
  PhhttpdKqueueConfig kqueue_config;
  size_t rt_queue_max = kDefaultRtQueueMax;

  // Optional flight recorder (borrowed; must outlive the run). When set it
  // is attached to the kernel and fault plane and receives phase marks at
  // the warmup/generate/drain boundaries. Pure observer: attaching one
  // leaves every seeded run bit-identical.
  FlightRecorder* recorder = nullptr;
};

struct BenchmarkResult {
  // Offered load.
  double target_rate = 0;
  int inactive = 0;

  // Reply-rate reduction (FIGS 4-9, 11-13).
  double reply_avg = 0;
  double reply_min = 0;
  double reply_max = 0;
  double reply_stddev = 0;

  // Error accounting (FIG 10).
  uint64_t attempts = 0;
  uint64_t successes = 0;
  uint64_t errors = 0;
  uint64_t pending = 0;
  double error_pct = 0;

  // Latency (FIG 14), milliseconds.
  double median_conn_ms = 0;
  double p90_conn_ms = 0;

  // Observability.
  KernelStats kernel_stats;
  ServerStats server_stats;
  // Where every charged nanosecond of virtual CPU went, by category.
  // Invariant: attribution.Sum() == total time charged (busy time).
  TimeAttribution attribution;
  SimDuration busy_time = 0;
  uint64_t inactive_reconnects = 0;
  uint64_t trickle_bytes = 0;
  bool phhttpd_fell_back_to_poll = false;
  uint64_t hybrid_mode_switches = 0;
  double cpu_utilization = 0;
  size_t rt_queue_peak = 0;

  // Fault-plane observability (all zero on a fault-free run).
  FaultStats fault_stats;
  // Per-bucket reply rates over the generation window — the recovery-time
  // signal the torture bench reduces.
  std::vector<double> reply_series;
  uint64_t client_retries = 0;
  uint64_t abusive_aborts = 0;
  uint64_t slowloris_reconnects = 0;
  // True when the hybrid server ended the run back in RT-signal mode (i.e.
  // it recovered from its poll excursion).
  bool hybrid_in_signal_mode = false;
  // False when server setup itself failed (e.g. an open-EMFILE window active
  // at t=0); the run is skipped rather than crashed.
  bool setup_ok = true;

  // Ingress attack & defense observability (all zero when unused).
  AttackStats attack_stats;
  FilterChainStats chain_stats;
  DefenseStats defense_stats;
  uint64_t syn_backlog_peak = 0;

  // Transport-plane observability (all zero when the plane is off).
  TransportStats transport_stats;
};

BenchmarkResult RunBenchmark(const BenchmarkRunConfig& config);

}  // namespace scio

#endif  // SRC_LOAD_BENCHMARK_RUN_H_
