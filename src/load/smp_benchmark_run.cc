#include "src/load/smp_benchmark_run.h"

#include <algorithm>
#include <memory>
#include <sstream>

#include "src/load/httperf.h"
#include "src/load/inactive_pool.h"
#include "src/metrics/percentile.h"
#include "src/metrics/rate_series.h"

namespace scio {
namespace {

// Builds the per-worker server. Wake-one semantics are baked into the event
// plane options here: exclusive /dev/poll waiters for thttpd, exclusive
// poll() waiters for phhttpd's fallback path (its signal-mode wake-one is
// the listener's round-robin delivery, set by the WorkerPool).
ServerFactory MakeFactory(const SmpBenchmarkConfig& config, const StaticContent* content) {
  return [&config, content](Sys* sys, int worker_index) -> std::unique_ptr<HttpServerBase> {
    (void)worker_index;
    const bool wake_one = config.mode == ListenerMode::kSharedWakeOne;
    switch (config.server) {
      case ServerKind::kPhhttpd: {
        if (wake_one) {
          PollSyscallOptions opts;
          opts.exclusive_wait = true;
          sys->poll_syscall() = PollSyscall(&sys->kernel(), &sys->proc(), opts);
        }
        return std::make_unique<Phhttpd>(sys, content, config.server_config,
                                         config.phhttpd_config);
      }
      case ServerKind::kThttpdDevPoll:
      default: {
        ThttpdDevPollConfig dp = config.devpoll_config;
        dp.devpoll.exclusive_wait = wake_one;
        return std::make_unique<ThttpdDevPoll>(sys, content, config.server_config, dp);
      }
    }
  };
}

std::string BuildSignature(const SmpBenchmarkResult& r) {
  std::ostringstream out;
  out.precision(17);
  out << r.attempts << '|' << r.successes << '|' << r.errors << '|' << r.pending << '|'
      << r.total_accepted << '|' << r.listener_syn_wakeups << '|' << r.context_switches
      << '|' << r.exclusive_adds << '|' << r.kernel_stats.syscalls << '|';
  for (const ServerStats& s : r.worker_stats) {
    out << s.connections_accepted << ',' << s.responses_sent << ',' << s.loop_iterations
        << ';';
  }
  // Same seed must spend every nanosecond in the same place on the same CPU,
  // not just reach the same totals.
  out << r.attack_stats.syns_sent << '|' << r.chain_stats.connect_evals << '|'
      << r.chain_stats.dropped << '|' << r.chain_stats.rate_limit_drops << '|'
      << r.defense_stats.escalations << '|' << r.defense_stats.tier_peak << '|'
      << r.syn_backlog_peak << '|';
  out << r.attribution.Signature() << '|' << r.busy_time << '|';
  for (SimDuration d : r.cpu_busy) {
    out << d << ',';
  }
  out << '|';
  for (double rate : r.reply_series) {
    out << rate << ',';
  }
  return out.str();
}

}  // namespace

SmpBenchmarkResult RunSmpBenchmark(const SmpBenchmarkConfig& config) {
  Simulator sim;
  SimKernel kernel(&sim, config.cost);
  FaultPlane fault_plane(&sim, config.faults);
  kernel.set_fault_plane(&fault_plane);
  NetStack net(&kernel, config.net);
  net.InstallFaultPlane(&fault_plane);
  const bool filter_on = config.filter_enabled || !config.static_rules.empty() ||
                         config.adaptive_defense;
  std::unique_ptr<IngressFilterChain> chain;
  if (filter_on) {
    chain = std::make_unique<IngressFilterChain>(&kernel, config.filter_band_width);
    net.set_filter(chain.get());
    for (const FilterRule& rule : config.static_rules) {
      chain->Append(rule);
    }
  }
  StaticContent content;
  content.AddDocument("/index.html", config.document_bytes);

  WorkerPoolConfig pool_config;
  pool_config.workers = config.workers;
  pool_config.cpus = config.cpus;
  pool_config.mode = config.mode;
  pool_config.worker_max_fds = config.worker_max_fds;
  pool_config.seed = config.seed;
  pool_config.rt_queue_max = config.rt_queue_max;
  WorkerPool pool(&kernel, &net, pool_config, MakeFactory(config, &content));

  SmpBenchmarkResult result;
  result.target_rate = config.active.request_rate;
  result.inactive = config.inactive.connections;
  result.workers = config.workers;
  result.cpus = config.cpus;
  result.mode = ListenerModeName(config.mode);

  if (pool.Setup() < 0) {
    result.setup_ok = false;
    return result;
  }

  const std::shared_ptr<SimListener>& listener = pool.head_listener();
  // One defense spans the pool: every worker reports into it, every listener
  // shard registers with it (for sharded mode each shard has its own SYN
  // queue and cookie switch).
  std::unique_ptr<AdaptiveDefense> defense;
  if (config.adaptive_defense) {
    defense = std::make_unique<AdaptiveDefense>(&kernel, chain.get(), config.defense);
    std::vector<SimListener*> seen;
    for (int i = 0; i < pool.workers(); ++i) {
      auto shard = pool.sys(i).listener(pool.server(i).listener_fd());
      if (std::find(seen.begin(), seen.end(), shard.get()) == seen.end()) {
        seen.push_back(shard.get());
        defense->AddListener(shard);
      }
      pool.server(i).set_defense(defense.get());
    }
  }
  InactivePool inactive(&net, listener, config.inactive);
  HttperfGenerator generator(&net, listener, config.active);
  AttackCampaign attack(&net, listener, config.attack);

  attack.Start();
  inactive.Start();
  generator.Start(config.warmup);
  const SimTime until = config.warmup + config.active.duration + config.drain;
  pool.Run(until);
  inactive.Shutdown();
  attack.Shutdown();
  kernel.RequestStop();

  // --- reduction ---------------------------------------------------------------
  PercentileTracker conn_times;
  conn_times.Reserve(generator.records().size());
  RateSeries window(config.sample_width, config.active.duration);
  for (const ConnRecord& record : generator.records()) {
    ++result.attempts;
    switch (record.outcome) {
      case ConnOutcome::kOk:
        ++result.successes;
        window.Add(record.end - config.warmup);
        conn_times.Add(ToMillis(record.ConnTime()));
        break;
      case ConnOutcome::kPending:
        ++result.pending;
        break;
      default:
        ++result.errors;
        break;
    }
  }
  const StreamingStats rate_stats = window.Summary();
  result.reply_series = window.Rates();
  result.reply_avg = rate_stats.mean();
  result.reply_min = rate_stats.min();
  result.reply_max = rate_stats.max();
  result.reply_stddev = rate_stats.stddev();
  const uint64_t resolved = result.successes + result.errors;
  result.error_pct =
      resolved == 0 ? 0.0
                    : 100.0 * static_cast<double>(result.errors) / static_cast<double>(resolved);
  result.median_conn_ms = conn_times.Median();
  result.p90_conn_ms = conn_times.Percentile(90.0);

  result.kernel_stats = kernel.stats();
  for (int i = 0; i < pool.workers(); ++i) {
    result.worker_stats.push_back(pool.server(i).stats());
    result.total_accepted += pool.server(i).stats().connections_accepted;
  }
  result.listener_syn_wakeups = kernel.stats().wait_listener_syn_wakeups;
  result.wakeups_per_accept =
      result.total_accepted == 0
          ? 0.0
          : static_cast<double>(result.listener_syn_wakeups) /
                static_cast<double>(result.total_accepted);
  result.context_switches = kernel.stats().smp_context_switches;
  result.exclusive_adds = kernel.stats().wait_exclusive_adds;

  result.attribution = kernel.attribution();
  result.busy_time = kernel.busy_time();
  if (pool.scheduler() != nullptr) {
    for (int cpu = 0; cpu < pool.scheduler()->cpus(); ++cpu) {
      result.cpu_busy.push_back(pool.scheduler()->cpu_ledger(cpu).Sum());
    }
  }
  result.cpu_utilization =
      kernel.now() == 0 ? 0.0
                        : static_cast<double>(kernel.busy_time()) /
                              (static_cast<double>(kernel.now()) * config.cpus);

  result.fault_stats = fault_plane.stats();
  result.attack_stats = attack.stats();
  if (chain != nullptr) {
    result.chain_stats = chain->stats();
  }
  if (defense != nullptr) {
    result.defense_stats = defense->stats();
  }
  for (int i = 0; i < pool.workers(); ++i) {
    auto shard = pool.sys(i).listener(pool.server(i).listener_fd());
    result.syn_backlog_peak =
        std::max<uint64_t>(result.syn_backlog_peak, shard->syn_backlog_peak());
  }

  result.signature = BuildSignature(result);

  // `sim` outlives `net` on unwind; drop undelivered events (which hold
  // sockets that release ports on destruction) while the stack is alive.
  sim.DiscardPending();
  return result;
}

}  // namespace scio
