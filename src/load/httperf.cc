#include "src/load/httperf.h"

#include <algorithm>
#include <cmath>

namespace scio {

HttperfGenerator::HttperfGenerator(NetStack* net, std::shared_ptr<SimListener> listener,
                                   ActiveWorkload workload)
    : net_(net),
      listener_(std::move(listener)),
      workload_(workload),
      rng_(workload.seed) {}

void HttperfGenerator::Start(SimTime start_at) {
  const double gap_ns = 1e9 / workload_.request_rate;

  // Generate arrival offsets covering the whole window, so the offered rate
  // holds over every sample bucket regardless of the arrival process.
  std::vector<double> offsets;
  if (workload_.poisson_arrivals) {
    double clock = rng_.Exponential(gap_ns);
    while (clock < static_cast<double>(workload_.duration)) {
      offsets.push_back(clock);
      clock += rng_.Exponential(gap_ns);
    }
  } else {
    const auto total =
        static_cast<size_t>(workload_.request_rate * ToSeconds(workload_.duration));
    for (size_t i = 0; i < total; ++i) {
      const double jitter =
          workload_.arrival_jitter == 0.0
              ? 0.0
              : rng_.UniformReal(-workload_.arrival_jitter, workload_.arrival_jitter) * gap_ns;
      const double at = gap_ns * static_cast<double>(i) + jitter;
      offsets.push_back(at < 0 ? 0 : at);
    }
  }

  clients_.reserve(offsets.size());
  for (double offset : offsets) {
    records_.emplace_back();
    ConnRecord* record = &records_.back();
    net_->kernel()->sim().ScheduleAt(start_at + static_cast<SimTime>(offset),
                                     [this, record] { Launch(record); });
  }
}

void HttperfGenerator::Launch(ConnRecord* record) {
  clients_.push_back(std::make_unique<ActiveClient>(
      net_, listener_, workload_.path, workload_.client_timeout, record));
  ActiveClient* client = clients_.back().get();
  if (workload_.max_retries > 0) {
    client->on_done = [this, record](ConnOutcome outcome) { MaybeRetry(record, outcome); };
  }
  client->Start();
}

void HttperfGenerator::MaybeRetry(ConnRecord* record, ConnOutcome outcome) {
  const bool retryable = outcome == ConnOutcome::kRefused ||
                         outcome == ConnOutcome::kTimeout ||
                         outcome == ConnOutcome::kReset;
  if (!retryable || record->attempts > workload_.max_retries) {
    return;
  }
  // Capped exponential backoff: 1st retry after retry_backoff, then double.
  SimDuration delay = workload_.retry_backoff;
  for (int i = 1; i < record->attempts && delay < workload_.retry_backoff_cap; ++i) {
    delay *= 2;
  }
  delay = std::min(delay, workload_.retry_backoff_cap);
  if (workload_.retry_jitter > 0.0) {
    // Desynchronize the retry cohort. Guarded so jitter == 0 consumes no RNG
    // draw and the un-jittered schedule stays byte-identical.
    delay = static_cast<SimDuration>(
        static_cast<double>(delay) *
        rng_.UniformReal(1.0 - workload_.retry_jitter, 1.0 + workload_.retry_jitter));
  }
  ++retries_;
  record->outcome = ConnOutcome::kPending;  // the request is live again
  net_->kernel()->sim().ScheduleAfter(delay, [this, record] { Launch(record); });
}

}  // namespace scio
