#include "src/load/httperf.h"

#include <cmath>

namespace scio {

HttperfGenerator::HttperfGenerator(NetStack* net, std::shared_ptr<SimListener> listener,
                                   ActiveWorkload workload)
    : net_(net),
      listener_(std::move(listener)),
      workload_(workload),
      rng_(workload.seed) {}

void HttperfGenerator::Start(SimTime start_at) {
  const double gap_ns = 1e9 / workload_.request_rate;

  // Generate arrival offsets covering the whole window, so the offered rate
  // holds over every sample bucket regardless of the arrival process.
  std::vector<double> offsets;
  if (workload_.poisson_arrivals) {
    double clock = rng_.Exponential(gap_ns);
    while (clock < static_cast<double>(workload_.duration)) {
      offsets.push_back(clock);
      clock += rng_.Exponential(gap_ns);
    }
  } else {
    const auto total =
        static_cast<size_t>(workload_.request_rate * ToSeconds(workload_.duration));
    for (size_t i = 0; i < total; ++i) {
      const double jitter =
          workload_.arrival_jitter == 0.0
              ? 0.0
              : rng_.UniformReal(-workload_.arrival_jitter, workload_.arrival_jitter) * gap_ns;
      const double at = gap_ns * static_cast<double>(i) + jitter;
      offsets.push_back(at < 0 ? 0 : at);
    }
  }

  clients_.reserve(offsets.size());
  for (double offset : offsets) {
    records_.emplace_back();
    ConnRecord* record = &records_.back();
    net_->kernel()->sim().ScheduleAt(start_at + static_cast<SimTime>(offset),
                                     [this, record] {
                                       clients_.push_back(std::make_unique<ActiveClient>(
                                           net_, listener_, workload_.path,
                                           workload_.client_timeout, record));
                                       clients_.back()->Start();
                                     });
  }
}

}  // namespace scio
