#include "src/load/attack_campaign.h"

#include "src/net/filter_chain.h"

namespace scio {

const char* AttackKindName(AttackKind kind) {
  switch (kind) {
    case AttackKind::kSynFlood:
      return "syn_flood";
    case AttackKind::kSlowloris:
      return "slowloris";
    case AttackKind::kAbortChurn:
      return "abort_churn";
    case AttackKind::kRuleBlowup:
      return "rule_blowup";
  }
  return "invalid";
}

std::vector<std::pair<std::string, uint64_t>> AttackStats::ToRows() const {
  return {
      {"attack.syns_sent", syns_sent},
      {"attack.slowloris_reconnects", slowloris_reconnects},
      {"attack.slowloris_bytes", slowloris_bytes},
      {"attack.aborts_completed", aborts_completed},
      {"attack.junk_rules_installed", junk_rules_installed},
      {"attack.junk_rules_removed", junk_rules_removed},
  };
}

AttackCampaign::AttackCampaign(NetStack* net, std::shared_ptr<SimListener> listener,
                               AttackSchedule schedule)
    : net_(net),
      listener_(std::move(listener)),
      schedule_(std::move(schedule)),
      rng_(schedule_.seed) {}

AttackCampaign::~AttackCampaign() { Shutdown(); }

void AttackCampaign::Start() {
  // Waves are processed in schedule order and all RNG draws happen here or in
  // scheduling order, so one seed fixes the whole campaign.
  for (const AttackWave& wave : schedule_.waves) {
    switch (wave.kind) {
      case AttackKind::kSynFlood:
        ScheduleSynFlood(wave);
        break;
      case AttackKind::kSlowloris: {
        AbusiveWorkload w;
        w.slowloris_connections = wave.population;
        w.slowloris_write_interval = wave.write_interval;
        w.slowloris_reconnect_delay = wave.reconnect_delay;
        w.seed = rng_.NextU64();
        fleets_.push_back(std::make_unique<AbusiveFleet>(net_, listener_, w));
        fleets_.back()->Start(wave.start, wave.end - wave.start);
        break;
      }
      case AttackKind::kAbortChurn: {
        AbusiveWorkload w;
        w.abort_churn_rate = wave.rate;
        w.abort_after = wave.abort_after;
        w.seed = rng_.NextU64();
        fleets_.push_back(std::make_unique<AbusiveFleet>(net_, listener_, w));
        fleets_.back()->Start(wave.start, wave.end - wave.start);
        break;
      }
      case AttackKind::kRuleBlowup:
        ScheduleRuleBlowup(wave);
        break;
    }
  }
}

void AttackCampaign::ScheduleSynFlood(const AttackWave& wave) {
  if (wave.rate <= 0) {
    return;
  }
  Simulator& sim = net_->kernel()->sim();
  const double gap_ns = 1e9 / wave.rate;
  double clock = rng_.Exponential(gap_ns);
  while (clock < static_cast<double>(wave.end - wave.start)) {
    // Spoofed source drawn per SYN: the flood sprays the whole band, which is
    // what makes per-source rules useless and band aggregation necessary.
    const int src_port = static_cast<int>(rng_.UniformInt(wave.src_lo, wave.src_hi - 1));
    sim.ScheduleAt(wave.start + static_cast<SimTime>(clock), [this, src_port] {
      if (!shutdown_) {
        ++stats_.syns_sent;
        net_->RawSyn(listener_, src_port);
      }
    });
    clock += rng_.Exponential(gap_ns);
  }
}

void AttackCampaign::ScheduleRuleBlowup(const AttackWave& wave) {
  if (wave.rules <= 0) {
    return;
  }
  Simulator& sim = net_->kernel()->sim();
  const int count = wave.rules;
  sim.ScheduleAt(wave.start, [this, count] {
    IngressFilterChain* filter = net_->filter();
    if (shutdown_ || filter == nullptr) {
      return;
    }
    // Narrow dead-band DROP entries, front-inserted the way a reactive
    // blocklist prepends its newest discovery. None of them matches live
    // traffic; their entire effect is traversal cost ahead of useful rules.
    for (int i = 0; i < count; ++i) {
      FilterRule rule;
      rule.label = "junk";
      rule.src_lo = (1 << 21) + i * 64;
      rule.src_hi = rule.src_lo + 64;
      rule.verdict = FilterVerdict::kDrop;
      rule.on_connect = true;
      rule.on_packet = true;
      junk_rule_ids_.push_back(filter->InsertFront(rule));
      ++stats_.junk_rules_installed;
    }
  });
  sim.ScheduleAt(wave.end, [this] {
    if (!shutdown_) {
      RemoveJunkRules();
    }
  });
}

void AttackCampaign::RemoveJunkRules() {
  IngressFilterChain* filter = net_->filter();
  if (filter != nullptr) {
    for (int id : junk_rule_ids_) {
      if (filter->Remove(id)) {
        ++stats_.junk_rules_removed;
      }
    }
  }
  junk_rule_ids_.clear();
}

void AttackCampaign::Shutdown() {
  if (shutdown_) {
    return;
  }
  shutdown_ = true;
  for (std::unique_ptr<AbusiveFleet>& fleet : fleets_) {
    fleet->Shutdown();
  }
  RemoveJunkRules();
}

AttackStats AttackCampaign::stats() const {
  AttackStats out = stats_;
  for (const std::unique_ptr<AbusiveFleet>& fleet : fleets_) {
    out.slowloris_reconnects += fleet->slowloris_reconnects();
    out.slowloris_bytes += fleet->slowloris_bytes();
    out.aborts_completed += fleet->aborts_completed();
  }
  return out;
}

}  // namespace scio
