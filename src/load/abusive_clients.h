// AbusiveFleet: pathological client profiles for torture runs.
//
// "Scouting the Path to a Million-Client Server" observes that at scale the
// binding failures are resource exhaustion and pathological clients, not
// steady-state throughput. This fleet supplies two such profiles:
//
//  - Slowloris writers: each holds one connection open indefinitely by
//    dribbling a request that never completes, one byte per interval. Unlike
//    InactivePool members (who may go silent), a slowloris member always
//    trickles fast enough to defeat a naive idle timeout while pinning an fd
//    and an interest-set slot forever.
//
//  - Connect-and-abort churn: connections are opened at a fixed rate and
//    slammed shut moments after the handshake. The server pays accept(),
//    interest registration, and close() for every one and serves nothing.
//
// All timing decisions come from the workload's seeded RNG, so an abusive
// run is exactly reproducible.

#ifndef SRC_LOAD_ABUSIVE_CLIENTS_H_
#define SRC_LOAD_ABUSIVE_CLIENTS_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "src/load/workload.h"
#include "src/net/listener.h"
#include "src/net/net_stack.h"
#include "src/net/socket.h"
#include "src/sim/rng.h"

namespace scio {

class AbusiveFleet {
 public:
  AbusiveFleet(NetStack* net, std::shared_ptr<SimListener> listener,
               AbusiveWorkload workload);
  ~AbusiveFleet();

  // Launch the slowloris population and the abort-churn stream for
  // [start_at, start_at + duration); the whole fleet stands down (closing
  // every connection) when the window ends.
  void Start(SimTime start_at, SimDuration duration);

  // Stop all activity and close every connection (end of run).
  void Shutdown();

  bool enabled() const {
    return workload_.slowloris_connections > 0 || workload_.abort_churn_rate > 0;
  }
  uint64_t slowloris_reconnects() const { return slowloris_reconnects_; }
  uint64_t slowloris_bytes() const { return slowloris_bytes_; }
  uint64_t aborts_completed() const { return aborts_completed_; }

 private:
  struct Slowloris {
    std::shared_ptr<SimSocket> socket;
    size_t next_byte = 0;
    EventHandle write_timer;
    EventHandle reconnect_timer;
  };
  struct Aborter {
    std::shared_ptr<SimSocket> socket;
    EventHandle abort_timer;
  };

  void ConnectSlowloris(size_t idx);
  void ScheduleSlowlorisWrite(size_t idx);
  void LaunchAborter();
  void FinishAborter(Aborter* aborter);

  NetStack* net_;
  std::shared_ptr<SimListener> listener_;
  AbusiveWorkload workload_;
  Rng rng_;
  std::string drip_request_;  // request header that never terminates
  std::vector<Slowloris> slowloris_;
  std::vector<std::unique_ptr<Aborter>> aborters_;
  bool shutdown_ = false;
  uint64_t slowloris_reconnects_ = 0;
  uint64_t slowloris_bytes_ = 0;
  uint64_t aborts_completed_ = 0;
};

}  // namespace scio

#endif  // SRC_LOAD_ABUSIVE_CLIENTS_H_
