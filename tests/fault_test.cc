// Tests for the deterministic fault-injection plane: window gating, seeded
// determinism, direction filtering, and the kernel/net integration points
// (forced RT-queue shrink, /dev/poll ENOMEM, latency spikes on the wire).

#include <gtest/gtest.h>

#include "src/fault/fault_plane.h"
#include "tests/sim_world.h"

namespace scio {
namespace {

TEST(FaultPlaneTest, EmptyScheduleInjectsNothing) {
  Simulator sim;
  FaultPlane plane(&sim, FaultSchedule{});
  EXPECT_FALSE(plane.InjectAcceptEmfile());
  EXPECT_FALSE(plane.InjectOpenEmfile());
  EXPECT_FALSE(plane.InjectInterestEnomem());
  EXPECT_FALSE(plane.InjectEintr());
  EXPECT_FALSE(plane.RtQueueCap().has_value());
  const FaultPlane::TransmitFault hit = plane.OnTransmit(true);
  EXPECT_EQ(hit.extra_delay, 0);
  EXPECT_EQ(hit.hold_until, 0);
}

TEST(FaultPlaneTest, WindowIsHalfOpen) {
  Simulator sim;
  FaultSchedule schedule;
  schedule.Add({FaultKind::kAcceptEmfile, Millis(10), Millis(20), 1.0, 0,
                LinkDir::kBoth});
  FaultPlane plane(&sim, schedule);
  EXPECT_FALSE(plane.InjectAcceptEmfile()) << "before the window";
  sim.AdvanceTo(Millis(10));
  EXPECT_TRUE(plane.InjectAcceptEmfile()) << "start is inclusive";
  sim.AdvanceTo(Millis(20));
  EXPECT_FALSE(plane.InjectAcceptEmfile()) << "end is exclusive";
  EXPECT_EQ(plane.stats().accept_emfile_injected, 1u);
}

TEST(FaultPlaneTest, RtQueueCapOnlyInsideWindow) {
  Simulator sim;
  FaultSchedule schedule;
  schedule.Add({FaultKind::kRtQueueShrink, Millis(5), Millis(15), 1.0, 16,
                LinkDir::kBoth});
  FaultPlane plane(&sim, schedule);
  EXPECT_FALSE(plane.RtQueueCap().has_value());
  sim.AdvanceTo(Millis(5));
  ASSERT_TRUE(plane.RtQueueCap().has_value());
  EXPECT_EQ(*plane.RtQueueCap(), 16u);
  sim.AdvanceTo(Millis(15));
  EXPECT_FALSE(plane.RtQueueCap().has_value());
}

TEST(FaultPlaneTest, SameSeedSameDecisions) {
  Simulator sim;
  FaultSchedule schedule;
  schedule.seed = 42;
  schedule.Add({FaultKind::kEintr, 0, kSimTimeNever, 0.5, 0, LinkDir::kBoth});
  FaultPlane a(&sim, schedule);
  FaultPlane b(&sim, schedule);
  int fired = 0;
  for (int i = 0; i < 200; ++i) {
    const bool hit = a.InjectEintr();
    EXPECT_EQ(hit, b.InjectEintr()) << "draw " << i;
    fired += hit ? 1 : 0;
  }
  // p=0.5 over 200 draws: both outcomes must occur, or determinism is vacuous.
  EXPECT_GT(fired, 0);
  EXPECT_LT(fired, 200);
}

TEST(FaultPlaneTest, DirectionFilterAppliesLossOneWay) {
  Simulator sim;
  FaultSchedule schedule;
  schedule.Add({FaultKind::kPacketLoss, 0, kSimTimeNever, 1.0,
                static_cast<double>(Millis(3)), LinkDir::kToServer});
  FaultPlane plane(&sim, schedule);
  EXPECT_FALSE(plane.OnTransmit(/*toward_server=*/false).lost);
  const FaultPlane::TransmitFault hit = plane.OnTransmit(/*toward_server=*/true);
  EXPECT_TRUE(hit.lost) << "loss faults now drop the frame";
  EXPECT_EQ(hit.loss_penalty, Millis(3))
      << "legacy reliable-pipe consumers deliver late by the penalty instead";
  EXPECT_EQ(hit.extra_delay, 0);
  EXPECT_EQ(plane.stats().packets_lost, 1u);
}

TEST(FaultPlaneTest, FlapHoldsUntilWindowCloses) {
  Simulator sim;
  FaultSchedule schedule;
  schedule.Add({FaultKind::kLinkFlap, 0, Millis(10), 1.0, 0, LinkDir::kBoth});
  FaultPlane plane(&sim, schedule);
  const FaultPlane::TransmitFault hit = plane.OnTransmit(true);
  EXPECT_EQ(hit.hold_until, Millis(10)) << "held until the link comes back";
  EXPECT_EQ(plane.stats().packets_flap_held, 1u);
}

// --- integration with the kernel and the wire -------------------------------------

class FaultWorldTest : public SimWorldTest {};

TEST_F(FaultWorldTest, RtQueueShrinkShedsSignalsAndRaisesSigIo) {
  FaultSchedule schedule;
  schedule.Add({FaultKind::kRtQueueShrink, 0, kSimTimeNever, 1.0, 2,
                LinkDir::kBoth});
  FaultPlane plane(&sim_, schedule);
  kernel_.set_fault_plane(&plane);
  auto [client, fd] = EstablishedPair();
  ASSERT_EQ(sys_.ArmAsync(fd, kSigRtMin + 1), 0);
  for (int i = 0; i < 5; ++i) {
    client->Write(Chunk{"x", 0});
  }
  RunFor(Millis(10));
  EXPECT_EQ(proc_.rt_queue_length(), 2u) << "capped well below rt_queue_max";
  EXPECT_GT(plane.stats().rt_signals_shed, 0u);
  EXPECT_TRUE(proc_.sigio_pending()) << "shedding announces itself as overflow";
}

TEST_F(FaultWorldTest, InterestEnomemFailsDevPollWriteWithoutMutating) {
  const int dpfd = sys_.OpenDevPoll();
  ASSERT_GE(dpfd, 0);
  auto [client, fd] = EstablishedPair();

  FaultSchedule schedule;
  schedule.Add({FaultKind::kInterestEnomem, 0, kSimTimeNever, 1.0, 0,
                LinkDir::kBoth});
  FaultPlane plane(&sim_, schedule);
  kernel_.set_fault_plane(&plane);

  PollFd add{fd, kPollIn, 0};
  EXPECT_EQ(sys_.DevPollWrite(dpfd, {&add, 1}), kErrNoMem);
  EXPECT_EQ(plane.stats().interest_enomem_injected, 1u);

  // The failure was atomic: once the window lifts, retrying the identical
  // batch succeeds and the interest set holds exactly that one entry.
  kernel_.set_fault_plane(nullptr);
  EXPECT_GT(sys_.DevPollWrite(dpfd, {&add, 1}), 0);
  client->Write(Chunk{"x", 0});
  RunFor(Millis(5));
  std::vector<PollFd> buffer(4);
  DvPoll args;
  args.dp_fds = buffer.data();
  args.dp_nfds = static_cast<int>(buffer.size());
  args.dp_timeout = 0;
  EXPECT_EQ(sys_.DevPollPoll(dpfd, &args), 1);
  EXPECT_EQ(buffer[0].fd, fd);
}

TEST_F(FaultWorldTest, LatencySpikeDelaysDelivery) {
  auto [client, fd] = EstablishedPair();  // handshake at base latency

  FaultSchedule schedule;
  schedule.Add({FaultKind::kLatencySpike, 0, kSimTimeNever, 1.0,
                static_cast<double>(Millis(5)), LinkDir::kToServer});
  FaultPlane plane(&sim_, schedule);
  net_.InstallFaultPlane(&plane);

  client->Write(Chunk{"x", 0});
  RunFor(Millis(1));
  EXPECT_EQ(sys_.Read(fd, 100).n, 0u) << "still on the wire during the spike";
  RunFor(Millis(6));
  EXPECT_EQ(sys_.Read(fd, 100).n, 1u);
  EXPECT_GE(plane.stats().packets_spiked, 1u);
}

TEST_F(FaultWorldTest, EintrInjectionSurfacesFromPoll) {
  FaultSchedule schedule;
  schedule.Add({FaultKind::kEintr, 0, kSimTimeNever, 1.0, 0, LinkDir::kBoth});
  FaultPlane plane(&sim_, schedule);
  kernel_.set_fault_plane(&plane);
  PollFd pfd{listen_fd_, kPollIn, 0};
  EXPECT_EQ(sys_.Poll({&pfd, 1}, 50), kErrIntr);
  EXPECT_GT(plane.stats().eintr_injected, 0u);
}

// Window boundaries meeting a wait deadline exactly. Injection is consulted
// at wake time (after the blocking wait returns), so a poll whose deadline
// lands precisely on the window's open instant is interrupted, while one
// whose deadline lands precisely on the close instant times out cleanly —
// the [start, end) contract observed from inside a sleeping syscall.
TEST_F(FaultWorldTest, EintrWindowOpeningExactlyAtPollDeadlineInterrupts) {
  FaultSchedule schedule;
  schedule.Add({FaultKind::kEintr, Millis(10), Millis(20), 1.0, 0, LinkDir::kBoth});
  FaultPlane plane(&sim_, schedule);
  kernel_.set_fault_plane(&plane);
  PollFd pfd{listen_fd_, kPollIn, 0};
  // Sleeps from ~0 and wakes at its deadline, t = 10ms — the first instant
  // the window is active.
  EXPECT_EQ(sys_.Poll({&pfd, 1}, 10), kErrIntr);
  EXPECT_EQ(plane.stats().eintr_injected, 1u);
}

TEST_F(FaultWorldTest, EintrWindowClosingExactlyAtPollDeadlineTimesOut) {
  FaultSchedule schedule;
  schedule.Add({FaultKind::kEintr, 0, Millis(10), 1.0, 0, LinkDir::kBoth});
  FaultPlane plane(&sim_, schedule);
  kernel_.set_fault_plane(&plane);
  PollFd pfd{listen_fd_, kPollIn, 0};
  // The entire sleep lies inside the window, but the wake happens at t = 10ms
  // — the first instant it is NOT active (end exclusive) — so no EINTR.
  EXPECT_EQ(sys_.Poll({&pfd, 1}, 10), 0);
  EXPECT_EQ(plane.stats().eintr_injected, 0u);
}

TEST_F(FaultWorldTest, AcceptEmfileLeavesConnectionRetryable) {
  FaultSchedule schedule;
  schedule.Add({FaultKind::kAcceptEmfile, 0, Millis(10), 1.0, 0, LinkDir::kBoth});
  FaultPlane plane(&sim_, schedule);
  kernel_.set_fault_plane(&plane);
  ClientConnect();
  EXPECT_EQ(sys_.Accept(listen_fd_), kErrMFile);
  EXPECT_EQ(listener_->backlog_depth(), 1u)
      << "an injected EMFILE leaves the connection queued, unlike a real one";
  sim_.AdvanceTo(Millis(10));  // the window lifts
  EXPECT_GE(sys_.Accept(listen_fd_), 0) << "the same connection is retryable";
}

}  // namespace
}  // namespace scio
