// Tests for the simulated kernel substrate: fd table, wait queues, files,
// process RT signal queues, and time accounting.

#include <gtest/gtest.h>

#include "src/kernel/fd_table.h"
#include "src/kernel/file.h"
#include "src/kernel/process.h"
#include "src/kernel/sim_kernel.h"

namespace scio {
namespace {

// A minimal controllable file for kernel-level tests.
class FakeFile : public File {
 public:
  explicit FakeFile(SimKernel* kernel) : File(kernel) {}
  PollEvents PollMask() const override { return mask_; }
  bool SupportsPollHints() const override { return hints_; }
  void OnFdClose() override { ++close_calls_; }

  void SetMask(PollEvents mask) { mask_ = mask; }
  void set_hints(bool hints) { hints_ = hints; }
  int close_calls() const { return close_calls_; }

 private:
  PollEvents mask_ = 0;
  bool hints_ = true;
  int close_calls_ = 0;
};

struct KernelFixture : ::testing::Test {
  Simulator sim;
  SimKernel kernel{&sim};
};

// --- FdTable -------------------------------------------------------------------

TEST_F(KernelFixture, FdTableAllocatesLowestFree) {
  FdTable table(16);
  auto f0 = std::make_shared<FakeFile>(&kernel);
  auto f1 = std::make_shared<FakeFile>(&kernel);
  auto f2 = std::make_shared<FakeFile>(&kernel);
  EXPECT_EQ(table.Allocate(f0), 0);
  EXPECT_EQ(table.Allocate(f1), 1);
  EXPECT_EQ(table.Allocate(f2), 2);
  EXPECT_EQ(table.Close(1), 0);
  auto f3 = std::make_shared<FakeFile>(&kernel);
  EXPECT_EQ(table.Allocate(f3), 1) << "freed fd is reused lowest-first";
}

TEST_F(KernelFixture, FdTableRespectsLimit) {
  FdTable table(2);
  EXPECT_EQ(table.Allocate(std::make_shared<FakeFile>(&kernel)), 0);
  EXPECT_EQ(table.Allocate(std::make_shared<FakeFile>(&kernel)), 1);
  EXPECT_EQ(table.Allocate(std::make_shared<FakeFile>(&kernel)), -1) << "EMFILE";
  EXPECT_EQ(table.open_count(), 2u);
}

TEST_F(KernelFixture, FdTableCloseRunsHookOnceAndRejectsDoubleClose) {
  FdTable table(8);
  auto file = std::make_shared<FakeFile>(&kernel);
  const int fd = table.Allocate(file);
  EXPECT_EQ(table.Close(fd), 0);
  EXPECT_EQ(file->close_calls(), 1);
  EXPECT_EQ(table.Close(fd), -1) << "EBADF";
  EXPECT_EQ(table.Get(fd), nullptr);
}

TEST_F(KernelFixture, FdTableKeepsFileAliveThroughSharedPtr) {
  FdTable table(8);
  auto file = std::make_shared<FakeFile>(&kernel);
  std::weak_ptr<FakeFile> weak = file;
  const int fd = table.Allocate(file);
  file.reset();
  EXPECT_FALSE(weak.expired()) << "table holds a reference";
  table.Close(fd);
  EXPECT_TRUE(weak.expired());
}

TEST_F(KernelFixture, FdTableSetsFdNumber) {
  FdTable table(8);
  auto file = std::make_shared<FakeFile>(&kernel);
  const int fd = table.Allocate(file);
  EXPECT_EQ(file->fd_number(), fd);
}

TEST_F(KernelFixture, FdTableOpenFdsSnapshot) {
  FdTable table(8);
  table.Allocate(std::make_shared<FakeFile>(&kernel));
  table.Allocate(std::make_shared<FakeFile>(&kernel));
  table.Allocate(std::make_shared<FakeFile>(&kernel));
  table.Close(1);
  EXPECT_EQ(table.OpenFds(), (std::vector<int>{0, 2}));
}

// --- WaitQueue ---------------------------------------------------------------

TEST_F(KernelFixture, WaitQueueWakesAllRegistered) {
  WaitQueue queue;
  int wakes = 0;
  Waiter a([&] { ++wakes; });
  Waiter b([&] { ++wakes; });
  queue.Add(&a);
  queue.Add(&b);
  queue.WakeAll();
  EXPECT_EQ(wakes, 2);
}

TEST_F(KernelFixture, WaiterUnregistersOnDestruction) {
  WaitQueue queue;
  int wakes = 0;
  {
    Waiter w([&] { ++wakes; });
    queue.Add(&w);
    EXPECT_EQ(queue.size(), 1u);
  }
  EXPECT_EQ(queue.size(), 0u);
  queue.WakeAll();
  EXPECT_EQ(wakes, 0);
}

TEST_F(KernelFixture, WaitQueueRemoveIsIdempotent) {
  WaitQueue queue;
  Waiter w([] {});
  queue.Add(&w);
  queue.Remove(&w);
  queue.Remove(&w);
  EXPECT_EQ(queue.size(), 0u);
}

// --- File notification fan-out -----------------------------------------------

class RecordingListener : public StatusListener {
 public:
  void OnFileStatus(File& file, PollEvents mask) override {
    ++calls;
    last_fd = file.fd_number();
    last_mask = mask;
  }
  int calls = 0;
  int last_fd = -1;
  PollEvents last_mask = 0;
};

TEST_F(KernelFixture, NotifyStatusReachesListeners) {
  FakeFile file(&kernel);
  file.set_fd_number(7);
  RecordingListener listener;
  file.AddStatusListener(&listener);
  file.NotifyStatus(kPollIn);
  EXPECT_EQ(listener.calls, 1);
  EXPECT_EQ(listener.last_fd, 7);
  EXPECT_EQ(listener.last_mask, kPollIn);
  file.RemoveStatusListener(&listener);
  file.NotifyStatus(kPollIn);
  EXPECT_EQ(listener.calls, 1);
}

TEST_F(KernelFixture, NotifyStatusQueuesArmedSignal) {
  Process& proc = kernel.CreateProcess("p");
  FakeFile file(&kernel);
  file.set_fd_number(9);
  file.SetAsyncSignal(&proc, kSigRtMin + 2);
  file.NotifyStatus(kPollIn);
  auto si = proc.DequeueSignal();
  ASSERT_TRUE(si.has_value());
  EXPECT_EQ(si->signo, kSigRtMin + 2);
  EXPECT_EQ(si->fd, 9);
  EXPECT_EQ(si->band, kPollIn);
}

TEST_F(KernelFixture, NotifyStatusWakesPollSleepers) {
  Process& proc = kernel.CreateProcess("p");
  FakeFile file(&kernel);
  Waiter w([&] { proc.Wake(); });
  file.poll_wait().Add(&w);
  EXPECT_FALSE(proc.woken());
  file.NotifyStatus(kPollOut);
  EXPECT_TRUE(proc.woken());
}

// --- Process RT signal queue ----------------------------------------------------

TEST_F(KernelFixture, SignalsDequeueLowestSignoFirstFifoWithin) {
  Process& proc = kernel.CreateProcess("p");
  proc.QueueSignal({40, 1, kPollIn});
  proc.QueueSignal({35, 2, kPollIn});
  proc.QueueSignal({40, 3, kPollIn});
  proc.QueueSignal({35, 4, kPollIn});
  std::vector<int> fds;
  while (auto si = proc.DequeueSignal()) {
    fds.push_back(si->fd);
  }
  // All signo-35 first (in order), then all signo-40 (in order): the paper's
  // "activity on lower-numbered connections can cause longer delays for
  // higher-numbered connections".
  EXPECT_EQ(fds, (std::vector<int>{2, 4, 1, 3}));
}

TEST_F(KernelFixture, QueueOverflowRaisesSigIo) {
  Process& proc = kernel.CreateProcess("p");
  proc.set_rt_queue_max(3);
  EXPECT_TRUE(proc.QueueSignal({35, 1, kPollIn}));
  EXPECT_TRUE(proc.QueueSignal({35, 2, kPollIn}));
  EXPECT_TRUE(proc.QueueSignal({35, 3, kPollIn}));
  EXPECT_FALSE(proc.QueueSignal({35, 4, kPollIn})) << "dropped on overflow";
  EXPECT_TRUE(proc.sigio_pending());
  EXPECT_EQ(proc.rt_queue_length(), 3u);
  // SIGIO delivers before any queued RT signal (lower signal number).
  auto si = proc.DequeueSignal();
  ASSERT_TRUE(si.has_value());
  EXPECT_EQ(si->signo, kSigIo);
  EXPECT_FALSE(proc.sigio_pending());
}

TEST_F(KernelFixture, FlushClearsQueueAndSigIo) {
  Process& proc = kernel.CreateProcess("p");
  proc.set_rt_queue_max(2);
  proc.QueueSignal({35, 1, kPollIn});
  proc.QueueSignal({35, 2, kPollIn});
  proc.QueueSignal({35, 3, kPollIn});  // overflow
  EXPECT_EQ(proc.FlushRtSignals(), 2u);
  EXPECT_FALSE(proc.sigio_pending());
  EXPECT_FALSE(proc.HasPendingSignals());
}

TEST_F(KernelFixture, QueuePeakTracksHighWater) {
  Process& proc = kernel.CreateProcess("p");
  proc.QueueSignal({35, 1, kPollIn});
  proc.QueueSignal({35, 2, kPollIn});
  proc.DequeueSignal();
  proc.QueueSignal({35, 3, kPollIn});
  EXPECT_EQ(proc.rt_queue_peak(), 2u);
}

TEST_F(KernelFixture, PeekDoesNotConsume) {
  Process& proc = kernel.CreateProcess("p");
  proc.QueueSignal({35, 1, kPollIn});
  EXPECT_TRUE(proc.PeekSignal().has_value());
  EXPECT_EQ(proc.rt_queue_length(), 1u);
}

// --- time accounting -------------------------------------------------------------

TEST_F(KernelFixture, ChargeAdvancesClockAndBusyTime) {
  kernel.Charge(Micros(100), ChargeCat::kOther);
  EXPECT_EQ(kernel.now(), Micros(100));
  EXPECT_EQ(kernel.busy_time(), Micros(100));
}

TEST_F(KernelFixture, ChargeRunsEventsInsideBusyWindow) {
  bool delivered = false;
  sim.ScheduleAt(Micros(50), [&] { delivered = true; });
  kernel.Charge(Micros(100), ChargeCat::kOther);
  EXPECT_TRUE(delivered) << "packets arrive while the server computes";
}

TEST_F(KernelFixture, DebtFoldsIntoNextCharge) {
  kernel.ChargeDebt(Micros(30), ChargeCat::kOther);
  EXPECT_EQ(kernel.pending_interrupt_debt(), Micros(30));
  kernel.Charge(Micros(10), ChargeCat::kOther);
  EXPECT_EQ(kernel.now(), Micros(40));
  EXPECT_EQ(kernel.pending_interrupt_debt(), 0);
}

TEST_F(KernelFixture, CpuScaleMultipliesCharges) {
  CostModel cost;
  cost.cpu_scale = 2.0;
  SimKernel scaled(&sim, cost);
  scaled.Charge(Micros(10), ChargeCat::kOther);
  EXPECT_EQ(scaled.now(), sim.now());
  EXPECT_EQ(scaled.busy_time(), Micros(20));
}

TEST_F(KernelFixture, BlockProcessWokenByEvent) {
  Process& proc = kernel.CreateProcess("p");
  sim.ScheduleAt(Micros(40), [&] { proc.Wake(); });
  EXPECT_TRUE(kernel.BlockProcess(proc, Seconds(1)));
  EXPECT_EQ(kernel.now(), Micros(40));
  EXPECT_FALSE(proc.woken()) << "wake flag consumed";
}

TEST_F(KernelFixture, BlockProcessTimesOut) {
  Process& proc = kernel.CreateProcess("p");
  EXPECT_FALSE(kernel.BlockProcess(proc, Micros(25)));
  EXPECT_EQ(kernel.now(), Micros(25));
}

TEST_F(KernelFixture, BlockProcessAbsorbsIdleDebt) {
  Process& proc = kernel.CreateProcess("p");
  sim.ScheduleAt(Micros(10), [&] { kernel.ChargeDebt(Micros(500), ChargeCat::kOther); });
  EXPECT_FALSE(kernel.BlockProcess(proc, Micros(100))) << "nothing wakes it";
  EXPECT_EQ(kernel.pending_interrupt_debt(), 0) << "idle CPU absorbed the interrupt";
}

TEST_F(KernelFixture, StopRequestUnblocks) {
  Process& proc = kernel.CreateProcess("p");
  sim.ScheduleAt(Micros(5), [&] { kernel.RequestStop(); });
  EXPECT_FALSE(kernel.BlockProcess(proc, kSimTimeNever));
  EXPECT_TRUE(kernel.stopped());
}

TEST_F(KernelFixture, QueueRtSignalCountsOverflows) {
  Process& proc = kernel.CreateProcess("p");
  proc.set_rt_queue_max(1);
  kernel.QueueRtSignal(proc, {35, 1, kPollIn});
  kernel.QueueRtSignal(proc, {35, 2, kPollIn});
  EXPECT_EQ(kernel.stats().rt_signals_queued, 1u);
  EXPECT_EQ(kernel.stats().rt_signals_dropped, 1u);
  EXPECT_EQ(kernel.stats().rt_queue_overflows, 1u);
}

}  // namespace
}  // namespace scio
