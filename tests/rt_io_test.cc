// Tests for the POSIX RT signal I/O interface (§2): F_SETSIG arming, signal
// payloads, queue overflow + SIGIO + recovery, stale events after close, and
// the sigtimedwait4 batch extension (§6).

#include <gtest/gtest.h>

#include "src/core/hybrid_policy.h"
#include "src/http/static_content.h"
#include "src/load/httperf.h"
#include "src/servers/hybrid_server.h"
#include "src/servers/phhttpd.h"
#include "tests/sim_world.h"

namespace scio {
namespace {

constexpr int kSig = kSigRtMin + 1;

class RtIoTest : public SimWorldTest {};

TEST_F(RtIoTest, ArmOnBadFdFails) { EXPECT_EQ(sys_.ArmAsync(99, kSig), -1); }

TEST_F(RtIoTest, SignalCarriesFdAndBand) {
  ASSERT_EQ(sys_.ArmAsync(listen_fd_, kSig), 0);
  ClientConnect();
  auto si = sys_.SigWaitInfo(0);
  ASSERT_TRUE(si.has_value());
  EXPECT_EQ(si->signo, kSig);
  EXPECT_EQ(si->fd, listen_fd_);
  EXPECT_EQ(si->band & kPollIn, kPollIn)
      << "the siginfo carries the same information as a pollfd (§2)";
}

TEST_F(RtIoTest, SigWaitBlocksUntilSignal) {
  ASSERT_EQ(sys_.ArmAsync(listen_fd_, kSig), 0);
  sim_.ScheduleAt(Millis(25), [&] { net_.Connect(listener_); });
  auto si = sys_.SigWaitInfo(1000);
  ASSERT_TRUE(si.has_value());
  EXPECT_GE(kernel_.now(), Millis(25));
  EXPECT_LT(kernel_.now(), Millis(200));
}

TEST_F(RtIoTest, SigWaitTimesOut) {
  EXPECT_FALSE(sys_.SigWaitInfo(30).has_value());
  EXPECT_GE(kernel_.now(), Millis(30));
}

TEST_F(RtIoTest, EveryChunkQueuesASignal) {
  auto [client, fd] = EstablishedPair();
  ASSERT_EQ(sys_.ArmAsync(fd, kSig), 0);
  client->Write(Chunk{"a", 0});
  client->Write(Chunk{"b", 0});
  RunFor(Millis(10));
  EXPECT_EQ(proc_.rt_queue_length(), 2u)
      << "RT signals do not coalesce: one per completion event";
}

TEST_F(RtIoTest, DisarmStopsSignals) {
  auto [client, fd] = EstablishedPair();
  ASSERT_EQ(sys_.ArmAsync(fd, kSig), 0);
  ASSERT_EQ(sys_.ArmAsync(fd, 0), 0);  // disarm
  client->Write(Chunk{"a", 0});
  RunFor(Millis(10));
  EXPECT_FALSE(proc_.HasPendingSignals());
}

TEST_F(RtIoTest, StaleSignalSurvivesClose) {
  auto [client, fd] = EstablishedPair();
  ASSERT_EQ(sys_.ArmAsync(fd, kSig), 0);
  client->Write(Chunk{"a", 0});
  RunFor(Millis(10));
  ASSERT_EQ(sys_.Close(fd), 0);
  auto si = sys_.SigWaitInfo(0);
  ASSERT_TRUE(si.has_value());
  EXPECT_EQ(si->fd, fd) << "events queued before close remain on the queue (§2)";
  // The application must cope: the fd is gone.
  EXPECT_EQ(sys_.Read(si->fd, 100).n, 0u);
}

TEST_F(RtIoTest, OverflowDeliversSigIoFirstAndPollRecovers) {
  proc_.set_rt_queue_max(4);
  auto [client, fd] = EstablishedPair();
  ASSERT_EQ(sys_.ArmAsync(fd, kSig), 0);
  for (int i = 0; i < 6; ++i) {
    client->Write(Chunk{"x", 0});
  }
  RunFor(Millis(10));
  EXPECT_TRUE(proc_.sigio_pending());
  auto si = sys_.SigWaitInfo(0);
  ASSERT_TRUE(si.has_value());
  EXPECT_EQ(si->signo, kSigIo) << "SIGIO outranks queued RT signals";
  // Recovery per §2: flush, then poll() to find remaining activity.
  EXPECT_GT(sys_.FlushRtSignals(), 0u);
  EXPECT_FALSE(proc_.HasPendingSignals());
  PollFd pfd{fd, kPollIn, 0};
  EXPECT_EQ(sys_.Poll({&pfd, 1}, 0), 1);
  EXPECT_EQ(pfd.revents & kPollIn, kPollIn) << "no request is lost";
}

TEST_F(RtIoTest, SigTimedWait4DequeuesBatch) {
  auto [client, fd] = EstablishedPair();
  ASSERT_EQ(sys_.ArmAsync(fd, kSig), 0);
  for (int i = 0; i < 5; ++i) {
    client->Write(Chunk{"x", 0});
  }
  RunFor(Millis(10));
  SigInfo batch[3];
  EXPECT_EQ(sys_.SigTimedWait4(batch, 0), 3) << "caps at the buffer size";
  EXPECT_EQ(proc_.rt_queue_length(), 2u);
  SigInfo rest[8];
  EXPECT_EQ(sys_.SigTimedWait4(rest, 0), 2);
}

TEST_F(RtIoTest, SigTimedWait4BatchCostsLessThanSingles) {
  auto [client, fd] = EstablishedPair();
  ASSERT_EQ(sys_.ArmAsync(fd, kSig), 0);
  for (int i = 0; i < 16; ++i) {
    client->Write(Chunk{"x", 0});
  }
  RunFor(Millis(20));
  kernel_.Charge(Nanos(1), ChargeCat::kOther);  // flush accumulated interrupt debt
  const SimDuration busy0 = kernel_.busy_time();
  SigInfo batch[8];
  ASSERT_EQ(sys_.SigTimedWait4(batch, 0), 8);
  const SimDuration batched = kernel_.busy_time() - busy0;
  const SimDuration busy1 = kernel_.busy_time();
  for (int i = 0; i < 8; ++i) {
    ASSERT_TRUE(sys_.SigWaitInfo(0).has_value());
  }
  const SimDuration singles = kernel_.busy_time() - busy1;
  EXPECT_LT(batched, singles / 2)
      << "§6: returning several siginfo per invocation amortizes the trap";
}

TEST_F(RtIoTest, SigTimedWait4ChargesPerEntryCopyout) {
  // Pin the batch-dequeue cost shape: the trap and the FIRST siginfo's
  // copyout are flat (rt_sigwaitinfo_extra), but every entry beyond the
  // first pays the marginal dequeue PLUS its own siginfo copyout. The batch
  // amortizes the trap, not the copies.
  auto [client, fd] = EstablishedPair();
  ASSERT_EQ(sys_.ArmAsync(fd, kSig), 0);
  for (int i = 0; i < 6; ++i) {
    client->Write(Chunk{"x", 0});
  }
  RunFor(Millis(20));
  kernel_.Charge(Nanos(1), ChargeCat::kOther);  // flush accumulated interrupt debt
  const CostModel& cost = kernel_.cost();
  const SimDuration busy0 = kernel_.busy_time();
  SigInfo batch[6];
  ASSERT_EQ(sys_.SigTimedWait4(batch, 0), 6);
  const SimDuration batched = kernel_.busy_time() - busy0;
  EXPECT_EQ(batched,
            cost.syscall_entry + cost.rt_sigwaitinfo_extra +
                5 * (cost.rt_sigwait_per_extra_sig + cost.rt_siginfo_copyout))
      << "entries beyond the first each pay marginal dequeue + copyout";

  // Single-entry dequeues are untouched by the fix: trap + flat extra only.
  client->Write(Chunk{"y", 0});
  RunFor(Millis(5));
  kernel_.Charge(Nanos(1), ChargeCat::kOther);
  const SimDuration busy1 = kernel_.busy_time();
  ASSERT_EQ(sys_.SigTimedWait4({batch, 1}, 0), 1);
  EXPECT_EQ(kernel_.busy_time() - busy1, cost.syscall_entry + cost.rt_sigwaitinfo_extra);
}

TEST_F(RtIoTest, SigTimedWait4EmptyBufferReturnsZero) {
  EXPECT_EQ(sys_.SigTimedWait4({static_cast<SigInfo*>(nullptr), 0}, 0), 0);
}

TEST_F(RtIoTest, LowerSignalNumbersDequeueFirst) {
  auto [c1, fd1] = EstablishedPair();
  auto [c2, fd2] = EstablishedPair();
  ASSERT_EQ(sys_.ArmAsync(fd1, kSigRtMin + 5), 0);
  ASSERT_EQ(sys_.ArmAsync(fd2, kSigRtMin + 2), 0);
  c1->Write(Chunk{"a", 0});
  RunFor(Millis(5));
  c2->Write(Chunk{"b", 0});
  RunFor(Millis(5));
  auto first = sys_.SigWaitInfo(0);
  ASSERT_TRUE(first.has_value());
  EXPECT_EQ(first->fd, fd2) << "lower-numbered signal wins despite arriving later";
}

TEST_F(RtIoTest, StaleSignalsForClosedFdsToleratedDuringRecovery) {
  proc_.set_rt_queue_max(4);
  auto [c1, fd1] = EstablishedPair();
  auto [c2, fd2] = EstablishedPair();
  ASSERT_EQ(sys_.ArmAsync(fd1, kSig), 0);
  ASSERT_EQ(sys_.ArmAsync(fd2, kSig), 0);
  for (int i = 0; i < 3; ++i) {
    c1->Write(Chunk{"x", 0});
  }
  for (int i = 0; i < 3; ++i) {
    c2->Write(Chunk{"y", 0});
  }
  RunFor(Millis(10));
  EXPECT_TRUE(proc_.sigio_pending());
  auto si = sys_.SigWaitInfo(0);
  ASSERT_TRUE(si.has_value());
  EXPECT_EQ(si->signo, kSigIo);
  // Mid-recovery the server sheds fd1 (pressure reap); signals naming it are
  // already on the queue and must be tolerable, not fatal.
  ASSERT_EQ(sys_.Close(fd1), 0);
  SigInfo batch[8];
  const int n = sys_.SigTimedWait4(batch, 0);
  int stale = 0;
  for (int i = 0; i < n; ++i) {
    if (batch[i].fd == fd1) {
      ++stale;
      EXPECT_EQ(sys_.Read(batch[i].fd, 100).err, kErrBadF)
          << "a stale signal's fd reads as EBADF, never UB";
    }
  }
  EXPECT_GT(stale, 0);
  // The rest of the recovery still finds the live connection's data.
  // sciolint: allow(E1) -- the batch may already have drained the queue
  (void)sys_.FlushRtSignals();
  PollFd pfd{fd2, kPollIn, 0};
  EXPECT_EQ(sys_.Poll({&pfd, 1}, 0), 1);
  EXPECT_EQ(pfd.revents & kPollIn, kPollIn);
}

TEST_F(RtIoTest, SigIoWhileInPollFallbackDoesNotDoubleFallback) {
  proc_.set_rt_queue_max(8);
  StaticContent content;
  content.AddDocument("/index.html", 1024);
  PhhttpdConfig ph_config;
  ph_config.recovery = OverflowRecovery::kHandoffToPollSibling;
  Phhttpd server(&sys_, &content, ServerConfig{}, ph_config);
  server.Setup();
  server.SetupSignals();
  listener_ = sys_.listener(server.listener_fd());

  ActiveWorkload burst;
  burst.request_rate = 5000;
  burst.duration = Millis(12);
  burst.poisson_arrivals = false;

  // First burst overflows the tiny queue: one handoff to the poll sibling.
  HttperfGenerator first(&net_, listener_, burst);
  first.Start(sim_.now());
  server.Run(sim_.now() + Millis(500));
  ASSERT_TRUE(server.in_poll_fallback());
  const uint64_t switches = server.stats().mode_switches;
  EXPECT_EQ(switches, 1u);

  // Second burst while already in fallback: the sockets are still armed, so
  // the queue overflows and SIGIO fires again — but there is no sibling left
  // to hand off to, and the fallback loop must simply absorb it.
  const uint64_t overflows_before = kernel_.stats().rt_queue_overflows;
  HttperfGenerator second(&net_, listener_, burst);
  second.Start(sim_.now());
  server.Run(sim_.now() + Millis(500));
  EXPECT_GT(kernel_.stats().rt_queue_overflows, overflows_before)
      << "the second burst must actually overflow for this test to bite";
  EXPECT_TRUE(server.in_poll_fallback());
  EXPECT_EQ(server.stats().mode_switches, switches) << "no double fallback";
  int ok = 0;
  for (const ConnRecord& record : second.records()) {
    ok += record.outcome == ConnOutcome::kOk ? 1 : 0;
  }
  EXPECT_GT(ok, 0) << "still serving from poll mode";
}

TEST_F(RtIoTest, HybridReentersSignalModeExactlyOncePerOverflow) {
  // A two-entry queue: the batch dequeue cannot save it, any burst overflows.
  proc_.set_rt_queue_max(2);
  StaticContent content;
  content.AddDocument("/index.html", 1024);
  HybridServerConfig hybrid_config;
  // Disarm the proactive length watermark (queue length can never reach
  // 5 * max) so only a genuine overflow (SIGIO) can trigger the excursion —
  // that is the path under test.
  hybrid_config.policy.high_watermark = 5.0;
  hybrid_config.policy.switch_back_dwell = Millis(100);
  HybridServer server(&sys_, &content, ServerConfig{}, ThttpdDevPollConfig{},
                      hybrid_config);
  server.Setup();
  server.SetupDevPoll();
  server.SetupHybrid();
  listener_ = sys_.listener(server.listener_fd());

  // One overflow burst, then calm: the policy must make a single excursion
  // (signals -> polling at the overflow, polling -> signals after the dwell),
  // not bounce back mid-storm and re-overflow.
  ActiveWorkload burst;
  burst.request_rate = 5000;
  burst.duration = Millis(400);
  burst.poisson_arrivals = false;
  HttperfGenerator generator(&net_, listener_, burst);
  generator.Start(sim_.now());
  server.Run(sim_.now() + Seconds(3));

  EXPECT_GT(server.stats().overflow_recoveries, 0u);
  EXPECT_EQ(server.mode(), EventMode::kSignals) << "back in signal mode when calm";
  EXPECT_EQ(server.stats().mode_switches, 2u)
      << "exactly one excursion per overflow episode";
}

// --- HybridPolicy -----------------------------------------------------------------

TEST(HybridPolicyTest, SwitchesOnHighWatermark) {
  HybridPolicy policy(HybridPolicyConfig{0.5, 0.05, Millis(100)}, 100);
  EXPECT_EQ(policy.mode(), EventMode::kSignals);
  EXPECT_EQ(policy.Update(49, false, 0), EventMode::kSignals);
  EXPECT_EQ(policy.Update(50, false, 0), EventMode::kPolling);
  EXPECT_EQ(policy.switches_to_polling(), 1u);
}

TEST(HybridPolicyTest, SwitchesOnOverflowRegardlessOfLength) {
  HybridPolicy policy(HybridPolicyConfig{0.5, 0.05, Millis(100)}, 100);
  EXPECT_EQ(policy.Update(3, true, 0), EventMode::kPolling);
}

TEST(HybridPolicyTest, SwitchBackRequiresSustainedCalm) {
  HybridPolicy policy(HybridPolicyConfig{0.5, 0.05, Millis(100)}, 100);
  policy.Update(60, false, 0);  // -> polling
  EXPECT_EQ(policy.Update(2, false, Millis(10)), EventMode::kPolling) << "dwell starts";
  EXPECT_EQ(policy.Update(2, false, Millis(50)), EventMode::kPolling) << "still dwelling";
  EXPECT_EQ(policy.Update(8, false, Millis(80)), EventMode::kPolling) << "calm broken";
  EXPECT_EQ(policy.Update(2, false, Millis(100)), EventMode::kPolling) << "dwell restarts";
  EXPECT_EQ(policy.Update(2, false, Millis(210)), EventMode::kSignals)
      << "calm sustained for the dwell period";
  EXPECT_EQ(policy.switches_to_signals(), 1u);
}

TEST(HybridPolicyTest, WatermarksScaleWithQueueMax) {
  HybridPolicy policy(HybridPolicyConfig{0.25, 0.1, Millis(1)}, 1024);
  EXPECT_EQ(policy.high_watermark(), 256u);
  EXPECT_EQ(policy.low_watermark(), 102u);
}

TEST(HybridPolicyTest, QueueMaxOneDoesNotDegenerateToAlwaysPolling) {
  // Regression: high_ = size_t(0.5 * 1) truncated to 0, so `queue_len >= 0`
  // was always true and the policy left signal mode on its first update —
  // even with an empty queue — and the 0/0 watermark pair had no hysteresis
  // gap to ever dwell back through.
  HybridPolicy policy(HybridPolicyConfig{0.5, 0.05, Millis(100)}, 1);
  EXPECT_EQ(policy.high_watermark(), 1u);
  EXPECT_EQ(policy.low_watermark(), 0u);
  EXPECT_EQ(policy.Update(0, false, 0), EventMode::kSignals)
      << "an empty queue must not trigger the polling switch";
  EXPECT_EQ(policy.Update(1, false, 0), EventMode::kPolling);
  EXPECT_EQ(policy.Update(0, false, Millis(10)), EventMode::kPolling) << "dwell";
  EXPECT_EQ(policy.Update(0, false, Millis(120)), EventMode::kSignals);
  EXPECT_EQ(policy.switches_to_signals(), 1u);
}

TEST(HybridPolicyTest, SmallQueueMaxKeepsWatermarkGap) {
  HybridPolicy policy(HybridPolicyConfig{0.5, 0.05, Millis(100)}, 8);
  EXPECT_EQ(policy.high_watermark(), 4u);
  EXPECT_EQ(policy.low_watermark(), 1u)
      << "0.05*8 truncates to 0 = calm means perfectly empty; clamped to 1";
  EXPECT_LT(policy.low_watermark(), policy.high_watermark());
  EXPECT_EQ(policy.Update(3, false, 0), EventMode::kSignals);
  EXPECT_EQ(policy.Update(4, false, 0), EventMode::kPolling);
  // Calm (at most one queued signal) sustained for the dwell returns to
  // signals even if background traffic keeps the queue from ever emptying.
  EXPECT_EQ(policy.Update(1, false, Millis(10)), EventMode::kPolling);
  EXPECT_EQ(policy.Update(1, false, Millis(150)), EventMode::kSignals);
}

TEST(HybridPolicyTest, LargeQueueMaxClampIsANoOp) {
  // The clamp must not disturb the common configuration.
  HybridPolicy policy(HybridPolicyConfig{0.5, 0.05, Millis(100)}, 1024);
  EXPECT_EQ(policy.high_watermark(), 512u);
  EXPECT_EQ(policy.low_watermark(), 51u);
}

}  // namespace
}  // namespace scio
