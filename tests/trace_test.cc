// Tests for src/trace: the charge-category taxonomy, the TimeAttribution
// ledger invariant (unit level and as a property over full benchmark runs of
// all four servers, fault schedules included), and the flight recorder's
// ring semantics, exports, and observer transparency.

#include <gtest/gtest.h>

#include <set>
#include <sstream>
#include <string>

#include "src/kernel/sim_kernel.h"
#include "src/load/benchmark_run.h"
#include "src/trace/charge_category.h"
#include "src/trace/flight_recorder.h"
#include "src/trace/time_attribution.h"

namespace scio {
namespace {

// --- taxonomy ---------------------------------------------------------------------

TEST(ChargeCategoryTest, NamesAreUniqueAndNonEmpty) {
  std::set<std::string> names;
  for (size_t i = 0; i < kChargeCatCount; ++i) {
    const std::string name = ChargeCatName(static_cast<ChargeCat>(i));
    EXPECT_FALSE(name.empty());
    EXPECT_NE(name, "invalid");
    EXPECT_TRUE(names.insert(name).second) << "duplicate category name " << name;
  }
}

TEST(TimeAttributionTest, RowsCoverEveryCategoryInOrder) {
  TimeAttribution ledger;
  ledger.Add(ChargeCat::kDriverPoll, 42);
  const auto rows = ledger.ToRows();
  ASSERT_EQ(rows.size(), kChargeCatCount);
  for (size_t i = 0; i < rows.size(); ++i) {
    EXPECT_EQ(rows[i].first, ChargeCatName(static_cast<ChargeCat>(i)));
  }
  EXPECT_EQ(ledger[ChargeCat::kDriverPoll], 42);
  EXPECT_EQ(ledger.Sum(), 42);
}

TEST(TimeAttributionTest, SignatureIsStableAndValueSensitive) {
  TimeAttribution a, b;
  a.Add(ChargeCat::kAccept, 7);
  b.Add(ChargeCat::kAccept, 7);
  EXPECT_EQ(a.Signature(), b.Signature());
  EXPECT_TRUE(a == b);
  b.Add(ChargeCat::kClose, 1);
  EXPECT_NE(a.Signature(), b.Signature());
  EXPECT_FALSE(a == b);
}

// --- kernel-level invariant -------------------------------------------------------

TEST(AttributionInvariantTest, MultiItemChargeSumsExactly) {
  Simulator sim;
  SimKernel kernel(&sim);
  kernel.Charge({{ChargeCat::kSyscallEntry, Nanos(700)},
                 {ChargeCat::kReadCopy, Nanos(300)}});
  EXPECT_EQ(kernel.busy_time(), Nanos(1000));
  EXPECT_EQ(kernel.attribution()[ChargeCat::kSyscallEntry], Nanos(700));
  EXPECT_EQ(kernel.attribution()[ChargeCat::kReadCopy], Nanos(300));
  EXPECT_EQ(kernel.attribution().Sum(), kernel.busy_time());
}

TEST(AttributionInvariantTest, PaidDebtIsAttributedToItsOwnCategory) {
  Simulator sim;
  SimKernel kernel(&sim);
  kernel.ChargeDebt(Micros(30), ChargeCat::kInterrupt);
  EXPECT_EQ(kernel.attribution()[ChargeCat::kInterrupt], 0)
      << "debt is attributed when paid, not when accrued";
  kernel.Charge(Micros(10), ChargeCat::kOther);
  EXPECT_EQ(kernel.busy_time(), Micros(40));
  EXPECT_EQ(kernel.attribution()[ChargeCat::kInterrupt], Micros(30));
  EXPECT_EQ(kernel.attribution()[ChargeCat::kOther], Micros(10));
  EXPECT_EQ(kernel.attribution().Sum(), kernel.busy_time());
}

TEST(AttributionInvariantTest, DebtAbsorbedByIdleIsNeverAttributed) {
  Simulator sim;
  SimKernel kernel(&sim);
  Process& proc = kernel.CreateProcess("p");
  kernel.ChargeDebt(Micros(5), ChargeCat::kInterrupt);
  EXPECT_FALSE(kernel.BlockProcess(proc, Micros(100)));  // debt absorbed by idle
  kernel.Charge(Micros(1), ChargeCat::kOther);
  EXPECT_EQ(kernel.busy_time(), Micros(1));
  EXPECT_EQ(kernel.attribution()[ChargeCat::kInterrupt], 0);
  EXPECT_EQ(kernel.attribution().Sum(), kernel.busy_time());
}

TEST(AttributionInvariantTest, HoldsUnderFractionalCpuScale) {
  // Scaled(a) + Scaled(b) != Scaled(a+b) in general; the ledger must absorb
  // the rounding remainder rather than drift from busy_time().
  CostModel cost;
  cost.cpu_scale = 0.37;
  Simulator sim;
  SimKernel kernel(&sim, cost);
  for (int i = 0; i < 100; ++i) {
    kernel.Charge({{ChargeCat::kSyscallEntry, Nanos(333)},
                   {ChargeCat::kReadCopy, Nanos(77)},
                   {ChargeCat::kSendBytes, Nanos(1)}});
  }
  EXPECT_GT(kernel.busy_time(), 0);
  EXPECT_EQ(kernel.attribution().Sum(), kernel.busy_time());
}

// --- flight recorder --------------------------------------------------------------

TEST(FlightRecorderTest, RingOverwritesOldestAndCountsDrops) {
  FlightRecorder recorder(4);
  for (int i = 0; i < 6; ++i) {
    recorder.Record({Nanos(i), 0, 0, i, 0, TraceEventType::kScan, "scan"});
  }
  EXPECT_EQ(recorder.capacity(), 4u);
  EXPECT_EQ(recorder.size(), 4u);
  EXPECT_EQ(recorder.total_recorded(), 6u);
  EXPECT_EQ(recorder.dropped(), 2u);
  const auto events = recorder.Snapshot();
  ASSERT_EQ(events.size(), 4u);
  EXPECT_EQ(events.front().arg0, 2) << "oldest two were overwritten";
  EXPECT_EQ(events.back().arg0, 5);
}

TEST(FlightRecorderTest, PhaseBreakdownBinsByMark) {
  FlightRecorder recorder;
  recorder.MarkPhase("warm", Millis(0));
  recorder.MarkPhase("run", Millis(10));
  recorder.Record({Millis(1), 0, Micros(3), 0, 0, TraceEventType::kSyscall, "read"});
  recorder.Record({Millis(11), 0, Micros(5), 0, 0, TraceEventType::kSyscall, "read"});
  recorder.Record({Millis(12), 0, 0, 8, 2, TraceEventType::kScan, "poll_scan"});
  const Table breakdown = recorder.PhaseBreakdown();
  std::ostringstream out;
  breakdown.WriteCsv(out);
  const std::string csv = out.str();
  EXPECT_NE(csv.find("warm"), std::string::npos);
  EXPECT_NE(csv.find("run"), std::string::npos);
}

TEST(FlightRecorderTest, ChromeTraceIsStructurallyValidJson) {
  FlightRecorder recorder;
  recorder.MarkPhase("run", 0);
  recorder.Record({Micros(1), Micros(2), Micros(1), 3, 0,
                   TraceEventType::kSyscall, "poll"});
  recorder.Record({Micros(4), 0, 0, 1, 1, TraceEventType::kSignal, "rt_queued"});
  std::ostringstream out;
  recorder.WriteChromeTrace(out);
  const std::string json = out.str();
  EXPECT_EQ(json.rfind("{\"displayTimeUnit\":\"ms\",\"traceEvents\":[", 0), 0u);
  EXPECT_NE(json.find("\"ph\":\"X\""), std::string::npos) << "complete slice";
  EXPECT_NE(json.find("\"ph\":\"i\""), std::string::npos) << "instant";
  EXPECT_NE(json.find("\"poll\""), std::string::npos);
  EXPECT_NE(json.find("\"rt_queued\""), std::string::npos);
  EXPECT_EQ(json.substr(json.size() - 3), "]}\n");
  // Balanced braces/brackets — cheap structural sanity without a JSON parser.
  int braces = 0, brackets = 0;
  bool in_string = false;
  for (size_t i = 0; i < json.size(); ++i) {
    const char c = json[i];
    if (c == '"' && (i == 0 || json[i - 1] != '\\')) {
      in_string = !in_string;
    }
    if (in_string) {
      continue;
    }
    braces += c == '{' ? 1 : c == '}' ? -1 : 0;
    brackets += c == '[' ? 1 : c == ']' ? -1 : 0;
  }
  EXPECT_EQ(braces, 0);
  EXPECT_EQ(brackets, 0);
}

// --- whole-run properties ---------------------------------------------------------

BenchmarkRunConfig SmallRun(ServerKind server, uint64_t seed, bool faults) {
  BenchmarkRunConfig config;
  config.server = server;
  config.active.request_rate = 300;
  config.active.duration = Seconds(2);
  config.active.seed = seed;
  config.inactive.connections = 60;
  config.inactive.seed = seed * 31 + 7;
  config.warmup = Seconds(1);
  config.drain = Seconds(1);
  config.rt_queue_max = 64;
  if (faults) {
    config.faults.name = "mixed";
    config.faults.seed = seed;
    config.faults.Add({FaultKind::kRtQueueShrink, Millis(1300), Millis(1700), 1.0, 4});
    config.faults.Add({FaultKind::kEintr, Millis(1400), Millis(1600), 0.3, 0});
    config.faults.Add({FaultKind::kPacketLoss, Millis(1500), Millis(1900), 0.2,
                       static_cast<double>(Millis(3))});
  }
  return config;
}

TEST(AttributionPropertyTest, SumEqualsBusyTimeForAllServersSeedsAndFaults) {
  const ServerKind servers[] = {ServerKind::kThttpdPoll, ServerKind::kThttpdDevPoll,
                                ServerKind::kPhhttpd, ServerKind::kHybrid};
  for (ServerKind server : servers) {
    for (uint64_t seed : {11u, 97u}) {
      for (bool faults : {false, true}) {
        const BenchmarkResult result = RunBenchmark(SmallRun(server, seed, faults));
        ASSERT_TRUE(result.setup_ok);
        EXPECT_GT(result.busy_time, 0);
        EXPECT_EQ(result.attribution.Sum(), result.busy_time)
            << ServerKindName(server) << " seed=" << seed << " faults=" << faults;
      }
    }
  }
}

TEST(AttributionPropertyTest, SameSeedYieldsIdenticalPerCategoryTimes) {
  const ServerKind servers[] = {ServerKind::kThttpdPoll, ServerKind::kThttpdDevPoll,
                                ServerKind::kPhhttpd, ServerKind::kHybrid};
  for (ServerKind server : servers) {
    const BenchmarkResult first = RunBenchmark(SmallRun(server, 23, /*faults=*/true));
    const BenchmarkResult second = RunBenchmark(SmallRun(server, 23, /*faults=*/true));
    ASSERT_TRUE(first.setup_ok);
    EXPECT_TRUE(first.attribution == second.attribution)
        << ServerKindName(server) << ": " << first.attribution.Signature()
        << " vs " << second.attribution.Signature();
    EXPECT_EQ(first.busy_time, second.busy_time);
  }
}

TEST(AttributionPropertyTest, AttachedRecorderDoesNotPerturbTheRun) {
  const ServerKind servers[] = {ServerKind::kThttpdPoll, ServerKind::kHybrid};
  for (ServerKind server : servers) {
    BenchmarkRunConfig config = SmallRun(server, 5, /*faults=*/true);
    const BenchmarkResult bare = RunBenchmark(config);
    FlightRecorder recorder;
    config.recorder = &recorder;
    const BenchmarkResult traced = RunBenchmark(config);
    EXPECT_TRUE(bare.attribution == traced.attribution);
    EXPECT_EQ(bare.busy_time, traced.busy_time);
    EXPECT_EQ(bare.kernel_stats.syscalls, traced.kernel_stats.syscalls);
    EXPECT_EQ(bare.successes, traced.successes);
    EXPECT_EQ(bare.reply_series, traced.reply_series);
    if (kFlightRecorderCompiledIn) {
      EXPECT_GT(recorder.total_recorded(), 0u);
    }
  }
}

TEST(AttributionPropertyTest, HybridForcedShrinkRecoversWithSaneWatermarks) {
  // The queue-shrink fault forces overflow; with the watermark clamp the
  // policy must both leave signal mode during the storm (mode switches
  // happen) and not be pinned in polling by a degenerate high_ == 0.
  BenchmarkRunConfig config = SmallRun(ServerKind::kHybrid, 41, /*faults=*/false);
  config.rt_queue_max = 8;  // low_ truncates to 0; high_ clamps to >= 1
  config.faults.name = "shrink";
  config.faults.seed = 41;
  config.faults.Add({FaultKind::kRtQueueShrink, Millis(1300), Millis(1900), 1.0, 1});
  const BenchmarkResult result = RunBenchmark(config);
  ASSERT_TRUE(result.setup_ok);
  // Overflow is observed at the kernel: at queue_max 8 the load alone drives
  // the policy into polling mode before the shrink window, where recovery is
  // the level-triggered scan rather than a SIGIO dequeue.
  EXPECT_GT(result.kernel_stats.rt_queue_overflows, 0u);
  EXPECT_GT(result.hybrid_mode_switches, 0u);
  EXPECT_TRUE(result.hybrid_in_signal_mode)
      << "policy stuck in polling mode after the shrink window closed";
  EXPECT_EQ(result.attribution.Sum(), result.busy_time);
}

}  // namespace
}  // namespace scio
