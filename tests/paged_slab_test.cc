// Tests for the million-connection storage plane: PagedStore slot semantics
// (generations, page-boundary churn, lowest-first allocation), IndexList
// intrusive lists (unlink-while-iterating), ConnTable sweep prefixes, and the
// MemLedger byte-accounting invariant under torture schedules. The
// differential test pins the new bitmap allocator to the old
// priority-queue-of-free-fds semantics over a seeded churn history.

#include <gtest/gtest.h>

#include <queue>
#include <random>
#include <vector>

#include "src/kernel/fd_table.h"
#include "src/kernel/file.h"
#include "src/kernel/paged_slab.h"
#include "src/kernel/sim_kernel.h"
#include "src/servers/conn_table.h"
#include "src/trace/mem_ledger.h"

namespace scio {
namespace {

class InertFile : public File {
 public:
  explicit InertFile(SimKernel* kernel) : File(kernel) {}
  PollEvents PollMask() const override { return 0; }
};

struct SlabFixture : ::testing::Test {
  Simulator sim;
  SimKernel kernel{&sim};
};

// --- PagedStore: generations -------------------------------------------------

TEST(PagedStore, ReleaseBumpsGenerationSoStaleIndexIsDetectable) {
  PagedStore<int> store(64);
  ASSERT_EQ(store.AllocateLowest(), 0);
  store.At(0) = 41;
  const uint32_t gen = store.generation(0);
  store.ReleaseAt(0);
  ASSERT_EQ(store.AllocateLowest(), 0) << "slot is reused lowest-first";
  EXPECT_NE(store.generation(0), gen) << "reuse must be distinguishable";
}

TEST_F(SlabFixture, FdHandleFromBeforeReuseDoesNotResolve) {
  FdTable table(16);
  auto first = std::make_shared<InertFile>(&kernel);
  const int fd = table.Allocate(first);
  const FdHandle stale = table.Handle(fd);
  ASSERT_NE(table.Resolve(stale), nullptr);
  ASSERT_EQ(table.Close(fd), 0);
  EXPECT_EQ(table.Resolve(stale), nullptr) << "closed fd must not resolve";

  auto second = std::make_shared<InertFile>(&kernel);
  ASSERT_EQ(table.Allocate(second), fd) << "fd number is reused";
  EXPECT_EQ(table.Resolve(stale), nullptr)
      << "stale handle must not resolve to the new occupant";
  const FdHandle fresh = table.Handle(fd);
  EXPECT_EQ(table.Resolve(fresh), second);
}

TEST_F(SlabFixture, HandleSurvivesChurnOnOtherFds) {
  FdTable table(16);
  const int a = table.Allocate(std::make_shared<InertFile>(&kernel));
  auto held = std::make_shared<InertFile>(&kernel);
  const int b = table.Allocate(held);
  const FdHandle hb = table.Handle(b);
  for (int i = 0; i < 8; ++i) {
    ASSERT_EQ(table.Close(a), 0);
    ASSERT_EQ(table.Allocate(std::make_shared<InertFile>(&kernel)), a);
  }
  EXPECT_EQ(table.Resolve(hb), held) << "churn on fd a must not invalidate b";
}

// --- PagedStore: page-boundary churn -----------------------------------------

TEST(PagedStore, PagesMaterializeOnDemandAndChurnAcrossBoundary) {
  // Limit spans 3 pages of 512; the third page must never materialize.
  PagedStore<int> store(512 * 3);
  EXPECT_EQ(store.allocated_pages(), 0u);
  for (int i = 0; i < 512; ++i) {
    ASSERT_EQ(store.AllocateLowest(), i);
  }
  EXPECT_EQ(store.allocated_pages(), 1u) << "first page only";
  ASSERT_EQ(store.AllocateLowest(), 512) << "crosses into page 1";
  EXPECT_EQ(store.allocated_pages(), 2u);

  // Churn exactly at the boundary: free the last slot of page 0 and the
  // first of page 1, then reallocate — lowest-first must hand back 511
  // before 512.
  store.ReleaseAt(511);
  store.ReleaseAt(512);
  EXPECT_EQ(store.AllocateLowest(), 511);
  EXPECT_EQ(store.AllocateLowest(), 512);
  EXPECT_EQ(store.size(), 513u);
  EXPECT_EQ(store.allocated_pages(), 2u) << "no page allocated by churn";
}

TEST(PagedStore, PartialLastPageRespectsLimit) {
  PagedStore<int> store(512 + 7);
  for (int i = 0; i < 512 + 7; ++i) {
    ASSERT_EQ(store.AllocateLowest(), i);
  }
  EXPECT_EQ(store.AllocateLowest(), -1) << "limit reached (EMFILE analogue)";
  store.ReleaseAt(512 + 3);
  EXPECT_EQ(store.AllocateLowest(), 512 + 3);
  EXPECT_EQ(store.AllocateLowest(), -1);
}

TEST(PagedStore, ForEachVisitsAscendingAcrossPages) {
  PagedStore<int> store(512 * 2);
  for (int fd : {700, 3, 511, 512, 90}) {
    store.EmplaceAt(static_cast<size_t>(fd)) = fd;
  }
  std::vector<size_t> seen;
  store.ForEach([&seen](size_t i, int& v) {
    EXPECT_EQ(static_cast<size_t>(v), i);
    seen.push_back(i);
  });
  EXPECT_EQ(seen, (std::vector<size_t>{3, 90, 511, 512, 700}));
}

// --- Differential: bitmap allocator vs the old free-list semantics -----------

TEST(PagedStore, SeededChurnMatchesPriorityQueueReference) {
  // The pre-slab FdTable kept freed fds in a min-heap and took the lowest of
  // (heap top, high-water mark). Replay 20k seeded alloc/release ops and
  // require the bitmap allocator to hand out the identical fd every time.
  constexpr size_t kLimit = 512 * 5 + 100;
  PagedStore<int> store(kLimit);

  std::priority_queue<long, std::vector<long>, std::greater<long>> ref_free;
  long ref_high = 0;  // next never-used index
  std::vector<char> open(kLimit, 0);
  std::vector<long> open_list;

  std::mt19937 rng(0xC0FFEE);
  for (int op = 0; op < 20000; ++op) {
    const bool do_alloc = open_list.empty() || (rng() % 100) < 60;
    if (do_alloc) {
      long ref_fd = -1;
      if (!ref_free.empty()) {
        ref_fd = ref_free.top();
        ref_free.pop();
      } else if (ref_high < static_cast<long>(kLimit)) {
        ref_fd = ref_high++;
      }
      const long got = store.AllocateLowest();
      ASSERT_EQ(got, ref_fd) << "op " << op;
      if (got >= 0) {
        open[static_cast<size_t>(got)] = 1;
        open_list.push_back(got);
      }
    } else {
      const size_t pick = rng() % open_list.size();
      const long fd = open_list[pick];
      open_list[pick] = open_list.back();
      open_list.pop_back();
      open[static_cast<size_t>(fd)] = 0;
      store.ReleaseAt(static_cast<size_t>(fd));
      ref_free.push(fd);
    }
  }
  // Final occupancy must agree slot by slot.
  size_t n = 0;
  store.ForEach([&](size_t i, int&) {
    EXPECT_TRUE(open[i]) << "slot " << i;
    ++n;
  });
  EXPECT_EQ(n, open_list.size());
}

// --- IndexList ----------------------------------------------------------------

struct ListNode {
  int value = 0;
  IndexLink link;
};

TEST(IndexList, PushUnlinkPreserveInsertionOrder) {
  PagedStore<ListNode> store(64);
  IndexList<ListNode, &ListNode::link> list(&store);
  for (int i : {5, 2, 9, 7}) {
    store.EmplaceAt(static_cast<size_t>(i));
    list.PushBack(i);
  }
  list.Unlink(9);
  std::vector<int> order;
  for (int32_t i = list.front(); i != kNilIndex; i = list.NextOf(i)) {
    order.push_back(i);
  }
  EXPECT_EQ(order, (std::vector<int>{5, 2, 7})) << "insertion order, 9 removed";
  EXPECT_FALSE(list.Linked(9));
  EXPECT_EQ(list.size(), 3u);
}

TEST(IndexList, UnlinkingCurrentNodeMidWalkIsSafe) {
  PagedStore<ListNode> store(64);
  IndexList<ListNode, &ListNode::link> list(&store);
  for (int i = 0; i < 8; ++i) {
    store.EmplaceAt(static_cast<size_t>(i));
    list.PushBack(i);
  }
  // The sweep pattern every reap uses: read next, then unlink current.
  std::vector<int> unlinked;
  for (int32_t i = list.front(); i != kNilIndex;) {
    const int32_t next = list.NextOf(i);
    if (i % 2 == 0) {
      list.Unlink(i);
      unlinked.push_back(i);
    }
    i = next;
  }
  EXPECT_EQ(unlinked, (std::vector<int>{0, 2, 4, 6}));
  std::vector<int> remaining;
  for (int32_t i = list.front(); i != kNilIndex; i = list.NextOf(i)) {
    remaining.push_back(i);
  }
  EXPECT_EQ(remaining, (std::vector<int>{1, 3, 5, 7}));
}

TEST(IndexList, MoveToBackKeepsListSorted) {
  PagedStore<ListNode> store(64);
  IndexList<ListNode, &ListNode::link> list(&store);
  for (int i = 0; i < 4; ++i) {
    store.EmplaceAt(static_cast<size_t>(i));
    list.PushBack(i);
  }
  list.MoveToBack(3);  // already at back: no-op
  list.MoveToBack(1);
  std::vector<int> order;
  for (int32_t i = list.front(); i != kNilIndex; i = list.NextOf(i)) {
    order.push_back(i);
  }
  EXPECT_EQ(order, (std::vector<int>{0, 2, 3, 1}));
}

// --- ConnTable sweep prefixes -------------------------------------------------

TEST(ConnTable, CollectIdleWalksOnlyExpiredPrefixAscending) {
  ConnTable table(64);
  table.Open(3, /*now=*/100);
  table.Open(1, /*now=*/200);
  table.Open(2, /*now=*/300);
  table.Touch(3, 350);  // 3 is now the most recent
  const auto& idle = table.CollectIdle(/*now=*/460, /*timeout=*/150);
  EXPECT_EQ(idle, (std::vector<int>{1, 2})) << "expired fds, ascending";
  const auto& none = table.CollectIdle(/*now=*/460, /*timeout=*/500);
  EXPECT_TRUE(none.empty());
}

TEST(ConnTable, CollectPastDeadlineIgnoresWriters) {
  ConnTable table(64);
  table.Open(4, /*now=*/0);
  table.Open(5, /*now=*/0);
  table.Open(6, /*now=*/900);
  table.SetPhase(5, ConnPhase::kWriting);  // leaves the reading list
  const auto& late = table.CollectPastDeadline(/*now=*/1000, /*deadline=*/500);
  EXPECT_EQ(late, (std::vector<int>{4}));
}

// --- MemLedger ----------------------------------------------------------------

TEST(MemLedger, AddSubKeepTheInvariant) {
  MemLedger mem;
  mem.Add(MemSys::kConns, 4096);
  mem.Add(MemSys::kFdTable, 512);
  mem.Sub(MemSys::kConns, 1024);
  EXPECT_EQ(mem[MemSys::kConns], 3072u);
  EXPECT_EQ(mem.total(), 3584u);
  EXPECT_TRUE(mem.Consistent());
  EXPECT_NE(mem.Signature().find("conns=3072"), std::string::npos);
}

TEST_F(SlabFixture, LedgerMatchesSelfReportsUnderTortureChurn) {
  // Seeded open/close torture across an fd table and a conn table sharing
  // one ledger: after every batch the ledger must (a) satisfy Sum()==total
  // and (b) agree byte-for-byte with the structures' own tracked_bytes().
  FdTable table(2048);
  table.set_mem_ledger(&kernel.mem());
  ConnTable conns(2048);
  conns.set_mem_ledger(&kernel.mem());

  std::mt19937 rng(1234);
  std::vector<int> open;
  for (int batch = 0; batch < 50; ++batch) {
    for (int i = 0; i < 40; ++i) {
      if (open.empty() || (rng() % 100) < 55) {
        const int fd = table.Allocate(std::make_shared<InertFile>(&kernel));
        if (fd < 0) {
          continue;
        }
        conns.Open(fd, static_cast<SimTime>(batch * 40 + i));
        open.push_back(fd);
      } else {
        const size_t pick = rng() % open.size();
        const int fd = open[pick];
        open[pick] = open.back();
        open.pop_back();
        conns.Close(fd);
        ASSERT_EQ(table.Close(fd), 0);
      }
    }
    ASSERT_TRUE(kernel.mem().Consistent()) << "batch " << batch;
    ASSERT_EQ(kernel.mem()[MemSys::kFdTable], table.tracked_bytes());
    ASSERT_EQ(kernel.mem()[MemSys::kConns], conns.tracked_bytes());
  }
  EXPECT_GT(kernel.mem().total(), 0u);
}

TEST_F(SlabFixture, LedgerDrainsOnStructureDestruction) {
  {
    FdTable table(256);
    table.set_mem_ledger(&kernel.mem());
    table.Allocate(std::make_shared<InertFile>(&kernel));
    EXPECT_GT(kernel.mem()[MemSys::kFdTable], 0u);
  }
  EXPECT_EQ(kernel.mem()[MemSys::kFdTable], 0u) << "pages returned on dtor";
  EXPECT_TRUE(kernel.mem().Consistent());
}

}  // namespace
}  // namespace scio
