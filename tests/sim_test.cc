// Tests for the discrete-event simulation engine.

#include <gtest/gtest.h>

#include <map>
#include <memory>
#include <utility>
#include <vector>

#include "src/sim/event_queue.h"
#include "src/sim/rng.h"
#include "src/sim/simulator.h"

namespace scio {
namespace {

TEST(EventQueueTest, RunsInTimeOrder) {
  EventQueue queue;
  std::vector<int> order;
  queue.Schedule(30, [&] { order.push_back(3); });
  queue.Schedule(10, [&] { order.push_back(1); });
  queue.Schedule(20, [&] { order.push_back(2); });
  while (queue.RunNext()) {
  }
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

TEST(EventQueueTest, SameTimeRunsInScheduleOrder) {
  EventQueue queue;
  std::vector<int> order;
  for (int i = 0; i < 10; ++i) {
    queue.Schedule(5, [&order, i] { order.push_back(i); });
  }
  while (queue.RunNext()) {
  }
  for (int i = 0; i < 10; ++i) {
    EXPECT_EQ(order[static_cast<size_t>(i)], i);
  }
}

TEST(EventQueueTest, CancelPreventsExecution) {
  EventQueue queue;
  bool ran = false;
  EventHandle handle = queue.Schedule(10, [&] { ran = true; });
  EXPECT_TRUE(handle.pending());
  handle.Cancel();
  EXPECT_FALSE(handle.pending());
  while (queue.RunNext()) {
  }
  EXPECT_FALSE(ran);
}

TEST(EventQueueTest, CancelAfterFireIsNoop) {
  EventQueue queue;
  int runs = 0;
  EventHandle handle = queue.Schedule(10, [&] { ++runs; });
  queue.RunNext();
  EXPECT_FALSE(handle.pending());
  handle.Cancel();
  EXPECT_EQ(runs, 1);
}

TEST(EventQueueTest, EmptyHandleCancelIsSafe) {
  EventHandle handle;
  EXPECT_FALSE(handle.pending());
  handle.Cancel();
}

TEST(EventQueueTest, SizeTracksLiveEvents) {
  EventQueue queue;
  EventHandle a = queue.Schedule(1, [] {});
  queue.Schedule(2, [] {});
  EXPECT_EQ(queue.size(), 2u);
  a.Cancel();
  EXPECT_EQ(queue.NextTime(), 2);  // skips the cancelled head
  EXPECT_EQ(queue.size(), 1u);
}

TEST(EventQueueTest, CallbackMaySchedule) {
  EventQueue queue;
  int runs = 0;
  queue.Schedule(1, [&] {
    ++runs;
    queue.Schedule(2, [&] { ++runs; });
  });
  while (queue.RunNext()) {
  }
  EXPECT_EQ(runs, 2);
}

TEST(EventQueueTest, SameTimeFifoAcrossWheelLevels) {
  // The far event lands on a high wheel level at schedule time; the near one
  // is scheduled for the same tick from one tick before it (level 0). The
  // far event carries the lower sequence number, so it must still fire
  // first after cascading down. Targets cover wheel levels 1 through 4.
  for (const SimTime target : {SimTime{70}, SimTime{5000}, SimTime{300'000},
                               SimTime{20'000'000}}) {
    EventQueue queue;
    std::vector<int> order;
    queue.Schedule(target, [&] { order.push_back(1); });
    queue.Schedule(target - 1, [&] {
      queue.Schedule(target, [&] { order.push_back(2); });
    });
    while (queue.RunNext()) {
    }
    EXPECT_EQ(order, (std::vector<int>{1, 2})) << "target " << target;
  }
}

TEST(EventQueueTest, DoubleCancelKeepsSizeConsistent) {
  EventQueue queue;
  EventHandle handle = queue.Schedule(10, [] {});
  queue.Schedule(20, [] {});
  handle.Cancel();
  handle.Cancel();  // must not decrement the live count a second time
  EXPECT_EQ(queue.size(), 1u);
  size_t runs = 0;
  while (queue.RunNext()) {
    ++runs;
  }
  EXPECT_EQ(runs, 1u);
}

TEST(EventQueueTest, CallbackMayCancelSameTickEvent) {
  EventQueue queue;
  bool second_ran = false;
  EventHandle second;
  queue.Schedule(5, [&] { second.Cancel(); });
  second = queue.Schedule(5, [&] { second_ran = true; });
  while (queue.RunNext()) {
  }
  EXPECT_FALSE(second_ran);
  EXPECT_EQ(queue.size(), 0u);
}

TEST(EventQueueTest, RecycledNodeDoesNotHonorStaleHandle) {
  EventQueue queue;
  EventHandle stale = queue.Schedule(1, [] {});
  queue.RunNext();  // fires; the node returns to the pool
  bool ran = false;
  EventHandle fresh = queue.Schedule(2, [&] { ran = true; });
  EXPECT_FALSE(stale.pending());
  stale.Cancel();  // generation mismatch: must not touch the new occupant
  EXPECT_TRUE(fresh.pending());
  queue.RunNext();
  EXPECT_TRUE(ran);
}

TEST(EventQueueTest, ClearDestroysPendingCallbacks) {
  EventQueue queue;
  auto token = std::make_shared<int>(42);
  queue.Schedule(1000, [token] {});
  queue.Schedule(200'000, [token] {});  // far slot: exercises the wheel sweep
  EXPECT_EQ(token.use_count(), 3);
  queue.Clear();
  EXPECT_EQ(token.use_count(), 1) << "Clear() must release captured state";
  EXPECT_TRUE(queue.empty());
  EXPECT_FALSE(queue.RunNext());
}

TEST(EventQueueTest, CancelledCallbackReleasedByDrain) {
  EventQueue queue;
  auto token = std::make_shared<int>(0);
  EventHandle handle = queue.Schedule(50, [token] {});
  queue.Schedule(60, [] {});
  handle.Cancel();
  while (queue.RunNext()) {
  }
  EXPECT_EQ(token.use_count(), 1) << "lazily-reaped node still held the callback";
}

TEST(EventQueueTest, EarlierScheduleAfterNextTimeResolves) {
  // NextTime() advances the wheel origin to the earliest pending tick; a
  // Schedule for an earlier time afterwards must still fire first.
  EventQueue queue;
  std::vector<int> order;
  queue.Schedule(100, [&] { order.push_back(100); });
  queue.Schedule(100, [&] { order.push_back(101); });
  EXPECT_EQ(queue.NextTime(), 100);
  queue.Schedule(50, [&] { order.push_back(50); });
  EXPECT_EQ(queue.NextTime(), 50);
  while (queue.RunNext()) {
  }
  EXPECT_EQ(order, (std::vector<int>{50, 100, 101}));
}

TEST(EventQueueTest, MatchesReferenceModelUnderSeededChurn) {
  // Differential test: the wheel must fire exactly the (time, seq)-minimum
  // live event, matching an ordered-map reference model, through a seeded
  // mix of schedules, cancellations, and fires. Two passes over one queue so
  // the second exercises node-pool reuse end to end.
  EventQueue queue;
  Rng rng(20260805);
  for (int pass = 0; pass < 2; ++pass) {
    std::map<std::pair<SimTime, uint64_t>, uint64_t> model;  // (when, seq) -> id
    std::vector<std::pair<EventHandle, std::pair<SimTime, uint64_t>>> handles;
    std::vector<uint64_t> fired;
    uint64_t next_id = 0;
    uint64_t next_seq = 0;
    for (int step = 0; step < 4000; ++step) {
      const double roll = rng.NextDouble();
      if (roll < 0.5) {
        const SimTime when = rng.UniformInt(0, 1'000'000);
        const uint64_t id = next_id++;
        const uint64_t seq = next_seq++;
        EventHandle handle =
            queue.Schedule(when, [&fired, id] { fired.push_back(id); });
        model.emplace(std::make_pair(when, seq), id);
        handles.emplace_back(handle, std::make_pair(when, seq));
      } else if (roll < 0.65 && !handles.empty()) {
        const size_t pick = static_cast<size_t>(
            rng.UniformInt(0, static_cast<int64_t>(handles.size()) - 1));
        handles[pick].first.Cancel();       // no-op if already fired/cancelled
        model.erase(handles[pick].second);  // ditto
      } else if (!model.empty()) {
        const uint64_t expected = model.begin()->second;
        const size_t before = fired.size();
        ASSERT_TRUE(queue.RunNext());
        ASSERT_EQ(fired.size(), before + 1);
        ASSERT_EQ(fired.back(), expected) << "wrong event fired at step " << step;
        model.erase(model.begin());
      }
      ASSERT_EQ(queue.size(), model.size()) << "live-count drift at step " << step;
    }
    while (!model.empty()) {
      const uint64_t expected = model.begin()->second;
      ASSERT_TRUE(queue.RunNext());
      ASSERT_EQ(fired.back(), expected);
      model.erase(model.begin());
    }
    EXPECT_FALSE(queue.RunNext());
    EXPECT_TRUE(queue.empty());
  }
}

TEST(SimulatorTest, AdvanceToRunsDueEventsAndSetsClock) {
  Simulator sim;
  std::vector<SimTime> seen;
  sim.ScheduleAt(10, [&] { seen.push_back(sim.now()); });
  sim.ScheduleAt(20, [&] { seen.push_back(sim.now()); });
  sim.ScheduleAt(50, [&] { seen.push_back(sim.now()); });
  sim.AdvanceTo(30);
  EXPECT_EQ(sim.now(), 30);
  EXPECT_EQ(seen, (std::vector<SimTime>{10, 20}));
  sim.RunAll();
  EXPECT_EQ(sim.now(), 50);
}

TEST(SimulatorTest, StepUntilStopsOnPredicate) {
  Simulator sim;
  bool flag = false;
  sim.ScheduleAt(10, [&] { flag = true; });
  sim.ScheduleAt(20, [&] { FAIL() << "should not run"; });
  EXPECT_TRUE(sim.StepUntil([&] { return flag; }, 100));
  EXPECT_EQ(sim.now(), 10);
}

TEST(SimulatorTest, StepUntilDeadlineAdvancesClock) {
  Simulator sim;
  EXPECT_FALSE(sim.StepUntil([] { return false; }, 42));
  EXPECT_EQ(sim.now(), 42);
}

TEST(SimulatorTest, StepUntilImmediateWhenAlreadyTrue) {
  Simulator sim;
  EXPECT_TRUE(sim.StepUntil([] { return true; }, 42));
  EXPECT_EQ(sim.now(), 0);
}

TEST(SimulatorTest, ScheduleAfterClampsNegativeDelay) {
  Simulator sim;
  bool ran = false;
  sim.ScheduleAfter(-5, [&] { ran = true; });
  sim.RunAll();
  EXPECT_TRUE(ran);
  EXPECT_EQ(sim.now(), 0);
}

TEST(SimulatorTest, RunAllHonorsLimit) {
  Simulator sim;
  int runs = 0;
  // Self-perpetuating event chain.
  std::function<void()> chain = [&] {
    ++runs;
    sim.ScheduleAfter(1, chain);
  };
  sim.ScheduleAfter(1, chain);
  EXPECT_EQ(sim.RunAll(100), 100u);
  EXPECT_EQ(runs, 100);
}

TEST(RngTest, DeterministicFromSeed) {
  Rng a(123);
  Rng b(123);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.NextU64(), b.NextU64());
  }
}

TEST(RngTest, DifferentSeedsDiffer) {
  Rng a(1);
  Rng b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) {
    if (a.NextU64() == b.NextU64()) {
      ++same;
    }
  }
  EXPECT_EQ(same, 0);
}

TEST(RngTest, ForkIsIndependent) {
  Rng a(7);
  Rng fork = a.Fork();
  EXPECT_NE(a.NextU64(), fork.NextU64());
}

class RngSeedTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(RngSeedTest, UniformIntStaysInRange) {
  Rng rng(GetParam());
  for (int i = 0; i < 1000; ++i) {
    const int64_t v = rng.UniformInt(-3, 17);
    EXPECT_GE(v, -3);
    EXPECT_LE(v, 17);
  }
}

TEST_P(RngSeedTest, NextDoubleInHalfOpenUnit) {
  Rng rng(GetParam());
  for (int i = 0; i < 1000; ++i) {
    const double d = rng.NextDouble();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
  }
}

TEST_P(RngSeedTest, ExponentialMeanConverges) {
  Rng rng(GetParam());
  double sum = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    sum += rng.Exponential(5.0);
  }
  EXPECT_NEAR(sum / n, 5.0, 0.25);
}

TEST_P(RngSeedTest, BoundedParetoStaysBounded) {
  Rng rng(GetParam());
  for (int i = 0; i < 1000; ++i) {
    const double v = rng.BoundedPareto(1.2, 100.0, 1e6);
    EXPECT_GE(v, 100.0 * 0.999);
    EXPECT_LE(v, 1e6 * 1.001);
  }
}

TEST_P(RngSeedTest, BernoulliExtremes) {
  Rng rng(GetParam());
  EXPECT_FALSE(rng.Bernoulli(0.0));
  EXPECT_TRUE(rng.Bernoulli(1.0));
}

INSTANTIATE_TEST_SUITE_P(Seeds, RngSeedTest,
                         ::testing::Values(1ull, 42ull, 0xdeadbeefull, 977ull, 31337ull));

}  // namespace
}  // namespace scio
