// Tests for the real-OS event backends: every backend must report the same
// readiness on the same socketpair scenarios, plus backend-specific
// semantics (epoll edge-triggering, RT signal overflow recovery).

#include <gtest/gtest.h>

#include <set>

#include "src/posix/event_backend.h"
#include "src/posix/socketpair_rig.h"

namespace scio {
namespace {

class BackendTest : public ::testing::TestWithParam<BackendKind> {
 protected:
  std::unique_ptr<EventBackend> MakeBackend() { return EventBackend::Create(GetParam()); }
};

TEST_P(BackendTest, EmptyWaitTimesOut) {
  SocketpairRig rig(2);
  ASSERT_TRUE(rig.ok());
  auto backend = MakeBackend();
  ASSERT_EQ(rig.RegisterAll(*backend), 0);
  std::vector<PosixEvent> events;
  EXPECT_EQ(backend->Wait(events, 10), 0);
  EXPECT_TRUE(events.empty());
}

TEST_P(BackendTest, SingleReadableReported) {
  SocketpairRig rig(8);
  ASSERT_TRUE(rig.ok());
  auto backend = MakeBackend();
  ASSERT_EQ(rig.RegisterAll(*backend), 0);
  rig.Poke(3);
  std::vector<PosixEvent> events;
  ASSERT_EQ(backend->Wait(events, 1000), 1);
  EXPECT_EQ(events[0].fd, rig.watch_fd(3));
  EXPECT_NE(events[0].events & kEvReadable, 0u);
}

TEST_P(BackendTest, MultipleReadablesAllEventuallyReported) {
  SocketpairRig rig(16);
  ASSERT_TRUE(rig.ok());
  auto backend = MakeBackend();
  ASSERT_EQ(rig.RegisterAll(*backend), 0);
  const std::set<size_t> poked = {1, 5, 9, 13};
  for (size_t i : poked) {
    rig.Poke(i);
  }
  std::set<int> reported;
  std::vector<PosixEvent> events;
  for (int spin = 0; spin < 50 && reported.size() < poked.size(); ++spin) {
    events.clear();
    const int n = backend->Wait(events, 1000);
    ASSERT_GE(n, 0);
    for (const PosixEvent& ev : events) {
      reported.insert(ev.fd);
    }
  }
  std::set<int> expected;
  for (size_t i : poked) {
    expected.insert(rig.watch_fd(i));
  }
  EXPECT_EQ(reported, expected);
}

TEST_P(BackendTest, RemoveStopsReports) {
  SocketpairRig rig(4);
  ASSERT_TRUE(rig.ok());
  auto backend = MakeBackend();
  ASSERT_EQ(rig.RegisterAll(*backend), 0);
  ASSERT_EQ(backend->Remove(rig.watch_fd(2)), 0);
  rig.Poke(2);
  std::vector<PosixEvent> events;
  const int n = backend->Wait(events, 50);
  for (const PosixEvent& ev : events) {
    EXPECT_NE(ev.fd, rig.watch_fd(2));
  }
  EXPECT_LE(n, 0);
}

TEST_P(BackendTest, DoubleAddRejected) {
  SocketpairRig rig(1);
  ASSERT_TRUE(rig.ok());
  auto backend = MakeBackend();
  ASSERT_EQ(backend->Add(rig.watch_fd(0), kEvReadable), 0);
  EXPECT_EQ(backend->Add(rig.watch_fd(0), kEvReadable), -1);
}

TEST_P(BackendTest, RemoveUnknownFails) {
  auto backend = MakeBackend();
  EXPECT_EQ(backend->Remove(12345), -1);
}

TEST_P(BackendTest, WatchedCountTracksMembership) {
  SocketpairRig rig(3);
  ASSERT_TRUE(rig.ok());
  auto backend = MakeBackend();
  ASSERT_EQ(rig.RegisterAll(*backend), 0);
  EXPECT_EQ(backend->watched_count(), 3u);
  backend->Remove(rig.watch_fd(0));
  EXPECT_EQ(backend->watched_count(), 2u);
}

INSTANTIATE_TEST_SUITE_P(AllBackends, BackendTest,
                         ::testing::Values(BackendKind::kPoll, BackendKind::kSelect,
                                           BackendKind::kEpoll, BackendKind::kEpollEdge,
                                           BackendKind::kRtSig),
                         [](const auto& info) {
                           return std::string(EventBackend::KindName(info.param)) ==
                                          "epoll-et"
                                      ? std::string("epollet")
                                      : std::string(EventBackend::KindName(info.param));
                         });

TEST(EpollSemanticsTest, LevelTriggeredRepeats) {
  SocketpairRig rig(1);
  ASSERT_TRUE(rig.ok());
  auto backend = EventBackend::Create(BackendKind::kEpoll);
  ASSERT_EQ(rig.RegisterAll(*backend), 0);
  rig.Poke(0);
  std::vector<PosixEvent> events;
  EXPECT_EQ(backend->Wait(events, 1000), 1);
  events.clear();
  EXPECT_EQ(backend->Wait(events, 50), 1) << "level-triggered: still readable";
}

TEST(EpollSemanticsTest, EdgeTriggeredFiresOnce) {
  SocketpairRig rig(1);
  ASSERT_TRUE(rig.ok());
  auto backend = EventBackend::Create(BackendKind::kEpollEdge);
  ASSERT_EQ(rig.RegisterAll(*backend), 0);
  rig.Poke(0);
  std::vector<PosixEvent> events;
  EXPECT_EQ(backend->Wait(events, 1000), 1);
  events.clear();
  EXPECT_EQ(backend->Wait(events, 50), 0) << "edge consumed; no new data, no event";
  rig.Poke(0);
  EXPECT_EQ(backend->Wait(events, 1000), 1) << "new edge fires again";
}

TEST(RtSigSemanticsTest, ManyEventsRecoveredDespiteQueuePressure) {
  // Enough pokes to risk RT queue pressure; the backend's SIGIO + poll()
  // recovery (paper §2) must still surface every readable fd.
  SocketpairRig rig(64);
  ASSERT_TRUE(rig.ok());
  auto backend = EventBackend::Create(BackendKind::kRtSig);
  ASSERT_EQ(rig.RegisterAll(*backend), 0);
  for (size_t i = 0; i < rig.size(); ++i) {
    rig.Poke(i);
  }
  std::set<int> reported;
  std::vector<PosixEvent> events;
  for (int spin = 0; spin < 500 && reported.size() < rig.size(); ++spin) {
    events.clear();
    if (backend->Wait(events, 200) <= 0) {
      break;
    }
    for (const PosixEvent& ev : events) {
      reported.insert(ev.fd);
    }
  }
  EXPECT_EQ(reported.size(), rig.size());
}

}  // namespace
}  // namespace scio
