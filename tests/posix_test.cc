// Tests for the real-OS event backends: every backend must report the same
// readiness on the same socketpair scenarios, plus backend-specific
// semantics (epoll edge-triggering, RT signal overflow recovery).

#include <gtest/gtest.h>

#include <signal.h>
#include <sys/time.h>

#include <chrono>
#include <set>

#include "src/posix/event_backend.h"
#include "src/posix/socketpair_rig.h"

namespace scio {
namespace {

class BackendTest : public ::testing::TestWithParam<BackendKind> {
 protected:
  std::unique_ptr<EventBackend> MakeBackend() { return EventBackend::Create(GetParam()); }
};

TEST_P(BackendTest, EmptyWaitTimesOut) {
  SocketpairRig rig(2);
  ASSERT_TRUE(rig.ok());
  auto backend = MakeBackend();
  ASSERT_EQ(rig.RegisterAll(*backend), 0);
  std::vector<PosixEvent> events;
  EXPECT_EQ(backend->Wait(events, 10), 0);
  EXPECT_TRUE(events.empty());
}

TEST_P(BackendTest, SingleReadableReported) {
  SocketpairRig rig(8);
  ASSERT_TRUE(rig.ok());
  auto backend = MakeBackend();
  ASSERT_EQ(rig.RegisterAll(*backend), 0);
  rig.Poke(3);
  std::vector<PosixEvent> events;
  ASSERT_EQ(backend->Wait(events, 1000), 1);
  EXPECT_EQ(events[0].fd, rig.watch_fd(3));
  EXPECT_NE(events[0].events & kEvReadable, 0u);
}

TEST_P(BackendTest, MultipleReadablesAllEventuallyReported) {
  SocketpairRig rig(16);
  ASSERT_TRUE(rig.ok());
  auto backend = MakeBackend();
  ASSERT_EQ(rig.RegisterAll(*backend), 0);
  const std::set<size_t> poked = {1, 5, 9, 13};
  for (size_t i : poked) {
    rig.Poke(i);
  }
  std::set<int> reported;
  std::vector<PosixEvent> events;
  for (int spin = 0; spin < 50 && reported.size() < poked.size(); ++spin) {
    events.clear();
    const int n = backend->Wait(events, 1000);
    ASSERT_GE(n, 0);
    for (const PosixEvent& ev : events) {
      reported.insert(ev.fd);
    }
  }
  std::set<int> expected;
  for (size_t i : poked) {
    expected.insert(rig.watch_fd(i));
  }
  EXPECT_EQ(reported, expected);
}

TEST_P(BackendTest, RemoveStopsReports) {
  SocketpairRig rig(4);
  ASSERT_TRUE(rig.ok());
  auto backend = MakeBackend();
  ASSERT_EQ(rig.RegisterAll(*backend), 0);
  ASSERT_EQ(backend->Remove(rig.watch_fd(2)), 0);
  rig.Poke(2);
  std::vector<PosixEvent> events;
  const int n = backend->Wait(events, 50);
  for (const PosixEvent& ev : events) {
    EXPECT_NE(ev.fd, rig.watch_fd(2));
  }
  EXPECT_LE(n, 0);
}

TEST_P(BackendTest, DoubleAddRejected) {
  SocketpairRig rig(1);
  ASSERT_TRUE(rig.ok());
  auto backend = MakeBackend();
  ASSERT_EQ(backend->Add(rig.watch_fd(0), kEvReadable), 0);
  EXPECT_EQ(backend->Add(rig.watch_fd(0), kEvReadable), -1);
}

TEST_P(BackendTest, RemoveUnknownFails) {
  auto backend = MakeBackend();
  EXPECT_EQ(backend->Remove(12345), -1);
}

TEST_P(BackendTest, WatchedCountTracksMembership) {
  SocketpairRig rig(3);
  ASSERT_TRUE(rig.ok());
  auto backend = MakeBackend();
  ASSERT_EQ(rig.RegisterAll(*backend), 0);
  EXPECT_EQ(backend->watched_count(), 3u);
  backend->Remove(rig.watch_fd(0));
  EXPECT_EQ(backend->watched_count(), 2u);
}

INSTANTIATE_TEST_SUITE_P(AllBackends, BackendTest,
                         ::testing::Values(BackendKind::kPoll, BackendKind::kSelect,
                                           BackendKind::kEpoll, BackendKind::kEpollEdge,
                                           BackendKind::kRtSig),
                         [](const auto& info) {
                           return std::string(EventBackend::KindName(info.param)) ==
                                          "epoll-et"
                                      ? std::string("epollet")
                                      : std::string(EventBackend::KindName(info.param));
                         });

TEST(EpollSemanticsTest, LevelTriggeredRepeats) {
  SocketpairRig rig(1);
  ASSERT_TRUE(rig.ok());
  auto backend = EventBackend::Create(BackendKind::kEpoll);
  ASSERT_EQ(rig.RegisterAll(*backend), 0);
  rig.Poke(0);
  std::vector<PosixEvent> events;
  EXPECT_EQ(backend->Wait(events, 1000), 1);
  events.clear();
  EXPECT_EQ(backend->Wait(events, 50), 1) << "level-triggered: still readable";
}

TEST(EpollSemanticsTest, EdgeTriggeredFiresOnce) {
  SocketpairRig rig(1);
  ASSERT_TRUE(rig.ok());
  auto backend = EventBackend::Create(BackendKind::kEpollEdge);
  ASSERT_EQ(rig.RegisterAll(*backend), 0);
  rig.Poke(0);
  std::vector<PosixEvent> events;
  EXPECT_EQ(backend->Wait(events, 1000), 1);
  events.clear();
  EXPECT_EQ(backend->Wait(events, 50), 0) << "edge consumed; no new data, no event";
  rig.Poke(0);
  EXPECT_EQ(backend->Wait(events, 1000), 1) << "new edge fires again";
}

TEST(RtSigSemanticsTest, ManyEventsRecoveredDespiteQueuePressure) {
  // Enough pokes to risk RT queue pressure; the backend's SIGIO + poll()
  // recovery (paper §2) must still surface every readable fd.
  SocketpairRig rig(64);
  ASSERT_TRUE(rig.ok());
  auto backend = EventBackend::Create(BackendKind::kRtSig);
  ASSERT_EQ(rig.RegisterAll(*backend), 0);
  for (size_t i = 0; i < rig.size(); ++i) {
    rig.Poke(i);
  }
  std::set<int> reported;
  std::vector<PosixEvent> events;
  for (int spin = 0; spin < 500 && reported.size() < rig.size(); ++spin) {
    events.clear();
    if (backend->Wait(events, 200) <= 0) {
      break;
    }
    for (const PosixEvent& ev : events) {
      reported.insert(ev.fd);
    }
  }
  EXPECT_EQ(reported.size(), rig.size());
}

TEST(EpollSemanticsTest, WaitRetriesAfterEintrWithRemainingTimeout) {
  // A signal landing mid-wait must not cut the wait short: the backend
  // retries epoll_wait with the remaining timeout, so the caller still sees
  // "0 = full timeout elapsed" instead of a premature empty return.
  SocketpairRig rig(2);
  ASSERT_TRUE(rig.ok());
  auto backend = EventBackend::Create(BackendKind::kEpoll);
  ASSERT_EQ(rig.RegisterAll(*backend), 0);

  // SIGALRM with an empty handler and no SA_RESTART: epoll_wait fails EINTR.
  struct sigaction sa{};
  sa.sa_handler = [](int) {};
  sigemptyset(&sa.sa_mask);
  sa.sa_flags = 0;  // deliberately no SA_RESTART
  struct sigaction old_sa{};
  ASSERT_EQ(sigaction(SIGALRM, &sa, &old_sa), 0);

  // Fire the timer at 20ms into a 120ms wait (and keep firing, to catch an
  // implementation that retries with the ORIGINAL timeout and never returns).
  itimerval timer{};
  timer.it_value.tv_usec = 20'000;
  timer.it_interval.tv_usec = 20'000;
  ASSERT_EQ(setitimer(ITIMER_REAL, &timer, nullptr), 0);

  const auto start = std::chrono::steady_clock::now();
  std::vector<PosixEvent> events;
  const int rc = backend->Wait(events, 120);
  const auto elapsed = std::chrono::duration_cast<std::chrono::milliseconds>(
                           std::chrono::steady_clock::now() - start)
                           .count();

  itimerval off{};
  setitimer(ITIMER_REAL, &off, nullptr);
  sigaction(SIGALRM, &old_sa, nullptr);

  EXPECT_EQ(rc, 0) << "timeout, not an EINTR error leak";
  EXPECT_TRUE(events.empty());
  // Must have ridden through the interruptions to (roughly) the deadline —
  // generous lower margin for scheduling jitter, upper bound to catch an
  // original-timeout retry loop (which would run ~forever).
  EXPECT_GE(elapsed, 100);
  EXPECT_LE(elapsed, 5000);
}

}  // namespace
}  // namespace scio
