// Tests for the ingress-defense stack: filter chain verdicts and costs, the
// SYN (half-open) backlog with syncookie fallback, the adaptive defense tier
// ladder, and scripted attack campaigns.

#include <gtest/gtest.h>

#include "src/load/attack_campaign.h"
#include "src/load/benchmark_run.h"
#include "src/net/filter_chain.h"
#include "src/servers/defense.h"
#include "tests/sim_world.h"

namespace scio {
namespace {

// --- IngressFilterChain ------------------------------------------------------------

class FilterChainTest : public ::testing::Test {
 protected:
  FilterChainTest() : kernel_(&sim_), chain_(&kernel_) {}
  Simulator sim_;
  SimKernel kernel_;
  IngressFilterChain chain_;
};

TEST_F(FilterChainTest, EmptyChainAcceptsAtZeroTraversalCost) {
  EXPECT_EQ(chain_.EvalConnect(5000), FilterVerdict::kAccept);
  EXPECT_EQ(chain_.EvalPacket(5000), FilterVerdict::kAccept);
  EXPECT_EQ(kernel_.stats().filter_evals, 2u);
  EXPECT_EQ(kernel_.stats().filter_rules_traversed, 0u);
  EXPECT_EQ(kernel_.attribution()[ChargeCat::kFilterMatch], 0);
}

TEST(FilterRuleDefaults, RateLimitDefaultsPinnedToNamedConstant) {
  // The default admission rate is load-bearing for every checked-in defense
  // bench: silently changing it would shift attack-run CSVs. Pin both the
  // constant's value and that a default-constructed rule uses it.
  EXPECT_DOUBLE_EQ(kDefaultFilterRatePerSec, 100.0);
  FilterRule rule;
  EXPECT_DOUBLE_EQ(rule.rate_per_sec, kDefaultFilterRatePerSec);
}

TEST_F(FilterChainTest, FirstMatchDecidesAndBandsAreHalfOpen) {
  FilterRule drop;
  drop.src_lo = 100;
  drop.src_hi = 200;
  drop.verdict = FilterVerdict::kDrop;
  chain_.Append(drop);
  FilterRule accept_all;  // would accept 150 too, but sits behind the drop
  chain_.Append(accept_all);

  EXPECT_EQ(chain_.EvalConnect(150), FilterVerdict::kDrop);
  EXPECT_EQ(chain_.EvalConnect(99), FilterVerdict::kAccept) << "below the band";
  EXPECT_EQ(chain_.EvalConnect(200), FilterVerdict::kAccept) << "src_hi is exclusive";
  EXPECT_EQ(chain_.stats().dropped, 1u);
  EXPECT_EQ(chain_.stats().accepted, 2u);
}

TEST_F(FilterChainTest, InsertFrontPreemptsAndRemoveRestores) {
  FilterRule drop_all;
  drop_all.verdict = FilterVerdict::kDrop;
  chain_.Append(drop_all);
  EXPECT_EQ(chain_.EvalConnect(150), FilterVerdict::kDrop);

  FilterRule allow;
  allow.src_lo = 100;
  allow.src_hi = 200;
  const int id = chain_.InsertFront(allow);
  EXPECT_EQ(chain_.EvalConnect(150), FilterVerdict::kAccept);

  EXPECT_TRUE(chain_.Remove(id));
  EXPECT_FALSE(chain_.Remove(id)) << "already gone";
  EXPECT_EQ(chain_.EvalConnect(150), FilterVerdict::kDrop);
}

TEST_F(FilterChainTest, RateLimitBucketDrainsAndRefillsOnSimTime) {
  FilterRule limit;
  limit.verdict = FilterVerdict::kRateLimit;
  limit.rate_per_sec = 10.0;
  limit.burst = 2.0;
  chain_.Append(limit);

  EXPECT_EQ(chain_.EvalConnect(1), FilterVerdict::kAccept);
  EXPECT_EQ(chain_.EvalConnect(2), FilterVerdict::kAccept);
  EXPECT_EQ(chain_.EvalConnect(3), FilterVerdict::kDrop) << "burst exhausted";
  EXPECT_EQ(chain_.stats().rate_limit_drops, 1u);
  EXPECT_EQ(kernel_.stats().filter_rate_limit_drops, 1u);
  EXPECT_EQ(kernel_.stats().filter_drops, 0u) << "rate drops are counted apart";

  // 10/s * ~0.1s = 1 token back (the rule-update charge at Append() nudged
  // the clock, so run slightly past the exact refill boundary).
  sim_.AdvanceTo(Millis(105));
  EXPECT_EQ(chain_.EvalConnect(4), FilterVerdict::kAccept);
  EXPECT_EQ(chain_.EvalConnect(5), FilterVerdict::kDrop);
}

TEST_F(FilterChainTest, HookSelectionSkipsButStillTraverses) {
  FilterRule packet_only;
  packet_only.on_connect = false;
  packet_only.on_packet = true;
  packet_only.verdict = FilterVerdict::kDrop;
  chain_.Append(packet_only);

  EXPECT_EQ(chain_.EvalConnect(1), FilterVerdict::kAccept) << "wrong hook";
  EXPECT_EQ(chain_.EvalPacket(1), FilterVerdict::kDrop);
  // Both evals walked the one-rule chain; netfilter charges for the walk.
  // Filter work accrues as interrupt debt — a process-context charge pays it
  // into the attribution ledger under the filter categories.
  EXPECT_EQ(kernel_.stats().filter_rules_traversed, 2u);
  EXPECT_GT(kernel_.pending_interrupt_debt(), 0);
  kernel_.Charge(Nanos(1), ChargeCat::kTimerSweep);
  EXPECT_GT(kernel_.attribution()[ChargeCat::kFilterMatch], 0);
  EXPECT_GT(kernel_.attribution()[ChargeCat::kFilterDrop], 0);
}

TEST_F(FilterChainTest, BandCountsSortedAndWindowResets) {
  IngressFilterChain chain(&kernel_, /*band_width=*/100);
  chain.EvalConnect(950);  // band 9
  chain.EvalConnect(150);  // band 1
  chain.EvalConnect(199);  // band 1
  const auto counts = chain.TakeBandCounts();
  ASSERT_EQ(counts.size(), 2u);
  EXPECT_EQ(counts[0], (std::pair<int, uint64_t>{1, 2}));
  EXPECT_EQ(counts[1], (std::pair<int, uint64_t>{9, 1}));
  EXPECT_TRUE(chain.TakeBandCounts().empty()) << "taking resets the window";
}

// --- SYN backlog -------------------------------------------------------------------

class SynBacklogTest : public SimWorldTest {};

TEST_F(SynBacklogTest, RawSynsFillHalfOpenQueueAndOverflow) {
  listener_->ConfigureSynBacklog({4, Seconds(3), false});
  for (int i = 0; i < 6; ++i) {
    net_.RawSyn(listener_, 2'000'000 + i);
  }
  sim_.RunAll();
  EXPECT_EQ(listener_->syn_backlog_depth(), 4u);
  EXPECT_EQ(listener_->syn_backlog_peak(), 4u);
  EXPECT_EQ(kernel_.stats().net_raw_syns, 6u);
  EXPECT_EQ(kernel_.stats().net_syn_backlog_overflows, 2u);
  EXPECT_EQ(listener_->backlog_depth(), 0u) << "spoofed SYNs never establish";
}

TEST_F(SynBacklogTest, HalfOpenEntriesReapedAfterTimeout) {
  listener_->ConfigureSynBacklog({4, Seconds(3), false});
  for (int i = 0; i < 4; ++i) {
    net_.RawSyn(listener_, 2'000'000 + i);
  }
  sim_.RunAll();
  ASSERT_EQ(listener_->syn_backlog_depth(), 4u);
  RunFor(Seconds(4));
  listener_->ReapHalfOpen();
  EXPECT_EQ(listener_->syn_backlog_depth(), 0u);
  EXPECT_EQ(kernel_.stats().net_half_open_reaped, 4u);
}

TEST_F(SynBacklogTest, SyncookiesHoldNoStateButCostCpu) {
  listener_->ConfigureSynBacklog({4, Seconds(3), true});
  // Fill the queue first so the cookie path (queue-full) actually engages.
  for (int i = 0; i < 10; ++i) {
    net_.RawSyn(listener_, 2'000'000 + i);
  }
  sim_.RunAll();
  EXPECT_EQ(listener_->syn_backlog_depth(), 0u)
      << "cookies answer statelessly; no half-open entries at all";
  EXPECT_EQ(kernel_.stats().net_syncookies_sent, 10u);
  EXPECT_EQ(kernel_.stats().net_syn_backlog_overflows, 0u);
  // Cookie cost is interrupt debt; pay it so it lands in the ledger.
  kernel_.Charge(Nanos(1), ChargeCat::kTimerSweep);
  EXPECT_GT(kernel_.attribution()[ChargeCat::kSynCookie], 0);
  // Benign connections still establish through the cookie path.
  auto client = ClientConnect();
  EXPECT_EQ(listener_->backlog_depth(), 1u);
}

TEST_F(SynBacklogTest, SaturatedQueueSilentlyDropsBenignSyn) {
  listener_->ConfigureSynBacklog({4, Seconds(3), false});
  for (int i = 0; i < 4; ++i) {
    net_.RawSyn(listener_, 2'000'000 + i);
  }
  sim_.RunAll();
  bool refused = false;
  auto client = net_.Connect(listener_);
  client->on_refused = [&] { refused = true; };
  sim_.RunAll();
  EXPECT_EQ(listener_->backlog_depth(), 0u) << "the benign SYN found no slot";
  EXPECT_FALSE(refused) << "silent drop, not an RST: the client just times out";
  EXPECT_EQ(client->state(), SimSocket::State::kConnecting);
  EXPECT_EQ(kernel_.stats().net_syn_backlog_overflows, 1u);
}

TEST_F(SynBacklogTest, BenignPathUntouchedByDefaults) {
  auto [client, fd] = EstablishedPair();
  EXPECT_EQ(client->state(), SimSocket::State::kEstablished);
  EXPECT_EQ(listener_->syn_backlog_depth(), 0u);
  EXPECT_EQ(kernel_.stats().net_syncookies_sent, 0u);
  EXPECT_EQ(kernel_.stats().filter_evals, 0u) << "no chain attached, no cost";
}

// --- filter hooks on the live ingress path -----------------------------------------

TEST_F(SimWorldTest, ConnectHookDropIsSilent) {
  IngressFilterChain chain(&kernel_);
  net_.set_filter(&chain);
  FilterRule drop_all;
  drop_all.verdict = FilterVerdict::kDrop;
  chain.Append(drop_all);

  bool refused = false;
  auto client = net_.Connect(listener_);
  client->on_refused = [&] { refused = true; };
  sim_.RunAll();
  EXPECT_EQ(listener_->backlog_depth(), 0u);
  EXPECT_FALSE(refused);
  EXPECT_EQ(client->state(), SimSocket::State::kConnecting);
  EXPECT_EQ(chain.stats().dropped, 1u);
}

TEST_F(SimWorldTest, PacketHookDropDiscardsBytesBeforeTheSocket) {
  auto [client, fd] = EstablishedPair();
  IngressFilterChain chain(&kernel_);
  net_.set_filter(&chain);
  FilterRule drop_packets;
  drop_packets.on_connect = false;
  drop_packets.on_packet = true;
  drop_packets.verdict = FilterVerdict::kDrop;
  const int rule_id = chain.Append(drop_packets);

  client->Write(Chunk{"GET /", 0});
  sim_.RunAll();
  auto server_sock = sys_.socket(fd);
  EXPECT_EQ(server_sock->available(), 0u) << "dropped in interrupt context";
  EXPECT_EQ(chain.stats().packet_evals, 1u);
  EXPECT_EQ(chain.stats().dropped, 1u);

  chain.Remove(rule_id);
  client->Write(Chunk{"x", 0});
  sim_.RunAll();
  EXPECT_EQ(server_sock->available(), 1u) << "chain emptied, bytes flow again";
}

// --- AdaptiveDefense ----------------------------------------------------------------

class DefenseTest : public SimWorldTest {
 protected:
  static DefenseConfig TestConfig() {
    DefenseConfig config;
    config.tick_interval = Millis(10);
    config.min_band_syns = 5;
    config.drop_delta_threshold = 10;
    config.sustain_ticks = 3;
    config.calm_ticks = 2;
    config.band_rate_per_sec = 200.0;
    config.band_burst = 16.0;
    return config;
  }

  void Flood(int count) {
    for (int i = 0; i < count; ++i) {
      net_.RawSyn(listener_, (1 << 20) + (i % 1000));
    }
    sim_.RunAll();
  }

  void TickAfter(AdaptiveDefense& defense, SimDuration gap) {
    sim_.AdvanceTo(sim_.now() + gap);
    defense.Tick(0.0);
  }
};

TEST_F(DefenseTest, LadderEscalatesHardensAndUnwinds) {
  IngressFilterChain chain(&kernel_, /*band_width=*/1 << 16);
  net_.set_filter(&chain);
  // Short SYN timeout so abandoned half-open entries decay between ticks and
  // the calm path is reachable within the test's horizon.
  listener_->ConfigureSynBacklog({16, Millis(20), false});
  AdaptiveDefense defense(&kernel_, &chain, TestConfig());
  defense.AddListener(listener_);

  // Wave 1: overflows trip the first tick; tier 1 = cookies + hot-band limit.
  Flood(100);
  TickAfter(defense, Millis(10));
  EXPECT_EQ(defense.tier(), 1);
  EXPECT_TRUE(listener_->syn_config().syncookies);
  EXPECT_EQ(chain.size(), 1u) << "one RATE_LIMIT rule on the flood band";
  EXPECT_EQ(defense.stats().band_rules_installed, 1u);

  // Sustained pressure: the band rule keeps dropping (drop deltas), so the
  // ladder hardens the band to DROP after sustain_ticks.
  Flood(100);
  TickAfter(defense, Millis(10));
  EXPECT_EQ(defense.tier(), 1);
  Flood(100);
  TickAfter(defense, Millis(10));
  EXPECT_EQ(defense.tier(), 2);
  EXPECT_EQ(defense.stats().band_rules_hardened, 1u);
  EXPECT_EQ(chain.size(), 1u);

  // Attack ends: two calm ticks soften, two more clear everything.
  TickAfter(defense, Millis(10));
  TickAfter(defense, Millis(10));
  EXPECT_EQ(defense.tier(), 1);
  TickAfter(defense, Millis(10));
  TickAfter(defense, Millis(10));
  EXPECT_EQ(defense.tier(), 0);
  EXPECT_EQ(chain.size(), 0u) << "calm path restored to zero rules";
  EXPECT_FALSE(listener_->syn_config().syncookies);
  EXPECT_EQ(defense.stats().deescalations, 2u);
}

TEST_F(DefenseTest, InBandFloodNeverBlocklistsTheEphemeralRange) {
  IngressFilterChain chain(&kernel_, /*band_width=*/1 << 16);
  net_.set_filter(&chain);
  listener_->ConfigureSynBacklog({16, Millis(20), false});
  AdaptiveDefense defense(&kernel_, &chain, TestConfig());
  defense.AddListener(listener_);

  // A raw-SYN storm from inside the real ephemeral range (band 0): the
  // overflow pressure must escalate, but the hot band is the one benign
  // clients live in, so no band rule may ever be installed — blocklisting it
  // would be a self-inflicted outage.
  for (int i = 0; i < 100; ++i) {
    net_.RawSyn(listener_, 40000 + (i % 1000));
  }
  sim_.RunAll();
  TickAfter(defense, Millis(10));
  EXPECT_EQ(defense.tier(), 1) << "cookies still engage against in-band abuse";
  EXPECT_TRUE(listener_->syn_config().syncookies);
  EXPECT_EQ(chain.size(), 0u) << "the ephemeral band is never a rule target";
  EXPECT_EQ(defense.stats().band_rules_installed, 0u);
}

TEST_F(DefenseTest, CalmTrafficNeverEscalates) {
  IngressFilterChain chain(&kernel_, 1 << 16);
  net_.set_filter(&chain);
  AdaptiveDefense defense(&kernel_, &chain, TestConfig());
  defense.AddListener(listener_);
  for (int i = 0; i < 20; ++i) {
    auto [client, fd] = EstablishedPair();
    EXPECT_EQ(sys_.Close(fd), 0);
    sim_.RunAll();
    TickAfter(defense, Millis(10));
  }
  EXPECT_EQ(defense.tier(), 0);
  EXPECT_EQ(chain.size(), 0u);
  EXPECT_EQ(defense.stats().escalations, 0u);
}

// --- AttackCampaign ----------------------------------------------------------------

TEST_F(SimWorldTest, SynFloodWaveDeliversSeededPoissonSyns) {
  AttackSchedule schedule;
  schedule.name = "flood";
  AttackWave wave;
  wave.kind = AttackKind::kSynFlood;
  wave.start = 0;
  wave.end = Seconds(1);
  wave.rate = 1000;
  schedule.Add(wave);

  AttackCampaign campaign(&net_, listener_, schedule);
  campaign.Start();
  sim_.RunAll();
  const uint64_t sent = campaign.stats().syns_sent;
  EXPECT_GT(sent, 800u);
  EXPECT_LT(sent, 1200u);
  EXPECT_EQ(kernel_.stats().net_raw_syns, sent) << "every spoofed SYN reached the wire";
}

TEST_F(SimWorldTest, RuleBlowupInstallsAndWithdrawsJunkRules) {
  IngressFilterChain chain(&kernel_);
  net_.set_filter(&chain);
  AttackSchedule schedule;
  AttackWave wave;
  wave.kind = AttackKind::kRuleBlowup;
  wave.start = Millis(100);
  wave.end = Millis(200);
  wave.rules = 50;
  schedule.Add(wave);

  AttackCampaign campaign(&net_, listener_, schedule);
  campaign.Start();
  sim_.AdvanceTo(Millis(150));
  EXPECT_EQ(chain.size(), 50u);
  EXPECT_EQ(campaign.stats().junk_rules_installed, 50u);
  // Junk rules are pure traversal tax: benign connects still pass.
  auto client = ClientConnect();
  EXPECT_EQ(listener_->backlog_depth(), 1u);
  sim_.AdvanceTo(Millis(250));
  EXPECT_EQ(chain.size(), 0u);
  EXPECT_EQ(campaign.stats().junk_rules_removed, 50u);
}

TEST(AttackDefenseRun, FloodedAdaptiveRunIsDeterministic) {
  BenchmarkRunConfig config;
  config.server = ServerKind::kThttpdDevPoll;
  config.active.request_rate = 200;
  config.active.duration = Seconds(2);
  config.warmup = Millis(500);
  config.drain = Millis(500);
  config.adaptive_defense = true;
  config.server_config.syn_backlog.max_half_open = 64;
  AttackWave wave;
  wave.kind = AttackKind::kSynFlood;
  wave.start = Millis(700);
  wave.end = Seconds(2);
  wave.rate = 3000;
  config.attack.Add(wave);

  const BenchmarkResult a = RunBenchmark(config);
  const BenchmarkResult b = RunBenchmark(config);
  EXPECT_GT(a.attack_stats.syns_sent, 0u);
  EXPECT_GT(a.chain_stats.connect_evals, 0u);
  EXPECT_GT(a.defense_stats.escalations, 0u);
  EXPECT_EQ(a.attack_stats.syns_sent, b.attack_stats.syns_sent);
  EXPECT_EQ(a.chain_stats.connect_evals, b.chain_stats.connect_evals);
  EXPECT_EQ(a.chain_stats.dropped, b.chain_stats.dropped);
  EXPECT_EQ(a.chain_stats.rate_limit_drops, b.chain_stats.rate_limit_drops);
  EXPECT_EQ(a.defense_stats.escalations, b.defense_stats.escalations);
  EXPECT_EQ(a.successes, b.successes);
  EXPECT_EQ(a.busy_time, b.busy_time);
  EXPECT_EQ(a.attribution.Signature(), b.attribution.Signature());
  // The ledger invariant holds with the three new categories in play.
  EXPECT_EQ(a.attribution.Sum(), a.busy_time);
  EXPECT_GT(a.attribution[ChargeCat::kFilterMatch], 0);
}

TEST(AttackDefenseRun, SlowlorisDeadlineReapsFreeTheServer) {
  BenchmarkRunConfig config;
  config.server = ServerKind::kThttpdDevPoll;
  config.active.request_rate = 200;
  config.active.duration = Seconds(4);
  config.warmup = Millis(500);
  config.drain = Seconds(1);
  config.server_max_fds = 128;
  config.adaptive_defense = true;
  config.defense.request_deadline = Seconds(1);
  AttackWave wave;
  wave.kind = AttackKind::kSlowloris;
  wave.start = Millis(700);
  wave.end = Seconds(4);
  wave.population = 200;  // well past the 128-fd table
  wave.write_interval = Millis(200);
  wave.reconnect_delay = Millis(200);
  config.attack.Add(wave);

  const BenchmarkResult result = RunBenchmark(config);
  EXPECT_GT(result.server_stats.deadline_reaps, 0u)
      << "dripping connections age past the request deadline and are cut";
  EXPECT_GT(result.attack_stats.slowloris_reconnects, 0u);
  EXPECT_GT(result.successes, 0u) << "benign load keeps being served";
  EXPECT_EQ(result.attribution.Sum(), result.busy_time);
}

}  // namespace
}  // namespace scio
