// Fixture tests for sciolint (tools/sciolint): every rule is exercised with
// at least one firing case, one clean case, and one annotation-suppression
// case, all through the Analysis library API with in-memory sources. The
// fake paths matter: D1 is scoped to src/, and the taxonomy rules key off
// charge_category.h / kernel_stats.h basenames.

#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <vector>

#include "tools/sciolint/analysis.h"

namespace scio::lint {
namespace {

std::vector<Finding> RunOn(const std::string& path, const std::string& source) {
  Analysis analysis;
  analysis.AddFile(path, source);
  return analysis.Run();
}

// Counts active findings (neither annotation-suppressed nor baselined);
// `include_suppressed` counts every finding of the rule regardless.
int CountRule(const std::vector<Finding>& findings, const std::string& rule,
              bool include_suppressed = false) {
  int n = 0;
  for (const Finding& f : findings) {
    if (f.rule == rule && (include_suppressed || (!f.suppressed && !f.baselined))) {
      ++n;
    }
  }
  return n;
}

const Finding* FindRule(const std::vector<Finding>& findings, const std::string& rule) {
  for (const Finding& f : findings) {
    if (f.rule == rule) {
      return &f;
    }
  }
  return nullptr;
}

// A minimal ChargeCat + KernelStats universe so single-fixture tests don't
// trip the taxonomy rules by accident.
constexpr char kCleanTaxonomy[] = R"(
#define SCIO_CHARGE_CATEGORIES(X) \
  X(kOther, other)
)";

// --- D1: nondeterminism sources in src/ -------------------------------------------

TEST(SciolintD1, FlagsWallClockAndRandInSrc) {
  const auto findings = RunOn("src/core/engine.cc", R"(
    #include <cstdlib>
    int Jitter() { return std::rand(); }
    long Now() { return time(nullptr); }
  )");
  EXPECT_EQ(CountRule(findings, "D1"), 2);
}

TEST(SciolintD1, IgnoresFilesOutsideSrc) {
  const auto findings = RunOn("bench/bench_setup.cc", R"(
    long Now() { return time(nullptr); }
  )");
  EXPECT_EQ(CountRule(findings, "D1"), 0)
      << "bench/ and tests/ may read the wall clock";
}

TEST(SciolintD1, CleanSimTimeCodeDoesNotFire) {
  const auto findings = RunOn("src/core/engine.cc", R"(
    long Now(const Kernel& kernel) { return kernel.now(); }
  )");
  EXPECT_EQ(CountRule(findings, "D1"), 0);
}

TEST(SciolintD1, MemberNamedTimeDoesNotFire) {
  const auto findings = RunOn("src/core/engine.cc", R"(
    long Now(const Trace& t) { return t.time(); }
  )");
  EXPECT_EQ(CountRule(findings, "D1"), 0) << "member access is not ::time()";
}

TEST(SciolintD1, AnnotationSuppresses) {
  const auto findings = RunOn("src/core/engine.cc", R"(
    // sciolint: allow(D1) -- one-time startup stamp, never enters sim state
    long Stamp() { return time(nullptr); }
  )");
  EXPECT_EQ(CountRule(findings, "D1"), 0);
  EXPECT_EQ(CountRule(findings, "D1", /*include_suppressed=*/true), 1)
      << "suppressed findings stay visible for auditing";
}

// --- D2: iteration over unordered containers --------------------------------------

constexpr char kUnorderedMember[] = R"(
    #include <unordered_map>
    class Table {
      std::unordered_map<int, int> entries_;
)";

TEST(SciolintD2, FlagsRangeForOverUnorderedMember) {
  const auto findings =
      RunOn("src/core/table.h", std::string(kUnorderedMember) + R"(
      int Sum() {
        int total = 0;
        for (const auto& [k, v] : entries_) { total += v; }
        return total;
      }
    };
  )");
  ASSERT_EQ(CountRule(findings, "D2"), 1);
  EXPECT_NE(FindRule(findings, "D2")->message.find("entries_"), std::string::npos);
}

TEST(SciolintD2, FlagsExplicitBeginIteration) {
  const auto findings =
      RunOn("src/core/table.h", std::string(kUnorderedMember) + R"(
      auto First() { return entries_.begin(); }
    };
  )");
  EXPECT_EQ(CountRule(findings, "D2"), 1);
}

TEST(SciolintD2, OrderedMapIterationIsClean) {
  const auto findings = RunOn("src/core/table.h", R"(
    #include <map>
    class Table {
      std::map<int, int> entries_;
      int Sum() {
        int total = 0;
        for (const auto& [k, v] : entries_) { total += v; }
        return total;
      }
    };
  )");
  EXPECT_EQ(CountRule(findings, "D2"), 0);
}

TEST(SciolintD2, LookupWithoutIterationIsClean) {
  const auto findings =
      RunOn("src/core/table.h", std::string(kUnorderedMember) + R"(
      bool Has(int k) const { return entries_.find(k) != entries_.end(); }
    };
  )");
  EXPECT_EQ(CountRule(findings, "D2"), 0)
      << "point lookups are order-independent; only iteration is flagged";
}

TEST(SciolintD2, AnnotationSuppresses) {
  const auto findings =
      RunOn("src/core/table.h", std::string(kUnorderedMember) + R"(
      size_t Count() {
        size_t n = 0;
        // sciolint: allow(D2) -- order-insensitive fold (count only)
        for (const auto& [k, v] : entries_) { ++n; }
        return n;
      }
    };
  )");
  EXPECT_EQ(CountRule(findings, "D2"), 0);
  EXPECT_EQ(CountRule(findings, "D2", /*include_suppressed=*/true), 1);
}

// --- E1: discarded [[nodiscard]] syscall-wrapper returns --------------------------

constexpr char kSysDecl[] = R"(
    class Sys {
     public:
      [[nodiscard]] int Close(int fd);
      [[nodiscard]] long Write(int fd, Chunk chunk);
    };
)";

TEST(SciolintE1, FlagsDiscardedWrapperReturn) {
  Analysis analysis;
  analysis.AddFile("src/core/sys.h", kSysDecl);
  analysis.AddFile("src/servers/server.cc", R"(
    void Teardown(Sys* sys_, int fd) {
      sys_->Close(fd);
    }
  )");
  const auto findings = analysis.Run();
  ASSERT_EQ(CountRule(findings, "E1"), 1);
  EXPECT_NE(FindRule(findings, "E1")->message.find("Close"), std::string::npos);
}

TEST(SciolintE1, CheckedReturnIsClean) {
  Analysis analysis;
  analysis.AddFile("src/core/sys.h", kSysDecl);
  analysis.AddFile("src/servers/server.cc", R"(
    bool Teardown(Sys* sys_, int fd) {
      return sys_->Close(fd) == 0;
    }
  )");
  EXPECT_EQ(CountRule(analysis.Run(), "E1"), 0);
}

TEST(SciolintE1, UnrelatedClassWithSameMethodNameIsClean) {
  Analysis analysis;
  analysis.AddFile("src/core/sys.h", kSysDecl);
  analysis.AddFile("src/net/socket.cc", R"(
    void Drop(Socket* socket, int fd) {
      socket->Close(fd);
    }
  )");
  EXPECT_EQ(CountRule(analysis.Run(), "E1"), 0)
      << "receiver `socket` does not name the wrapper class Sys";
}

TEST(SciolintE1, VoidCastAloneDoesNotSuppress) {
  Analysis analysis;
  analysis.AddFile("src/core/sys.h", kSysDecl);
  analysis.AddFile("src/servers/server.cc", R"(
    void Teardown(Sys* sys_, int fd) {
      (void)sys_->Close(fd);
    }
  )");
  EXPECT_EQ(CountRule(analysis.Run(), "E1"), 1)
      << "a bare (void) silences the compiler but still needs a reason";
}

TEST(SciolintE1, AnnotationSuppresses) {
  Analysis analysis;
  analysis.AddFile("src/core/sys.h", kSysDecl);
  analysis.AddFile("src/servers/server.cc", R"(
    void Teardown(Sys* sys_, int fd) {
      // sciolint: allow(E1) -- EBADF tolerated during teardown
      (void)sys_->Close(fd);
    }
  )");
  const auto findings = analysis.Run();
  EXPECT_EQ(CountRule(findings, "E1"), 0);
  EXPECT_EQ(CountRule(findings, "E1", /*include_suppressed=*/true), 1);
}

// --- C1: attribution coverage -----------------------------------------------------

TEST(SciolintC1, FlagsUntaggedCharge) {
  const auto findings = RunOn("src/core/engine.cc", R"(
    void Tick(Kernel& kernel) {
      kernel.Charge(cost);
    }
  )");
  EXPECT_EQ(CountRule(findings, "C1"), 1);
}

TEST(SciolintC1, TaggedChargeAndChargeDebtAreClean) {
  const auto findings = RunOn("src/core/engine.cc", R"(
    void Tick(Kernel& kernel) {
      kernel.Charge(cost, ChargeCat::kSyscallEntry);
      kernel.ChargeDebt(cost, ChargeCat::kInterrupt);
    }
  )");
  EXPECT_EQ(CountRule(findings, "C1"), 0);
}

TEST(SciolintC1, FlagsOrphanCategory) {
  Analysis analysis;
  analysis.AddFile("src/trace/charge_category.h", R"(
#define SCIO_CHARGE_CATEGORIES(X) \
  X(kSyscallEntry, syscall_entry) \
  X(kNeverCharged, never_charged)
  )");
  analysis.AddFile("src/core/engine.cc", R"(
    void Tick(Kernel& kernel) {
      kernel.Charge(cost, ChargeCat::kSyscallEntry);
    }
  )");
  const auto findings = analysis.Run();
  ASSERT_EQ(CountRule(findings, "C1"), 1);
  const Finding* f = FindRule(findings, "C1");
  EXPECT_NE(f->message.find("kNeverCharged"), std::string::npos);
  EXPECT_EQ(f->path, "src/trace/charge_category.h")
      << "orphans are reported at the taxonomy declaration";
}

TEST(SciolintC1, FullyReferencedTaxonomyIsClean) {
  Analysis analysis;
  analysis.AddFile("src/trace/charge_category.h", R"(
#define SCIO_CHARGE_CATEGORIES(X) \
  X(kSyscallEntry, syscall_entry)
  )");
  analysis.AddFile("src/core/engine.cc", R"(
    void Tick(Kernel& kernel) {
      kernel.Charge(cost, ChargeCat::kSyscallEntry);
    }
  )");
  EXPECT_EQ(CountRule(analysis.Run(), "C1"), 0);
}

TEST(SciolintC1, AnnotationSuppressesUntaggedCharge) {
  const auto findings = RunOn("src/core/engine.cc", R"(
    void Tick(Kernel& kernel) {
      // sciolint: allow(C1) -- category threaded through the charge vector
      kernel.Charge(items);
    }
  )");
  EXPECT_EQ(CountRule(findings, "C1"), 0);
  EXPECT_EQ(CountRule(findings, "C1", /*include_suppressed=*/true), 1);
}

TEST(SciolintC1, ReferenceOutsideChargeCallDoesNotCoverOrphan) {
  // A category that only appears in a ledger lookup (or a comparison, or a
  // report row) is never actually charged: it must still be an orphan.
  Analysis analysis;
  analysis.AddFile("src/trace/charge_category.h", R"(
#define SCIO_CHARGE_CATEGORIES(X) \
  X(kOnlyLookedUp, only_looked_up)
  )");
  analysis.AddFile("src/core/engine.cc", R"(
    SimDuration Spent(const Kernel& kernel) {
      return kernel.attribution()[ChargeCat::kOnlyLookedUp];
    }
  )");
  const auto findings = analysis.Run();
  ASSERT_EQ(CountRule(findings, "C1"), 1);
  EXPECT_NE(FindRule(findings, "C1")->message.find("kOnlyLookedUp"),
            std::string::npos);
}

TEST(SciolintC1, ReferenceInsideChargeCallCoversOrphan) {
  Analysis analysis;
  analysis.AddFile("src/trace/charge_category.h", R"(
#define SCIO_CHARGE_CATEGORIES(X) \
  X(kDebtCharged, debt_charged)
  )");
  analysis.AddFile("src/core/engine.cc", R"(
    void Tick(Kernel& kernel) {
      kernel.ChargeDebt(kernel.cost().interrupt_per_packet * n,
                        ChargeCat::kDebtCharged);
    }
  )");
  EXPECT_EQ(CountRule(analysis.Run(), "C1"), 0);
}

TEST(SciolintC1, SuccessorCoreCategoriesCoveredByBothChargeForms) {
  // The epoll/kqueue cores charge their categories from process context
  // (Charge, including the multi-item initializer-list form) and interrupt
  // context (ChargeDebt): every successor category referenced either way
  // counts as charged, so a fully-wired taxonomy is orphan-free.
  Analysis analysis;
  analysis.AddFile("src/trace/charge_category.h", R"(
#define SCIO_CHARGE_CATEGORIES(X) \
  X(kEpollCtl, epoll_ctl) \
  X(kEpollReady, epoll_ready) \
  X(kEpollWait, epoll_wait) \
  X(kKqRegister, kq_register) \
  X(kKqFilter, kq_filter)
  )");
  analysis.AddFile("src/core/epoll_core.cc", R"(
    void Ctl(Kernel& kernel) {
      kernel.Charge({{ChargeCat::kEpollCtl, kernel.cost().epoll_ctl_extra}});
      kernel.Charge(kernel.cost().epoll_wait_per_event, ChargeCat::kEpollWait);
      kernel.ChargeDebt(kernel.cost().epoll_ready_enqueue, ChargeCat::kEpollReady);
    }
  )");
  analysis.AddFile("src/core/kqueue_core.cc", R"(
    void Apply(Kernel& kernel) {
      kernel.Charge(kernel.cost().kq_change_per_entry, ChargeCat::kKqRegister);
      kernel.ChargeDebt(kernel.cost().kq_knote_activate, ChargeCat::kKqFilter);
    }
  )");
  EXPECT_EQ(CountRule(analysis.Run(), "C1"), 0);
}

TEST(SciolintC1, SuccessorCategoryChargedNowhereIsOrphan) {
  // Dropping the one ChargeDebt site for the driver-side category must
  // resurface it as an orphan — the coverage is per category, not per file.
  Analysis analysis;
  analysis.AddFile("src/trace/charge_category.h", R"(
#define SCIO_CHARGE_CATEGORIES(X) \
  X(kEpollCtl, epoll_ctl) \
  X(kEpollReady, epoll_ready)
  )");
  analysis.AddFile("src/core/epoll_core.cc", R"(
    void Ctl(Kernel& kernel) {
      kernel.Charge(kernel.cost().epoll_ctl_extra, ChargeCat::kEpollCtl);
    }
  )");
  const auto findings = analysis.Run();
  ASSERT_EQ(CountRule(findings, "C1"), 1);
  EXPECT_NE(FindRule(findings, "C1")->message.find("kEpollReady"),
            std::string::npos);
}

TEST(SciolintC1, FlagsUntaggedChargeLocal) {
  // ChargeLocal is the SMP scheduler's plain-call charge helper: no member
  // access, but the category requirement is the same.
  const auto findings = RunOn("src/smp/smp_scheduler.cc", R"(
    void Switch(Ctx& ctx) {
      ChargeLocal(ctx, cost);
    }
  )");
  EXPECT_EQ(CountRule(findings, "C1"), 1);
}

TEST(SciolintC1, TaggedChargeLocalIsClean) {
  const auto findings = RunOn("src/smp/smp_scheduler.cc", R"(
    void Switch(Ctx& ctx) {
      ChargeLocal(ctx, ChargeCat::kSyscallEntry, cost);
    }
  )");
  EXPECT_EQ(CountRule(findings, "C1"), 0);
}

// --- S1: SMP code must name its wake semantics -------------------------------------

TEST(SciolintS1, FlagsBareWakeInSmp) {
  const auto findings = RunOn("src/smp/smp_scheduler.cc", R"(
    void Kick(WaitQueue& q) {
      q.Wake();
    }
  )");
  ASSERT_EQ(CountRule(findings, "S1"), 1);
  const Finding* f = FindRule(findings, "S1");
  EXPECT_NE(f->message.find("WakeOne"), std::string::npos);
}

TEST(SciolintS1, FlagsBareWakeInServers) {
  const auto findings = RunOn("src/servers/worker_pool.cc", R"(
    void Kick(File* file) {
      file->poll_wait()->Wake();
    }
  )");
  EXPECT_EQ(CountRule(findings, "S1"), 1);
}

TEST(SciolintS1, WakeOneAndWakeAllAreClean) {
  const auto findings = RunOn("src/smp/smp_scheduler.cc", R"(
    void Kick(WaitQueue& q) {
      q.WakeOne();
      q.WakeAll();
    }
  )");
  EXPECT_EQ(CountRule(findings, "S1"), 0);
}

TEST(SciolintS1, IgnoresWakeOutsideSmpLayers) {
  // Process::Wake (a single process's wake flag) is legitimate kernel-layer
  // vocabulary; the rule is scoped to the SMP worker paths.
  const auto findings = RunOn("src/kernel/sim_kernel.cc", R"(
    void Deliver(Process& proc) {
      proc.Wake();
    }
  )");
  EXPECT_EQ(CountRule(findings, "S1"), 0);
}

TEST(SciolintS1, AnnotationSuppressesBareWake) {
  const auto findings = RunOn("src/smp/smp_scheduler.cc", R"(
    void Kick(Process& proc) {
      // sciolint: allow(S1) -- single-process wake flag, not a wait queue
      proc.Wake();
    }
  )");
  EXPECT_EQ(CountRule(findings, "S1"), 0);
  EXPECT_EQ(CountRule(findings, "S1", /*include_suppressed=*/true), 1);
}

// --- P1: fd-keyed node maps in per-connection layers ------------------------------

TEST(SciolintP1, FlagsFdKeyedMapInServers) {
  const auto findings = RunOn("src/servers/server_base.h", R"(
    #include <map>
    class ServerBase {
      std::map<int, Conn> conns_;
    };
  )");
  ASSERT_EQ(CountRule(findings, "P1"), 1);
  const Finding* f = FindRule(findings, "P1");
  EXPECT_NE(f->message.find("paged slab"), std::string::npos);
}

TEST(SciolintP1, FlagsFdKeyedUnorderedMapInPosix) {
  const auto findings = RunOn("src/posix/poll_backend.h", R"(
    std::unordered_map<int, size_t> index_;
  )");
  EXPECT_EQ(CountRule(findings, "P1"), 1);
}

TEST(SciolintP1, NonIntKeysAndOtherLayersAreClean) {
  // String-keyed maps in scope, and int-keyed maps outside the
  // per-connection layers (tools/, bench/, src/http), are not P1's business.
  const auto in_scope = RunOn("src/kernel/process.h", R"(
    std::map<std::string, int> by_name_;
  )");
  EXPECT_EQ(CountRule(in_scope, "P1"), 0);
  const auto out_of_scope = RunOn("tools/report/tables.cc", R"(
    std::map<int, Row> rows_by_figure_;
  )");
  EXPECT_EQ(CountRule(out_of_scope, "P1"), 0);
}

TEST(SciolintP1, FlagsFdKeyedMapInSuccessorCores) {
  // The successor cores live in src/core and their per-fd state must ride
  // the paged slabs: an fd-keyed node map in an epoll/kqueue path is exactly
  // the scalability bug P1 exists to catch.
  const auto epoll = RunOn("src/core/epoll_core.h", R"(
    #include <map>
    class EpollDevice {
      std::map<int, EpollItem> items_;
    };
  )");
  ASSERT_EQ(CountRule(epoll, "P1"), 1);
  EXPECT_NE(FindRule(epoll, "P1")->message.find("paged slab"), std::string::npos);
  const auto kqueue = RunOn("src/core/kqueue_core.cc", R"(
    std::unordered_map<int, KnoteSlot> slots_;
  )");
  EXPECT_EQ(CountRule(kqueue, "P1"), 1);
}

TEST(SciolintP1, FlagsFdKeyedMapInTransport) {
  // The transport plane carries per-connection TCP state and sits squarely
  // in P1's scope: cold/hot blocks belong on the paged slabs, and a
  // connection-keyed node map there is the same scalability bug as in the
  // event cores.
  const auto findings = RunOn("src/transport/transport_plane.h", R"(
    #include <map>
    class TransportPlane {
      std::map<int, TcpConn> conns_;
    };
  )");
  ASSERT_EQ(CountRule(findings, "P1"), 1);
  EXPECT_NE(FindRule(findings, "P1")->message.find("paged slab"), std::string::npos);
}

TEST(SciolintP1, AnnotationSuppressesNonFdIntKey) {
  const auto findings = RunOn("src/servers/defense.h", R"(
    // sciolint: allow(P1) -- keyed by traffic band, not by fd
    std::map<int, BandRule> band_rules_;
  )");
  EXPECT_EQ(CountRule(findings, "P1"), 0);
  EXPECT_EQ(CountRule(findings, "P1", /*include_suppressed=*/true), 1);
}

// --- M1: KernelStats counter naming -----------------------------------------------

TEST(SciolintM1, FlagsBareRowName) {
  const auto findings = RunOn("src/kernel/kernel_stats.h", R"(
#define SCIO_KERNEL_STATS_FIELDS(X) \
  X(syscalls, "syscalls") \
  X(poll_calls, "poll.calls")
  )");
  ASSERT_EQ(CountRule(findings, "M1"), 1);
  EXPECT_NE(FindRule(findings, "M1")->message.find("syscalls"), std::string::npos);
}

TEST(SciolintM1, FlagsDuplicateRowName) {
  const auto findings = RunOn("src/kernel/kernel_stats.h", R"(
#define SCIO_KERNEL_STATS_FIELDS(X) \
  X(poll_calls, "poll.calls") \
  X(poll_calls_again, "poll.calls")
  )");
  EXPECT_GE(CountRule(findings, "M1"), 1);
}

TEST(SciolintM1, ConventionalRowsAreClean) {
  const auto findings = RunOn("src/kernel/kernel_stats.h", R"(
#define SCIO_KERNEL_STATS_FIELDS(X) \
  X(syscalls, "sys.syscalls") \
  X(poll_calls, "poll.calls") \
  X(devpoll_scan_stale_fd, "devpoll.scan_stale_fd")
  )");
  EXPECT_EQ(CountRule(findings, "M1"), 0);
}

TEST(SciolintM1, AnnotationSuppresses) {
  const auto findings = RunOn("src/kernel/kernel_stats.h", R"(
#define SCIO_KERNEL_STATS_FIELDS(X) \
  // sciolint: allow(M1) -- legacy row name pinned by external dashboards
  X(syscalls, "syscalls")
  )");
  EXPECT_EQ(CountRule(findings, "M1"), 0);
  EXPECT_EQ(CountRule(findings, "M1", /*include_suppressed=*/true), 1);
}

// --- ANN: annotation hygiene ------------------------------------------------------

TEST(SciolintAnn, MalformedAnnotationIsItselfAFinding) {
  const auto findings = RunOn("src/core/engine.cc", R"(
    // sciolint: allow(D1)
    long Stamp() { return time(nullptr); }
  )");
  EXPECT_EQ(CountRule(findings, "ANN"), 1) << "missing `-- reason`";
  EXPECT_EQ(CountRule(findings, "D1"), 1)
      << "a malformed annotation must not suppress anything";
}

TEST(SciolintAnn, UnknownRuleIdIsFlagged) {
  const auto findings = RunOn("src/core/engine.cc", R"(
    // sciolint: allow(Z9) -- no such rule
    int x = 0;
  )");
  EXPECT_EQ(CountRule(findings, "ANN"), 1);
}

TEST(SciolintAnn, WellFormedAnnotationIsClean) {
  const auto findings = RunOn("src/core/engine.cc", R"(
    // sciolint: allow(D1) -- startup stamp only
    long Stamp() { return time(nullptr); }
  )");
  EXPECT_EQ(CountRule(findings, "ANN"), 0);
}

// --- baseline suppression ---------------------------------------------------------

TEST(SciolintBaseline, FingerprintSuppressesButKeepsFindingVisible) {
  const std::string source = R"(
    long Stamp() { return time(nullptr); }
  )";
  Analysis first;
  first.AddFile("src/core/engine.cc", source);
  const auto initial = first.Run();
  ASSERT_EQ(CountRule(initial, "D1"), 1);
  const std::string fingerprint = Fingerprint(*FindRule(initial, "D1"));

  Analysis second;
  second.AddFile("src/core/engine.cc", source);
  second.LoadBaseline("# comment line\n" + fingerprint + "\n");
  const auto baselined = second.Run();
  EXPECT_EQ(CountRule(baselined, "D1"), 0);
  ASSERT_EQ(baselined.size(), 1u);
  EXPECT_TRUE(baselined[0].baselined);
}

TEST(SciolintBaseline, FingerprintSurvivesLineDrift) {
  Analysis first;
  first.AddFile("src/core/engine.cc", "long Stamp() { return time(nullptr); }\n");
  Analysis second;
  second.AddFile("src/core/engine.cc",
                 "// new leading comment\n\nlong Stamp() { return time(nullptr); }\n");
  const auto a = first.Run();
  const auto b = second.Run();
  ASSERT_EQ(CountRule(a, "D1"), 1);
  ASSERT_EQ(CountRule(b, "D1"), 1);
  EXPECT_EQ(Fingerprint(*FindRule(a, "D1")), Fingerprint(*FindRule(b, "D1")))
      << "the fingerprint keys on content, not line numbers";
}

// The clean-taxonomy helper is referenced so the fixture stays honest if a
// future test needs it.
TEST(SciolintFixture, CleanTaxonomyParses) {
  const auto findings = RunOn("src/trace/other_header.h", kCleanTaxonomy);
  EXPECT_TRUE(findings.empty());
}

// --- F1: use-after-close (flow-sensitive) -----------------------------------------

TEST(SciolintF1, FlagsStraightLineUseAfterClose) {
  const auto findings = RunOn("src/servers/conn.cc", R"(
    void Teardown(Sys* sys_, int fd) {
      sys_->Close(fd);
      sys_->Write(fd, "x", 1);
    }
  )");
  EXPECT_EQ(CountRule(findings, "F1"), 1);
}

TEST(SciolintF1, FlagsCloseOnOneBranchOnly) {
  // May-analysis: closed on any incoming path taints the join.
  const auto findings = RunOn("src/servers/conn.cc", R"(
    void Maybe(Sys* sys, int fd, bool teardown) {
      if (teardown) {
        sys->Close(fd);
      }
      sys->Read(fd, 1);
    }
  )");
  EXPECT_EQ(CountRule(findings, "F1"), 1);
}

TEST(SciolintF1, ReassignmentRevivesTheFd) {
  const auto findings = RunOn("src/servers/conn.cc", R"(
    void Recycle(Sys* sys, int fd) {
      sys->Close(fd);
      fd = sys->Accept(0);
      sys->Read(fd, 1);
    }
  )");
  EXPECT_EQ(CountRule(findings, "F1"), 0);
}

TEST(SciolintF1, NonSyscallReceiverCloseIsNotAClose) {
  // conns_.Close(fd) is connection bookkeeping, not the kernel close — the
  // server teardown order `conns_.Close(fd); sys_->Close(fd);` is legal.
  const auto findings = RunOn("src/servers/conn.cc", R"(
    void CloseConn(Sys* sys_, Table& conns_, int fd) {
      conns_.Close(fd);
      (void)sys_->Close(fd);
    }
  )");
  EXPECT_EQ(CountRule(findings, "F1"), 0);
}

TEST(SciolintF1, FlagsSlabUseAfterRelease) {
  const auto findings = RunOn("src/kernel/store.cc", R"(
    void Drop(Store& slots_, size_t idx) {
      slots_.ReleaseAt(idx);
      slots_.At(idx).reset();
    }
  )");
  EXPECT_EQ(CountRule(findings, "F1"), 1);
}

TEST(SciolintF1, EmplaceRearmsTheSlabIndex) {
  const auto findings = RunOn("src/kernel/store.cc", R"(
    void Recycle(Store& slots_, size_t idx) {
      slots_.ReleaseAt(idx);
      slots_.EmplaceAt(idx);
      slots_.At(idx).reset();
    }
  )");
  EXPECT_EQ(CountRule(findings, "F1"), 0);
}

TEST(SciolintF1, AnnotationSuppresses) {
  const auto findings = RunOn("src/servers/conn.cc", R"(
    void Teardown(Sys* sys_, int fd) {
      sys_->Close(fd);
      // sciolint: allow(F1) -- double-shutdown probe, the second is expected
      sys_->Write(fd, "x", 1);
    }
  )");
  EXPECT_EQ(CountRule(findings, "F1"), 0);
  EXPECT_EQ(CountRule(findings, "F1", /*include_suppressed=*/true), 1);
}

// --- W1: waiter pairing (flow-sensitive) ------------------------------------------

TEST(SciolintW1, FlagsEarlyReturnWithWaiterStillQueued) {
  const auto findings = RunOn("src/core/waiters.cc", R"(
    int Wait(File* file, Waiter* w, bool abort) {
      file->poll_wait().Add(w);
      if (abort) {
        return -1;
      }
      w->Detach();
      return 0;
    }
  )");
  EXPECT_EQ(CountRule(findings, "W1"), 1) << "the abort path leaks the waiter";
}

TEST(SciolintW1, DetachOnEveryPathIsClean) {
  const auto findings = RunOn("src/core/waiters.cc", R"(
    int Wait(File* file, Waiter* w, bool abort) {
      file->poll_wait().AddExclusive(w);
      if (abort) {
        w->Detach();
        return -1;
      }
      w->Detach();
      return 0;
    }
  )");
  EXPECT_EQ(CountRule(findings, "W1"), 0);
}

TEST(SciolintW1, PooledDetachLoopIsClean) {
  // The devpoll/poll shape: register across a loop, detach across a loop.
  // The clear-wins merge keeps the loop-exit edge from false-positiving.
  const auto findings = RunOn("src/core/waiters.cc", R"(
    void WaitAll(std::vector<File*>& files, Waiter* w) {
      for (File* f : files) {
        f->poll_wait().Add(w);
      }
      for (File* f : files) {
        w->Detach();
      }
    }
  )");
  EXPECT_EQ(CountRule(findings, "W1"), 0);
}

TEST(SciolintW1, EarlyReturnInsideLoopIsFlagged) {
  // CFG edge case: the return exits through the loop body, not the loop exit.
  const auto findings = RunOn("src/core/waiters.cc", R"(
    int Scan(File* f, Waiter* w, int n) {
      f->poll_wait().Add(w);
      for (int i = 0; i < n; ++i) {
        if (i == 7) {
          return -1;
        }
      }
      w->Detach();
      return 0;
    }
  )");
  EXPECT_EQ(CountRule(findings, "W1"), 1);
}

TEST(SciolintW1, OutOfScopeLayersAreIgnored) {
  const auto findings = RunOn("src/load/driver.cc", R"(
    int Wait(File* file, Waiter* w) {
      file->poll_wait().Add(w);
      return -1;
    }
  )");
  EXPECT_EQ(CountRule(findings, "W1"), 0) << "W1 is scoped to kernel/core/smp";
}

TEST(SciolintW1, AnnotationSuppresses) {
  const auto findings = RunOn("src/core/waiters.cc", R"(
    int Park(File* file, Waiter* w) {
      file->poll_wait().Add(w);
      // sciolint: allow(W1) -- waiter intentionally stays parked until wake
      return 0;
    }
  )");
  EXPECT_EQ(CountRule(findings, "W1"), 0);
  EXPECT_EQ(CountRule(findings, "W1", /*include_suppressed=*/true), 1);
}

// --- H1: hot-path allocation ban --------------------------------------------------

TEST(SciolintH1, HotpathAnnotationBansAllocation) {
  const auto findings = RunOn("src/core/fast.cc", R"(
    // sciolint: hotpath
    void Harvest() {
      auto w = std::make_unique<int>(3);
    }
  )");
  EXPECT_EQ(CountRule(findings, "H1"), 1);
}

TEST(SciolintH1, BuiltinHotLoopNeedsNoAnnotation) {
  const auto findings = RunOn("src/core/poll_syscall.cc", R"(
    int PollSyscall::ScanOnce(int n) {
      int* p = new int[n];
      return p[0];
    }
  )");
  EXPECT_EQ(CountRule(findings, "H1"), 1)
      << "the six cores' harvest/wait loops are hot by default";
}

TEST(SciolintH1, StdFunctionConstructionIsFlagged) {
  const auto findings = RunOn("src/core/fast.cc", R"(
    // sciolint: hotpath
    void Harvest(int x) {
      std::function<void()> cb = [x] { Use(x); };
      cb();
    }
  )");
  EXPECT_EQ(CountRule(findings, "H1"), 1);
}

TEST(SciolintH1, ColdFunctionsMayAllocate) {
  const auto findings = RunOn("src/core/fast.cc", R"(
    void Setup() {
      auto w = std::make_unique<int>(3);
    }
  )");
  EXPECT_EQ(CountRule(findings, "H1"), 0);
}

TEST(SciolintH1, AnnotationSuppressesPoolGrowth) {
  const auto findings = RunOn("src/core/fast.cc", R"(
    // sciolint: hotpath
    void Harvest(std::vector<std::unique_ptr<int>>& pool, size_t used) {
      if (used == pool.size()) {
        // sciolint: allow(H1) -- bounded one-time pool growth
        pool.push_back(std::make_unique<int>(3));
      }
    }
  )");
  EXPECT_EQ(CountRule(findings, "H1"), 0);
  EXPECT_EQ(CountRule(findings, "H1", /*include_suppressed=*/true), 1);
}

TEST(SciolintH1, TransportAckPathHotpathBansAllocation) {
  // The transport plane's per-ACK path is annotated hot in the real tree;
  // this fixture pins that the annotation carries the allocation ban into
  // src/transport the same way it does in the cores.
  const auto findings = RunOn("src/transport/ack_path.cc", R"(
    // sciolint: hotpath
    void OnAckPacket(int ci) {
      auto scratch = std::make_unique<int>(ci);
    }
  )");
  EXPECT_EQ(CountRule(findings, "H1"), 1);
}

TEST(SciolintH1, MalformedHotpathDirectiveIsAnnFinding) {
  const auto findings = RunOn("src/core/fast.cc", R"(
    // sciolint: hotpath because it is fast
    void Harvest() {}
  )");
  EXPECT_EQ(CountRule(findings, "ANN"), 1) << "freeform tail needs `--`";
}

// --- E2: errno discipline ---------------------------------------------------------

TEST(SciolintE2, FlagsBareMinusOneReturn) {
  const auto findings = RunOn("src/kernel/thing.cc", R"(
    int Open(int fd) {
      if (fd < 0) {
        return -1;
      }
      return 0;
    }
  )");
  EXPECT_EQ(CountRule(findings, "E2"), 1);
}

TEST(SciolintE2, ErrnoAssignmentOnThePathIsClean) {
  const auto findings = RunOn("src/kernel/thing.cc", R"(
    int Open(int fd) {
      if (fd < 0) {
        errno = 9;
        return -1;
      }
      return 0;
    }
  )");
  EXPECT_EQ(CountRule(findings, "E2"), 0);
}

TEST(SciolintE2, AssignmentMustDominateTheReturn) {
  // errno set on only one incoming path is not discipline (must-analysis).
  const auto findings = RunOn("src/kernel/thing.cc", R"(
    int Op(int fd) {
      if (fd > 9) {
        errno = 22;
      }
      if (fd < 0) {
        return -1;
      }
      return 0;
    }
  )");
  EXPECT_EQ(CountRule(findings, "E2"), 1);
}

TEST(SciolintE2, NestedBranchesBothAssigningAreClean) {
  // CFG edge case: the assignment arrives through two different inner arms.
  const auto findings = RunOn("src/kernel/thing.cc", R"(
    int Nested(int a, int b) {
      if (a) {
        if (b) {
          errno = 1;
        } else {
          errno = 2;
        }
        return -1;
      }
      return 0;
    }
  )");
  EXPECT_EQ(CountRule(findings, "E2"), 0);
}

TEST(SciolintE2, NamedCodesAndArithmeticAreNotErrorExits) {
  const auto findings = RunOn("src/kernel/thing.cc", R"(
    int Shapes(int a) {
      if (a == 1) {
        return kErrBadF;
      }
      if (a == 2) {
        return a - 1;
      }
      return 0;
    }
  )");
  EXPECT_EQ(CountRule(findings, "E2"), 0)
      << "only a literal `return -N;` is an undisciplined error exit";
}

TEST(SciolintE2, ErrnoComparisonDoesNotCount) {
  const auto findings = RunOn("src/kernel/thing.cc", R"(
    int Op(int fd) {
      if (errno == 4) {
        return -1;
      }
      return 0;
    }
  )");
  EXPECT_EQ(CountRule(findings, "E2"), 1) << "reading errno is not assigning it";
}

TEST(SciolintE2, OutOfScopeLayersAreIgnored) {
  const auto findings = RunOn("src/servers/loop.cc", R"(
    int Op(int fd) {
      if (fd < 0) {
        return -1;
      }
      return 0;
    }
  )");
  EXPECT_EQ(CountRule(findings, "E2"), 0) << "E2 is scoped to kernel/posix";
}

TEST(SciolintE2, AnnotationSuppresses) {
  const auto findings = RunOn("src/kernel/thing.cc", R"(
    int Open(int fd) {
      if (fd < 0) {
        // sciolint: allow(E2) -- pinned -1 API, caller owns the errno code
        return -1;
      }
      return 0;
    }
  )");
  EXPECT_EQ(CountRule(findings, "E2"), 0);
  EXPECT_EQ(CountRule(findings, "E2", /*include_suppressed=*/true), 1);
}

// --- X1: exhaustive switch over taxonomy enums ------------------------------------

constexpr char kThreeCatTaxonomy[] = R"(
#define SCIO_CHARGE_CATEGORIES(X) \
  X(kAlpha, alpha) \
  X(kBeta, beta) \
  X(kGamma, gamma)
)";

std::vector<Finding> RunOnPair(const std::string& path, const std::string& source) {
  Analysis analysis;
  analysis.AddFile("src/trace/charge_category.h", kThreeCatTaxonomy);
  analysis.AddFile(path, source);
  return analysis.Run();
}

TEST(SciolintX1, FlagsMissingEnumerator) {
  const auto findings = RunOnPair("src/core/use.cc", R"(
    int Name(ChargeCat c) {
      switch (c) {
        case ChargeCat::kAlpha: return 1;
        case ChargeCat::kBeta: return 2;
      }
      return 0;
    }
  )");
  ASSERT_EQ(CountRule(findings, "X1"), 1);
  EXPECT_NE(FindRule(findings, "X1")->message.find("kGamma"), std::string::npos);
}

TEST(SciolintX1, FullCoverageIsClean) {
  const auto findings = RunOnPair("src/core/use.cc", R"(
    int Name(ChargeCat c) {
      switch (c) {
        case ChargeCat::kAlpha: return 1;
        case ChargeCat::kBeta: return 2;
        case ChargeCat::kGamma: return 3;
      }
      return 0;
    }
  )");
  EXPECT_EQ(CountRule(findings, "X1"), 0);
}

TEST(SciolintX1, AnnotatedDefaultEscapes) {
  const auto findings = RunOnPair("src/core/use.cc", R"(
    int Name(ChargeCat c) {
      switch (c) {
        case ChargeCat::kAlpha: return 1;
        // sciolint: allow(X1) -- only kAlpha is special-cased here
        default: return 0;
      }
    }
  )");
  EXPECT_EQ(CountRule(findings, "X1"), 0);
  EXPECT_EQ(CountRule(findings, "X1", /*include_suppressed=*/true), 1);
}

TEST(SciolintX1, MacroGeneratedSwitchIsExhaustiveByConstruction) {
  const auto findings = RunOnPair("src/trace/names.cc", R"(
    const char* Name(ChargeCat c) {
      switch (c) {
    #define X(name, str) case ChargeCat::name: return #str;
        SCIO_CHARGE_CATEGORIES(X)
    #undef X
      }
      return "unknown";
    }
  )");
  EXPECT_EQ(CountRule(findings, "X1"), 0);
}

TEST(SciolintX1, CoversMemSysTaxonomy) {
  Analysis analysis;
  analysis.AddFile("src/trace/mem_ledger.h", R"(
#define SCIO_MEM_SUBSYSTEMS(X) \
  X(kFdTable, fd_table) \
  X(kConns, conns)
)");
  analysis.AddFile("src/trace/report.cc", R"(
    int Bytes(MemSys sys) {
      switch (sys) {
        case MemSys::kFdTable: return 1;
      }
      return 0;
    }
  )");
  const auto findings = analysis.Run();
  ASSERT_EQ(CountRule(findings, "X1"), 1);
  EXPECT_NE(FindRule(findings, "X1")->message.find("kConns"), std::string::npos);
}

TEST(SciolintX1, GrownTcpChargeTaxonomyKeepsSwitchesHonest) {
  // The transport plane grew the charge taxonomy by four categories; a
  // switch that enumerates only the old world must name the newcomer.
  Analysis analysis;
  analysis.AddFile("src/trace/charge_category.h", R"(
#define SCIO_CHARGE_CATEGORIES(X) \
  X(kInterrupt, interrupt) \
  X(kTcpSegment, t_tcp_segment) \
  X(kTcpAck, t_tcp_ack) \
  X(kTcpRetransmit, t_tcp_retransmit) \
  X(kTcpPacing, t_tcp_pacing)
)");
  analysis.AddFile("src/transport/report.cc", R"(
    int Weigh(ChargeCat c) {
      switch (c) {
        case ChargeCat::kInterrupt: return 1;
        case ChargeCat::kTcpSegment: return 2;
        case ChargeCat::kTcpAck: return 3;
        case ChargeCat::kTcpRetransmit: return 4;
      }
      return 0;
    }
  )");
  const auto findings = analysis.Run();
  ASSERT_EQ(CountRule(findings, "X1"), 1);
  EXPECT_NE(FindRule(findings, "X1")->message.find("kTcpPacing"), std::string::npos);
}

TEST(SciolintX1, GrownMemSysTaxonomyWithTransportRowIsClean) {
  Analysis analysis;
  analysis.AddFile("src/trace/mem_ledger.h", R"(
#define SCIO_MEM_SUBSYSTEMS(X) \
  X(kConns, conns) \
  X(kTransport, transport)
)");
  analysis.AddFile("src/trace/report.cc", R"(
    int Bytes(MemSys sys) {
      switch (sys) {
        case MemSys::kConns: return 1;
        case MemSys::kTransport: return 2;
      }
      return 0;
    }
  )");
  EXPECT_EQ(CountRule(analysis.Run(), "X1"), 0);
}

// --- CFG edge cases shared by the flow rules --------------------------------------

TEST(SciolintFlowCfg, GotoFreeSwitchFallthroughCarriesState) {
  // case 0 falls through into case 1: the close reaches the read.
  const auto findings = RunOn("src/servers/conn.cc", R"(
    void Dispatch(Sys* sys, int fd, int op) {
      switch (op) {
        case 0:
          sys->Close(fd);
        case 1:
          sys->Read(fd, 1);
          break;
      }
    }
  )");
  EXPECT_EQ(CountRule(findings, "F1"), 1);
}

TEST(SciolintFlowCfg, BreakSeversTheFallthroughEdge) {
  const auto findings = RunOn("src/servers/conn.cc", R"(
    void Dispatch(Sys* sys, int fd, int op) {
      switch (op) {
        case 0:
          sys->Close(fd);
          break;
        case 1:
          sys->Read(fd, 1);
          break;
      }
    }
  )");
  EXPECT_EQ(CountRule(findings, "F1"), 0);
}

TEST(SciolintFlowCfg, InfiniteLoopReturnsAreTheOnlyExits) {
  // `while (true)` has no natural exit edge; the waiter is detached before
  // every return inside the loop, so the pairing holds.
  const auto findings = RunOn("src/core/waiters.cc", R"(
    int Wait(File* file, Waiter* w) {
      while (true) {
        file->poll_wait().AddExclusive(w);
        Block();
        w->Detach();
        if (Done()) {
          return 0;
        }
      }
    }
  )");
  EXPECT_EQ(CountRule(findings, "W1"), 0);
}

// --- baseline machinery across the flow rules -------------------------------------

TEST(SciolintFlowBaseline, E2FingerprintSurvivesLineDrift) {
  const std::string body = R"(
    int Open(int fd) {
      if (fd < 0) {
        return -1;
      }
      return 0;
    }
  )";
  Analysis first;
  first.AddFile("src/kernel/thing.cc", body);
  Analysis second;
  second.AddFile("src/kernel/thing.cc", "// new leading comment\n" + body);
  const auto a = first.Run();
  const auto b = second.Run();
  ASSERT_EQ(CountRule(a, "E2"), 1);
  ASSERT_EQ(CountRule(b, "E2"), 1);
  EXPECT_EQ(Fingerprint(*FindRule(a, "E2")), Fingerprint(*FindRule(b, "E2")));
}

TEST(SciolintFlowBaseline, BaselineSuppressesFlowFinding) {
  const std::string body = R"(
    void Teardown(Sys* sys_, int fd) {
      sys_->Close(fd);
      sys_->Write(fd, "x", 1);
    }
  )";
  Analysis first;
  first.AddFile("src/servers/conn.cc", body);
  const auto initial = first.Run();
  ASSERT_EQ(CountRule(initial, "F1"), 1);

  Analysis second;
  second.AddFile("src/servers/conn.cc", body);
  second.LoadBaseline(Fingerprint(*FindRule(initial, "F1")) + "\n");
  const auto baselined = second.Run();
  EXPECT_EQ(CountRule(baselined, "F1"), 0);
  EXPECT_EQ(CountRule(baselined, "F1", /*include_suppressed=*/true), 1);
}

}  // namespace
}  // namespace scio::lint
