// Fixture tests for sciolint (tools/sciolint): every rule is exercised with
// at least one firing case, one clean case, and one annotation-suppression
// case, all through the Analysis library API with in-memory sources. The
// fake paths matter: D1 is scoped to src/, and the taxonomy rules key off
// charge_category.h / kernel_stats.h basenames.

#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <vector>

#include "tools/sciolint/analysis.h"

namespace scio::lint {
namespace {

std::vector<Finding> RunOn(const std::string& path, const std::string& source) {
  Analysis analysis;
  analysis.AddFile(path, source);
  return analysis.Run();
}

// Counts active findings (neither annotation-suppressed nor baselined);
// `include_suppressed` counts every finding of the rule regardless.
int CountRule(const std::vector<Finding>& findings, const std::string& rule,
              bool include_suppressed = false) {
  int n = 0;
  for (const Finding& f : findings) {
    if (f.rule == rule && (include_suppressed || (!f.suppressed && !f.baselined))) {
      ++n;
    }
  }
  return n;
}

const Finding* FindRule(const std::vector<Finding>& findings, const std::string& rule) {
  for (const Finding& f : findings) {
    if (f.rule == rule) {
      return &f;
    }
  }
  return nullptr;
}

// A minimal ChargeCat + KernelStats universe so single-fixture tests don't
// trip the taxonomy rules by accident.
constexpr char kCleanTaxonomy[] = R"(
#define SCIO_CHARGE_CATEGORIES(X) \
  X(kOther, other)
)";

// --- D1: nondeterminism sources in src/ -------------------------------------------

TEST(SciolintD1, FlagsWallClockAndRandInSrc) {
  const auto findings = RunOn("src/core/engine.cc", R"(
    #include <cstdlib>
    int Jitter() { return std::rand(); }
    long Now() { return time(nullptr); }
  )");
  EXPECT_EQ(CountRule(findings, "D1"), 2);
}

TEST(SciolintD1, IgnoresFilesOutsideSrc) {
  const auto findings = RunOn("bench/bench_setup.cc", R"(
    long Now() { return time(nullptr); }
  )");
  EXPECT_EQ(CountRule(findings, "D1"), 0)
      << "bench/ and tests/ may read the wall clock";
}

TEST(SciolintD1, CleanSimTimeCodeDoesNotFire) {
  const auto findings = RunOn("src/core/engine.cc", R"(
    long Now(const Kernel& kernel) { return kernel.now(); }
  )");
  EXPECT_EQ(CountRule(findings, "D1"), 0);
}

TEST(SciolintD1, MemberNamedTimeDoesNotFire) {
  const auto findings = RunOn("src/core/engine.cc", R"(
    long Now(const Trace& t) { return t.time(); }
  )");
  EXPECT_EQ(CountRule(findings, "D1"), 0) << "member access is not ::time()";
}

TEST(SciolintD1, AnnotationSuppresses) {
  const auto findings = RunOn("src/core/engine.cc", R"(
    // sciolint: allow(D1) -- one-time startup stamp, never enters sim state
    long Stamp() { return time(nullptr); }
  )");
  EXPECT_EQ(CountRule(findings, "D1"), 0);
  EXPECT_EQ(CountRule(findings, "D1", /*include_suppressed=*/true), 1)
      << "suppressed findings stay visible for auditing";
}

// --- D2: iteration over unordered containers --------------------------------------

constexpr char kUnorderedMember[] = R"(
    #include <unordered_map>
    class Table {
      std::unordered_map<int, int> entries_;
)";

TEST(SciolintD2, FlagsRangeForOverUnorderedMember) {
  const auto findings =
      RunOn("src/core/table.h", std::string(kUnorderedMember) + R"(
      int Sum() {
        int total = 0;
        for (const auto& [k, v] : entries_) { total += v; }
        return total;
      }
    };
  )");
  ASSERT_EQ(CountRule(findings, "D2"), 1);
  EXPECT_NE(FindRule(findings, "D2")->message.find("entries_"), std::string::npos);
}

TEST(SciolintD2, FlagsExplicitBeginIteration) {
  const auto findings =
      RunOn("src/core/table.h", std::string(kUnorderedMember) + R"(
      auto First() { return entries_.begin(); }
    };
  )");
  EXPECT_EQ(CountRule(findings, "D2"), 1);
}

TEST(SciolintD2, OrderedMapIterationIsClean) {
  const auto findings = RunOn("src/core/table.h", R"(
    #include <map>
    class Table {
      std::map<int, int> entries_;
      int Sum() {
        int total = 0;
        for (const auto& [k, v] : entries_) { total += v; }
        return total;
      }
    };
  )");
  EXPECT_EQ(CountRule(findings, "D2"), 0);
}

TEST(SciolintD2, LookupWithoutIterationIsClean) {
  const auto findings =
      RunOn("src/core/table.h", std::string(kUnorderedMember) + R"(
      bool Has(int k) const { return entries_.find(k) != entries_.end(); }
    };
  )");
  EXPECT_EQ(CountRule(findings, "D2"), 0)
      << "point lookups are order-independent; only iteration is flagged";
}

TEST(SciolintD2, AnnotationSuppresses) {
  const auto findings =
      RunOn("src/core/table.h", std::string(kUnorderedMember) + R"(
      size_t Count() {
        size_t n = 0;
        // sciolint: allow(D2) -- order-insensitive fold (count only)
        for (const auto& [k, v] : entries_) { ++n; }
        return n;
      }
    };
  )");
  EXPECT_EQ(CountRule(findings, "D2"), 0);
  EXPECT_EQ(CountRule(findings, "D2", /*include_suppressed=*/true), 1);
}

// --- E1: discarded [[nodiscard]] syscall-wrapper returns --------------------------

constexpr char kSysDecl[] = R"(
    class Sys {
     public:
      [[nodiscard]] int Close(int fd);
      [[nodiscard]] long Write(int fd, Chunk chunk);
    };
)";

TEST(SciolintE1, FlagsDiscardedWrapperReturn) {
  Analysis analysis;
  analysis.AddFile("src/core/sys.h", kSysDecl);
  analysis.AddFile("src/servers/server.cc", R"(
    void Teardown(Sys* sys_, int fd) {
      sys_->Close(fd);
    }
  )");
  const auto findings = analysis.Run();
  ASSERT_EQ(CountRule(findings, "E1"), 1);
  EXPECT_NE(FindRule(findings, "E1")->message.find("Close"), std::string::npos);
}

TEST(SciolintE1, CheckedReturnIsClean) {
  Analysis analysis;
  analysis.AddFile("src/core/sys.h", kSysDecl);
  analysis.AddFile("src/servers/server.cc", R"(
    bool Teardown(Sys* sys_, int fd) {
      return sys_->Close(fd) == 0;
    }
  )");
  EXPECT_EQ(CountRule(analysis.Run(), "E1"), 0);
}

TEST(SciolintE1, UnrelatedClassWithSameMethodNameIsClean) {
  Analysis analysis;
  analysis.AddFile("src/core/sys.h", kSysDecl);
  analysis.AddFile("src/net/socket.cc", R"(
    void Drop(Socket* socket, int fd) {
      socket->Close(fd);
    }
  )");
  EXPECT_EQ(CountRule(analysis.Run(), "E1"), 0)
      << "receiver `socket` does not name the wrapper class Sys";
}

TEST(SciolintE1, VoidCastAloneDoesNotSuppress) {
  Analysis analysis;
  analysis.AddFile("src/core/sys.h", kSysDecl);
  analysis.AddFile("src/servers/server.cc", R"(
    void Teardown(Sys* sys_, int fd) {
      (void)sys_->Close(fd);
    }
  )");
  EXPECT_EQ(CountRule(analysis.Run(), "E1"), 1)
      << "a bare (void) silences the compiler but still needs a reason";
}

TEST(SciolintE1, AnnotationSuppresses) {
  Analysis analysis;
  analysis.AddFile("src/core/sys.h", kSysDecl);
  analysis.AddFile("src/servers/server.cc", R"(
    void Teardown(Sys* sys_, int fd) {
      // sciolint: allow(E1) -- EBADF tolerated during teardown
      (void)sys_->Close(fd);
    }
  )");
  const auto findings = analysis.Run();
  EXPECT_EQ(CountRule(findings, "E1"), 0);
  EXPECT_EQ(CountRule(findings, "E1", /*include_suppressed=*/true), 1);
}

// --- C1: attribution coverage -----------------------------------------------------

TEST(SciolintC1, FlagsUntaggedCharge) {
  const auto findings = RunOn("src/core/engine.cc", R"(
    void Tick(Kernel& kernel) {
      kernel.Charge(cost);
    }
  )");
  EXPECT_EQ(CountRule(findings, "C1"), 1);
}

TEST(SciolintC1, TaggedChargeAndChargeDebtAreClean) {
  const auto findings = RunOn("src/core/engine.cc", R"(
    void Tick(Kernel& kernel) {
      kernel.Charge(cost, ChargeCat::kSyscallEntry);
      kernel.ChargeDebt(cost, ChargeCat::kInterrupt);
    }
  )");
  EXPECT_EQ(CountRule(findings, "C1"), 0);
}

TEST(SciolintC1, FlagsOrphanCategory) {
  Analysis analysis;
  analysis.AddFile("src/trace/charge_category.h", R"(
#define SCIO_CHARGE_CATEGORIES(X) \
  X(kSyscallEntry, syscall_entry) \
  X(kNeverCharged, never_charged)
  )");
  analysis.AddFile("src/core/engine.cc", R"(
    void Tick(Kernel& kernel) {
      kernel.Charge(cost, ChargeCat::kSyscallEntry);
    }
  )");
  const auto findings = analysis.Run();
  ASSERT_EQ(CountRule(findings, "C1"), 1);
  const Finding* f = FindRule(findings, "C1");
  EXPECT_NE(f->message.find("kNeverCharged"), std::string::npos);
  EXPECT_EQ(f->path, "src/trace/charge_category.h")
      << "orphans are reported at the taxonomy declaration";
}

TEST(SciolintC1, FullyReferencedTaxonomyIsClean) {
  Analysis analysis;
  analysis.AddFile("src/trace/charge_category.h", R"(
#define SCIO_CHARGE_CATEGORIES(X) \
  X(kSyscallEntry, syscall_entry)
  )");
  analysis.AddFile("src/core/engine.cc", R"(
    void Tick(Kernel& kernel) {
      kernel.Charge(cost, ChargeCat::kSyscallEntry);
    }
  )");
  EXPECT_EQ(CountRule(analysis.Run(), "C1"), 0);
}

TEST(SciolintC1, AnnotationSuppressesUntaggedCharge) {
  const auto findings = RunOn("src/core/engine.cc", R"(
    void Tick(Kernel& kernel) {
      // sciolint: allow(C1) -- category threaded through the charge vector
      kernel.Charge(items);
    }
  )");
  EXPECT_EQ(CountRule(findings, "C1"), 0);
  EXPECT_EQ(CountRule(findings, "C1", /*include_suppressed=*/true), 1);
}

TEST(SciolintC1, ReferenceOutsideChargeCallDoesNotCoverOrphan) {
  // A category that only appears in a ledger lookup (or a comparison, or a
  // report row) is never actually charged: it must still be an orphan.
  Analysis analysis;
  analysis.AddFile("src/trace/charge_category.h", R"(
#define SCIO_CHARGE_CATEGORIES(X) \
  X(kOnlyLookedUp, only_looked_up)
  )");
  analysis.AddFile("src/core/engine.cc", R"(
    SimDuration Spent(const Kernel& kernel) {
      return kernel.attribution()[ChargeCat::kOnlyLookedUp];
    }
  )");
  const auto findings = analysis.Run();
  ASSERT_EQ(CountRule(findings, "C1"), 1);
  EXPECT_NE(FindRule(findings, "C1")->message.find("kOnlyLookedUp"),
            std::string::npos);
}

TEST(SciolintC1, ReferenceInsideChargeCallCoversOrphan) {
  Analysis analysis;
  analysis.AddFile("src/trace/charge_category.h", R"(
#define SCIO_CHARGE_CATEGORIES(X) \
  X(kDebtCharged, debt_charged)
  )");
  analysis.AddFile("src/core/engine.cc", R"(
    void Tick(Kernel& kernel) {
      kernel.ChargeDebt(kernel.cost().interrupt_per_packet * n,
                        ChargeCat::kDebtCharged);
    }
  )");
  EXPECT_EQ(CountRule(analysis.Run(), "C1"), 0);
}

TEST(SciolintC1, SuccessorCoreCategoriesCoveredByBothChargeForms) {
  // The epoll/kqueue cores charge their categories from process context
  // (Charge, including the multi-item initializer-list form) and interrupt
  // context (ChargeDebt): every successor category referenced either way
  // counts as charged, so a fully-wired taxonomy is orphan-free.
  Analysis analysis;
  analysis.AddFile("src/trace/charge_category.h", R"(
#define SCIO_CHARGE_CATEGORIES(X) \
  X(kEpollCtl, epoll_ctl) \
  X(kEpollReady, epoll_ready) \
  X(kEpollWait, epoll_wait) \
  X(kKqRegister, kq_register) \
  X(kKqFilter, kq_filter)
  )");
  analysis.AddFile("src/core/epoll_core.cc", R"(
    void Ctl(Kernel& kernel) {
      kernel.Charge({{ChargeCat::kEpollCtl, kernel.cost().epoll_ctl_extra}});
      kernel.Charge(kernel.cost().epoll_wait_per_event, ChargeCat::kEpollWait);
      kernel.ChargeDebt(kernel.cost().epoll_ready_enqueue, ChargeCat::kEpollReady);
    }
  )");
  analysis.AddFile("src/core/kqueue_core.cc", R"(
    void Apply(Kernel& kernel) {
      kernel.Charge(kernel.cost().kq_change_per_entry, ChargeCat::kKqRegister);
      kernel.ChargeDebt(kernel.cost().kq_knote_activate, ChargeCat::kKqFilter);
    }
  )");
  EXPECT_EQ(CountRule(analysis.Run(), "C1"), 0);
}

TEST(SciolintC1, SuccessorCategoryChargedNowhereIsOrphan) {
  // Dropping the one ChargeDebt site for the driver-side category must
  // resurface it as an orphan — the coverage is per category, not per file.
  Analysis analysis;
  analysis.AddFile("src/trace/charge_category.h", R"(
#define SCIO_CHARGE_CATEGORIES(X) \
  X(kEpollCtl, epoll_ctl) \
  X(kEpollReady, epoll_ready)
  )");
  analysis.AddFile("src/core/epoll_core.cc", R"(
    void Ctl(Kernel& kernel) {
      kernel.Charge(kernel.cost().epoll_ctl_extra, ChargeCat::kEpollCtl);
    }
  )");
  const auto findings = analysis.Run();
  ASSERT_EQ(CountRule(findings, "C1"), 1);
  EXPECT_NE(FindRule(findings, "C1")->message.find("kEpollReady"),
            std::string::npos);
}

TEST(SciolintC1, FlagsUntaggedChargeLocal) {
  // ChargeLocal is the SMP scheduler's plain-call charge helper: no member
  // access, but the category requirement is the same.
  const auto findings = RunOn("src/smp/smp_scheduler.cc", R"(
    void Switch(Ctx& ctx) {
      ChargeLocal(ctx, cost);
    }
  )");
  EXPECT_EQ(CountRule(findings, "C1"), 1);
}

TEST(SciolintC1, TaggedChargeLocalIsClean) {
  const auto findings = RunOn("src/smp/smp_scheduler.cc", R"(
    void Switch(Ctx& ctx) {
      ChargeLocal(ctx, ChargeCat::kSyscallEntry, cost);
    }
  )");
  EXPECT_EQ(CountRule(findings, "C1"), 0);
}

// --- S1: SMP code must name its wake semantics -------------------------------------

TEST(SciolintS1, FlagsBareWakeInSmp) {
  const auto findings = RunOn("src/smp/smp_scheduler.cc", R"(
    void Kick(WaitQueue& q) {
      q.Wake();
    }
  )");
  ASSERT_EQ(CountRule(findings, "S1"), 1);
  const Finding* f = FindRule(findings, "S1");
  EXPECT_NE(f->message.find("WakeOne"), std::string::npos);
}

TEST(SciolintS1, FlagsBareWakeInServers) {
  const auto findings = RunOn("src/servers/worker_pool.cc", R"(
    void Kick(File* file) {
      file->poll_wait()->Wake();
    }
  )");
  EXPECT_EQ(CountRule(findings, "S1"), 1);
}

TEST(SciolintS1, WakeOneAndWakeAllAreClean) {
  const auto findings = RunOn("src/smp/smp_scheduler.cc", R"(
    void Kick(WaitQueue& q) {
      q.WakeOne();
      q.WakeAll();
    }
  )");
  EXPECT_EQ(CountRule(findings, "S1"), 0);
}

TEST(SciolintS1, IgnoresWakeOutsideSmpLayers) {
  // Process::Wake (a single process's wake flag) is legitimate kernel-layer
  // vocabulary; the rule is scoped to the SMP worker paths.
  const auto findings = RunOn("src/kernel/sim_kernel.cc", R"(
    void Deliver(Process& proc) {
      proc.Wake();
    }
  )");
  EXPECT_EQ(CountRule(findings, "S1"), 0);
}

TEST(SciolintS1, AnnotationSuppressesBareWake) {
  const auto findings = RunOn("src/smp/smp_scheduler.cc", R"(
    void Kick(Process& proc) {
      // sciolint: allow(S1) -- single-process wake flag, not a wait queue
      proc.Wake();
    }
  )");
  EXPECT_EQ(CountRule(findings, "S1"), 0);
  EXPECT_EQ(CountRule(findings, "S1", /*include_suppressed=*/true), 1);
}

// --- P1: fd-keyed node maps in per-connection layers ------------------------------

TEST(SciolintP1, FlagsFdKeyedMapInServers) {
  const auto findings = RunOn("src/servers/server_base.h", R"(
    #include <map>
    class ServerBase {
      std::map<int, Conn> conns_;
    };
  )");
  ASSERT_EQ(CountRule(findings, "P1"), 1);
  const Finding* f = FindRule(findings, "P1");
  EXPECT_NE(f->message.find("paged slab"), std::string::npos);
}

TEST(SciolintP1, FlagsFdKeyedUnorderedMapInPosix) {
  const auto findings = RunOn("src/posix/poll_backend.h", R"(
    std::unordered_map<int, size_t> index_;
  )");
  EXPECT_EQ(CountRule(findings, "P1"), 1);
}

TEST(SciolintP1, NonIntKeysAndOtherLayersAreClean) {
  // String-keyed maps in scope, and int-keyed maps outside the
  // per-connection layers (tools/, bench/, src/http), are not P1's business.
  const auto in_scope = RunOn("src/kernel/process.h", R"(
    std::map<std::string, int> by_name_;
  )");
  EXPECT_EQ(CountRule(in_scope, "P1"), 0);
  const auto out_of_scope = RunOn("tools/report/tables.cc", R"(
    std::map<int, Row> rows_by_figure_;
  )");
  EXPECT_EQ(CountRule(out_of_scope, "P1"), 0);
}

TEST(SciolintP1, FlagsFdKeyedMapInSuccessorCores) {
  // The successor cores live in src/core and their per-fd state must ride
  // the paged slabs: an fd-keyed node map in an epoll/kqueue path is exactly
  // the scalability bug P1 exists to catch.
  const auto epoll = RunOn("src/core/epoll_core.h", R"(
    #include <map>
    class EpollDevice {
      std::map<int, EpollItem> items_;
    };
  )");
  ASSERT_EQ(CountRule(epoll, "P1"), 1);
  EXPECT_NE(FindRule(epoll, "P1")->message.find("paged slab"), std::string::npos);
  const auto kqueue = RunOn("src/core/kqueue_core.cc", R"(
    std::unordered_map<int, KnoteSlot> slots_;
  )");
  EXPECT_EQ(CountRule(kqueue, "P1"), 1);
}

TEST(SciolintP1, AnnotationSuppressesNonFdIntKey) {
  const auto findings = RunOn("src/servers/defense.h", R"(
    // sciolint: allow(P1) -- keyed by traffic band, not by fd
    std::map<int, BandRule> band_rules_;
  )");
  EXPECT_EQ(CountRule(findings, "P1"), 0);
  EXPECT_EQ(CountRule(findings, "P1", /*include_suppressed=*/true), 1);
}

// --- M1: KernelStats counter naming -----------------------------------------------

TEST(SciolintM1, FlagsBareRowName) {
  const auto findings = RunOn("src/kernel/kernel_stats.h", R"(
#define SCIO_KERNEL_STATS_FIELDS(X) \
  X(syscalls, "syscalls") \
  X(poll_calls, "poll.calls")
  )");
  ASSERT_EQ(CountRule(findings, "M1"), 1);
  EXPECT_NE(FindRule(findings, "M1")->message.find("syscalls"), std::string::npos);
}

TEST(SciolintM1, FlagsDuplicateRowName) {
  const auto findings = RunOn("src/kernel/kernel_stats.h", R"(
#define SCIO_KERNEL_STATS_FIELDS(X) \
  X(poll_calls, "poll.calls") \
  X(poll_calls_again, "poll.calls")
  )");
  EXPECT_GE(CountRule(findings, "M1"), 1);
}

TEST(SciolintM1, ConventionalRowsAreClean) {
  const auto findings = RunOn("src/kernel/kernel_stats.h", R"(
#define SCIO_KERNEL_STATS_FIELDS(X) \
  X(syscalls, "sys.syscalls") \
  X(poll_calls, "poll.calls") \
  X(devpoll_scan_stale_fd, "devpoll.scan_stale_fd")
  )");
  EXPECT_EQ(CountRule(findings, "M1"), 0);
}

TEST(SciolintM1, AnnotationSuppresses) {
  const auto findings = RunOn("src/kernel/kernel_stats.h", R"(
#define SCIO_KERNEL_STATS_FIELDS(X) \
  // sciolint: allow(M1) -- legacy row name pinned by external dashboards
  X(syscalls, "syscalls")
  )");
  EXPECT_EQ(CountRule(findings, "M1"), 0);
  EXPECT_EQ(CountRule(findings, "M1", /*include_suppressed=*/true), 1);
}

// --- ANN: annotation hygiene ------------------------------------------------------

TEST(SciolintAnn, MalformedAnnotationIsItselfAFinding) {
  const auto findings = RunOn("src/core/engine.cc", R"(
    // sciolint: allow(D1)
    long Stamp() { return time(nullptr); }
  )");
  EXPECT_EQ(CountRule(findings, "ANN"), 1) << "missing `-- reason`";
  EXPECT_EQ(CountRule(findings, "D1"), 1)
      << "a malformed annotation must not suppress anything";
}

TEST(SciolintAnn, UnknownRuleIdIsFlagged) {
  const auto findings = RunOn("src/core/engine.cc", R"(
    // sciolint: allow(Z9) -- no such rule
    int x = 0;
  )");
  EXPECT_EQ(CountRule(findings, "ANN"), 1);
}

TEST(SciolintAnn, WellFormedAnnotationIsClean) {
  const auto findings = RunOn("src/core/engine.cc", R"(
    // sciolint: allow(D1) -- startup stamp only
    long Stamp() { return time(nullptr); }
  )");
  EXPECT_EQ(CountRule(findings, "ANN"), 0);
}

// --- baseline suppression ---------------------------------------------------------

TEST(SciolintBaseline, FingerprintSuppressesButKeepsFindingVisible) {
  const std::string source = R"(
    long Stamp() { return time(nullptr); }
  )";
  Analysis first;
  first.AddFile("src/core/engine.cc", source);
  const auto initial = first.Run();
  ASSERT_EQ(CountRule(initial, "D1"), 1);
  const std::string fingerprint = Fingerprint(*FindRule(initial, "D1"));

  Analysis second;
  second.AddFile("src/core/engine.cc", source);
  second.LoadBaseline("# comment line\n" + fingerprint + "\n");
  const auto baselined = second.Run();
  EXPECT_EQ(CountRule(baselined, "D1"), 0);
  ASSERT_EQ(baselined.size(), 1u);
  EXPECT_TRUE(baselined[0].baselined);
}

TEST(SciolintBaseline, FingerprintSurvivesLineDrift) {
  Analysis first;
  first.AddFile("src/core/engine.cc", "long Stamp() { return time(nullptr); }\n");
  Analysis second;
  second.AddFile("src/core/engine.cc",
                 "// new leading comment\n\nlong Stamp() { return time(nullptr); }\n");
  const auto a = first.Run();
  const auto b = second.Run();
  ASSERT_EQ(CountRule(a, "D1"), 1);
  ASSERT_EQ(CountRule(b, "D1"), 1);
  EXPECT_EQ(Fingerprint(*FindRule(a, "D1")), Fingerprint(*FindRule(b, "D1")))
      << "the fingerprint keys on content, not line numbers";
}

// The clean-taxonomy helper is referenced so the fixture stays honest if a
// future test needs it.
TEST(SciolintFixture, CleanTaxonomyParses) {
  const auto findings = RunOn("src/trace/other_header.h", kCleanTaxonomy);
  EXPECT_TRUE(findings.empty());
}

}  // namespace
}  // namespace scio::lint
