// Tests for the SMP scheduling plane: wake-one/exclusive wait-queue
// semantics, the deterministic multi-CPU scheduler, per-worker descriptor
// isolation, and the N-worker pool end to end.

#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "src/kernel/sim_kernel.h"
#include "src/kernel/wait_queue.h"
#include "src/load/httperf.h"
#include "src/load/smp_benchmark_run.h"
#include "src/servers/worker_pool.h"
#include "src/smp/smp_scheduler.h"

namespace scio {
namespace {

// --- wake semantics -----------------------------------------------------------

struct WakeProbe {
  std::vector<std::unique_ptr<Waiter>> waiters;
  std::vector<int> woken;

  Waiter* Make(int id) {
    waiters.push_back(std::make_unique<Waiter>([this, id] { woken.push_back(id); }));
    return waiters.back().get();
  }
};

TEST(WakeSemantics, WakeOneWakesExactlyOneExclusiveInFifoOrder) {
  WaitQueue q;
  WakeProbe probe;
  q.AddExclusive(probe.Make(0));
  q.AddExclusive(probe.Make(1));
  q.AddExclusive(probe.Make(2));

  EXPECT_EQ(q.WakeOne(), 1u);
  ASSERT_EQ(probe.woken.size(), 1u);
  EXPECT_EQ(probe.woken[0], 0);  // FIFO: first registered wakes first

  // The woken waiter stays registered (poll paths detach themselves); a
  // second wake-up hits the same head of the queue.
  probe.woken.clear();
  EXPECT_EQ(q.WakeOne(), 1u);
  ASSERT_EQ(probe.woken.size(), 1u);
  EXPECT_EQ(probe.woken[0], 0);

  // Once the head detaches, the next exclusive waiter moves up.
  probe.waiters[0]->Detach();
  probe.woken.clear();
  EXPECT_EQ(q.WakeOne(), 1u);
  ASSERT_EQ(probe.woken.size(), 1u);
  EXPECT_EQ(probe.woken[0], 1);
}

TEST(WakeSemantics, WakeAllWakesEveryoneRegardlessOfExclusivity) {
  WaitQueue q;
  WakeProbe probe;
  q.Add(probe.Make(0));
  q.AddExclusive(probe.Make(1));
  q.Add(probe.Make(2));
  q.AddExclusive(probe.Make(3));

  EXPECT_EQ(q.WakeAll(), 4u);
  EXPECT_EQ(probe.woken.size(), 4u);
}

TEST(WakeSemantics, WakeOneMixedWakesAllNonExclusivePlusFirstExclusive) {
  WaitQueue q;
  WakeProbe probe;
  q.Add(probe.Make(0));
  q.AddExclusive(probe.Make(1));
  q.Add(probe.Make(2));
  q.AddExclusive(probe.Make(3));  // must be skipped

  EXPECT_EQ(q.WakeOne(), 3u);
  ASSERT_EQ(probe.woken.size(), 3u);
  EXPECT_EQ(probe.woken[0], 0);
  EXPECT_EQ(probe.woken[1], 1);
  EXPECT_EQ(probe.woken[2], 2);
}

TEST(WakeSemantics, ExclusiveCountTracksRegistrations) {
  WaitQueue q;
  WakeProbe probe;
  Waiter* a = probe.Make(0);
  Waiter* b = probe.Make(1);
  q.AddExclusive(a);
  q.Add(b);
  EXPECT_EQ(q.exclusive_count(), 1u);
  q.Remove(a);
  EXPECT_EQ(q.exclusive_count(), 0u);
  EXPECT_FALSE(a->exclusive());  // flag clears on removal
  EXPECT_EQ(q.size(), 1u);
}

// --- SmpScheduler -------------------------------------------------------------

TEST(SmpScheduler, WorkersOnDistinctCpusOverlapInVirtualTime) {
  Simulator sim;
  SimKernel kernel(&sim);
  Process& a = kernel.CreateProcess("a");
  Process& b = kernel.CreateProcess("b");

  SmpScheduler sched(&kernel, /*cpus=*/2, /*seed=*/1);
  sched.AddWorker(&a, [&] { kernel.Charge(Millis(10), ChargeCat::kOther); });
  sched.AddWorker(&b, [&] { kernel.Charge(Millis(10), ChargeCat::kOther); });
  sched.Run();

  // Two 10 ms bodies on two CPUs overlap: wall clock ends at ~10 ms (plus
  // context-switch costs), not 20 ms, while busy time records both.
  EXPECT_LT(kernel.now(), Millis(15));
  EXPECT_GE(kernel.busy_time(), Millis(20));
}

TEST(SmpScheduler, WorkersOnOneCpuSerialize) {
  Simulator sim;
  SimKernel kernel(&sim);
  Process& a = kernel.CreateProcess("a");
  Process& b = kernel.CreateProcess("b");

  SmpScheduler sched(&kernel, /*cpus=*/1, /*seed=*/1);
  sched.AddWorker(&a, [&] { kernel.Charge(Millis(10), ChargeCat::kOther); });
  sched.AddWorker(&b, [&] { kernel.Charge(Millis(10), ChargeCat::kOther); });
  sched.Run();

  EXPECT_GE(kernel.now(), Millis(20));
}

TEST(SmpScheduler, PerCpuLedgersSumToWorkerBusyTime) {
  Simulator sim;
  SimKernel kernel(&sim);
  Process& a = kernel.CreateProcess("a");
  Process& b = kernel.CreateProcess("b");

  SmpScheduler sched(&kernel, /*cpus=*/2, /*seed=*/7);
  sched.AddWorker(&a, [&] { kernel.Charge(Millis(3), ChargeCat::kHttpParse); });
  sched.AddWorker(&b, [&] { kernel.Charge(Millis(5), ChargeCat::kHttpRespond); });
  sched.Run();

  const SimDuration ledger_sum = sched.cpu_ledger(0).Sum() + sched.cpu_ledger(1).Sum();
  EXPECT_EQ(ledger_sum, kernel.busy_time());
  EXPECT_EQ(kernel.attribution().Sum(), kernel.busy_time());
}

// --- end-to-end pool ----------------------------------------------------------

SmpBenchmarkConfig QuickConfig(ServerKind server, ListenerMode mode, int workers,
                               int cpus) {
  SmpBenchmarkConfig config;
  config.server = server;
  config.mode = mode;
  config.workers = workers;
  config.cpus = cpus;
  config.seed = 42;
  config.active.request_rate = 300;
  config.active.duration = Seconds(1);
  config.active.seed = 11;
  config.inactive.connections = 50;
  config.warmup = Millis(500);
  config.drain = Seconds(1);
  return config;
}

TEST(WorkerPoolRun, SingleWorkerServesLoad) {
  const SmpBenchmarkResult r =
      RunSmpBenchmark(QuickConfig(ServerKind::kThttpdDevPoll,
                                  ListenerMode::kSharedWakeAll, 1, 1));
  ASSERT_TRUE(r.setup_ok);
  EXPECT_GT(r.successes, 100u);
  EXPECT_GT(r.total_accepted, 0u);
  // One worker: a SYN can wake at most that worker.
  EXPECT_LE(r.wakeups_per_accept, 1.5);
}

TEST(WorkerPoolRun, WakeAllHerdExceedsWakeOne) {
  const SmpBenchmarkResult herd =
      RunSmpBenchmark(QuickConfig(ServerKind::kThttpdDevPoll,
                                  ListenerMode::kSharedWakeAll, 4, 4));
  const SmpBenchmarkResult one =
      RunSmpBenchmark(QuickConfig(ServerKind::kThttpdDevPoll,
                                  ListenerMode::kSharedWakeOne, 4, 4));
  ASSERT_TRUE(herd.setup_ok);
  ASSERT_TRUE(one.setup_ok);
  EXPECT_GT(herd.wakeups_per_accept, one.wakeups_per_accept);
  EXPECT_GT(one.exclusive_adds, 0u);
}

TEST(WorkerPoolRun, ShardedSpreadsAcceptsAcrossWorkers) {
  const SmpBenchmarkResult r = RunSmpBenchmark(
      QuickConfig(ServerKind::kThttpdDevPoll, ListenerMode::kSharded, 4, 4));
  ASSERT_TRUE(r.setup_ok);
  int workers_with_accepts = 0;
  for (const ServerStats& s : r.worker_stats) {
    if (s.connections_accepted > 0) {
      ++workers_with_accepts;
    }
  }
  EXPECT_GE(workers_with_accepts, 3);
}

TEST(WorkerPoolRun, PhhttpdRoundRobinDeliverySpreadsSignals) {
  const SmpBenchmarkResult r = RunSmpBenchmark(
      QuickConfig(ServerKind::kPhhttpd, ListenerMode::kSharedWakeOne, 4, 4));
  ASSERT_TRUE(r.setup_ok);
  EXPECT_GT(r.successes, 100u);
  // Round-robin delivery: close to one listener wake per accepted conn.
  EXPECT_LT(r.wakeups_per_accept, 2.0);
}

// --- determinism gate ---------------------------------------------------------

TEST(SmpDeterminism, EightCpuDoubleRunIsBitIdentical) {
  const SmpBenchmarkConfig config =
      QuickConfig(ServerKind::kThttpdDevPoll, ListenerMode::kSharedWakeOne, 8, 8);
  const SmpBenchmarkResult first = RunSmpBenchmark(config);
  const SmpBenchmarkResult second = RunSmpBenchmark(config);
  ASSERT_TRUE(first.setup_ok);
  EXPECT_EQ(first.signature, second.signature);
}

TEST(SmpDeterminism, ShardedDoubleRunIsBitIdentical) {
  const SmpBenchmarkConfig config =
      QuickConfig(ServerKind::kPhhttpd, ListenerMode::kSharded, 4, 2);
  const SmpBenchmarkResult first = RunSmpBenchmark(config);
  const SmpBenchmarkResult second = RunSmpBenchmark(config);
  ASSERT_TRUE(first.setup_ok);
  EXPECT_EQ(first.signature, second.signature);
}

TEST(SmpDeterminism, ShardedRoutingStableAcrossLinkFlap) {
  // A mid-run link flap holds SYNs in flight and releases them in a burst
  // when the window closes. Shard routing hashes only the source port, so the
  // burst must land on the same shards it would have without the outage —
  // bit-identical across runs, and every shard still takes accepts.
  SmpBenchmarkConfig config =
      QuickConfig(ServerKind::kThttpdDevPoll, ListenerMode::kSharded, 4, 4);
  config.faults.Add({FaultKind::kLinkFlap, Millis(800), Millis(950), 1.0, 0,
                     LinkDir::kToServer});
  const SmpBenchmarkResult first = RunSmpBenchmark(config);
  const SmpBenchmarkResult second = RunSmpBenchmark(config);
  ASSERT_TRUE(first.setup_ok);
  EXPECT_GT(first.fault_stats.packets_flap_held, 0u) << "the flap actually bit";
  EXPECT_EQ(first.signature, second.signature);
  int workers_with_accepts = 0;
  for (const ServerStats& s : first.worker_stats) {
    if (s.connections_accepted > 0) {
      ++workers_with_accepts;
    }
  }
  EXPECT_GE(workers_with_accepts, 3) << "the flap did not wedge any shard";
}

// --- per-worker descriptor isolation (satellite: worker fd budgets) -----------

// A file that occupies an fd slot and nothing more.
class SlotFile : public File {
 public:
  explicit SlotFile(SimKernel* kernel) : File(kernel) {}
  PollEvents PollMask() const override { return 0; }
};

TEST(WorkerIsolation, SaturatedWorkerDoesNotThrottleSiblings) {
  Simulator sim;
  SimKernel kernel(&sim);
  NetStack net(&kernel, NetConfig{});
  StaticContent content;
  content.AddDocument("/index.html", 1024);

  WorkerPoolConfig pool_config;
  pool_config.workers = 2;
  pool_config.cpus = 2;
  pool_config.mode = ListenerMode::kSharded;
  pool_config.worker_max_fds = 64;
  pool_config.seed = 5;
  WorkerPool pool(&kernel, &net, pool_config,
                  [&content](Sys* sys, int) -> std::unique_ptr<HttpServerBase> {
                    return std::make_unique<ThttpdDevPoll>(sys, &content);
                  });
  ASSERT_EQ(pool.Setup(), 0);

  // Saturate worker 0's table: its budget is its own, not the pool's.
  while (pool.sys(0).InstallFile(std::make_shared<SlotFile>(&kernel)) >= 0) {
  }
  ASSERT_GE(pool.proc(0).fds().open_count(), 63u);
  EXPECT_EQ(pool.proc(1).fds().open_count(), 2u);  // listener + /dev/poll

  HttperfGenerator generator(&net, pool.head_listener(), [] {
    ActiveWorkload w;
    w.request_rate = 400;
    w.duration = Seconds(1);
    w.seed = 13;
    return w;
  }());
  generator.Start(Millis(100));
  pool.Run(Seconds(2));
  kernel.RequestStop();

  // Worker 0 is pinned at its high watermark: every accept is throttled.
  // Worker 1's own table is nearly empty, so it must keep accepting.
  EXPECT_GT(pool.server(0).stats().accepts_throttled, 0u);
  EXPECT_EQ(pool.server(1).stats().accepts_throttled, 0u);
  EXPECT_GT(pool.server(1).stats().connections_accepted, 50u);
  sim.DiscardPending();
}

}  // namespace
}  // namespace scio
