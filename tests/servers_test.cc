// Integration tests: each web server serving real (simulated) traffic
// end-to-end, cross-server invariants, overflow recovery, and hybrid mode
// switching.

#include <gtest/gtest.h>

#include "src/http/http_message.h"
#include "src/http/static_content.h"
#include "src/load/httperf.h"
#include "src/load/inactive_pool.h"
#include "src/servers/hybrid_server.h"
#include "src/servers/phhttpd.h"
#include "src/servers/phhttpd_kqueue.h"
#include "src/servers/thttpd_devpoll.h"
#include "src/servers/thttpd_epoll.h"
#include "src/servers/thttpd_poll.h"
#include "tests/sim_world.h"

namespace scio {
namespace {

// Serve `n` clients through `server`, return how many got complete 200s.
// `rate` controls burstiness: n clients arrive over n/rate seconds.
template <typename Server>
int ServeClients(SimWorldTest& world, Server& server, int n,
                 const std::string& path = "/index.html", double rate = 200) {
  ActiveWorkload workload;
  workload.request_rate = rate;
  workload.duration = SecondsF(n / rate);
  workload.path = path;
  workload.poisson_arrivals = false;
  HttperfGenerator generator(&world.net_, world.listener_, workload);
  generator.Start(world.sim_.now());
  server.Run(world.sim_.now() + Seconds(3));
  int ok = 0;
  for (const ConnRecord& record : generator.records()) {
    ok += record.outcome == ConnOutcome::kOk ? 1 : 0;
  }
  return ok;
}

class ServersTest : public SimWorldTest {
 protected:
  StaticContent content_;
};

TEST_F(ServersTest, ThttpdPollServesRequests) {
  ThttpdPoll server(&sys_, &content_, ServerConfig{});
  // Reuse the fixture's listener by constructing our own server listener.
  server.Setup();
  listener_ = sys_.listener(server.listener_fd());
  const int ok = ServeClients(*this, server, 40);
  EXPECT_EQ(ok, 40);
  EXPECT_EQ(server.stats().responses_sent, 40u);
  EXPECT_EQ(server.stats().bad_requests, 0u);
}

TEST_F(ServersTest, ThttpdDevPollServesRequests) {
  ThttpdDevPoll server(&sys_, &content_, ServerConfig{});
  server.Setup();
  server.SetupDevPoll();
  listener_ = sys_.listener(server.listener_fd());
  const int ok = ServeClients(*this, server, 40);
  EXPECT_EQ(ok, 40);
  EXPECT_GT(kernel_.stats().devpoll_polls, 0u);
  EXPECT_GT(kernel_.stats().devpoll_results_mapped, 0u) << "uses the mmap area";
}

TEST_F(ServersTest, ThttpdDevPollWithoutMmapServes) {
  ThttpdDevPollConfig dp_config;
  dp_config.use_mmap_results = false;
  ThttpdDevPoll server(&sys_, &content_, ServerConfig{}, dp_config);
  server.Setup();
  server.SetupDevPoll();
  listener_ = sys_.listener(server.listener_fd());
  EXPECT_EQ(ServeClients(*this, server, 20), 20);
  EXPECT_GT(kernel_.stats().devpoll_results_copied, 0u);
  EXPECT_EQ(kernel_.stats().devpoll_results_mapped, 0u);
}

TEST_F(ServersTest, ThttpdDevPollFusedIoctlServes) {
  ThttpdDevPollConfig dp_config;
  dp_config.use_fused_ioctl = true;
  ThttpdDevPoll server(&sys_, &content_, ServerConfig{}, dp_config);
  server.Setup();
  server.SetupDevPoll();
  listener_ = sys_.listener(server.listener_fd());
  EXPECT_EQ(ServeClients(*this, server, 20), 20);
}

TEST_F(ServersTest, PhhttpdServesRequests) {
  Phhttpd server(&sys_, &content_, ServerConfig{});
  server.Setup();
  server.SetupSignals();
  listener_ = sys_.listener(server.listener_fd());
  const int ok = ServeClients(*this, server, 40);
  EXPECT_EQ(ok, 40);
  EXPECT_GT(kernel_.stats().rt_signals_delivered, 0u);
  EXPECT_FALSE(server.in_poll_fallback());
}

TEST_F(ServersTest, HybridServesRequestsInSignalMode) {
  HybridServer server(&sys_, &content_, ServerConfig{});
  server.Setup();
  server.SetupDevPoll();
  server.SetupHybrid();
  listener_ = sys_.listener(server.listener_fd());
  EXPECT_EQ(ServeClients(*this, server, 40), 40);
  EXPECT_EQ(server.mode(), EventMode::kSignals) << "light load: stays in signal mode";
}

TEST_F(ServersTest, ThttpdEpollServesRequests) {
  ThttpdEpoll server(&sys_, &content_, ServerConfig{});
  server.Setup();
  server.SetupEpoll();
  listener_ = sys_.listener(server.listener_fd());
  const int ok = ServeClients(*this, server, 40);
  EXPECT_EQ(ok, 40);
  EXPECT_EQ(server.stats().responses_sent, 40u);
  EXPECT_GT(kernel_.stats().epoll_waits, 0u);
  EXPECT_GT(kernel_.stats().epoll_events_delivered, 0u);
}

TEST_F(ServersTest, ThttpdEpollEdgeTriggeredServesRequests) {
  ThttpdEpollConfig config;
  config.edge_triggered = true;
  ThttpdEpoll server(&sys_, &content_, ServerConfig{}, config);
  server.Setup();
  server.SetupEpoll();
  listener_ = sys_.listener(server.listener_fd());
  EXPECT_EQ(ServeClients(*this, server, 40), 40);
  EXPECT_EQ(server.stats().bad_requests, 0u);
}

TEST_F(ServersTest, PhhttpdKqueueServesRequests) {
  PhhttpdKqueue server(&sys_, &content_, ServerConfig{});
  server.Setup();
  server.SetupKqueue();
  listener_ = sys_.listener(server.listener_fd());
  const int ok = ServeClients(*this, server, 40);
  EXPECT_EQ(ok, 40);
  EXPECT_EQ(server.stats().responses_sent, 40u);
  EXPECT_GT(kernel_.stats().kq_kevents, 0u);
  EXPECT_GT(kernel_.stats().kq_changes_applied, 0u);
}

TEST_F(ServersTest, MissingDocumentGets404) {
  ThttpdDevPoll server(&sys_, &content_, ServerConfig{});
  server.Setup();
  server.SetupDevPoll();
  listener_ = sys_.listener(server.listener_fd());
  ActiveWorkload workload;
  workload.request_rate = 100;
  workload.duration = Millis(50);
  workload.path = "/no-such-file";
  workload.poisson_arrivals = false;
  HttperfGenerator generator(&net_, listener_, workload);
  generator.Start(sim_.now());
  server.Run(sim_.now() + Seconds(2));
  int bad_reply = 0;
  for (const ConnRecord& record : generator.records()) {
    bad_reply += record.outcome == ConnOutcome::kBadReply ? 1 : 0;
  }
  EXPECT_EQ(bad_reply, static_cast<int>(generator.attempts()));
  EXPECT_EQ(server.stats().not_found_sent, generator.attempts());
}

TEST_F(ServersTest, MalformedRequestClosedAsBadRequest) {
  ThttpdPoll server(&sys_, &content_, ServerConfig{});
  server.Setup();
  listener_ = sys_.listener(server.listener_fd());
  auto client = net_.Connect(listener_);
  client->on_connected = [&] { client->Write(Chunk{"NONSENSE\r\n\r\n", 0}); };
  server.Run(sim_.now() + Millis(200));
  EXPECT_EQ(server.stats().bad_requests, 1u);
  EXPECT_EQ(server.open_connections(), 0u);
}

TEST_F(ServersTest, IdleTimeoutClosesSilentConnections) {
  ServerConfig config;
  config.idle_timeout = Millis(300);
  ThttpdDevPoll server(&sys_, &content_, config);
  server.Setup();
  server.SetupDevPoll();
  listener_ = sys_.listener(server.listener_fd());
  auto client = net_.Connect(listener_);  // never sends anything
  bool client_saw_eof = false;
  client->on_eof = [&] { client_saw_eof = true; };
  server.Run(sim_.now() + Seconds(2));
  EXPECT_GE(server.stats().idle_timeouts, 1u);
  EXPECT_TRUE(client_saw_eof);
  EXPECT_EQ(server.open_connections(), 0u);
}

TEST_F(ServersTest, TricklingInactiveConnectionSurvivesTimeouts) {
  ServerConfig config;
  config.idle_timeout = Millis(800);
  ThttpdDevPoll server(&sys_, &content_, config);
  server.Setup();
  server.SetupDevPoll();
  listener_ = sys_.listener(server.listener_fd());
  InactiveWorkload inactive;
  inactive.connections = 3;
  inactive.trickle_interval = Millis(200);
  InactivePool pool(&net_, listener_, inactive);
  pool.Start();
  server.Run(sim_.now() + Seconds(3));
  EXPECT_EQ(server.stats().idle_timeouts, 0u) << "trickle bytes reset the idle clock";
  EXPECT_EQ(pool.connected_now(), 3);
  EXPECT_GT(pool.trickle_bytes_sent(), 20u);
  pool.Shutdown();
}

TEST_F(ServersTest, SilentInactivePoolReconnectsAfterServerTimeout) {
  ServerConfig config;
  config.idle_timeout = Millis(300);
  ThttpdDevPoll server(&sys_, &content_, config);
  server.Setup();
  server.SetupDevPoll();
  listener_ = sys_.listener(server.listener_fd());
  InactiveWorkload inactive;
  inactive.connections = 2;
  inactive.trickle_interval = 0;  // fully silent: server times them out (§5)
  InactivePool pool(&net_, listener_, inactive);
  pool.Start();
  server.Run(sim_.now() + Seconds(3));
  EXPECT_GT(server.stats().idle_timeouts, 2u);
  EXPECT_GT(pool.reconnects(), 1u) << "clients reopen when the server drops them";
  pool.Shutdown();
}

TEST_F(ServersTest, PhhttpdRecoversFromQueueOverflow) {
  proc_.set_rt_queue_max(8);  // tiny queue: the burst below must overflow it
  Phhttpd server(&sys_, &content_, ServerConfig{});
  server.Setup();
  server.SetupSignals();
  listener_ = sys_.listener(server.listener_fd());
  const int ok = ServeClients(*this, server, 60, "/index.html", /*rate=*/5000);
  EXPECT_GT(server.stats().overflow_recoveries, 0u);
  EXPECT_EQ(ok, 60) << "the flush+poll recovery drops no requests (§2)";
}

TEST_F(ServersTest, PhhttpdSiblingHandoffStaysInPollMode) {
  proc_.set_rt_queue_max(8);
  PhhttpdConfig ph_config;
  ph_config.recovery = OverflowRecovery::kHandoffToPollSibling;
  Phhttpd server(&sys_, &content_, ServerConfig{}, ph_config);
  server.Setup();
  server.SetupSignals();
  listener_ = sys_.listener(server.listener_fd());
  const int ok = ServeClients(*this, server, 60, "/index.html", /*rate=*/5000);
  EXPECT_EQ(ok, 60);
  EXPECT_TRUE(server.in_poll_fallback())
      << "Brown never implemented the switch back (§6)";
  EXPECT_GT(kernel_.stats().poll_calls, 0u);
}

TEST_F(ServersTest, HybridSwitchesToPollingOnPressureAndBack) {
  proc_.set_rt_queue_max(32);
  HybridServerConfig hybrid_config;
  hybrid_config.policy.high_watermark = 0.5;
  hybrid_config.policy.low_watermark = 0.1;
  hybrid_config.policy.switch_back_dwell = Millis(100);
  HybridServer server(&sys_, &content_, ServerConfig{}, ThttpdDevPollConfig{},
                      hybrid_config);
  server.Setup();
  server.SetupDevPoll();
  server.SetupHybrid();
  listener_ = sys_.listener(server.listener_fd());

  // Burst far beyond the tiny queue, then quiet.
  ActiveWorkload burst;
  burst.request_rate = 2500;
  burst.duration = Millis(400);
  burst.poisson_arrivals = false;
  HttperfGenerator generator(&net_, listener_, burst);
  generator.Start(sim_.now());
  server.Run(sim_.now() + Seconds(3));

  EXPECT_GT(server.stats().mode_switches, 1u) << "switched out and back";
  EXPECT_EQ(server.mode(), EventMode::kSignals) << "returned to signals when calm";
  int ok = 0;
  for (const ConnRecord& record : generator.records()) {
    ok += record.outcome == ConnOutcome::kOk ? 1 : 0;
  }
  EXPECT_GT(ok, 0);
}

TEST_F(ServersTest, StaleEventsCountedNotFatal) {
  proc_.set_rt_queue_max(1024);
  Phhttpd server(&sys_, &content_, ServerConfig{});
  server.Setup();
  server.SetupSignals();
  listener_ = sys_.listener(server.listener_fd());
  // A client that sends a request and immediately closes: by the time the
  // server picks up the data signal, more signals for the same fd are queued
  // behind the close.
  auto client = net_.Connect(listener_);
  client->on_connected = [&] {
    client->Write(Chunk{BuildHttpRequest("/index.html"), 0});
    client->Close();
  };
  server.Run(sim_.now() + Millis(300));
  // No crash, and the server processed everything it could.
  EXPECT_GE(server.stats().connections_accepted, 1u);
}

}  // namespace
}  // namespace scio
