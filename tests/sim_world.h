// Shared fixture: a small simulated world for syscall-level tests — kernel,
// network, one server process with a listener, and helpers to make
// established connections.

#ifndef TESTS_SIM_WORLD_H_
#define TESTS_SIM_WORLD_H_

#include <gtest/gtest.h>

#include <memory>

#include "src/core/sys.h"

namespace scio {

class SimWorldTest : public ::testing::Test {
 public:
  SimWorldTest()
      : kernel_(&sim_),
        net_(&kernel_),
        proc_(kernel_.CreateProcess("server")),
        sys_(&kernel_, &proc_, &net_) {
    listen_fd_ = sys_.Listen();
    EXPECT_GE(listen_fd_, 0);
    listener_ = sys_.listener(listen_fd_);
  }

  // Members are destroyed in reverse declaration order, so net_ (which owns
  // the port allocator) dies before sim_. Pending events still hold sockets
  // whose destructors release ports — drop them while the world is intact.
  ~SimWorldTest() override { sim_.DiscardPending(); }

  // Client connects; run the sim until the SYN lands in the backlog.
  std::shared_ptr<SimSocket> ClientConnect() {
    auto client = net_.Connect(listener_);
    EXPECT_NE(client, nullptr);
    sim_.StepUntil([&] { return listener_->backlog_depth() > 0; },
                   sim_.now() + Seconds(1));
    return client;
  }

  // Full path: connect + accept; returns {client socket, server fd}.
  std::pair<std::shared_ptr<SimSocket>, int> EstablishedPair() {
    auto client = ClientConnect();
    const int fd = sys_.Accept(listen_fd_);
    EXPECT_GE(fd, 0);
    // Let the SYN-ACK reach the client.
    sim_.StepUntil([&] { return client->state() == SimSocket::State::kEstablished; },
                   sim_.now() + Seconds(1));
    return {client, fd};
  }

  // Run the simulation for a fixed span.
  void RunFor(SimDuration d) { sim_.AdvanceTo(sim_.now() + d); }

  Simulator sim_;
  SimKernel kernel_;
  NetStack net_;
  Process& proc_;
  Sys sys_;
  int listen_fd_ = -1;
  std::shared_ptr<SimListener> listener_;
};

}  // namespace scio

#endif  // TESTS_SIM_WORLD_H_
