// Tests for the /dev/poll device (§3): interest-set semantics, POLLREMOVE,
// Solaris OR-compatibility, the mmap result area, driver hints, and hint-
// cache coherence as a randomized property against a full-scan oracle.

#include <gtest/gtest.h>

#include <algorithm>
#include <map>

#include "src/sim/rng.h"
#include "tests/sim_world.h"

namespace scio {
namespace {

class DevPollTest : public SimWorldTest {
 protected:
  int Open(DevPollOptions options = DevPollOptions{}) {
    dpfd_ = sys_.OpenDevPoll(options);
    EXPECT_GE(dpfd_, 0);
    device_ = sys_.devpoll(dpfd_);
    return dpfd_;
  }

  long WriteOne(int fd, PollEvents events) {
    PollFd update{fd, events, 0};
    return sys_.DevPollWrite(dpfd_, {&update, 1});
  }

  // Non-blocking DP_POLL into a local buffer; returns (fd -> revents).
  std::map<int, PollEvents> PollNow(int max = 64) {
    std::vector<PollFd> buffer(static_cast<size_t>(max));
    DvPoll args;
    args.dp_fds = buffer.data();
    args.dp_nfds = max;
    args.dp_timeout = 0;
    const int n = sys_.DevPollPoll(dpfd_, &args);
    std::map<int, PollEvents> results;
    for (int i = 0; i < n; ++i) {
      results[buffer[static_cast<size_t>(i)].fd] = buffer[static_cast<size_t>(i)].revents;
    }
    return results;
  }

  int dpfd_ = -1;
  std::shared_ptr<DevPollDevice> device_;
};

TEST_F(DevPollTest, EmptySetPollsEmpty) {
  Open();
  EXPECT_TRUE(PollNow().empty());
}

TEST_F(DevPollTest, ListenerBecomesReadableOnSyn) {
  Open();
  WriteOne(listen_fd_, kPollIn);
  EXPECT_TRUE(PollNow().empty());
  ClientConnect();
  auto results = PollNow();
  ASSERT_EQ(results.size(), 1u);
  EXPECT_EQ(results[listen_fd_] & kPollIn, kPollIn);
}

TEST_F(DevPollTest, WriteReturnsByteCount) {
  Open();
  PollFd updates[2] = {{listen_fd_, kPollIn, 0}, {listen_fd_, kPollIn, 0}};
  EXPECT_EQ(sys_.DevPollWrite(dpfd_, updates),
            static_cast<long>(2 * sizeof(PollFd)));
}

TEST_F(DevPollTest, NegativeFdInUpdateIsError) {
  Open();
  PollFd bad{-1, kPollIn, 0};
  EXPECT_EQ(sys_.DevPollWrite(dpfd_, {&bad, 1}), -1);
}

TEST_F(DevPollTest, PollRemoveDeletesInterest) {
  Open();
  WriteOne(listen_fd_, kPollIn);
  EXPECT_EQ(device_->interest_count(), 1u);
  WriteOne(listen_fd_, kPollRemove);
  EXPECT_EQ(device_->interest_count(), 0u);
  ClientConnect();
  EXPECT_TRUE(PollNow().empty()) << "removed interest reports nothing";
}

TEST_F(DevPollTest, EventsFieldReplacesByDefault) {
  Open();
  auto [client, fd] = EstablishedPair();
  WriteOne(fd, kPollIn);
  WriteOne(fd, kPollOut);
  const Interest* interest = device_->FindInterest(fd);
  ASSERT_NE(interest, nullptr);
  EXPECT_EQ(interest->events, kPollOut) << "paper §3.1: replace, not OR";
}

TEST_F(DevPollTest, SolarisModeOrsEvents) {
  DevPollOptions options;
  options.solaris_or_semantics = true;
  Open(options);
  auto [client, fd] = EstablishedPair();
  WriteOne(fd, kPollIn);
  WriteOne(fd, kPollOut);
  const Interest* interest = device_->FindInterest(fd);
  ASSERT_NE(interest, nullptr);
  EXPECT_EQ(interest->events, kPollIn | kPollOut);
}

TEST_F(DevPollTest, MultipleIndependentSets) {
  const int dp1 = sys_.OpenDevPoll();
  const int dp2 = sys_.OpenDevPoll();
  PollFd update{listen_fd_, kPollIn, 0};
  ASSERT_EQ(sys_.DevPollWrite(dp1, {&update, 1}), static_cast<long>(sizeof(PollFd)));
  EXPECT_EQ(sys_.devpoll(dp1)->interest_count(), 1u);
  EXPECT_EQ(sys_.devpoll(dp2)->interest_count(), 0u)
      << "a process may open /dev/poll more than once (§3.1)";
}

TEST_F(DevPollTest, ClosedFdReportsPollNval) {
  Open();
  auto [client, fd] = EstablishedPair();
  WriteOne(fd, kPollIn);
  ASSERT_EQ(sys_.Close(fd), 0);
  auto results = PollNow();
  ASSERT_EQ(results.count(fd), 1u);
  EXPECT_EQ(results[fd] & kPollNval, kPollNval);
}

TEST_F(DevPollTest, ReusedFdNumberRebindsToNewFile) {
  Open();
  auto [client1, fd1] = EstablishedPair();
  WriteOne(fd1, kPollIn);
  ASSERT_EQ(sys_.Close(fd1), 0);
  // The next accept reuses the fd number for a different connection.
  auto [client2, fd2] = EstablishedPair();
  ASSERT_EQ(fd2, fd1) << "test requires fd reuse";
  client2->Write(Chunk{"x", 0});
  RunFor(Millis(5));
  auto results = PollNow();
  ASSERT_EQ(results.count(fd2), 1u);
  EXPECT_EQ(results[fd2] & kPollIn, kPollIn) << "interest follows the fd number";
}

TEST_F(DevPollTest, MmapResultAreaDelivery) {
  Open();
  EXPECT_EQ(sys_.DevPollAlloc(dpfd_, 16), 0);
  PollFd* area = sys_.DevPollMmap(dpfd_);
  ASSERT_NE(area, nullptr);
  WriteOne(listen_fd_, kPollIn);
  ClientConnect();
  DvPoll args;
  args.dp_fds = nullptr;  // use the mapping
  args.dp_nfds = 16;
  args.dp_timeout = 0;
  const int n = sys_.DevPollPoll(dpfd_, &args);
  ASSERT_EQ(n, 1);
  EXPECT_EQ(area[0].fd, listen_fd_);
  EXPECT_EQ(area[0].revents & kPollIn, kPollIn);
  EXPECT_EQ(kernel_.stats().devpoll_results_mapped, 1u);
  EXPECT_EQ(kernel_.stats().devpoll_results_copied, 0u);
  EXPECT_EQ(sys_.DevPollMunmap(dpfd_), 0);
  EXPECT_EQ(sys_.DevPollMunmap(dpfd_), -1) << "double munmap";
}

TEST_F(DevPollTest, MmapPollWithoutMappingFails) {
  Open();
  DvPoll args;
  args.dp_fds = nullptr;
  args.dp_nfds = 4;
  args.dp_timeout = 0;
  EXPECT_EQ(sys_.DevPollPoll(dpfd_, &args), -1);
}

TEST_F(DevPollTest, DpAllocRejectsNonPositive) {
  Open();
  EXPECT_EQ(sys_.DevPollAlloc(dpfd_, 0), -1);
  EXPECT_EQ(sys_.DevPollAlloc(dpfd_, -5), -1);
  EXPECT_EQ(sys_.DevPollMmap(dpfd_), nullptr);
}

TEST_F(DevPollTest, ResultBufferCapacityRespected) {
  Open();
  std::vector<std::pair<std::shared_ptr<SimSocket>, int>> pairs;
  for (int i = 0; i < 6; ++i) {
    pairs.push_back(EstablishedPair());
    WriteOne(pairs.back().second, kPollIn);
    pairs.back().first->Write(Chunk{"x", 0});
  }
  RunFor(Millis(5));
  auto results = PollNow(/*max=*/3);
  EXPECT_EQ(results.size(), 3u) << "no more than dp_nfds results";
  // The rest are still ready on the next call.
  auto all = PollNow(/*max=*/16);
  EXPECT_EQ(all.size(), 6u);
}

TEST_F(DevPollTest, BlockingPollWakesOnHint) {
  Open();
  WriteOne(listen_fd_, kPollIn);
  sim_.ScheduleAt(Millis(20), [&] { net_.Connect(listener_); });
  std::vector<PollFd> buffer(4);
  DvPoll args;
  args.dp_fds = buffer.data();
  args.dp_nfds = 4;
  args.dp_timeout = 1000;
  const int n = sys_.DevPollPoll(dpfd_, &args);
  EXPECT_EQ(n, 1);
  EXPECT_GE(kernel_.now(), Millis(20));
  EXPECT_LT(kernel_.now(), Millis(100)) << "woken promptly, not at timeout";
}

TEST_F(DevPollTest, BlockingPollTimesOut) {
  Open();
  WriteOne(listen_fd_, kPollIn);
  std::vector<PollFd> buffer(4);
  DvPoll args;
  args.dp_fds = buffer.data();
  args.dp_nfds = 4;
  args.dp_timeout = 50;
  EXPECT_EQ(sys_.DevPollPoll(dpfd_, &args), 0);
  EXPECT_GE(kernel_.now(), Millis(50));
}

TEST_F(DevPollTest, HintsAvoidDriverCallsForIdleInterests) {
  Open();
  // Establish 20 idle connections plus 1 active.
  std::vector<std::pair<std::shared_ptr<SimSocket>, int>> idle;
  for (int i = 0; i < 20; ++i) {
    idle.push_back(EstablishedPair());
    WriteOne(idle.back().second, kPollIn);
  }
  PollNow();  // first scan polls everyone once (initial hint set)
  const uint64_t baseline = kernel_.stats().devpoll_driver_calls;
  PollNow();
  PollNow();
  const uint64_t after = kernel_.stats().devpoll_driver_calls;
  EXPECT_EQ(after, baseline) << "idle, hint-less interests skip the driver";
  EXPECT_GE(kernel_.stats().devpoll_driver_calls_avoided, 40u);
}

TEST_F(DevPollTest, CachedReadyResultsAreRecheckedEveryScan) {
  Open();
  auto [client, fd] = EstablishedPair();
  WriteOne(fd, kPollIn);
  client->Write(Chunk{"data", 0});
  RunFor(Millis(5));
  auto r1 = PollNow();
  EXPECT_EQ(r1[fd] & kPollIn, kPollIn);
  const uint64_t rechecks_before = kernel_.stats().devpoll_cached_ready_rechecks;
  auto r2 = PollNow();
  EXPECT_EQ(r2[fd] & kPollIn, kPollIn);
  EXPECT_GT(kernel_.stats().devpoll_cached_ready_rechecks, rechecks_before)
      << "§3.2: a cached result indicating readiness is reevaluated each time";
  // Drain: the recheck must observe not-ready even with no new hint.
  EXPECT_GT(sys_.Read(fd, 100).n, 0u);
  auto r3 = PollNow();
  EXPECT_EQ(r3.count(fd), 0u) << "ready -> not-ready transition caught by recheck";
}

TEST_F(DevPollTest, HintsDisabledPollsEveryInterestEveryScan) {
  DevPollOptions options;
  options.hints_enabled = false;
  Open(options);
  for (int i = 0; i < 5; ++i) {
    auto [client, fd] = EstablishedPair();
    WriteOne(fd, kPollIn);
    (void)client;
  }
  const uint64_t before = kernel_.stats().devpoll_driver_calls;
  PollNow();
  PollNow();
  EXPECT_EQ(kernel_.stats().devpoll_driver_calls, before + 10u);
  EXPECT_EQ(kernel_.stats().devpoll_hints_set, 0u);
}

TEST_F(DevPollTest, FusedWritePollMatchesSeparateCalls) {
  Open();
  auto [client, fd] = EstablishedPair();
  client->Write(Chunk{"go", 0});
  RunFor(Millis(5));
  PollFd update{fd, kPollIn, 0};
  std::vector<PollFd> buffer(4);
  DvPoll args;
  args.dp_fds = buffer.data();
  args.dp_nfds = 4;
  args.dp_timeout = 0;
  const uint64_t syscalls_before = kernel_.stats().syscalls;
  const int n = sys_.DevPollWritePoll(dpfd_, {&update, 1}, &args);
  EXPECT_EQ(kernel_.stats().syscalls, syscalls_before + 1) << "one trap, two ops";
  ASSERT_EQ(n, 1);
  EXPECT_EQ(buffer[0].fd, fd);
  EXPECT_EQ(buffer[0].revents & kPollIn, kPollIn);
}

TEST_F(DevPollTest, DevPollFdIsItselfPollable) {
  Open();
  WriteOne(listen_fd_, kPollIn);
  PollNow();  // settle: nothing ready, hints clear
  EXPECT_EQ(device_->PollMask(), 0);
  ClientConnect();
  EXPECT_EQ(device_->PollMask(), kPollIn) << "pending hint implies readable";
}

TEST_F(DevPollTest, CloseDestroysInterestSet) {
  Open();
  auto [client, fd] = EstablishedPair();
  WriteOne(fd, kPollIn);
  auto server_sock = sys_.socket(fd);
  EXPECT_EQ(server_sock->status_listener_count(), 1u);
  ASSERT_EQ(sys_.Close(dpfd_), 0);
  EXPECT_EQ(server_sock->status_listener_count(), 0u)
      << "backmap links unregistered when the set dies";
}

// --- scan counter taxonomy --------------------------------------------------------
//
// Every scanned interest falls into exactly one bucket: the driver was
// called, the driver was skipped (hint cache), or the fd was stale. The sum
// is pinned so a future fast path cannot silently fall out of accounting.
class DevPollTaxonomy : public DevPollTest,
                        public ::testing::WithParamInterface<bool> {};

TEST_P(DevPollTaxonomy, ScanCountersPartitionInterestsScanned) {
  DevPollOptions options;
  options.hinted_first_scan = GetParam();
  Open(options);
  // Mixed population: idle interests (driver skipped once hints settle), an
  // active one (driver called), and a closed fd left registered (stale).
  std::vector<std::pair<std::shared_ptr<SimSocket>, int>> conns;
  for (int i = 0; i < 4; ++i) {
    conns.push_back(EstablishedPair());
    WriteOne(conns.back().second, kPollIn);
  }
  auto [stale_client, stale_fd] = EstablishedPair();
  WriteOne(stale_fd, kPollIn);
  ASSERT_EQ(sys_.Close(stale_fd), 0);  // improper usage: interest outlives the fd
  conns[0].first->Write(Chunk{"x", 0});
  RunFor(Millis(5));
  PollNow();
  PollNow();
  EXPECT_GT(sys_.Read(conns[0].second, 100).n, 0u);  // ready -> not-ready
  PollNow();
  const KernelStats& stats = kernel_.stats();
  EXPECT_GT(stats.devpoll_interests_scanned, 0u);
  EXPECT_GT(stats.devpoll_driver_calls, 0u);
  EXPECT_GT(stats.devpoll_scan_stale_fd, 0u);
  EXPECT_EQ(stats.devpoll_interests_scanned,
            stats.devpoll_driver_calls + stats.devpoll_driver_calls_avoided +
                stats.devpoll_scan_stale_fd)
      << "a scanned interest escaped the counter taxonomy";
}

INSTANTIATE_TEST_SUITE_P(BothScanModes, DevPollTaxonomy, ::testing::Bool());

// --- hint-cache coherence property ------------------------------------------------
//
// Whatever interleaving of traffic, reads, interest updates, and scans
// happens, a DP_POLL result must always equal the ground truth computed by
// polling every live interest directly.
struct PropertyParam {
  uint64_t seed;
  bool hinted_first;
};

class DevPollCoherence : public DevPollTest,
                         public ::testing::WithParamInterface<PropertyParam> {};

TEST_P(DevPollCoherence, ScanAlwaysMatchesGroundTruth) {
  DevPollOptions options;
  options.hinted_first_scan = GetParam().hinted_first;
  Open(options);
  Rng rng(GetParam().seed);

  std::vector<std::pair<std::shared_ptr<SimSocket>, int>> conns;
  for (int i = 0; i < 8; ++i) {
    conns.push_back(EstablishedPair());
    WriteOne(conns.back().second, kPollIn);
  }

  for (int step = 0; step < 300; ++step) {
    const size_t i = static_cast<size_t>(rng.UniformInt(0, 7));
    switch (rng.UniformInt(0, 4)) {
      case 0:  // client sends
        conns[i].first->Write(Chunk{"b", 0});
        break;
      case 1:  // server drains
        // sciolint: allow(E1) -- random drain; empty reads are expected
        (void)sys_.Read(conns[i].second, 16);
        break;
      case 2:  // toggle interest bits
        WriteOne(conns[i].second,
                 rng.Bernoulli(0.5) ? kPollIn : static_cast<PollEvents>(kPollIn | kPollOut));
        break;
      case 3:  // let time pass (packets land)
        RunFor(Micros(rng.UniformInt(0, 2000)));
        break;
      case 4:
        break;  // scan immediately
    }

    // Settle in-flight packets: the oracle below is a same-instant snapshot,
    // and a packet landing mid-scan would (legitimately, as on real
    // hardware) be missed by the scan but seen by the oracle.
    RunFor(Millis(2));
    auto scanned = PollNow(16);
    // Oracle: direct PollMask() of each live interest.
    std::map<int, PollEvents> truth;
    for (auto& [client, fd] : conns) {
      const Interest* interest = device_->FindInterest(fd);
      if (interest == nullptr) {
        continue;
      }
      auto file = sys_.socket(fd);
      const PollEvents revents =
          file->PollMask() & (interest->events | kPollAlwaysReported);
      if (revents != 0) {
        truth[fd] = revents;
      }
    }
    ASSERT_EQ(scanned, truth) << "hint cache diverged from ground truth at step "
                              << step;
  }
}

INSTANTIATE_TEST_SUITE_P(
    RandomInterleavings, DevPollCoherence,
    ::testing::Values(PropertyParam{11, false}, PropertyParam{12, false},
                      PropertyParam{13, false}, PropertyParam{21, true},
                      PropertyParam{22, true}, PropertyParam{23, true}));

}  // namespace
}  // namespace scio
