// Tests for the load generators and the end-to-end benchmark harness,
// including exact determinism of full runs.

#include <gtest/gtest.h>

#include <sstream>
#include <string>

#include "src/load/abusive_clients.h"
#include "src/load/benchmark_run.h"
#include "src/load/httperf.h"
#include "src/load/inactive_pool.h"
#include "tests/sim_world.h"

namespace scio {
namespace {

class LoadTest : public SimWorldTest {};

TEST_F(LoadTest, GeneratorHitsTargetCountDeterministic) {
  ActiveWorkload workload;
  workload.request_rate = 1000;
  workload.duration = Seconds(2);
  workload.poisson_arrivals = false;
  HttperfGenerator generator(&net_, listener_, workload);
  generator.Start(0);
  EXPECT_EQ(generator.attempts(), 2000u);
}

TEST_F(LoadTest, PoissonArrivalCountConcentratesAroundTarget) {
  ActiveWorkload workload;
  workload.request_rate = 1000;
  workload.duration = Seconds(4);
  workload.poisson_arrivals = true;
  workload.seed = 5;
  HttperfGenerator generator(&net_, listener_, workload);
  generator.Start(0);
  EXPECT_NEAR(static_cast<double>(generator.attempts()), 4000.0, 4 * 63.0)
      << "within ~4 sigma of rate*duration";
}

TEST_F(LoadTest, RefusedConnectionsRecorded) {
  ASSERT_EQ(sys_.Close(listen_fd_), 0);  // every SYN refused
  ActiveWorkload workload;
  workload.request_rate = 100;
  workload.duration = Millis(100);
  workload.poisson_arrivals = false;
  HttperfGenerator generator(&net_, listener_, workload);
  generator.Start(0);
  sim_.AdvanceTo(Seconds(2));
  for (const ConnRecord& record : generator.records()) {
    EXPECT_EQ(record.outcome, ConnOutcome::kRefused);
    EXPECT_TRUE(record.IsError());
  }
}

TEST_F(LoadTest, UnservedClientsTimeOut) {
  // Nobody accepts: connections establish (backlog) but never get replies.
  ActiveWorkload workload;
  workload.request_rate = 50;
  workload.duration = Millis(100);
  workload.client_timeout = Millis(200);
  workload.poisson_arrivals = false;
  HttperfGenerator generator(&net_, listener_, workload);
  generator.Start(0);
  sim_.AdvanceTo(Seconds(2));
  int timeouts = 0;
  for (const ConnRecord& record : generator.records()) {
    timeouts += record.outcome == ConnOutcome::kTimeout ? 1 : 0;
  }
  EXPECT_EQ(timeouts, static_cast<int>(generator.attempts()));
}

TEST_F(LoadTest, PortExhaustionRecordedAsNoPorts) {
  NetConfig tight;
  tight.client_port_count = 5;
  NetStack small_net(&kernel_, tight);
  auto listener = std::make_shared<SimListener>(&kernel_, &small_net, 128);
  ActiveWorkload workload;
  workload.request_rate = 100;
  workload.duration = Millis(200);
  workload.client_timeout = Seconds(30);  // ports stay held
  workload.poisson_arrivals = false;
  HttperfGenerator generator(&small_net, listener, workload);
  generator.Start(0);
  sim_.AdvanceTo(Seconds(1));
  int no_ports = 0;
  for (const ConnRecord& record : generator.records()) {
    no_ports += record.outcome == ConnOutcome::kNoPorts ? 1 : 0;
  }
  EXPECT_EQ(no_ports, static_cast<int>(generator.attempts()) - 5)
      << "only port_count connections can be in flight";
}

TEST_F(LoadTest, InactivePoolReachesTargetPopulation) {
  InactiveWorkload inactive;
  inactive.connections = 10;
  InactivePool pool(&net_, listener_, inactive);
  pool.Start();
  sim_.AdvanceTo(Seconds(2));
  // Accept everything so the pool members establish fully.
  while (sys_.Accept(listen_fd_) >= 0) {
  }
  sim_.AdvanceTo(Seconds(3));
  EXPECT_EQ(pool.connected_now(), 10);
  pool.Shutdown();
  EXPECT_EQ(pool.connected_now(), 0);
}

// Regression: a slowloris member whose connection the server reaps while the
// fleet is mid-teardown must still release its client port. The churn loop
// (accept + immediate close, the pressure-reap pattern) used to race the
// fleet's reconnect callbacks and leak ports into in_use_ forever.
TEST_F(LoadTest, SlowlorisTeardownReleasesPortsUnderPressure) {
  AbusiveWorkload abusive;
  abusive.slowloris_connections = 8;
  abusive.slowloris_write_interval = Millis(50);
  abusive.slowloris_reconnect_delay = Millis(50);
  AbusiveFleet fleet(&net_, listener_, abusive);
  fleet.Start(0, Millis(800));
  // Server under fd pressure: reap (close) every connection the moment it is
  // accepted, forcing each member through its reconnect path over and over.
  for (int step = 0; step < 100; ++step) {
    RunFor(Millis(10));
    int fd;
    while ((fd = sys_.Accept(listen_fd_)) >= 0) {
      EXPECT_EQ(sys_.Close(fd), 0);
    }
  }
  fleet.Shutdown();
  sim_.RunAll();
  EXPECT_GT(fleet.slowloris_reconnects(), 0u) << "the churn actually happened";
  EXPECT_EQ(net_.ports().in_use(), 0) << "every reaped member gave its port back";
}

// --- full harness ------------------------------------------------------------------

TEST(BenchmarkRunTest, SmallRunProducesSaneNumbers) {
  BenchmarkRunConfig config;
  config.server = ServerKind::kThttpdDevPoll;
  config.active.request_rate = 300;
  config.active.duration = Seconds(2);
  config.inactive.connections = 10;
  config.warmup = Millis(500);
  config.drain = Seconds(1);
  const BenchmarkResult result = RunBenchmark(config);
  EXPECT_GT(result.attempts, 500u);
  EXPECT_EQ(result.errors, 0u);
  EXPECT_NEAR(result.reply_avg, 300.0, 60.0);
  EXPECT_GT(result.median_conn_ms, 0.0);
  EXPECT_LT(result.median_conn_ms, 50.0);
  EXPECT_GT(result.cpu_utilization, 0.0);
  EXPECT_LT(result.cpu_utilization, 1.0);
}

class DeterminismTest : public ::testing::TestWithParam<ServerKind> {};

// Everything that must be bit-identical across two runs of the same seed —
// the event engine's replay contract (same-time events in schedule order).
std::string MetricsSignature(const BenchmarkResult& r) {
  std::ostringstream out;
  out.precision(17);
  out << r.attempts << '|' << r.successes << '|' << r.errors << '|' << r.pending
      << '|' << r.reply_avg << '|' << r.reply_min << '|' << r.reply_max << '|'
      << r.reply_stddev << '|' << r.median_conn_ms << '|' << r.p90_conn_ms << '|'
      << r.cpu_utilization << '|' << r.kernel_stats.syscalls << '|'
      << r.kernel_stats.poll_driver_calls << '|'
      << r.kernel_stats.devpoll_driver_calls << '|'
      << r.kernel_stats.devpoll_interests_scanned << '|'
      << r.kernel_stats.devpoll_driver_calls_avoided << '|'
      << r.kernel_stats.devpoll_scan_stale_fd << '|'
      << r.server_stats.connections_accepted;
  for (const double v : r.reply_series) {
    out << '|' << v;
  }
  return out.str();
}

TEST_P(DeterminismTest, IdenticalSeedsIdenticalResults) {
  BenchmarkRunConfig config;
  config.server = GetParam();
  config.active.request_rate = 400;
  config.active.duration = Seconds(1);
  config.inactive.connections = 20;
  config.warmup = Millis(500);
  config.drain = Millis(500);
  const BenchmarkResult a = RunBenchmark(config);
  const BenchmarkResult b = RunBenchmark(config);
  EXPECT_EQ(a.successes, b.successes);
  EXPECT_EQ(a.errors, b.errors);
  EXPECT_EQ(a.kernel_stats.syscalls, b.kernel_stats.syscalls);
  EXPECT_EQ(a.kernel_stats.poll_driver_calls, b.kernel_stats.poll_driver_calls);
  EXPECT_EQ(a.kernel_stats.devpoll_driver_calls, b.kernel_stats.devpoll_driver_calls);
  EXPECT_DOUBLE_EQ(a.median_conn_ms, b.median_conn_ms);
  EXPECT_EQ(MetricsSignature(a), MetricsSignature(b));
}

INSTANTIATE_TEST_SUITE_P(AllServers, DeterminismTest,
                         ::testing::Values(ServerKind::kThttpdPoll,
                                           ServerKind::kThttpdDevPoll,
                                           ServerKind::kPhhttpd, ServerKind::kHybrid));

// Retry backoff jitter: a config that forces refusals (accept-EMFILE window
// fills the backlog, later SYNs bounce) so clients actually walk the
// backoff path.
BenchmarkRunConfig RetryStormConfig() {
  BenchmarkRunConfig config;
  config.server = ServerKind::kThttpdDevPoll;
  config.active.request_rate = 600;
  config.active.duration = Seconds(2);
  config.active.max_retries = 3;
  config.inactive.connections = 0;
  config.warmup = Millis(500);
  config.drain = Seconds(1);
  config.faults.Add({FaultKind::kAcceptEmfile, Millis(700), Millis(1700), 1.0, 0,
                     LinkDir::kBoth});
  return config;
}

TEST(BenchmarkRunTest, RetryJitterDrawsNothingWhenZero) {
  // jitter = 0 (the default) must not consume RNG draws: two runs are
  // byte-identical, the contract that keeps every pre-jitter baseline stable.
  const BenchmarkRunConfig config = RetryStormConfig();
  const BenchmarkResult a = RunBenchmark(config);
  const BenchmarkResult b = RunBenchmark(config);
  EXPECT_GT(a.client_retries, 0u) << "the storm must actually cause retries";
  EXPECT_EQ(a.client_retries, b.client_retries);
  EXPECT_EQ(MetricsSignature(a), MetricsSignature(b));
}

TEST(BenchmarkRunTest, RetryJitterIsSeededAndDeterministic) {
  BenchmarkRunConfig config = RetryStormConfig();
  config.active.retry_jitter = 0.5;
  const BenchmarkResult a = RunBenchmark(config);
  const BenchmarkResult b = RunBenchmark(config);
  EXPECT_GT(a.client_retries, 0u);
  EXPECT_EQ(a.client_retries, b.client_retries);
  EXPECT_EQ(MetricsSignature(a), MetricsSignature(b));
  // And the knob is live: a jittered timeline differs from the unjittered one.
  const BenchmarkResult plain = RunBenchmark(RetryStormConfig());
  EXPECT_NE(MetricsSignature(a), MetricsSignature(plain));
}

TEST(BenchmarkRunTest, DevPollBeatsStockPollUnderInactiveLoad) {
  // The paper's headline claim, as an executable assertion: with hundreds of
  // inactive connections, /dev/poll spends far less kernel effort than
  // stock poll() and serves with lower latency.
  BenchmarkRunConfig config;
  config.active.request_rate = 600;
  config.active.duration = Seconds(3);
  config.inactive.connections = 251;

  config.server = ServerKind::kThttpdPoll;
  const BenchmarkResult poll_result = RunBenchmark(config);
  config.server = ServerKind::kThttpdDevPoll;
  const BenchmarkResult devpoll_result = RunBenchmark(config);

  EXPECT_LT(devpoll_result.median_conn_ms, poll_result.median_conn_ms / 3.0);
  EXPECT_LT(devpoll_result.kernel_stats.devpoll_driver_calls,
            poll_result.kernel_stats.poll_driver_calls / 10);
  EXPECT_GE(devpoll_result.reply_avg, poll_result.reply_avg * 0.98);
  EXPECT_LE(devpoll_result.error_pct, poll_result.error_pct);
}

TEST(BenchmarkRunTest, ServerKindNamesAreStable) {
  EXPECT_EQ(ServerKindName(ServerKind::kThttpdPoll), "thttpd-poll");
  EXPECT_EQ(ServerKindName(ServerKind::kThttpdDevPoll), "thttpd-devpoll");
  EXPECT_EQ(ServerKindName(ServerKind::kPhhttpd), "phhttpd");
  EXPECT_EQ(ServerKindName(ServerKind::kHybrid), "hybrid");
}

}  // namespace
}  // namespace scio
