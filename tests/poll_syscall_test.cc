// Tests for the classic poll(2) implementation and its cost accounting.

#include <gtest/gtest.h>

#include "tests/sim_world.h"

namespace scio {
namespace {

class PollSyscallTest : public SimWorldTest {};

TEST_F(PollSyscallTest, ReportsListenerReadable) {
  ClientConnect();
  PollFd pfd{listen_fd_, kPollIn, 0};
  EXPECT_EQ(sys_.Poll({&pfd, 1}, 0), 1);
  EXPECT_EQ(pfd.revents & kPollIn, kPollIn);
}

TEST_F(PollSyscallTest, TimeoutZeroNeverBlocks) {
  PollFd pfd{listen_fd_, kPollIn, 0};
  const SimTime before = kernel_.now();
  EXPECT_EQ(sys_.Poll({&pfd, 1}, 0), 0);
  EXPECT_LT(kernel_.now() - before, Millis(1));
}

TEST_F(PollSyscallTest, BlocksUntilEvent) {
  sim_.ScheduleAt(Millis(30), [&] { net_.Connect(listener_); });
  PollFd pfd{listen_fd_, kPollIn, 0};
  EXPECT_EQ(sys_.Poll({&pfd, 1}, 1000), 1);
  EXPECT_GE(kernel_.now(), Millis(30));
  EXPECT_LT(kernel_.now(), Millis(100));
}

TEST_F(PollSyscallTest, BlocksUntilTimeout) {
  PollFd pfd{listen_fd_, kPollIn, 0};
  EXPECT_EQ(sys_.Poll({&pfd, 1}, 40), 0);
  EXPECT_GE(kernel_.now(), Millis(40));
}

TEST_F(PollSyscallTest, BadFdReportsNval) {
  PollFd pfd{77, kPollIn, 0};
  EXPECT_EQ(sys_.Poll({&pfd, 1}, 0), 1) << "POLLNVAL counts as ready, as in Linux";
  EXPECT_EQ(pfd.revents, kPollNval);
}

TEST_F(PollSyscallTest, NegativeFdIgnored) {
  PollFd pfd{-1, kPollIn, 0};
  EXPECT_EQ(sys_.Poll({&pfd, 1}, 0), 0);
  EXPECT_EQ(pfd.revents, 0);
}

TEST_F(PollSyscallTest, ErrHupAlwaysReported) {
  auto [client, fd] = EstablishedPair();
  client->Close();
  RunFor(Millis(5));
  PollFd pfd{fd, 0, 0};  // no requested events at all
  EXPECT_EQ(sys_.Poll({&pfd, 1}, 0), 1);
  EXPECT_EQ(pfd.revents & kPollHup, kPollHup);
}

TEST_F(PollSyscallTest, EveryScanCallsEveryDriver) {
  std::vector<PollFd> pfds;
  pfds.push_back({listen_fd_, kPollIn, 0});
  std::vector<std::pair<std::shared_ptr<SimSocket>, int>> conns;
  for (int i = 0; i < 9; ++i) {
    conns.push_back(EstablishedPair());
    pfds.push_back({conns.back().second, kPollIn, 0});
  }
  const uint64_t before = kernel_.stats().poll_driver_calls;
  conns[0].first->Write(Chunk{"x", 0});
  RunFor(Millis(5));
  EXPECT_EQ(sys_.Poll(pfds, 0), 1);
  EXPECT_EQ(kernel_.stats().poll_driver_calls, before + 10)
      << "stock poll has no hints: all 10 drivers polled";
}

TEST_F(PollSyscallTest, WaitQueueChurnAccountedWhenBlocking) {
  std::vector<PollFd> pfds;
  pfds.push_back({listen_fd_, kPollIn, 0});
  for (int i = 0; i < 4; ++i) {
    auto [client, fd] = EstablishedPair();
    pfds.push_back({fd, kPollIn, 0});
  }
  const uint64_t adds_before = kernel_.stats().poll_waitqueue_adds;
  sim_.ScheduleAt(kernel_.now() + Millis(10), [&] { net_.Connect(listener_); });
  EXPECT_EQ(sys_.Poll(pfds, 1000), 1) << "the scheduled connect wakes the poll";
  EXPECT_EQ(kernel_.stats().poll_waitqueue_adds, adds_before + 5)
      << "one waiter per polled fd per sleep";
  EXPECT_EQ(kernel_.stats().poll_waitqueue_removes, adds_before + 5);
}

TEST_F(PollSyscallTest, NoWaitQueueChurnWhenImmediatelyReady) {
  ClientConnect();
  PollFd pfd{listen_fd_, kPollIn, 0};
  const uint64_t before = kernel_.stats().poll_waitqueue_adds;
  EXPECT_EQ(sys_.Poll({&pfd, 1}, 1000), 1);
  EXPECT_EQ(kernel_.stats().poll_waitqueue_adds, before)
      << "ready on first scan: never slept";
}

TEST_F(PollSyscallTest, WaitQueueChargesCanBeDisabled) {
  PollSyscallOptions options;
  options.charge_waitqueue = false;
  PollSyscall cheap(&kernel_, &proc_, options);
  PollFd pfd{listen_fd_, kPollIn, 0};
  const SimDuration busy_before = kernel_.busy_time();
  EXPECT_EQ(cheap.Poll({&pfd, 1}, 10), 0);  // sleeps, times out
  PollSyscall normal(&kernel_, &proc_, PollSyscallOptions{});
  const SimDuration cheap_cost = kernel_.busy_time() - busy_before;
  const SimDuration busy_mid = kernel_.busy_time();
  EXPECT_EQ(normal.Poll({&pfd, 1}, 10), 0);
  const SimDuration normal_cost = kernel_.busy_time() - busy_mid;
  EXPECT_GT(normal_cost, cheap_cost) << "ABL-6 knob changes the charge";
  // The waiters are still real either way (correctness unchanged).
  EXPECT_GT(kernel_.stats().poll_waitqueue_adds, 0u);
}

TEST_F(PollSyscallTest, MultipleReadyReportedTogether) {
  std::vector<PollFd> pfds;
  std::vector<std::pair<std::shared_ptr<SimSocket>, int>> conns;
  for (int i = 0; i < 5; ++i) {
    conns.push_back(EstablishedPair());
    pfds.push_back({conns.back().second, kPollIn | kPollOut, 0});
  }
  conns[1].first->Write(Chunk{"x", 0});
  conns[3].first->Write(Chunk{"y", 0});
  RunFor(Millis(5));
  // All are writable; 1 and 3 also readable.
  EXPECT_EQ(sys_.Poll(pfds, 0), 5);
  EXPECT_EQ(pfds[1].revents & kPollIn, kPollIn);
  EXPECT_EQ(pfds[3].revents & kPollIn, kPollIn);
  EXPECT_EQ(pfds[0].revents, kPollOut);
}

}  // namespace
}  // namespace scio
