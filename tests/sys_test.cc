// Tests for the Sys syscall facade: error paths, cost accounting, and the
// counters that benches rely on.

#include <gtest/gtest.h>

#include "tests/sim_world.h"

namespace scio {
namespace {

class SysTest : public SimWorldTest {};

TEST_F(SysTest, EverySyscallCharges) {
  const SimDuration busy0 = kernel_.busy_time();
  EXPECT_EQ(sys_.Poll({static_cast<PollFd*>(nullptr), 0}, 0), 0);
  const SimDuration busy1 = kernel_.busy_time();
  EXPECT_GE(busy1 - busy0, kernel_.cost().syscall_entry);
}

TEST_F(SysTest, ReadOnBadFdIsEmptyNotEof) {
  const ReadResult r = sys_.Read(12345, 100);
  EXPECT_EQ(r.n, 0u);
  EXPECT_FALSE(r.eof);
}

TEST_F(SysTest, ReadOnListenerFdIsRejected) {
  // A listener is a File but not a SimSocket; read must not crash.
  const ReadResult r = sys_.Read(listen_fd_, 100);
  EXPECT_EQ(r.n, 0u);
}

TEST_F(SysTest, CloseBadFdFails) { EXPECT_EQ(sys_.Close(777), -1); }

TEST_F(SysTest, DevPollOpsOnNonDevPollFdFail) {
  EXPECT_EQ(sys_.DevPollWrite(listen_fd_, {}), -1);
  EXPECT_EQ(sys_.DevPollAlloc(listen_fd_, 4), -1);
  EXPECT_EQ(sys_.DevPollMmap(listen_fd_), nullptr);
  EXPECT_EQ(sys_.DevPollMunmap(listen_fd_), -1);
  DvPoll args;
  EXPECT_EQ(sys_.DevPollPoll(listen_fd_, &args), -1);
  EXPECT_EQ(sys_.DevPollWritePoll(listen_fd_, {}, &args), -1);
}

TEST_F(SysTest, SocketAccessorsTypeCheck) {
  EXPECT_EQ(sys_.socket(listen_fd_), nullptr);
  EXPECT_NE(sys_.listener(listen_fd_), nullptr);
  const int dp = sys_.OpenDevPoll();
  EXPECT_NE(sys_.devpoll(dp), nullptr);
  EXPECT_EQ(sys_.listener(dp), nullptr);
}

TEST_F(SysTest, ByteCountersTrackTraffic) {
  auto [client, fd] = EstablishedPair();
  client->Write(Chunk{"12345", 0});
  RunFor(Millis(5));
  EXPECT_EQ(sys_.Read(fd, 100).n, 5u);
  EXPECT_EQ(sys_.Write(fd, Chunk{"abc", 1000}), 1003);
  EXPECT_EQ(kernel_.stats().bytes_read, 5u);
  EXPECT_EQ(kernel_.stats().bytes_written, 1003u);
}

TEST_F(SysTest, WriteCostScalesWithBytes) {
  auto [client, fd] = EstablishedPair();
  kernel_.Charge(Nanos(1), ChargeCat::kOther);  // flush interrupt debt
  const SimDuration busy0 = kernel_.busy_time();
  EXPECT_EQ(sys_.Write(fd, Chunk{"", 100}), 100);
  const SimDuration small = kernel_.busy_time() - busy0;
  const SimDuration busy1 = kernel_.busy_time();
  EXPECT_EQ(sys_.Write(fd, Chunk{"", 10000}), 10000);
  const SimDuration large = kernel_.busy_time() - busy1;
  EXPECT_GT(large, small + kernel_.cost().write_per_byte * 9000);
}

TEST_F(SysTest, ListenExhaustionReturnsError) {
  int fd = 0;
  int count = 0;
  while ((fd = sys_.Listen()) >= 0) {
    ++count;
  }
  EXPECT_EQ(fd, -1);
  EXPECT_EQ(count + 1, proc_.fds().max_fds()) << "fixture already holds one fd";
}

TEST_F(SysTest, FlushRtSignalsChargesPerSignal) {
  auto [client, fd] = EstablishedPair();
  ASSERT_EQ(sys_.ArmAsync(fd, kSigRtMin + 1), 0);
  for (int i = 0; i < 10; ++i) {
    client->Write(Chunk{"x", 0});
  }
  RunFor(Millis(10));
  kernel_.Charge(Nanos(1), ChargeCat::kOther);
  const SimDuration busy0 = kernel_.busy_time();
  EXPECT_EQ(sys_.FlushRtSignals(), 10u);
  EXPECT_GE(kernel_.busy_time() - busy0,
            kernel_.cost().syscall_entry + 10 * kernel_.cost().rt_signal_flush_per_sig);
}

}  // namespace
}  // namespace scio
