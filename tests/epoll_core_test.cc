// Tests for the epoll-style successor core: ready-list semantics, the
// level/edge differential, EPOLLONESHOT rearm, truncation never losing
// readiness, stale-fd auto-removal, attribution, and fault injection.

#include <gtest/gtest.h>

#include <set>
#include <vector>

#include "src/fault/fault_plane.h"
#include "tests/sim_world.h"

namespace scio {
namespace {

class EpollCoreTest : public SimWorldTest {
 protected:
  int OpenDev() {
    const int epfd = sys_.OpenEpoll();
    EXPECT_GE(epfd, 0);
    return epfd;
  }
};

TEST_F(EpollCoreTest, CtlAddWaitDeliversReadable) {
  const int epfd = OpenDev();
  auto [client, fd] = EstablishedPair();
  ASSERT_EQ(sys_.EpollCtl(epfd, EpollOp::kAdd, fd, kPollIn), 0);
  client->Write(Chunk{"GET ", 0});
  RunFor(Millis(5));
  PollFd out[4];
  ASSERT_EQ(sys_.EpollWait(epfd, out, 4, 0), 1);
  EXPECT_EQ(out[0].fd, fd);
  EXPECT_NE(out[0].revents & kPollIn, 0);
  EXPECT_EQ(kernel_.stats().epoll_events_delivered, 1u);
}

TEST_F(EpollCoreTest, ReadinessPredatingAddIsNotLost) {
  // The registration probe: data that arrived BEFORE epoll_ctl(ADD) must
  // still be reported — even edge-triggered users never need the
  // probe-after-arm dance the RT-signal servers do.
  const int epfd = OpenDev();
  auto [client, fd] = EstablishedPair();
  client->Write(Chunk{"early", 0});
  RunFor(Millis(5));
  ASSERT_EQ(sys_.EpollCtl(epfd, EpollOp::kAdd, fd, kPollIn, kEpollEdge), 0);
  PollFd out[4];
  ASSERT_EQ(sys_.EpollWait(epfd, out, 4, 0), 1) << "pre-existing readiness seeded";
  EXPECT_EQ(out[0].fd, fd);
  (void)client;
}

TEST_F(EpollCoreTest, DuplicateAddAndMissingModRejected) {
  const int epfd = OpenDev();
  auto [client, fd] = EstablishedPair();
  ASSERT_EQ(sys_.EpollCtl(epfd, EpollOp::kAdd, fd, kPollIn), 0);
  EXPECT_EQ(sys_.EpollCtl(epfd, EpollOp::kAdd, fd, kPollIn), -1) << "EEXIST";
  EXPECT_EQ(sys_.EpollCtl(epfd, EpollOp::kMod, fd + 100, kPollIn), -1) << "ENOENT";
  EXPECT_EQ(sys_.EpollCtl(epfd, EpollOp::kDel, fd + 100, 0), -1) << "ENOENT";
  (void)client;
}

// --- the differential the successor cores exist for: LT vs ET on unread data

TEST_F(EpollCoreTest, LevelTriggeredRereportsUnreadData) {
  const int epfd = OpenDev();
  auto [client, fd] = EstablishedPair();
  ASSERT_EQ(sys_.EpollCtl(epfd, EpollOp::kAdd, fd, kPollIn), 0);
  client->Write(Chunk{"unread", 0});
  RunFor(Millis(5));
  PollFd out[4];
  // Deliberately never read the data: level-triggered re-reports the same
  // fd on every wait while it stays readable.
  ASSERT_EQ(sys_.EpollWait(epfd, out, 4, 0), 1);
  ASSERT_EQ(sys_.EpollWait(epfd, out, 4, 0), 1) << "LT re-reports";
  ASSERT_EQ(sys_.EpollWait(epfd, out, 4, 0), 1) << "LT re-reports again";
  EXPECT_EQ(out[0].fd, fd);
  // Draining the socket ends the reports.
  EXPECT_GT(sys_.Read(fd, 100).n, 0u);
  EXPECT_EQ(sys_.EpollWait(epfd, out, 4, 0), 0) << "drained: not ready";
}

TEST_F(EpollCoreTest, EdgeTriggeredReportsOnceUntilNewData) {
  const int epfd = OpenDev();
  auto [client, fd] = EstablishedPair();
  ASSERT_EQ(sys_.EpollCtl(epfd, EpollOp::kAdd, fd, kPollIn, kEpollEdge), 0);
  client->Write(Chunk{"unread", 0});
  RunFor(Millis(5));
  PollFd out[4];
  ASSERT_EQ(sys_.EpollWait(epfd, out, 4, 0), 1);
  // Same unread data, no new edge: silent. This is exactly where ET and LT
  // diverge on identical socket state.
  EXPECT_EQ(sys_.EpollWait(epfd, out, 4, 0), 0) << "ET silent until a new edge";
  // New data = new edge: reported again.
  client->Write(Chunk{"more", 0});
  RunFor(Millis(5));
  ASSERT_EQ(sys_.EpollWait(epfd, out, 4, 0), 1) << "fresh edge re-queues";
  EXPECT_EQ(out[0].fd, fd);
}

// --- truncation: a full event buffer must never lose readiness --------------

TEST_F(EpollCoreTest, TruncatedLevelWaitRereportsTheRest) {
  const int epfd = OpenDev();
  std::vector<std::shared_ptr<SimSocket>> clients;
  for (int i = 0; i < 4; ++i) {
    auto [client, fd] = EstablishedPair();
    ASSERT_EQ(sys_.EpollCtl(epfd, EpollOp::kAdd, fd, kPollIn), 0);
    client->Write(Chunk{"x", 0});
    clients.push_back(client);
  }
  RunFor(Millis(5));
  // Buffer of 2: delivered LT entries rotate to the back, so two waits must
  // between them cover all four fds — truncation cannot starve the tail.
  PollFd out[2];
  std::set<int> seen;
  ASSERT_EQ(sys_.EpollWait(epfd, out, 2, 0), 2);
  seen.insert(out[0].fd);
  seen.insert(out[1].fd);
  ASSERT_EQ(sys_.EpollWait(epfd, out, 2, 0), 2);
  seen.insert(out[0].fd);
  seen.insert(out[1].fd);
  EXPECT_EQ(seen.size(), 4u) << "round-robin covered every ready fd";
}

TEST_F(EpollCoreTest, TruncatedEdgeWaitKeepsUndeliveredReady) {
  // ET consumes readiness at DELIVERY, not at enqueue: edges that did not
  // fit in the buffer stay queued for the next wait.
  const int epfd = OpenDev();
  std::vector<std::shared_ptr<SimSocket>> clients;
  std::set<int> expected;
  for (int i = 0; i < 4; ++i) {
    auto [client, fd] = EstablishedPair();
    ASSERT_EQ(sys_.EpollCtl(epfd, EpollOp::kAdd, fd, kPollIn, kEpollEdge), 0);
    client->Write(Chunk{"x", 0});
    clients.push_back(client);
    expected.insert(fd);
  }
  RunFor(Millis(5));
  PollFd out[2];
  std::set<int> seen;
  ASSERT_EQ(sys_.EpollWait(epfd, out, 2, 0), 2);
  seen.insert(out[0].fd);
  seen.insert(out[1].fd);
  ASSERT_EQ(sys_.EpollWait(epfd, out, 2, 0), 2) << "truncated edges not lost";
  seen.insert(out[0].fd);
  seen.insert(out[1].fd);
  EXPECT_EQ(seen, expected);
  EXPECT_EQ(sys_.EpollWait(epfd, out, 2, 0), 0) << "all edges now consumed";
}

// --- oneshot -----------------------------------------------------------------

TEST_F(EpollCoreTest, OneshotDisablesUntilRearmed) {
  const int epfd = OpenDev();
  auto [client, fd] = EstablishedPair();
  ASSERT_EQ(sys_.EpollCtl(epfd, EpollOp::kAdd, fd, kPollIn, kEpollOneshot), 0);
  client->Write(Chunk{"a", 0});
  RunFor(Millis(5));
  PollFd out[4];
  ASSERT_EQ(sys_.EpollWait(epfd, out, 4, 0), 1);
  // Fired: dormant. More data must NOT re-queue it.
  client->Write(Chunk{"b", 0});
  RunFor(Millis(5));
  EXPECT_EQ(sys_.EpollWait(epfd, out, 4, 0), 0) << "fired oneshot is dormant";
  // MOD re-arms; the registration probe sees the pending data immediately.
  ASSERT_EQ(sys_.EpollCtl(epfd, EpollOp::kMod, fd, kPollIn, kEpollOneshot), 0);
  ASSERT_EQ(sys_.EpollWait(epfd, out, 4, 0), 1) << "rearm + probe re-reports";
}

// --- lifecycle ---------------------------------------------------------------

TEST_F(EpollCoreTest, ClosedFdInterestIsDroppedAtHarvest) {
  const int epfd = OpenDev();
  auto [client, fd] = EstablishedPair();
  ASSERT_EQ(sys_.EpollCtl(epfd, EpollOp::kAdd, fd, kPollIn), 0);
  client->Write(Chunk{"x", 0});
  RunFor(Millis(5));
  ASSERT_EQ(sys_.Close(fd), 0);  // no EPOLL_CTL_DEL — sloppy application
  PollFd out[4];
  EXPECT_EQ(sys_.EpollWait(epfd, out, 4, 0), 0);
  EXPECT_GE(kernel_.stats().epoll_stale_drops, 1u);
  EXPECT_EQ(sys_.epoll_dev(epfd)->interest_count(), 0u)
      << "the interest followed the file, not the fd number";
}

TEST_F(EpollCoreTest, BlockingWaitWokenByArrival) {
  const int epfd = OpenDev();
  ASSERT_EQ(sys_.EpollCtl(epfd, EpollOp::kAdd, listen_fd_, kPollIn), 0);
  sim_.ScheduleAt(Millis(20), [&] { net_.Connect(listener_); });
  PollFd out[4];
  const int n = sys_.EpollWait(epfd, out, 4, 1000);
  ASSERT_EQ(n, 1);
  EXPECT_EQ(out[0].fd, listen_fd_);
  EXPECT_GE(kernel_.now(), Millis(20));
  EXPECT_LT(kernel_.now(), Millis(100)) << "woken by the SYN, not the timeout";
  EXPECT_GE(kernel_.stats().wait_exclusive_adds, 1u) << "slept as one exclusive waiter";
}

TEST_F(EpollCoreTest, BlockingWaitTimesOut) {
  const int epfd = OpenDev();
  ASSERT_EQ(sys_.EpollCtl(epfd, EpollOp::kAdd, listen_fd_, kPollIn), 0);
  PollFd out[4];
  EXPECT_EQ(sys_.EpollWait(epfd, out, 4, 50), 0);
  EXPECT_GE(kernel_.now(), Millis(50));
}

TEST_F(EpollCoreTest, AttributionSumEqualsBusyAcrossEpollTraffic) {
  const int epfd = OpenDev();
  auto [client, fd] = EstablishedPair();
  ASSERT_EQ(sys_.EpollCtl(epfd, EpollOp::kAdd, fd, kPollIn), 0);
  client->Write(Chunk{"data", 0});
  RunFor(Millis(5));
  PollFd out[4];
  ASSERT_EQ(sys_.EpollWait(epfd, out, 4, 0), 1);
  kernel_.Charge(Nanos(1), ChargeCat::kOther);  // flush any interrupt debt
  EXPECT_EQ(kernel_.attribution().Sum(), kernel_.busy_time());
  EXPECT_GT(kernel_.attribution()[ChargeCat::kEpollCtl], 0);
  EXPECT_GT(kernel_.attribution()[ChargeCat::kEpollReady], 0);
  EXPECT_GT(kernel_.attribution()[ChargeCat::kEpollWait], 0);
}

TEST_F(EpollCoreTest, InterestMemoryIsLedgeredAndReleased) {
  const int epfd = OpenDev();
  const uint64_t before = kernel_.mem()[MemSys::kInterests];
  auto [client, fd] = EstablishedPair();
  ASSERT_EQ(sys_.EpollCtl(epfd, EpollOp::kAdd, fd, kPollIn), 0);
  EXPECT_GT(kernel_.mem()[MemSys::kInterests], before)
      << "interest slab pages are accounted";
  ASSERT_EQ(sys_.Close(epfd), 0);
  EXPECT_EQ(kernel_.mem()[MemSys::kInterests], before)
      << "closing the device returns every page";
  (void)client;
}

TEST_F(EpollCoreTest, CtlEnomemAndWaitEintrInjection) {
  FaultSchedule schedule;
  schedule.Add({FaultKind::kInterestEnomem, 0, Millis(10), 1.0, 0, LinkDir::kBoth});
  schedule.Add({FaultKind::kEintr, Millis(20), kSimTimeNever, 1.0, 0, LinkDir::kBoth});
  FaultPlane plane(&sim_, schedule);
  kernel_.set_fault_plane(&plane);

  const int epfd = OpenDev();
  auto [client, fd] = EstablishedPair();
  EXPECT_EQ(sys_.EpollCtl(epfd, EpollOp::kAdd, fd, kPollIn), kErrNoMem);
  EXPECT_FALSE(sys_.epoll_dev(epfd)->Watching(fd)) << "failed add left no state";
  RunFor(Millis(15));
  ASSERT_EQ(sys_.EpollCtl(epfd, EpollOp::kAdd, fd, kPollIn), 0) << "retry succeeds";

  PollFd out[4];
  EXPECT_EQ(sys_.EpollWait(epfd, out, 4, 50), kErrIntr);
  (void)client;
}

}  // namespace
}  // namespace scio
