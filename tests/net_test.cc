// Tests for the network substrate: links, sockets, listener backlog, and the
// ephemeral-port/TIME-WAIT machinery of §5.

#include <gtest/gtest.h>

#include "src/net/link.h"
#include "src/net/port_allocator.h"
#include "tests/sim_world.h"

namespace scio {
namespace {

// --- Link ----------------------------------------------------------------------

TEST(LinkTest, SerializationPlusLatency) {
  Simulator sim;
  Link link(&sim, /*bandwidth_bps=*/8e6, /*latency=*/Millis(1));
  SimTime delivered = -1;
  link.Transmit(1000, [&] { delivered = sim.now(); });  // 1000 B at 1 MB/s = 1 ms
  sim.RunAll();
  EXPECT_EQ(delivered, Millis(2)) << "1ms serialization + 1ms propagation";
}

TEST(LinkTest, BackToBackTransmissionsQueue) {
  Simulator sim;
  Link link(&sim, 8e6, Millis(1));
  std::vector<SimTime> arrivals;
  link.Transmit(1000, [&] { arrivals.push_back(sim.now()); });
  link.Transmit(1000, [&] { arrivals.push_back(sim.now()); });
  sim.RunAll();
  ASSERT_EQ(arrivals.size(), 2u);
  EXPECT_EQ(arrivals[0], Millis(2));
  EXPECT_EQ(arrivals[1], Millis(3)) << "second frame waits for the first to clock out";
  EXPECT_EQ(link.bytes_carried(), 2000u);
}

TEST(LinkTest, IdleGapResetsQueue) {
  Simulator sim;
  Link link(&sim, 8e6, 0);
  SimTime first = -1;
  link.Transmit(1000, [&] { first = sim.now(); });
  sim.RunAll();
  sim.AdvanceTo(Millis(10));
  SimTime second = -1;
  link.Transmit(1000, [&] { second = sim.now(); });
  sim.RunAll();
  EXPECT_EQ(first, Millis(1));
  EXPECT_EQ(second, Millis(11)) << "no residual queueing after idle";
}

// --- PortAllocator ---------------------------------------------------------------

TEST(PortAllocatorTest, ExhaustionAndTimeWaitReuse) {
  PortAllocator ports(1000, 2, /*time_wait=*/Millis(100));
  const int a = ports.Acquire(0);
  const int b = ports.Acquire(0);
  EXPECT_GE(a, 1000);
  EXPECT_GE(b, 1000);
  EXPECT_EQ(ports.Acquire(0), -1) << "all ports busy";
  ports.ReleaseTimeWait(a, 0);
  EXPECT_EQ(ports.Acquire(Millis(50)), -1) << "port still in TIME-WAIT";
  EXPECT_EQ(ports.in_time_wait(Millis(50)), 1);
  EXPECT_EQ(ports.Acquire(Millis(100)), a) << "reusable after the hold time";
}

TEST(PortAllocatorTest, ImmediateReleaseSkipsTimeWait) {
  PortAllocator ports(1000, 1, Seconds(60));
  const int a = ports.Acquire(0);
  ports.ReleaseImmediate(a);
  EXPECT_EQ(ports.Acquire(1), a);
}

class PortChurnTest : public ::testing::TestWithParam<int> {};

TEST_P(PortChurnTest, SteadyChurnNeverExceedsCapacity) {
  const int capacity = GetParam();
  PortAllocator ports(2000, capacity, Millis(10));
  SimTime now = 0;
  std::vector<int> open;
  int acquired = 0;
  for (int step = 0; step < 1000; ++step) {
    now += Millis(1);
    if (const int port = ports.Acquire(now); port >= 0) {
      open.push_back(port);
      ++acquired;
    }
    if (open.size() > 3) {
      ports.ReleaseTimeWait(open.front(), now);
      open.erase(open.begin());
    }
    ASSERT_LE(ports.in_use(), capacity);
  }
  EXPECT_GT(acquired, 0);
}

INSTANTIATE_TEST_SUITE_P(Capacities, PortChurnTest, ::testing::Values(4, 8, 64));

// --- connection establishment ------------------------------------------------------

TEST_F(SimWorldTest, ConnectAcceptRoundTrip) {
  auto [client, fd] = EstablishedPair();
  EXPECT_EQ(client->state(), SimSocket::State::kEstablished);
  auto server_sock = sys_.socket(fd);
  ASSERT_NE(server_sock, nullptr);
  EXPECT_EQ(server_sock->state(), SimSocket::State::kEstablished);
  EXPECT_EQ(kernel_.stats().accepts, 1u);
}

TEST_F(SimWorldTest, BacklogOverflowRefuses) {
  // Fill the backlog (default 128) without accepting.
  std::vector<std::shared_ptr<SimSocket>> clients;
  int refused = 0;
  for (int i = 0; i < 150; ++i) {
    auto client = net_.Connect(listener_);
    client->on_refused = [&] { ++refused; };
    clients.push_back(client);
  }
  sim_.RunAll();
  EXPECT_EQ(listener_->backlog_depth(), 128u);
  EXPECT_EQ(refused, 150 - 128);
  EXPECT_EQ(kernel_.stats().connections_refused, static_cast<uint64_t>(refused));
}

TEST_F(SimWorldTest, AcceptOnEmptyBacklogIsEagain) {
  EXPECT_EQ(sys_.Accept(listen_fd_), -1);
}

TEST_F(SimWorldTest, AcceptOnBadFdIsEbadf) { EXPECT_EQ(sys_.Accept(99), -2); }

TEST_F(SimWorldTest, AcceptEmfileDropsConnection) {
  // Exhaust the fd table.
  std::vector<int> fds;
  while (true) {
    const int fd = sys_.Listen(1);
    if (fd < 0) {
      break;
    }
    fds.push_back(fd);
  }
  auto client = ClientConnect();
  EXPECT_EQ(sys_.Accept(listen_fd_), -3);
}

// --- data transfer --------------------------------------------------------------

TEST_F(SimWorldTest, BytesFlowBothWays) {
  auto [client, fd] = EstablishedPair();
  client->Write(Chunk{"hello", 0});
  RunFor(Millis(5));
  ReadResult r = sys_.Read(fd, 100);
  EXPECT_EQ(r.n, 5u);
  EXPECT_EQ(r.data, "hello");

  ASSERT_EQ(sys_.Write(fd, Chunk{"world!", 0}), 6);
  size_t got = 0;
  client->on_data = [&](size_t n) { got += n; };
  RunFor(Millis(5));
  EXPECT_EQ(got, 6u);
  EXPECT_EQ(client->Read(100).data, "world!");
}

TEST_F(SimWorldTest, SyntheticBytesCountButCarryNoData) {
  auto [client, fd] = EstablishedPair();
  ASSERT_EQ(sys_.Write(fd, Chunk{"hdr:", 1000}), 1004);
  RunFor(Millis(10));
  ReadResult r = client->Read(SIZE_MAX);
  EXPECT_EQ(r.n, 1004u);
  EXPECT_EQ(r.data, "hdr:");
}

TEST_F(SimWorldTest, PartialReadPreservesOrder) {
  auto [client, fd] = EstablishedPair();
  client->Write(Chunk{"abcdef", 0});
  RunFor(Millis(5));
  EXPECT_EQ(sys_.Read(fd, 2).data, "ab");
  EXPECT_EQ(sys_.Read(fd, 2).data, "cd");
  EXPECT_EQ(sys_.Read(fd, 10).data, "ef");
  EXPECT_EQ(sys_.Read(fd, 10).n, 0u) << "drained: EAGAIN";
}

TEST_F(SimWorldTest, SendBufferLimitsWriteAndPollOutReturns) {
  auto [client, fd] = EstablishedPair();
  auto server_sock = sys_.socket(fd);
  server_sock->set_sndbuf(1000);
  const long first = sys_.Write(fd, Chunk{"", 5000});
  EXPECT_EQ(first, 1000) << "write truncated to free send-buffer space";
  EXPECT_EQ(server_sock->PollMask() & kPollOut, 0) << "buffer full: not writable";
  const long second = sys_.Write(fd, Chunk{"", 100});
  EXPECT_EQ(second, 0) << "would block";
  RunFor(Millis(10));  // in-flight data delivered (acked)
  EXPECT_NE(server_sock->PollMask() & kPollOut, 0) << "writable again";
  EXPECT_EQ(sys_.Write(fd, Chunk{"", 100}), 100);
}

TEST_F(SimWorldTest, EofAfterPeerClose) {
  auto [client, fd] = EstablishedPair();
  client->Write(Chunk{"bye", 0});
  client->Close();
  RunFor(Millis(5));
  auto server_sock = sys_.socket(fd);
  EXPECT_NE(server_sock->PollMask() & kPollIn, 0);
  ReadResult r = sys_.Read(fd, 100);
  EXPECT_EQ(r.data, "bye") << "data before FIN drains first";
  r = sys_.Read(fd, 100);
  EXPECT_TRUE(r.eof);
}

TEST_F(SimWorldTest, ServerCloseReachesClient) {
  auto [client, fd] = EstablishedPair();
  bool eof = false;
  client->on_eof = [&] { eof = true; };
  ASSERT_EQ(sys_.Close(fd), 0);
  RunFor(Millis(5));
  EXPECT_TRUE(eof);
  EXPECT_EQ(client->state(), SimSocket::State::kPeerClosed);
}

TEST_F(SimWorldTest, WriteAfterCloseFails) {
  auto [client, fd] = EstablishedPair();
  ASSERT_EQ(sys_.Close(fd), 0);
  EXPECT_EQ(sys_.Write(fd, Chunk{"x", 0}), -1) << "EBADF";
}

TEST_F(SimWorldTest, ClientPortEntersTimeWaitOnClose) {
  auto [client, fd] = EstablishedPair();
  EXPECT_EQ(net_.ports().in_use(), 1);
  client->Close();
  RunFor(Millis(5));
  EXPECT_EQ(net_.ports().in_use(), 0);
  EXPECT_EQ(net_.ports().in_time_wait(kernel_.now()), 1);
  ASSERT_EQ(sys_.Close(fd), 0);
}

TEST_F(SimWorldTest, RefusedConnectionReleasesPortImmediately) {
  // Close the listener: every SYN is refused.
  ASSERT_EQ(sys_.Close(listen_fd_), 0);
  auto client = net_.Connect(listener_);
  sim_.RunAll();
  EXPECT_EQ(client->state(), SimSocket::State::kRefused);
  EXPECT_EQ(net_.ports().in_use(), 0);
  EXPECT_EQ(net_.ports().in_time_wait(kernel_.now()), 0);
}

TEST_F(SimWorldTest, PacketsChargeInterruptDebtOnServerSideOnly) {
  auto [client, fd] = EstablishedPair();
  const uint64_t before = kernel_.stats().interrupts;
  client->Write(Chunk{"ping", 0});
  RunFor(Millis(5));
  EXPECT_EQ(kernel_.stats().interrupts, before + 1);
  const uint64_t after_client_rx = kernel_.stats().interrupts;
  ASSERT_EQ(sys_.Write(fd, Chunk{"pong", 0}), 4);
  RunFor(Millis(5));
  EXPECT_EQ(kernel_.stats().interrupts, after_client_rx)
      << "client-side delivery is free (client machine not modelled)";
}

TEST_F(SimWorldTest, DataBeforeAcceptIsReadableAfterAccept) {
  auto client = ClientConnect();
  // Client learns of establishment and sends before the server accepts.
  sim_.StepUntil([&] { return client->state() == SimSocket::State::kEstablished; },
                 sim_.now() + Seconds(1));
  client->Write(Chunk{"early", 0});
  RunFor(Millis(5));
  const int fd = sys_.Accept(listen_fd_);
  ASSERT_GE(fd, 0);
  EXPECT_EQ(sys_.Read(fd, 100).data, "early");
}

}  // namespace
}  // namespace scio
