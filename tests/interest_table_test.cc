// Tests for the in-kernel interest-set hash table (§3.1), including the
// paper's exact growth rule as a property across insertion patterns.

#include <gtest/gtest.h>

#include <set>
#include <vector>

#include "src/core/interest_table.h"
#include "src/sim/rng.h"

namespace scio {
namespace {

TEST(InterestTableTest, InsertFindErase) {
  InterestHashTable table;
  bool inserted = false;
  Interest& a = table.FindOrInsert(5, &inserted);
  EXPECT_TRUE(inserted);
  a.events = kPollIn;
  EXPECT_EQ(table.size(), 1u);

  Interest* found = table.Find(5);
  ASSERT_NE(found, nullptr);
  EXPECT_EQ(found->events, kPollIn);

  table.FindOrInsert(5, &inserted);
  EXPECT_FALSE(inserted) << "same fd resolves to the existing interest";
  EXPECT_EQ(table.size(), 1u);

  EXPECT_TRUE(table.Erase(5));
  EXPECT_FALSE(table.Erase(5));
  EXPECT_EQ(table.Find(5), nullptr);
  EXPECT_EQ(table.size(), 0u);
}

TEST(InterestTableTest, FindMissingReturnsNull) {
  InterestHashTable table;
  EXPECT_EQ(table.Find(42), nullptr);
}

TEST(InterestTableTest, GrowthRuleDoublesAtAverageChainOfTwo) {
  InterestHashTable table(8);
  // Paper: "when the average bucket size is two, the number of buckets in
  // the hash table is doubled."
  bool inserted;
  for (int fd = 0; fd < 15; ++fd) {
    table.FindOrInsert(fd, &inserted);
  }
  EXPECT_EQ(table.bucket_count(), 8u) << "15 entries in 8 buckets: average < 2";
  table.FindOrInsert(15, &inserted);
  EXPECT_EQ(table.bucket_count(), 16u) << "16th entry trips the doubling rule";
  EXPECT_EQ(table.resize_count(), 1u);
}

TEST(InterestTableTest, NeverShrinks) {
  InterestHashTable table(8);
  bool inserted;
  for (int fd = 0; fd < 100; ++fd) {
    table.FindOrInsert(fd, &inserted);
  }
  const size_t grown = table.bucket_count();
  for (int fd = 0; fd < 100; ++fd) {
    table.Erase(fd);
  }
  EXPECT_EQ(table.size(), 0u);
  EXPECT_EQ(table.bucket_count(), grown) << "the table is never shrunk";
}

TEST(InterestTableTest, ForEachVisitsEveryEntryOnce) {
  InterestHashTable table;
  bool inserted;
  for (int fd = 0; fd < 37; ++fd) {
    table.FindOrInsert(fd, &inserted);
  }
  std::set<int> seen;
  table.ForEach([&](Interest& interest) { seen.insert(interest.fd); });
  EXPECT_EQ(seen.size(), 37u);
  EXPECT_EQ(*seen.begin(), 0);
  EXPECT_EQ(*seen.rbegin(), 36);
}

TEST(InterestTableTest, SurvivesRehashWithState) {
  InterestHashTable table(2);
  bool inserted;
  for (int fd = 0; fd < 64; ++fd) {
    Interest& interest = table.FindOrInsert(fd, &inserted);
    interest.events = static_cast<PollEvents>(fd + 1);
    interest.hint = (fd % 2) == 0;
  }
  for (int fd = 0; fd < 64; ++fd) {
    Interest* interest = table.Find(fd);
    ASSERT_NE(interest, nullptr) << "fd " << fd << " lost in rehash";
    EXPECT_EQ(interest->events, static_cast<PollEvents>(fd + 1));
    EXPECT_EQ(interest->hint, (fd % 2) == 0);
  }
}

TEST(InterestTableTest, PointersStableAcrossGrowth) {
  InterestHashTable table(8);
  bool inserted;
  Interest& pinned = table.FindOrInsert(3, &inserted);
  pinned.events = kPollIn;
  Interest* const address = &pinned;
  // Insert well past several doubling thresholds while holding the reference.
  for (int fd = 100; fd < 400; ++fd) {
    table.FindOrInsert(fd, &inserted);
  }
  ASSERT_GE(table.resize_count(), 3u) << "growth must actually have happened";
  EXPECT_EQ(table.Find(3), address) << "node moved during rehash";
  EXPECT_EQ(pinned.events, kPollIn);
  pinned.hint = true;  // a write through the held reference hits live data
  EXPECT_TRUE(table.Find(3)->hint);
}

TEST(InterestTableTest, PointersStableAcrossEraseChurn) {
  InterestHashTable table(4);
  bool inserted;
  Interest* const address = &table.FindOrInsert(7, &inserted);
  for (int round = 0; round < 20; ++round) {
    for (int fd = 1000; fd < 1040; ++fd) {
      table.FindOrInsert(fd, &inserted);
    }
    for (int fd = 1000; fd < 1040; ++fd) {
      table.Erase(fd);
    }
  }
  EXPECT_EQ(table.Find(7), address) << "freelist recycling moved a live node";
}

TEST(InterestTableTest, ForEachOrderDeterministicAcrossIdenticalBuilds) {
  // Scan order feeds the simulated /dev/poll result order, so two tables
  // built by the same insertion/erasure sequence must scan identically.
  auto build = [](InterestHashTable& table) {
    bool inserted;
    for (int fd : {9, 1, 33, 5, 17, 2, 65, 41, 73, 12, 99, 7, 25, 49, 81, 13}) {
      table.FindOrInsert(fd, &inserted);
    }
    table.Erase(33);
    table.Erase(12);
    for (int fd : {129, 161, 193, 33}) {
      table.FindOrInsert(fd, &inserted);  // growth + a freelist reuse
    }
  };
  InterestHashTable a(4);
  InterestHashTable b(4);
  build(a);
  build(b);
  std::vector<int> order_a;
  std::vector<int> order_b;
  a.ForEach([&](Interest& interest) { order_a.push_back(interest.fd); });
  b.ForEach([&](Interest& interest) { order_b.push_back(interest.fd); });
  EXPECT_EQ(order_a, order_b);
  EXPECT_EQ(order_a.size(), 18u);
}

// Property sweep: for any insertion pattern, the invariant
// size <= 2 * bucket_count holds and no entry is ever lost.
class InterestTableProperty : public ::testing::TestWithParam<uint64_t> {};

TEST_P(InterestTableProperty, InvariantUnderRandomChurn) {
  Rng rng(GetParam());
  InterestHashTable table;
  std::set<int> model;
  for (int step = 0; step < 5000; ++step) {
    const int fd = static_cast<int>(rng.UniformInt(0, 700));
    if (rng.Bernoulli(0.6)) {
      bool inserted;
      table.FindOrInsert(fd, &inserted);
      EXPECT_EQ(inserted, model.insert(fd).second);
    } else {
      EXPECT_EQ(table.Erase(fd), model.erase(fd) == 1);
    }
    ASSERT_EQ(table.size(), model.size());
    ASSERT_LE(table.size(), table.bucket_count() * 2) << "growth rule violated";
  }
  // Exhaustive final cross-check.
  for (int fd = 0; fd <= 700; ++fd) {
    EXPECT_EQ(table.Find(fd) != nullptr, model.count(fd) == 1) << "fd " << fd;
  }
}

INSTANTIATE_TEST_SUITE_P(Churn, InterestTableProperty,
                         ::testing::Values(1ull, 2ull, 3ull, 99ull, 123456ull));

}  // namespace
}  // namespace scio
