// Tests for the opt-in transport plane: attach/detach lifecycle, real
// segmentation and reassembly, SACK loss recovery under each congestion
// stack, link-flap drain without slab or ledger leaks, a differential check
// of the Reno cwnd math against an independent reference, RACK-vs-Reno
// tail-loss recovery time, orphan abandonment, and the attribution and
// memory-ledger invariants.

#include <gtest/gtest.h>

#include <algorithm>
#include <memory>
#include <string>
#include <utility>

#include "src/fault/fault_plane.h"
#include "src/transport/congestion_control.h"
#include "src/transport/transport_plane.h"
#include "tests/sim_world.h"

namespace scio {
namespace {

// Deterministic non-repeating byte pattern; any reordering or duplication in
// reassembly shows up as a content mismatch, not just a length mismatch.
std::string MakePattern(size_t n) {
  std::string s;
  s.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    s.push_back(static_cast<char>('a' + (i * 31 + i / 97) % 26));
  }
  return s;
}

// Pushes `body` through the server fd as send-buffer space frees, drains the
// client side in order, and returns everything the client read.
std::string DriveTransfer(Simulator& sim, Sys& sys, int fd,
                          const std::shared_ptr<SimSocket>& client,
                          const std::string& body) {
  std::string received;
  client->on_data = [&received, client](size_t) {
    for (;;) {
      ReadResult r = client->Read(1 << 20);
      if (r.n == 0) {
        break;
      }
      received.append(r.data);
    }
  };
  size_t off = 0;
  int stalls = 0;
  while (off < body.size() && stalls < 20000) {
    const auto n = sys.Write(fd, Chunk{body.substr(off, 16 * 1024), 0});
    if (n <= 0) {
      ++stalls;
      sim.AdvanceTo(sim.now() + Millis(5));
      continue;
    }
    off += static_cast<size_t>(n);
  }
  EXPECT_EQ(off, body.size()) << "server never drained its send buffer";
  sim.StepUntil([&] { return received.size() >= body.size(); },
                sim.now() + Seconds(60));
  client->on_data = nullptr;
  return received;
}

class TransportWorldTest : public SimWorldTest {
 public:
  // Construct the plane after the world (it registers on net_) and before
  // any connects. plane_ dies before ~SimWorldTest's DiscardPending; its
  // destructor detaches every wired socket first, so late socket teardown
  // never calls into a dead plane.
  void AttachPlane(TransportConfig cfg = {}) {
    plane_ = std::make_unique<TransportPlane>(&kernel_, &net_, cfg);
  }

  std::unique_ptr<TransportPlane> plane_;
};

// A self-contained world for tests that compare two configurations (the
// fixture can only hold one). Destruction mirrors the fixture: DiscardPending
// runs in the body while the plane is still alive.
struct TpWorld {
  Simulator sim;
  SimKernel kernel{&sim};
  NetStack net{&kernel};
  Process& proc;
  Sys sys;
  TransportPlane plane;
  int listen_fd = -1;
  std::shared_ptr<SimListener> listener;

  explicit TpWorld(TransportConfig cfg = {})
      : proc(kernel.CreateProcess("server")),
        sys(&kernel, &proc, &net),
        plane(&kernel, &net, cfg) {
    listen_fd = sys.Listen();
    EXPECT_GE(listen_fd, 0);
    listener = sys.listener(listen_fd);
  }
  ~TpWorld() { sim.DiscardPending(); }

  std::pair<std::shared_ptr<SimSocket>, int> Establish() {
    auto client = net.Connect(listener);
    EXPECT_NE(client, nullptr);
    sim.StepUntil([&] { return listener->backlog_depth() > 0; },
                  sim.now() + Seconds(1));
    const int fd = sys.Accept(listen_fd);
    EXPECT_GE(fd, 0);
    sim.StepUntil(
        [&] { return client->state() == SimSocket::State::kEstablished; },
        sim.now() + Seconds(1));
    return {client, fd};
  }
};

// --- lifecycle ---------------------------------------------------------------

TEST_F(TransportWorldTest, AttachWiresBothEndsAndReleasesOnTeardown) {
  AttachPlane();
  auto [client, fd] = EstablishedPair();
  EXPECT_EQ(plane_->stats().blocks_attached, 2u) << "client + server blocks";
  EXPECT_EQ(plane_->live_blocks(), 2u);
  EXPECT_EQ(plane_->live_hot(), 0u) << "no data in flight yet";

  EXPECT_EQ(sys_.Close(fd), 0);
  RunFor(Millis(50));
  EXPECT_TRUE(client->eof_received()) << "FIN crossed the transport path";
  client->Close();
  client.reset();
  RunFor(Seconds(1));
  EXPECT_EQ(plane_->live_blocks(), 0u);
  EXPECT_EQ(plane_->stats().blocks_released, 2u);
  EXPECT_EQ(kernel_.mem()[MemSys::kTransport], plane_->tracked_bytes());
}

TEST_F(TransportWorldTest, RoundTripCarriesRealBytesBothWays) {
  AttachPlane();
  auto [client, fd] = EstablishedPair();

  EXPECT_EQ(client->Write(Chunk{"GET /index.html", 0}), 15u);
  RunFor(Millis(50));
  ReadResult req = sys_.Read(fd, 100);
  EXPECT_EQ(req.data, "GET /index.html");

  std::string got;
  client->on_data = [&got, client = client](size_t) {
    ReadResult r = client->Read(1 << 20);
    got.append(r.data);
  };
  EXPECT_GT(sys_.Write(fd, Chunk{"HTTP/1.0 200 OK", 0}), 0);
  RunFor(Millis(50));
  EXPECT_EQ(got, "HTTP/1.0 200 OK");
  client->on_data = nullptr;

  EXPECT_EQ(plane_->stats().segments_sent, 2u);
  EXPECT_EQ(plane_->stats().segments_retransmitted, 0u);
  EXPECT_GE(plane_->stats().acks_received, 2u);
  EXPECT_GE(plane_->stats().rtt_samples, 2u);
}

TEST_F(TransportWorldTest, LargeTransferSegmentsThenQuiesces) {
  AttachPlane();
  auto [client, fd] = EstablishedPair();
  const std::string body = MakePattern(120 * 1024);
  const std::string got = DriveTransfer(sim_, sys_, fd, client, body);
  EXPECT_EQ(got, body);
  EXPECT_GE(plane_->stats().segments_sent,
            static_cast<uint64_t>(body.size() / kTcpMss));

  RunFor(Seconds(1));  // final ACKs land; the connection goes idle
  EXPECT_EQ(plane_->live_segments(), 0u) << "retransmit queue fully freed";
  EXPECT_EQ(plane_->live_hot(), 0u) << "hot blocks released at quiesce";
  EXPECT_GE(plane_->stats().hot_releases, 1u);
  EXPECT_EQ(kernel_.mem()[MemSys::kTransport], plane_->tracked_bytes());
}

TEST_F(TransportWorldTest, QuiescentConnectionsStayUnderFootprintBudget) {
  AttachPlane();
  constexpr int kConns = 200;
  std::vector<std::shared_ptr<SimSocket>> clients;
  std::vector<int> fds;
  for (int i = 0; i < kConns; ++i) {
    auto [client, fd] = EstablishedPair();
    clients.push_back(std::move(client));
    fds.push_back(fd);
  }
  EXPECT_EQ(plane_->live_blocks(), 2u * kConns);
  EXPECT_EQ(plane_->live_hot(), 0u) << "idle connections hold no hot state";
  EXPECT_EQ(kernel_.mem()[MemSys::kTransport], plane_->tracked_bytes());
  // Cold block + generation tag + sidecar pointer, rounded up by slab-page
  // granularity: far inside the million-idle gate's per-connection budget.
  EXPECT_LE(plane_->tracked_bytes(), 128u * kConns)
      << "quiescent server-side footprint regressed";
}

// --- loss recovery -----------------------------------------------------------

// One lossy 60 KB transfer with every 17th first transmission dropped;
// copies out the plane's counters so callers can assert per-stack behavior.
void RunLossyTransfer(CcKind kind, TransportStats* out) {
  TransportConfig cfg;
  cfg.default_cc = kind;
  TpWorld w(cfg);
  auto [client, fd] = w.Establish();
  w.plane.set_loss_hook([](bool server_sender, uint32_t seq, uint16_t retx) {
    return server_sender && retx == 0 && (seq / kTcpMss) % 17 == 5;
  });
  const std::string body = MakePattern(60 * 1024);
  const std::string got = DriveTransfer(w.sim, w.sys, fd, client, body);
  EXPECT_EQ(got.size(), body.size()) << CcKindName(kind);
  EXPECT_EQ(got, body) << CcKindName(kind) << ": reassembly corrupted bytes";
  w.sim.AdvanceTo(w.sim.now() + Seconds(1));
  EXPECT_EQ(w.plane.live_segments(), 0u) << CcKindName(kind);
  EXPECT_EQ(w.kernel.attribution().Sum(), w.kernel.busy_time())
      << CcKindName(kind) << ": attribution invariant broke under loss";
  EXPECT_GT(w.kernel.attribution()[ChargeCat::kTcpRetransmit], 0)
      << CcKindName(kind);
  *out = w.plane.stats();
}

TEST(TransportLoss, RenoRecoversViaFastRetransmit) {
  TransportStats stats;
  RunLossyTransfer(CcKind::kReno, &stats);
  EXPECT_GT(stats.segments_dropped, 0u);
  EXPECT_GT(stats.segments_retransmitted, 0u);
  EXPECT_GE(stats.fast_retransmit_entries, 1u)
      << "mid-stream drops with SACK dupacks must trigger fast retransmit";
  EXPECT_GT(stats.ooo_buffered, 0u) << "segments behind the hole buffer";
}

TEST(TransportLoss, RackMarksLossByTimeNotDupackCount) {
  TransportStats stats;
  RunLossyTransfer(CcKind::kRack, &stats);
  EXPECT_GT(stats.segments_retransmitted, 0u);
  EXPECT_GE(stats.rack_marked_lost, 1u);
}

TEST(TransportLoss, BbrDeliversUnderLossAndPaces) {
  TransportStats stats;
  RunLossyTransfer(CcKind::kBbr, &stats);
  EXPECT_GT(stats.segments_retransmitted, 0u);
}

// --- satellite: link flap mid-transfer must not leak -------------------------

TEST_F(TransportWorldTest, LinkFlapMidTransferDrainsWithoutLeaking) {
  AttachPlane();
  auto [client, fd] = EstablishedPair();

  // Both directions go dark for 300 ms shortly after the transfer starts:
  // the retransmit queue is non-empty the whole window and RTO retransmits
  // pile up behind the held frames.
  FaultSchedule schedule;
  schedule.name = "flap";
  const SimTime t0 = sim_.now() + Millis(2);
  schedule.Add({FaultKind::kLinkFlap, t0, t0 + Millis(300), 1.0, 0,
                LinkDir::kBoth});
  FaultPlane fault_plane(&sim_, schedule);
  net_.InstallFaultPlane(&fault_plane);

  const std::string body = MakePattern(80 * 1024);
  const std::string got = DriveTransfer(sim_, sys_, fd, client, body);
  EXPECT_EQ(got, body);
  EXPECT_GT(fault_plane.stats().packets_flap_held, 0u)
      << "the flap window never actually bit";
  EXPECT_GT(plane_->stats().rto_fires + plane_->stats().tlp_probes +
                plane_->stats().segments_retransmitted,
            0u);

  RunFor(Seconds(5));
  EXPECT_EQ(plane_->live_segments(), 0u) << "retransmit slab leaked slots";
  EXPECT_EQ(plane_->live_hot(), 0u);
  EXPECT_EQ(kernel_.mem()[MemSys::kTransport], plane_->tracked_bytes())
      << "ledger drifted from the plane's own accounting";

  EXPECT_EQ(sys_.Close(fd), 0);
  client->Close();
  client.reset();
  RunFor(Seconds(2));
  EXPECT_EQ(plane_->live_blocks(), 0u);
  plane_.reset();
  EXPECT_EQ(kernel_.mem()[MemSys::kTransport], 0u)
      << "plane teardown left bytes on the ledger";
  EXPECT_TRUE(kernel_.mem().Consistent());
  net_.InstallFaultPlane(nullptr);
}

// --- satellite: Reno differential against an independent reference -----------

// Byte-counting NewReno per RFC 5681/6582, written directly from the spec
// text rather than from reno.cc: slow start opens one MSS per MSS acked,
// congestion avoidance one MSS per cwnd acked, halving uses the flight at
// episode entry with a 2-MSS floor, RTO collapses cwnd to 1 MSS.
struct RefReno {
  uint32_t cwnd = kTcpInitialCwndMss;
  uint32_t ssthresh = 0xffff;
  uint32_t acc = 0;

  void Ack(uint32_t acked, bool in_recovery) {
    if (in_recovery || acked == 0) {
      return;
    }
    acc += acked;
    if (cwnd < ssthresh) {
      while (acc >= kTcpMss && cwnd < kTcpMaxCwndMss) {
        acc -= kTcpMss;
        ++cwnd;
      }
    } else if (acc >= cwnd * kTcpMss) {
      acc -= cwnd * kTcpMss;
      if (cwnd < kTcpMaxCwndMss) {
        ++cwnd;
      }
    }
  }
  void EnterRecovery(uint32_t flight) {
    ssthresh = std::max<uint32_t>(flight / (2 * kTcpMss), 2);
    cwnd = ssthresh;
    acc = 0;
  }
  void ExitRecovery() {
    cwnd = ssthresh;
    acc = 0;
  }
  void Rto(uint32_t flight) {
    ssthresh = std::max<uint32_t>(flight / (2 * kTcpMss), 2);
    cwnd = 1;
    acc = 0;
  }
};

TEST(RenoDifferential, CwndTraceMatchesReferenceOver20kEvents) {
  CongestionControl* cc = GetCongestionControl(CcKind::kReno);
  ASSERT_EQ(cc->kind(), CcKind::kReno);
  TcpConn c;
  TcpHot h;
  RefReno ref;
  Rng rng(0xC0FFEE);
  for (int step = 0; step < 20000; ++step) {
    // A plausible flight for this instant; recovery math reads it.
    const uint32_t flight =
        static_cast<uint32_t>(rng.UniformInt(0, c.cwnd_mss)) * kTcpMss +
        static_cast<uint32_t>(rng.UniformInt(0, kTcpMss));
    c.snd_nxt = c.snd_una + flight;
    const int kind = static_cast<int>(rng.UniformInt(0, 99));
    if (kind < 80) {
      CcAck ack;
      ack.newly_acked = static_cast<uint32_t>(rng.UniformInt(0, 3 * kTcpMss));
      c.snd_una += std::min(ack.newly_acked, flight);
      cc->OnAck(c, h, ack);
      ref.Ack(ack.newly_acked, h.in_recovery);
    } else if (kind < 88) {
      if (!h.in_recovery) {
        cc->OnEnterRecovery(c, h);
        h.in_recovery = true;
        ref.EnterRecovery(flight);
      }
    } else if (kind < 96) {
      if (h.in_recovery) {
        h.in_recovery = false;
        cc->OnExitRecovery(c, h);
        ref.ExitRecovery();
      }
    } else {
      h.in_recovery = false;
      cc->OnRto(c, h);
      ref.Rto(flight);
    }
    ASSERT_EQ(c.cwnd_mss, ref.cwnd) << "cwnd diverged at step " << step;
    ASSERT_EQ(c.ssthresh_mss, ref.ssthresh)
        << "ssthresh diverged at step " << step;
  }
}

// --- satellite: RACK beats Reno on tail loss ---------------------------------

// A 16-segment response whose last three segments are dropped on first
// transmission: no dupacks ever come back, so dupack-counting Reno can only
// wait out the RTO while RACK's tail-loss probe re-opens the conversation.
SimDuration TailLossCompletionTime(CcKind kind) {
  TransportConfig cfg;
  cfg.default_cc = kind;
  TpWorld w(cfg);
  auto [client, fd] = w.Establish();
  w.plane.set_loss_hook([](bool server_sender, uint32_t seq, uint16_t retx) {
    return server_sender && retx == 0 && seq >= 13 * kTcpMss;
  });
  const std::string body = MakePattern(16 * kTcpMss);
  std::string received;
  client->on_data = [&received, client](size_t) {
    for (;;) {
      ReadResult r = client->Read(1 << 20);
      if (r.n == 0) {
        break;
      }
      received.append(r.data);
    }
  };
  const SimTime start = w.sim.now();
  EXPECT_EQ(w.sys.Write(fd, Chunk{body, 0}), static_cast<long>(body.size()));
  w.sim.StepUntil([&] { return received.size() == body.size(); },
                  start + Seconds(30));
  EXPECT_EQ(received, body) << CcKindName(kind);
  client->on_data = nullptr;
  if (kind == CcKind::kRack) {
    EXPECT_GE(w.plane.stats().tlp_probes, 1u);
  }
  return w.sim.now() - start;
}

TEST(TransportRecovery, RackRecoversTailLossFasterThanReno) {
  const SimDuration reno = TailLossCompletionTime(CcKind::kReno);
  const SimDuration rack = TailLossCompletionTime(CcKind::kRack);
  EXPECT_GE(reno, Millis(190)) << "Reno should be stuck until the RTO floor";
  EXPECT_LT(rack * 4, reno)
      << "RACK's TLP must recover well inside Reno's RTO wait";
}

// --- close paths -------------------------------------------------------------

TEST_F(TransportWorldTest, FinBehindLostSegmentWaitsForRepair) {
  AttachPlane();
  auto [client, fd] = EstablishedPair();
  plane_->set_loss_hook([](bool server_sender, uint32_t seq, uint16_t retx) {
    return server_sender && retx == 0 && seq == 4 * kTcpMss;
  });
  const std::string body = MakePattern(5 * kTcpMss);
  std::string received;
  client->on_data = [&received, client](size_t) {
    for (;;) {
      ReadResult r = client->Read(1 << 20);
      if (r.n == 0) {
        break;
      }
      received.append(r.data);
    }
  };
  EXPECT_EQ(sys_.Write(fd, Chunk{body, 0}), static_cast<long>(body.size()));
  EXPECT_EQ(sys_.Close(fd), 0);  // FIN owed behind the doomed last segment
  sim_.StepUntil([&] { return client->eof_received(); }, sim_.now() + Seconds(10));
  EXPECT_TRUE(client->eof_received());
  EXPECT_EQ(received, body) << "EOF must not jump the repaired hole";
  EXPECT_GE(plane_->stats().fins_sent, 1u);
  client->on_data = nullptr;
}

TEST_F(TransportWorldTest, OrphanedSenderAbandonsAfterBackoffLimit) {
  AttachPlane();
  auto [client, fd] = EstablishedPair();
  // The server's frames never arrive: close() orphans the block with a
  // permanently-undeliverable retransmit queue.
  plane_->set_loss_hook(
      [](bool server_sender, uint32_t, uint16_t) { return server_sender; });
  EXPECT_GT(sys_.Write(fd, Chunk{MakePattern(4 * kTcpMss), 0}), 0);
  RunFor(Millis(10));
  EXPECT_EQ(sys_.Close(fd), 0);
  RunFor(Seconds(60));
  EXPECT_EQ(plane_->stats().orphans_abandoned, 1u);
  EXPECT_EQ(plane_->live_segments(), 0u) << "abandonment must free the queue";
  EXPECT_EQ(plane_->live_blocks(), 1u) << "only the client block remains";
  EXPECT_EQ(kernel_.mem()[MemSys::kTransport], plane_->tracked_bytes());
}

// --- invariants --------------------------------------------------------------

TEST_F(TransportWorldTest, ChargesLandInTcpCategoriesAndSumToBusyTime) {
  AttachPlane();
  auto [client, fd] = EstablishedPair();
  plane_->set_loss_hook([](bool server_sender, uint32_t seq, uint16_t retx) {
    return server_sender && retx == 0 && seq == 2 * kTcpMss;
  });
  const std::string body = MakePattern(40 * 1024);
  EXPECT_EQ(DriveTransfer(sim_, sys_, fd, client, body), body);
  EXPECT_GT(kernel_.attribution()[ChargeCat::kTcpSegment], 0);
  EXPECT_GT(kernel_.attribution()[ChargeCat::kTcpAck], 0);
  EXPECT_GT(kernel_.attribution()[ChargeCat::kTcpRetransmit], 0);
  EXPECT_EQ(kernel_.attribution().Sum(), kernel_.busy_time());
}

TEST(TransportDeterminism, IdenticalWorldsProduceIdenticalSignatures) {
  auto run = [] {
    TransportConfig cfg;
    cfg.seed = 7;
    cfg.delivery_jitter = Micros(200);
    TpWorld w(cfg);
    auto [client, fd] = w.Establish();
    w.plane.set_loss_hook([](bool server_sender, uint32_t seq, uint16_t retx) {
      return server_sender && retx == 0 && (seq / kTcpMss) % 11 == 3;
    });
    const std::string body = MakePattern(48 * 1024);
    EXPECT_EQ(DriveTransfer(w.sim, w.sys, fd, client, body), body);
    return std::make_pair(w.plane.stats().Signature(), w.kernel.busy_time());
  };
  const auto a = run();
  const auto b = run();
  EXPECT_EQ(a.first, b.first);
  EXPECT_EQ(a.second, b.second);
}

}  // namespace
}  // namespace scio
